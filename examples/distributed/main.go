// Distributed matching: the Section 4.2 scalability story made concrete.
// The subscription base is split into partition blocks (the "Memory"
// distribution); each block is frozen into a compact snapshot and served
// by its own TCP server (Xyleme uses Corba between cluster nodes); a
// client fans each document's atomic event set out to every block and
// merges the matches — which are verified against a single local matcher.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"xymon/internal/webgen"
	"xymon/pubsub"
)

func main() {
	const (
		blocks   = 4
		cardA    = 500
		cardC    = 20000
		m        = 3
		p        = 20
		docCount = 1000
	)
	w := webgen.GenEventWorkload(2001, cardA, cardC, m, p, docCount)

	// Build the single-machine reference and the partition blocks.
	local := pubsub.NewMatcher()
	parts := make([]*pubsub.Matcher, blocks)
	for i := range parts {
		parts[i] = pubsub.NewMatcher()
	}
	for id, events := range w.Complex {
		if err := local.Add(pubsub.ComplexID(id), events); err != nil {
			log.Fatal(err)
		}
		if err := parts[id%blocks].Add(pubsub.ComplexID(id), events); err != nil {
			log.Fatal(err)
		}
	}

	// One TCP server per block, each holding a frozen snapshot.
	addrs := make([]string, blocks)
	var servers []*pubsub.Server
	var totalBytes int64
	for i, part := range parts {
		frozen := pubsub.Freeze(part)
		totalBytes += frozen.MemoryEstimate()
		srv, err := pubsub.Serve("127.0.0.1:0", frozen)
		if err != nil {
			log.Fatal(err)
		}
		servers = append(servers, srv)
		addrs[i] = srv.Addr()
		fmt.Printf("block %d: %6d complex events, %4d KB frozen, serving on %s\n",
			i, part.Len(), frozen.MemoryEstimate()/1024, srv.Addr())
	}
	defer func() {
		for _, s := range servers {
			_ = s.Close()
		}
	}()

	client, err := pubsub.Dial(addrs...)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// Match the document stream over the wire and verify against the
	// local matcher.
	totalMatches := 0
	for _, doc := range w.Docs {
		remote, err := client.Match(doc)
		if err != nil {
			log.Fatal(err)
		}
		localIDs := local.Match(doc)
		sort.Slice(remote, func(i, j int) bool { return remote[i] < remote[j] })
		sort.Slice(localIDs, func(i, j int) bool { return localIDs[i] < localIDs[j] })
		if len(remote) != len(localIDs) {
			log.Fatalf("divergence on %v: remote %d, local %d", doc, len(remote), len(localIDs))
		}
		for i := range remote {
			if remote[i] != localIDs[i] {
				log.Fatalf("divergence on %v", doc)
			}
		}
		totalMatches += len(remote)
	}
	fmt.Printf("\nmatched %d documents over %d TCP blocks: %d notifications, identical to the local matcher\n",
		len(w.Docs), blocks, totalMatches)

	// A spot check with a known document.
	rng := rand.New(rand.NewSource(7))
	doc := w.Docs[rng.Intn(len(w.Docs))]
	ids, _ := client.Match(doc)
	fmt.Printf("sample: document with %d atomic events triggered %d complex events\n", len(doc), len(ids))
}
