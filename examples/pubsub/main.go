// Generic event-set matching: the paper stresses that the Monitoring
// Query Processor "can be used in a much larger setting — each alert
// consists of a set of atomic events and the problem is finding, in a
// flow of sets of atomic events, the sets that satisfy a conjunction of
// properties" (Section 1). This example uses the core matcher standalone
// as a tiny publish/subscribe broker over integer event codes, then
// shows the subscription-partitioned variant producing identical results.
package main

import (
	"fmt"

	"xymon/pubsub"
)

func main() {
	// Atomic events: arbitrary application facts.
	const (
		evLogin     pubsub.Event = iota + 1 // user logged in
		evPurchase                          // user bought something
		evBigBasket                         // basket over 100 EUR
		evNewDevice                         // unrecognised device
		evAbroad                            // session from abroad
	)

	m := pubsub.NewMatcher()
	subs := map[pubsub.ComplexID]string{
		1: "welcome-back (login)",
		2: "big-spender (purchase + big basket)",
		3: "fraud-check (login + new device + abroad)",
		4: "travel-offer (purchase + abroad)",
	}
	must(m.Add(1, []pubsub.Event{evLogin}))
	must(m.Add(2, []pubsub.Event{evPurchase, evBigBasket}))
	must(m.Add(3, []pubsub.Event{evLogin, evNewDevice, evAbroad}))
	must(m.Add(4, []pubsub.Event{evPurchase, evAbroad}))

	sessions := []struct {
		who    string
		events []pubsub.Event
	}{
		{"alice", []pubsub.Event{evLogin}},
		{"bob", []pubsub.Event{evLogin, evPurchase, evBigBasket}},
		{"carol", []pubsub.Event{evLogin, evNewDevice, evAbroad, evPurchase}},
		{"dave", []pubsub.Event{evPurchase}},
	}
	for _, s := range sessions {
		matched := m.Match(pubsub.Canonical(s.events))
		fmt.Printf("%-6s -> %d rule(s)\n", s.who, len(matched))
		for _, id := range matched {
			fmt.Printf("         %s\n", subs[id])
		}
	}

	// The same base split across 4 partition blocks (the "Memory"
	// distribution of Section 4.2) matches identically.
	p := pubsub.NewPartitioned(4, true)
	for id := range subs {
		must(p.Add(id, m.Definition(id)))
	}
	carol := pubsub.Canonical(sessions[2].events)
	fmt.Printf("\npartitioned matcher agrees: single=%d blocks=%d matches\n",
		len(m.Match(carol)), len(p.Match(carol)))

	st := m.Stats()
	fmt.Printf("structure: %d complex events, %d atomic events, %d cells in %d tables\n",
		st.Complex, st.Atomic, st.Cells, st.Tables)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
