// Catalog monitoring: the paper's motivating e-commerce scenario —
// element-level monitoring of product catalogs ("the insertion of a new
// electronic product in a catalog", Section 1). A simulated shop site is
// crawled over several weeks of virtual time; the subscription watches
// for new products mentioning "camera" and for price updates, with a
// count-based report condition and a report query that keeps only product
// names.
package main

import (
	"fmt"
	"log"
	"time"

	"xymon"
)

func main() {
	// Virtual clock: the crawl simulation advances it day by day.
	now := time.Date(2001, 5, 21, 0, 0, 0, 0, time.UTC)
	sys, err := xymon.New(xymon.Options{
		Clock: func() time.Time { return now },
		Delivery: xymon.DeliveryFunc(func(r *xymon.Report) error {
			fmt.Printf("--- %s | report for %s (%d notifications) ---\n%s\n\n",
				now.Format("2006-01-02"), r.Subscription, r.Notifications, r.Doc.XML())
			return nil
		}),
	})
	if err != nil {
		log.Fatal(err)
	}

	if _, err := sys.Subscribe(`subscription CameraWatch
monitoring
select <NewCamera url=URL/>
where URL extends "http://hifi-shop.example/"
  and new product contains "camera"

monitoring
select <PriceChange url=URL/>
where URL extends "http://hifi-shop.example/"
  and updated price

report
when notifications.count > 5
atmost weekly
`); err != nil {
		log.Fatal(err)
	}

	// A second user simply piggybacks on the first subscription (a
	// virtual subscription, Section 5.4).
	if _, err := sys.Subscribe(`subscription CameraFan
virtual CameraWatch.NewCamera`); err != nil {
		log.Fatal(err)
	}

	sys.AddSite(xymon.NewSite(xymon.SiteSpec{
		BaseURL:  "http://hifi-shop.example/",
		Pages:    6,
		Products: 15,
		Churn:    3,
		Seed:     2001,
	}))

	// Crawl daily for four virtual weeks. The synthetic catalogs change
	// once a day; the crawler refreshes weekly by default.
	for day := 0; day < 28; day++ {
		fetched := sys.Crawl()
		sys.Tick()
		if fetched > 0 {
			fmt.Printf("%s: fetched %d pages\n", now.Format("2006-01-02"), fetched)
		}
		now = now.Add(24 * time.Hour)
	}

	st := sys.Stats()
	fmt.Printf("\n%d fetches (%d new, %d updated, %d unchanged), %d notifications\n",
		st.Crawler.Fetches, st.Crawler.New, st.Crawler.Updated, st.Crawler.Unchanged,
		st.Manager.Notifications)
}
