// Quickstart: the paper's MyXyleme scenario in a few lines. A
// subscription watches a site prefix for modified pages and a members
// list for new Member elements; pushing document versions through the
// system produces notifications, and the report condition bundles them
// into one XML report.
package main

import (
	"fmt"
	"log"

	"xymon"
)

func main() {
	sys, err := xymon.New(xymon.Options{
		Delivery: xymon.DeliveryFunc(func(r *xymon.Report) error {
			fmt.Printf("--- report for %s (%d notifications) ---\n%s\n\n",
				r.Subscription, r.Notifications, r.Doc.XML())
			return nil
		}),
	})
	if err != nil {
		log.Fatal(err)
	}

	// The MyXyleme subscription of Section 2.2 (report threshold lowered
	// so the example terminates quickly).
	if _, err := sys.Subscribe(`subscription MyXyleme
monitoring
select <UpdatedPage url=URL/>
where URL extends "http://inria.fr/Xy/"
  and modified self

monitoring
select X
from self//Member X
where URL = "http://inria.fr/Xy/members.xml"
  and new X

report
when notifications.count > 3
`); err != nil {
		log.Fatal(err)
	}

	// Discovery fetches: pages are new, so `modified self` stays silent,
	// but every Member of the fresh members page is a new element.
	push(sys, "http://inria.fr/Xy/index.html", `<page><title>Xyleme</title></page>`)
	push(sys, "http://inria.fr/Xy/members.xml", `<Team>
		<Member><name>jouglet</name><fn>jeremie</fn></Member>
		<Member><name>nguyen</name><fn>benjamin</fn></Member>
	</Team>`)

	// Refreshes: the index page changed, and a member joined the team.
	push(sys, "http://inria.fr/Xy/index.html", `<page><title>Xyleme v2</title></page>`)
	push(sys, "http://inria.fr/Xy/members.xml", `<Team>
		<Member><name>jouglet</name><fn>jeremie</fn></Member>
		<Member><name>nguyen</name><fn>benjamin</fn></Member>
		<Member><name>preda</name><fn>mihai</fn></Member>
	</Team>`)

	st := sys.Stats()
	fmt.Printf("processed %d documents, produced %d notifications\n",
		st.Manager.DocsProcessed, st.Manager.Notifications)
}

func push(sys *xymon.System, url, content string) {
	n, err := sys.PushXML(url, "", "", content)
	if err != nil {
		log.Fatalf("push %s: %v", url, err)
	}
	fmt.Printf("fetched %-40s -> %d notification(s)\n", url, n)
}
