// Site watching with continuous queries: the paper's Amsterdam paintings
// scenario (Section 5.2). A museum-domain warehouse is populated by the
// simulated crawl; a `continuous delta` query re-runs twice a week and
// reports only what changed, and a second, notification-triggered
// continuous query re-evaluates whenever a watched page changes.
package main

import (
	"fmt"
	"log"
	"time"

	"xymon"
)

const amsterdamV1 = `<culture>
	<museum><address>Amsterdam Museumplein</address>
		<painting><title>Night Watch</title></painting>
		<painting><title>Milkmaid</title></painting>
	</museum>
	<museum><address>Paris</address>
		<painting><title>Mona Lisa</title></painting>
	</museum>
</culture>`

const amsterdamV2 = `<culture>
	<museum><address>Amsterdam Museumplein</address>
		<painting><title>Night Watch</title></painting>
		<painting><title>Milkmaid</title></painting>
		<painting><title>Sunflowers</title></painting>
	</museum>
	<museum><address>Paris</address>
		<painting><title>Mona Lisa</title></painting>
	</museum>
</culture>`

func main() {
	now := time.Date(2001, 5, 21, 0, 0, 0, 0, time.UTC)
	sys, err := xymon.New(xymon.Options{
		Clock: func() time.Time { return now },
		Delivery: xymon.DeliveryFunc(func(r *xymon.Report) error {
			fmt.Printf("--- %s | %s ---\n%s\n\n",
				now.Format("2006-01-02"), r.Subscription, r.Doc.XML())
			return nil
		}),
	})
	if err != nil {
		log.Fatal(err)
	}

	// Populate the culture domain of the warehouse.
	if _, err := sys.PushXML("http://museums.example/nl.xml", "", "culture", amsterdamV1); err != nil {
		log.Fatal(err)
	}

	// Twice-a-week delta query over the whole domain, plus a monitoring
	// query on the source page that triggers an immediate re-count.
	if _, err := sys.Subscribe(`subscription ArtLover
monitoring
select <MuseumPageChanged url=URL/>
where URL = "http://museums.example/nl.xml"
  and modified self

continuous delta AmsterdamPaintings
select p/title
from culture/museum m, m/painting p
where m/address contains "Amsterdam"
try biweekly

continuous AllAmsterdam
select p/title
from culture/museum m, m/painting p
where m/address contains "Amsterdam"
when ArtLover.MuseumPageChanged

report when immediate

refresh "http://museums.example/nl.xml" weekly
`); err != nil {
		log.Fatal(err)
	}

	step := func(days int) {
		now = now.Add(time.Duration(days) * 24 * time.Hour)
		sys.Tick()
	}

	fmt.Println("== initial biweekly evaluation (full answer) ==")
	sys.Tick()

	fmt.Println("== 4 days later: nothing changed, delta query stays silent ==")
	step(4)

	fmt.Println("== Sunflowers arrives; page change triggers AllAmsterdam ==")
	if _, err := sys.PushXML("http://museums.example/nl.xml", "", "culture", amsterdamV2); err != nil {
		log.Fatal(err)
	}

	fmt.Println("== next biweekly run reports only the delta ==")
	step(4)
}
