package alerter

import (
	"sync"
	"unicode"
	"unicode/utf8"

	"xymon/internal/xmldom"
)

// Prefilter answers "could this serialized document possibly raise a
// presence or self-contains event?" by running the XML alerter's word
// tables (Figure 8) directly over the token stream: a tag stack plus a
// word scanner over the raw character data — no tree, no per-word string
// allocations. The crawler consults it before parsing, so the common
// document — interesting to nobody and not version-tracked — is rejected
// before any DOM work.
//
// Match is exact with respect to detectPresence and detectSelfContains:
// it returns true if and only if XMLAlerter.Detect would emit at least
// one presence or self-contains event on the parsed document
// (FuzzPrefilter holds the "never a false negative" half of that
// equivalence). Change conditions and version tracking are the ingest
// gate's business, not the pre-filter's.
type Prefilter struct {
	x *XMLAlerter
}

// NewPrefilter returns a pre-filter reading the alerter's live tables;
// conditions registered later are picked up automatically.
func NewPrefilter(x *XMLAlerter) *Prefilter {
	return &Prefilter{x: x}
}

// prefilterScratch is the pooled per-call state: the tokenizer, the
// open-tag stack (sub-slices of the input, nothing copied), the entity
// decode buffer and the current word.
type prefilterScratch struct {
	tok  xmldom.Tokenizer
	tags [][]byte
	text []byte
	word []byte
}

var prefilterPool = sync.Pool{New: func() any { return new(prefilterScratch) }}

// Match reports whether the serialized document could raise an element
// presence or self-contains event. A tokenizer error returns true: a
// malformed document is the parser's error to surface, not the
// pre-filter's to swallow.
func (p *Prefilter) Match(data []byte) bool {
	x := p.x
	x.mu.RLock()
	defer x.mu.RUnlock()
	if len(x.contains) == 0 && len(x.strict) == 0 && len(x.selfContains) == 0 {
		return false
	}
	sc := prefilterPool.Get().(*prefilterScratch)
	defer func() {
		sc.tok.Reset(nil)
		clear(sc.tags) // drop references into the caller's buffer
		sc.tags = sc.tags[:0]
		prefilterPool.Put(sc)
	}()
	sc.tok.Reset(data)
	sawElement := false
	for {
		k, err := sc.tok.Next()
		if err != nil {
			return true
		}
		switch k {
		case xmldom.TokEOF:
			// A rootless token stream is an ErrNoRoot for the parser to
			// surface, like any other malformed input.
			return !sawElement
		case xmldom.TokStart:
			sawElement = true
			sc.tags = append(sc.tags, sc.tok.Tag())
		case xmldom.TokEnd:
			sc.tags = sc.tags[:len(sc.tags)-1]
		case xmldom.TokText:
			// Top-level character data never reaches the tree.
			if len(sc.tags) == 0 {
				continue
			}
			b := sc.tok.Text()
			if sc.tok.TextDirty() {
				sc.text = sc.tok.AppendText(sc.text[:0])
				b = sc.text
			}
			if p.scanWords(b, sc) {
				return true
			}
		}
	}
}

// scanWords runs the xmldom.Words tokenization — maximal runs of
// lower-cased letters and digits, each rune lowered before the class
// test — over one character-data span, checking every word against the
// three tables as soon as it closes. The word is reset at span
// boundaries because adjacent CDATA/text tokens become separate text
// nodes in the tree, whose words never merge.
func (p *Prefilter) scanWords(b []byte, sc *prefilterScratch) bool {
	word := sc.word[:0]
	defer func() { sc.word = word[:0] }()
	for i := 0; i < len(b); {
		var lr rune = -1
		size := 1
		if c := b[i]; c < utf8.RuneSelf {
			switch {
			case 'a' <= c && c <= 'z' || '0' <= c && c <= '9':
				lr = rune(c)
			case 'A' <= c && c <= 'Z':
				lr = rune(c | 0x20)
			}
		} else {
			r, s := utf8.DecodeRune(b[i:])
			size = s
			if l := unicode.ToLower(r); unicode.IsLetter(l) || unicode.IsDigit(l) {
				lr = l
			}
		}
		i += size
		if lr >= 0 {
			word = utf8.AppendRune(word, lr)
			continue
		}
		if len(word) > 0 {
			if p.wordHit(word, sc.tags) {
				return true
			}
			word = word[:0]
		}
	}
	return len(word) > 0 && p.wordHit(word, sc.tags)
}

// wordHit checks one word against the self-contains, contains and strict
// tables — the same lookups detectPresence and detectSelfContains make
// on the built tree: any enclosing tag for `contains`, the innermost
// element for `strict`. Map lookups keyed by string(b) do not allocate.
func (p *Prefilter) wordHit(w []byte, tags [][]byte) bool {
	x := p.x
	if _, ok := x.selfContains[string(w)]; ok {
		return true
	}
	if tt, ok := x.contains[string(w)]; ok {
		for _, tag := range tags {
			if _, ok := tt[string(tag)]; ok {
				return true
			}
		}
	}
	if tt, ok := x.strict[string(w)]; ok {
		if _, ok := tt[string(tags[len(tags)-1])]; ok {
			return true
		}
	}
	return false
}
