package alerter

import (
	"sync"
	"time"

	"xymon/internal/core"
	"xymon/internal/sublang"
	"xymon/internal/warehouse"
)

// URLAlerter detects the atomic events that depend only on a page's
// metadata (Section 6.2): URL patterns, filenames, DTD / DOCID / domain
// identity, fetch dates, and the weak document-level change patterns. It
// sits next to the URL manager and never needs the document content.
type URLAlerter struct {
	mu        sync.RWMutex
	prefixes  PrefixIndex
	urlEq     map[string][]core.Event
	filenames map[string][]core.Event
	dtds      map[string][]core.Event
	domains   map[string][]core.Event
	dtdIDs    map[uint64][]core.Event
	docIDs    map[uint64][]core.Event
	dates     []dateCond
	changes   map[sublang.ChangeOp][]core.Event
}

type dateCond struct {
	kind sublang.CondKind // CondLastAccessed or CondLastUpdate
	cmp  sublang.Comparator
	date time.Time
	code core.Event
}

// NewURLAlerter returns a URL alerter using the given prefix index; pass
// nil for the default hash structure.
func NewURLAlerter(prefixes PrefixIndex) *URLAlerter {
	if prefixes == nil {
		prefixes = NewHashPrefixIndex()
	}
	return &URLAlerter{
		prefixes:  prefixes,
		urlEq:     make(map[string][]core.Event),
		filenames: make(map[string][]core.Event),
		dtds:      make(map[string][]core.Event),
		domains:   make(map[string][]core.Event),
		dtdIDs:    make(map[uint64][]core.Event),
		docIDs:    make(map[uint64][]core.Event),
		changes:   make(map[sublang.ChangeOp][]core.Event),
	}
}

// Handles reports whether the condition kind belongs to this alerter.
func (a *URLAlerter) Handles(kind sublang.CondKind) bool {
	switch kind {
	case sublang.CondURLExtends, sublang.CondURLEquals, sublang.CondFilename,
		sublang.CondDTD, sublang.CondDTDID, sublang.CondDOCID, sublang.CondDomain,
		sublang.CondLastAccessed, sublang.CondLastUpdate, sublang.CondSelfChange:
		return true
	}
	return false
}

// Register wires an atomic event code to a condition.
func (a *URLAlerter) Register(code core.Event, cond sublang.Condition) {
	a.mu.Lock()
	defer a.mu.Unlock()
	switch cond.Kind {
	case sublang.CondURLExtends:
		// The prefix index is a passive data structure owned by this
		// alerter, not a user plug point; mutating it under a.mu is the
		// point of the lock.
		//xyvet:ignore lockcheck
		a.prefixes.Add(cond.Str, code)
	case sublang.CondURLEquals:
		a.urlEq[cond.Str] = append(a.urlEq[cond.Str], code)
	case sublang.CondFilename:
		a.filenames[cond.Str] = append(a.filenames[cond.Str], code)
	case sublang.CondDTD:
		a.dtds[cond.Str] = append(a.dtds[cond.Str], code)
	case sublang.CondDomain:
		a.domains[cond.Str] = append(a.domains[cond.Str], code)
	case sublang.CondDTDID:
		a.dtdIDs[cond.Num] = append(a.dtdIDs[cond.Num], code)
	case sublang.CondDOCID:
		a.docIDs[cond.Num] = append(a.docIDs[cond.Num], code)
	case sublang.CondLastAccessed, sublang.CondLastUpdate:
		a.dates = append(a.dates, dateCond{kind: cond.Kind, cmp: cond.Cmp, date: cond.Date, code: code})
	case sublang.CondSelfChange:
		a.changes[cond.Change] = append(a.changes[cond.Change], code)
	}
}

// Unregister removes a previously registered (code, condition) pair.
func (a *URLAlerter) Unregister(code core.Event, cond sublang.Condition) {
	a.mu.Lock()
	defer a.mu.Unlock()
	switch cond.Kind {
	case sublang.CondURLExtends:
		// Passive in-module index; see Register.
		//xyvet:ignore lockcheck
		a.prefixes.Remove(cond.Str, code)
	case sublang.CondURLEquals:
		a.urlEq[cond.Str] = dropCode(a.urlEq, cond.Str, code)
	case sublang.CondFilename:
		a.filenames[cond.Str] = dropCode(a.filenames, cond.Str, code)
	case sublang.CondDTD:
		a.dtds[cond.Str] = dropCode(a.dtds, cond.Str, code)
	case sublang.CondDomain:
		a.domains[cond.Str] = dropCode(a.domains, cond.Str, code)
	case sublang.CondDTDID:
		a.dtdIDs[cond.Num] = dropCodeU(a.dtdIDs, cond.Num, code)
	case sublang.CondDOCID:
		a.docIDs[cond.Num] = dropCodeU(a.docIDs, cond.Num, code)
	case sublang.CondLastAccessed, sublang.CondLastUpdate:
		for i, d := range a.dates {
			if d.code == code {
				a.dates = append(a.dates[:i], a.dates[i+1:]...)
				break
			}
		}
	case sublang.CondSelfChange:
		codes := a.changes[cond.Change]
		for i, c := range codes {
			if c == code {
				a.changes[cond.Change] = append(codes[:i], codes[i+1:]...)
				break
			}
		}
	}
}

func dropCode(m map[string][]core.Event, key string, code core.Event) []core.Event {
	codes := m[key]
	for i, c := range codes {
		if c == code {
			codes = append(codes[:i], codes[i+1:]...)
			break
		}
	}
	if len(codes) == 0 {
		delete(m, key)
		return nil
	}
	return codes
}

func dropCodeU(m map[uint64][]core.Event, key uint64, code core.Event) []core.Event {
	codes := m[key]
	for i, c := range codes {
		if c == code {
			codes = append(codes[:i], codes[i+1:]...)
			break
		}
	}
	if len(codes) == 0 {
		delete(m, key)
		return nil
	}
	return codes
}

// Detect appends the metadata-level atomic events raised by the document.
// Matching codes are collected under the read lock and emitted after it is
// released, so the emit callback may re-enter the alerter (e.g. to
// register a follow-up condition) without deadlocking.
func (a *URLAlerter) Detect(d *Doc, emit func(core.Event)) {
	var codes []core.Event
	collect := func(c core.Event) { codes = append(codes, c) }

	a.mu.RLock()
	// Passive in-module index; see Register. collect only appends.
	//xyvet:ignore lockcheck
	a.prefixes.Lookup(d.Meta.URL, collect)
	codes = append(codes, a.urlEq[d.Meta.URL]...)
	codes = append(codes, a.filenames[d.Meta.Filename]...)
	if d.Meta.DTD != "" {
		codes = append(codes, a.dtds[d.Meta.DTD]...)
	}
	if d.Meta.Domain != "" {
		codes = append(codes, a.domains[d.Meta.Domain]...)
	}
	codes = append(codes, a.dtdIDs[d.Meta.DTDID]...)
	codes = append(codes, a.docIDs[d.Meta.DocID]...)
	for _, dc := range a.dates {
		v := d.Meta.LastAccessed
		if dc.kind == sublang.CondLastUpdate {
			v = d.Meta.LastUpdate
		}
		if cmpTime(v, dc.cmp, dc.date) {
			collect(dc.code)
		}
	}
	var op sublang.ChangeOp
	switch d.Status {
	case warehouse.StatusNew:
		op = sublang.OpNew
	case warehouse.StatusUpdated:
		op = sublang.OpUpdated
	case warehouse.StatusUnchanged:
		op = sublang.OpUnchanged
	case warehouse.StatusDeleted:
		op = sublang.OpDeleted
	}
	codes = append(codes, a.changes[op]...)
	a.mu.RUnlock()

	for _, c := range codes {
		emit(c)
	}
}

// CouldAlert reports whether a page with the given pre-fetch metadata
// could raise any URL-level event, for the ingest gate: true means the
// page must be committed. It is conservative — numeric DTD/DOC ids and
// fetch dates are only known after commit, and the weak self-change
// events fire on the commit status itself, so having any of those
// registered keeps every page on the parse path.
func (a *URLAlerter) CouldAlert(url, filename, dtd, domain string) bool {
	hit := false
	collect := func(core.Event) { hit = true }
	a.mu.RLock()
	defer a.mu.RUnlock()
	// Passive in-module index; see Register.
	//xyvet:ignore lockcheck
	a.prefixes.Lookup(url, collect)
	if hit || len(a.urlEq[url]) > 0 || len(a.filenames[filename]) > 0 {
		return true
	}
	if dtd != "" && len(a.dtds[dtd]) > 0 {
		return true
	}
	if domain != "" && len(a.domains[domain]) > 0 {
		return true
	}
	if len(a.dtdIDs) > 0 || len(a.docIDs) > 0 || len(a.dates) > 0 {
		return true
	}
	for _, codes := range a.changes {
		if len(codes) > 0 {
			return true
		}
	}
	return false
}

func cmpTime(v time.Time, cmp sublang.Comparator, ref time.Time) bool {
	switch cmp {
	case sublang.CmpEq:
		return v.Equal(ref)
	case sublang.CmpLt:
		return v.Before(ref)
	case sublang.CmpGt:
		return v.After(ref)
	case sublang.CmpLe:
		return !v.After(ref)
	case sublang.CmpGe:
		return !v.Before(ref)
	}
	return false
}

// PrefixMemory exposes the prefix structure's memory estimate for the
// hash-vs-trie ablation.
func (a *URLAlerter) PrefixMemory() int64 {
	a.mu.RLock()
	defer a.mu.RUnlock()
	// Passive in-module index; see Register.
	//xyvet:ignore lockcheck
	return a.prefixes.MemoryEstimate()
}
