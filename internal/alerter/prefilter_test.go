package alerter

import (
	"testing"

	"xymon/internal/core"
	"xymon/internal/sublang"
	"xymon/internal/warehouse"
	"xymon/internal/xmldom"
)

// prefilterAlerter is the condition set shared by the prefilter tests and
// FuzzPrefilter: one contains, one contains on another tag, one strict,
// one self-contains.
func prefilterAlerter() *XMLAlerter {
	x := NewXMLAlerter()
	x.Register(1, sublang.Condition{Kind: sublang.CondElement, Tag: "product", Str: "camera"})
	x.Register(2, sublang.Condition{Kind: sublang.CondElement, Tag: "catalog", Str: "radio"})
	x.Register(3, sublang.Condition{Kind: sublang.CondElement, Tag: "name", Str: "alpha", Strict: true})
	x.Register(4, sublang.Condition{Kind: sublang.CondSelfContains, Str: "sound"})
	return x
}

// presenceEvents runs XMLAlerter.Detect on an unchanged document and
// returns the emitted events (no change conditions are registered, so
// these are exactly the presence/self-contains events).
func presenceEvents(x *XMLAlerter, doc *xmldom.Document) []core.Event {
	var events []core.Event
	x.Detect(&Doc{
		Meta:   warehouse.Metadata{URL: "u", Type: warehouse.XML},
		Status: warehouse.StatusUnchanged,
		Doc:    doc,
	}, func(c core.Event) { events = append(events, c) })
	return events
}

func TestPrefilterMatchesDetect(t *testing.T) {
	x := prefilterAlerter()
	pf := NewPrefilter(x)
	cases := []struct {
		src  string
		want bool
	}{
		{`<catalog><product><name>digital camera</name></product></catalog>`, true},
		{`<catalog><product><name>turntable</name></product></catalog>`, false},
		// The word table is word-based: substrings must not match.
		{`<catalog><product>cameras</product></catalog>`, false},
		// `contains` needs the word anywhere under the tag...
		{`<inventory><product><deep><deeper>camera</deeper></deep></product></inventory>`, true},
		// ...but under the right tag.
		{`<inventory><item>camera</item></inventory>`, false},
		// `strict` needs the word directly under the tag.
		{`<catalog><name>radio alpha</name></catalog>`, true},
		{`<catalog><name><sub>alpha</sub></name></catalog>`, false},
		// self-contains matches anywhere.
		{`<a><b><c>great sound</c></b></a>`, true},
		// Case folding and entity decoding happen before word matching.
		{`<product>CAMERA</product>`, true},
		{`<product>cam&#101;ra</product>`, true},
		// Adjacent CDATA makes a separate text node: words never merge.
		{`<product>cam<![CDATA[era]]></product>`, false},
		{`<product><![CDATA[camera]]></product>`, true},
		// Top-level character data is dropped before it reaches the tree.
		{`sound<a/>`, false},
	}
	for _, c := range cases {
		got := pf.Match([]byte(c.src))
		if got != c.want {
			t.Errorf("Match(%q) = %v, want %v", c.src, got, c.want)
		}
		doc, err := xmldom.ParseBytes([]byte(c.src))
		if err != nil {
			t.Fatalf("ParseBytes(%q): %v", c.src, err)
		}
		if events := presenceEvents(x, doc); (len(events) > 0) != c.want {
			t.Errorf("Detect(%q) events = %v, prefilter said %v", c.src, events, got)
		}
	}
}

func TestPrefilterEmptyAlerterNeverMatches(t *testing.T) {
	pf := NewPrefilter(NewXMLAlerter())
	if pf.Match([]byte(`<product>camera</product>`)) {
		t.Fatal("empty alerter matched")
	}
}

// A malformed document must pass the filter: the parse path owns the
// error, the pre-filter must not swallow it into a silent skip.
func TestPrefilterMalformedPasses(t *testing.T) {
	pf := NewPrefilter(prefilterAlerter())
	for _, src := range []string{`<a><b></a>`, `<a>`, `<a>&bogus;</a>`, `not xml`} {
		if !pf.Match([]byte(src)) {
			t.Errorf("Match(%q) = false, want true for malformed input", src)
		}
	}
}

func TestURLAlerterCouldAlert(t *testing.T) {
	a := NewURLAlerter(nil)
	if a.CouldAlert("http://x/a.xml", "a.xml", "http://x/cat.dtd", "shopping") {
		t.Fatal("empty alerter could alert")
	}
	a.Register(1, sublang.Condition{Kind: sublang.CondURLExtends, Str: "http://x/"})
	if !a.CouldAlert("http://x/a.xml", "a.xml", "", "") {
		t.Fatal("prefix miss")
	}
	if a.CouldAlert("http://y/a.xml", "a.xml", "", "") {
		t.Fatal("prefix false positive")
	}
	a.Unregister(1, sublang.Condition{Kind: sublang.CondURLExtends, Str: "http://x/"})
	a.Register(2, sublang.Condition{Kind: sublang.CondDTD, Str: "http://x/cat.dtd"})
	if !a.CouldAlert("http://y/a.xml", "a.xml", "http://x/cat.dtd", "") {
		t.Fatal("dtd miss")
	}
	if a.CouldAlert("http://y/a.xml", "a.xml", "http://other/d.dtd", "") {
		t.Fatal("dtd false positive")
	}
	// Post-commit metadata (ids, dates) and self-change conditions keep
	// every page on the parse path.
	a.Register(3, sublang.Condition{Kind: sublang.CondDOCID, Num: 7})
	if !a.CouldAlert("http://anything/", "x", "", "") {
		t.Fatal("docid must force parsing")
	}
	a.Unregister(3, sublang.Condition{Kind: sublang.CondDOCID, Num: 7})
	a.Register(4, sublang.Condition{Kind: sublang.CondSelfChange, Change: sublang.OpUpdated})
	if !a.CouldAlert("http://anything/", "x", "", "") {
		t.Fatal("self-change must force parsing")
	}
}

func TestXMLAlerterHasChangeConds(t *testing.T) {
	x := prefilterAlerter()
	if x.HasChangeConds() {
		t.Fatal("presence conditions are not change conditions")
	}
	cond := sublang.Condition{Kind: sublang.CondElement, Change: sublang.OpNew, Tag: "product"}
	x.Register(9, cond)
	if !x.HasChangeConds() {
		t.Fatal("new-element condition not seen")
	}
	x.Unregister(9, cond)
	if x.HasChangeConds() {
		t.Fatal("unregister left a change condition behind")
	}
}

// TestDetectPresenceDeepChain pins the iterative rewrite: a 100k-deep
// element chain must neither overflow the goroutine stack nor lose the
// word collected at the leaf (PR 5 hardened Hash64/TextContent the same
// way; this walk had been missed).
func TestDetectPresenceDeepChain(t *testing.T) {
	const depth = 100_000
	root := xmldom.Element("d")
	n := root
	for i := 1; i < depth; i++ {
		c := xmldom.Element("d")
		n.AppendChild(c)
		n = c
	}
	n.AppendChild(xmldom.Text("needle leafword"))

	x := NewXMLAlerter()
	x.Register(1, sublang.Condition{Kind: sublang.CondElement, Tag: "d", Str: "needle"})
	x.Register(2, sublang.Condition{Kind: sublang.CondElement, Tag: "d", Str: "leafword", Strict: true})
	events := presenceEvents(x, &xmldom.Document{Root: root})
	// The contains event fires once per enclosing <d>; the strict event
	// once, at the leaf.
	var c1, c2 int
	for _, e := range events {
		switch e {
		case 1:
			c1++
		case 2:
			c2++
		}
	}
	if c1 != depth || c2 != 1 {
		t.Fatalf("events: contains fired %d times (want %d), strict %d times (want 1)", c1, depth, c2)
	}
}

// FuzzPrefilter holds the pre-filter to its contract: it must never
// reject a document on which the XML alerter would emit a presence or
// self-contains event (no false negatives, ever), and — since Match is
// documented as exact — a parseable match must raise at least one event.
func FuzzPrefilter(f *testing.F) {
	seeds := []string{
		`<catalog><product><name>digital camera</name></product></catalog>`,
		`<catalog><product><name>turntable</name></product></catalog>`,
		`<product>cam&#101;ra</product>`,
		`<product>cam<![CDATA[era]]></product>`,
		`<a><b><c>great sound</c></b></a>`,
		`<catalog><name>radio alpha</name></catalog>`,
		`<product>CAMERA</product>`,
		`sound<a/>`,
		`<a><b></a>`,
		``,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	x := prefilterAlerter()
	pf := NewPrefilter(x)
	f.Fuzz(func(t *testing.T, src string) {
		match := pf.Match([]byte(src))
		doc, err := xmldom.ParseBytes([]byte(src))
		if err != nil {
			// Unparseable documents raise no element events; the filter
			// may say anything (it reports true on tokenizer errors so the
			// parse path surfaces them).
			return
		}
		events := presenceEvents(x, doc)
		if !match && len(events) > 0 {
			t.Fatalf("false negative on %q: prefilter rejected, Detect emitted %v", src, events)
		}
		if match && len(events) == 0 {
			t.Fatalf("false positive on %q: prefilter matched, Detect emitted nothing", src)
		}
	})
}
