package alerter

import (
	"sort"
	"sync"
	"testing"
	"time"

	"xymon/internal/core"
	"xymon/internal/sublang"
	"xymon/internal/warehouse"
	"xymon/internal/xmldom"
	"xymon/internal/xydiff"
)

func urlCond(kind sublang.CondKind, s string) sublang.Condition {
	return sublang.Condition{Kind: kind, Str: s}
}

func detect(p *Pipeline, d *Doc) core.EventSet {
	a := p.Detect(d)
	if a == nil {
		return nil
	}
	return a.Events
}

func xmlDoc(url string, status warehouse.Status, doc *xmldom.Document) *Doc {
	return &Doc{
		Meta: warehouse.Metadata{
			URL:      url,
			Filename: warehouse.Filename(url),
			Type:     warehouse.XML,
		},
		Status: status,
		Doc:    doc,
	}
}

func TestURLAlerterPatterns(t *testing.T) {
	for _, impl := range []struct {
		name string
		idx  PrefixIndex
	}{
		{"hash", NewHashPrefixIndex()},
		{"trie", NewTriePrefixIndex()},
	} {
		t.Run(impl.name, func(t *testing.T) {
			p := NewPipeline(impl.idx)
			p.Register(1, urlCond(sublang.CondURLExtends, "http://inria.fr/Xy/"))
			p.Register(2, urlCond(sublang.CondURLExtends, "http://inria.fr/"))
			p.Register(3, urlCond(sublang.CondURLEquals, "http://inria.fr/Xy/index.html"))
			p.Register(4, urlCond(sublang.CondFilename, "index.html"))
			p.Register(5, urlCond(sublang.CondURLExtends, "http://other.org/"))

			got := detect(p, xmlDoc("http://inria.fr/Xy/index.html", warehouse.StatusUnchanged, xmldom.MustParse("<a/>")))
			want := core.EventSet{1, 2, 3, 4}
			if !got.Equal(want) {
				t.Errorf("events = %v, want %v", got, want)
			}

			got = detect(p, xmlDoc("http://inria.fr/other.xml", warehouse.StatusUnchanged, xmldom.MustParse("<a/>")))
			want = core.EventSet{2}
			if !got.Equal(want) {
				t.Errorf("events = %v, want %v", got, want)
			}

			if got := detect(p, xmlDoc("http://nowhere.net/x", warehouse.StatusUnchanged, xmldom.MustParse("<a/>"))); got != nil {
				t.Errorf("events = %v, want none", got)
			}
		})
	}
}

func TestURLAlerterMetadataConditions(t *testing.T) {
	p := NewPipeline(nil)
	p.Register(1, sublang.Condition{Kind: sublang.CondDTD, Str: "http://x/cat.dtd"})
	p.Register(2, sublang.Condition{Kind: sublang.CondDTDID, Num: 7})
	p.Register(3, sublang.Condition{Kind: sublang.CondDOCID, Num: 42})
	p.Register(4, sublang.Condition{Kind: sublang.CondDomain, Str: "shopping"})
	d := &Doc{
		Meta: warehouse.Metadata{
			URL: "http://x/c.xml", DTD: "http://x/cat.dtd", DTDID: 7,
			DocID: 42, Domain: "shopping", Type: warehouse.XML,
		},
		Status: warehouse.StatusUnchanged,
		Doc:    xmldom.MustParse("<a/>"),
	}
	got := detect(p, d)
	if !got.Equal(core.EventSet{1, 2, 3, 4}) {
		t.Errorf("events = %v, want {1,2,3,4}", got)
	}
}

func TestURLAlerterDates(t *testing.T) {
	p := NewPipeline(nil)
	ref := time.Date(2001, 5, 1, 0, 0, 0, 0, time.UTC)
	p.Register(1, sublang.Condition{Kind: sublang.CondLastUpdate, Cmp: sublang.CmpGe, Date: ref})
	p.Register(2, sublang.Condition{Kind: sublang.CondLastAccessed, Cmp: sublang.CmpLt, Date: ref})
	d := xmlDoc("http://x/a.xml", warehouse.StatusUnchanged, xmldom.MustParse("<a/>"))
	d.Meta.LastUpdate = ref.Add(24 * time.Hour)
	d.Meta.LastAccessed = ref.Add(-24 * time.Hour)
	got := detect(p, d)
	if !got.Equal(core.EventSet{1, 2}) {
		t.Errorf("events = %v, want {1,2}", got)
	}
	d.Meta.LastUpdate = ref.Add(-time.Hour)
	d.Meta.LastAccessed = ref
	if got := detect(p, d); got != nil {
		t.Errorf("events = %v, want none", got)
	}
}

func TestSelfChangeIsWeak(t *testing.T) {
	p := NewPipeline(nil)
	p.Register(1, sublang.Condition{Kind: sublang.CondSelfChange, Change: sublang.OpUpdated})
	p.Register(2, urlCond(sublang.CondURLExtends, "http://inria.fr/"))

	// Only the weak event fires: the alert must be flagged non-strong.
	d := xmlDoc("http://elsewhere.org/a.xml", warehouse.StatusUpdated, xmldom.MustParse("<a/>"))
	a := p.Detect(d)
	if a == nil || a.Strong {
		t.Errorf("alert = %+v, want weak-only alert", a)
	}

	// With a strong event alongside, the alert is strong.
	d = xmlDoc("http://inria.fr/a.xml", warehouse.StatusUpdated, xmldom.MustParse("<a/>"))
	a = p.Detect(d)
	if a == nil || !a.Strong {
		t.Errorf("alert = %+v, want strong", a)
	}
	if !a.Events.Equal(core.EventSet{1, 2}) {
		t.Errorf("events = %v, want {1,2}", a.Events)
	}
}

func TestXMLContainsConditions(t *testing.T) {
	p := NewPipeline(nil)
	p.Register(1, sublang.Condition{Kind: sublang.CondElement, Tag: "category", Str: "electronic"})
	p.Register(2, sublang.Condition{Kind: sublang.CondElement, Tag: "product", Str: "camera"})
	p.Register(3, sublang.Condition{Kind: sublang.CondElement, Tag: "product", Str: "camera", Strict: true})
	p.Register(4, sublang.Condition{Kind: sublang.CondSelfContains, Str: "sound"})

	doc := xmldom.MustParse(`<catalog>
		<category>Electronic goods</category>
		<product><name>digital camera</name><price>99</price></product>
	</catalog>`)
	got := detect(p, xmlDoc("http://x/c.xml", warehouse.StatusUnchanged, doc))
	// category contains electronic: yes (1). product contains camera in
	// subtree: yes (2). product strict contains camera: the word is under
	// name, not directly under product: no (3). self contains hi-fi: no (4).
	if !got.Equal(core.EventSet{1, 2}) {
		t.Errorf("events = %v, want {1,2}", got)
	}

	doc2 := xmldom.MustParse(`<catalog>
		<product>camera <name>stuff</name></product>
		<desc>great hi-fi sound</desc>
	</catalog>`)
	got = detect(p, xmlDoc("http://x/c2.xml", warehouse.StatusUnchanged, doc2))
	if !got.Equal(core.EventSet{2, 3, 4}) {
		t.Errorf("events = %v, want {2,3,4}", got)
	}
}

func TestXMLContainsIsWordBased(t *testing.T) {
	p := NewPipeline(nil)
	p.Register(1, sublang.Condition{Kind: sublang.CondElement, Tag: "product", Str: "cam"})
	doc := xmldom.MustParse(`<catalog><product>camera</product></catalog>`)
	if got := detect(p, xmlDoc("u", warehouse.StatusUnchanged, doc)); got != nil {
		t.Errorf("substring must not match: %v", got)
	}
}

func TestXMLNewElementOnNewDocument(t *testing.T) {
	p := NewPipeline(nil)
	p.Register(1, sublang.Condition{Kind: sublang.CondElement, Change: sublang.OpNew, Tag: "Member"})
	doc := xmldom.MustParse(`<Team><Member><name>nguyen</name></Member></Team>`)
	got := detect(p, xmlDoc("http://inria.fr/Xy/members.xml", warehouse.StatusNew, doc))
	if !got.Equal(core.EventSet{1}) {
		t.Errorf("events = %v, want {1}", got)
	}
}

func TestXMLChangeConditionsOnUpdate(t *testing.T) {
	p := NewPipeline(nil)
	p.Register(1, sublang.Condition{Kind: sublang.CondElement, Change: sublang.OpNew, Tag: "product"})
	p.Register(2, sublang.Condition{Kind: sublang.CondElement, Change: sublang.OpUpdated, Tag: "product"})
	p.Register(3, sublang.Condition{Kind: sublang.CondElement, Change: sublang.OpUpdated, Tag: "product", Str: "camera"})
	p.Register(4, sublang.Condition{Kind: sublang.CondElement, Change: sublang.OpDeleted, Tag: "promo"})
	p.Register(5, sublang.Condition{Kind: sublang.CondElement, Change: sublang.OpNew, Tag: "catalog"})

	old := xmldom.MustParse(`<catalog>
		<product><name>camera</name><price>99</price></product>
		<promo><t>sale</t></promo>
	</catalog>`)
	new := xmldom.MustParse(`<catalog>
		<product><name>camera</name><price>89</price></product>
		<product><name>radio</name></product>
	</catalog>`)
	delta, err := xydiff.Diff(old, new)
	if err != nil {
		t.Fatalf("Diff: %v", err)
	}
	d := xmlDoc("http://x/cat.xml", warehouse.StatusUpdated, new)
	d.Delta = delta
	got := detect(p, d)
	// 1: new product (radio) inserted. 2: camera product updated (price).
	// 3: updated product containing camera. 4: promo deleted. 5: catalog is
	// updated, not new.
	if !got.Equal(core.EventSet{1, 2, 3, 4}) {
		t.Errorf("events = %v, want {1,2,3,4}", got)
	}
}

func TestXMLUpdateWithoutDeltaRaisesNothing(t *testing.T) {
	p := NewPipeline(nil)
	p.Register(1, sublang.Condition{Kind: sublang.CondElement, Change: sublang.OpUpdated, Tag: "product"})
	d := xmlDoc("u", warehouse.StatusUpdated, xmldom.MustParse(`<catalog><product>x</product></catalog>`))
	if got := detect(p, d); got != nil {
		t.Errorf("events = %v, want none without a delta", got)
	}
}

func TestHTMLAlerter(t *testing.T) {
	p := NewPipeline(nil)
	p.Register(1, sublang.Condition{Kind: sublang.CondSelfContains, Str: "xyleme"})
	p.Register(2, urlCond(sublang.CondURLExtends, "http://www.example/"))
	d := &Doc{
		Meta:    warehouse.Metadata{URL: "http://www.example/page.html", Type: warehouse.HTML},
		Status:  warehouse.StatusNew,
		Content: []byte("<html><body>The Xyleme project monitors XML.</body></html>"),
	}
	got := detect(p, d)
	if !got.Equal(core.EventSet{1, 2}) {
		t.Errorf("events = %v, want {1,2}", got)
	}
}

func TestUnregister(t *testing.T) {
	p := NewPipeline(nil)
	conds := []sublang.Condition{
		urlCond(sublang.CondURLExtends, "http://inria.fr/"),
		urlCond(sublang.CondURLEquals, "http://inria.fr/a.xml"),
		urlCond(sublang.CondFilename, "a.xml"),
		{Kind: sublang.CondElement, Tag: "product", Str: "camera"},
		{Kind: sublang.CondElement, Change: sublang.OpNew, Tag: "product"},
		{Kind: sublang.CondSelfContains, Str: "xml"},
		{Kind: sublang.CondSelfChange, Change: sublang.OpNew},
	}
	for i, c := range conds {
		p.Register(core.Event(i+1), c)
	}
	doc := xmldom.MustParse(`<catalog><product>camera xml</product></catalog>`)
	d := xmlDoc("http://inria.fr/a.xml", warehouse.StatusNew, doc)
	if got := detect(p, d); len(got) != len(conds) {
		t.Fatalf("before unregister: events = %v, want %d", got, len(conds))
	}
	for i, c := range conds {
		p.Unregister(core.Event(i+1), c)
	}
	if got := detect(p, d); got != nil {
		t.Errorf("after unregister: events = %v, want none", got)
	}
}

func TestPrefixIndexImplementationsAgree(t *testing.T) {
	hash := NewHashPrefixIndex()
	trie := NewTriePrefixIndex()
	patterns := []string{
		"http://a.com/", "http://a.com/x/", "http://a.com/x/y/",
		"http://b.org/", "", "http://a.com/x/y/z.xml",
	}
	for i, pat := range patterns {
		hash.Add(pat, core.Event(i))
		trie.Add(pat, core.Event(i))
	}
	urls := []string{
		"http://a.com/x/y/z.xml", "http://a.com/", "http://b.org/q",
		"http://c.net/", "", "http://a.com/x/other",
	}
	collect := func(idx PrefixIndex, url string) []core.Event {
		var out []core.Event
		idx.Lookup(url, func(c core.Event) { out = append(out, c) })
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	for _, u := range urls {
		h := collect(hash, u)
		tr := collect(trie, u)
		if len(h) != len(tr) {
			t.Fatalf("url %q: hash %v, trie %v", u, h, tr)
		}
		for i := range h {
			if h[i] != tr[i] {
				t.Fatalf("url %q: hash %v, trie %v", u, h, tr)
			}
		}
	}
	if hash.Len() != trie.Len() {
		t.Errorf("Len: hash %d, trie %d", hash.Len(), trie.Len())
	}
	// Remove and re-check.
	hash.Remove("http://a.com/x/", 1)
	trie.Remove("http://a.com/x/", 1)
	h := collect(hash, "http://a.com/x/y/z.xml")
	tr := collect(trie, "http://a.com/x/y/z.xml")
	if len(h) != len(tr) || len(h) != 4 {
		t.Errorf("after remove: hash %v, trie %v", h, tr)
	}
	if hash.MemoryEstimate() <= 0 || trie.MemoryEstimate() <= 0 {
		t.Error("memory estimates should be positive")
	}
}

// TestHashPrefixLookupConcurrent pins the read-only contract of
// HashPrefixIndex.Lookup: the URL alerter calls it under a read lock, so
// overlapping Lookups must not mutate the index. The lazy length-sort
// that used to run inside Lookup raced exactly here — two Detects right
// after a Subscribe both saw the index dirty and rebuilt it at once.
// Run with -race.
func TestHashPrefixLookupConcurrent(t *testing.T) {
	idx := NewHashPrefixIndex()
	for i, pat := range []string{"http://a.com/", "http://a.com/x/", "http://b.org/"} {
		idx.Add(pat, core.Event(i))
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				var got []core.Event
				idx.Lookup("http://a.com/x/y.xml", func(c core.Event) { got = append(got, c) })
				if len(got) != 2 {
					t.Errorf("Lookup emitted %v, want 2 codes", got)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestNoEventsNoAlert(t *testing.T) {
	p := NewPipeline(nil)
	d := xmlDoc("http://x/", warehouse.StatusNew, xmldom.MustParse("<a/>"))
	if a := p.Detect(d); a != nil {
		t.Errorf("alert = %+v, want nil", a)
	}
}

// TestConcurrentDetectDuringRegistration exercises the alerters' locking:
// detection runs while conditions are registered and unregistered. Run
// with -race.
func TestConcurrentDetectDuringRegistration(t *testing.T) {
	p := NewPipeline(nil)
	doc := xmldom.MustParse(`<catalog>
		<product><name>camera</name></product>
		<category>Electronic</category>
	</catalog>`)
	d := xmlDoc("http://conc.example/c.xml", warehouse.StatusNew, doc)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				p.Detect(d)
			}
		}()
	}
	conds := []sublang.Condition{
		{Kind: sublang.CondURLExtends, Str: "http://conc.example/"},
		{Kind: sublang.CondElement, Tag: "product", Str: "camera"},
		{Kind: sublang.CondElement, Change: sublang.OpNew, Tag: "category"},
		{Kind: sublang.CondSelfContains, Str: "electronic"},
		{Kind: sublang.CondSelfChange, Change: sublang.OpNew},
	}
	for round := 0; round < 200; round++ {
		for i, c := range conds {
			p.Register(core.Event(round*len(conds)+i+1), c)
		}
		for i, c := range conds {
			p.Unregister(core.Event(round*len(conds)+i+1), c)
		}
	}
	close(stop)
	wg.Wait()
	if a := p.Detect(d); a != nil {
		t.Errorf("all conditions unregistered, got %v", a.Events)
	}
}

func TestUnregisterDateAndIDConditions(t *testing.T) {
	p := NewPipeline(nil)
	ref := time.Date(2001, 5, 1, 0, 0, 0, 0, time.UTC)
	conds := []sublang.Condition{
		{Kind: sublang.CondLastUpdate, Cmp: sublang.CmpGt, Date: ref},
		{Kind: sublang.CondLastAccessed, Cmp: sublang.CmpLe, Date: ref},
		{Kind: sublang.CondDTDID, Num: 7},
		{Kind: sublang.CondDOCID, Num: 9},
		{Kind: sublang.CondDTD, Str: "http://x/d.dtd"},
		{Kind: sublang.CondDomain, Str: "bio"},
	}
	d := xmlDoc("http://x/a.xml", warehouse.StatusUnchanged, xmldom.MustParse("<a/>"))
	d.Meta.LastUpdate = ref.Add(time.Hour)
	d.Meta.LastAccessed = ref
	d.Meta.DTDID = 7
	d.Meta.DocID = 9
	d.Meta.DTD = "http://x/d.dtd"
	d.Meta.Domain = "bio"
	for i, c := range conds {
		p.Register(core.Event(i+1), c)
	}
	if got := detect(p, d); len(got) != len(conds) {
		t.Fatalf("events = %v, want %d", got, len(conds))
	}
	for i, c := range conds {
		p.Unregister(core.Event(i+1), c)
	}
	if got := detect(p, d); got != nil {
		t.Errorf("after unregister: %v", got)
	}
}

func TestCmpTimeAllComparators(t *testing.T) {
	p := NewPipeline(nil)
	ref := time.Date(2001, 5, 1, 0, 0, 0, 0, time.UTC)
	cases := []struct {
		cmp  sublang.Comparator
		when time.Time
		want bool
	}{
		{sublang.CmpEq, ref, true},
		{sublang.CmpEq, ref.Add(time.Hour), false},
		{sublang.CmpLt, ref.Add(-time.Hour), true},
		{sublang.CmpLt, ref, false},
		{sublang.CmpGt, ref.Add(time.Hour), true},
		{sublang.CmpGt, ref, false},
		{sublang.CmpLe, ref, true},
		{sublang.CmpLe, ref.Add(time.Hour), false},
		{sublang.CmpGe, ref, true},
		{sublang.CmpGe, ref.Add(-time.Hour), false},
	}
	for i, c := range cases {
		cond := sublang.Condition{Kind: sublang.CondLastUpdate, Cmp: c.cmp, Date: ref}
		code := core.Event(100 + i)
		p.Register(code, cond)
		d := xmlDoc("u", warehouse.StatusUnchanged, xmldom.MustParse("<a/>"))
		d.Meta.LastUpdate = c.when
		got := detect(p, d)
		fired := got.Contains(code)
		if fired != c.want {
			t.Errorf("case %d (%v): fired=%v want %v", i, c.cmp, fired, c.want)
		}
		p.Unregister(code, cond)
	}
}

func TestPrefixMemoryExposed(t *testing.T) {
	ua := NewURLAlerter(nil)
	ua.Register(1, sublang.Condition{Kind: sublang.CondURLExtends, Str: "http://x/"})
	if ua.PrefixMemory() <= 0 {
		t.Error("PrefixMemory should be positive")
	}
}

func TestDeletedElementConditions(t *testing.T) {
	p := NewPipeline(nil)
	p.Register(1, sublang.Condition{Kind: sublang.CondElement, Change: sublang.OpDeleted, Tag: "product", Str: "camera"})
	p.Register(2, sublang.Condition{Kind: sublang.CondElement, Change: sublang.OpDeleted, Tag: "product", Str: "camera", Strict: true})
	// Whole-document deletion: every element is deleted.
	doc := xmldom.MustParse(`<catalog><product>camera<name>x</name></product></catalog>`)
	d := xmlDoc("u", warehouse.StatusDeleted, doc)
	got := detect(p, d)
	if !got.Equal(core.EventSet{1, 2}) {
		t.Errorf("events = %v, want {1,2}", got)
	}
}
