// Package alerter implements the first stage of the notification chain
// (Section 6): the URL Alerter, the XML Alerter and the HTML Alerter. For
// every fetched document the alerters detect the atomic events of interest
// and assemble a single alert — the ordered set of atomic event codes —
// which is sent to the Monitoring Query Processor. All the atomic events
// of a document are collected before the alert is sent, so the processor
// sees each document exactly once (Section 6.1).
package alerter

import (
	"sync"

	"xymon/internal/core"
	"xymon/internal/warehouse"
	"xymon/internal/xmldom"
	"xymon/internal/xydiff"
)

// Doc is the unit of work flowing from the crawler through the alerters: a
// fetched page with its metadata, its change status against the warehouse
// and, for XML, the parsed document and the delta to the previous version.
type Doc struct {
	Meta   warehouse.Metadata
	Status warehouse.Status
	// Doc is the current version for XML pages (nil for HTML).
	Doc *xmldom.Document
	// Delta is the change from the previous version (nil unless updated).
	Delta *xydiff.Delta
	// Content is the raw page body for HTML pages.
	Content []byte

	clOnce sync.Once
	cl     *xydiff.Classification
}

// Classification projects the delta onto the current version, computed at
// most once per document no matter how many consumers ask: the XML alerter
// raises its change events from it and the manager filters every
// registered query's `new X` / `updated X` payloads against the same
// instance, where each used to run its own xydiff.Classify. Returns nil
// when there is no parsed document or no delta (nothing to classify).
// Docs are shared by pointer along the pipeline, so the sync.Once also
// makes the lazy computation safe across stages.
func (d *Doc) Classification() *xydiff.Classification {
	if d.Doc == nil || d.Delta == nil {
		return nil
	}
	d.clOnce.Do(func() { d.cl = xydiff.Classify(d.Doc, d.Delta) })
	return d.cl
}

// Alert is what the alerters hand to the Monitoring Query Processor: the
// canonical set of atomic events detected on one document plus the data
// needed to build notifications.
type Alert struct {
	Doc    *Doc
	Events core.EventSet
	// Strong is false when only weak events (document-level change
	// patterns) were detected; such alerts are suppressed (Section 5.1).
	Strong bool
}
