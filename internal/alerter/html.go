package alerter

import (
	"sync"

	"xymon/internal/core"
	"xymon/internal/sublang"
	"xymon/internal/xmldom"
)

// HTMLAlerter detects content events on HTML pages. The paper lists HTML
// alerters as designed but not yet implemented ("Only the first two have
// been implemented", Section 3); this implementation completes them in the
// obvious way: HTML pages are not warehoused, so only whole-page keyword
// containment is supported (`self contains word`), on the raw text of the
// fetched page. Metadata and signature-change events are the URL
// Alerter's job and apply to HTML pages unchanged.
type HTMLAlerter struct {
	mu    sync.RWMutex
	words map[string][]core.Event
}

// NewHTMLAlerter returns an empty HTML alerter.
func NewHTMLAlerter() *HTMLAlerter {
	return &HTMLAlerter{words: make(map[string][]core.Event)}
}

// Handles reports whether the condition kind belongs to this alerter.
func (a *HTMLAlerter) Handles(kind sublang.CondKind) bool {
	return kind == sublang.CondSelfContains
}

// Register wires an atomic event code to a condition.
func (a *HTMLAlerter) Register(code core.Event, cond sublang.Condition) {
	if cond.Kind != sublang.CondSelfContains {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	w := xmldom.NormalizeWord(cond.Str)
	a.words[w] = append(a.words[w], code)
}

// Unregister removes a previously registered (code, condition) pair.
func (a *HTMLAlerter) Unregister(code core.Event, cond sublang.Condition) {
	if cond.Kind != sublang.CondSelfContains {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	w := xmldom.NormalizeWord(cond.Str)
	codes := a.words[w]
	for i, c := range codes {
		if c == code {
			codes = append(codes[:i], codes[i+1:]...)
			break
		}
	}
	if len(codes) == 0 {
		delete(a.words, w)
	} else {
		a.words[w] = codes
	}
}

// Detect appends keyword events found in the raw page body. Matching
// codes are collected under the read lock and emitted after it is
// released, so the emit callback may re-enter the alerter.
func (a *HTMLAlerter) Detect(d *Doc, emit func(core.Event)) {
	if len(d.Content) == 0 {
		return
	}
	words := xmldom.Words(string(d.Content))

	var out []core.Event
	a.mu.RLock()
	if len(a.words) > 0 {
		seen := make(map[string]bool)
		for _, w := range words {
			if seen[w] {
				continue
			}
			if codes, ok := a.words[w]; ok {
				seen[w] = true
				out = append(out, codes...)
			}
		}
	}
	a.mu.RUnlock()

	for _, c := range out {
		emit(c)
	}
}
