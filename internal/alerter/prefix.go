package alerter

import (
	"sort"

	"xymon/internal/core"
)

// PrefixIndex detects `URL extends "prefix"` patterns: given a URL, it
// yields the codes of every registered pattern that is a prefix of it.
// Two implementations exist, matching the ablation of Section 6.2: the
// production hash-table structure and the dictionary (trie) alternative
// the paper measured as ~30% faster but too memory-hungry.
type PrefixIndex interface {
	Add(prefix string, code core.Event)
	Remove(prefix string, code core.Event)
	Lookup(url string, emit func(core.Event))
	Len() int
	MemoryEstimate() int64
}

// HashPrefixIndex stores patterns in a hash table keyed by the full
// pattern and probes the URL's prefixes at every registered pattern
// length. This is the paper's production structure: "the dominating cost
// is the look-up in the million-records hash table".
type HashPrefixIndex struct {
	patterns map[string][]core.Event
	lengths  map[int]int // pattern length -> number of patterns of that length
	sorted   []int       // registered lengths, ascending; maintained by Add/Remove
}

// NewHashPrefixIndex returns an empty hash-based prefix index.
func NewHashPrefixIndex() *HashPrefixIndex {
	return &HashPrefixIndex{
		patterns: make(map[string][]core.Event),
		lengths:  make(map[int]int),
	}
}

// Add registers a pattern. The sorted length list is maintained here and
// in Remove — the alerter's write lock covers both — so that Lookup
// never mutates the index and stays safe under concurrent readers.
func (h *HashPrefixIndex) Add(prefix string, code core.Event) {
	if _, ok := h.patterns[prefix]; !ok {
		if h.lengths[len(prefix)]++; h.lengths[len(prefix)] == 1 {
			i := sort.SearchInts(h.sorted, len(prefix))
			h.sorted = append(h.sorted, 0)
			copy(h.sorted[i+1:], h.sorted[i:])
			h.sorted[i] = len(prefix)
		}
	}
	h.patterns[prefix] = append(h.patterns[prefix], code)
}

// Remove unregisters one (pattern, code) pair.
func (h *HashPrefixIndex) Remove(prefix string, code core.Event) {
	codes, ok := h.patterns[prefix]
	if !ok {
		return
	}
	for i, c := range codes {
		if c == code {
			copy(codes[i:], codes[i+1:])
			codes = codes[:len(codes)-1]
			break
		}
	}
	if len(codes) == 0 {
		delete(h.patterns, prefix)
		if h.lengths[len(prefix)]--; h.lengths[len(prefix)] == 0 {
			delete(h.lengths, len(prefix))
			i := sort.SearchInts(h.sorted, len(prefix))
			h.sorted = append(h.sorted[:i], h.sorted[i+1:]...)
		}
	} else {
		h.patterns[prefix] = codes
	}
}

// Lookup probes each prefix of url whose length matches some registered
// pattern. It is read-only: callers may hold only a read lock and
// overlap freely (the lazy sort that used to live here raced).
func (h *HashPrefixIndex) Lookup(url string, emit func(core.Event)) {
	for _, l := range h.sorted {
		if l > len(url) {
			break
		}
		for _, c := range h.patterns[url[:l]] {
			emit(c)
		}
	}
}

// Len returns the number of distinct patterns.
func (h *HashPrefixIndex) Len() int { return len(h.patterns) }

// MemoryEstimate approximates retained bytes: keys, code slices, buckets.
func (h *HashPrefixIndex) MemoryEstimate() int64 {
	var b int64
	for p, codes := range h.patterns {
		b += int64(len(p)) + 16 /*string header*/ + 24 /*slice header*/ + int64(len(codes))*4 + 16 /*bucket share*/
	}
	return b
}

// TriePrefixIndex is the dictionary alternative: a byte trie walked once
// per URL, so lookup is linear in the URL length regardless of how many
// patterns are registered. Each trie node costs a map and pointers, which
// is the memory overhead that made the paper reject it.
type TriePrefixIndex struct {
	root  *trieNode
	count int
}

type trieNode struct {
	children map[byte]*trieNode
	codes    []core.Event
}

// NewTriePrefixIndex returns an empty trie-based prefix index.
func NewTriePrefixIndex() *TriePrefixIndex {
	return &TriePrefixIndex{root: &trieNode{}}
}

// Add registers a pattern.
func (t *TriePrefixIndex) Add(prefix string, code core.Event) {
	n := t.root
	for i := 0; i < len(prefix); i++ {
		if n.children == nil {
			n.children = make(map[byte]*trieNode)
		}
		c := n.children[prefix[i]]
		if c == nil {
			c = &trieNode{}
			n.children[prefix[i]] = c
		}
		n = c
	}
	if len(n.codes) == 0 {
		t.count++
	}
	n.codes = append(n.codes, code)
}

// Remove unregisters one (pattern, code) pair. Empty branches are left in
// place; the trie is rebuilt wholesale by the manager on compaction.
func (t *TriePrefixIndex) Remove(prefix string, code core.Event) {
	n := t.root
	for i := 0; i < len(prefix); i++ {
		c := n.children[prefix[i]]
		if c == nil {
			return
		}
		n = c
	}
	for i, x := range n.codes {
		if x == code {
			copy(n.codes[i:], n.codes[i+1:])
			n.codes = n.codes[:len(n.codes)-1]
			break
		}
	}
	if len(n.codes) == 0 {
		t.count--
	}
}

// Lookup walks the trie along the URL, emitting codes at every marked node.
func (t *TriePrefixIndex) Lookup(url string, emit func(core.Event)) {
	n := t.root
	for _, c := range n.codes {
		emit(c)
	}
	for i := 0; i < len(url); i++ {
		n = n.children[url[i]]
		if n == nil {
			return
		}
		for _, c := range n.codes {
			emit(c)
		}
	}
}

// Len returns the number of distinct marked patterns.
func (t *TriePrefixIndex) Len() int { return t.count }

// MemoryEstimate approximates retained bytes across trie nodes.
func (t *TriePrefixIndex) MemoryEstimate() int64 {
	var walk func(n *trieNode) int64
	walk = func(n *trieNode) int64 {
		b := int64(24 /*codes header*/ + len(n.codes)*4 + 8 /*map ptr*/)
		if n.children != nil {
			b += int64(len(n.children)) * (1 + 8 + 16) // key + ptr + bucket share
			for _, c := range n.children {
				b += walk(c)
			}
		}
		return b
	}
	return walk(t.root)
}
