package alerter

import (
	"sync"

	"xymon/internal/core"
	"xymon/internal/sublang"
	"xymon/internal/warehouse"
)

// Pipeline chains the alerters of Figure 7: a document is handled first by
// the URL Alerter, then by the XML or HTML Alerter depending on its type,
// and all detected atomic events are assembled into a single alert. The
// pipeline also applies the weak/strong rule of Section 5.1: an alert is
// produced only when at least one strong atomic event was detected.
type Pipeline struct {
	URL  *URLAlerter
	XML  *XMLAlerter
	HTML *HTMLAlerter

	mu   sync.RWMutex
	weak map[core.Event]bool // codes of weak (document change) events
}

// NewPipeline assembles the default alerter chain; prefixes selects the
// `URL extends` structure (nil for the default hash index).
func NewPipeline(prefixes PrefixIndex) *Pipeline {
	return &Pipeline{
		URL:  NewURLAlerter(prefixes),
		XML:  NewXMLAlerter(),
		HTML: NewHTMLAlerter(),
		weak: make(map[core.Event]bool),
	}
}

// Register wires an atomic event code to its condition across the chain.
func (p *Pipeline) Register(code core.Event, cond sublang.Condition) {
	if p.URL.Handles(cond.Kind) {
		p.URL.Register(code, cond)
	}
	if p.XML.Handles(cond.Kind) {
		p.XML.Register(code, cond)
	}
	if p.HTML.Handles(cond.Kind) {
		p.HTML.Register(code, cond)
	}
	if cond.Weak() {
		p.mu.Lock()
		p.weak[code] = true
		p.mu.Unlock()
	}
}

// Unregister removes the code's condition from the chain.
func (p *Pipeline) Unregister(code core.Event, cond sublang.Condition) {
	if p.URL.Handles(cond.Kind) {
		p.URL.Unregister(code, cond)
	}
	if p.XML.Handles(cond.Kind) {
		p.XML.Unregister(code, cond)
	}
	if p.HTML.Handles(cond.Kind) {
		p.HTML.Unregister(code, cond)
	}
	p.mu.Lock()
	delete(p.weak, code)
	p.mu.Unlock()
}

// detectScratch is the per-document working state of Detect, recycled
// through a sync.Pool so the no-event common case allocates nothing. The
// emit closure is built once per scratch — handing a fresh closure to the
// alerters on every document would itself allocate.
type detectScratch struct {
	events []core.Event
	emit   func(core.Event)
	// seen dedups self-contains words; frames and words are the explicit
	// stacks of detectPresence's iterative walk. They live on the same
	// scratch so the common no-match document allocates nothing.
	seen   map[string]bool
	frames []presenceFrame
	words  []string
}

var detectPool = sync.Pool{New: func() any {
	sc := &detectScratch{
		events: make([]core.Event, 0, 16),
		seen:   make(map[string]bool, 8),
	}
	sc.emit = func(c core.Event) { sc.events = append(sc.events, c) }
	return sc
}}

// Detect runs the chain on one document and returns the alert: the
// canonical atomic event set plus the strong flag. A nil alert means no
// event of interest was detected at all.
func (p *Pipeline) Detect(d *Doc) *Alert {
	sc := detectPool.Get().(*detectScratch)
	sc.events = sc.events[:0]
	p.URL.Detect(d, sc.emit)
	if d.Meta.Type == warehouse.XML {
		p.XML.detectWith(d, sc.emit, sc)
	} else {
		p.HTML.Detect(d, sc.emit)
	}
	if len(sc.events) == 0 {
		detectPool.Put(sc)
		return nil
	}
	set := core.Canonical(sc.events) // copies, so the scratch can be reused
	detectPool.Put(sc)
	p.mu.RLock()
	strong := false
	for _, e := range set {
		if !p.weak[e] {
			strong = true
			break
		}
	}
	p.mu.RUnlock()
	return &Alert{Doc: d, Events: set, Strong: strong}
}
