package alerter

import (
	"sync"

	"xymon/internal/core"
	"xymon/internal/sublang"
	"xymon/internal/warehouse"
	"xymon/internal/xmldom"
)

// tagTable maps an element tag to atomic event codes — the TagTable of
// Figure 8, reached through the WordTable.
type tagTable map[string][]core.Event

// wordTable maps an interesting word to its per-tag code table.
type wordTable map[string]tagTable

func (w wordTable) add(word, tag string, code core.Event) {
	t := w[word]
	if t == nil {
		t = make(tagTable)
		w[word] = t
	}
	t[tag] = append(t[tag], code)
}

func (w wordTable) remove(word, tag string, code core.Event) {
	t := w[word]
	if t == nil {
		return
	}
	codes := t[tag]
	for i, c := range codes {
		if c == code {
			codes = append(codes[:i], codes[i+1:]...)
			break
		}
	}
	if len(codes) == 0 {
		delete(t, tag)
		if len(t) == 0 {
			delete(w, word)
		}
	} else {
		t[tag] = codes
	}
}

// changeTable indexes element change conditions: change op -> tag -> list
// of (word constraint, code).
type changeTable map[sublang.ChangeOp]map[string][]changeCond

type changeCond struct {
	word   string // empty means no contains constraint
	strict bool
	code   core.Event
}

func (ct changeTable) add(op sublang.ChangeOp, tag string, cc changeCond) {
	byTag := ct[op]
	if byTag == nil {
		byTag = make(map[string][]changeCond)
		ct[op] = byTag
	}
	byTag[tag] = append(byTag[tag], cc)
}

func (ct changeTable) remove(op sublang.ChangeOp, tag string, code core.Event) {
	byTag := ct[op]
	if byTag == nil {
		return
	}
	conds := byTag[tag]
	for i, c := range conds {
		if c.code == code {
			conds = append(conds[:i], conds[i+1:]...)
			break
		}
	}
	if len(conds) == 0 {
		delete(byTag, tag)
		if len(byTag) == 0 {
			delete(ct, op)
		}
	} else {
		byTag[tag] = conds
	}
}

// XMLAlerter detects element-level atomic events on XML documents
// (Section 6.3): presence conditions `tag (strict) contains word` via a
// postorder traversal with the WordTable→TagTable structure of Figure 8,
// change conditions `new/updated/deleted tag …` via the delta
// classification, and `self contains word` over the whole document.
type XMLAlerter struct {
	mu sync.RWMutex
	// contains / strictContains are the two word tables of Figure 8.
	contains wordTable
	strict   wordTable
	// selfContains maps a word to codes of `self contains word`.
	selfContains map[string][]core.Event
	// changes indexes element change conditions.
	changes changeTable
}

// NewXMLAlerter returns an empty XML alerter.
func NewXMLAlerter() *XMLAlerter {
	return &XMLAlerter{
		contains:     make(wordTable),
		strict:       make(wordTable),
		selfContains: make(map[string][]core.Event),
		changes:      make(changeTable),
	}
}

// Handles reports whether the condition kind belongs to this alerter.
func (a *XMLAlerter) Handles(kind sublang.CondKind) bool {
	return kind == sublang.CondElement || kind == sublang.CondSelfContains
}

// Register wires an atomic event code to a condition.
func (a *XMLAlerter) Register(code core.Event, cond sublang.Condition) {
	a.mu.Lock()
	defer a.mu.Unlock()
	switch cond.Kind {
	case sublang.CondSelfContains:
		w := xmldom.NormalizeWord(cond.Str)
		a.selfContains[w] = append(a.selfContains[w], code)
	case sublang.CondElement:
		word := xmldom.NormalizeWord(cond.Str)
		if cond.Change == sublang.NoChange {
			if cond.Strict {
				a.strict.add(word, cond.Tag, code)
			} else {
				a.contains.add(word, cond.Tag, code)
			}
		} else {
			a.changes.add(cond.Change, cond.Tag, changeCond{word: word, strict: cond.Strict, code: code})
		}
	}
}

// Unregister removes a previously registered (code, condition) pair.
func (a *XMLAlerter) Unregister(code core.Event, cond sublang.Condition) {
	a.mu.Lock()
	defer a.mu.Unlock()
	switch cond.Kind {
	case sublang.CondSelfContains:
		w := xmldom.NormalizeWord(cond.Str)
		codes := a.selfContains[w]
		for i, c := range codes {
			if c == code {
				codes = append(codes[:i], codes[i+1:]...)
				break
			}
		}
		if len(codes) == 0 {
			delete(a.selfContains, w)
		} else {
			a.selfContains[w] = codes
		}
	case sublang.CondElement:
		word := xmldom.NormalizeWord(cond.Str)
		if cond.Change == sublang.NoChange {
			if cond.Strict {
				a.strict.remove(word, cond.Tag, code)
			} else {
				a.contains.remove(word, cond.Tag, code)
			}
		} else {
			a.changes.remove(cond.Change, cond.Tag, code)
		}
	}
}

// HasChangeConds reports whether any element change condition
// (new/updated/deleted) is registered. While one is, the ingest gate must
// commit every document — change semantics need version history, so no
// page may be skipped, matching words or not.
func (a *XMLAlerter) HasChangeConds() bool {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return len(a.changes) > 0
}

// Detect appends the element-level atomic events raised by the document.
func (a *XMLAlerter) Detect(d *Doc, emit func(core.Event)) {
	sc := detectPool.Get().(*detectScratch)
	a.detectWith(d, emit, sc)
	detectPool.Put(sc)
}

// detectWith is Detect with caller-supplied scratch; the pipeline passes
// its own so one pooled scratch serves the whole chain.
func (a *XMLAlerter) detectWith(d *Doc, emit func(core.Event), sc *detectScratch) {
	if d.Doc == nil || d.Doc.Root == nil {
		return
	}
	a.mu.RLock()
	defer a.mu.RUnlock()
	a.detectPresence(d.Doc.Root, emit, sc)
	a.detectSelfContains(d.Doc.Root, emit, sc)
	a.detectChanges(d, emit)
}

// presenceFrame is one open element of detectPresence's explicit walk:
// the node, the next child to visit, and the offset of the element's
// first subtree word in the shared word stack.
type presenceFrame struct {
	n     *xmldom.Node
	child int
	base  int
}

// detectPresence runs the postorder algorithm of Section 6.3. Every node n
// contributes the pair (level, content); walking in postorder, the words
// of the subtree rooted at n are exactly the words collected since n's
// subtree began. Only interesting words — entries of a WordTable — are
// retained, as the paper notes, so memory stays proportional to the
// matches rather than the document. All subtrees share one word stack:
// an element's words are words[base:], and since the offsets nest, a
// closing element simply leaves its words in place for the parent — no
// per-frame copying, no recursion (deep chains must not overflow the
// goroutine stack; PR 5 made Hash64 and TextContent iterative for the
// same reason).
func (a *XMLAlerter) detectPresence(root *xmldom.Node, emit func(core.Event), sc *detectScratch) {
	if len(a.contains) == 0 && len(a.strict) == 0 {
		return
	}
	if root.Type != xmldom.ElementNode {
		return
	}
	words := sc.words[:0]
	frames := append(sc.frames[:0], presenceFrame{n: root})
	for len(frames) > 0 {
		f := &frames[len(frames)-1]
		if f.child < len(f.n.Children) {
			c := f.n.Children[f.child]
			f.child++
			if c.Type == xmldom.TextNode {
				// Direct data children feed both `strict contains` on this
				// element and the subtree word list.
				for _, w := range xmldom.Words(c.Text) {
					if _, ok := a.contains[w]; ok {
						words = append(words, w)
					}
					if t, ok := a.strict[w]; ok {
						for _, code := range t[f.n.Tag] {
							emit(code)
						}
					}
				}
				continue
			}
			frames = append(frames, presenceFrame{n: c, base: len(words)})
			continue
		}
		// The closing element's subtree words against the contains table.
		for _, w := range words[f.base:] {
			if t, ok := a.contains[w]; ok {
				for _, code := range t[f.n.Tag] {
					emit(code)
				}
			}
		}
		frames = frames[:len(frames)-1]
	}
	sc.words = words[:0]
	sc.frames = frames
}

func (a *XMLAlerter) detectSelfContains(root *xmldom.Node, emit func(core.Event), sc *detectScratch) {
	if len(a.selfContains) == 0 {
		return
	}
	seen := sc.seen
	root.PostOrder(func(n *xmldom.Node) bool {
		if n.Type != xmldom.TextNode {
			return true
		}
		for _, w := range xmldom.Words(n.Text) {
			if seen[w] {
				continue
			}
			if codes, ok := a.selfContains[w]; ok {
				seen[w] = true
				for _, c := range codes {
					emit(c)
				}
			}
		}
		return true
	})
	clear(seen)
}

// detectChanges raises element change events. On a new document every
// element is new; on an update the delta classification supplies the new,
// updated and deleted elements.
func (a *XMLAlerter) detectChanges(d *Doc, emit func(core.Event)) {
	if len(a.changes) == 0 {
		return
	}
	newTbl := a.changes[sublang.OpNew]
	updTbl := a.changes[sublang.OpUpdated]
	delTbl := a.changes[sublang.OpDeleted]
	check := func(tbl map[string][]changeCond, n *xmldom.Node) {
		if tbl == nil {
			return
		}
		conds, ok := tbl[n.Tag]
		if !ok {
			return
		}
		// Many conditions typically share a tag (one per subscriber word);
		// the element's text is materialised once for all of them.
		text, haveText := "", false
		for _, cc := range conds {
			if cc.word == "" {
				emit(cc.code)
				continue
			}
			if cc.strict {
				for _, c := range n.Children {
					if c.Type == xmldom.TextNode && xmldom.ContainsWord(c.Text, cc.word) {
						emit(cc.code)
						break
					}
				}
				continue
			}
			if !haveText {
				text, haveText = n.TextContent(), true
			}
			if xmldom.ContainsWord(text, cc.word) {
				emit(cc.code)
			}
		}
	}
	switch d.Status {
	case warehouse.StatusNew:
		if newTbl == nil {
			return
		}
		d.Doc.Root.PreOrder(func(n *xmldom.Node) bool {
			if n.Type == xmldom.ElementNode {
				check(newTbl, n)
			}
			return true
		})
	case warehouse.StatusUpdated:
		cl := d.Classification()
		if cl == nil {
			return
		}
		for _, n := range cl.NewElems {
			check(newTbl, n)
		}
		for _, n := range cl.UpdatedElems {
			check(updTbl, n)
		}
		for _, sub := range cl.DeletedSubtrees {
			sub.PreOrder(func(n *xmldom.Node) bool {
				if n.Type == xmldom.ElementNode {
					check(delTbl, n)
				}
				return true
			})
		}
	case warehouse.StatusDeleted:
		if delTbl == nil {
			return
		}
		d.Doc.Root.PreOrder(func(n *xmldom.Node) bool {
			if n.Type == xmldom.ElementNode {
				check(delTbl, n)
			}
			return true
		})
	}
}
