package cluster

import (
	"errors"
	"net"
	"testing"
	"time"

	"xymon/internal/core"
)

// twoBlocks builds a two-block cluster with known partitions: block A
// holds complex 0 ← {1}, block B holds complex 1 ← {2}. It returns both
// servers so tests can kill and resurrect them individually.
func twoBlocks(t *testing.T) (srvA, srvB *Server) {
	t.Helper()
	a, b := core.NewMatcher(), core.NewMatcher()
	if err := a.Add(0, []core.Event{1}); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(1, []core.Event{2}); err != nil {
		t.Fatal(err)
	}
	srvA, err := Serve("127.0.0.1:0", core.Freeze(a))
	if err != nil {
		t.Fatalf("Serve A: %v", err)
	}
	t.Cleanup(func() { srvA.Close() })
	srvB, err = Serve("127.0.0.1:0", core.Freeze(b))
	if err != nil {
		t.Fatalf("Serve B: %v", err)
	}
	t.Cleanup(func() { srvB.Close() })
	return srvA, srvB
}

// restartBlock brings a block back up on the address it previously held.
func restartBlock(t *testing.T, addr string, id core.ComplexID, events []core.Event) *Server {
	t.Helper()
	m := core.NewMatcher()
	if err := m.Add(id, events); err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(addr, core.Freeze(m))
	if err != nil {
		t.Fatalf("restart on %s: %v", addr, err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// TestDegradedPartialResults kills one of two blocks and checks the
// client keeps answering with the surviving block's matches, flagged
// Degraded, instead of failing the whole document.
func TestDegradedPartialResults(t *testing.T) {
	srvA, srvB := twoBlocks(t)
	client, err := DialWith([]ClientOption{
		WithTimeouts(time.Second, time.Second),
		WithRetries(1),
		WithDownCooldown(10*time.Millisecond, 50*time.Millisecond),
	}, srvA.Addr(), srvB.Addr())
	if err != nil {
		t.Fatalf("DialWith: %v", err)
	}
	defer client.Close()

	set := core.Canonical([]core.Event{1, 2})
	res, err := client.MatchResult(set)
	if err != nil || res.Degraded || len(res.IDs) != 2 {
		t.Fatalf("healthy MatchResult = %+v, %v", res, err)
	}

	addrB := srvB.Addr()
	srvB.Close()
	res, err = client.MatchResult(set)
	if err != nil {
		t.Fatalf("degraded MatchResult errored: %v", err)
	}
	if !res.Degraded {
		t.Fatal("one block down: result not flagged Degraded")
	}
	if len(res.Down) != 1 || res.Down[0] != addrB {
		t.Errorf("Down = %v, want [%s]", res.Down, addrB)
	}
	if len(res.IDs) != 1 || res.IDs[0] != 0 {
		t.Errorf("partial IDs = %v, want the surviving block's [0]", res.IDs)
	}
	if st := client.Stats(); st.Degraded == 0 || st.BlockFailures == 0 {
		t.Errorf("stats = %+v, want degraded and block-failure counts", st)
	}

	// Resurrect block B; Probe reconnects it immediately (no cooldown
	// wait) and full results come back.
	restartBlock(t, addrB, 1, []core.Event{2})
	deadline := time.Now().Add(5 * time.Second)
	for client.Probe() != 2 {
		if time.Now().After(deadline) {
			t.Fatal("Probe never brought block B back")
		}
		time.Sleep(10 * time.Millisecond)
	}
	res, err = client.MatchResult(set)
	if err != nil || res.Degraded || len(res.IDs) != 2 {
		t.Fatalf("post-recovery MatchResult = %+v, %v", res, err)
	}
	if st := client.Stats(); st.Reconnects == 0 {
		t.Errorf("stats = %+v, want a reconnect recorded", st)
	}
}

// TestAllBlocksDownErrors pins the no-degradation boundary: when every
// block is unreachable there is nothing to degrade to, so Match errors
// (it must not silently return zero matches).
func TestAllBlocksDownErrors(t *testing.T) {
	srvA, srvB := twoBlocks(t)
	client, err := DialWith([]ClientOption{
		WithRetries(0),
		WithDownCooldown(time.Minute, time.Minute),
	}, srvA.Addr(), srvB.Addr())
	if err != nil {
		t.Fatalf("DialWith: %v", err)
	}
	defer client.Close()
	srvA.Close()
	srvB.Close()
	if _, err := client.Match(core.EventSet{1, 2}); err == nil {
		t.Fatal("Match with every block down returned nil error")
	}
}

// TestDownCooldownSkipsAndRecovers checks the cooldown bookkeeping on a
// virtual clock: a failed block is skipped instantly while cooling down,
// and the first match after the window re-dials it.
func TestDownCooldownSkipsAndRecovers(t *testing.T) {
	now := time.Unix(1_000_000, 0)
	clock := func() time.Time { return now }
	srvA, srvB := twoBlocks(t)
	client, err := DialWith([]ClientOption{
		WithRetries(0),
		WithDownCooldown(time.Minute, time.Hour),
		WithClientClock(clock),
	}, srvA.Addr(), srvB.Addr())
	if err != nil {
		t.Fatalf("DialWith: %v", err)
	}
	defer client.Close()

	addrB := srvB.Addr()
	srvB.Close()
	set := core.Canonical([]core.Event{1, 2})
	if res, err := client.MatchResult(set); err != nil || !res.Degraded {
		t.Fatalf("first MatchResult = %+v, %v", res, err)
	}
	var down *BlockHealth
	for _, h := range client.Health() {
		if h.Addr == addrB {
			h := h
			down = &h
		}
	}
	if down == nil || down.Up || down.Fails == 0 || !down.DownUntil.After(now) {
		t.Fatalf("block B health = %+v, want down with a cooldown window", down)
	}

	// Inside the cooldown the block is skipped without dialing: even with
	// the server back up, the result stays degraded.
	restartBlock(t, addrB, 1, []core.Event{2})
	if res, err := client.MatchResult(set); err != nil || !res.Degraded {
		t.Fatalf("in-cooldown MatchResult = %+v, %v", res, err)
	}

	// Past the window the next match doubles as the health probe.
	now = now.Add(2 * time.Minute)
	deadline := time.Now().Add(5 * time.Second)
	for {
		res, err := client.MatchResult(set)
		if err == nil && !res.Degraded && len(res.IDs) == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("block B never probed back in: %+v, %v", res, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, h := range client.Health() {
		if h.Addr == addrB && (!h.Up || h.Fails != 0) {
			t.Errorf("recovered block health = %+v", h)
		}
	}
}

// TestMatchNeverHangsOnSilentPeer points the client at a peer that
// accepts connections and then says nothing: the I/O deadline must turn
// the hang into a bounded failure.
func TestMatchNeverHangsOnSilentPeer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // hold it open, never respond
		}
	}()
	client, err := DialWith([]ClientOption{
		WithTimeouts(time.Second, 200*time.Millisecond),
		WithRetries(0),
	}, ln.Addr().String())
	if err != nil {
		t.Fatalf("DialWith: %v", err)
	}
	defer client.Close()
	start := time.Now()
	if _, err := client.Match(core.EventSet{1}); err == nil {
		t.Fatal("Match against a silent peer returned nil error")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("Match took %v, want deadline-bounded (~200ms)", elapsed)
	}
}

// TestRemoteErrorNotRetried pins that an error frame from a live block is
// surfaced directly: the transport worked, so retrying or marking the
// block down would be wrong.
func TestRemoteErrorNotRetried(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 256)
				if _, err := c.Read(buf); err != nil {
					return
				}
				msg := []byte("bad request")
				c.Write([]byte{'E', byte(len(msg)), 0, 0, 0})
				c.Write(msg)
			}(conn)
		}
	}()
	client, err := DialWith([]ClientOption{WithRetries(3)}, ln.Addr().String())
	if err != nil {
		t.Fatalf("DialWith: %v", err)
	}
	defer client.Close()
	_, err = client.Match(core.EventSet{1})
	var remote *RemoteError
	if !errors.As(err, &remote) || remote.Msg != "bad request" {
		t.Fatalf("Match = %v, want RemoteError(bad request)", err)
	}
	if st := client.Stats(); st.Retries != 0 {
		t.Errorf("remote error consumed %d retries, want 0", st.Retries)
	}
}

// TestServerSurvivesAbruptDisconnect tears a client away mid-frame and
// checks the server keeps serving fresh connections.
func TestServerSurvivesAbruptDisconnect(t *testing.T) {
	m := core.NewMatcher()
	if err := m.Add(7, []core.Event{3}); err != nil {
		t.Fatal(err)
	}
	srv, err := Serve("127.0.0.1:0", core.Freeze(m))
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()

	// Announce a 4-event frame, send half of one event, vanish.
	raw, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	raw.Write([]byte{'M', 4, 0, 0, 0, 0xAA, 0xBB})
	raw.Close()

	// And another that disconnects before even finishing the header.
	raw2, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	raw2.Write([]byte{'M', 1})
	raw2.Close()

	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatalf("Dial after abrupt disconnects: %v", err)
	}
	defer client.Close()
	ids, err := client.Match(core.EventSet{3})
	if err != nil || len(ids) != 1 || ids[0] != 7 {
		t.Fatalf("Match after abrupt disconnects = %v, %v", ids, err)
	}
}
