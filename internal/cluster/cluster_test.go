package cluster

import (
	"io"
	"math/rand"
	"net"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"xymon/internal/core"
)

// startCluster splits a random subscription base over nBlocks servers and
// returns a connected client, the reference single matcher, and a cleanup.
func startCluster(t *testing.T, nBlocks, nComplex, universe int, seed int64) (*Client, *core.Matcher) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	reference := core.NewMatcher()
	blocks := make([]*core.Matcher, nBlocks)
	for i := range blocks {
		blocks[i] = core.NewMatcher()
	}
	for id := core.ComplexID(0); int(id) < nComplex; id++ {
		events := make([]core.Event, 1+rng.Intn(4))
		for i := range events {
			events[i] = core.Event(rng.Intn(universe))
		}
		if err := reference.Add(id, events); err != nil {
			t.Fatalf("Add: %v", err)
		}
		if err := blocks[int(id)%nBlocks].Add(id, events); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	addrs := make([]string, nBlocks)
	for i, b := range blocks {
		srv, err := Serve("127.0.0.1:0", core.Freeze(b))
		if err != nil {
			t.Fatalf("Serve: %v", err)
		}
		t.Cleanup(func() { srv.Close() })
		addrs[i] = srv.Addr()
	}
	client, err := Dial(addrs...)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { client.Close() })
	return client, reference
}

func sorted(ids []core.ComplexID) []core.ComplexID {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func TestDistributedMatchAgreesWithLocal(t *testing.T) {
	const universe = 100
	client, reference := startCluster(t, 3, 500, universe, 51)
	rng := rand.New(rand.NewSource(52))
	for trial := 0; trial < 50; trial++ {
		events := make([]core.Event, rng.Intn(15))
		for i := range events {
			events[i] = core.Event(rng.Intn(universe))
		}
		s := core.Canonical(events)
		got, err := client.Match(s)
		if err != nil {
			t.Fatalf("Match: %v", err)
		}
		want := reference.Match(s)
		got, want = sorted(got), sorted(want)
		if len(got) != len(want) {
			t.Fatalf("Match(%v) = %v, want %v", s, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("Match(%v) = %v, want %v", s, got, want)
			}
		}
	}
}

func TestConcurrentClients(t *testing.T) {
	const universe = 80
	client, reference := startCluster(t, 2, 300, universe, 53)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 30; i++ {
				events := make([]core.Event, 1+rng.Intn(10))
				for j := range events {
					events[j] = core.Event(rng.Intn(universe))
				}
				s := core.Canonical(events)
				got, err := client.Match(s)
				if err != nil {
					t.Errorf("Match: %v", err)
					return
				}
				if len(got) != len(reference.Match(s)) {
					t.Errorf("result size mismatch for %v", s)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
}

func TestEmptyMatch(t *testing.T) {
	client, _ := startCluster(t, 2, 10, 50, 54)
	got, err := client.Match(nil)
	if err != nil {
		t.Fatalf("Match(nil): %v", err)
	}
	if len(got) != 0 {
		t.Errorf("Match(nil) = %v", got)
	}
}

func TestClientClosedErrors(t *testing.T) {
	client, _ := startCluster(t, 1, 10, 50, 55)
	client.Close()
	if _, err := client.Match(core.EventSet{1}); err == nil {
		t.Error("Match on closed client should fail")
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Error("Dial to a dead port should fail")
	}
}

func TestServerCloseUnblocksAccept(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", core.Freeze(core.NewMatcher()))
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

func TestProtocolErrorHandling(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", core.Freeze(core.NewMatcher()))
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()

	// Garbage frame kind: the server answers with an error frame.
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer conn.Close()
	conn.Write([]byte{'X', 0, 0, 0, 0})
	buf := make([]byte, 1)
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(conn, buf); err != nil || buf[0] != 'E' {
		t.Errorf("expected error frame, got %q err %v", buf, err)
	}

	// Oversized length: rejected, error frame again.
	conn2, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer conn2.Close()
	frame := []byte{'M', 0xFF, 0xFF, 0xFF, 0x7F}
	conn2.Write(frame)
	conn2.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(conn2, buf); err != nil || buf[0] != 'E' {
		t.Errorf("oversized frame: got %q err %v", buf, err)
	}
}

func TestClientAgainstMisbehavingServer(t *testing.T) {
	// A fake "server" that answers every request with an error frame.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 256)
				for {
					if _, err := c.Read(buf); err != nil {
						return
					}
					msg := []byte("synthetic failure")
					c.Write([]byte{'E', byte(len(msg)), 0, 0, 0})
					c.Write(msg)
				}
			}(conn)
		}
	}()
	client, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer client.Close()
	_, err = client.Match(core.EventSet{1})
	if err == nil || !strings.Contains(err.Error(), "synthetic failure") {
		t.Errorf("Match error = %v, want remote failure surfaced", err)
	}
}
