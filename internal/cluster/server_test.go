package cluster

import (
	"encoding/binary"
	"io"
	"net"
	"testing"
	"time"

	"xymon/internal/core"
	"xymon/internal/faults"
)

// TestIdleConnectionReaped is the regression test for the
// connect-and-stall hang: a client that opens a connection and never
// sends a request used to pin a server goroutine (and its conn) forever.
// The per-request read deadline must reap it.
func TestIdleConnectionReaped(t *testing.T) {
	m := core.NewMatcher()
	if err := m.Add(1, []core.Event{4}); err != nil {
		t.Fatal(err)
	}
	srv, err := Serve("127.0.0.1:0", core.Freeze(m), WithReadIdle(100*time.Millisecond))
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()

	stall, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer stall.Close()
	// Send nothing. The server must close its end within ~the idle
	// window; our read unblocks with EOF instead of hanging.
	stall.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	start := time.Now()
	if _, err := stall.Read(buf); err == nil {
		t.Fatal("stalled connection read data, want the server to hang up")
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("server never reaped the idle connection")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("idle reap took %v, want ~100ms", elapsed)
	}

	// The server is still serving fresh clients.
	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatalf("Dial after stall: %v", err)
	}
	defer client.Close()
	if ids, err := client.Match(core.EventSet{4}); err != nil || len(ids) != 1 {
		t.Fatalf("Match after stall = %v, %v", ids, err)
	}
}

// TestReadIdleAllowsActiveClient pins that the deadline is per request,
// not per connection: a client pausing less than the idle window between
// requests keeps its connection.
func TestReadIdleAllowsActiveClient(t *testing.T) {
	m := core.NewMatcher()
	if err := m.Add(1, []core.Event{4}); err != nil {
		t.Fatal(err)
	}
	srv, err := Serve("127.0.0.1:0", core.Freeze(m), WithReadIdle(300*time.Millisecond))
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()
	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer client.Close()
	for i := 0; i < 4; i++ {
		if ids, err := client.Match(core.EventSet{4}); err != nil || len(ids) != 1 {
			t.Fatalf("request %d = %v, %v", i, ids, err)
		}
		time.Sleep(100 * time.Millisecond) // well under the idle window
	}
	if st := client.Stats(); st.Reconnects != 0 {
		t.Errorf("active client was disconnected %d times", st.Reconnects)
	}
}

// TestAcceptLoopBackoffStopsOnClose breaks the listener out from under
// the accept loop — every Accept now fails instantly, the condition that
// used to hot-spin — and checks Close still terminates the server
// promptly (the backoff sleep must watch the closing channel).
func TestAcceptLoopBackoffStopsOnClose(t *testing.T) {
	srv, err := ServeDynamic("127.0.0.1:0", nil)
	if err != nil {
		t.Fatalf("ServeDynamic: %v", err)
	}
	srv.ln.Close() // out-of-band: acceptLoop sees persistent errors
	time.Sleep(50 * time.Millisecond)
	done := make(chan struct{})
	go func() {
		srv.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung while the accept loop was backing off")
	}
}

// TestServerInjectorSeams drives a match through server-side injected
// faults at the accept and read points and checks the client's retry
// machinery rides them out — and that the injector actually fired, which
// is what makes the seams visible to fault-coverage analysis.
func TestServerInjectorSeams(t *testing.T) {
	in := faults.New(11)
	in.Enable(faults.Rule{Point: faults.PointAccept, Mode: faults.ModeError, Count: 1})
	in.Enable(faults.Rule{Point: faults.PointServeRead, Mode: faults.ModeError, Count: 1})
	in.Enable(faults.Rule{Point: faults.PointServeWrite, Mode: faults.ModeError, Count: 1})
	srv, err := ServeDynamic("127.0.0.1:0", nil, WithServerInjector(in))
	if err != nil {
		t.Fatalf("ServeDynamic: %v", err)
	}
	defer srv.Close()

	m := BuildMap(1, 1, []string{srv.Addr()})
	rc := NewRingClientWithMap(m, WithTimeouts(time.Second, time.Second), WithRetries(3),
		WithDownCooldown(time.Millisecond, 5*time.Millisecond))
	defer rc.Close()

	if err := rc.Add(9, []core.Event{3}); err != nil {
		t.Fatalf("Add through server faults: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		res, err := rc.MatchResult(core.Canonical([]core.Event{3}))
		if err == nil && len(res.IDs) == 1 && res.IDs[0] == 9 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("match never recovered from injected server faults: %+v, %v", res, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	stats := in.Stats()
	fired := 0
	for _, p := range []faults.Point{faults.PointAccept, faults.PointServeRead, faults.PointServeWrite} {
		fired += int(stats[p].Total())
	}
	if fired < 3 {
		t.Errorf("server fault points fired %d times, want all three seams exercised: %+v", fired, stats)
	}
}

// TestOversizedFrameRejected sends a v2 frame whose declared length
// exceeds the blob cap: the server must answer with a protocol error (or
// hang up), never attempt the multi-gigabyte allocation.
func TestOversizedFrameRejected(t *testing.T) {
	srv, err := ServeDynamic("127.0.0.1:0", nil)
	if err != nil {
		t.Fatalf("ServeDynamic: %v", err)
	}
	defer srv.Close()
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer conn.Close()
	hdr := make([]byte, 5)
	hdr[0] = kindMatchV2
	binary.LittleEndian.PutUint32(hdr[1:], maxBlob+1)
	if _, err := conn.Write(hdr); err != nil {
		t.Fatalf("Write: %v", err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	kind := make([]byte, 1)
	if _, err := io.ReadFull(conn, kind); err != nil {
		return // hang-up is acceptable
	}
	if kind[0] != kindError {
		t.Fatalf("oversized frame answered with %q, want an error frame", kind[0])
	}
}

// TestTruncatedFrameReaped sends a v2 header promising more payload than
// ever arrives: the read deadline must reap the connection instead of
// waiting forever, and the server must keep serving others.
func TestTruncatedFrameReaped(t *testing.T) {
	srv, err := ServeDynamic("127.0.0.1:0", nil, WithReadIdle(100*time.Millisecond))
	if err != nil {
		t.Fatalf("ServeDynamic: %v", err)
	}
	defer srv.Close()
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer conn.Close()
	hdr := make([]byte, 5)
	hdr[0] = kindAdd
	binary.LittleEndian.PutUint32(hdr[1:], 64)
	conn.Write(append(hdr, 1, 2, 3)) // 3 of 64 promised bytes, then silence
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 16)
	if _, err := conn.Read(buf); err == nil {
		// An error frame is fine too; what matters is the conn resolves.
		return
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("server held a truncated frame open past the idle window")
	}

	// Server health check after the abuse.
	m := BuildMap(1, 1, []string{srv.Addr()})
	rc := NewRingClientWithMap(m, WithTimeouts(time.Second, time.Second))
	defer rc.Close()
	if err := rc.Add(4, []core.Event{8}); err != nil {
		t.Fatalf("Add after truncated-frame abuse: %v", err)
	}
	ids, err := rc.Match(core.Canonical([]core.Event{8}))
	if err != nil || len(ids) != 1 {
		t.Fatalf("Match after abuse = %v, %v", ids, err)
	}
}

// TestRingProbeHealthTransitions walks the ring client's health life
// cycle: up → down with a cooldown window after a kill → resurrected by
// an explicit Probe that ignores the cooldown.
func TestRingProbeHealthTransitions(t *testing.T) {
	dyn := core.NewMatcher()
	if err := dyn.Add(2, []core.Event{6}); err != nil {
		t.Fatal(err)
	}
	srv, err := ServeDynamic("127.0.0.1:0", dyn)
	if err != nil {
		t.Fatalf("ServeDynamic: %v", err)
	}
	addr := srv.Addr()
	t.Cleanup(func() { srv.Close() })

	m := BuildMap(1, 1, []string{addr})
	rc := NewRingClientWithMap(m, WithTimeouts(time.Second, 200*time.Millisecond),
		WithRetries(0), WithDownCooldown(time.Minute, time.Hour))
	defer rc.Close()
	if got := rc.Probe(); got != 1 {
		t.Fatalf("Probe = %d blocks up, want 1", got)
	}

	srv.Close()
	if _, err := rc.Match(core.Canonical([]core.Event{6})); err == nil {
		t.Fatal("match with the only replica dead returned nil error")
	}
	var h *BlockHealth
	for _, bh := range rc.Health() {
		if bh.Addr == addr {
			bh := bh
			h = &bh
		}
	}
	if h == nil || h.Up || h.Fails == 0 || h.DownUntil.IsZero() {
		t.Fatalf("health after kill = %+v, want down with a cooldown window", h)
	}

	// Resurrect; the cooldown (a minute) would skip the block, but Probe
	// reconnects immediately.
	srv2, err := ServeDynamic(addr, dyn2(t))
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	t.Cleanup(func() { srv2.Close() })
	deadline := time.Now().Add(5 * time.Second)
	for rc.Probe() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("Probe never brought the block back")
		}
		time.Sleep(10 * time.Millisecond)
	}
	ids, err := rc.Match(core.Canonical([]core.Event{6}))
	if err != nil || len(ids) != 1 || ids[0] != 2 {
		t.Fatalf("post-probe Match = %v, %v", ids, err)
	}
}

func dyn2(t *testing.T) *core.Matcher {
	t.Helper()
	m := core.NewMatcher()
	if err := m.Add(2, []core.Event{6}); err != nil {
		t.Fatal(err)
	}
	return m
}
