package cluster

import (
	"encoding/json"
	"fmt"
	"sort"

	"xymon/internal/core"
	"xymon/internal/xmldom"
)

// NumPartitions is the fixed number of subscription partitions the
// cluster spreads over its blocks. Subscriptions hash to partitions by
// their minimal atomic event (the event that heads their prefix chain in
// the matcher), and partitions map to replica groups of blocks through a
// rendezvous hash — so a block joining or leaving moves only the
// partitions whose replica set actually changes, never reshuffles the
// whole base. The count is a protocol constant: every map version
// assigns exactly these partitions.
const NumPartitions = 64

// PartitionOfEvent returns the partition owning the subscriptions whose
// minimal atomic event is e. A document's event set can only trigger
// subscriptions headed by events it contains, so the partitions a match
// must consult are exactly {PartitionOfEvent(e) : e ∈ set}.
func PartitionOfEvent(e core.Event) int {
	var b [4]byte
	b[0], b[1], b[2], b[3] = byte(e), byte(e>>8), byte(e>>16), byte(e>>24)
	return int(xmldom.HashString(string(b[:])) % NumPartitions)
}

// PartitionOf returns the partition of a subscription with the given
// canonical definition: the partition of its minimal event.
func PartitionOf(set core.EventSet) int {
	if len(set) == 0 {
		return 0
	}
	return PartitionOfEvent(set[0])
}

// Map is one version of the cluster's partition assignment. Maps are
// immutable values: the coordinator builds a new one (Version+1) for
// every membership change and installs it on the blocks; clients learn
// of new versions through stale-map rejections.
type Map struct {
	// Version increases by one per installed transition. Version 0 is
	// "no map": a block without an installed map serves anything (the
	// single-block bootstrap), a client without one cannot route.
	Version uint64 `json:"version"`
	// Replicas is the target replication factor R. Partitions hold
	// min(R, len(Blocks)) replicas.
	Replicas int `json:"replicas"`
	// Blocks lists the member block addresses, sorted.
	Blocks []string `json:"blocks"`
	// Assign lists, per partition, the preference-ordered replica
	// addresses that fully host it — reads route to the first live entry.
	Assign [][]string `json:"assign"`
	// Joining lists, per partition (by index key), destination blocks
	// mid-handoff: they receive every write (the double-write that keeps
	// no match window uncovered) but do not serve reads until the
	// transfer commits and promotes them into Assign.
	Joining map[int][]string `json:"joining,omitempty"`
}

// BuildMap assigns every partition to min(replicas, len(blocks)) blocks
// by rendezvous (highest-random-weight) hashing: per partition, blocks
// are ranked by a hash of (block, partition) and the top R win. Two maps
// built from overlapping member lists therefore agree on every partition
// whose winning set is unchanged — the minimal-movement property the
// coordinator's transitions rely on.
func BuildMap(version uint64, replicas int, blocks []string) Map {
	if replicas < 1 {
		replicas = 1
	}
	m := Map{Version: version, Replicas: replicas}
	m.Blocks = append([]string(nil), blocks...)
	sort.Strings(m.Blocks)
	m.Assign = make([][]string, NumPartitions)
	if len(m.Blocks) == 0 {
		return m
	}
	r := replicas
	if r > len(m.Blocks) {
		r = len(m.Blocks)
	}
	type scored struct {
		addr  string
		score uint64
	}
	ranked := make([]scored, len(m.Blocks))
	for p := 0; p < NumPartitions; p++ {
		for i, addr := range m.Blocks {
			ranked[i] = scored{addr: addr, score: rendezvousScore(addr, p)}
		}
		sort.Slice(ranked, func(i, j int) bool {
			if ranked[i].score != ranked[j].score {
				return ranked[i].score > ranked[j].score
			}
			return ranked[i].addr < ranked[j].addr
		})
		owners := make([]string, r)
		for i := 0; i < r; i++ {
			owners[i] = ranked[i].addr
		}
		m.Assign[p] = owners
	}
	return m
}

// rendezvousScore is the FNV-1a weight of one (block, partition) pair.
// The partition byte is hashed first: FNV only avalanches bytes through
// the multiplications that follow them, so folding the partition in last
// would perturb ~2⁴⁸ of the 2⁶⁴ range and one block would win every
// partition.
func rendezvousScore(addr string, part int) uint64 {
	return xmldom.HashFold(xmldom.HashString(string([]byte{byte(part), '#'})), addr)
}

// Hosts reports whether addr fully hosts partition p (serves reads).
func (m Map) Hosts(p int, addr string) bool {
	if p < 0 || p >= len(m.Assign) {
		return false
	}
	for _, a := range m.Assign[p] {
		if a == addr {
			return true
		}
	}
	return false
}

// WriteTargets returns every block that must observe a write to
// partition p: the assigned replicas plus any joining destinations.
func (m Map) WriteTargets(p int) []string {
	if p < 0 || p >= len(m.Assign) {
		return nil
	}
	targets := append([]string(nil), m.Assign[p]...)
	for _, a := range m.Joining[p] {
		if !containsAddr(targets, a) {
			targets = append(targets, a)
		}
	}
	return targets
}

func containsAddr(addrs []string, addr string) bool {
	for _, a := range addrs {
		if a == addr {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of m, safe to mutate.
func (m Map) Clone() Map {
	out := m
	out.Blocks = append([]string(nil), m.Blocks...)
	out.Assign = make([][]string, len(m.Assign))
	for i, owners := range m.Assign {
		out.Assign[i] = append([]string(nil), owners...)
	}
	if m.Joining != nil {
		out.Joining = make(map[int][]string, len(m.Joining))
		for p, dests := range m.Joining {
			out.Joining[p] = append([]string(nil), dests...)
		}
	}
	return out
}

// Move is one pending partition copy of a map transition: partition Part
// must be copied from a current replica onto To before To may serve it.
type Move struct {
	Part int    `json:"part"`
	From string `json:"from"` // preferred source (a current replica)
	To   string `json:"to"`
}

// movesBetween lists the copies needed to go from old to next: for every
// partition, each block that next assigns and old did not must receive
// the partition's data from one of old's replicas. Dead sources are the
// caller's concern — it picks another replica from old.Assign[p] (that
// recovery is what R ≥ 2 buys).
func movesBetween(old, next Map) []Move {
	var moves []Move
	for p := 0; p < NumPartitions; p++ {
		var oldOwners []string
		if p < len(old.Assign) {
			oldOwners = old.Assign[p]
		}
		for _, dest := range next.Assign[p] {
			if containsAddr(oldOwners, dest) {
				continue
			}
			from := ""
			if len(oldOwners) > 0 {
				from = oldOwners[0]
			}
			moves = append(moves, Move{Part: p, From: from, To: dest})
		}
	}
	return moves
}

// Encode serialises the map as JSON (the wire and journal format).
func (m Map) Encode() []byte {
	b, err := json.Marshal(m)
	if err != nil {
		// A Map of strings and ints cannot fail to marshal.
		panic(err)
	}
	return b
}

// DecodeMap parses an encoded map and validates its shape.
func DecodeMap(data []byte) (Map, error) {
	var m Map
	if err := json.Unmarshal(data, &m); err != nil {
		return Map{}, fmt.Errorf("%w: bad partition map: %v", ErrProtocol, err)
	}
	if len(m.Assign) != NumPartitions {
		return Map{}, fmt.Errorf("%w: partition map with %d partitions, want %d", ErrProtocol, len(m.Assign), NumPartitions)
	}
	return m, nil
}
