package cluster

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"xymon/internal/faults"
	"xymon/internal/wal"
)

// Coord is the cluster coordinator: the single writer of the versioned
// partition map. It admits block joins and leaves, computes
// minimal-movement map transitions, and migrates subscription partitions
// between blocks through a WAL-backed transfer journal — every handoff
// step is journaled before it takes effect, so a coordinator crash
// mid-transfer resumes from the journal instead of losing or duplicating
// subscriptions.
//
// A transition from stable map v runs in two phases:
//
//  1. Install the transition map v+1, identical to v but listing every
//     copy destination in Joining. From this instant clients double-write
//     subscription mutations to old replicas and new destinations alike,
//     so the copy below can never miss a concurrent write (no match
//     window is uncovered).
//  2. Copy each moving partition from a surviving replica to its
//     destination (journaling the dump and each completed move), then
//     commit: install the final map v+2 that promotes the destinations
//     into Assign and retire the copies the old map no longer needs.
//
// Reads never route to a Joining destination, so a half-copied partition
// is never served; with R ≥ 2 a single block failure during all of this
// still leaves a full replica of every partition to read from.
type Coord struct {
	cfg      clientConfig
	replicas int
	log      *wal.Log

	// opMu serialises transitions end-to-end; mu guards the snapshots
	// below with short critical sections so map fetches ('?') answer
	// instantly even while a transfer is running.
	opMu sync.Mutex
	mu   sync.Mutex
	curr Map // map served to clients (the transition map mid-transfer)
	// stable is the last committed map; members the admitted block set.
	stable  Map
	members map[string]bool

	ln      net.Listener
	wg      sync.WaitGroup
	closing chan struct{}
	cmu     sync.Mutex
	closed  bool
	conns   map[net.Conn]struct{}
}

// coordRecord is one JSON-lines journal entry of the transfer WAL.
type coordRecord struct {
	Kind string `json:"kind"` // "begin" | "subs" | "moved" | "commit"
	// begin: the full planned transition.
	Trans *Map   `json:"trans,omitempty"`
	Final *Map   `json:"final,omitempty"`
	Moves []Move `json:"moves,omitempty"`
	// subs: partition Part dumped these subscriptions (resume re-applies
	// from here even if every old replica has since died).
	Part int   `json:"part,omitempty"`
	Subs []Sub `json:"subs,omitempty"`
	// moved: partition Part fully copied to To.
	To string `json:"to,omitempty"`
	// commit: the final map's version took effect.
	Version uint64 `json:"version,omitempty"`
}

// coordSnapshot is the checkpoint image: everything outside an in-flight
// transition.
type coordSnapshot struct {
	Stable Map      `json:"stable"`
	Blocks []string `json:"blocks"`
}

// pendingTransfer is a journaled transition reconstructed at recovery.
type pendingTransfer struct {
	trans  Map
	final  Map
	moves  []Move
	done   map[string]bool // "part→to" of completed moves
	dumped map[int][]Sub   // journaled dumps, keyed by partition
}

// NewCoord opens (or recovers) a coordinator whose transfer journal
// lives in walDir. If the journal holds a transition that began but
// never committed — the coordinator crashed mid-handoff — the transfer
// is resumed and committed before NewCoord returns; resumption needs the
// involved blocks reachable, so NewCoord fails if they are not (retry
// once they are).
func NewCoord(walDir string, replicas int, opts ...ClientOption) (*Coord, error) {
	if replicas < 1 {
		replicas = 1
	}
	cfg := newClientConfig(opts)
	var hook wal.Hook
	if cfg.faults != nil {
		in := cfg.faults
		hook = func(op, key string) error { return in.Check(faults.Point(op), key) }
	}
	log, err := wal.Open(walDir, wal.Options{Framing: wal.Lines{}, Hook: hook})
	if err != nil {
		return nil, err
	}
	c := &Coord{
		cfg:      cfg,
		replicas: replicas,
		log:      log,
		members:  make(map[string]bool),
		closing:  make(chan struct{}),
		conns:    make(map[net.Conn]struct{}),
	}
	pending, err := c.recover()
	if err != nil {
		_ = log.Close()
		return nil, err
	}
	c.curr = c.stable
	if pending != nil {
		c.curr = pending.trans
		if err := c.runTransfer(pending); err != nil {
			_ = log.Close()
			return nil, fmt.Errorf("cluster: resume journaled transfer: %w", err)
		}
	}
	return c, nil
}

// recover rebuilds stable state and any in-flight transition from the
// checkpoint snapshot and journal records.
func (c *Coord) recover() (*pendingTransfer, error) {
	var pending *pendingTransfer
	err := c.log.Recover(
		func(snapshot []byte) error {
			var snap coordSnapshot
			if err := json.Unmarshal(snapshot, &snap); err != nil {
				return fmt.Errorf("cluster: coordinator checkpoint: %w", err)
			}
			c.stable = snap.Stable
			for _, b := range snap.Blocks {
				c.members[b] = true
			}
			return nil
		},
		func(payload []byte) error {
			var rec coordRecord
			if err := json.Unmarshal(payload, &rec); err != nil {
				return fmt.Errorf("cluster: coordinator journal: %w", err)
			}
			switch rec.Kind {
			case "begin":
				if rec.Trans == nil || rec.Final == nil {
					return errors.New("cluster: coordinator journal: begin without maps")
				}
				pending = &pendingTransfer{
					trans:  *rec.Trans,
					final:  *rec.Final,
					moves:  rec.Moves,
					done:   make(map[string]bool),
					dumped: make(map[int][]Sub),
				}
				c.members = make(map[string]bool)
				for _, b := range rec.Final.Blocks {
					c.members[b] = true
				}
			case "subs":
				if pending != nil {
					pending.dumped[rec.Part] = rec.Subs
				}
			case "moved":
				if pending != nil {
					pending.done[moveKey(rec.Part, rec.To)] = true
				}
			case "commit":
				if pending != nil {
					c.stable = pending.final
					pending = nil
				}
			default:
				return fmt.Errorf("cluster: coordinator journal: unknown record %q", rec.Kind)
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	return pending, nil
}

// Close stops the listener (if serving) and closes the journal.
func (c *Coord) Close() error {
	c.cmu.Lock()
	already := c.closed
	c.closed = true
	var ln net.Listener
	if !already {
		close(c.closing)
		ln = c.ln
		for conn := range c.conns {
			_ = conn.Close()
		}
		c.conns = map[net.Conn]struct{}{}
	}
	c.cmu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	c.wg.Wait()
	if already {
		return nil
	}
	return c.log.Close()
}

// Map snapshots the map currently served to clients (the transition map
// while a transfer is running).
func (c *Coord) Map() Map {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.curr.Clone()
}

// Blocks lists the admitted block addresses, sorted.
func (c *Coord) Blocks() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.members))
	for b := range c.members {
		out = append(out, b)
	}
	sort.Strings(out)
	return out
}

// Join admits a block and rebalances onto it. The block must already be
// serving — partitions are copied to it before the new map commits.
func (c *Coord) Join(addr string) error { return c.reshape(addr, true) }

// Leave retires a block gracefully: its partitions are copied off it
// (the leaving block is a preferred copy source) before the map that
// excludes it commits, after which it can shut down with nothing lost.
func (c *Coord) Leave(addr string) error { return c.reshape(addr, false) }

// Evict removes a dead block from the cluster: like Leave, but the
// transfer never contacts addr — every copy reads from a surviving
// replica. This is the R ≥ 2 recovery path after a block failure.
func (c *Coord) Evict(addr string) error { return c.reshape(addr, false) }

// reshape runs one membership change as a journaled two-phase transition.
func (c *Coord) reshape(addr string, add bool) error {
	c.opMu.Lock()
	defer c.opMu.Unlock()
	c.mu.Lock()
	if c.members[addr] == add {
		c.mu.Unlock()
		return nil // no-op: already a member / already gone
	}
	old := c.stable
	members := make([]string, 0, len(c.members)+1)
	for b := range c.members {
		if b != addr {
			members = append(members, b)
		}
	}
	if add {
		members = append(members, addr)
	}
	c.mu.Unlock()

	final := BuildMap(old.Version+2, c.replicas, members)
	moves := movesBetween(old, final)
	trans := old.Clone()
	trans.Version = old.Version + 1
	trans.Replicas = c.replicas
	trans.Blocks = append([]string(nil), final.Blocks...)
	if len(trans.Assign) != NumPartitions {
		// Bootstrap: no stable map yet; nothing is assigned, so nothing
		// moves — the transition only exists to version the handoff.
		trans.Assign = make([][]string, NumPartitions)
	}
	trans.Joining = make(map[int][]string)
	for _, mv := range moves {
		trans.Joining[mv.Part] = append(trans.Joining[mv.Part], mv.To)
	}

	p := &pendingTransfer{
		trans:  trans,
		final:  final,
		moves:  moves,
		done:   make(map[string]bool),
		dumped: make(map[int][]Sub),
	}
	if err := c.append(coordRecord{Kind: "begin", Trans: &trans, Final: &final, Moves: moves}); err != nil {
		return err
	}
	c.mu.Lock()
	c.members = make(map[string]bool, len(members))
	for _, b := range members {
		c.members[b] = true
	}
	c.curr = trans
	c.mu.Unlock()
	return c.runTransfer(p)
}

// runTransfer executes (or resumes) a journaled transition: install the
// transition map, copy every pending move, commit the final map, then
// checkpoint the journal down to the new stable state.
func (c *Coord) runTransfer(p *pendingTransfer) error {
	// Phase 1: every member serves under the transition map, so
	// double-writes to Joining destinations start before any copy.
	for _, b := range p.trans.Blocks {
		if err := c.install(b, p.trans); err != nil {
			return err
		}
	}
	// Phase 2: copy. Dumps happen after the transition map is live on the
	// source, so the snapshot plus the double-write stream covers every
	// subscription.
	for _, mv := range p.moves {
		key := moveKey(mv.Part, mv.To)
		if p.done[key] {
			continue
		}
		if err := c.faultCheck(faults.PointXfer, key); err != nil {
			return err
		}
		subs, journaled := p.dumped[mv.Part]
		if !journaled && mv.From != "" {
			var err error
			if subs, err = c.dumpPart(p, mv.Part, mv.From); err != nil {
				return err
			}
			if err := c.append(coordRecord{Kind: "subs", Part: mv.Part, Subs: subs}); err != nil {
				return err
			}
			p.dumped[mv.Part] = subs
		}
		for _, sub := range subs {
			payload := encodeSubOp(p.trans.Version, uint32(sub.ID), eventsToU32(sub.Events))
			kind, _, err := c.rpc(mv.To, kindAdd, payload)
			if err != nil {
				return fmt.Errorf("cluster: copy partition %d to %s: %w", mv.Part, mv.To, err)
			}
			if kind != kindAck {
				return fmt.Errorf("%w: %s answered %q to a transfer add", ErrProtocol, mv.To, kind)
			}
		}
		if err := c.append(coordRecord{Kind: "moved", Part: mv.Part, To: mv.To}); err != nil {
			return err
		}
		p.done[key] = true
	}
	// Commit: journal first, then promote. A crash after this record
	// replays into the committed state.
	if err := c.append(coordRecord{Kind: "commit", Version: p.final.Version}); err != nil {
		return err
	}
	for _, b := range p.final.Blocks {
		if err := c.install(b, p.final); err != nil {
			return err
		}
	}
	c.mu.Lock()
	c.stable = p.final
	c.curr = p.final
	c.mu.Unlock()
	c.dropRetired(p)
	return c.checkpoint()
}

// dumpPart fetches partition part's subscriptions from a surviving
// replica, preferring from, then the other old owners in order.
func (c *Coord) dumpPart(p *pendingTransfer, part int, from string) ([]Sub, error) {
	sources := []string{from}
	if part < len(c.stableAssign()) {
		for _, a := range c.stableAssign()[part] {
			if a != from {
				sources = append(sources, a)
			}
		}
	}
	var lastErr error
	for _, src := range sources {
		kind, body, err := c.rpc(src, kindDump, encodeU32(uint32(part)))
		if err != nil {
			lastErr = err
			continue
		}
		if kind != kindDumped {
			lastErr = fmt.Errorf("%w: %s answered %q to a dump", ErrProtocol, src, kind)
			continue
		}
		return decodeSubs(body)
	}
	return nil, fmt.Errorf("cluster: no surviving replica of partition %d: %w", part, lastErr)
}

func (c *Coord) stableAssign() [][]string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stable.Assign
}

// dropRetired tells blocks that lost a partition in the committed map to
// discard it. Best-effort garbage collection: a missed drop wastes
// memory, never correctness — reads only route to assigned replicas.
func (c *Coord) dropRetired(p *pendingTransfer) {
	retired := make(map[string][]int)
	for part := 0; part < NumPartitions; part++ {
		var oldOwners []string
		if part < len(p.trans.Assign) {
			oldOwners = p.trans.Assign[part]
		}
		for _, a := range oldOwners {
			if !containsAddr(p.final.Assign[part], a) && c.isMember(a) {
				retired[a] = append(retired[a], part)
			}
		}
	}
	for addr, parts := range retired {
		for _, part := range parts {
			_, _, _ = c.rpc(addr, kindDrop, encodeU32(uint32(part)))
		}
	}
}

func (c *Coord) isMember(addr string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.members[addr]
}

// checkpoint compacts the journal to the committed stable state.
func (c *Coord) checkpoint() error {
	c.mu.Lock()
	snap := coordSnapshot{Stable: c.stable.Clone()}
	for b := range c.members {
		snap.Blocks = append(snap.Blocks, b)
	}
	c.mu.Unlock()
	sort.Strings(snap.Blocks)
	raw, err := json.Marshal(snap)
	if err != nil {
		return err
	}
	return c.log.Checkpoint(func(w io.Writer) error {
		_, err := w.Write(raw)
		return err
	})
}

// append journals one record (Lines framing: one JSON object per line).
func (c *Coord) append(rec coordRecord) error {
	raw, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	return c.log.Append(raw)
}

// install pushes a map to one block and requires the ack.
func (c *Coord) install(addr string, m Map) error {
	kind, _, err := c.rpc(addr, kindInstall, m.Encode())
	if err != nil {
		return fmt.Errorf("cluster: install map v%d on %s: %w", m.Version, addr, err)
	}
	if kind != kindAck {
		return fmt.Errorf("%w: %s answered %q to a map install", ErrProtocol, addr, kind)
	}
	return nil
}

// faultCheck consults the coordinator's injector at a transfer point.
func (c *Coord) faultCheck(point faults.Point, key string) error {
	if c.cfg.faults == nil {
		return nil
	}
	return c.cfg.faults.Check(point, key)
}

// rpc runs one request/response round trip against a block over a fresh
// connection, with deadline-bounded I/O and bounded retries. The
// coordinator talks to each block rarely (installs, dumps, copies), so
// per-call dials keep it free of connection-state bookkeeping.
func (c *Coord) rpc(addr string, kind byte, payload []byte) (byte, []byte, error) {
	var lastErr error
	for attempt := 0; attempt <= c.cfg.retries; attempt++ {
		rkind, body, err := c.rpcOnce(addr, kind, payload)
		if err == nil {
			return rkind, body, nil
		}
		lastErr = err
		var remote *RemoteError
		if errors.As(err, &remote) {
			break // the block answered; resending changes nothing
		}
	}
	return 0, nil, lastErr
}

func (c *Coord) rpcOnce(addr string, kind byte, payload []byte) (byte, []byte, error) {
	conn, err := c.cfg.dialer(addr)
	if err != nil {
		return 0, nil, err
	}
	defer conn.Close()
	if c.cfg.ioTimeout > 0 {
		if err := conn.SetDeadline(time.Now().Add(c.cfg.ioTimeout)); err != nil {
			return 0, nil, err
		}
	}
	w := bufio.NewWriter(conn)
	if err := writeBlob(w, kind, payload); err != nil {
		return 0, nil, err
	}
	if err := w.Flush(); err != nil {
		return 0, nil, err
	}
	return readBlob(bufio.NewReader(conn))
}

// ServeCoord starts the coordinator's control listener on addr. Blocks
// and clients speak v2 blob frames to it: '?' fetches the current map,
// 'J'/'L'/'V' are join/leave/evict requests carrying the subject block's
// address. Returns once the listener is bound; Close stops it.
func (c *Coord) ServeCoord(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	c.cmu.Lock()
	if c.closed {
		c.cmu.Unlock()
		_ = ln.Close()
		return errors.New("cluster: coordinator is closed")
	}
	c.ln = ln
	c.cmu.Unlock()
	c.wg.Add(1)
	go c.acceptLoop(ln)
	return nil
}

// Addr returns the bound listener address ("" before ServeCoord).
func (c *Coord) Addr() string {
	c.cmu.Lock()
	defer c.cmu.Unlock()
	if c.ln == nil {
		return ""
	}
	return c.ln.Addr().String()
}

// acceptLoop mirrors Server.acceptLoop: capped exponential backoff on
// transient accept errors, clean exit once Close fires.
func (c *Coord) acceptLoop(ln net.Listener) {
	defer c.wg.Done()
	backoff := time.Millisecond
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-c.closing:
				return
			default:
			}
			select {
			case <-c.closing:
				return
			case <-time.After(backoff):
			}
			if backoff < time.Second {
				backoff *= 2
			}
			continue
		}
		backoff = time.Millisecond
		if err := c.faultCheck(faults.PointAccept, conn.RemoteAddr().String()); err != nil {
			_ = conn.Close()
			continue
		}
		c.cmu.Lock()
		if c.closed {
			c.cmu.Unlock()
			_ = conn.Close()
			return
		}
		c.conns[conn] = struct{}{}
		c.cmu.Unlock()
		c.wg.Add(1)
		go c.handle(conn)
	}
}

func (c *Coord) handle(conn net.Conn) {
	defer c.wg.Done()
	defer func() {
		c.cmu.Lock()
		delete(c.conns, conn)
		c.cmu.Unlock()
		_ = conn.Close()
	}()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		if err := conn.SetDeadline(time.Now().Add(DefaultReadIdle)); err != nil {
			return
		}
		if err := c.faultCheck(faults.PointServeRead, conn.RemoteAddr().String()); err != nil {
			return
		}
		kind, body, err := readBlob(r)
		if err != nil {
			var remote *RemoteError
			if !errors.As(err, &remote) {
				return
			}
			continue
		}
		if err := c.dispatch(kind, body, w); err != nil {
			writeError(w, err)
		}
		if w.Flush() != nil {
			return
		}
	}
}

func (c *Coord) dispatch(kind byte, body []byte, w *bufio.Writer) error {
	if err := c.faultCheck(faults.PointServeWrite, string(kind)); err != nil {
		return err
	}
	switch kind {
	case kindMapReq:
		m := c.Map()
		if m.Version == 0 {
			return fmt.Errorf("%w: no blocks have joined yet", ErrProtocol)
		}
		return writeBlob(w, kindMapResp, m.Encode())
	case kindJoin:
		if err := c.Join(string(body)); err != nil {
			return err
		}
		return writeBlob(w, kindAck, nil)
	case kindLeave:
		if err := c.Leave(string(body)); err != nil {
			return err
		}
		return writeBlob(w, kindAck, nil)
	case kindEvict:
		if err := c.Evict(string(body)); err != nil {
			return err
		}
		return writeBlob(w, kindAck, nil)
	default:
		return fmt.Errorf("%w: unknown coordinator frame kind %q", ErrProtocol, kind)
	}
}

func moveKey(part int, to string) string {
	return fmt.Sprintf("%d→%s", part, to)
}

// JoinCluster announces addr to the coordinator at coordAddr: the block
// glue a dynamic server calls after binding its listener. opts supply
// dial/fault configuration.
func JoinCluster(coordAddr, addr string, opts ...ClientOption) error {
	return coordRequest(coordAddr, kindJoin, addr, opts)
}

// LeaveCluster announces a graceful departure to the coordinator; it
// returns once the cluster has rebalanced off addr.
func LeaveCluster(coordAddr, addr string, opts ...ClientOption) error {
	return coordRequest(coordAddr, kindLeave, addr, opts)
}

// EvictFromCluster reports addr as dead to the coordinator.
func EvictFromCluster(coordAddr, addr string, opts ...ClientOption) error {
	return coordRequest(coordAddr, kindEvict, addr, opts)
}

func coordRequest(coordAddr string, kind byte, addr string, opts []ClientOption) error {
	c := &Coord{cfg: newClientConfig(opts)}
	rkind, _, err := c.rpc(coordAddr, kind, []byte(addr))
	if err != nil {
		return err
	}
	if rkind != kindAck {
		return fmt.Errorf("%w: coordinator answered %q", ErrProtocol, rkind)
	}
	return nil
}
