package cluster

import (
	"testing"

	"xymon/internal/core"
)

// TestBuildMapReplication checks every partition gets min(R, blocks)
// distinct replicas drawn from the member list.
func TestBuildMapReplication(t *testing.T) {
	blocks := []string{"a:1", "b:1", "c:1", "d:1"}
	m := BuildMap(1, 2, blocks)
	if m.Version != 1 || m.Replicas != 2 {
		t.Fatalf("map header = v%d R=%d", m.Version, m.Replicas)
	}
	if len(m.Assign) != NumPartitions {
		t.Fatalf("Assign has %d partitions", len(m.Assign))
	}
	for p, owners := range m.Assign {
		if len(owners) != 2 {
			t.Fatalf("partition %d has %d replicas, want 2", p, len(owners))
		}
		if owners[0] == owners[1] {
			t.Fatalf("partition %d lists the same replica twice: %v", p, owners)
		}
		for _, o := range owners {
			if !containsAddr(blocks, o) {
				t.Fatalf("partition %d assigned to non-member %s", p, o)
			}
		}
	}
	// R capped by membership.
	solo := BuildMap(1, 3, []string{"only:1"})
	for p, owners := range solo.Assign {
		if len(owners) != 1 {
			t.Fatalf("solo map partition %d has %d replicas", p, len(owners))
		}
	}
}

// TestBuildMapDeterministicAndBalanced pins that the assignment is a
// pure function of the member list and spreads primaries across blocks.
func TestBuildMapDeterministicAndBalanced(t *testing.T) {
	blocks := []string{"c:1", "a:1", "b:1"}
	m1 := BuildMap(5, 2, blocks)
	m2 := BuildMap(5, 2, []string{"b:1", "c:1", "a:1"}) // order-independent
	for p := range m1.Assign {
		if m1.Assign[p][0] != m2.Assign[p][0] || m1.Assign[p][1] != m2.Assign[p][1] {
			t.Fatalf("partition %d differs across builds: %v vs %v", p, m1.Assign[p], m2.Assign[p])
		}
	}
	primaries := map[string]int{}
	for _, owners := range m1.Assign {
		primaries[owners[0]]++
	}
	for _, b := range m1.Blocks {
		if primaries[b] == 0 {
			t.Errorf("block %s owns no primary partition: %v", b, primaries)
		}
	}
}

// TestRendezvousMinimalMovement checks the property the whole transfer
// design rests on: adding one block only moves partitions onto the new
// block, never shuffles ownership among the old ones.
func TestRendezvousMinimalMovement(t *testing.T) {
	old := BuildMap(1, 2, []string{"a:1", "b:1", "c:1"})
	next := BuildMap(2, 2, []string{"a:1", "b:1", "c:1", "d:1"})
	for _, mv := range movesBetween(old, next) {
		if mv.To != "d:1" {
			t.Errorf("join of d:1 moved partition %d to %s", mv.Part, mv.To)
		}
		if mv.From == "" {
			t.Errorf("move of partition %d has no source", mv.Part)
		}
	}
	if moves := movesBetween(old, old); len(moves) != 0 {
		t.Errorf("identity transition lists %d moves", len(moves))
	}
	// Bootstrap: no old assignment means no copies, only promotions.
	for _, mv := range movesBetween(Map{}, old) {
		if mv.From != "" {
			t.Errorf("bootstrap move of partition %d claims source %s", mv.Part, mv.From)
		}
	}
}

// TestPartitionOfUsesMinimalEvent pins the routing invariant: a
// subscription lives in the partition of its minimal event, so a match
// for document set s only needs the partitions of s's own events.
func TestPartitionOfUsesMinimalEvent(t *testing.T) {
	set := core.Canonical([]core.Event{9, 4, 7})
	if got, want := PartitionOf(set), PartitionOfEvent(4); got != want {
		t.Fatalf("PartitionOf = %d, want partition of minimal event %d", got, want)
	}
	if PartitionOf(nil) != 0 {
		t.Fatal("empty set should map to partition 0")
	}
	// Events spread over many partitions (sanity on the hash).
	seen := map[int]bool{}
	for e := core.Event(0); e < 1000; e++ {
		seen[PartitionOfEvent(e)] = true
	}
	if len(seen) < NumPartitions/2 {
		t.Errorf("1000 events hit only %d partitions", len(seen))
	}
}

// TestMapWireRoundtrip checks Encode/DecodeMap and the shape validation.
func TestMapWireRoundtrip(t *testing.T) {
	m := BuildMap(7, 2, []string{"a:1", "b:1"})
	m.Joining = map[int][]string{3: {"c:1"}}
	got, err := DecodeMap(m.Encode())
	if err != nil {
		t.Fatalf("DecodeMap: %v", err)
	}
	if got.Version != 7 || len(got.Assign) != NumPartitions || got.Joining[3][0] != "c:1" {
		t.Fatalf("roundtrip lost data: %+v", got)
	}
	if !got.Hosts(3, got.Assign[3][0]) || got.Hosts(3, "c:1") {
		t.Fatal("Hosts must cover Assign and exclude Joining")
	}
	wt := got.WriteTargets(3)
	if !containsAddr(wt, "c:1") || len(wt) != 3 {
		t.Fatalf("WriteTargets(3) = %v, want both replicas plus the joining dest", wt)
	}
	if _, err := DecodeMap([]byte(`{"version":1,"assign":[[]]}`)); err == nil {
		t.Fatal("DecodeMap accepted a map with the wrong partition count")
	}
	if _, err := DecodeMap([]byte("not json")); err == nil {
		t.Fatal("DecodeMap accepted garbage")
	}
}

// TestNeededPartitions checks the client-side routing set is exactly the
// distinct partitions of the document's events.
func TestNeededPartitions(t *testing.T) {
	set := core.Canonical([]core.Event{1, 2, 3, 100, 1000})
	parts := neededPartitions(set)
	want := map[uint32]bool{}
	for _, e := range set {
		want[uint32(PartitionOfEvent(e))] = true
	}
	if len(parts) != len(want) {
		t.Fatalf("neededPartitions = %v, want the %d distinct partitions", parts, len(want))
	}
	for i, p := range parts {
		if !want[p] {
			t.Fatalf("unexpected partition %d", p)
		}
		if i > 0 && parts[i-1] >= p {
			t.Fatal("partitions not sorted/deduped")
		}
	}
	if got := neededPartitions(nil); len(got) != 0 {
		t.Fatalf("empty set needs partitions %v", got)
	}
}
