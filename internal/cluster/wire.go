package cluster

import (
	"encoding/binary"
	"fmt"
	"io"

	"xymon/internal/core"
)

// Protocol v2: the partition-map protocol. Every message is a blob
// frame — kind byte, u32 little-endian byte length, payload — so the
// control plane and the match path share one framing and one size guard.
// Version 1 ('M' count-framed match requests) is still spoken by the
// static Serve/Dial pair; a v2 block answers a v1 request with an error
// frame naming the version mismatch, so old clients fail loudly instead
// of silently losing partitions.
//
// Frame kinds (requests → responses):
//
//	'm' match(ver u64, np u32, parts, events)  → 'r' ids | 'S' ver | 'E'
//	'+' add(ver u64, id u32, events)           → 'k' | 'S' ver | 'E'
//	'-' remove(ver u64, id u32)                → 'k' | 'S' ver | 'E'
//	'd' dump(part u32)                         → 'D' subs | 'E'
//	'x' drop(part u32)                         → 'k' | 'E'
//	'U' install(map JSON)                      → 'k' | 'E'
//	'?' fetch map                              → 'P' map JSON | 'E'
//	'J' join(addr)     [coordinator]           → 'k' | 'E'
//	'L' leave(addr)    [coordinator]           → 'k' | 'E'
//	'V' evict(addr)    [coordinator]           → 'k' | 'E'
const (
	kindMatchV2 = 'm'
	kindResults = 'r'
	kindStale   = 'S'
	kindAdd     = '+'
	kindRemove  = '-'
	kindDump    = 'd'
	kindDumped  = 'D'
	kindDrop    = 'x'
	kindInstall = 'U'
	kindMapReq  = '?'
	kindMapResp = 'P'
	kindAck     = 'k'
	kindJoin    = 'J'
	kindLeave   = 'L'
	kindEvict   = 'V'
	kindError   = 'E'
)

// maxBlob bounds a v2 frame's payload: a full 64-partition dump of a
// million 4-event subscriptions still fits, anything bigger is a
// protocol error, not a request to buffer gigabytes.
const maxBlob = 8 << 20

// Sub is one subscription record on the wire and in the transfer
// journal: a complex event id and its canonical atomic event set.
type Sub struct {
	ID     core.ComplexID `json:"id"`
	Events core.EventSet  `json:"events"`
}

// writeBlob frames one v2 message.
func writeBlob(w io.Writer, kind byte, payload []byte) error {
	if len(payload) > maxBlob {
		return fmt.Errorf("%w: %d-byte frame exceeds the %d-byte cap", ErrProtocol, len(payload), maxBlob)
	}
	var hdr [5]byte
	hdr[0] = kind
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readBlobBody reads the length and payload of a blob frame whose kind
// byte has already been consumed.
func readBlobBody(r io.Reader) ([]byte, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("%w: truncated length", ErrProtocol)
	}
	if n > maxBlob {
		return nil, fmt.Errorf("%w: %d-byte frame exceeds the %d-byte cap", ErrProtocol, n, maxBlob)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: truncated frame", ErrProtocol)
	}
	return payload, nil
}

// readBlob reads one whole blob frame. An error frame is decoded into a
// *RemoteError so callers surface the peer's words, not a frame dump.
func readBlob(r io.Reader) (byte, []byte, error) {
	var k [1]byte
	if _, err := io.ReadFull(r, k[:]); err != nil {
		return 0, nil, err
	}
	payload, err := readBlobBody(r)
	if err != nil {
		return 0, nil, err
	}
	if k[0] == kindError {
		return 0, nil, &RemoteError{Msg: string(payload)}
	}
	return k[0], payload, nil
}

// appendU32s appends values little-endian.
func appendU32s(dst []byte, values []uint32) []byte {
	for _, v := range values {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		dst = append(dst, b[:]...)
	}
	return dst
}

// u32s reinterprets a payload tail as a u32 list.
func u32s(b []byte) ([]uint32, error) {
	if len(b)%4 != 0 {
		return nil, fmt.Errorf("%w: %d-byte value list", ErrProtocol, len(b))
	}
	out := make([]uint32, len(b)/4)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[i*4:])
	}
	return out, nil
}

func eventsToU32(s core.EventSet) []uint32 {
	out := make([]uint32, len(s))
	for i, e := range s {
		out[i] = uint32(e)
	}
	return out
}

func u32ToEvents(vals []uint32) []core.Event {
	out := make([]core.Event, len(vals))
	for i, v := range vals {
		out[i] = core.Event(v)
	}
	return out
}

// encodeMatchV2 builds the 'm' payload: map version, partition filter,
// event set.
func encodeMatchV2(ver uint64, parts []uint32, events []uint32) []byte {
	out := make([]byte, 0, 12+4*(len(parts)+len(events)))
	out = binary.LittleEndian.AppendUint64(out, ver)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(parts)))
	out = appendU32s(out, parts)
	out = appendU32s(out, events)
	return out
}

func decodeMatchV2(b []byte) (ver uint64, parts, events []uint32, err error) {
	if len(b) < 12 {
		return 0, nil, nil, fmt.Errorf("%w: short match frame", ErrProtocol)
	}
	ver = binary.LittleEndian.Uint64(b)
	np := binary.LittleEndian.Uint32(b[8:])
	rest := b[12:]
	if uint64(np) > uint64(len(rest))/4 || np > NumPartitions {
		return 0, nil, nil, fmt.Errorf("%w: match frame with %d partitions", ErrProtocol, np)
	}
	if parts, err = u32s(rest[:4*np]); err != nil {
		return 0, nil, nil, err
	}
	if events, err = u32s(rest[4*np:]); err != nil {
		return 0, nil, nil, err
	}
	if len(events) > maxSetLen {
		return 0, nil, nil, fmt.Errorf("%w: match frame of %d events", ErrProtocol, len(events))
	}
	return ver, parts, events, nil
}

// encodeSubOp builds the '+' (with events) or '-' (without) payload.
func encodeSubOp(ver uint64, id uint32, events []uint32) []byte {
	out := make([]byte, 0, 12+4*len(events))
	out = binary.LittleEndian.AppendUint64(out, ver)
	out = binary.LittleEndian.AppendUint32(out, id)
	return appendU32s(out, events)
}

func decodeSubOp(b []byte) (ver uint64, id uint32, events []uint32, err error) {
	if len(b) < 12 {
		return 0, 0, nil, fmt.Errorf("%w: short subscription frame", ErrProtocol)
	}
	ver = binary.LittleEndian.Uint64(b)
	id = binary.LittleEndian.Uint32(b[8:])
	if events, err = u32s(b[12:]); err != nil {
		return 0, 0, nil, err
	}
	if len(events) > maxSetLen {
		return 0, 0, nil, fmt.Errorf("%w: subscription of %d events", ErrProtocol, len(events))
	}
	return ver, id, events, nil
}

func encodeU32(v uint32) []byte {
	return binary.LittleEndian.AppendUint32(nil, v)
}

func decodeU32(b []byte) (uint32, error) {
	if len(b) != 4 {
		return 0, fmt.Errorf("%w: expected a u32 payload, got %d bytes", ErrProtocol, len(b))
	}
	return binary.LittleEndian.Uint32(b), nil
}

func encodeU64(v uint64) []byte {
	return binary.LittleEndian.AppendUint64(nil, v)
}

func decodeU64(b []byte) (uint64, error) {
	if len(b) != 8 {
		return 0, fmt.Errorf("%w: expected a u64 payload, got %d bytes", ErrProtocol, len(b))
	}
	return binary.LittleEndian.Uint64(b), nil
}

// encodeSubs builds the 'D' payload: repeated (id, n, events[n]).
func encodeSubs(subs []Sub) []byte {
	var out []byte
	for _, s := range subs {
		out = binary.LittleEndian.AppendUint32(out, uint32(s.ID))
		out = binary.LittleEndian.AppendUint32(out, uint32(len(s.Events)))
		out = appendU32s(out, eventsToU32(s.Events))
	}
	return out
}

func decodeSubs(b []byte) ([]Sub, error) {
	var subs []Sub
	for len(b) > 0 {
		if len(b) < 8 {
			return nil, fmt.Errorf("%w: truncated subscription record", ErrProtocol)
		}
		id := binary.LittleEndian.Uint32(b)
		n := binary.LittleEndian.Uint32(b[4:])
		b = b[8:]
		if uint64(n) > uint64(len(b))/4 || n > maxSetLen {
			return nil, fmt.Errorf("%w: subscription record of %d events", ErrProtocol, n)
		}
		vals, err := u32s(b[:4*n])
		if err != nil {
			return nil, err
		}
		subs = append(subs, Sub{ID: core.ComplexID(id), Events: core.EventSet(u32ToEvents(vals))})
		b = b[4*n:]
	}
	return subs, nil
}
