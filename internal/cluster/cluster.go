// Package cluster distributes the Monitoring Query Processor over the
// network, realising the two distributions of Section 4.2 across real
// processes. Two generations of block server coexist:
//
//   - Serve exposes one frozen core.Compact snapshot over the v1
//     protocol ('M' match frames) — the static partition of the original
//     distribution, still used by pubsub and the benchmarks.
//   - ServeDynamic exposes a live core.Matcher over the v2 partition-map
//     protocol: the block accepts subscription Add/Remove while serving
//     matches, hosts the partitions a versioned Map assigns to it, and
//     participates in coordinator-driven rebalancing (see ring.go and
//     coord.go). v1 clients are rejected loudly.
//
// Xyleme uses Corba between cluster nodes; the wire protocol here is a
// minimal length-prefixed binary exchange over the standard library's
// net package.
//
// v1 wire protocol (little-endian):
//
//	request:  'M' | n u32 | events (u32)*
//	response: 'R' | n u32 | complex ids (u32)*
//	          'E' | n u32 | error text (n bytes)
//
// The v2 frames are documented in wire.go.
package cluster

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"xymon/internal/core"
	"xymon/internal/faults"
)

// maxSetLen bounds accepted event-set and result sizes (a million events
// per document is far beyond any real alert).
const maxSetLen = 1 << 20

// ErrProtocol reports a malformed exchange.
var ErrProtocol = errors.New("cluster: protocol error")

// DefaultReadIdle is the default per-request read deadline of a block
// server: roughly twice the client's default I/O timeout, so a healthy
// client's think-time between requests never trips it, while a silent
// client stops pinning a handler goroutine within seconds instead of
// until Close.
const DefaultReadIdle = 10 * time.Second

// serverConfig is the tunable envelope of a Server.
type serverConfig struct {
	readIdle  time.Duration
	faults    *faults.Injector
	advertise string
}

// ServerOption configures Serve and ServeDynamic.
type ServerOption func(*serverConfig)

// WithReadIdle bounds how long a handler waits for the next request
// before closing the connection (default DefaultReadIdle). Clients
// reconnect transparently; a connect-and-stall peer cannot pin a handler
// goroutine. Zero keeps the default; a negative value disables the
// deadline (the pre-deadline behaviour, for tests that need a hang).
func WithReadIdle(d time.Duration) ServerOption {
	return func(c *serverConfig) { c.readIdle = d }
}

// WithServerInjector arms the server-side fault seams: connection
// admission consults faults.PointAccept, and each request read and
// response write consult faults.PointServeRead / faults.PointServeWrite,
// all keyed by the remote address. A nil injector keeps the seams
// transparent — the production and chaos configurations differ only by
// the injector.
func WithServerInjector(in *faults.Injector) ServerOption {
	return func(c *serverConfig) { c.faults = in }
}

// WithAdvertise sets the address this block believes the partition map
// knows it by (default: the listener's address). The block refuses to
// read-serve partitions the installed map does not assign to that
// address — the guard that turns a stale client's misrouted match into a
// loud stale-map error instead of silently missing subscriptions.
func WithAdvertise(addr string) ServerOption {
	return func(c *serverConfig) { c.advertise = addr }
}

// Server serves match requests for one partition block.
type Server struct {
	matcher *core.Compact // v1 static block (nil in dynamic mode)
	dyn     *core.Matcher // v2 dynamic block (nil in static mode)
	cfg     serverConfig
	ln      net.Listener
	wg      sync.WaitGroup
	closing chan struct{}

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}

	// Dynamic-block state: the installed partition map and the partition
	// of every hosted subscription (avoiding a Definition lookup per
	// matched id on the filter path). smu nests outside the matcher's own
	// lock.
	smu  sync.RWMutex
	pmap Map
	part map[core.ComplexID]int
}

// Serve starts a static v1 server for the frozen block on the given
// address ("127.0.0.1:0" picks a free port). It returns immediately; use
// Addr for the bound address and Close to stop.
func Serve(addr string, block *core.Compact, opts ...ServerOption) (*Server, error) {
	return serve(addr, block, nil, opts)
}

// ServeDynamic starts a v2 partition-map server around a live matcher.
// The matcher may start empty (a fresh block joining a cluster receives
// its partitions from the coordinator) or pre-loaded. The caller must
// not touch m afterwards — the server owns it.
func ServeDynamic(addr string, m *core.Matcher, opts ...ServerOption) (*Server, error) {
	if m == nil {
		m = core.NewMatcher()
	}
	return serve(addr, nil, m, opts)
}

func serve(addr string, block *core.Compact, dyn *core.Matcher, opts []ServerOption) (*Server, error) {
	cfg := serverConfig{readIdle: DefaultReadIdle}
	for _, o := range opts {
		o(&cfg)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	if cfg.advertise == "" {
		cfg.advertise = ln.Addr().String()
	}
	s := &Server{
		matcher: block, dyn: dyn, cfg: cfg, ln: ln,
		closing: make(chan struct{}),
		conns:   make(map[net.Conn]struct{}),
		part:    make(map[core.ComplexID]int),
	}
	if dyn != nil {
		// A pre-loaded matcher's subscriptions need their partitions on
		// record for the match filter and dumps.
		dyn.Range(func(id core.ComplexID, set core.EventSet) bool {
			s.part[id] = PartitionOf(set)
			return true
		})
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener's address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Map returns the installed partition map (Version 0 when none).
func (s *Server) Map() Map {
	s.smu.RLock()
	defer s.smu.RUnlock()
	return s.pmap.Clone()
}

// Len returns the number of subscriptions this block currently hosts.
func (s *Server) Len() int {
	if s.dyn != nil {
		return s.dyn.Len()
	}
	return s.matcher.Len()
}

// Close stops the listener, severs every active connection (a handler
// blocked on a client that never speaks again must not wedge shutdown),
// and waits for all handlers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	alreadyClosed := s.closed
	s.closed = true
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.mu.Unlock()
	if !alreadyClosed {
		close(s.closing)
	}
	err := s.ln.Close()
	s.wg.Wait()
	if alreadyClosed {
		return nil
	}
	return err
}

// acceptLoop admits connections until Close. Transient accept errors
// (EMFILE, ECONNABORTED, …) back off exponentially — 1ms doubling to a
// 1s cap, the crawler's retry idiom — instead of hot-spinning the CPU
// against a condition that needs time to clear; any successful accept
// resets the backoff.
func (s *Server) acceptLoop() {
	defer s.wg.Done()
	backoff := time.Millisecond
	const backoffMax = time.Second
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return
			}
			select {
			case <-s.closing:
				return
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > backoffMax {
				backoff = backoffMax
			}
			continue
		}
		backoff = time.Millisecond
		if err := s.cfg.faults.Check(faults.PointAccept, remoteKey(conn)); err != nil {
			conn.Close()
			continue
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

func remoteKey(conn net.Conn) string {
	if addr := conn.RemoteAddr(); addr != nil {
		return addr.String()
	}
	return ""
}

func (s *Server) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	key := remoteKey(conn)
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		// The idle deadline covers the wait for the next request and the
		// request/response exchange itself: a stalled or vanished client
		// frees this goroutine within the deadline, never "until Close".
		if s.cfg.readIdle > 0 {
			if err := conn.SetDeadline(time.Now().Add(s.cfg.readIdle)); err != nil {
				return
			}
		}
		if err := s.cfg.faults.Check(faults.PointServeRead, key); err != nil {
			return
		}
		var kind [1]byte
		if _, err := io.ReadFull(r, kind[:]); err != nil {
			return
		}
		keep, err := s.dispatch(kind[0], r, w, key)
		if err != nil {
			// An injected write fault models a broken pipe: drop the
			// connection so the client's transport retry kicks in. A
			// protocol error, by contrast, is answered in words.
			if !errors.Is(err, io.EOF) && !errors.Is(err, faults.ErrInjected) {
				_ = s.writeChecked(w, key, func() error { writeError(w, err); return nil })
				w.Flush()
			}
			return
		}
		if !keep {
			w.Flush()
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// writeChecked consults the serve.write fault seam, then runs the write.
func (s *Server) writeChecked(w *bufio.Writer, key string, write func() error) error {
	if err := s.cfg.faults.Check(faults.PointServeWrite, key); err != nil {
		return err
	}
	return write()
}

// dispatch reads the body of one request (kind already consumed) and
// answers it. It returns keep=false to close the connection after the
// response flushes, and a non-nil error to answer with an error frame
// and close.
func (s *Server) dispatch(kind byte, r *bufio.Reader, w *bufio.Writer, key string) (keep bool, err error) {
	// v1 match: the static block's only request.
	if kind == 'M' {
		if s.dyn != nil {
			// Drain the frame so the error response isn't interleaved
			// with unread request bytes, then reject loudly: a v1 client
			// fanning out to every block would silently lose this block's
			// partitions if we answered its match with partial data.
			if _, err := readSetRawBody(r); err != nil {
				return false, err
			}
			return false, fmt.Errorf("%w: this block speaks the v2 partition-map protocol; upgrade the client (v1 'M' rejected)", ErrProtocol)
		}
		set, err := readSetBody(r)
		if err != nil {
			return false, err
		}
		matched := s.matcher.Match(set)
		ids := make([]uint32, len(matched))
		for i, id := range matched {
			ids[i] = uint32(id)
		}
		return true, s.writeChecked(w, key, func() error { return writeFrame(w, 'R', ids) })
	}
	if s.dyn == nil {
		return false, fmt.Errorf("%w: expected frame %q, got %q", ErrProtocol, 'M', kind)
	}
	payload, err := readBlobBody(r)
	if err != nil {
		return false, err
	}
	resp := func(k byte, body []byte) error {
		return s.writeChecked(w, key, func() error { return writeBlob(w, k, body) })
	}
	switch kind {
	case kindMatchV2:
		return s.handleMatch(payload, resp)
	case kindAdd:
		return s.handleAdd(payload, resp)
	case kindRemove:
		return s.handleRemove(payload, resp)
	case kindDump:
		return s.handleDump(payload, resp)
	case kindDrop:
		return s.handleDrop(payload, resp)
	case kindInstall:
		return s.handleInstall(payload, resp)
	case kindMapReq:
		return s.handleMapReq(resp)
	default:
		return false, fmt.Errorf("%w: unknown frame kind %q", ErrProtocol, kind)
	}
}

// handleMatch answers a v2 match: verify this block read-serves every
// requested partition under the installed map, match the live matcher,
// and filter the ids down to the requested partitions.
func (s *Server) handleMatch(payload []byte, resp func(byte, []byte) error) (bool, error) {
	_, parts, events, err := decodeMatchV2(payload)
	if err != nil {
		return false, err
	}
	s.smu.RLock()
	m := s.pmap
	stale := false
	if m.Version != 0 {
		for _, p := range parts {
			if !m.Hosts(int(p), s.cfg.advertise) {
				stale = true
				break
			}
		}
	}
	s.smu.RUnlock()
	if stale {
		return true, resp(kindStale, encodeU64(m.Version))
	}

	set := core.Canonical(u32ToEvents(events))
	matched := s.dyn.Match(set)
	var wanted [NumPartitions]bool
	for _, p := range parts {
		wanted[int(p)%NumPartitions] = true
	}
	ids := make([]uint32, 0, len(matched))
	s.smu.RLock()
	for _, id := range matched {
		if p, ok := s.part[id]; ok && wanted[p] {
			ids = append(ids, uint32(id))
		}
	}
	s.smu.RUnlock()
	return true, resp(kindResults, appendU32s(nil, ids))
}

// checkWriteVersion bounces writes carrying an older map version than
// this block's: a subscription mutation from a stale client could miss a
// joining destination mid-handoff, so it is rejected until the client
// refreshes. Writes carrying a newer version are accepted — the client's
// target list came from the newer (correct) map, and applying the write
// on a block whose install push is still in flight is exactly what keeps
// the no-lost-subscription invariant; reads stay gated by the hosting
// check, so an over-eager copy is never served from the wrong block.
func (s *Server) checkWriteVersion(ver uint64) (stale bool, cur uint64) {
	s.smu.RLock()
	defer s.smu.RUnlock()
	if s.pmap.Version != 0 && ver < s.pmap.Version {
		return true, s.pmap.Version
	}
	return false, 0
}

// handleAdd registers (or replaces, idempotently) one subscription.
func (s *Server) handleAdd(payload []byte, resp func(byte, []byte) error) (bool, error) {
	ver, id, events, err := decodeSubOp(payload)
	if err != nil {
		return false, err
	}
	if stale, cur := s.checkWriteVersion(ver); stale {
		return true, resp(kindStale, encodeU64(cur))
	}
	set := core.Canonical(u32ToEvents(events))
	if len(set) == 0 {
		return false, core.ErrEmptyComplexEvent
	}
	cid := core.ComplexID(id)
	s.smu.Lock()
	if _, exists := s.part[cid]; exists {
		// Replace: transfer re-sends and client retries land here; the
		// newest definition wins.
		_ = s.dyn.Remove(cid)
	}
	err = s.dyn.Add(cid, set)
	if err == nil {
		s.part[cid] = PartitionOf(set)
	}
	s.smu.Unlock()
	if err != nil {
		return false, err
	}
	return true, resp(kindAck, nil)
}

// handleRemove unregisters one subscription; removing an id this block
// never saw is a no-op (double-writes and retries make that routine).
func (s *Server) handleRemove(payload []byte, resp func(byte, []byte) error) (bool, error) {
	ver, id, _, err := decodeSubOp(payload)
	if err != nil {
		return false, err
	}
	if stale, cur := s.checkWriteVersion(ver); stale {
		return true, resp(kindStale, encodeU64(cur))
	}
	cid := core.ComplexID(id)
	s.smu.Lock()
	if _, exists := s.part[cid]; exists {
		_ = s.dyn.Remove(cid)
		delete(s.part, cid)
	}
	s.smu.Unlock()
	return true, resp(kindAck, nil)
}

// partSubs snapshots every subscription of partition p.
func (s *Server) partSubs(p int) []Sub {
	var subs []Sub
	s.dyn.Range(func(id core.ComplexID, set core.EventSet) bool {
		if PartitionOf(set) == p {
			subs = append(subs, Sub{ID: id, Events: set.Clone()})
		}
		return true
	})
	return subs
}

// handleDump streams partition p's subscriptions to the coordinator.
func (s *Server) handleDump(payload []byte, resp func(byte, []byte) error) (bool, error) {
	p, err := decodeU32(payload)
	if err != nil {
		return false, err
	}
	return true, resp(kindDumped, encodeSubs(s.partSubs(int(p))))
}

// handleDrop discards partition p after a handoff moved it elsewhere.
func (s *Server) handleDrop(payload []byte, resp func(byte, []byte) error) (bool, error) {
	p, err := decodeU32(payload)
	if err != nil {
		return false, err
	}
	for _, sub := range s.partSubs(int(p)) {
		s.smu.Lock()
		_ = s.dyn.Remove(sub.ID)
		delete(s.part, sub.ID)
		s.smu.Unlock()
	}
	return true, resp(kindAck, nil)
}

// handleInstall adopts a new partition map. Regressions are ignored (a
// re-pushed older version acks without clobbering newer state, which
// makes coordinator recovery re-pushes idempotent).
func (s *Server) handleInstall(payload []byte, resp func(byte, []byte) error) (bool, error) {
	m, err := DecodeMap(payload)
	if err != nil {
		return false, err
	}
	s.smu.Lock()
	if m.Version >= s.pmap.Version {
		s.pmap = m
	}
	s.smu.Unlock()
	return true, resp(kindAck, nil)
}

// handleMapReq serves the installed map to a client.
func (s *Server) handleMapReq(resp func(byte, []byte) error) (bool, error) {
	s.smu.RLock()
	m := s.pmap
	s.smu.RUnlock()
	if m.Version == 0 {
		return false, fmt.Errorf("%w: no partition map installed on this block", ErrProtocol)
	}
	return true, resp(kindMapResp, m.Encode())
}

func writeFrame(w io.Writer, kind byte, values []uint32) error {
	if _, err := w.Write([]byte{kind}); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(values))); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, values)
}

func writeError(w io.Writer, err error) {
	msg := []byte(err.Error())
	w.Write([]byte{'E'})
	binary.Write(w, binary.LittleEndian, uint32(len(msg)))
	w.Write(msg)
}

// readSetBody reads a v1 count-framed body whose kind byte was consumed.
func readSetBody(r io.Reader) (core.EventSet, error) {
	raw, err := readSetRawBody(r)
	if err != nil {
		return nil, err
	}
	return core.Canonical(u32ToEvents(raw)), nil
}

func readSetRaw(r io.Reader, kind byte) ([]uint32, error) {
	var k [1]byte
	if _, err := io.ReadFull(r, k[:]); err != nil {
		return nil, err
	}
	if k[0] == 'E' {
		var n uint32
		if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
			return nil, fmt.Errorf("%w: bad error frame", ErrProtocol)
		}
		if n > maxSetLen {
			return nil, fmt.Errorf("%w: oversized error frame", ErrProtocol)
		}
		msg := make([]byte, n)
		if _, err := io.ReadFull(r, msg); err != nil {
			return nil, fmt.Errorf("%w: truncated error frame", ErrProtocol)
		}
		return nil, &RemoteError{Msg: string(msg)}
	}
	if k[0] != kind {
		return nil, fmt.Errorf("%w: expected frame %q, got %q", ErrProtocol, kind, k[0])
	}
	return readSetRawBody(r)
}

func readSetRawBody(r io.Reader) ([]uint32, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("%w: truncated length", ErrProtocol)
	}
	if n > maxSetLen {
		return nil, fmt.Errorf("%w: frame of %d values", ErrProtocol, n)
	}
	values := make([]uint32, n)
	if err := binary.Read(r, binary.LittleEndian, values); err != nil {
		return nil, fmt.Errorf("%w: truncated frame", ErrProtocol)
	}
	return values, nil
}
