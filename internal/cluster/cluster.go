// Package cluster distributes the Monitoring Query Processor over the
// network, realising the two distributions of Section 4.2 across real
// processes: a Server exposes one subscription-partition block (a frozen
// core.Compact snapshot) over TCP, and a Client fans each document's
// atomic event set out to every block and merges the matches. Xyleme uses
// Corba between cluster nodes; the wire protocol here is a minimal
// length-prefixed binary exchange over the standard library's net package.
//
// Wire protocol (little-endian):
//
//	request:  'M' | n u32 | events (u32)*
//	response: 'R' | n u32 | complex ids (u32)*
//	          'E' | n u32 | error text (n bytes)
package cluster

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"xymon/internal/core"
)

// maxSetLen bounds accepted event-set and result sizes (a million events
// per document is far beyond any real alert).
const maxSetLen = 1 << 20

// ErrProtocol reports a malformed exchange.
var ErrProtocol = errors.New("cluster: protocol error")

// Server serves match requests for one partition block.
type Server struct {
	matcher *core.Compact
	ln      net.Listener
	wg      sync.WaitGroup

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
}

// Serve starts a server for the block on the given address ("127.0.0.1:0"
// picks a free port). It returns immediately; use Addr for the bound
// address and Close to stop.
func Serve(addr string, block *core.Compact) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	s := &Server{matcher: block, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener's address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener, severs every active connection (a handler
// blocked on a client that never speaks again must not wedge shutdown),
// and waits for all handlers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return
			}
			continue
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

func (s *Server) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		set, err := readSet(r, 'M')
		if err != nil {
			if !errors.Is(err, io.EOF) {
				writeError(w, err)
				w.Flush()
			}
			return
		}
		matched := s.matcher.Match(set)
		ids := make([]uint32, len(matched))
		for i, id := range matched {
			ids[i] = uint32(id)
		}
		if err := writeFrame(w, 'R', ids); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

func writeFrame(w io.Writer, kind byte, values []uint32) error {
	if _, err := w.Write([]byte{kind}); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(values))); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, values)
}

func writeError(w io.Writer, err error) {
	msg := []byte(err.Error())
	w.Write([]byte{'E'})
	binary.Write(w, binary.LittleEndian, uint32(len(msg)))
	w.Write(msg)
}

func readSet(r io.Reader, kind byte) (core.EventSet, error) {
	raw, err := readSetRaw(r, kind)
	if err != nil {
		return nil, err
	}
	events := make([]core.Event, len(raw))
	for i, v := range raw {
		events[i] = core.Event(v)
	}
	return core.Canonical(events), nil
}

func readSetRaw(r io.Reader, kind byte) ([]uint32, error) {
	var k [1]byte
	if _, err := io.ReadFull(r, k[:]); err != nil {
		return nil, err
	}
	if k[0] == 'E' {
		var n uint32
		if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
			return nil, fmt.Errorf("%w: bad error frame", ErrProtocol)
		}
		if n > maxSetLen {
			return nil, fmt.Errorf("%w: oversized error frame", ErrProtocol)
		}
		msg := make([]byte, n)
		if _, err := io.ReadFull(r, msg); err != nil {
			return nil, fmt.Errorf("%w: truncated error frame", ErrProtocol)
		}
		return nil, &RemoteError{Msg: string(msg)}
	}
	if k[0] != kind {
		return nil, fmt.Errorf("%w: expected frame %q, got %q", ErrProtocol, kind, k[0])
	}
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("%w: truncated length", ErrProtocol)
	}
	if n > maxSetLen {
		return nil, fmt.Errorf("%w: frame of %d values", ErrProtocol, n)
	}
	values := make([]uint32, n)
	if err := binary.Read(r, binary.LittleEndian, values); err != nil {
		return nil, fmt.Errorf("%w: truncated frame", ErrProtocol)
	}
	return values, nil
}
