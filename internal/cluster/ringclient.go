package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"sort"
	"sync"

	"xymon/internal/core"
)

// ErrNoMap reports a ring client without an installed partition map.
var ErrNoMap = errors.New("cluster: no partition map")

// maxMapRefreshes bounds how many stale-map → refetch rounds one request
// rides before giving up: a coordinator installing maps faster than a
// client can refetch them is a bug, not a condition to chase forever.
const maxMapRefreshes = 3

// RingClient is the v2 partition-map client. It routes every request by
// the current map: matches fan out to the first live replica of each
// needed partition and fail over to the next replica before ever
// reporting degradation; Add/Remove are written to every replica plus
// any joining destination (the client half of the double-write
// invariant). Stale-map rejections from blocks trigger a refetch from
// the coordinator, so clients converge on new maps without a push
// channel.
type RingClient struct {
	cfg   clientConfig
	coord string // coordinator address ("" = static map, no refresh)

	mu    sync.Mutex
	m     Map
	conns map[string]*blockConn

	st netStats
}

// DialRing fetches the current partition map from the coordinator and
// returns a client routing by it.
func DialRing(coordAddr string, opts ...ClientOption) (*RingClient, error) {
	c := &RingClient{
		cfg:   newClientConfig(opts),
		coord: coordAddr,
		conns: make(map[string]*blockConn),
	}
	if err := c.RefreshMap(); err != nil {
		_ = c.Close()
		return nil, err
	}
	return c, nil
}

// NewRingClientWithMap returns a client routing by a fixed map with no
// coordinator: stale-map rejections surface as errors instead of
// triggering a refetch. Deployment glue and tests use this.
func NewRingClientWithMap(m Map, opts ...ClientOption) *RingClient {
	return &RingClient{
		cfg:   newClientConfig(opts),
		conns: make(map[string]*blockConn),
		m:     m.Clone(),
	}
}

// Close closes every block connection.
func (c *RingClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var first error
	for _, bc := range c.conns {
		bc.mu.Lock()
		if bc.conn != nil {
			if err := bc.conn.Close(); err != nil && first == nil {
				first = err
			}
			bc.conn = nil
		}
		bc.mu.Unlock()
	}
	c.conns = nil
	return first
}

// Map snapshots the client's current partition map.
func (c *RingClient) Map() Map {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m.Clone()
}

// Stats snapshots the robustness counters.
func (c *RingClient) Stats() ClientStats { return c.st.snapshot() }

// RefreshMap fetches the partition map from the coordinator and installs
// it if newer than the current one.
func (c *RingClient) RefreshMap() error {
	if c.coord == "" {
		return fmt.Errorf("%w: no coordinator to refresh from", ErrNoMap)
	}
	kind, body, err := c.request(c.coord, kindMapReq, nil)
	if err != nil {
		return err
	}
	if kind != kindMapResp {
		return fmt.Errorf("%w: coordinator answered %q to a map fetch", ErrProtocol, kind)
	}
	m, err := DecodeMap(body)
	if err != nil {
		return err
	}
	c.adopt(m)
	return nil
}

func (c *RingClient) mapVersion() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m.Version
}

// adopt installs m if it is at least as new as the current map.
func (c *RingClient) adopt(m Map) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if m.Version >= c.m.Version {
		c.m = m
	}
}

// conn returns (creating on first use) the shared connection state for
// one block address. Dialing is lazy — blockConn.call dials on demand.
func (c *RingClient) conn(addr string) (*blockConn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conns == nil {
		return nil, errors.New("cluster: ring client is closed")
	}
	bc, ok := c.conns[addr]
	if !ok {
		bc = &blockConn{addr: addr}
		c.conns[addr] = bc
	}
	return bc, nil
}

// request runs one v2 request/response round trip against addr through
// the shared robustness envelope (reconnect, deadlines, bounded retries,
// down-cooldown).
func (c *RingClient) request(addr string, kind byte, payload []byte) (byte, []byte, error) {
	bc, err := c.conn(addr)
	if err != nil {
		return 0, nil, err
	}
	var rkind byte
	var rbody []byte
	err = bc.call(&c.cfg, &c.st,
		func(w *bufio.Writer) error { return writeBlob(w, kind, payload) },
		func(r *bufio.Reader) error {
			var err error
			rkind, rbody, err = readBlob(r)
			return err
		})
	return rkind, rbody, err
}

// neededPartitions returns the sorted distinct partitions a match for s
// must consult: the partitions of the document's own events. Any
// subscription triggered by s has its minimal event in s, so its
// partition is among these.
func neededPartitions(s core.EventSet) []uint32 {
	var seen [NumPartitions]bool
	var parts []uint32
	for _, e := range s {
		p := PartitionOfEvent(e)
		if !seen[p] {
			seen[p] = true
			parts = append(parts, uint32(p))
		}
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i] < parts[j] })
	return parts
}

// Match is MatchResult without the degradation report.
func (c *RingClient) Match(s core.EventSet) ([]core.ComplexID, error) {
	res, err := c.MatchResult(s)
	return res.IDs, err
}

// MatchResult matches the canonical event set against the cluster. Each
// needed partition is asked of its first live replica; a replica failure
// re-routes that replica's partitions to the next choice (counted in
// Stats().Failovers) — Degraded is set only when a partition runs out of
// replicas entirely. A stale-map rejection refetches the map from the
// coordinator and re-plans, bounded by maxMapRefreshes.
func (c *RingClient) MatchResult(s core.EventSet) (Result, error) {
	parts := neededPartitions(s)
	if len(parts) == 0 {
		return Result{}, nil
	}
	events := eventsToU32(s)
	var lastErr error
	for refresh := 0; ; refresh++ {
		c.mu.Lock()
		m := c.m
		c.mu.Unlock()
		if m.Version == 0 || len(m.Assign) != NumPartitions {
			return Result{}, ErrNoMap
		}
		res, stale, err := c.matchOnce(m, parts, events)
		if err != nil {
			return Result{}, err
		}
		if !stale {
			if res.Degraded {
				c.st.degraded.Add(1)
			}
			return res, nil
		}
		if refresh >= maxMapRefreshes || c.coord == "" {
			return Result{}, fmt.Errorf("%w: blocks reject map version %d as stale", ErrProtocol, m.Version)
		}
		if err := c.RefreshMap(); err != nil {
			lastErr = err
			// The coordinator may itself be briefly unreachable during a
			// transition; one more stale round against the old map at
			// least surfaces the right error.
			if refresh+1 >= maxMapRefreshes {
				return Result{}, lastErr
			}
		}
		c.st.mapRefreshes.Add(1)
	}
}

// matchOnce runs one fan-out round under a fixed map: plan partitions
// onto their first non-failed replica, query the planned blocks
// concurrently, re-plan failed blocks' partitions onto the next replica,
// and repeat until every partition is answered or out of candidates.
// Partition sets sent to distinct blocks are disjoint, so the merged ids
// carry no duplicates. stale=true means some block holds a newer map.
func (c *RingClient) matchOnce(m Map, parts []uint32, events []uint32) (Result, bool, error) {
	pending := make(map[uint32]bool, len(parts))
	for _, p := range parts {
		pending[p] = true
	}
	failed := make(map[string]bool)
	var res Result
	var firstErr error
	answered := false
	for round := 0; len(pending) > 0; round++ {
		// Plan: each pending partition goes to its first replica not yet
		// failed this match.
		plan := make(map[string][]uint32)
		for p := range pending {
			for _, addr := range m.Assign[p] {
				if !failed[addr] {
					plan[addr] = append(plan[addr], p)
					break
				}
			}
		}
		if len(plan) == 0 {
			break // every remaining partition is out of replicas
		}
		type reply struct {
			addr  string
			parts []uint32
			ids   []uint32
			stale bool
			err   error
		}
		replies := make([]reply, 0, len(plan))
		var mu sync.Mutex
		var wg sync.WaitGroup
		for addr, ps := range plan {
			wg.Add(1)
			go func(addr string, ps []uint32) {
				defer wg.Done()
				sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
				rep := reply{addr: addr, parts: ps}
				kind, body, err := c.request(addr, kindMatchV2, encodeMatchV2(m.Version, ps, events))
				switch {
				case err != nil:
					rep.err = err
				case kind == kindStale:
					rep.stale = true
				case kind == kindResults:
					rep.ids, rep.err = u32s(body)
				default:
					rep.err = fmt.Errorf("%w: block answered %q to a match", ErrProtocol, kind)
				}
				mu.Lock()
				replies = append(replies, rep)
				mu.Unlock()
			}(addr, ps)
		}
		wg.Wait()
		for _, rep := range replies {
			switch {
			case rep.stale:
				return Result{}, true, nil
			case rep.err != nil:
				var remote *RemoteError
				if errors.As(rep.err, &remote) {
					// The block understood and rejected the request;
					// another replica will reject it identically.
					return Result{}, false, rep.err
				}
				if firstErr == nil {
					firstErr = rep.err
				}
				failed[rep.addr] = true
				if !containsAddr(res.Down, rep.addr) {
					res.Down = append(res.Down, rep.addr)
				}
				if round == 0 {
					// These partitions get a second chance below; count
					// the re-route, not the final outcome.
					c.st.failovers.Add(1)
				}
			default:
				answered = true
				res.IDs = append(res.IDs, idsOf(rep.ids)...)
				for _, p := range rep.parts {
					delete(pending, p)
				}
			}
		}
	}
	if len(pending) > 0 {
		if !answered {
			// Nothing answered at all: an error, not a degraded result —
			// there is nothing to degrade to.
			if firstErr == nil {
				firstErr = fmt.Errorf("%w: no replica hosts the needed partitions", ErrNoMap)
			}
			return Result{}, false, firstErr
		}
		res.Degraded = true
	}
	return res, false, nil
}

func idsOf(raw []uint32) []core.ComplexID {
	out := make([]core.ComplexID, len(raw))
	for i, id := range raw {
		out[i] = core.ComplexID(id)
	}
	return out
}

// Add registers (or replaces) subscription id on every block that must
// observe it: the assigned replicas of its partition plus any joining
// destination mid-handoff. Add returns nil only when every target acked;
// on error the write may be partial and the caller must retry (the
// operation is idempotent) or treat the add as failed.
func (c *RingClient) Add(id core.ComplexID, events []core.Event) error {
	set := core.Canonical(events)
	if len(set) == 0 {
		return core.ErrEmptyComplexEvent
	}
	p := PartitionOf(set)
	raw := eventsToU32(set)
	return c.writeAll(p, func(ver uint64) (byte, []byte) {
		return kindAdd, encodeSubOp(ver, uint32(id), raw)
	})
}

// Remove drops subscription id from every block that could host it.
// Removing an unknown id is a no-op, as with core.Matcher.Remove.
func (c *RingClient) Remove(id core.ComplexID, events []core.Event) error {
	set := core.Canonical(events)
	if len(set) == 0 {
		return core.ErrEmptyComplexEvent
	}
	p := PartitionOf(set)
	return c.writeAll(p, func(ver uint64) (byte, []byte) {
		return kindRemove, encodeSubOp(ver, uint32(id), nil)
	})
}

// writeAll sends one write to every write target of partition p and
// requires an ack from each. Stale-map rejections refetch and retry the
// whole write — re-sending to a block that already applied it is safe
// because '+' replaces and '-' is a no-op on absence.
func (c *RingClient) writeAll(p int, frame func(ver uint64) (byte, []byte)) error {
	for refresh := 0; ; refresh++ {
		c.mu.Lock()
		m := c.m
		c.mu.Unlock()
		if m.Version == 0 || len(m.Assign) != NumPartitions {
			return ErrNoMap
		}
		targets := m.WriteTargets(p)
		if len(targets) == 0 {
			return fmt.Errorf("%w: partition %d has no write targets", ErrNoMap, p)
		}
		kind, payload := frame(m.Version)
		retry := false
		for _, addr := range targets {
			rkind, _, err := c.request(addr, kind, payload)
			if err != nil {
				// The target may simply no longer be a member: an
				// unreachable write target under an old map looks exactly
				// like this after an eviction. If the coordinator has a
				// newer map, re-plan against it before giving up.
				var remote *RemoteError
				if !errors.As(err, &remote) && refresh < maxMapRefreshes && c.coord != "" {
					if rerr := c.RefreshMap(); rerr == nil && c.mapVersion() > m.Version {
						c.st.mapRefreshes.Add(1)
						retry = true
						break
					}
				}
				return fmt.Errorf("cluster: write to %s: %w", addr, err)
			}
			if rkind == kindStale {
				if refresh >= maxMapRefreshes || c.coord == "" {
					return fmt.Errorf("%w: blocks reject map version %d as stale", ErrProtocol, m.Version)
				}
				if err := c.RefreshMap(); err != nil {
					return err
				}
				c.st.mapRefreshes.Add(1)
				retry = true
				break
			}
			if rkind != kindAck {
				return fmt.Errorf("%w: block %s answered %q to a write", ErrProtocol, addr, rkind)
			}
		}
		if !retry {
			return nil
		}
	}
}

// Probe attempts to reconnect every down block immediately, ignoring
// cooldown windows, and returns how many of the map's blocks are up.
func (c *RingClient) Probe() int {
	return probeConns(c.blockConns(), &c.cfg, &c.st)
}

// Health snapshots the liveness of every block in the current map.
func (c *RingClient) Health() []BlockHealth {
	return healthOf(c.blockConns())
}

// blockConns returns the conn state of every block in the current map,
// creating entries for blocks not yet contacted.
func (c *RingClient) blockConns() []*blockConn {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conns == nil {
		return nil
	}
	out := make([]*blockConn, 0, len(c.m.Blocks))
	for _, addr := range c.m.Blocks {
		bc, ok := c.conns[addr]
		if !ok {
			bc = &blockConn{addr: addr}
			c.conns[addr] = bc
		}
		out = append(out, bc)
	}
	return out
}
