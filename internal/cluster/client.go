package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"xymon/internal/core"
	"xymon/internal/faults"
)

// ErrBlockDown reports a block skipped because it exhausted its retry
// budget recently and is sitting out its down-cooldown window.
var ErrBlockDown = errors.New("cluster: block down")

// RemoteError is an error frame answered by a block server: the transport
// worked, the request did not. Remote errors are not retried — resending
// the same malformed request would fail the same way.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return "cluster: remote: " + e.Msg }

// clientConfig is the tunable robustness envelope of a Client.
type clientConfig struct {
	dialer      func(addr string) (net.Conn, error)
	dialTimeout time.Duration
	ioTimeout   time.Duration
	retries     int // reconnect-and-resend attempts per block per match
	downBase    time.Duration
	downMax     time.Duration
	clock       func() time.Time
	faults      *faults.Injector
}

// ClientOption configures DialWith.
type ClientOption func(*clientConfig)

// WithDialer substitutes the connection factory — fault-injection tests
// wrap every produced conn; production could add TLS.
func WithDialer(dial func(addr string) (net.Conn, error)) ClientOption {
	return func(c *clientConfig) { c.dialer = dial }
}

// WithInjector arms the default dialer's fault seam: dials and every
// Read/Write of the produced connections consult in at
// faults.PointConn. A nil injector (the default) keeps the seam
// transparent, so the production and chaos configurations differ only
// by the injector, not by the code path.
func WithInjector(in *faults.Injector) ClientOption {
	return func(c *clientConfig) { c.faults = in }
}

// WithTimeouts bounds connection establishment and each request/response
// exchange. A zero keeps the default (2s dial, 5s I/O). Deadlines are what
// turn a hung peer from "every document stalls forever" into an error the
// retry path can act on.
func WithTimeouts(dial, io time.Duration) ClientOption {
	return func(c *clientConfig) {
		if dial > 0 {
			c.dialTimeout = dial
		}
		if io > 0 {
			c.ioTimeout = io
		}
	}
}

// WithRetries sets how many times one Match reconnects and resends to a
// failing block before giving up on it (default 2).
func WithRetries(n int) ClientOption {
	return func(c *clientConfig) { c.retries = n }
}

// WithDownCooldown bounds the exponential cooldown a block sits out after
// exhausting its retry budget: base·2ⁿ⁻¹ capped at max (defaults 1s/30s).
// While cooling down the block is skipped instantly; the first Match after
// the window doubles as the health probe.
func WithDownCooldown(base, max time.Duration) ClientOption {
	return func(c *clientConfig) {
		if base > 0 {
			c.downBase = base
		}
		if max > 0 {
			c.downMax = max
		}
	}
}

// WithClientClock substitutes the time source of the down-cooldown
// bookkeeping (the I/O deadlines always run on the real clock — the
// kernel knows no virtual time).
func WithClientClock(clock func() time.Time) ClientOption {
	return func(c *clientConfig) { c.clock = clock }
}

// ClientStats counts the client's robustness activity.
type ClientStats struct {
	// Retries counts reconnect-and-resend attempts after a transport
	// error mid-match.
	Retries uint64
	// Reconnects counts successful re-dials of a lost block connection.
	Reconnects uint64
	// Degraded counts matches that returned partial results because at
	// least one block was unavailable.
	Degraded uint64
	// BlockFailures counts block give-ups (retry budget exhausted or
	// dial failure), each starting a down-cooldown window.
	BlockFailures uint64
}

// Result is the outcome of one fan-out match.
type Result struct {
	IDs []core.ComplexID
	// Degraded is set when at least one block contributed no answer: the
	// IDs are the matches of the blocks that responded. The document is
	// not lost — the paper's Monitoring Query Processor would rather
	// under-notify the partitions of a dead node than stall the whole
	// stream (Section 4.2's distribution exists to keep throughput up).
	Degraded bool
	// Down lists the addresses of the blocks that did not answer.
	Down []string
}

// Client holds connections to every block server and matches against all
// of them, surviving block failures with bounded retries, reconnection
// backoff and degraded partial results.
type Client struct {
	mu    sync.Mutex
	conns []*blockConn
	cfg   clientConfig

	retries       atomic.Uint64
	reconnects    atomic.Uint64
	degraded      atomic.Uint64
	blockFailures atomic.Uint64
}

type blockConn struct {
	mu   sync.Mutex
	addr string
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
	// downFails counts consecutive give-ups; downUntil is the end of the
	// current cooldown window.
	downFails int
	downUntil time.Time
}

// Dial connects to every block address with default robustness settings.
func Dial(addrs ...string) (*Client, error) {
	return DialWith(nil, addrs...)
}

// DialWith connects to every block address. Every address must be
// reachable at dial time — a cluster that starts degraded is a
// configuration error; degradation is for blocks that die later.
func DialWith(opts []ClientOption, addrs ...string) (*Client, error) {
	cfg := clientConfig{
		dialTimeout: 2 * time.Second,
		ioTimeout:   5 * time.Second,
		retries:     2,
		downBase:    time.Second,
		downMax:     30 * time.Second,
		clock:       time.Now,
	}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.dialer == nil {
		// The default dialer goes through the fault seam even when no
		// injector is installed (nil makes the wrapper transparent): the
		// chaos path and the production path are the same code.
		cfg.dialer = faults.Dialer(cfg.faults, faults.PointConn, cfg.dialTimeout)
	}
	c := &Client{cfg: cfg}
	for _, addr := range addrs {
		conn, err := cfg.dialer(addr)
		if err != nil {
			_ = c.Close()
			return nil, fmt.Errorf("cluster: %w", err)
		}
		bc := &blockConn{addr: addr}
		bc.attachLocked(conn)
		c.conns = append(c.conns, bc)
	}
	return c, nil
}

// Close closes every block connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var first error
	for _, bc := range c.conns {
		bc.mu.Lock()
		if bc.conn != nil {
			if err := bc.conn.Close(); err != nil && first == nil {
				first = err
			}
			bc.conn = nil
		}
		bc.mu.Unlock()
	}
	c.conns = nil
	return first
}

// Match fans the canonical event set out to every block concurrently and
// returns the merged complex-event ids. When some (but not all) blocks
// are unavailable it returns the partial merge with a nil error — use
// MatchResult to observe the Degraded flag.
func (c *Client) Match(s core.EventSet) ([]core.ComplexID, error) {
	res, err := c.MatchResult(s)
	return res.IDs, err
}

// MatchResult fans the event set out to every block and reports exactly
// what happened: full results, a degraded partial merge (some blocks
// down), or an error (every block failed — there is nothing to degrade
// to).
func (c *Client) MatchResult(s core.EventSet) (Result, error) {
	c.mu.Lock()
	conns := append([]*blockConn(nil), c.conns...)
	c.mu.Unlock()
	if len(conns) == 0 {
		return Result{}, errors.New("cluster: client is closed")
	}
	results := make([][]core.ComplexID, len(conns))
	errs := make([]error, len(conns))
	var wg sync.WaitGroup
	for i, bc := range conns {
		wg.Add(1)
		go func(i int, bc *blockConn) {
			defer wg.Done()
			results[i], errs[i] = bc.match(s, c)
		}(i, bc)
	}
	wg.Wait()
	var res Result
	var firstErr error
	for i := range conns {
		if errs[i] != nil {
			if firstErr == nil {
				firstErr = errs[i]
			}
			res.Down = append(res.Down, conns[i].addr)
			continue
		}
		res.IDs = append(res.IDs, results[i]...)
	}
	if len(res.Down) == len(conns) {
		return Result{}, firstErr
	}
	if len(res.Down) > 0 {
		res.Degraded = true
		c.degraded.Add(1)
	}
	return res, nil
}

// Probe attempts to reconnect every down block immediately, ignoring the
// cooldown window — the explicit health probe for operators and tests —
// and returns how many blocks are up afterwards.
func (c *Client) Probe() int {
	c.mu.Lock()
	conns := append([]*blockConn(nil), c.conns...)
	c.mu.Unlock()
	up := 0
	for _, bc := range conns {
		bc.mu.Lock()
		if bc.conn == nil {
			// The dialer is a config-owned leaf (net.DialTimeout or a test
			// wrapper); it never calls back into the client, and holding
			// bc.mu serialises the probe with in-flight matches.
			//xyvet:ignore lockcheck
			if conn, err := c.cfg.dialer(bc.addr); err == nil {
				bc.attachLocked(conn)
				bc.downFails = 0
				bc.downUntil = time.Time{}
				c.reconnects.Add(1)
			}
		}
		if bc.conn != nil {
			up++
		}
		bc.mu.Unlock()
	}
	return up
}

// BlockHealth is one block's liveness snapshot.
type BlockHealth struct {
	Addr      string
	Up        bool
	Fails     int       // consecutive give-ups
	DownUntil time.Time // end of the current cooldown (zero when up)
}

// Health snapshots every block's liveness.
func (c *Client) Health() []BlockHealth {
	c.mu.Lock()
	conns := append([]*blockConn(nil), c.conns...)
	c.mu.Unlock()
	out := make([]BlockHealth, 0, len(conns))
	for _, bc := range conns {
		bc.mu.Lock()
		out = append(out, BlockHealth{
			Addr: bc.addr, Up: bc.conn != nil,
			Fails: bc.downFails, DownUntil: bc.downUntil,
		})
		bc.mu.Unlock()
	}
	return out
}

// Stats snapshots the robustness counters.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		Retries:       c.retries.Load(),
		Reconnects:    c.reconnects.Load(),
		Degraded:      c.degraded.Load(),
		BlockFailures: c.blockFailures.Load(),
	}
}

// attachLocked adopts a fresh connection (bc.mu held, or bc not shared yet).
func (bc *blockConn) attachLocked(conn net.Conn) {
	bc.conn = conn
	bc.r = bufio.NewReader(conn)
	bc.w = bufio.NewWriter(conn)
}

// teardownLocked drops a broken connection.
func (bc *blockConn) teardownLocked() {
	if bc.conn != nil {
		_ = bc.conn.Close()
		bc.conn = nil
		bc.r, bc.w = nil, nil
	}
}

// markDownLocked starts (or extends) the down-cooldown window after a
// give-up: base·2ⁿ⁻¹ capped at max.
func (bc *blockConn) markDownLocked(c *Client) {
	bc.downFails++
	d := c.cfg.downBase
	for i := 1; i < bc.downFails && d < c.cfg.downMax; i++ {
		d *= 2
	}
	if d > c.cfg.downMax {
		d = c.cfg.downMax
	}
	// The clock is time.Now or a test stub reading a local variable; it
	// never blocks or re-enters.
	//xyvet:ignore lockcheck
	bc.downUntil = c.cfg.clock().Add(d)
	c.blockFailures.Add(1)
}

// match runs one request against one block with the full robustness
// envelope: skip-while-down, reconnect, deadline-bounded exchange, and a
// bounded number of retries before the block is marked down.
func (bc *blockConn) match(s core.EventSet, c *Client) ([]core.ComplexID, error) {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	events := make([]uint32, len(s))
	for i, e := range s {
		events[i] = uint32(e)
	}
	var lastErr error
	for attempt := 0; attempt <= c.cfg.retries; attempt++ {
		if attempt > 0 {
			c.retries.Add(1)
		}
		if bc.conn == nil {
			// Clock and dialer are config-owned leaves (see Probe); the
			// dial must hold bc.mu so concurrent matches on the same block
			// do not race to reconnect.
			//xyvet:ignore lockcheck
			if c.cfg.clock().Before(bc.downUntil) {
				return nil, fmt.Errorf("%w: %s until %s", ErrBlockDown, bc.addr, bc.downUntil.Format(time.RFC3339))
			}
			//xyvet:ignore lockcheck
			conn, err := c.cfg.dialer(bc.addr)
			if err != nil {
				lastErr = err
				bc.markDownLocked(c)
				return nil, err
			}
			bc.attachLocked(conn)
			c.reconnects.Add(1)
		}
		ids, err := bc.exchangeLocked(events, c.cfg.ioTimeout)
		if err == nil {
			bc.downFails = 0
			bc.downUntil = time.Time{}
			out := make([]core.ComplexID, len(ids))
			for i, id := range ids {
				out[i] = core.ComplexID(id)
			}
			return out, nil
		}
		lastErr = err
		bc.teardownLocked()
		var remote *RemoteError
		if errors.As(err, &remote) {
			// The block is alive and answered; retrying the same request
			// buys nothing and the block is not "down".
			return nil, err
		}
	}
	bc.markDownLocked(c)
	return nil, lastErr
}

// exchangeLocked performs one deadline-bounded request/response. Every
// Read and Write on the conn happens inside the deadline set here — the
// connguard analyzer's contract.
func (bc *blockConn) exchangeLocked(events []uint32, ioTimeout time.Duration) ([]uint32, error) {
	if ioTimeout > 0 {
		if err := bc.conn.SetDeadline(time.Now().Add(ioTimeout)); err != nil {
			return nil, err
		}
	}
	if err := writeFrame(bc.w, 'M', events); err != nil {
		return nil, err
	}
	if err := bc.w.Flush(); err != nil {
		return nil, err
	}
	return readSetRaw(bc.r, 'R')
}
