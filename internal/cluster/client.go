package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"xymon/internal/core"
	"xymon/internal/faults"
)

// ErrBlockDown reports a block skipped because it exhausted its retry
// budget recently and is sitting out its down-cooldown window.
var ErrBlockDown = errors.New("cluster: block down")

// RemoteError is an error frame answered by a block server: the transport
// worked, the request did not. Remote errors are not retried — resending
// the same malformed request would fail the same way.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return "cluster: remote: " + e.Msg }

// clientConfig is the tunable robustness envelope of a Client.
type clientConfig struct {
	dialer      func(addr string) (net.Conn, error)
	dialTimeout time.Duration
	ioTimeout   time.Duration
	retries     int // reconnect-and-resend attempts per block per match
	downBase    time.Duration
	downMax     time.Duration
	clock       func() time.Time
	faults      *faults.Injector
}

// ClientOption configures DialWith.
type ClientOption func(*clientConfig)

// WithDialer substitutes the connection factory — fault-injection tests
// wrap every produced conn; production could add TLS.
func WithDialer(dial func(addr string) (net.Conn, error)) ClientOption {
	return func(c *clientConfig) { c.dialer = dial }
}

// WithInjector arms the default dialer's fault seam: dials and every
// Read/Write of the produced connections consult in at
// faults.PointConn. A nil injector (the default) keeps the seam
// transparent, so the production and chaos configurations differ only
// by the injector, not by the code path.
func WithInjector(in *faults.Injector) ClientOption {
	return func(c *clientConfig) { c.faults = in }
}

// WithTimeouts bounds connection establishment and each request/response
// exchange. A zero keeps the default (2s dial, 5s I/O). Deadlines are what
// turn a hung peer from "every document stalls forever" into an error the
// retry path can act on.
func WithTimeouts(dial, io time.Duration) ClientOption {
	return func(c *clientConfig) {
		if dial > 0 {
			c.dialTimeout = dial
		}
		if io > 0 {
			c.ioTimeout = io
		}
	}
}

// WithRetries sets how many times one Match reconnects and resends to a
// failing block before giving up on it (default 2).
func WithRetries(n int) ClientOption {
	return func(c *clientConfig) { c.retries = n }
}

// WithDownCooldown bounds the exponential cooldown a block sits out after
// exhausting its retry budget: base·2ⁿ⁻¹ capped at max (defaults 1s/30s).
// While cooling down the block is skipped instantly; the first Match after
// the window doubles as the health probe.
func WithDownCooldown(base, max time.Duration) ClientOption {
	return func(c *clientConfig) {
		if base > 0 {
			c.downBase = base
		}
		if max > 0 {
			c.downMax = max
		}
	}
}

// WithClientClock substitutes the time source of the down-cooldown
// bookkeeping (the I/O deadlines always run on the real clock — the
// kernel knows no virtual time).
func WithClientClock(clock func() time.Time) ClientOption {
	return func(c *clientConfig) { c.clock = clock }
}

// newClientConfig applies opts over the defaults and resolves the dialer.
func newClientConfig(opts []ClientOption) clientConfig {
	cfg := clientConfig{
		dialTimeout: 2 * time.Second,
		ioTimeout:   5 * time.Second,
		retries:     2,
		downBase:    time.Second,
		downMax:     30 * time.Second,
		clock:       time.Now,
	}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.dialer == nil {
		// The default dialer goes through the fault seam even when no
		// injector is installed (nil makes the wrapper transparent): the
		// chaos path and the production path are the same code.
		cfg.dialer = faults.Dialer(cfg.faults, faults.PointConn, cfg.dialTimeout)
	}
	return cfg
}

// ClientStats counts the client's robustness activity.
type ClientStats struct {
	// Retries counts reconnect-and-resend attempts after a transport
	// error mid-match.
	Retries uint64
	// Reconnects counts successful re-dials of a lost block connection.
	Reconnects uint64
	// Degraded counts matches that returned partial results because at
	// least one block was unavailable.
	Degraded uint64
	// BlockFailures counts block give-ups (retry budget exhausted or
	// dial failure), each starting a down-cooldown window.
	BlockFailures uint64
	// Failovers counts partitions re-routed to a replica after their
	// preferred block failed mid-match (ring client only).
	Failovers uint64
	// MapRefreshes counts partition-map refetches after a stale-map
	// rejection (ring client only).
	MapRefreshes uint64
}

// netStats holds the atomic robustness counters shared by the static
// and ring clients.
type netStats struct {
	retries       atomic.Uint64
	reconnects    atomic.Uint64
	degraded      atomic.Uint64
	blockFailures atomic.Uint64
	failovers     atomic.Uint64
	mapRefreshes  atomic.Uint64
}

func (st *netStats) snapshot() ClientStats {
	return ClientStats{
		Retries:       st.retries.Load(),
		Reconnects:    st.reconnects.Load(),
		Degraded:      st.degraded.Load(),
		BlockFailures: st.blockFailures.Load(),
		Failovers:     st.failovers.Load(),
		MapRefreshes:  st.mapRefreshes.Load(),
	}
}

// Result is the outcome of one fan-out match.
type Result struct {
	IDs []core.ComplexID
	// Degraded is set when at least one partition (v2) or block (v1)
	// contributed no answer: the IDs are the matches of the partitions
	// that responded. With the ring client and R ≥ 2 a single block
	// failure never sets this — every partition fails over to a replica
	// first; Degraded marks the last resort, not the common case.
	Degraded bool
	// Down lists the addresses of the blocks that did not answer.
	Down []string
}

// Client holds connections to every block server and matches against all
// of them, surviving block failures with bounded retries, reconnection
// backoff and degraded partial results. It speaks the v1 static-partition
// protocol; DialRing speaks the v2 partition-map protocol.
type Client struct {
	mu    sync.Mutex
	conns []*blockConn
	cfg   clientConfig
	st    netStats
}

type blockConn struct {
	mu   sync.Mutex
	addr string
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
	// downFails counts consecutive give-ups; downUntil is the end of the
	// current cooldown window.
	downFails int
	downUntil time.Time
}

// Dial connects to every block address with default robustness settings.
func Dial(addrs ...string) (*Client, error) {
	return DialWith(nil, addrs...)
}

// DialWith connects to every block address. Every address must be
// reachable at dial time — a cluster that starts degraded is a
// configuration error; degradation is for blocks that die later.
func DialWith(opts []ClientOption, addrs ...string) (*Client, error) {
	cfg := newClientConfig(opts)
	c := &Client{cfg: cfg}
	for _, addr := range addrs {
		conn, err := cfg.dialer(addr)
		if err != nil {
			_ = c.Close()
			return nil, fmt.Errorf("cluster: %w", err)
		}
		bc := &blockConn{addr: addr}
		bc.attachLocked(conn)
		c.conns = append(c.conns, bc)
	}
	return c, nil
}

// Close closes every block connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var first error
	for _, bc := range c.conns {
		bc.mu.Lock()
		if bc.conn != nil {
			if err := bc.conn.Close(); err != nil && first == nil {
				first = err
			}
			bc.conn = nil
		}
		bc.mu.Unlock()
	}
	c.conns = nil
	return first
}

// Match fans the canonical event set out to every block concurrently and
// returns the merged complex-event ids. When some (but not all) blocks
// are unavailable it returns the partial merge with a nil error — use
// MatchResult to observe the Degraded flag.
func (c *Client) Match(s core.EventSet) ([]core.ComplexID, error) {
	res, err := c.MatchResult(s)
	return res.IDs, err
}

// MatchResult fans the event set out to every block and reports exactly
// what happened: full results, a degraded partial merge (some blocks
// down), or an error (every block failed — there is nothing to degrade
// to).
func (c *Client) MatchResult(s core.EventSet) (Result, error) {
	c.mu.Lock()
	conns := append([]*blockConn(nil), c.conns...)
	c.mu.Unlock()
	if len(conns) == 0 {
		return Result{}, errors.New("cluster: client is closed")
	}
	results := make([][]core.ComplexID, len(conns))
	errs := make([]error, len(conns))
	var wg sync.WaitGroup
	for i, bc := range conns {
		wg.Add(1)
		go func(i int, bc *blockConn) {
			defer wg.Done()
			results[i], errs[i] = bc.match(s, &c.cfg, &c.st)
		}(i, bc)
	}
	wg.Wait()
	var res Result
	var firstErr error
	for i := range conns {
		if errs[i] != nil {
			if firstErr == nil {
				firstErr = errs[i]
			}
			res.Down = append(res.Down, conns[i].addr)
			continue
		}
		res.IDs = append(res.IDs, results[i]...)
	}
	if len(res.Down) == len(conns) {
		return Result{}, firstErr
	}
	if len(res.Down) > 0 {
		res.Degraded = true
		c.st.degraded.Add(1)
	}
	return res, nil
}

// Probe attempts to reconnect every down block immediately, ignoring the
// cooldown window — the explicit health probe for operators and tests —
// and returns how many blocks are up afterwards.
func (c *Client) Probe() int {
	c.mu.Lock()
	conns := append([]*blockConn(nil), c.conns...)
	c.mu.Unlock()
	return probeConns(conns, &c.cfg, &c.st)
}

func probeConns(conns []*blockConn, cfg *clientConfig, st *netStats) int {
	up := 0
	for _, bc := range conns {
		bc.mu.Lock()
		if bc.conn == nil {
			// The dialer is a config-owned leaf (net.DialTimeout or a test
			// wrapper); it never calls back into the client, and holding
			// bc.mu serialises the probe with in-flight matches.
			//xyvet:ignore lockcheck
			if conn, err := cfg.dialer(bc.addr); err == nil {
				bc.attachLocked(conn)
				bc.downFails = 0
				bc.downUntil = time.Time{}
				st.reconnects.Add(1)
			}
		}
		if bc.conn != nil {
			up++
		}
		bc.mu.Unlock()
	}
	return up
}

// BlockHealth is one block's liveness snapshot.
type BlockHealth struct {
	Addr      string
	Up        bool
	Fails     int       // consecutive give-ups
	DownUntil time.Time // end of the current cooldown (zero when up)
}

// Health snapshots every block's liveness.
func (c *Client) Health() []BlockHealth {
	c.mu.Lock()
	conns := append([]*blockConn(nil), c.conns...)
	c.mu.Unlock()
	return healthOf(conns)
}

func healthOf(conns []*blockConn) []BlockHealth {
	out := make([]BlockHealth, 0, len(conns))
	for _, bc := range conns {
		bc.mu.Lock()
		out = append(out, BlockHealth{
			Addr: bc.addr, Up: bc.conn != nil,
			Fails: bc.downFails, DownUntil: bc.downUntil,
		})
		bc.mu.Unlock()
	}
	return out
}

// Stats snapshots the robustness counters.
func (c *Client) Stats() ClientStats { return c.st.snapshot() }

// attachLocked adopts a fresh connection (bc.mu held, or bc not shared yet).
func (bc *blockConn) attachLocked(conn net.Conn) {
	bc.conn = conn
	bc.r = bufio.NewReader(conn)
	bc.w = bufio.NewWriter(conn)
}

// teardownLocked drops a broken connection.
func (bc *blockConn) teardownLocked() {
	if bc.conn != nil {
		_ = bc.conn.Close()
		bc.conn = nil
		bc.r, bc.w = nil, nil
	}
}

// markDownLocked starts (or extends) the down-cooldown window after a
// give-up: base·2ⁿ⁻¹ capped at max.
func (bc *blockConn) markDownLocked(cfg *clientConfig, st *netStats) {
	bc.downFails++
	d := cfg.downBase
	for i := 1; i < bc.downFails && d < cfg.downMax; i++ {
		d *= 2
	}
	if d > cfg.downMax {
		d = cfg.downMax
	}
	// The clock is time.Now or a test stub reading a local variable; it
	// never blocks or re-enters.
	//xyvet:ignore lockcheck
	bc.downUntil = cfg.clock().Add(d)
	st.blockFailures.Add(1)
}

// call runs one request/response exchange against the block with the
// full robustness envelope: skip-while-down, reconnect, deadline-bounded
// I/O, and a bounded number of reconnect-and-resend retries before the
// block is marked down. send writes the request; recv reads the whole
// response (capturing results through its closure). A *RemoteError from
// recv is surfaced without retry — the transport worked.
func (bc *blockConn) call(cfg *clientConfig, st *netStats, send func(w *bufio.Writer) error, recv func(r *bufio.Reader) error) error {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	var lastErr error
	for attempt := 0; attempt <= cfg.retries; attempt++ {
		if attempt > 0 {
			st.retries.Add(1)
		}
		if bc.conn == nil {
			// Clock and dialer are config-owned leaves (see Probe); the
			// dial must hold bc.mu so concurrent matches on the same block
			// do not race to reconnect.
			//xyvet:ignore lockcheck
			if cfg.clock().Before(bc.downUntil) {
				return fmt.Errorf("%w: %s until %s", ErrBlockDown, bc.addr, bc.downUntil.Format(time.RFC3339))
			}
			//xyvet:ignore lockcheck
			conn, err := cfg.dialer(bc.addr)
			if err != nil {
				lastErr = err
				bc.markDownLocked(cfg, st)
				return err
			}
			bc.attachLocked(conn)
			st.reconnects.Add(1)
		}
		err := bc.exchangeLocked(cfg.ioTimeout, send, recv)
		if err == nil {
			bc.downFails = 0
			bc.downUntil = time.Time{}
			return nil
		}
		lastErr = err
		bc.teardownLocked()
		var remote *RemoteError
		if errors.As(err, &remote) {
			// The block is alive and answered; retrying the same request
			// buys nothing and the block is not "down".
			return err
		}
	}
	bc.markDownLocked(cfg, st)
	return lastErr
}

// exchangeLocked performs one deadline-bounded request/response. Every
// Read and Write on the conn happens inside the deadline set here — the
// connguard analyzer's contract.
func (bc *blockConn) exchangeLocked(ioTimeout time.Duration, send func(w *bufio.Writer) error, recv func(r *bufio.Reader) error) error {
	if ioTimeout > 0 {
		if err := bc.conn.SetDeadline(time.Now().Add(ioTimeout)); err != nil {
			return err
		}
	}
	// send and recv are this package's own frame codecs (see call's
	// contract): they touch only the deadline-bounded bufio pair, never
	// the client's locks.
	//xyvet:ignore lockcheck
	if err := send(bc.w); err != nil {
		return err
	}
	if err := bc.w.Flush(); err != nil {
		return err
	}
	//xyvet:ignore lockcheck
	return recv(bc.r)
}

// match runs one v1 match request against one block.
func (bc *blockConn) match(s core.EventSet, cfg *clientConfig, st *netStats) ([]core.ComplexID, error) {
	events := eventsToU32(s)
	var ids []uint32
	err := bc.call(cfg, st,
		func(w *bufio.Writer) error { return writeFrame(w, 'M', events) },
		func(r *bufio.Reader) error {
			var err error
			ids, err = readSetRaw(r, 'R')
			return err
		})
	if err != nil {
		return nil, err
	}
	out := make([]core.ComplexID, len(ids))
	for i, id := range ids {
		out[i] = core.ComplexID(id)
	}
	return out, nil
}
