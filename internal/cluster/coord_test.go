package cluster

import (
	"errors"
	"testing"
	"time"

	"xymon/internal/core"
	"xymon/internal/faults"
)

// fastOpts keeps test retries and cooldowns tight.
func fastOpts() []ClientOption {
	return []ClientOption{
		WithTimeouts(time.Second, time.Second),
		WithRetries(1),
		WithDownCooldown(5*time.Millisecond, 20*time.Millisecond),
	}
}

// testCluster is a coordinator plus dynamic blocks, ready for a ring
// client.
type testCluster struct {
	coord  *Coord
	blocks map[string]*Server
}

// startCluster boots a coordinator (journal in a temp dir) with n
// dynamic blocks joined, replication R.
func startRing(t *testing.T, n, replicas int) *testCluster {
	t.Helper()
	c, err := NewCoord(t.TempDir(), replicas, fastOpts()...)
	if err != nil {
		t.Fatalf("NewCoord: %v", err)
	}
	if err := c.ServeCoord("127.0.0.1:0"); err != nil {
		t.Fatalf("ServeCoord: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	tc := &testCluster{coord: c, blocks: make(map[string]*Server)}
	for i := 0; i < n; i++ {
		tc.addBlock(t)
	}
	return tc
}

// addBlock starts one dynamic block and joins it to the cluster.
func (tc *testCluster) addBlock(t *testing.T) *Server {
	t.Helper()
	srv, err := ServeDynamic("127.0.0.1:0", nil)
	if err != nil {
		t.Fatalf("ServeDynamic: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	tc.blocks[srv.Addr()] = srv
	if err := tc.coord.Join(srv.Addr()); err != nil {
		t.Fatalf("Join(%s): %v", srv.Addr(), err)
	}
	return srv
}

// ringClient dials the cluster through the coordinator.
func (tc *testCluster) ringClient(t *testing.T, opts ...ClientOption) *RingClient {
	t.Helper()
	rc, err := DialRing(tc.coord.Addr(), append(fastOpts(), opts...)...)
	if err != nil {
		t.Fatalf("DialRing: %v", err)
	}
	t.Cleanup(func() { rc.Close() })
	return rc
}

// seedSubs adds n reference subscriptions through the ring client and
// mirrors them into a local matcher for ground truth.
func seedSubs(t *testing.T, rc *RingClient, n int) *core.Matcher {
	t.Helper()
	ref := core.NewMatcher()
	for i := 0; i < n; i++ {
		events := []core.Event{core.Event(i % 97), core.Event(i%31 + 100), core.Event(i%13 + 200)}
		if err := rc.Add(core.ComplexID(i), events); err != nil {
			t.Fatalf("Add(%d): %v", i, err)
		}
		if err := ref.Add(core.ComplexID(i), events); err != nil {
			t.Fatal(err)
		}
	}
	return ref
}

// checkAgainstReference matches documents on the cluster and the local
// reference matcher and requires identical id sets. wantDegraded pins
// the expected degradation flag on every document.
func checkAgainstReference(t *testing.T, rc *RingClient, ref *core.Matcher, wantDegraded bool) {
	t.Helper()
	docs := [][]core.Event{
		{5, 105, 205}, {0, 100, 200}, {96, 130, 212}, {1, 2, 3, 101, 102, 201},
		{50, 115, 207, 9999}, {77, 120, 209},
	}
	for _, doc := range docs {
		set := core.Canonical(doc)
		want := ref.Match(set)
		res, err := rc.MatchResult(set)
		if err != nil {
			t.Fatalf("MatchResult(%v): %v", doc, err)
		}
		if res.Degraded != wantDegraded {
			t.Fatalf("MatchResult(%v).Degraded = %v, want %v (down: %v)", doc, res.Degraded, wantDegraded, res.Down)
		}
		if !sameIDs(res.IDs, want) {
			t.Fatalf("MatchResult(%v) = %v, reference says %v", doc, res.IDs, want)
		}
	}
}

func sameIDs(a, b []core.ComplexID) bool {
	if len(a) != len(b) {
		return false
	}
	seen := make(map[core.ComplexID]int, len(a))
	for _, id := range a {
		seen[id]++
	}
	for _, id := range b {
		seen[id]--
		if seen[id] < 0 {
			return false
		}
	}
	return true
}

// TestClusterAddMatchRemove is the happy path: subscriptions written
// through the ring client match identically to a local matcher, and
// removes take effect on every replica.
func TestClusterAddMatchRemove(t *testing.T) {
	tc := startRing(t, 3, 2)
	rc := tc.ringClient(t)
	ref := seedSubs(t, rc, 200)
	checkAgainstReference(t, rc, ref, false)

	for i := 0; i < 50; i++ {
		events := []core.Event{core.Event(i % 97), core.Event(i%31 + 100), core.Event(i%13 + 200)}
		if err := rc.Remove(core.ComplexID(i), events); err != nil {
			t.Fatalf("Remove(%d): %v", i, err)
		}
		if err := ref.Remove(core.ComplexID(i)); err != nil {
			t.Fatal(err)
		}
	}
	checkAgainstReference(t, rc, ref, false)
}

// TestFailoverBeforeDegrade is the acceptance bar of the replication
// work: with R=2, killing any single block must still return complete
// results with Degraded=false — every partition fails over to its
// surviving replica.
func TestFailoverBeforeDegrade(t *testing.T) {
	tc := startRing(t, 3, 2)
	rc := tc.ringClient(t)
	ref := seedSubs(t, rc, 150)
	checkAgainstReference(t, rc, ref, false)

	// Kill each block in turn (resurrecting none): exactly one failure at
	// a time, complete results throughout.
	var killed *Server
	for addr, srv := range tc.blocks {
		killed = srv
		srv.Close()
		checkAgainstReference(t, rc, ref, false)
		if st := rc.Stats(); st.Failovers == 0 {
			t.Fatalf("kill of %s produced no failovers: %+v", addr, st)
		}
		break
	}
	_ = killed

	// Evicting the dead block rebalances the survivors back to full
	// replication; matches stay complete and now need no failover.
	if err := tc.coord.Evict(killed.Addr()); err != nil {
		t.Fatalf("Evict: %v", err)
	}
	checkAgainstReference(t, rc, ref, false)
}

// TestBoundedDegradationAtRFailures pins the other side of the bar:
// killing R blocks at once may lose partitions, and the client must say
// so (Degraded=true with the dead blocks listed) rather than silently
// returning partial results — and must keep answering for the
// partitions that survive.
func TestBoundedDegradationAtRFailures(t *testing.T) {
	tc := startRing(t, 3, 2)
	rc := tc.ringClient(t)
	seedSubs(t, rc, 150)

	n := 0
	for _, srv := range tc.blocks {
		srv.Close()
		n++
		if n == 2 {
			break
		}
	}
	sawDegraded := false
	for i := 0; i < 97 && !sawDegraded; i++ {
		doc := []core.Event{core.Event(i), core.Event(i%31 + 100), core.Event(i%13 + 200)}
		res, err := rc.MatchResult(core.Canonical(doc))
		if err != nil {
			continue // a document whose every partition died: error is honest too
		}
		if res.Degraded {
			if len(res.Down) == 0 {
				t.Fatal("degraded result names no down blocks")
			}
			sawDegraded = true
		}
	}
	if !sawDegraded {
		t.Fatal("R simultaneous failures never surfaced a degraded result")
	}
}

// TestJoinRebalanceMovesSubscriptions adds a block to a loaded cluster
// and checks the journaled handoff: the new map assigns it partitions,
// matches stay complete mid- and post-rebalance, and the new block
// actually serves (kill an old one and the cluster still answers fully).
func TestJoinRebalanceMovesSubscriptions(t *testing.T) {
	tc := startRing(t, 2, 2)
	rc := tc.ringClient(t)
	ref := seedSubs(t, rc, 200)
	v0 := tc.coord.Map().Version

	newBlock := tc.addBlock(t)
	m := tc.coord.Map()
	if m.Version <= v0 {
		t.Fatalf("join did not advance the map: v%d → v%d", v0, m.Version)
	}
	owns := 0
	for p := 0; p < NumPartitions; p++ {
		if m.Hosts(p, newBlock.Addr()) {
			owns++
		}
	}
	if owns == 0 {
		t.Fatal("joined block owns no partitions")
	}
	checkAgainstReference(t, rc, ref, false)

	// The copied partitions are real: kill one original block; the new
	// block must hold its share of the load (R=2 across 3 blocks).
	for addr, srv := range tc.blocks {
		if addr != newBlock.Addr() {
			srv.Close()
			break
		}
	}
	checkAgainstReference(t, rc, ref, false)
}

// TestLeaveDrainsGracefully retires a block via Leave and checks nothing
// is lost once the map excludes it.
func TestLeaveDrainsGracefully(t *testing.T) {
	tc := startRing(t, 3, 2)
	rc := tc.ringClient(t)
	ref := seedSubs(t, rc, 120)

	var leaving string
	for addr := range tc.blocks {
		leaving = addr
		break
	}
	if err := tc.coord.Leave(leaving); err != nil {
		t.Fatalf("Leave: %v", err)
	}
	tc.blocks[leaving].Close() // safe to shut down now
	delete(tc.blocks, leaving)
	for p := 0; p < NumPartitions; p++ {
		if tc.coord.Map().Hosts(p, leaving) {
			t.Fatalf("left block still assigned partition %d", p)
		}
	}
	checkAgainstReference(t, rc, ref, false)
}

// TestTransferResumesFromWAL crashes the coordinator mid-handoff (a
// journaled transfer with moves pending) and checks a reopened
// coordinator resumes from the journal and commits — with every
// subscription intact.
func TestTransferResumesFromWAL(t *testing.T) {
	walDir := t.TempDir()
	c, err := NewCoord(walDir, 2, fastOpts()...)
	if err != nil {
		t.Fatalf("NewCoord: %v", err)
	}
	if err := c.ServeCoord("127.0.0.1:0"); err != nil {
		t.Fatalf("ServeCoord: %v", err)
	}
	var blocks []*Server
	for i := 0; i < 2; i++ {
		srv, err := ServeDynamic("127.0.0.1:0", nil)
		if err != nil {
			t.Fatalf("ServeDynamic: %v", err)
		}
		t.Cleanup(func() { srv.Close() })
		blocks = append(blocks, srv)
		if err := c.Join(srv.Addr()); err != nil {
			t.Fatalf("Join: %v", err)
		}
	}
	rc, err := DialRing(c.Addr(), fastOpts()...)
	if err != nil {
		t.Fatalf("DialRing: %v", err)
	}
	t.Cleanup(func() { rc.Close() })
	ref := seedSubs(t, rc, 150)

	// A third block joins, but the transfer dies after a few moves: the
	// injected fault at the transfer point stands in for the coordinator
	// process crashing mid-handoff. The original coordinator is shut down
	// first — one journal, one writer.
	_ = c.Close()
	in := faults.New(42)
	in.Enable(faults.Rule{Point: faults.PointXfer, Mode: faults.ModeError, Prob: 1, Skip: 3})
	cFaulty, err := NewCoord(walDir, 2, append(fastOpts(), WithInjector(in))...)
	if err != nil {
		t.Fatalf("reopen coordinator: %v", err)
	}
	srv3, err := ServeDynamic("127.0.0.1:0", nil)
	if err != nil {
		t.Fatalf("ServeDynamic: %v", err)
	}
	t.Cleanup(func() { srv3.Close() })
	err = cFaulty.Join(srv3.Addr())
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("faulted join = %v, want the injected mid-transfer crash", err)
	}
	_ = cFaulty.Close()

	// Reopen: NewCoord finds begin+moved records without a commit and
	// resumes the transfer to completion.
	c3, err := NewCoord(walDir, 2, fastOpts()...)
	if err != nil {
		t.Fatalf("NewCoord after crash: %v", err)
	}
	if err := c3.ServeCoord("127.0.0.1:0"); err != nil {
		t.Fatalf("ServeCoord: %v", err)
	}
	t.Cleanup(func() { c3.Close() })

	m := c3.Map()
	if len(m.Joining) != 0 {
		t.Fatalf("resumed map still mid-transfer: %+v", m)
	}
	owns := 0
	for p := 0; p < NumPartitions; p++ {
		if m.Hosts(p, srv3.Addr()) {
			owns++
		}
	}
	if owns == 0 {
		t.Fatal("resumed transfer never promoted the joining block")
	}

	rc2, err := DialRing(c3.Addr(), fastOpts()...)
	if err != nil {
		t.Fatalf("DialRing: %v", err)
	}
	t.Cleanup(func() { rc2.Close() })
	checkAgainstReference(t, rc2, ref, false)
}

// TestStaleClientRefreshesMap pins the stale-map path on the side where
// staleness is dangerous: a write routed by an old map could miss a
// joining destination, so blocks reject it and the client must refetch
// the map and re-issue the write to the full target set. (Reads never go
// stale on a join — rendezvous top-R only ever displaces a partition's
// second replica, so the first replica a stale reader contacts still
// hosts it.)
func TestStaleClientRefreshesMap(t *testing.T) {
	tc := startRing(t, 2, 2)
	rc := tc.ringClient(t)
	ref := seedSubs(t, rc, 80)

	tc.addBlock(t) // rc's map is now two versions behind

	events := []core.Event{7, 107, 207}
	if err := rc.Add(5000, events); err != nil {
		t.Fatalf("Add through a stale map: %v", err)
	}
	if err := ref.Add(5000, events); err != nil {
		t.Fatal(err)
	}
	if st := rc.Stats(); st.MapRefreshes == 0 {
		t.Fatalf("stale write never refreshed the map: %+v", st)
	}
	if got, want := rc.Map().Version, tc.coord.Map().Version; got != want {
		t.Fatalf("client map v%d, coordinator v%d", got, want)
	}
	checkAgainstReference(t, rc, ref, false)
}

// TestV1ClientRejectedLoudly pins the compatibility boundary: a v1
// static client talking to a v2 dynamic block gets an error naming the
// protocol mismatch, never a silent empty result.
func TestV1ClientRejectedLoudly(t *testing.T) {
	srv, err := ServeDynamic("127.0.0.1:0", nil)
	if err != nil {
		t.Fatalf("ServeDynamic: %v", err)
	}
	defer srv.Close()
	old, err := Dial(srv.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer old.Close()
	_, err = old.Match(core.EventSet{1, 2})
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("v1 match against v2 block = %v, want a remote protocol error", err)
	}
}
