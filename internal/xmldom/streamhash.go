package xmldom

import (
	"bytes"
	"errors"
	"fmt"
)

// This file is the streaming diff front end: StreamHasher folds the exact
// subtree-hash semantics of Document.Hashes (appendSubtreeHashes in
// hash.go) over the byte Tokenizer with an explicit stack and no DOM. One
// pass over the serialized bytes yields the root's structural hash and
// the subtree-hash frontier of the shallow levels — enough for the
// warehouse to recognise a semantically identical refetch (whitespace
// reflow, re-encoded entities, re-quoted attributes) for the cost of one
// tokenize, and, when the root hash differs, to hand the diff layer a
// precomputed agreement mask over the top-level children.
//
// The equivalence is exact and fuzz-held (FuzzStreamHash): for every
// input, Sum errors iff ParseBytes errors, and on acceptance the root
// hash and every frontier entry are bit-identical to the HashVector
// ParseBytes(data).Hashes() would compute. That requires mirroring the
// parser's tree-shaping rules, not just the tokenizer's: whitespace-only
// text is dropped, surviving text is entity-decoded and space-trimmed,
// top-level character data is discarded, and a second root element is an
// error.

// FrontierHash is one entry of the streaming hash frontier: the finished
// subtree hash of a node at Depth (0 = the root element, 1 = a top-level
// child, ...), in document order.
type FrontierHash struct {
	Depth int32
	Hash  uint64
}

// streamFrame is one open element during Sum: the running open-fold hash
// (children folded in as they close) and the frontier slot reserved for
// the element, or -1 when it lies deeper than the requested frontier.
type streamFrame struct {
	h    uint64
	slot int32
}

// StreamHasher computes structural subtree hashes straight off the byte
// tokenizer. The zero value is ready for use; Sum resets all internal
// state, and scratch storage is retained across calls so a pooled hasher
// hashes without allocating.
type StreamHasher struct {
	tok      Tokenizer
	stack    []streamFrame
	frontier []FrontierHash
	text     []byte
}

// Sum tokenizes data and returns the structural hash of its root element
// together with the frontier of subtree hashes for every node of depth at
// most maxDepth (0 = root only; negative yields an empty frontier), in
// document order. The hashes are bit-identical to the HashVector of
// ParseBytes(data), and Sum fails exactly when ParseBytes would.
//
// The returned frontier slice is owned by the hasher and only valid until
// the next Sum; callers that retain it must copy.
func (sh *StreamHasher) Sum(data []byte, maxDepth int) (uint64, []FrontierHash, error) {
	sh.tok.Reset(data)
	st := sh.stack[:0]
	fr := sh.frontier[:0]
	defer func() {
		sh.stack = st[:0]
		sh.frontier = fr
		sh.tok.Reset(nil)
	}()
	var root uint64
	rootSeen := false
	for {
		k, err := sh.tok.Next()
		if err != nil {
			return 0, nil, fmt.Errorf("xmldom: %w", err)
		}
		switch k {
		case TokEOF:
			if !rootSeen {
				return 0, nil, ErrNoRoot
			}
			sh.frontier = fr
			return root, fr, nil
		case TokStart:
			if len(st) == 0 && rootSeen {
				return 0, nil, errors.New("xmldom: multiple root elements")
			}
			rootSeen = true
			depth := len(st)
			slot := int32(-1)
			if depth <= maxDepth {
				slot = int32(len(fr))
				fr = append(fr, FrontierHash{Depth: int32(depth)})
			}
			st = append(st, streamFrame{h: sh.openHash(), slot: slot})
		case TokEnd:
			f := st[len(st)-1]
			st = st[:len(st)-1]
			h := f.h ^ '<'
			h *= fnvPrime64
			if f.slot >= 0 {
				fr[f.slot].Hash = h
			}
			if len(st) > 0 {
				st[len(st)-1].h = foldUint64(st[len(st)-1].h, h)
			} else {
				root = h
			}
		case TokText:
			if len(st) == 0 {
				// Top-level character data is dropped, like ParseBytes.
				continue
			}
			raw := sh.tok.Text()
			if sh.tok.TextDirty() {
				sh.text = sh.tok.AppendText(sh.text[:0])
				raw = sh.text
			}
			raw = bytes.TrimSpace(raw)
			if len(raw) == 0 {
				// Whitespace-only text never becomes a node.
				continue
			}
			th := uint64(fnvOffset64)
			th ^= 't'
			th *= fnvPrime64
			th = hashFoldBytes(th, raw)
			st[len(st)-1].h = foldUint64(st[len(st)-1].h, th)
			if depth := len(st); depth <= maxDepth {
				fr = append(fr, FrontierHash{Depth: int32(depth), Hash: th})
			}
		}
	}
}

// openHash folds the opening part of the current TokStart — kind marker,
// local tag name, attribute name/value pairs, the '>' separator — exactly
// like hash64Open over the node ParseBytes would build from it.
func (sh *StreamHasher) openHash() uint64 {
	z := &sh.tok
	h := uint64(fnvOffset64)
	h ^= 'e'
	h *= fnvPrime64
	h = hashFoldBytes(h, z.Tag())
	for _, a := range z.attrs {
		h = hashFoldBytes(h, z.bytes(a.local))
		v := z.bytes(a.value)
		if a.flags&(textEntity|textCR) != 0 {
			sh.text = appendDecoded(sh.text[:0], v, a.flags)
			v = sh.text
		}
		h = hashFoldBytes(h, v)
	}
	h ^= '>'
	h *= fnvPrime64
	return h
}

// hashFoldBytes is HashFold over a byte slice: same fold, same 0xff field
// separator, so folding the decoded bytes of a span is bit-identical to
// folding the string ParseBytes would intern from them.
func hashFoldBytes(h uint64, b []byte) uint64 {
	for i := 0; i < len(b); i++ {
		h ^= uint64(b[i])
		h *= fnvPrime64
	}
	h ^= 0xff
	h *= fnvPrime64
	return h
}
