package xmldom

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseBasic(t *testing.T) {
	d, err := ParseString(`<catalog type="hi-fi">
		<product><name>Radio X</name><price>10</price></product>
	</catalog>`)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if d.Root.Tag != "catalog" {
		t.Errorf("root tag = %q", d.Root.Tag)
	}
	if v, _ := d.Root.Attr("type"); v != "hi-fi" {
		t.Errorf("attr type = %q", v)
	}
	products := d.Root.Elements("product")
	if len(products) != 1 {
		t.Fatalf("products = %d, want 1", len(products))
	}
	if got := products[0].TextContent(); got != "Radio X 10" {
		t.Errorf("TextContent = %q", got)
	}
}

func TestParseDropsWhitespaceOnlyText(t *testing.T) {
	d := MustParse("<a>\n\t <b>x</b> \n</a>")
	if len(d.Root.Children) != 1 {
		t.Fatalf("children = %d, want 1 (whitespace dropped)", len(d.Root.Children))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"   ",
		"<a><b></a></b>",
		"<a>",
		"<a></a><b></b>",
	}
	for _, in := range cases {
		if _, err := ParseString(in); err == nil {
			t.Errorf("ParseString(%q) should fail", in)
		}
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	cases := []string{
		`<a/>`,
		`<a>text</a>`,
		`<a x="1" y="two"><b>hi</b><c/></a>`,
		`<r><p><q>deep</q></p>tail</r>`,
		`<e>&amp;&lt;&gt;</e>`,
		`<e attr="a&amp;b"/>`,
	}
	for _, in := range cases {
		d, err := ParseString(in)
		if err != nil {
			t.Fatalf("ParseString(%q): %v", in, err)
		}
		out := d.XML()
		d2, err := ParseString(out)
		if err != nil {
			t.Fatalf("reparse(%q): %v", out, err)
		}
		if !treesEqual(d.Root, d2.Root) {
			t.Errorf("round trip changed tree: %q -> %q", in, out)
		}
	}
}

func treesEqual(a, b *Node) bool {
	if a.Type != b.Type || a.Tag != b.Tag || a.Text != b.Text || len(a.Attrs) != len(b.Attrs) || len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Attrs {
		if a.Attrs[i] != b.Attrs[i] {
			return false
		}
	}
	for i := range a.Children {
		if !treesEqual(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

// TestSerializeParsePropertyRandomTrees builds random trees, serialises and
// reparses them, and checks structural equality.
func TestSerializeParsePropertyRandomTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tags := []string{"a", "b", "item", "name", "product"}
	words := []string{"alpha", "beta", "gamma", "x1", "hello world", "a<b&c"}
	var build func(depth int) *Node
	build = func(depth int) *Node {
		n := Element(tags[rng.Intn(len(tags))])
		if rng.Intn(2) == 0 {
			n.WithAttr("k", words[rng.Intn(len(words))])
		}
		kids := rng.Intn(4)
		for i := 0; i < kids; i++ {
			// Avoid adjacent text children: they legitimately merge into one
			// data node on reparse, which would change word boundaries.
			prevText := len(n.Children) > 0 && n.Children[len(n.Children)-1].Type == TextNode
			if !prevText && (depth >= 4 || rng.Intn(3) == 0) {
				n.AppendChild(Text(words[rng.Intn(len(words))]))
			} else {
				n.AppendChild(build(depth + 1))
			}
		}
		return n
	}
	for trial := 0; trial < 100; trial++ {
		root := build(0)
		doc := NewDocument(root)
		out := doc.XML()
		re, err := ParseString(out)
		if err != nil {
			t.Fatalf("trial %d: reparse %q: %v", trial, out, err)
		}
		// Adjacent text nodes may merge on reparse; compare text content and
		// element structure instead of exact node identity.
		if re.Root.TextContent() != doc.Root.TextContent() {
			t.Fatalf("trial %d: text content changed", trial)
		}
		if countElems(re.Root) != countElems(doc.Root) {
			t.Fatalf("trial %d: element count changed", trial)
		}
	}
}

func countElems(n *Node) int {
	c := 0
	n.PreOrder(func(x *Node) bool {
		if x.Type == ElementNode {
			c++
		}
		return true
	})
	return c
}

func TestWords(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"", ""},
		{"   ", ""},
		{"Hello", "hello"},
		{"Hello, World!", "hello world"},
		{"hi-fi", "hi fi"},
		{"Prix: 10EUR", "prix 10eur"},
		{"été Déjà", "été déjà"},
	}
	for _, c := range cases {
		got := strings.Join(Words(c.in), " ")
		if got != c.want {
			t.Errorf("Words(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestContainsWord(t *testing.T) {
	if !ContainsWord("Digital Camera, new!", "camera") {
		t.Error("should contain camera")
	}
	if ContainsWord("camcorder", "cam") {
		t.Error("substring is not word containment")
	}
}

func TestNormalizeWord(t *testing.T) {
	if got := NormalizeWord("  Camera!"); got != "camera" {
		t.Errorf("NormalizeWord = %q", got)
	}
	if got := NormalizeWord("!!"); got != "" {
		t.Errorf("NormalizeWord(punct) = %q, want empty", got)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on bad input")
		}
	}()
	MustParse("<a>")
}

// Quick properties of the word tokenisation the alerters rely on.
func TestQuickWordsProperties(t *testing.T) {
	lower := func(s string) bool {
		for _, w := range Words(s) {
			if w == "" {
				return false
			}
			if strings.ToLower(w) != w {
				return false
			}
			// Each word must itself tokenise to exactly itself.
			back := Words(w)
			if len(back) != 1 || back[0] != w {
				return false
			}
			// And be contained per ContainsWord.
			if !ContainsWord(s, w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(lower, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Parsing arbitrary bytes never panics.
func TestQuickParseNeverPanics(t *testing.T) {
	f := func(src string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		ParseString(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Serialising any parsed document reparses to the same serialisation.
func TestQuickSerializeFixedPoint(t *testing.T) {
	f := func(src string) bool {
		d, err := ParseString(src)
		if err != nil {
			return true // invalid inputs are out of scope
		}
		out := d.XML()
		d2, err := ParseString(out)
		if err != nil {
			t.Logf("serialised form does not reparse: %q -> %q: %v", src, out, err)
			return false
		}
		return d2.XML() == out
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
