package xmldom

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"strings"
)

// ErrNoRoot is returned when the input contains no element.
var ErrNoRoot = errors.New("xmldom: document has no root element")

// Parse reads an XML document and builds its DOM. Whitespace-only text is
// dropped (the alerters and the diff work on meaningful data nodes only);
// comments, processing instructions and directives are ignored.
func Parse(r io.Reader) (*Document, error) {
	dec := xml.NewDecoder(r)
	var root *Node
	var stack []*Node
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmldom: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n := &Node{Type: ElementNode, Tag: t.Name.Local}
			for _, a := range t.Attr {
				n.Attrs = append(n.Attrs, Attr{Name: a.Name.Local, Value: a.Value})
			}
			if len(stack) == 0 {
				if root != nil {
					return nil, errors.New("xmldom: multiple root elements")
				}
				root = n
			} else {
				stack[len(stack)-1].AppendChild(n)
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, errors.New("xmldom: unbalanced end element")
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			text := strings.TrimSpace(string(t))
			if text == "" || len(stack) == 0 {
				continue
			}
			stack[len(stack)-1].AppendChild(Text(text))
		}
	}
	if root == nil {
		return nil, ErrNoRoot
	}
	if len(stack) != 0 {
		return nil, errors.New("xmldom: unexpected end of input")
	}
	return NewDocument(root), nil
}

// ParseString parses a document held in a string.
func ParseString(s string) (*Document, error) {
	return Parse(strings.NewReader(s))
}

// MustParse parses a document and panics on error; for tests and
// generators with known-good input.
func MustParse(s string) *Document {
	d, err := ParseString(s)
	if err != nil {
		panic(err)
	}
	return d
}

// WriteXML serialises the subtree to w as XML. Attributes and text are
// escaped; output has no insignificant whitespace so that
// Parse(WriteXML(d)) reproduces the same tree.
func (n *Node) WriteXML(w io.Writer) error {
	switch n.Type {
	case TextNode:
		return escapeText(w, n.Text)
	case ElementNode:
		if _, err := io.WriteString(w, "<"+n.Tag); err != nil {
			return err
		}
		for _, a := range n.Attrs {
			if _, err := io.WriteString(w, " "+a.Name+`="`); err != nil {
				return err
			}
			if err := escapeText(w, a.Value); err != nil {
				return err
			}
			if _, err := io.WriteString(w, `"`); err != nil {
				return err
			}
		}
		if len(n.Children) == 0 {
			_, err := io.WriteString(w, "/>")
			return err
		}
		if _, err := io.WriteString(w, ">"); err != nil {
			return err
		}
		for _, c := range n.Children {
			if err := c.WriteXML(w); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "</"+n.Tag+">")
		return err
	}
	return fmt.Errorf("xmldom: unknown node type %d", n.Type)
}

// XML returns the subtree serialised as a string.
func (n *Node) XML() string {
	var b strings.Builder
	if err := n.WriteXML(&b); err != nil {
		return ""
	}
	return b.String()
}

// XML returns the document serialised as a string.
func (d *Document) XML() string {
	if d == nil || d.Root == nil {
		return ""
	}
	return d.Root.XML()
}

func escapeText(w io.Writer, s string) error {
	return xml.EscapeText(w, []byte(s))
}
