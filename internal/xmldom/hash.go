package xmldom

import "sync"

// HashVector is the cached structural-hash index of one document version:
// one 64-bit subtree hash per node, addressed by the node's preorder index
// (Node.ord), assigned by the same pass that computes the hashes. Two
// subtrees that serialise to the same XML carry the same hash, so the diff
// layer compares whole subtrees in O(1) without rehashing either version.
//
// A vector is owned by exactly one Document and is only valid for the tree
// shape it was computed from: callers that mutate a hashed tree in place
// (AppendChild, RemoveChild, text or attribute edits) must call
// Document.InvalidateHashes before hashing again. The warehouse computes
// the vector once per committed version and recycles it when the version
// is superseded, so a version-chain diff hashes only the new tree.
type HashVector struct {
	v []uint64
}

// Of returns the subtree hash of n. n must belong to the tree this vector
// was computed from.
func (hv *HashVector) Of(n *Node) uint64 { return hv.v[n.ord] }

// Len returns the number of hashed nodes.
func (hv *HashVector) Len() int { return len(hv.v) }

// hashVecPool recycles hash vectors across document versions: the
// warehouse releases a superseded version's vector (InvalidateHashes) and
// the next committed version draws it back, so steady-state version-chain
// diffing allocates no hash storage.
var hashVecPool = sync.Pool{New: func() any { return &HashVector{} }}

// Hashes returns the document's structural hash vector, computing and
// caching it on first use. The computation is a single iterative
// post-order fold — no recursion, no per-node allocation — so document
// depth is bounded by memory, not by the goroutine stack.
//
// The cached vector is reused by every later call (and so by every Diff
// against this version) until InvalidateHashes is called. Documents are
// not internally locked: callers that share a document across goroutines
// must serialise the first Hashes call the same way they serialise any
// other access (the warehouse computes it under its commit lock).
func (d *Document) Hashes() *HashVector {
	if d.hashes == nil {
		hv := hashVecPool.Get().(*HashVector)
		hv.v = appendSubtreeHashes(hv.v[:0], d.Root)
		d.hashes = hv
	}
	return d.hashes
}

// InvalidateHashes drops the cached hash vector and returns its storage to
// the pool. Call it after mutating the tree in place, or when a version is
// superseded and its vector will never be read again. Any HashVector
// obtained from Hashes before this call must no longer be used.
func (d *Document) InvalidateHashes() {
	if d.hashes != nil {
		hashVecPool.Put(d.hashes)
		d.hashes = nil
	}
}

// appendSubtreeHashes assigns preorder indexes (Node.ord) and appends one
// structural subtree hash per node to vec, children before parents. The
// encoding mirrors Hash64's field separation — kind marker, tag, attribute
// pairs — but combines children by folding their finished subtree hashes
// (8 bytes each) into the parent, which is what makes a single post-order
// pass sufficient: a parent's hash is a pure function of its own fields
// and its children's hashes.
func appendSubtreeHashes(vec []uint64, root *Node) []uint64 {
	if root == nil {
		return vec
	}
	if root.Type == TextNode {
		root.ord = int32(len(vec))
		return append(vec, textSubtreeHash(root))
	}
	stp := hashFramePool.Get().(*[]hash64Frame)
	st := (*stp)[:0]
	root.ord = int32(len(vec))
	vec = append(vec, 0) // placeholder until the subtree closes
	st = append(st, hash64Frame{n: root, h: hash64Open(fnvOffset64, root)})
	for len(st) > 0 {
		f := &st[len(st)-1]
		if f.child < len(f.n.Children) {
			c := f.n.Children[f.child]
			f.child++
			if c.Type == TextNode {
				c.ord = int32(len(vec))
				th := textSubtreeHash(c)
				vec = append(vec, th)
				f.h = foldUint64(f.h, th)
				continue
			}
			c.ord = int32(len(vec))
			vec = append(vec, 0)
			st = append(st, hash64Frame{n: c, h: hash64Open(fnvOffset64, c)})
			continue
		}
		h := f.h ^ '<'
		h *= fnvPrime64
		vec[f.n.ord] = h
		st = st[:len(st)-1]
		if len(st) > 0 {
			p := &st[len(st)-1]
			p.h = foldUint64(p.h, h)
		}
	}
	*stp = st[:0]
	hashFramePool.Put(stp)
	return vec
}

// textSubtreeHash is the subtree hash of a data node.
func textSubtreeHash(n *Node) uint64 {
	h := uint64(fnvOffset64)
	h ^= 't'
	h *= fnvPrime64
	return HashFold(h, n.Text)
}

// foldUint64 folds the 8 little-endian bytes of v into the running FNV-1a
// hash h — how a child's finished subtree hash joins its parent's.
func foldUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return h
}
