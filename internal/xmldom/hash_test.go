package xmldom

import (
	"hash/fnv"
	"testing"
)

// recursiveHash64 is the historical recursive Hash64, kept as the test
// oracle: the iterative version must produce bit-identical values.
func recursiveHash64(n *Node, h uint64) uint64 {
	if n.Type == TextNode {
		h ^= 't'
		h *= fnvPrime64
		return HashFold(h, n.Text)
	}
	h ^= 'e'
	h *= fnvPrime64
	h = HashFold(h, n.Tag)
	for _, a := range n.Attrs {
		h = HashFold(h, a.Name)
		h = HashFold(h, a.Value)
	}
	h ^= '>'
	h *= fnvPrime64
	for _, c := range n.Children {
		h = recursiveHash64(c, h)
	}
	h ^= '<'
	h *= fnvPrime64
	return h
}

func sampleHashTree() *Document {
	return MustParse(`<catalog site="s">
		<product id="p1"><name>radio</name><price>10</price></product>
		<product id="p2"><name>tv</name><price>200</price></product>
		<product id="p1"><name>radio</name><price>10</price></product>
	</catalog>`)
}

func TestHash64MatchesRecursiveOracle(t *testing.T) {
	doc := sampleHashTree()
	doc.Root.PreOrder(func(n *Node) bool {
		if got, want := n.Hash64(HashSeed()), recursiveHash64(n, HashSeed()); got != want {
			t.Fatalf("Hash64(%v) = %#x, recursive oracle %#x", n, got, want)
		}
		return true
	})
}

func TestHashStringMatchesFNV(t *testing.T) {
	for _, s := range []string{"", "a", "http://site0.example/catalog1.xml", "über"} {
		f := fnv.New64a()
		f.Write([]byte(s))
		if got, want := HashString(s), f.Sum64(); got != want {
			t.Errorf("HashString(%q) = %#x, fnv.New64a %#x", s, got, want)
		}
	}
}

func TestHashVectorIdenticalSubtreesShareHashes(t *testing.T) {
	doc := sampleHashTree()
	hv := doc.Hashes()
	if hv.Len() != doc.Root.Size() {
		t.Fatalf("vector has %d entries for %d nodes", hv.Len(), doc.Root.Size())
	}
	products := doc.Root.Elements("product")
	if len(products) != 3 {
		t.Fatalf("want 3 products, got %d", len(products))
	}
	if hv.Of(products[0]) != hv.Of(products[2]) {
		t.Error("identical product subtrees have different hashes")
	}
	if hv.Of(products[0]) == hv.Of(products[1]) {
		t.Error("different product subtrees share a hash")
	}
	// The vector must agree with itself across documents: the same
	// subtree shape in an independently parsed document hashes equal.
	again := sampleHashTree()
	hv2 := again.Hashes()
	if hv.Of(doc.Root) != hv2.Of(again.Root) {
		t.Error("equal documents hash differently")
	}
	// Cached: same pointer until invalidated.
	if doc.Hashes() != hv {
		t.Error("Hashes did not cache the vector")
	}
	doc.InvalidateHashes()
	hv3 := doc.Hashes()
	if hv3.Of(doc.Root) != hv2.Of(again.Root) {
		t.Error("recomputed vector changed the root hash")
	}
}

func TestHashVectorInvalidateOnMutation(t *testing.T) {
	doc := sampleHashTree()
	before := doc.Hashes().Of(doc.Root)
	doc.Root.AppendChild(Element("promo", Text("sale")))
	doc.InvalidateHashes()
	after := doc.Hashes().Of(doc.Root)
	if before == after {
		t.Error("root hash unchanged after mutation + invalidation")
	}
	if doc.Hashes().Len() != doc.Root.Size() {
		t.Errorf("vector has %d entries for %d nodes", doc.Hashes().Len(), doc.Root.Size())
	}
}

func TestHashVectorCloneIndependent(t *testing.T) {
	doc := sampleHashTree()
	hv := doc.Hashes()
	clone := doc.Clone()
	// The clone must not inherit the cache (its nodes carry no valid ord
	// until its own vector is computed).
	chv := clone.Hashes()
	if chv == hv {
		t.Fatal("clone shares the original's hash vector")
	}
	if chv.Of(clone.Root) != hv.Of(doc.Root) {
		t.Error("clone hashes differently from the original")
	}
}

// deepChain builds a single-path document of the given depth with one text
// leaf at the bottom.
func deepChain(depth int, leaf string) *Document {
	root := Element("e0")
	n := root
	for i := 1; i < depth; i++ {
		c := Element("d")
		n.AppendChild(c)
		n = c
	}
	n.AppendChild(Text(leaf))
	return NewDocument(root)
}

// TestDeepTreeNoStackOverflow is the regression test for the iterative
// traversals: a chain 10^5 elements deep must hash, measure and stringify
// without growing the goroutine stack by a frame per level.
func TestDeepTreeNoStackOverflow(t *testing.T) {
	const depth = 120_000
	doc := deepChain(depth, "leaf")
	if got := doc.Root.Size(); got != depth+1 {
		t.Fatalf("Size = %d, want %d", got, depth+1)
	}
	if got := doc.Root.TextContent(); got != "leaf" {
		t.Fatalf("TextContent = %q", got)
	}
	h1 := doc.Root.Hash64(HashSeed())
	h2 := deepChain(depth, "leaf").Root.Hash64(HashSeed())
	if h1 != h2 {
		t.Error("equal deep chains hash differently")
	}
	if h3 := deepChain(depth, "other").Root.Hash64(HashSeed()); h3 == h1 {
		t.Error("different deep chains share a Hash64")
	}
	hv := doc.Hashes()
	if hv.Len() != depth+1 {
		t.Fatalf("vector has %d entries, want %d", hv.Len(), depth+1)
	}
	other := deepChain(depth, "other")
	ohv := other.Hashes()
	if hv.Of(doc.Root) == ohv.Of(other.Root) {
		t.Error("different deep chains share a subtree hash")
	}
	if hv.Of(doc.Root) != deepChain(depth, "leaf").Hashes().Of(doc.Root) {
		// Of uses the receiver vector with the argument's ord; both roots
		// have ord 0, so this cross-lookup is well-defined here.
		t.Error("equal deep chains have different subtree hashes")
	}
}

// containsWordRef is the tokenising reference the in-place ContainsWord
// scanner must agree with.
func containsWordRef(text, word string) bool {
	for _, w := range Words(text) {
		if w == word {
			return true
		}
	}
	return false
}

func TestContainsWordMatchesTokenizer(t *testing.T) {
	texts := []string{
		"", "camera", "Digital Camera, new!", "camcorder", "cam era",
		"a cam", "cam", "CAMERA", "xx camera", "camera xx", "über Öl",
		"price10 radio", "10", "a-b-c", "...", "camera, camera",
		"word wordy word", "ïljk IJ", "end camera",
	}
	words := []string{"camera", "cam", "era", "10", "öl", "über", "word", "wordy", "a", ""}
	for _, txt := range texts {
		for _, w := range words {
			want := w != "" && containsWordRef(txt, w)
			if got := ContainsWord(txt, w); got != want {
				t.Errorf("ContainsWord(%q, %q) = %v, want %v", txt, w, got, want)
			}
		}
	}
}
