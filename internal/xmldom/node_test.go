package xmldom

import (
	"strings"
	"testing"
)

func sampleTree() *Document {
	// <catalog><product><name>radio</name><price>10</price></product>
	//          <product><name>tv</name></product></catalog>
	return NewDocument(Element("catalog",
		Element("product",
			Element("name", Text("radio")),
			Element("price", Text("10")),
		),
		Element("product",
			Element("name", Text("tv")),
		),
	))
}

func TestNewDocumentAssignsXIDs(t *testing.T) {
	d := sampleTree()
	seen := map[XID]bool{}
	d.Root.PreOrder(func(n *Node) bool {
		if n.XID == 0 {
			t.Errorf("node %v has no XID", n)
		}
		if seen[n.XID] {
			t.Errorf("duplicate XID %d", n.XID)
		}
		seen[n.XID] = true
		return true
	})
	if len(seen) != d.Root.Size() {
		t.Errorf("labelled %d nodes, tree has %d", len(seen), d.Root.Size())
	}
}

func TestRelabelPreservesExistingXIDs(t *testing.T) {
	d := sampleTree()
	rootXID := d.Root.XID
	d.Root.AppendChild(Element("product", Element("name", Text("vcr"))))
	d.Relabel()
	if d.Root.XID != rootXID {
		t.Errorf("root XID changed from %d to %d", rootXID, d.Root.XID)
	}
	d.Root.PreOrder(func(n *Node) bool {
		if n.XID == 0 {
			t.Errorf("new node %v not labelled", n)
		}
		return true
	})
}

func TestNextXIDMonotonic(t *testing.T) {
	d := sampleTree()
	a := d.NextXID()
	b := d.NextXID()
	if b <= a {
		t.Errorf("NextXID not increasing: %d then %d", a, b)
	}
	d.SetNextXID(a) // must not move backwards
	if c := d.NextXID(); c <= b {
		t.Errorf("SetNextXID moved counter backwards: got %d after %d", c, b)
	}
}

func TestPostOrder(t *testing.T) {
	d := sampleTree()
	var order []string
	d.Root.PostOrder(func(n *Node) bool {
		if n.Type == ElementNode {
			order = append(order, n.Tag)
		} else {
			order = append(order, "#"+n.Text)
		}
		return true
	})
	want := []string{"#radio", "name", "#10", "price", "product", "#tv", "name", "product", "catalog"}
	if strings.Join(order, ",") != strings.Join(want, ",") {
		t.Errorf("postorder = %v, want %v", order, want)
	}
}

func TestPostOrderEarlyStop(t *testing.T) {
	d := sampleTree()
	count := 0
	d.Root.PostOrder(func(n *Node) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("visited %d nodes, want 3", count)
	}
}

func TestLevelSizeDepth(t *testing.T) {
	d := sampleTree()
	if got := d.Root.Level(); got != 0 {
		t.Errorf("root Level = %d, want 0", got)
	}
	name := d.Root.Children[0].Children[0]
	if got := name.Level(); got != 2 {
		t.Errorf("name Level = %d, want 2", got)
	}
	if got := d.Root.Size(); got != 9 {
		t.Errorf("Size = %d, want 9", got)
	}
	if got := d.Root.Depth(); got != 4 { // catalog/product/name/#text
		t.Errorf("Depth = %d, want 4", got)
	}
}

func TestElementsAndTextContent(t *testing.T) {
	d := sampleTree()
	products := d.Root.Elements("product")
	if len(products) != 2 {
		t.Fatalf("Elements(product) = %d, want 2", len(products))
	}
	if got := products[0].TextContent(); got != "radio 10" {
		t.Errorf("TextContent = %q, want %q", got, "radio 10")
	}
	if got := d.Root.Elements("missing"); len(got) != 0 {
		t.Errorf("Elements(missing) = %v, want none", got)
	}
}

func TestInsertRemoveChild(t *testing.T) {
	n := Element("r", Element("a"), Element("c"))
	n.InsertChild(1, Element("b"))
	var tags []string
	for _, c := range n.Children {
		tags = append(tags, c.Tag)
	}
	if strings.Join(tags, "") != "abc" {
		t.Errorf("children = %v, want a,b,c", tags)
	}
	removed := n.RemoveChild(0)
	if removed.Tag != "a" || len(n.Children) != 2 || removed.Parent != nil {
		t.Errorf("RemoveChild broken: removed=%v children=%d", removed, len(n.Children))
	}
	// clamping
	n.InsertChild(-5, Element("x"))
	if n.Children[0].Tag != "x" {
		t.Error("InsertChild(-5) should clamp to front")
	}
	n.InsertChild(99, Element("y"))
	if n.Children[len(n.Children)-1].Tag != "y" {
		t.Error("InsertChild(99) should clamp to back")
	}
}

func TestChildIndex(t *testing.T) {
	a, b := Element("a"), Element("b")
	n := Element("r", a, b)
	if n.ChildIndex(b) != 1 {
		t.Errorf("ChildIndex(b) = %d, want 1", n.ChildIndex(b))
	}
	if n.ChildIndex(Element("z")) != -1 {
		t.Error("ChildIndex of non-child should be -1")
	}
}

func TestCloneIsDeep(t *testing.T) {
	d := sampleTree()
	c := d.Clone()
	c.Root.Children[0].Children[0].Children[0].Text = "changed"
	if d.Root.Children[0].Children[0].Children[0].Text != "radio" {
		t.Error("Clone shares text nodes with original")
	}
	if c.Root.XID != d.Root.XID {
		t.Error("Clone must preserve XIDs")
	}
	if c.Root.Children[0].Parent != c.Root {
		t.Error("Clone must fix parent links")
	}
}

func TestFindByXID(t *testing.T) {
	d := sampleTree()
	name := d.Root.Children[1].Children[0]
	if got := d.Root.FindByXID(name.XID); got != name {
		t.Errorf("FindByXID(%d) = %v, want %v", name.XID, got, name)
	}
	if got := d.Root.FindByXID(9999); got != nil {
		t.Errorf("FindByXID(9999) = %v, want nil", got)
	}
}

func TestAttrs(t *testing.T) {
	n := Element("site").WithAttr("url", "http://x.com").WithAttr("lang", "en")
	if v, ok := n.Attr("url"); !ok || v != "http://x.com" {
		t.Errorf("Attr(url) = %q,%v", v, ok)
	}
	if _, ok := n.Attr("missing"); ok {
		t.Error("Attr(missing) should not be found")
	}
}

func TestHash64Structural(t *testing.T) {
	mk := func() *Node {
		n := Element("product", Element("price", Text("10")))
		n.WithAttr("id", "p1")
		return n
	}
	a, b := mk(), mk()
	b.XID = 999 // XIDs must not affect the fingerprint, mirroring XML()
	if a.Hash64(HashSeed()) != b.Hash64(HashSeed()) {
		t.Error("equal subtrees hash differently")
	}
	for name, mut := range map[string]func(*Node){
		"tag":        func(n *Node) { n.Tag = "item" },
		"attr name":  func(n *Node) { n.Attrs[0].Name = "ref" },
		"attr value": func(n *Node) { n.Attrs[0].Value = "p2" },
		"text":       func(n *Node) { n.Children[0].Children[0].Text = "11" },
		"add child":  func(n *Node) { n.AppendChild(Element("stock")) },
		"drop child": func(n *Node) { n.RemoveChild(0) },
	} {
		c := mk()
		mut(c)
		if c.Hash64(HashSeed()) == a.Hash64(HashSeed()) {
			t.Errorf("%s mutation did not change the hash", name)
		}
	}
	// Structure matters, not just the token stream: <a><b/></a><c/> vs
	// <a><b/><c/></a> reparented.
	flat := Element("r", Element("a", Element("b")), Element("c"))
	nested := Element("r", Element("a", Element("b"), Element("c")))
	if flat.Hash64(HashSeed()) == nested.Hash64(HashSeed()) {
		t.Error("reparenting did not change the hash")
	}
}

func TestHashFoldFieldBoundaries(t *testing.T) {
	h1 := HashFold(HashFold(HashSeed(), "ab"), "c")
	h2 := HashFold(HashFold(HashSeed(), "a"), "bc")
	if h1 == h2 {
		t.Error("field boundary not encoded: (ab,c) == (a,bc)")
	}
}
