package xmldom

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
)

// arena allocates Nodes, child-pointer slices and attribute slices in
// chunks, so a parsed document costs a handful of allocations instead of
// one (or more) per node. Chunks are appended to only while len < cap —
// they are never reallocated, so pointers into them stay valid. The
// arena's memory is owned by the resulting Document's nodes and is
// therefore not pooled.
type arena struct {
	nodes     []Node
	ptrs      []*Node
	attrs     []Attr
	nodeChunk int
}

const (
	arenaMinChunk = 64
	arenaMaxChunk = 1024
)

// node returns a fresh zero Node from the current chunk.
func (a *arena) node() *Node {
	if len(a.nodes) == cap(a.nodes) {
		if a.nodeChunk == 0 {
			a.nodeChunk = arenaMinChunk
		} else if a.nodeChunk < arenaMaxChunk {
			a.nodeChunk *= 2
		}
		a.nodes = make([]Node, 0, a.nodeChunk)
	}
	a.nodes = append(a.nodes, Node{})
	return &a.nodes[len(a.nodes)-1]
}

// children copies src into the pointer chunk and returns the full-slice
// (capacity-clipped) view, so a later AppendChild on one node cannot
// clobber a sibling's children.
func (a *arena) children(src []*Node) []*Node {
	n := len(src)
	if n == 0 {
		return nil
	}
	if cap(a.ptrs)-len(a.ptrs) < n {
		c := arenaMaxChunk
		if n > c {
			c = n
		}
		a.ptrs = make([]*Node, 0, c)
	}
	lo := len(a.ptrs)
	a.ptrs = append(a.ptrs, src...)
	return a.ptrs[lo : lo+n : lo+n]
}

// attrSlice returns a capacity-clipped []Attr of length n from the
// attribute chunk.
func (a *arena) attrSlice(n int) []Attr {
	if cap(a.attrs)-len(a.attrs) < n {
		c := 256
		if n > c {
			c = n
		}
		a.attrs = make([]Attr, 0, c)
	}
	lo := len(a.attrs)
	a.attrs = a.attrs[:lo+n]
	return a.attrs[lo : lo+n : lo+n]
}

// parseFrame is one open element during ParseBytes: the node plus the
// offset of its first child in the shared child stack.
type parseFrame struct {
	n    *Node
	base int
}

// parseScratch is the pooled working state of ParseBytes: tokenizer,
// frame and child stacks, the tag/attr-name interning table and the text
// decode buffer are all reused across parses.
type parseScratch struct {
	tok    Tokenizer
	frames []parseFrame
	kids   []*Node
	intern map[string]string
	text   []byte
}

var parseScratchPool = sync.Pool{New: func() any {
	return &parseScratch{intern: make(map[string]string, 64)}
}}

// internBytes returns the canonical string for b, allocating only the
// first time a distinct tag or attribute name is seen (map lookups keyed
// by string(b) do not allocate).
func (sc *parseScratch) internBytes(b []byte) string {
	if s, ok := sc.intern[string(b)]; ok {
		return s
	}
	s := string(b)
	sc.intern[s] = s
	return s
}

// trimmedText returns the decoded, whitespace-trimmed text of the
// current TokText, or "" when it should be dropped.
func (sc *parseScratch) trimmedText() string {
	raw := sc.tok.Text()
	if sc.tok.TextDirty() {
		sc.text = sc.tok.AppendText(sc.text[:0])
		raw = sc.text
	}
	raw = bytes.TrimSpace(raw)
	if len(raw) == 0 {
		return ""
	}
	return string(raw)
}

// attrValue returns the decoded value of one attribute span.
func (sc *parseScratch) attrValue(a attrSpan) string {
	raw := sc.tok.bytes(a.value)
	if a.flags&(textEntity|textCR) != 0 {
		sc.text = appendDecoded(sc.text[:0], raw, a.flags)
		raw = sc.text
	}
	return string(raw)
}

// ParseBytes parses a serialized document with the byte tokenizer,
// producing the same tree — and the same accept/reject decisions — as
// Parse (FuzzParseBytes holds the two together), without encoding/xml.
// Nodes, child-pointer slices and attributes come from a chunked arena,
// tag and attribute names are interned, and text is decoded straight off
// the input spans, so the documents that survive the streaming
// pre-filter allocate in large slabs instead of per-node.
func ParseBytes(data []byte) (*Document, error) {
	sc := parseScratchPool.Get().(*parseScratch)
	frames := sc.frames[:0]
	kids := sc.kids[:0]
	defer func() {
		sc.frames = frames[:0]
		sc.kids = kids[:0]
		sc.tok.Reset(nil)
		if len(sc.intern) > 4096 {
			// A pathological tag vocabulary must not pin memory in the
			// pool forever.
			sc.intern = make(map[string]string, 64)
		}
		parseScratchPool.Put(sc)
	}()
	sc.tok.Reset(data)
	var ar arena
	var root *Node
	for {
		k, err := sc.tok.Next()
		if err != nil {
			return nil, fmt.Errorf("xmldom: %w", err)
		}
		switch k {
		case TokEOF:
			if root == nil {
				return nil, ErrNoRoot
			}
			return NewDocument(root), nil
		case TokStart:
			n := ar.node()
			n.Type = ElementNode
			n.Tag = sc.internBytes(sc.tok.Tag())
			if na := len(sc.tok.attrs); na > 0 {
				attrs := ar.attrSlice(na)
				for i, a := range sc.tok.attrs {
					attrs[i] = Attr{
						Name:  sc.internBytes(sc.tok.bytes(a.local)),
						Value: sc.attrValue(a),
					}
				}
				n.Attrs = attrs
			}
			if len(frames) == 0 {
				if root != nil {
					return nil, errors.New("xmldom: multiple root elements")
				}
				root = n
			}
			frames = append(frames, parseFrame{n: n, base: len(kids)})
		case TokEnd:
			f := frames[len(frames)-1]
			frames = frames[:len(frames)-1]
			f.n.Children = ar.children(kids[f.base:])
			for _, c := range f.n.Children {
				c.Parent = f.n
			}
			kids = kids[:f.base]
			if len(frames) > 0 {
				kids = append(kids, f.n)
			}
		case TokText:
			// Top-level character data is dropped, like Parse; so is
			// whitespace-only text (the alerters and the diff work on
			// meaningful data nodes only).
			if len(frames) == 0 {
				continue
			}
			if text := sc.trimmedText(); text != "" {
				t := ar.node()
				t.Type = TextNode
				t.Text = text
				kids = append(kids, t)
			}
		}
	}
}
