package xmldom

import (
	"encoding/xml"
	"strings"
	"testing"
)

// TestAppendEscapedMatchesStdlib holds AppendEscaped byte-identical to
// xml.EscapeText, which is what WriteXML uses: byte-path generators rely
// on that to reproduce the canonical serialisation exactly.
func TestAppendEscapedMatchesStdlib(t *testing.T) {
	cases := []string{
		"",
		"plain words",
		`<">&'`,
		"tab\tnl\ncr\r",
		"camera & <radio>",
		"� ok é世",
		"\x01\x0b", // outside the XML character range
		"\xff\xfe", // invalid UTF-8
		strings.Repeat("a&b", 100),
	}
	for _, s := range cases {
		var b strings.Builder
		if err := xml.EscapeText(&b, []byte(s)); err != nil {
			t.Fatalf("EscapeText(%q): %v", s, err)
		}
		if got := string(AppendEscaped(nil, s)); got != b.String() {
			t.Errorf("AppendEscaped(%q) = %q, want %q", s, got, b.String())
		}
	}
}
