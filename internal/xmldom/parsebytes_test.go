package xmldom

import (
	"strings"
	"testing"
)

// parityCases are inputs that exercise the corners where the byte
// tokenizer must agree with the strict encoding/xml decoder: namespace
// end-tag matching, entity validation, CDATA termination, directives
// with embedded comments, xml declarations, and character-range rules.
var parityCases = []string{
	`<catalog site="x"><product id="p1"><name>radio</name><price>10</price></product></catalog>`,
	`<a x="1">text<b/>&amp;</a>`,
	`<a><b></a></b>`,
	``,
	`<a/>`,
	`junk<a/>tail`,
	`<a/><b/>`,
	`<a>&#32;</a>`,
	`<a><![CDATA[x]]y]]></a>`,
	`<a>]]></a>`,
	`<a>]]&gt;</a>`,
	`<?xml version="1.0" encoding="UTF-8"?><a/>`,
	`<?xml version="2.0"?><a/>`,
	`<?xml version="1.0" encoding="latin-1"?><a/>`,
	"<a>\r\nx\r</a>",
	"<a b=\"x\ry\"/>",
	`<a:b xmlns:a="u"></a:b>`,
	`<a:b></c:b>`,
	`<a:b:c/>`,
	`<:a></:a>`,
	`<a:></a:>`,
	`<a b='q"q'/>`,
	`<a b="q'q"/>`,
	`<a b="<"/>`,
	`<a b=x/>`,
	`<a b/>`,
	`<!DOCTYPE doc [<!ENTITY x "y">]><doc/>`,
	`<!DOCTYPE doc [ <!-- <not-nested --> ]><doc/>`,
	`<a><!-- c --x --></a>`,
	`<a><!-- ok --></a>`,
	`<a><?pi any ! content?></a>`,
	`<a>&#xD800;</a>`,
	`<a>&#x110000;</a>`,
	`<a>&#1;</a>`,
	`<a>&#x10FFFF;</a>`,
	`<a>cam&#101;ra</a>`,
	`<a>&unknown;</a>`,
	`<a>&lt;&gt;&amp;&apos;&quot;</a>`,
	`<a>&#;</a>`,
	`<a>&# ;</a>`,
	`<a>& amp;</a>`,
	`<a`,
	`<a>`,
	`</a>`,
	`<a></a`,
	`<a></a >`,
	`<a ></a>`,
	`<a><![CDATA[never closed</a>`,
	`<a>x<![CDATA[y]]>z</a>`,
	"<a>\x01</a>",
	"<a>\xff</a>",
	"\ufeff<a/>",
	`<a> <b/> </a>`,
	`<π>τ</π>`,
	`<a xmlns="u" xmlns:p="v" p:x="1"/>`,
}

// TestParseBytesParity holds ParseBytes to the legacy parser's
// accept/reject decision and tree shape on every handwritten corner.
func TestParseBytesParity(t *testing.T) {
	for _, src := range parityCases {
		d1, err1 := ParseString(src)
		d2, err2 := ParseBytes([]byte(src))
		if (err1 == nil) != (err2 == nil) {
			t.Errorf("%q: Parse err=%v, ParseBytes err=%v", src, err1, err2)
			continue
		}
		if err1 != nil {
			continue
		}
		if x1, x2 := d1.XML(), d2.XML(); x1 != x2 {
			t.Errorf("%q: trees differ:\n legacy %q\n bytes  %q", src, x1, x2)
		}
		if h1, h2 := d1.Root.Hash64(HashSeed()), d2.Root.Hash64(HashSeed()); h1 != h2 {
			t.Errorf("%q: Hash64 differs", src)
		}
	}
}

// TestParseBytesParentsAndXIDs checks the arena-built tree is fully
// wired: parent links, preorder XIDs and attribute access.
func TestParseBytesParentsAndXIDs(t *testing.T) {
	d, err := ParseBytes([]byte(`<r a="1"><b>x</b><c d="2"><e/></c></r>`))
	if err != nil {
		t.Fatal(err)
	}
	if d.Root.Tag != "r" || d.Root.XID != 1 {
		t.Fatalf("root = %v", d.Root)
	}
	if v, ok := d.Root.Attr("a"); !ok || v != "1" {
		t.Fatalf("attr a = %q, %v", v, ok)
	}
	seen := 0
	d.Root.PreOrder(func(n *Node) bool {
		seen++
		for _, c := range n.Children {
			if c.Parent != n {
				t.Fatalf("child %v of %v has parent %v", c, n, c.Parent)
			}
		}
		return true
	})
	if seen != 5 {
		t.Fatalf("node count = %d, want 5", seen)
	}
	// XIDs are preorder-dense starting at 1, like NewDocument assigns.
	if c := d.Root.Children[1]; c.Tag != "c" || c.XID != 4 {
		t.Fatalf("second child = %v", c)
	}
}

// TestParseBytesSiblingIsolation makes sure the capacity-clipped child
// slices from the arena cannot alias: appending a child to one element
// must not clobber its sibling's children.
func TestParseBytesSiblingIsolation(t *testing.T) {
	d, err := ParseBytes([]byte(`<r><a><x/></a><b><y/></b></r>`))
	if err != nil {
		t.Fatal(err)
	}
	a, b := d.Root.Children[0], d.Root.Children[1]
	a.AppendChild(Element("z"))
	if b.Children[0].Tag != "y" {
		t.Fatalf("sibling clobbered: %v", b.Children[0])
	}
	if len(a.Children) != 2 || a.Children[1].Tag != "z" {
		t.Fatalf("append lost: %v", a.Children)
	}
}

// TestParseBytesDeep parses a deep chain: the explicit frame stack must
// not recurse per level.
func TestParseBytesDeep(t *testing.T) {
	const depth = 50_000
	var sb strings.Builder
	for i := 0; i < depth; i++ {
		sb.WriteString("<d>")
	}
	sb.WriteString("leaf")
	for i := 0; i < depth; i++ {
		sb.WriteString("</d>")
	}
	d, err := ParseBytes([]byte(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	n := d.Root
	levels := 1
	for len(n.Children) > 0 && n.Children[0].Type == ElementNode {
		n = n.Children[0]
		levels++
	}
	if levels != depth {
		t.Fatalf("depth = %d, want %d", levels, depth)
	}
}

func BenchmarkTokenize(b *testing.B) {
	data := []byte(`<catalog site="http://s.example/"><product id="p1"><name>radio alpha</name><category>video</category><price>129</price></product><product id="p2"><name>camera</name><category>photo</category><price>349</price></product></catalog>`)
	z := NewTokenizer(data)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		z.Reset(data)
		for {
			k, err := z.Next()
			if err != nil {
				b.Fatal(err)
			}
			if k == TokEOF {
				break
			}
		}
	}
}
