package xmldom

import (
	"strings"
	"testing"
)

// frontierOracle computes the expected frontier of a parsed document from
// its hash vector: one (depth, hash) entry per node of depth <= maxDepth,
// in document order. Depth is bounded, so plain loops suffice (no
// recursion on fuzz-shaped trees).
func frontierOracle(d *Document, maxDepth int) []FrontierHash {
	var want []FrontierHash
	if maxDepth < 0 {
		return want
	}
	hv := d.Hashes()
	want = append(want, FrontierHash{Depth: 0, Hash: hv.Of(d.Root)})
	if maxDepth < 1 {
		return want
	}
	for _, c := range d.Root.Children {
		want = append(want, FrontierHash{Depth: 1, Hash: hv.Of(c)})
		if maxDepth < 2 {
			continue
		}
		for _, g := range c.Children {
			want = append(want, FrontierHash{Depth: 2, Hash: hv.Of(g)})
		}
	}
	return want
}

func checkStreamAgainstDOM(t *testing.T, src string, maxDepth int) {
	t.Helper()
	var sh StreamHasher
	root, fr, err := sh.Sum([]byte(src), maxDepth)
	doc, perr := ParseBytes([]byte(src))
	if (err == nil) != (perr == nil) {
		t.Fatalf("accept/reject divergence on %q: Sum err=%v, ParseBytes err=%v", src, err, perr)
	}
	if err != nil {
		return
	}
	hv := doc.Hashes()
	if want := hv.Of(doc.Root); root != want {
		t.Fatalf("root hash divergence on %q: stream %#x, DOM %#x", src, root, want)
	}
	want := frontierOracle(doc, maxDepth)
	if len(fr) != len(want) {
		t.Fatalf("frontier length divergence on %q: stream %v, DOM %v", src, fr, want)
	}
	for i := range fr {
		if fr[i] != want[i] {
			t.Fatalf("frontier[%d] divergence on %q: stream %+v, DOM %+v", i, src, fr[i], want[i])
		}
	}
}

// FuzzStreamHash is the gate holding StreamHasher bit-identical to the
// DOM path: for every input, Sum accepts iff ParseBytes accepts, and on
// acceptance the root hash and the depth<=2 frontier equal the entries of
// ParseBytes(data).Hashes().
func FuzzStreamHash(f *testing.F) {
	for _, src := range parityCases {
		f.Add(src)
	}
	f.Add(`<c a="1" b="&lt;x&gt;">  <p id="p0"><n>radio</n></p> t <p/> </c>`)
	f.Add("<a>\r\n<b>x</b><![CDATA[ ]]>]]&gt;<b>x</b>\r</a>")
	f.Fuzz(func(t *testing.T, src string) {
		checkStreamAgainstDOM(t, src, 2)
	})
}

func TestStreamHashMatchesDOM(t *testing.T) {
	cases := []string{
		`<catalog><product id="p0"><name>radio</name><price>10</price></product></catalog>`,
		`<catalog site="http://s/"> <product id="p0"> <name> radio </name> </product> </catalog>`,
		"<a>\n\t<b x='1'/>\n</a>",
		`<a>&amp;text&#65;</a>`,
		`<a><![CDATA[raw & <text>]]></a>`,
		`<a>   </a>`, // whitespace-only text drops: hash equals <a/>
		`<a/>`,
		`<deep><l1><l2><l3>x</l3></l2></l1></deep>`,
		`<?xml version="1.0"?><!DOCTYPE a><a><!-- c -->t</a>`,
		`<mixed>one<e/>two<e/>three</mixed>`,
	}
	for _, src := range cases {
		// The oracle enumerates depths 0-2; deeper frontiers are covered by
		// the root-hash equality (the fold is the same code path).
		for depth := -1; depth <= 2; depth++ {
			checkStreamAgainstDOM(t, src, depth)
		}
	}
}

// The whole point of the streaming front end: byte-different but
// semantically identical serialisations hash to the same root.
func TestStreamHashNeutralPerturbations(t *testing.T) {
	base := `<catalog site="s"><product id="p0"><name>radio</name></product><product id="p1"><name>tv</name></product></catalog>`
	variants := []string{
		"<catalog site=\"s\">\n  <product id=\"p0\">\n    <name>radio</name>\n  </product>\n  <product id=\"p1\"><name>tv</name></product>\n</catalog>",
		`<catalog site='s'><product id='p0'><name>radio</name></product><product  id="p1" ><name>tv</name></product></catalog>`,
		`<catalog site="s"><product id="p0"><name>&#114;adio</name></product><product id="p1"><name><![CDATA[tv]]></name></product></catalog>`,
	}
	var sh StreamHasher
	want, _, err := sh.Sum([]byte(base), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range variants {
		got, _, err := sh.Sum([]byte(v), 1)
		if err != nil {
			t.Fatalf("%q: %v", v, err)
		}
		if got != want {
			t.Errorf("neutral perturbation changed the hash:\n base %q\n vary %q", base, v)
		}
		checkStreamAgainstDOM(t, v, 2)
	}
	// A real edit must change it.
	got, _, err := sh.Sum([]byte(strings.Replace(base, "radio", "sonar", 1)), 1)
	if err != nil {
		t.Fatal(err)
	}
	if got == want {
		t.Error("semantic edit did not change the root hash")
	}
}

// The frontier's depth-1 run mirrors the root's children exactly — the
// contract the warehouse's diff mask is built on.
func TestStreamHashFrontierMirrorsChildren(t *testing.T) {
	src := `<c>head<p id="a"><x>1</x></p>mid<p id="b"/>tail</c>`
	var sh StreamHasher
	_, fr, err := sh.Sum([]byte(src), 1)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := ParseBytes([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	hv := doc.Hashes()
	var top []FrontierHash
	for _, f := range fr {
		if f.Depth == 1 {
			top = append(top, f)
		}
	}
	if len(top) != len(doc.Root.Children) {
		t.Fatalf("depth-1 frontier has %d entries, root has %d children", len(top), len(doc.Root.Children))
	}
	for i, c := range doc.Root.Children {
		if top[i].Hash != hv.Of(c) {
			t.Errorf("child %d: frontier %#x, vector %#x", i, top[i].Hash, hv.Of(c))
		}
	}
}

// A reused hasher must produce identical results (scratch fully reset)
// and must fail exactly like ParseBytes on the parser-level rejections
// the tokenizer alone would accept.
func TestStreamHashReuseAndErrors(t *testing.T) {
	var sh StreamHasher
	good := `<a><b>x</b></a>`
	h1, _, err := sh.Sum([]byte(good), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", "   ", "<!-- only -->", "<a/><b/>", "<a><b></a>", "<a>&bad;</a>"} {
		if _, _, err := sh.Sum([]byte(bad), 1); err == nil {
			t.Errorf("Sum accepted %q", bad)
		}
		if _, perr := ParseBytes([]byte(bad)); perr == nil {
			t.Errorf("oracle drift: ParseBytes accepted %q", bad)
		}
	}
	h2, _, err := sh.Sum([]byte(good), 1)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Errorf("reused hasher diverged: %#x vs %#x", h1, h2)
	}
}
