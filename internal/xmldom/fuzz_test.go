package xmldom

import "testing"

// FuzzParse checks the XML parser never panics and that accepted
// documents serialise to a fixed point.
func FuzzParse(f *testing.F) {
	f.Add(`<catalog><product><name>radio</name></product></catalog>`)
	f.Add(`<a x="1">text<b/>&amp;</a>`)
	f.Add(`<a><b></a></b>`)
	f.Add("")
	f.Fuzz(func(t *testing.T, src string) {
		d, err := ParseString(src)
		if err != nil {
			return
		}
		out := d.XML()
		d2, err := ParseString(out)
		if err != nil {
			t.Fatalf("serialised form does not reparse: %q -> %q: %v", src, out, err)
		}
		if d2.XML() != out {
			t.Fatalf("serialisation not a fixed point: %q vs %q", out, d2.XML())
		}
	})
}
