package xmldom

import "testing"

// FuzzParseBytes differentially fuzzes the byte tokenizer path against
// the legacy encoding/xml-based parser: for every input, either both
// reject, or both accept and build identical trees (same Hash64, same
// serialisation).
func FuzzParseBytes(f *testing.F) {
	for _, src := range parityCases {
		f.Add(src)
	}
	f.Fuzz(func(t *testing.T, src string) {
		d1, err1 := ParseString(src)
		d2, err2 := ParseBytes([]byte(src))
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("accept/reject divergence on %q: Parse err=%v, ParseBytes err=%v", src, err1, err2)
		}
		if err1 != nil {
			return
		}
		if h1, h2 := d1.Root.Hash64(HashSeed()), d2.Root.Hash64(HashSeed()); h1 != h2 {
			t.Fatalf("tree divergence on %q:\n legacy %q\n bytes  %q", src, d1.XML(), d2.XML())
		}
		if x1, x2 := d1.XML(), d2.XML(); x1 != x2 {
			t.Fatalf("serialisation divergence on %q: %q vs %q", src, x1, x2)
		}
	})
}

// FuzzParse checks the XML parser never panics and that accepted
// documents serialise to a fixed point.
func FuzzParse(f *testing.F) {
	f.Add(`<catalog><product><name>radio</name></product></catalog>`)
	f.Add(`<a x="1">text<b/>&amp;</a>`)
	f.Add(`<a><b></a></b>`)
	f.Add("")
	f.Fuzz(func(t *testing.T, src string) {
		d, err := ParseString(src)
		if err != nil {
			return
		}
		out := d.XML()
		d2, err := ParseString(out)
		if err != nil {
			t.Fatalf("serialised form does not reparse: %q -> %q: %v", src, out, err)
		}
		if d2.XML() != out {
			t.Fatalf("serialisation not a fixed point: %q vs %q", out, d2.XML())
		}
	})
}
