package xmldom

import (
	"strings"
	"unicode"
)

// Words splits text into lower-cased words: maximal runs of letters and
// digits. This is the tokenisation shared by the `contains` conditions of
// the subscription language and the alerters' word tables, so "Camera,
// digital!" contains the word "camera".
func Words(text string) []string {
	var words []string
	start := -1
	lower := strings.ToLower(text)
	for i, r := range lower {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			words = append(words, lower[start:i])
			start = -1
		}
	}
	if start >= 0 {
		words = append(words, lower[start:])
	}
	return words
}

// ContainsWord reports whether the word (already lower-case) occurs in
// text under the Words tokenisation.
func ContainsWord(text, word string) bool {
	for _, w := range Words(text) {
		if w == word {
			return true
		}
	}
	return false
}

// NormalizeWord lower-cases a query word so it compares against Words
// output. Returns the empty string when the input contains no letters or
// digits.
func NormalizeWord(s string) string {
	ws := Words(s)
	if len(ws) == 0 {
		return ""
	}
	return strings.Join(ws, " ")
}
