package xmldom

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// Words splits text into lower-cased words: maximal runs of letters and
// digits. This is the tokenisation shared by the `contains` conditions of
// the subscription language and the alerters' word tables, so "Camera,
// digital!" contains the word "camera".
func Words(text string) []string {
	var words []string
	start := -1
	lower := strings.ToLower(text)
	for i, r := range lower {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			words = append(words, lower[start:i])
			start = -1
		}
	}
	if start >= 0 {
		words = append(words, lower[start:])
	}
	return words
}

// ContainsWord reports whether the word (already lower-case) occurs in
// text under the Words tokenisation. It scans in place — same maximal
// letter/digit runs, same unicode.ToLower folding as Words — without
// materialising the token list: this runs once per (element, condition) on
// the alerter hot path, where the tokenising version dominated the
// per-document allocation profile.
func ContainsWord(text, word string) bool {
	if word == "" {
		return false
	}
	inTok := false // inside a letter/digit run
	wi := 0        // bytes of word matched within the current run
	live := true   // current run still a prefix of word
	for _, r := range text {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if !inTok {
				inTok, wi, live = true, 0, true
			}
			if live {
				if wi < len(word) {
					wr, size := utf8.DecodeRuneInString(word[wi:])
					if unicode.ToLower(r) == wr {
						wi += size
					} else {
						live = false
					}
				} else {
					live = false // token longer than word
				}
			}
			continue
		}
		if inTok && live && wi == len(word) {
			return true
		}
		inTok = false
	}
	return inTok && live && wi == len(word)
}

// NormalizeWord lower-cases a query word so it compares against Words
// output. Returns the empty string when the input contains no letters or
// digits.
func NormalizeWord(s string) string {
	ws := Words(s)
	if len(ws) == 0 {
		return ""
	}
	return strings.Join(ws, " ")
}
