package xmldom

import (
	"bytes"
	"fmt"
	"unicode"
	"unicode/utf8"
)

// This file is the hand-rolled byte-level XML tokenizer behind ParseBytes
// and the alerter's streaming pre-filter. It scans a whole document held
// in a []byte and yields start/end/chardata tokens as spans into that
// buffer — Next performs no allocation, and entity decoding is deferred
// until a span is actually consumed (AppendText), so a pre-filter pass
// that rejects a document never materialises a single string.
//
// The tokenizer accepts exactly the documents the strict encoding/xml
// decoder accepts (FuzzParseBytes holds the two to identical trees or
// identical rejection), which pins down several non-obvious rules:
//
//   - End tags match the raw (prefix:local) name of the open element;
//     namespace bindings are never consulted.
//   - A name may contain at most one colon; a leading or trailing colon
//     makes the whole name the local name.
//   - Character data may not contain an unescaped "]]>", a bare "<" ends
//     it, and every rune must lie in the XML character range; numeric
//     entities above unicode.MaxRune are rejected while surrogate values
//     expand to U+FFFD.
//   - "\r" and "\r\n" normalise to "\n" — but only for source bytes, not
//     for the expansion of a character entity.
//   - Comments must not contain "--"; CDATA must terminate; directives
//     nest unquoted angle brackets and may embed comments; a <?xml?>
//     declaration may only carry version 1.0 and a utf-8 encoding.

// TokenizeError describes a malformed document rejected by the byte
// tokenizer, with the offset of the offending byte.
type TokenizeError struct {
	Off int
	Msg string
}

func (e *TokenizeError) Error() string {
	return fmt.Sprintf("syntax error at byte %d: %s", e.Off, e.Msg)
}

// TokKind identifies the kind of the current token.
type TokKind uint8

const (
	// TokEOF is returned at the end of a well-formed document.
	TokEOF TokKind = iota
	// TokStart is a start element; Tag holds its local name.
	TokStart
	// TokEnd is an end element (synthesised for self-closing elements).
	TokEnd
	// TokText is one run of character data or one CDATA section.
	TokText
	// tokSkip is internal: a comment, processing instruction or
	// directive that was validated and consumed.
	tokSkip
)

// span is a half-open byte range into the tokenizer's input buffer.
type span struct{ lo, hi int }

// plainText marks the bytes scanText can bulk-skip: printable ASCII plus
// tab and newline, excluding everything its state machine inspects — the
// terminators ('<', the quote bytes), '&' (entities), ']' and '>' (the
// ]]> tracker), and anything that needs validation (controls, '\r',
// multi-byte lead bytes).
var plainText [256]bool

func init() {
	for c := 0x20; c < utf8.RuneSelf; c++ {
		plainText[c] = true
	}
	plainText['\t'], plainText['\n'] = true, true
	for _, c := range []byte{'<', '&', '"', '\'', ']', '>'} {
		plainText[c] = false
	}
}

// textFlags records what a raw text span needs before it can be consumed.
type textFlags uint8

const (
	textEntity textFlags = 1 << iota // contains entity references to expand
	textCR                           // contains \r bytes to normalise
	textCDATA                        // CDATA content: entities are literal
)

// attrSpan is one attribute of the current TokStart: the local-name span
// and the raw value span between the quotes.
type attrSpan struct {
	local span
	value span
	flags textFlags
}

// Tokenizer scans a []byte XML document. The zero value is not ready for
// use; call NewTokenizer or Reset. Scratch slices are retained across
// Reset so a pooled Tokenizer tokenizes without allocating.
type Tokenizer struct {
	buf []byte
	pos int
	err error

	kind   TokKind
	raw    span // full element name, including any prefix
	local  span // local element name
	text   span
	tflags textFlags
	attrs  []attrSpan

	needClose  bool
	closeRaw   span
	closeLocal span

	stack []span // raw names of open elements
}

// NewTokenizer returns a Tokenizer reading data.
func NewTokenizer(data []byte) *Tokenizer {
	z := &Tokenizer{}
	z.Reset(data)
	return z
}

// Reset rewinds the tokenizer onto a new buffer, keeping its internal
// scratch. Reset(nil) drops the reference to the previous buffer.
func (z *Tokenizer) Reset(data []byte) {
	z.buf = data
	z.pos = 0
	z.err = nil
	z.kind = TokEOF
	z.attrs = z.attrs[:0]
	z.stack = z.stack[:0]
	z.needClose = false
}

// syntax records the first error with the current byte offset. Callers
// that need to return it read z.err, which syntax never overwrites.
func (z *Tokenizer) syntax(msg string) {
	if z.err == nil {
		z.err = &TokenizeError{Off: z.pos, Msg: msg}
	}
}

func (z *Tokenizer) getc() (byte, bool) {
	if z.pos >= len(z.buf) {
		return 0, false
	}
	b := z.buf[z.pos]
	z.pos++
	return b, true
}

// mustgetc is getc with the stdlib decoder's semantics: running out of
// input mid-token is a syntax error.
func (z *Tokenizer) mustgetc() (byte, bool) {
	b, ok := z.getc()
	if !ok {
		z.syntax("unexpected EOF")
	}
	return b, ok
}

func (z *Tokenizer) ungetc() { z.pos-- }

func (z *Tokenizer) bytes(s span) []byte { return z.buf[s.lo:s.hi] }

// space skips XML whitespace.
func (z *Tokenizer) space() {
	for z.pos < len(z.buf) {
		switch z.buf[z.pos] {
		case ' ', '\r', '\n', '\t':
			z.pos++
		default:
			return
		}
	}
}

// Tag returns the local element name of the current TokStart or TokEnd.
// The slice aliases the input buffer.
func (z *Tokenizer) Tag() []byte { return z.bytes(z.local) }

// Text returns the raw character data of the current TokText. When
// TextDirty reports true the bytes still contain entity references or
// \r sequences and must be expanded with AppendText before use.
func (z *Tokenizer) Text() []byte { return z.bytes(z.text) }

// TextDirty reports whether the current TokText span needs decoding.
func (z *Tokenizer) TextDirty() bool { return z.tflags&(textEntity|textCR) != 0 }

// AppendText appends the decoded character data of the current TokText
// to dst: entity references expanded, \r and \r\n normalised to \n.
func (z *Tokenizer) AppendText(dst []byte) []byte {
	return appendDecoded(dst, z.bytes(z.text), z.tflags)
}

// Depth returns the number of currently open elements.
func (z *Tokenizer) Depth() int { return len(z.stack) }

// Next advances to the next structural token: TokStart, TokEnd or
// TokText, or TokEOF at the end of a well-formed document. Comments,
// processing instructions and directives are validated and skipped.
// Self-closing elements yield a TokStart followed by a synthetic TokEnd.
func (z *Tokenizer) Next() (TokKind, error) {
	if z.err != nil {
		return TokEOF, z.err
	}
	for {
		k, ok := z.rawNext()
		if !ok {
			if z.err == nil {
				if len(z.stack) > 0 {
					z.syntax("unexpected EOF")
					return TokEOF, z.err
				}
				z.kind = TokEOF
				return TokEOF, nil
			}
			return TokEOF, z.err
		}
		switch k {
		case TokStart:
			z.stack = append(z.stack, z.raw)
			z.kind = TokStart
			return TokStart, nil
		case TokEnd:
			// Raw-name matching: for names with at most one colon,
			// byte equality of the raw names is exactly equality of
			// the (space, local) pairs the stdlib compares.
			if len(z.stack) == 0 {
				z.syntax("unexpected end element </" + string(z.bytes(z.local)) + ">")
				return TokEOF, z.err
			}
			top := z.stack[len(z.stack)-1]
			z.stack = z.stack[:len(z.stack)-1]
			if !bytes.Equal(z.bytes(top), z.bytes(z.raw)) {
				z.syntax("element <" + string(z.bytes(top)) + "> closed by </" + string(z.bytes(z.raw)) + ">")
				return TokEOF, z.err
			}
			z.kind = TokEnd
			return TokEnd, nil
		case TokText:
			z.kind = TokText
			return TokText, nil
		}
		// tokSkip: comment, PI or directive — keep scanning.
	}
}

// rawNext scans one raw token. ok=false means end of input (clean only
// if z.err is nil) or an error already recorded in z.err.
func (z *Tokenizer) rawNext() (TokKind, bool) {
	if z.needClose {
		// The end tag implied by <name/>.
		z.needClose = false
		z.raw, z.local = z.closeRaw, z.closeLocal
		return TokEnd, true
	}
	b, ok := z.getc()
	if !ok {
		return TokEOF, false
	}
	if b != '<' {
		z.ungetc()
		s, flags, ok := z.scanText(-1, false)
		if !ok {
			return TokEOF, false
		}
		z.text, z.tflags = s, flags
		return TokText, true
	}
	if b, ok = z.mustgetc(); !ok {
		return TokEOF, false
	}
	switch b {
	case '/':
		// </name>
		raw, local, ok := z.nsName()
		if !ok {
			z.syntax("expected element name after </")
			return TokEOF, false
		}
		z.space()
		if b, ok = z.mustgetc(); !ok {
			return TokEOF, false
		}
		if b != '>' {
			z.syntax("invalid characters between </" + string(z.bytes(local)) + " and >")
			return TokEOF, false
		}
		z.raw, z.local = raw, local
		return TokEnd, true

	case '?':
		// Processing instruction: <?target ...?>. The target has no
		// namespace restriction; only <?xml?> is inspected.
		target, ok := z.rawName()
		if !ok {
			z.syntax("expected target name after <?")
			return TokEOF, false
		}
		z.space()
		lo := z.pos
		var b0 byte
		for {
			if b, ok = z.mustgetc(); !ok {
				return TokEOF, false
			}
			if b0 == '?' && b == '>' {
				break
			}
			b0 = b
		}
		if bytes.Equal(z.bytes(target), []byte("xml")) {
			if !z.checkXMLDecl(z.buf[lo : z.pos-2]) {
				return TokEOF, false
			}
		}
		return tokSkip, true

	case '!':
		if b, ok = z.mustgetc(); !ok {
			return TokEOF, false
		}
		switch b {
		case '-': // <!-- comment
			if b, ok = z.mustgetc(); !ok {
				return TokEOF, false
			}
			if b != '-' {
				z.syntax("invalid sequence <!- not part of <!--")
				return TokEOF, false
			}
			var b0, b1 byte
			for {
				if b, ok = z.mustgetc(); !ok {
					return TokEOF, false
				}
				if b0 == '-' && b1 == '-' {
					if b != '>' {
						z.syntax(`invalid sequence "--" not allowed in comments`)
						return TokEOF, false
					}
					break
				}
				b0, b1 = b1, b
			}
			return tokSkip, true

		case '[': // <![CDATA[
			for i := 0; i < 6; i++ {
				if b, ok = z.mustgetc(); !ok {
					return TokEOF, false
				}
				if b != "CDATA["[i] {
					z.syntax("invalid <![ sequence")
					return TokEOF, false
				}
			}
			s, flags, ok := z.scanText(-1, true)
			if !ok {
				return TokEOF, false
			}
			z.text, z.tflags = s, flags
			return TokText, true
		}
		// A directive: <!DOCTYPE ...> etc. Consumed without keeping the
		// body: quoted angle brackets do not nest, embedded comments are
		// skipped whole, and (like the stdlib) the first byte after <!
		// is stored without inspection.
		inquote := byte(0)
		depth := 0
		for {
			if b, ok = z.mustgetc(); !ok {
				return TokEOF, false
			}
			if inquote == 0 && b == '>' && depth == 0 {
				break
			}
		HandleB:
			switch {
			case b == inquote:
				inquote = 0
			case inquote != 0:
				// In quotes: no special action.
			case b == '\'' || b == '"':
				inquote = b
			case b == '>':
				depth--
			case b == '<':
				// Probe for <!-- opening an embedded comment.
				for i := 0; i < 3; i++ {
					if b, ok = z.mustgetc(); !ok {
						return TokEOF, false
					}
					if b != "!--"[i] {
						depth++
						goto HandleB
					}
				}
				var b0, b1 byte
				for {
					if b, ok = z.mustgetc(); !ok {
						return TokEOF, false
					}
					if b0 == '-' && b1 == '-' && b == '>' {
						break
					}
					b0, b1 = b1, b
				}
			}
		}
		return tokSkip, true
	}

	// An open element: <name attr="value" ...> or <name/>.
	z.ungetc()
	raw, local, ok := z.nsName()
	if !ok {
		z.syntax("expected element name after <")
		return TokEOF, false
	}
	z.attrs = z.attrs[:0]
	empty := false
	for {
		z.space()
		if b, ok = z.mustgetc(); !ok {
			return TokEOF, false
		}
		if b == '/' {
			if b, ok = z.mustgetc(); !ok {
				return TokEOF, false
			}
			if b != '>' {
				z.syntax("expected /> in element")
				return TokEOF, false
			}
			empty = true
			break
		}
		if b == '>' {
			break
		}
		z.ungetc()
		_, alocal, ok := z.nsName()
		if !ok {
			z.syntax("expected attribute name in element")
			return TokEOF, false
		}
		z.space()
		if b, ok = z.mustgetc(); !ok {
			return TokEOF, false
		}
		if b != '=' {
			z.syntax("attribute name without = in element")
			return TokEOF, false
		}
		z.space()
		if b, ok = z.mustgetc(); !ok {
			return TokEOF, false
		}
		if b != '"' && b != '\'' {
			z.syntax("unquoted or missing attribute value in element")
			return TokEOF, false
		}
		val, flags, ok := z.scanText(int(b), false)
		if !ok {
			return TokEOF, false
		}
		z.attrs = append(z.attrs, attrSpan{local: alocal, value: val, flags: flags})
	}
	z.raw, z.local = raw, local
	if empty {
		z.needClose = true
		z.closeRaw, z.closeLocal = raw, local
	}
	return TokStart, true
}

// rawName scans an XML name at the cursor: ASCII name bytes and all
// multi-byte runes are absorbed, then the name is validated against the
// Appendix B tables. A name of pure ASCII name bytes — the overwhelming
// case — validates with a single start-byte check: the scanned bytes are
// exactly the ASCII subset of nameFirst ∪ nameRest, so only the
// first-byte rule can still fail. ok=false with z.err unset means "no
// name here"; callers convert that into their own context error.
func (z *Tokenizer) rawName() (span, bool) {
	lo := z.pos
	b, ok := z.mustgetc()
	if !ok {
		return span{}, false
	}
	if b < utf8.RuneSelf && !isNameByte(b) {
		z.ungetc()
		return span{}, false
	}
	ascii := b < utf8.RuneSelf
	for z.pos < len(z.buf) {
		b = z.buf[z.pos]
		if b < utf8.RuneSelf {
			if !isNameByte(b) {
				break
			}
		} else {
			ascii = false
		}
		z.pos++
	}
	if z.pos == len(z.buf) {
		// A name cannot end the document: something must close the tag.
		z.syntax("unexpected EOF")
		return span{}, false
	}
	s := span{lo, z.pos}
	if ascii {
		if !isNameStartByte(z.buf[lo]) {
			z.syntax("invalid XML name: " + string(z.bytes(s)))
			return span{}, false
		}
		return s, true
	}
	if !isName(z.bytes(s)) {
		z.syntax("invalid XML name: " + string(z.bytes(s)))
		return span{}, false
	}
	return s, true
}

// nsName scans a name and applies the namespace split: more than one
// colon rejects the name; exactly one interior colon splits prefix and
// local name; a leading or trailing colon leaves the local name whole.
func (z *Tokenizer) nsName() (raw, local span, ok bool) {
	raw, ok = z.rawName()
	if !ok {
		return raw, raw, false
	}
	b := z.bytes(raw)
	i := bytes.IndexByte(b, ':')
	if i < 0 {
		return raw, raw, true
	}
	if bytes.IndexByte(b[i+1:], ':') >= 0 {
		return raw, raw, false
	}
	if i > 0 && i < len(b)-1 {
		return raw, span{raw.lo + i + 1, raw.hi}, true
	}
	return raw, raw, true
}

// scanText scans character data (quote < 0), a quoted attribute value
// (quote holds the quote byte) or a CDATA section, validating exactly
// what the strict stdlib decoder accepts but copying nothing: the
// returned span is raw input, with flags recording whether consuming it
// requires entity expansion or \r normalisation.
func (z *Tokenizer) scanText(quote int, cdata bool) (span, textFlags, bool) {
	lo := z.pos
	var flags textFlags
	if cdata {
		flags = textCDATA
	}
	var b0, b1 byte
	trunc := 0
Input:
	for {
		// Bulk-skip runs of plain printable ASCII — no terminator, no
		// entity, no ']' or '\r' or control or multi-byte candidates. Such
		// bytes need no validation and cannot interact with the ]]> / CR
		// state machine, so only the run's last two bytes matter to it.
		if lo := z.pos; lo < len(z.buf) && plainText[z.buf[lo]] {
			p := lo + 1
			for p < len(z.buf) && plainText[z.buf[p]] {
				p++
			}
			z.pos = p
			if p-lo >= 2 {
				b0, b1 = z.buf[p-2], z.buf[p-1]
			} else {
				b0, b1 = b1, z.buf[p-1]
			}
		}
		b, ok := z.getc()
		if !ok {
			if cdata {
				z.syntax("unexpected EOF in CDATA section")
				return span{}, 0, false
			}
			break Input
		}
		// <![CDATA[ sections end with ]]>; it is an error for ]]> to
		// appear in ordinary text (quoted strings excepted).
		if b0 == ']' && b1 == ']' && b == '>' {
			if cdata {
				trunc = 3
				break Input
			}
			z.syntax("unescaped ]]> not in CDATA section")
			return span{}, 0, false
		}
		if b == '<' && !cdata {
			if quote >= 0 {
				z.syntax("unescaped < inside quoted string")
				return span{}, 0, false
			}
			z.ungetc()
			break Input
		}
		if quote >= 0 && b == byte(quote) {
			trunc = 1
			break Input
		}
		if b == '&' && !cdata {
			if !z.scanEntity() {
				return span{}, 0, false
			}
			flags |= textEntity
			// An expanded entity resets the ]]> / \r\n state, so e.g.
			// "]]&gt;" is legal.
			b0, b1 = 0, 0
			continue Input
		}
		// Validate in place: the stdlib validates the decoded buffer,
		// which for non-entity bytes is this same byte stream with \r
		// mapped to \n — both sides of that mapping are legal runes.
		if b == '\r' {
			flags |= textCR
		} else if b < 0x20 && b != '\t' && b != '\n' {
			z.syntax("illegal character code")
			return span{}, 0, false
		} else if b >= utf8.RuneSelf {
			z.ungetc()
			r, size := utf8.DecodeRune(z.buf[z.pos:])
			if r == utf8.RuneError && size == 1 {
				z.syntax("invalid UTF-8")
				return span{}, 0, false
			}
			if !isInCharacterRange(r) {
				z.syntax("illegal character code")
				return span{}, 0, false
			}
			z.pos += size
			// b0/b1 track "]]" and "\r"; no byte of a multi-byte rune
			// can be ']' or '\r', so folding the final byte in is safe.
			b0, b1 = b1, z.buf[z.pos-1]
			continue Input
		}
		b0, b1 = b1, b
	}
	return span{lo, z.pos - trunc}, flags, true
}

// scanEntity validates one entity reference (the '&' has been consumed):
// numeric references must parse to a value no larger than
// unicode.MaxRune and land in the XML character range — surrogates
// expand to U+FFFD, exactly like string(rune(n)) — and named references
// must be one of the five predefined entities.
func (z *Tokenizer) scanEntity() bool {
	b, ok := z.mustgetc()
	if !ok {
		return false
	}
	if b == '#' {
		base := uint64(10)
		if b, ok = z.mustgetc(); !ok {
			return false
		}
		if b == 'x' {
			base = 16
			if b, ok = z.mustgetc(); !ok {
				return false
			}
		}
		var n uint64
		digits := 0
		for '0' <= b && b <= '9' ||
			base == 16 && 'a' <= b && b <= 'f' ||
			base == 16 && 'A' <= b && b <= 'F' {
			if n <= unicode.MaxRune {
				n = n*base + uint64(hexVal(b))
			}
			digits++
			if b, ok = z.mustgetc(); !ok {
				return false
			}
		}
		if b != ';' {
			z.syntax("invalid character entity (no semicolon)")
			return false
		}
		if digits == 0 || n > unicode.MaxRune {
			z.syntax("invalid character entity")
			return false
		}
		r := rune(n)
		if r >= 0xD800 && r <= 0xDFFF {
			return true // expands to U+FFFD
		}
		if !isInCharacterRange(r) {
			z.syntax("illegal character code")
			return false
		}
		return true
	}
	// Named entity: absorb name bytes (no validity requirement until the
	// semicolon is seen), then require one of the predefined five.
	z.ungetc()
	lo := z.pos
	if b, ok = z.mustgetc(); !ok {
		return false
	}
	if b < utf8.RuneSelf && !isNameByte(b) {
		z.ungetc()
	} else {
		for {
			if b, ok = z.mustgetc(); !ok {
				return false
			}
			if b < utf8.RuneSelf && !isNameByte(b) {
				z.ungetc()
				break
			}
		}
	}
	hi := z.pos
	if b, ok = z.mustgetc(); !ok {
		return false
	}
	if b != ';' {
		z.syntax("invalid character entity (no semicolon)")
		return false
	}
	name := z.buf[lo:hi]
	if !isName(name) || !isPredefinedEntity(name) {
		z.syntax("invalid character entity &" + string(name) + ";")
		return false
	}
	return true
}

func hexVal(b byte) int {
	switch {
	case '0' <= b && b <= '9':
		return int(b - '0')
	case 'a' <= b && b <= 'f':
		return int(b-'a') + 10
	default:
		return int(b-'A') + 10
	}
}

func isPredefinedEntity(name []byte) bool {
	switch string(name) {
	case "lt", "gt", "amp", "apos", "quot":
		return true
	}
	return false
}

// appendDecoded expands a validated raw text span into its decoded form:
// entities expanded, \r and \r\n normalised to \n. The span has already
// been accepted by scanText, so every entity is well formed.
func appendDecoded(dst, src []byte, flags textFlags) []byte {
	if flags&(textEntity|textCR) == 0 {
		return append(dst, src...)
	}
	for i := 0; i < len(src); i++ {
		b := src[i]
		switch {
		case b == '&' && flags&textCDATA == 0:
			semi := i + 1
			for src[semi] != ';' {
				semi++
			}
			dst = appendEntity(dst, src[i+1:semi])
			i = semi
		case b == '\r':
			dst = append(dst, '\n')
			if i+1 < len(src) && src[i+1] == '\n' {
				i++
			}
		default:
			dst = append(dst, b)
		}
	}
	return dst
}

// appendEntity appends the expansion of one entity body (the bytes
// between '&' and ';').
func appendEntity(dst, ent []byte) []byte {
	if ent[0] == '#' {
		digits := ent[1:]
		base := rune(10)
		if digits[0] == 'x' {
			base = 16
			digits = digits[1:]
		}
		var n rune
		for _, d := range digits {
			if n <= unicode.MaxRune {
				n = n*base + rune(hexVal(byte(d)))
			}
		}
		// utf8.AppendRune encodes surrogates as U+FFFD, matching
		// string(rune(n)).
		return utf8.AppendRune(dst, n)
	}
	switch string(ent) {
	case "lt":
		return append(dst, '<')
	case "gt":
		return append(dst, '>')
	case "amp":
		return append(dst, '&')
	case "apos":
		return append(dst, '\'')
	default: // "quot"
		return append(dst, '"')
	}
}

// isInCharacterRange reports whether r is in the XML Char production of
// the spec: https://www.xml.com/axml/testaxml.htm Section 2.2 Char.
func isInCharacterRange(r rune) bool {
	return r == 0x09 ||
		r == 0x0A ||
		r == 0x0D ||
		r >= 0x20 && r <= 0xD7FF ||
		r >= 0xE000 && r <= 0xFFFD ||
		r >= 0x10000 && r <= 0x10FFFF
}

// checkXMLDecl enforces the <?xml ...?> constraints the stdlib applies
// when no CharsetReader is installed: only version 1.0 and (a case fold
// of) utf-8 are supported.
func (z *Tokenizer) checkXMLDecl(content []byte) bool {
	if ver := procInstValue("version", content); len(ver) > 0 && !bytes.Equal(ver, []byte("1.0")) {
		z.syntax("unsupported version " + string(ver) + "; only version 1.0 is supported")
		return false
	}
	if enc := procInstValue("encoding", content); len(enc) > 0 && !bytes.EqualFold(enc, []byte("utf-8")) {
		z.syntax("encoding " + string(enc) + " is not supported")
		return false
	}
	return true
}

// procInstValue extracts the quoted `param="..."` (or '...') value from
// a processing-instruction body, mirroring the stdlib's procInst.
func procInstValue(param string, s []byte) []byte {
	pat := []byte(param + "=")
	lenp := len(pat)
	i := 0
	var sep byte
	for i < len(s) {
		sub := s[i:]
		k := bytes.Index(sub, pat)
		if k < 0 || lenp+k >= len(sub) {
			return nil
		}
		i += lenp + k + 1
		if c := sub[lenp+k]; c == '\'' || c == '"' {
			sep = c
			break
		}
	}
	if sep == 0 {
		return nil
	}
	j := bytes.IndexByte(s[i:], sep)
	if j < 0 {
		return nil
	}
	return s[i : i+j]
}
