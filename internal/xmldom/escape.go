package xmldom

import "unicode/utf8"

var (
	escQuot = []byte("&#34;")
	escApos = []byte("&#39;")
	escAmp  = []byte("&amp;")
	escLT   = []byte("&lt;")
	escGT   = []byte("&gt;")
	escTab  = []byte("&#x9;")
	escNL   = []byte("&#xA;")
	escCR   = []byte("&#xD;")
	escFFFD = []byte("�")
)

// escPlain marks ASCII bytes that pass through AppendEscaped verbatim:
// printable ASCII minus the five characters with escape sequences. Tab,
// newline, and CR are excluded — they escape to character references.
var escPlain [256]bool

func init() {
	for c := 0x20; c <= 0x7E; c++ {
		escPlain[c] = true
	}
	for _, c := range []byte{'"', '\'', '&', '<', '>'} {
		escPlain[c] = false
	}
}

// AppendEscaped appends s to dst with XML escaping, byte-identical to
// the escaping WriteXML applies to text and attribute values. Generators
// that render documents straight to bytes (webgen's byte-first fetch
// path) use it so their output round-trips to the exact canonical
// serialisation — same signature, same tree — without importing
// encoding/xml (which the rawxml vet rule forbids outside this package).
func AppendEscaped(dst []byte, s string) []byte {
	last := 0
	for i := 0; i < len(s); {
		if escPlain[s[i]] {
			i++
			continue
		}
		r, width := utf8.DecodeRuneInString(s[i:])
		i += width
		var esc []byte
		switch r {
		case '"':
			esc = escQuot
		case '\'':
			esc = escApos
		case '&':
			esc = escAmp
		case '<':
			esc = escLT
		case '>':
			esc = escGT
		case '\t':
			esc = escTab
		case '\n':
			esc = escNL
		case '\r':
			esc = escCR
		default:
			if !isInCharacterRange(r) || (r == 0xFFFD && width == 1) {
				esc = escFFFD
				break
			}
			continue
		}
		dst = append(dst, s[last:i-width]...)
		dst = append(dst, esc...)
		last = i
	}
	return append(dst, s[last:]...)
}
