// Package xmldom provides the small DOM used throughout the system: the
// XML alerter walks documents in postorder (Section 6.3), the diff layer
// labels elements with persistent XIDs (Section 5.2), and the query
// processor evaluates path expressions over trees. It is built on the
// encoding/xml tokenizer from the standard library.
package xmldom

import (
	"fmt"
	"strings"
	"sync"
)

// NodeType distinguishes element nodes from data (text) nodes, the two DOM
// node kinds the paper relies on.
type NodeType int

const (
	// ElementNode is a tagged node with attributes and children.
	ElementNode NodeType = iota
	// TextNode is a data node carrying character content.
	TextNode
)

// XID is the persistent identifier attached to nodes. XIDs are the
// foundation of the XyDelta naming scheme: an element keeps its XID across
// versions, so deltas can reference elements compactly and a new version
// can be rebuilt from the old version plus the delta.
type XID uint64

// Attr is one attribute of an element node.
type Attr struct {
	Name  string
	Value string
}

// Node is a DOM node. Fields are exported because the alerters, the diff
// and the query processor all traverse the tree directly.
type Node struct {
	Type     NodeType
	Tag      string // element nodes only
	Text     string // text nodes only
	Attrs    []Attr
	Children []*Node
	Parent   *Node
	XID      XID
	// ord is the node's preorder index in the tree it was last hashed in;
	// it addresses the node's slot in the owning Document's HashVector.
	// Maintained by Document.Hashes, meaningless outside a valid vector.
	ord int32
}

// Document is a parsed XML document: a single root element plus the XID
// counter used to label nodes of future versions.
type Document struct {
	Root    *Node
	nextXID XID
	// hashes caches the structural subtree-hash vector; see Hashes.
	hashes *HashVector
}

// NewDocument wraps root into a document and labels every unlabelled node.
func NewDocument(root *Node) *Document {
	d := &Document{Root: root, nextXID: 1}
	d.Relabel()
	return d
}

// NextXID reserves and returns a fresh XID.
func (d *Document) NextXID() XID {
	x := d.nextXID
	d.nextXID++
	return x
}

// SetNextXID moves the XID counter forward; it never moves it back.
func (d *Document) SetNextXID(x XID) {
	if x > d.nextXID {
		d.nextXID = x
	}
}

// Relabel assigns fresh XIDs to every node with XID zero, fixing parent
// links along the way. Existing XIDs are preserved so version chains keep
// stable identifiers.
func (d *Document) Relabel() {
	if d.Root == nil {
		return
	}
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.XID == 0 {
			n.XID = d.nextXID
			d.nextXID++
		} else if n.XID >= d.nextXID {
			d.nextXID = n.XID + 1
		}
		for _, c := range n.Children {
			c.Parent = n
			walk(c)
		}
	}
	walk(d.Root)
}

// Element returns a new element node.
func Element(tag string, children ...*Node) *Node {
	n := &Node{Type: ElementNode, Tag: tag, Children: children}
	for _, c := range children {
		c.Parent = n
	}
	return n
}

// Text returns a new data node.
func Text(s string) *Node {
	return &Node{Type: TextNode, Text: s}
}

// WithAttr adds an attribute to an element node and returns it, enabling
// fluent construction in tests and generators.
func (n *Node) WithAttr(name, value string) *Node {
	n.Attrs = append(n.Attrs, Attr{Name: name, Value: value})
	return n
}

// Attr returns the value of the named attribute and whether it is present.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// AppendChild adds c as the last child of n.
func (n *Node) AppendChild(c *Node) {
	c.Parent = n
	n.Children = append(n.Children, c)
}

// InsertChild inserts c at position i among n's children.
func (n *Node) InsertChild(i int, c *Node) {
	if i < 0 {
		i = 0
	}
	if i > len(n.Children) {
		i = len(n.Children)
	}
	c.Parent = n
	n.Children = append(n.Children, nil)
	copy(n.Children[i+1:], n.Children[i:])
	n.Children[i] = c
}

// RemoveChild removes the child at position i and returns it.
func (n *Node) RemoveChild(i int) *Node {
	c := n.Children[i]
	copy(n.Children[i:], n.Children[i+1:])
	n.Children = n.Children[:len(n.Children)-1]
	c.Parent = nil
	return c
}

// ChildIndex returns the position of c among n's children, or -1.
func (n *Node) ChildIndex(c *Node) int {
	for i, x := range n.Children {
		if x == c {
			return i
		}
	}
	return -1
}

// Level returns the depth of the node: 0 for the root.
func (n *Node) Level() int {
	l := 0
	for p := n.Parent; p != nil; p = p.Parent {
		l++
	}
	return l
}

// Clone returns a deep copy of the subtree rooted at n. XIDs are copied,
// so the clone refers to the same persistent identities.
func (n *Node) Clone() *Node {
	c := &Node{Type: n.Type, Tag: n.Tag, Text: n.Text, XID: n.XID}
	if len(n.Attrs) > 0 {
		c.Attrs = append([]Attr(nil), n.Attrs...)
	}
	for _, ch := range n.Children {
		cc := ch.Clone()
		cc.Parent = c
		c.Children = append(c.Children, cc)
	}
	return c
}

// Clone deep-copies the document, preserving XIDs and the XID counter.
func (d *Document) Clone() *Document {
	if d == nil {
		return nil
	}
	c := &Document{nextXID: d.nextXID}
	if d.Root != nil {
		c.Root = d.Root.Clone()
	}
	return c
}

// TextContent concatenates the text of all data nodes in the subtree, in
// document order, separated by single spaces. The walk is an explicit
// stack, not recursion, so arbitrarily deep documents cannot overflow the
// goroutine stack.
func (n *Node) TextContent() string {
	var b strings.Builder
	stp := nodeStackPool.Get().(*[]*Node)
	st := append((*stp)[:0], n)
	for len(st) > 0 {
		x := st[len(st)-1]
		st = st[:len(st)-1]
		if x.Type == TextNode {
			if b.Len() > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(x.Text)
			continue
		}
		// Push children in reverse so they pop in document order.
		for i := len(x.Children) - 1; i >= 0; i-- {
			st = append(st, x.Children[i])
		}
	}
	*stp = st[:0]
	nodeStackPool.Put(stp)
	return b.String()
}

// PostOrder calls visit for every node of the subtree in postorder — the
// traversal the XML alerter's word-detection algorithm is built on. If
// visit returns false the traversal stops.
func (n *Node) PostOrder(visit func(*Node) bool) bool {
	for _, c := range n.Children {
		if !c.PostOrder(visit) {
			return false
		}
	}
	return visit(n)
}

// PreOrder calls visit for every node of the subtree in preorder (document
// order). If visit returns false the traversal stops.
func (n *Node) PreOrder(visit func(*Node) bool) bool {
	if !visit(n) {
		return false
	}
	for _, c := range n.Children {
		if !c.PreOrder(visit) {
			return false
		}
	}
	return true
}

// FindByXID returns the node with the given XID in the subtree, or nil.
func (n *Node) FindByXID(x XID) *Node {
	var found *Node
	n.PreOrder(func(c *Node) bool {
		if c.XID == x {
			found = c
			return false
		}
		return true
	})
	return found
}

// Size returns the number of nodes in the subtree. Iterative for the same
// reason as TextContent: depth must not bound the documents we can handle.
func (n *Node) Size() int {
	count := 0
	stp := nodeStackPool.Get().(*[]*Node)
	st := append((*stp)[:0], n)
	for len(st) > 0 {
		x := st[len(st)-1]
		st = st[:len(st)-1]
		count++
		for _, c := range x.Children {
			st = append(st, c)
		}
	}
	*stp = st[:0]
	nodeStackPool.Put(stp)
	return count
}

// Depth returns the height of the subtree: 1 for a leaf.
func (n *Node) Depth() int {
	max := 0
	for _, c := range n.Children {
		if d := c.Depth(); d > max {
			max = d
		}
	}
	return max + 1
}

// Elements returns all element nodes with the given tag in the subtree, in
// document order.
func (n *Node) Elements(tag string) []*Node {
	var out []*Node
	n.PreOrder(func(c *Node) bool {
		if c.Type == ElementNode && c.Tag == tag {
			out = append(out, c)
		}
		return true
	})
	return out
}

// fnv64 constants for the structural hash below (FNV-1a).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// HashFold folds s into an FNV-1a running hash. Exported so callers
// composing a node hash with other key parts (a subscription name, a
// label) can stay on one allocation-free hash chain.
func HashFold(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	// Separate fields so ("ab","c") and ("a","bc") fold differently.
	h ^= 0xff
	h *= fnvPrime64
	return h
}

// HashSeed returns the canonical seed for a HashFold / Hash64 chain.
func HashSeed() uint64 { return fnvOffset64 }

// HashString returns the plain FNV-1a hash of s — bit-identical to
// hash/fnv's New64a over the same bytes, with no hasher allocation and no
// field separator. Use it where an existing value (a page seed, a jitter
// key) was defined as the raw FNV of a string and must stay stable;
// use HashFold when composing multi-field keys.
func HashString(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// hash64Frame is one element of the explicit Hash64 / Hashes traversal
// stack: the node, the next child to visit, and the running hash at the
// point the node was opened (Hashes) or carried through it (Hash64).
type hash64Frame struct {
	n     *Node
	child int
	h     uint64
}

// hashFramePool recycles the explicit stacks shared by Hash64 and the
// Document.Hashes post-order fold.
var hashFramePool = sync.Pool{New: func() any {
	s := make([]hash64Frame, 0, 64)
	return &s
}}

// nodeStackPool recycles the plain node stacks of TextContent and Size.
var nodeStackPool = sync.Pool{New: func() any {
	s := make([]*Node, 0, 64)
	return &s
}}

// Hash64 folds a structural fingerprint of the subtree rooted at n into
// the running FNV-1a hash h (seed with HashSeed): node kinds, tags, text,
// attribute name/value pairs and child structure all contribute. Two
// subtrees that serialise to the same XML fold identically, without
// materialising the serialisation — this is the notification dedup key of
// the hot path. XIDs and parent links are ignored, like in XML().
//
// The traversal is an explicit pooled stack (shared with Document.Hashes),
// so a pathologically deep document cannot overflow the goroutine stack.
// The fold order is identical to the historical recursive version, so
// values are stable across the change.
func (n *Node) Hash64(h uint64) uint64 {
	if n.Type == TextNode {
		h ^= 't'
		h *= fnvPrime64
		return HashFold(h, n.Text)
	}
	stp := hashFramePool.Get().(*[]hash64Frame)
	st := (*stp)[:0]
	h = hash64Open(h, n)
	st = append(st, hash64Frame{n: n})
	for len(st) > 0 {
		f := &st[len(st)-1]
		if f.child < len(f.n.Children) {
			c := f.n.Children[f.child]
			f.child++
			if c.Type == TextNode {
				h ^= 't'
				h *= fnvPrime64
				h = HashFold(h, c.Text)
				continue
			}
			h = hash64Open(h, c)
			st = append(st, hash64Frame{n: c})
			continue
		}
		h ^= '<'
		h *= fnvPrime64
		st = st[:len(st)-1]
	}
	*stp = st[:0]
	hashFramePool.Put(stp)
	return h
}

// hash64Open folds the opening part of an element — kind marker, tag,
// attributes, the '>' separator — into h.
func hash64Open(h uint64, n *Node) uint64 {
	h ^= 'e'
	h *= fnvPrime64
	h = HashFold(h, n.Tag)
	for _, a := range n.Attrs {
		h = HashFold(h, a.Name)
		h = HashFold(h, a.Value)
	}
	h ^= '>'
	h *= fnvPrime64
	return h
}

func (n *Node) String() string {
	if n.Type == TextNode {
		return fmt.Sprintf("#text(%q)", n.Text)
	}
	return fmt.Sprintf("<%s xid=%d children=%d>", n.Tag, n.XID, len(n.Children))
}
