package trigger

import (
	"strings"
	"testing"
	"time"

	"xymon/internal/sublang"
	"xymon/internal/xmldom"
	"xymon/internal/xyquery"
)

type clock struct{ t time.Time }

func (c *clock) now() time.Time          { return c.t }
func (c *clock) advance(d time.Duration) { c.t = c.t.Add(d) }

func setup(t *testing.T, queryText string, freq sublang.Frequency, delta bool) (*Engine, *clock, *[]Result, func(string)) {
	t.Helper()
	c := &clock{t: time.Date(2001, 5, 21, 0, 0, 0, 0, time.UTC)}
	museumXML := `<culture><museum><address>Amsterdam</address>
		<painting><title>Night Watch</title></painting></museum></culture>`
	forest := []*xmldom.Node{xmldom.MustParse(museumXML).Root}
	setForest := func(xml string) { forest = []*xmldom.Node{xmldom.MustParse(xml).Root} }
	var results []Result
	e := New(
		func() []*xmldom.Node { return forest },
		func(r Result) { results = append(results, r) },
		WithClock(c.now),
	)
	var q *xyquery.Query
	if queryText != "" {
		var err error
		q, err = xyquery.Parse(queryText)
		if err != nil {
			t.Fatalf("parse query: %v", err)
		}
	}
	e.Register("Sub", &sublang.ContinuousQuery{
		Name:  "AmsterdamPaintings",
		Delta: delta,
		Query: q,
		When:  sublang.TriggerSpec{Freq: freq},
	})
	return e, c, &results, setForest
}

const paintingsQuery = `select p/title from culture/museum m, m/painting p where m/address contains "Amsterdam"`

func TestFrequencyEvaluation(t *testing.T) {
	e, c, results, _ := setup(t, paintingsQuery, sublang.BiWeekly, false)
	e.Tick() // first tick evaluates immediately
	if len(*results) != 1 {
		t.Fatalf("results = %d, want 1", len(*results))
	}
	r := (*results)[0]
	if r.Query != "AmsterdamPaintings" || r.Subscription != "Sub" {
		t.Errorf("result = %+v", r)
	}
	if !strings.Contains(r.Element.XML(), "Night Watch") {
		t.Errorf("result element = %s", r.Element.XML())
	}
	e.Tick() // period not elapsed
	if len(*results) != 1 {
		t.Fatalf("early re-evaluation: %d", len(*results))
	}
	c.advance(sublang.BiWeekly.Duration() + time.Hour)
	e.Tick()
	if len(*results) != 2 {
		t.Fatalf("results = %d, want 2", len(*results))
	}
	if e.Evaluations() != 2 {
		t.Errorf("Evaluations = %d", e.Evaluations())
	}
}

func TestDeltaQueryReportsOnlyChanges(t *testing.T) {
	e, c, results, setForest := setup(t, paintingsQuery, sublang.Daily, true)
	e.Tick()
	if len(*results) != 1 {
		t.Fatalf("first evaluation missing")
	}
	// First run returns the full answer.
	if got := (*results)[0].Element.XML(); !strings.Contains(got, "Night Watch") || strings.Contains(got, "-delta") {
		t.Errorf("first delta result = %s", got)
	}
	// Unchanged: no notification at all.
	c.advance(25 * time.Hour)
	e.Tick()
	if len(*results) != 1 {
		t.Fatalf("unchanged delta produced a notification: %v", (*results)[1].Element.XML())
	}
	// Changed: a -delta element with the insertion.
	setForest(`<culture><museum><address>Amsterdam</address>
		<painting><title>Night Watch</title></painting>
		<painting><title>Milkmaid</title></painting></museum></culture>`)
	c.advance(25 * time.Hour)
	e.Tick()
	if len(*results) != 2 {
		t.Fatalf("changed delta missing: %d", len(*results))
	}
	got := (*results)[1].Element.XML()
	if !strings.HasPrefix(got, "<AmsterdamPaintings-delta>") || !strings.Contains(got, "<inserted") ||
		!strings.Contains(got, "Milkmaid") || strings.Contains(got, "Night Watch") {
		t.Errorf("delta = %s", got)
	}
}

func TestNotificationTrigger(t *testing.T) {
	c := &clock{t: time.Date(2001, 5, 21, 0, 0, 0, 0, time.UTC)}
	var results []Result
	e := New(
		func() []*xmldom.Node { return nil },
		func(r Result) { results = append(results, r) },
		WithClock(c.now),
	)
	e.Register("XylemeCompetitors", &sublang.ContinuousQuery{
		Name: "MyCompetitors",
		When: sublang.TriggerSpec{NotifSub: "XylemeCompetitors", NotifQuery: "ChangeInMyProducts"},
	})
	e.Tick()
	if len(results) != 0 {
		t.Fatal("notification-triggered query must not run on Tick")
	}
	e.OnNotification("XylemeCompetitors", "SomethingElse")
	e.OnNotification("OtherSub", "ChangeInMyProducts")
	if len(results) != 0 {
		t.Fatal("wrong notification must not trigger")
	}
	e.OnNotification("XylemeCompetitors", "ChangeInMyProducts")
	if len(results) != 1 || results[0].Query != "MyCompetitors" {
		t.Fatalf("results = %+v", results)
	}
	// A query with no body still produces its (empty) element.
	if results[0].Element.Tag != "MyCompetitors" {
		t.Errorf("element = %s", results[0].Element.XML())
	}
}

func TestUnregister(t *testing.T) {
	e, c, results, _ := setup(t, paintingsQuery, sublang.Daily, false)
	e.Tick()
	if e.Len() != 1 {
		t.Fatalf("Len = %d", e.Len())
	}
	e.Unregister("Sub")
	if e.Len() != 0 {
		t.Fatalf("Len after Unregister = %d", e.Len())
	}
	c.advance(48 * time.Hour)
	e.Tick()
	if len(*results) != 1 {
		t.Errorf("unregistered query still ran")
	}
}

func TestMultipleQueriesIndependentSchedules(t *testing.T) {
	c := &clock{t: time.Date(2001, 5, 21, 0, 0, 0, 0, time.UTC)}
	var results []Result
	forest := []*xmldom.Node{xmldom.MustParse(`<d><x>1</x></d>`).Root}
	e := New(func() []*xmldom.Node { return forest },
		func(r Result) { results = append(results, r) }, WithClock(c.now))
	q, _ := xyquery.Parse(`select x from d/x x`)
	e.Register("S", &sublang.ContinuousQuery{Name: "Daily", Query: q, When: sublang.TriggerSpec{Freq: sublang.Daily}})
	e.Register("S", &sublang.ContinuousQuery{Name: "Weekly", Query: q, When: sublang.TriggerSpec{Freq: sublang.Weekly}})
	e.Tick() // both run on first tick
	if len(results) != 2 {
		t.Fatalf("first tick ran %d queries", len(results))
	}
	for day := 0; day < 7; day++ {
		c.advance(24*time.Hour + time.Minute)
		e.Tick()
	}
	daily, weekly := 0, 0
	for _, r := range results {
		switch r.Query {
		case "Daily":
			daily++
		case "Weekly":
			weekly++
		}
	}
	if daily != 8 || weekly != 2 {
		t.Errorf("daily=%d weekly=%d, want 8 and 2", daily, weekly)
	}
}

func TestQueryEvaluationErrorIsSilent(t *testing.T) {
	c := &clock{t: time.Date(2001, 5, 21, 0, 0, 0, 0, time.UTC)}
	var results []Result
	e := New(func() []*xmldom.Node { return nil },
		func(r Result) { results = append(results, r) }, WithClock(c.now))
	// Invalid query (double-bound variable) fails validation at Eval time;
	// the engine must skip it rather than emit or panic.
	q, err := xyquery.Parse(`select a from x/y a, x/z a`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	e.Register("S", &sublang.ContinuousQuery{Name: "Bad", Query: q, When: sublang.TriggerSpec{Freq: sublang.Daily}})
	e.Tick()
	if len(results) != 0 {
		t.Errorf("bad query produced results: %v", results)
	}
}
