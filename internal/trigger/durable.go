package trigger

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"xymon/internal/wal"
)

// The engine's durable state is one mark per continuous query: when it
// last evaluated. Without it a restart resets every schedule — each
// periodic query re-fires immediately (Register treats it as never run)
// — while with a stale clock it could equally skip a due one. Marks are
// journaled as they happen and applied at Register time, so recovery
// must run before the subscription base is re-registered.
//
// The previous result of a delta query is deliberately not persisted:
// after a restart the first evaluation emits the full result once and
// deltas resume from there — a duplicate, never a silent gap, matching
// the at-least-once discipline of the rest of the pipeline.

// markRecord is one journal entry: query (sub, name) evaluated at Last.
type markRecord struct {
	Sub   string    `json:"sub"`
	Query string    `json:"query"`
	Last  time.Time `json:"last"`
}

type markKey struct{ sub, query string }

// WithWAL journals evaluation marks into l. Open the log, call Recover
// before re-registering subscriptions, and Close it when the engine
// stops.
func WithWAL(l *wal.Log) Option {
	return func(e *Engine) {
		e.wal = l
		// Track marks from the start, so a Checkpoint before (or
		// without) Recover still snapshots every journaled evaluation.
		if e.marks == nil {
			e.marks = make(map[markKey]time.Time)
		}
	}
}

// noteEvaluatedLocked journals one evaluation mark. Caller holds e.mu.
func (e *Engine) noteEvaluatedLocked(r *registered, now time.Time) {
	if e.marks != nil {
		e.marks[markKey{r.sub, r.cq.Name}] = now
	}
	if e.wal == nil {
		return
	}
	enc, err := json.Marshal(markRecord{Sub: r.sub, Query: r.cq.Name, Last: now})
	if err != nil {
		return
	}
	// Journalled under e.mu so marks land in evaluation order; the WAL
	// has its own innermost lock and never calls back.
	//xyvet:ignore lockcheck
	_ = e.wal.Append(enc)
}

// Recover loads the evaluation marks from the WAL. Call it before
// Register runs for the recovered subscription base: each Register
// consults the marks, so a recovered periodic query resumes its schedule
// instead of re-firing immediately, and one whose period elapsed during
// the outage fires on the next Tick.
func (e *Engine) Recover() error {
	if e.wal == nil {
		return nil
	}
	marks := make(map[markKey]time.Time)
	apply := func(payload []byte) error {
		var rec markRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return fmt.Errorf("trigger: corrupt mark: %w", err)
		}
		// Later records win: the journal is in evaluation order.
		marks[markKey{rec.Sub, rec.Query}] = rec.Last
		return nil
	}
	err := e.wal.Recover(
		func(snap []byte) error {
			var recs []markRecord
			if err := json.Unmarshal(snap, &recs); err != nil {
				return fmt.Errorf("trigger: corrupt checkpoint: %w", err)
			}
			for _, rec := range recs {
				marks[markKey{rec.Sub, rec.Query}] = rec.Last
			}
			return nil
		},
		apply,
	)
	if err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.marks = marks
	// Already-registered queries pick their mark up retroactively, so
	// Recover-after-Register still converges on the same state.
	for _, r := range e.queries {
		if last, ok := marks[markKey{r.sub, r.cq.Name}]; ok && !r.hasRun {
			r.lastRun = last
			r.hasRun = true
		}
	}
	return nil
}

// Checkpoint snapshots the current marks and compacts the journal they
// cover.
func (e *Engine) Checkpoint() error {
	if e.wal == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	recs := make([]markRecord, 0, len(e.marks))
	for k, last := range e.marks {
		recs = append(recs, markRecord{Sub: k.sub, Query: k.query, Last: last})
	}
	// e.mu is held across the checkpoint so no evaluation can journal a
	// mark between the snapshot and the boundary.
	//xyvet:ignore lockcheck
	return e.wal.Checkpoint(func(w io.Writer) error {
		return json.NewEncoder(w).Encode(recs)
	})
}
