// Package trigger implements the Trigger Engine of the architecture
// (Section 3): it evaluates continuous queries either on a schedule (e.g.
// biweekly) or when a particular notification is detected, and feeds the
// resulting notifications back to the Reporter. Queries registered with
// the `delta` keyword report only the changes of their result between
// evaluations, using the XyDelta mechanism (Section 5.2).
package trigger

import (
	"sync"
	"time"

	"xymon/internal/sublang"
	"xymon/internal/wal"
	"xymon/internal/xmldom"
	"xymon/internal/xydiff"
)

// Source supplies the forest a continuous query runs over — typically a
// semantic-domain view of the warehouse.
type Source func() []*xmldom.Node

// Result is a continuous-query notification: the query code plus its
// (possibly delta) result element.
type Result struct {
	Subscription string
	Query        string
	Element      *xmldom.Node
	Time         time.Time
}

// Sink receives continuous-query results.
type Sink func(Result)

type registered struct {
	sub     string
	cq      *sublang.ContinuousQuery
	lastRun time.Time
	hasRun  bool
	// lastResult is the previous evaluation, retained for delta queries.
	lastResult *xmldom.Document
}

// Engine owns the continuous queries. Safe for concurrent use.
type Engine struct {
	mu      sync.Mutex
	queries []*registered
	source  Source
	sink    Sink
	clock   func() time.Time

	// wal journals per-query evaluation marks; marks carries them from
	// Recover to Register (see durable.go).
	wal   *wal.Log
	marks map[markKey]time.Time

	evaluations uint64
}

// Option configures an Engine.
type Option func(*Engine)

// WithClock substitutes the time source.
func WithClock(clock func() time.Time) Option {
	return func(e *Engine) { e.clock = clock }
}

// New returns an engine evaluating queries over source and sending results
// to sink.
func New(source Source, sink Sink, opts ...Option) *Engine {
	e := &Engine{source: source, sink: sink, clock: time.Now}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Register adds a continuous query owned by subscription sub. A
// recovered evaluation mark (see Recover) restores the query's schedule:
// it resumes from its persisted last run instead of starting fresh.
func (e *Engine) Register(sub string, cq *sublang.ContinuousQuery) {
	now := e.clock()
	e.mu.Lock()
	defer e.mu.Unlock()
	r := &registered{sub: sub, cq: cq, lastRun: now}
	if last, ok := e.marks[markKey{sub, cq.Name}]; ok {
		r.lastRun = last
		r.hasRun = true
	}
	e.queries = append(e.queries, r)
}

// Unregister removes every continuous query of a subscription.
func (e *Engine) Unregister(sub string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	keep := e.queries[:0]
	for _, r := range e.queries {
		if r.sub != sub {
			keep = append(keep, r)
		} else if e.marks != nil {
			// Drop the mark: a later re-registration under the same name
			// must not inherit a dead subscription's schedule.
			delete(e.marks, markKey{r.sub, r.cq.Name})
		}
	}
	e.queries = keep
}

// Tick evaluates every frequency-scheduled query whose period has elapsed.
// Call it regularly; the paper's engine owns a timer.
func (e *Engine) Tick() {
	now := e.clock()
	e.mu.Lock()
	var due []*registered
	for _, r := range e.queries {
		if r.cq.When.Freq == 0 {
			continue
		}
		if !r.hasRun || now.Sub(r.lastRun) >= r.cq.When.Freq.Duration() {
			due = append(due, r)
		}
	}
	e.mu.Unlock()
	for _, r := range due {
		e.evaluate(r, now)
	}
}

// OnNotification runs the queries triggered by the given notification, as
// in `when XylemeCompetitors.ChangeInMyProducts`.
func (e *Engine) OnNotification(sub, label string) {
	now := e.clock()
	e.mu.Lock()
	var due []*registered
	for _, r := range e.queries {
		if r.cq.When.NotifQuery == label && r.cq.When.NotifSub == sub {
			due = append(due, r)
		}
	}
	e.mu.Unlock()
	for _, r := range due {
		e.evaluate(r, now)
	}
}

// evaluate runs one query and emits its (delta) result. The sink is
// immutable after construction and is invoked with no lock held, so a
// sink may call back into the engine (Register, Tick) without
// deadlocking.
func (e *Engine) evaluate(r *registered, now time.Time) {
	var result *xmldom.Node
	if r.cq.Query != nil {
		res, err := r.cq.Query.EvalElement(r.cq.Name, e.source())
		if err != nil {
			return
		}
		result = res
	} else {
		result = xmldom.Element(r.cq.Name)
	}

	e.mu.Lock()
	r.lastRun = now
	e.noteEvaluatedLocked(r, now)
	e.evaluations++
	out := result
	if r.cq.Delta {
		newDoc := xmldom.NewDocument(result.Clone())
		if r.hasRun && r.lastResult != nil {
			delta, err := xydiff.Diff(r.lastResult, newDoc)
			if err == nil {
				if delta.Empty() {
					// No change: delta queries stay silent.
					r.hasRun = true
					r.lastResult = newDoc
					e.mu.Unlock()
					return
				}
				out = delta.RenderXML(r.cq.Name)
			}
		}
		r.lastResult = newDoc
	}
	r.hasRun = true
	e.mu.Unlock()

	if e.sink != nil {
		e.sink(Result{Subscription: r.sub, Query: r.cq.Name, Element: out, Time: now})
	}
}

// Evaluations returns the number of query evaluations performed.
func (e *Engine) Evaluations() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.evaluations
}

// Len returns the number of registered continuous queries.
func (e *Engine) Len() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.queries)
}
