package trigger

import (
	"testing"
	"time"

	"xymon/internal/sublang"
	"xymon/internal/wal"
	"xymon/internal/xmldom"
)

// durableEngine builds a WAL-backed engine on a virtual clock.
func durableEngine(t *testing.T, dir string, c *clock, results *[]Result) *Engine {
	t.Helper()
	l, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	return New(
		func() []*xmldom.Node { return nil },
		func(r Result) { *results = append(*results, r) },
		WithClock(c.now), WithWAL(l),
	)
}

func weeklyCQ(name string) *sublang.ContinuousQuery {
	return &sublang.ContinuousQuery{Name: name, When: sublang.TriggerSpec{Freq: sublang.Weekly}}
}

// TestMarksPreventRestartRefire pins the tentpole's trigger layer: after
// a restart, a periodic query that ran recently does NOT re-fire at an
// unadvanced clock, and fires again once its period truly elapses.
func TestMarksPreventRestartRefire(t *testing.T) {
	dir := t.TempDir()
	c := &clock{t: time.Date(2001, 5, 21, 0, 0, 0, 0, time.UTC)}
	var res1 []Result
	e1 := durableEngine(t, dir, c, &res1)
	e1.Register("Sub", weeklyCQ("Q"))
	e1.Tick()
	if len(res1) != 1 {
		t.Fatalf("first evaluation: %d results", len(res1))
	}

	// Restart two days later: recover marks BEFORE re-registering.
	c.advance(48 * time.Hour)
	var res2 []Result
	e2 := durableEngine(t, dir, c, &res2)
	if err := e2.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	e2.Register("Sub", weeklyCQ("Q"))
	e2.Tick()
	if len(res2) != 0 {
		t.Fatalf("weekly query re-fired 2 days after its last run: %d results", len(res2))
	}
	// Five more days: the week since the persisted mark has elapsed.
	c.advance(5 * 24 * time.Hour)
	e2.Tick()
	if len(res2) != 1 {
		t.Fatalf("due query did not fire after its period: %d results", len(res2))
	}
}

// TestMarksDoNotSkipDueQuery: a restart after the period elapsed fires
// on the first Tick — persistence must not push the schedule forward.
func TestMarksDoNotSkipDueQuery(t *testing.T) {
	dir := t.TempDir()
	c := &clock{t: time.Date(2001, 5, 21, 0, 0, 0, 0, time.UTC)}
	var res1 []Result
	e1 := durableEngine(t, dir, c, &res1)
	e1.Register("Sub", weeklyCQ("Q"))
	e1.Tick()

	// The outage outlasts the period.
	c.advance(9 * 24 * time.Hour)
	var res2 []Result
	e2 := durableEngine(t, dir, c, &res2)
	if err := e2.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	e2.Register("Sub", weeklyCQ("Q"))
	e2.Tick()
	if len(res2) != 1 {
		t.Fatalf("overdue query skipped after restart: %d results", len(res2))
	}
}

// TestMarksCheckpointCompacts: marks survive via the snapshot once the
// journal is compacted.
func TestMarksCheckpointCompacts(t *testing.T) {
	dir := t.TempDir()
	c := &clock{t: time.Date(2001, 5, 21, 0, 0, 0, 0, time.UTC)}
	var res1 []Result
	e1 := durableEngine(t, dir, c, &res1)
	e1.Register("A", weeklyCQ("QA"))
	e1.Register("B", weeklyCQ("QB"))
	e1.Tick()
	if err := e1.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	// A post-checkpoint evaluation lands in the tail.
	c.advance(8 * 24 * time.Hour)
	e1.Tick()

	c.advance(time.Hour)
	var res2 []Result
	e2 := durableEngine(t, dir, c, &res2)
	if err := e2.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	e2.Register("A", weeklyCQ("QA"))
	e2.Register("B", weeklyCQ("QB"))
	e2.Tick()
	if len(res2) != 0 {
		t.Fatalf("freshly-evaluated queries re-fired after checkpointed restart: %+v", res2)
	}
}

// TestUnregisterDropsMark: a re-registration under a recycled name must
// not inherit the dead subscription's schedule.
func TestUnregisterDropsMark(t *testing.T) {
	dir := t.TempDir()
	c := &clock{t: time.Date(2001, 5, 21, 0, 0, 0, 0, time.UTC)}
	var res []Result
	e := durableEngine(t, dir, c, &res)
	e.Register("Sub", weeklyCQ("Q"))
	e.Tick()
	e.Unregister("Sub")
	e.Register("Sub", weeklyCQ("Q"))
	c.advance(time.Hour)
	e.Tick()
	// The fresh registration has never run: it fires immediately, as an
	// unmarked query always has.
	if len(res) != 2 {
		t.Fatalf("re-registered query inherited the dropped mark: %d results", len(res))
	}
}
