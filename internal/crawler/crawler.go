// Package crawler simulates the acquisition and refresh module of Xyleme
// (Section 2.1): it decides when to (re)read each page of a set of
// synthetic sites, fetches the due pages, commits them to the warehouse
// (which detects their change status and computes deltas) and hands the
// resulting documents to the subscription system. Refresh statements from
// subscriptions boost the refresh rate of the pages they mention, which is
// how the paper's current implementation honours them (Section 2.2).
package crawler

import (
	"sort"
	"sync"
	"time"

	"xymon/internal/alerter"
	"xymon/internal/faults"
	"xymon/internal/sublang"
	"xymon/internal/warehouse"
	"xymon/internal/webgen"
	"xymon/internal/xmldom"
)

// Sink receives each fetched document after it is committed to the
// warehouse — normally the subscription manager's ProcessDoc.
type Sink func(*alerter.Doc)

// Stats counts crawl activity.
type Stats struct {
	Fetches   uint64
	New       uint64
	Updated   uint64
	Unchanged uint64
	Deleted   uint64
	// Discovered counts pages found by following links rather than being
	// registered up front.
	Discovered uint64
	// FetchErrors and CommitErrors count failed page fetches and failed
	// warehouse commits; each one schedules a retry (counted in Retries)
	// with capped exponential backoff.
	FetchErrors  uint64
	CommitErrors uint64
	Retries      uint64
	// Deferred counts due pages skipped because their site's circuit
	// breaker was open.
	Deferred uint64
	// Skipped counts fetched XML pages the ingest gate rejected before
	// parsing: not version-tracked and unable to raise any event.
	Skipped uint64
	// BreakerOpens / BreakerCloses count circuit-breaker transitions.
	BreakerOpens  uint64
	BreakerCloses uint64
}

type pageState struct {
	url     string
	site    *webgen.Site
	html    bool
	period  time.Duration // refresh period
	pinned  bool          // period fixed by a refresh hint; no adaptation
	nextDue time.Time
	// changeEvery is how often the remote page advances a version.
	changeEvery time.Duration
	birth       time.Time
	// fails counts consecutive fetch/commit failures; it drives the
	// exponential retry backoff and resets on the first success.
	fails int
}

// siteBreaker is the per-site circuit breaker (Section 2.1's acquisition
// module faces whole sites going unreachable, not single pages): after
// BreakerThreshold consecutive failures anywhere on a site, every due page
// of that site is deferred until the cooldown passes; then a single page
// is let through as a probe (half-open), and its outcome closes or
// re-opens the breaker.
type siteBreaker struct {
	fails     int
	open      bool
	openUntil time.Time
}

// Crawler drives the fetch loop over a virtual clock.
type Crawler struct {
	mu       sync.Mutex
	store    *warehouse.Store
	sink     Sink
	clock    func() time.Time
	pages    map[string]*pageState
	sites    []*webgen.Site
	breakers map[string]*siteBreaker // by site base URL
	stats    Stats

	// DefaultPeriod is the refresh period of pages with no hints.
	DefaultPeriod time.Duration
	// ChangeEvery is how often synthetic pages change remotely.
	ChangeEvery time.Duration
	// Adaptive enables change-rate estimation: pages found updated are
	// revisited sooner, unchanged pages decay toward MaxPeriod — the
	// "estimated change rate" criterion of the acquisition module
	// (Section 2.1 and [19]). Refresh-hinted pages are never slowed down.
	Adaptive bool
	// MinPeriod / MaxPeriod bound the adaptive refresh period.
	MinPeriod time.Duration
	MaxPeriod time.Duration

	// Gate, when set, decides from the serialized bytes whether a fetched
	// XML page is worth parsing and committing — the streaming pre-filter
	// seam. Returning false drops the page before any DOM work (counted
	// in Stats.Skipped). Nil commits everything. Set before crawling.
	Gate func(url, dtd, domain string, data []byte) bool
	// Faults, when set, injects failures at the fetch and commit seams
	// (chaos tests). Nil never faults. Set before crawling.
	Faults *faults.Injector
	// OnError observes every fetch/commit failure (after the stats are
	// updated and the retry is scheduled, outside the crawler's lock).
	// Set before crawling.
	OnError func(url string, err error)
	// RetryBase / RetryMax bound the exponential retry backoff of a
	// failing page: attempt n waits base·2ⁿ⁻¹ (±25% deterministic
	// jitter), capped at RetryMax. Retries are scheduled on the virtual
	// clock by re-arming nextDue — the crawler never sleeps.
	RetryBase time.Duration
	RetryMax  time.Duration
	// BreakerThreshold consecutive failures on one site open its circuit
	// breaker for BreakerCooldown (then a single probe page half-opens
	// it). Zero threshold disables the breaker.
	BreakerThreshold int
	BreakerCooldown  time.Duration
}

// New returns a crawler committing to store and dispatching to sink.
func New(store *warehouse.Store, sink Sink, clock func() time.Time) *Crawler {
	if clock == nil {
		clock = time.Now
	}
	return &Crawler{
		store:            store,
		sink:             sink,
		clock:            clock,
		pages:            make(map[string]*pageState),
		breakers:         make(map[string]*siteBreaker),
		DefaultPeriod:    7 * 24 * time.Hour,
		ChangeEvery:      24 * time.Hour,
		MinPeriod:        time.Hour,
		MaxPeriod:        30 * 24 * time.Hour,
		RetryBase:        time.Minute,
		RetryMax:         6 * time.Hour,
		BreakerThreshold: 5,
		BreakerCooldown:  time.Hour,
	}
}

// AddSite registers every page of a synthetic site; pages become due
// immediately (discovery fetch).
func (c *Crawler) AddSite(site *webgen.Site) {
	now := c.clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sites = append(c.sites, site)
	for _, url := range site.XMLURLs() {
		c.pages[url] = &pageState{
			url: url, site: site, period: c.DefaultPeriod,
			nextDue: now, changeEvery: c.ChangeEvery, birth: now,
		}
	}
	for _, url := range site.HTMLURLs() {
		c.pages[url] = &pageState{
			url: url, site: site, html: true, period: c.DefaultPeriod,
			nextDue: now, changeEvery: c.ChangeEvery, birth: now,
		}
	}
}

// SetSink replaces the document sink — e.g. to route fetched documents
// through a flow.Runner worker pool instead of processing them inline.
func (c *Crawler) SetSink(sink Sink) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sink = sink
}

// ApplyRefreshHints tightens the refresh period of hinted pages — the
// paper's "subscriptions influence the refreshing of pages by adding
// importance to the pages they explicitly mention".
func (c *Crawler) ApplyRefreshHints(hints map[string]sublang.Frequency) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for url, freq := range hints {
		if p, ok := c.pages[url]; ok && freq.Duration() < p.period {
			p.period = freq.Duration()
			p.pinned = true
		}
	}
}

// remoteVersion computes how many times the page changed since discovery.
func (p *pageState) remoteVersion(now time.Time) int {
	if p.changeEvery <= 0 {
		return 1
	}
	return 1 + int(now.Sub(p.birth)/p.changeEvery)
}

// Step fetches every page whose refresh time has come, in URL order for
// determinism, and returns how many pages were fetched. Pages of a site
// whose circuit breaker is open are deferred (their nextDue stays in the
// past, so the next Step reconsiders them); once the cooldown passes, the
// first due page of the site goes through as the half-open probe.
func (c *Crawler) Step() int {
	now := c.clock()
	c.mu.Lock()
	var candidates []*pageState
	for _, p := range c.pages {
		if !p.nextDue.After(now) {
			candidates = append(candidates, p)
		}
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].url < candidates[j].url })
	var due []*pageState
	var probing map[string]bool
	for _, p := range candidates {
		base := p.site.Spec().BaseURL
		if br := c.breakers[base]; br != nil && br.open {
			if now.Before(br.openUntil) || probing[base] {
				c.stats.Deferred++
				continue
			}
			if probing == nil {
				probing = make(map[string]bool)
			}
			probing[base] = true
		}
		p.nextDue = now.Add(p.period)
		due = append(due, p)
	}
	c.mu.Unlock()

	for _, p := range due {
		c.fetch(p, now)
	}
	return len(due)
}

// FetchAll forces an immediate fetch of every page, regardless of
// schedule; examples use it to drive deterministic rounds.
func (c *Crawler) FetchAll() int {
	now := c.clock()
	c.mu.Lock()
	all := make([]*pageState, 0, len(c.pages))
	for _, p := range c.pages {
		p.nextDue = now.Add(p.period)
		all = append(all, p)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].url < all[j].url })
	c.mu.Unlock()
	for _, p := range all {
		c.fetch(p, now)
	}
	return len(all)
}

func (c *Crawler) fetch(p *pageState, now time.Time) {
	if err := c.Faults.Check(faults.PointFetch, p.url); err != nil {
		c.fetchFailed(p, now, err, false)
		return
	}
	version := p.remoteVersion(now)
	if !p.site.Alive(p.url, version) {
		c.handleGone(p)
		return
	}
	var res *warehouse.CommitResult
	var err error
	var content []byte
	if p.html {
		if err = c.Faults.Check(faults.PointCommit, p.url); err == nil {
			content = p.site.FetchHTML(p.url, version)
			res, err = c.store.CommitHTML(p.url, content)
		}
	} else {
		spec := p.site.Spec()
		data := p.site.FetchXMLBytes(p.url, version)
		if c.Gate != nil && !c.Gate(p.url, spec.DTD, spec.Domain, data) {
			// The page was fetched but can neither raise an event nor
			// extend a version chain: no parse, no commit, no sink.
			c.mu.Lock()
			c.stats.Fetches++
			c.stats.Skipped++
			c.recoverLocked(p)
			c.mu.Unlock()
			return
		}
		if err = c.Faults.Check(faults.PointCommit, p.url); err == nil {
			res, err = c.store.CommitXMLBytes(p.url, spec.DTD, spec.Domain, data)
		}
	}
	if err != nil {
		// A failed commit means the warehouse never saw this version: the
		// page is rescheduled with backoff instead of waiting a full
		// refresh period (and instead of vanishing silently, the original
		// sin of this function).
		c.fetchFailed(p, now, err, true)
		return
	}
	if p.html {
		c.discover(content, now)
	}
	c.mu.Lock()
	c.stats.Fetches++
	c.recoverLocked(p)
	switch res.Status {
	case warehouse.StatusNew:
		c.stats.New++
	case warehouse.StatusUpdated:
		c.stats.Updated++
	case warehouse.StatusUnchanged:
		c.stats.Unchanged++
	}
	if c.Adaptive && !p.pinned {
		// Multiplicative change-rate tracking: revisit changing pages
		// sooner, let stable ones decay toward MaxPeriod.
		switch res.Status {
		case warehouse.StatusUpdated:
			p.period = clampPeriod(p.period*2/3, c.MinPeriod, c.MaxPeriod)
		case warehouse.StatusUnchanged:
			p.period = clampPeriod(p.period*3/2, c.MinPeriod, c.MaxPeriod)
		}
		p.nextDue = now.Add(p.period)
	}
	sink := c.sink
	c.mu.Unlock()
	if sink != nil {
		sink(&alerter.Doc{
			Meta:    res.Meta,
			Status:  res.Status,
			Doc:     res.Doc,
			Delta:   res.Delta,
			Content: content,
		})
	}
}

// fetchFailed records a fetch or commit failure, schedules the retry with
// capped exponential backoff on the virtual clock, advances the site's
// circuit breaker, and fires the error hook (outside the lock).
func (c *Crawler) fetchFailed(p *pageState, now time.Time, err error, commit bool) {
	c.mu.Lock()
	if commit {
		c.stats.CommitErrors++
	} else {
		c.stats.FetchErrors++
	}
	p.fails++
	c.stats.Retries++
	p.nextDue = now.Add(retryBackoff(c.RetryBase, c.RetryMax, p.fails, p.url))
	if c.BreakerThreshold > 0 {
		base := p.site.Spec().BaseURL
		br := c.breakers[base]
		if br == nil {
			br = &siteBreaker{}
			c.breakers[base] = br
		}
		br.fails++
		if br.fails >= c.BreakerThreshold {
			if !br.open {
				c.stats.BreakerOpens++
			}
			br.open = true
			br.openUntil = now.Add(c.BreakerCooldown)
		}
	}
	hook := c.OnError
	c.mu.Unlock()
	if hook != nil {
		hook(p.url, err)
	}
}

// recoverLocked resets the failure state of a page after a successful
// fetch and closes its site's breaker (a successful half-open probe).
func (c *Crawler) recoverLocked(p *pageState) {
	p.fails = 0
	if br := c.breakers[p.site.Spec().BaseURL]; br != nil {
		if br.open {
			c.stats.BreakerCloses++
		}
		br.open = false
		br.fails = 0
	}
}

// retryBackoff is the capped exponential backoff of attempt n (1-based)
// with ±25% jitter. The jitter is a deterministic function of (url, n) —
// an FNV-1a hash, not a shared rng — so concurrent fetches stay
// reproducible while retries of different pages still de-synchronise
// instead of stampeding the site together.
func retryBackoff(base, max time.Duration, fails int, url string) time.Duration {
	if base <= 0 {
		base = time.Minute
	}
	if max < base {
		max = base
	}
	d := base
	for i := 1; i < fails && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	seed := xmldom.HashString(url) ^ uint64(fails)*0x9e3779b97f4a7c15
	frac := 0.75 + 0.5*float64(seed>>11)/float64(uint64(1)<<53)
	j := time.Duration(float64(d) * frac)
	if j > max {
		j = max
	}
	return j
}

func clampPeriod(d, min, max time.Duration) time.Duration {
	if d < min {
		return min
	}
	if d > max {
		return max
	}
	return d
}

// Period reports the current refresh period of a page (0 when unknown);
// the adaptive-refresh tests observe convergence through it.
func (c *Crawler) Period(url string) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p, ok := c.pages[url]; ok {
		return p.period
	}
	return 0
}

// discover registers pages found through HTML links — the way the real
// crawler grows its URL frontier. Newly discovered pages become due
// immediately.
func (c *Crawler) discover(content []byte, now time.Time) {
	links := webgen.ExtractLinks(content)
	if len(links) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, url := range links {
		if _, known := c.pages[url]; known {
			continue
		}
		for _, site := range c.sites {
			if !site.Owns(url) {
				continue
			}
			c.pages[url] = &pageState{
				url: url, site: site, html: site.IsHTML(url),
				period: c.DefaultPeriod, nextDue: now,
				changeEvery: c.ChangeEvery, birth: now,
			}
			c.stats.Discovered++
			break
		}
	}
}

// handleGone processes a page that disappeared from its site: the
// warehouse entry is dropped and a deleted-status document (carrying the
// last warehoused version, so element-level `deleted` conditions can
// still inspect it) flows to the sink. The page leaves the crawl schedule.
func (c *Crawler) handleGone(p *pageState) {
	res, err := c.store.Delete(p.url)
	c.mu.Lock()
	delete(c.pages, p.url)
	if err == nil {
		c.stats.Fetches++
		c.stats.Deleted++
	}
	sink := c.sink
	hook := c.OnError
	c.mu.Unlock()
	if err != nil {
		if hook != nil {
			hook(p.url, err)
		}
		return
	}
	if sink == nil {
		return
	}
	sink(&alerter.Doc{Meta: res.Meta, Status: warehouse.StatusDeleted, Doc: res.Doc})
}

// Stats snapshots crawl counters.
func (c *Crawler) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Pages returns the number of known pages.
func (c *Crawler) Pages() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pages)
}

// BreakerOpen reports whether the circuit breaker of the site with the
// given base URL is currently open.
func (c *Crawler) BreakerOpen(baseURL string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	br := c.breakers[baseURL]
	return br != nil && br.open
}

// Fails reports the consecutive-failure count of a page (0 when unknown
// or healthy); retry tests observe backoff growth through it.
func (c *Crawler) Fails(url string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p, ok := c.pages[url]; ok {
		return p.fails
	}
	return 0
}
