package crawler

import (
	"testing"
	"time"

	"xymon/internal/alerter"
	"xymon/internal/sublang"
	"xymon/internal/warehouse"
	"xymon/internal/webgen"
)

type rig struct {
	clock time.Time
	store *warehouse.Store
	crawl *Crawler
	docs  []*alerter.Doc
}

func newRig() *rig {
	r := &rig{clock: time.Date(2001, 5, 21, 0, 0, 0, 0, time.UTC)}
	now := func() time.Time { return r.clock }
	r.store = warehouse.NewStore(warehouse.WithClock(now))
	r.crawl = New(r.store, func(d *alerter.Doc) { r.docs = append(r.docs, d) }, now)
	return r
}

func TestDiscoveryFetch(t *testing.T) {
	r := newRig()
	site := webgen.NewSite(webgen.SiteSpec{BaseURL: "http://s.example", Pages: 3, HTMLShare: 2, Seed: 1})
	r.crawl.AddSite(site)
	if r.crawl.Pages() != 5 {
		t.Fatalf("Pages = %d", r.crawl.Pages())
	}
	n := r.crawl.Step()
	if n != 5 || len(r.docs) != 5 {
		t.Fatalf("Step fetched %d, sink got %d", n, len(r.docs))
	}
	for _, d := range r.docs {
		if d.Status != warehouse.StatusNew {
			t.Errorf("%s status = %v, want new", d.Meta.URL, d.Status)
		}
	}
	st := r.crawl.Stats()
	if st.Fetches != 5 || st.New != 5 {
		t.Errorf("stats = %+v", st)
	}
	// Nothing is due right after.
	if n := r.crawl.Step(); n != 0 {
		t.Errorf("second Step fetched %d, want 0", n)
	}
}

func TestRefreshDetectsChanges(t *testing.T) {
	r := newRig()
	site := webgen.NewSite(webgen.SiteSpec{BaseURL: "http://s.example", Pages: 1, Seed: 2})
	r.crawl.AddSite(site)
	r.crawl.Step()
	r.docs = nil

	// After the default period, the page is re-read; the synthetic page
	// changes daily, so the content differs.
	r.clock = r.clock.Add(r.crawl.DefaultPeriod + time.Hour)
	n := r.crawl.Step()
	if n != 1 || len(r.docs) != 1 {
		t.Fatalf("refetch: %d fetched", n)
	}
	if r.docs[0].Status != warehouse.StatusUpdated {
		t.Errorf("status = %v, want updated", r.docs[0].Status)
	}
	if r.docs[0].Delta.Empty() {
		t.Error("update must carry a delta")
	}
}

func TestUnchangedRefetch(t *testing.T) {
	r := newRig()
	site := webgen.NewSite(webgen.SiteSpec{BaseURL: "http://s.example", Pages: 1, Seed: 3})
	r.crawl.AddSite(site)
	r.crawl.ChangeEvery = 365 * 24 * time.Hour // effectively static
	// Re-register to pick up the new ChangeEvery.
	r.crawl = New(r.store, func(d *alerter.Doc) { r.docs = append(r.docs, d) }, func() time.Time { return r.clock })
	r.crawl.ChangeEvery = 365 * 24 * time.Hour
	r.crawl.AddSite(site)
	r.crawl.Step()
	r.docs = nil
	r.clock = r.clock.Add(r.crawl.DefaultPeriod + time.Hour)
	r.crawl.Step()
	if len(r.docs) != 1 || r.docs[0].Status != warehouse.StatusUnchanged {
		t.Fatalf("docs = %+v", r.docs)
	}
}

func TestRefreshHintsBoostFrequency(t *testing.T) {
	r := newRig()
	site := webgen.NewSite(webgen.SiteSpec{BaseURL: "http://s.example", Pages: 2, Seed: 4})
	r.crawl.AddSite(site)
	r.crawl.Step()
	r.docs = nil
	hinted := site.XMLURLs()[0]
	r.crawl.ApplyRefreshHints(map[string]sublang.Frequency{
		hinted:               sublang.Daily,
		"http://unknown.url": sublang.Hourly, // ignored
	})
	// Re-fetch the hinted page sooner. Hints apply from the next cycle, so
	// step once right after the boost window.
	r.clock = r.clock.Add(r.crawl.DefaultPeriod + time.Hour)
	r.crawl.Step()
	r.docs = nil
	r.clock = r.clock.Add(25 * time.Hour)
	n := r.crawl.Step()
	if n != 1 || len(r.docs) != 1 || r.docs[0].Meta.URL != hinted {
		t.Fatalf("hinted refetch: n=%d docs=%v", n, r.docs)
	}
}

func TestFetchAll(t *testing.T) {
	r := newRig()
	site := webgen.NewSite(webgen.SiteSpec{BaseURL: "http://s.example", Pages: 4, Seed: 5})
	r.crawl.AddSite(site)
	if n := r.crawl.FetchAll(); n != 4 {
		t.Fatalf("FetchAll = %d", n)
	}
	if n := r.crawl.FetchAll(); n != 4 {
		t.Fatalf("FetchAll ignores schedule, got %d", n)
	}
	st := r.crawl.Stats()
	if st.Fetches != 8 || st.New != 4 || st.Unchanged != 4 {
		t.Errorf("stats = %+v", st)
	}
	if r.store.Len() != 4 {
		t.Errorf("warehouse = %d pages", r.store.Len())
	}
}

func TestHTMLFlow(t *testing.T) {
	r := newRig()
	site := webgen.NewSite(webgen.SiteSpec{BaseURL: "http://s.example", Pages: 1, HTMLShare: 1, Seed: 6})
	r.crawl.AddSite(site)
	r.crawl.Step()
	var html *alerter.Doc
	for _, d := range r.docs {
		if d.Meta.Type == warehouse.HTML {
			html = d
		}
	}
	if html == nil || len(html.Content) == 0 || html.Doc != nil {
		t.Fatalf("html doc = %+v", html)
	}
	// HTML pages change version: signature detection flags the update.
	r.docs = nil
	r.clock = r.clock.Add(r.crawl.DefaultPeriod + 30*time.Hour)
	r.crawl.Step()
	for _, d := range r.docs {
		if d.Meta.Type == warehouse.HTML && d.Status != warehouse.StatusUpdated {
			t.Errorf("html refetch status = %v", d.Status)
		}
	}
}

func TestAdaptiveRefreshConverges(t *testing.T) {
	r := newRig()
	r.crawl.Adaptive = true
	r.crawl.DefaultPeriod = 4 * 24 * time.Hour
	// One fast-changing site (hourly) and one effectively static site.
	fast := webgen.NewSite(webgen.SiteSpec{BaseURL: "http://fast.example", Pages: 1, Seed: 8})
	slow := webgen.NewSite(webgen.SiteSpec{BaseURL: "http://slow.example", Pages: 1, Seed: 9})
	r.crawl.AddSite(fast)
	r.crawl.AddSite(slow)
	// fast changes every 6h, slow every 1000 days: tweak page states via
	// ChangeEvery before discovery by re-adding with custom crawler.
	c2 := New(r.store, nil, func() time.Time { return r.clock })
	c2.Adaptive = true
	c2.DefaultPeriod = 4 * 24 * time.Hour
	c2.ChangeEvery = 6 * time.Hour
	c2.AddSite(fast)
	c2.ChangeEvery = 1000 * 24 * time.Hour
	c2.AddSite(slow)

	fastURL := fast.XMLURLs()[0]
	slowURL := slow.XMLURLs()[0]
	for i := 0; i < 40; i++ {
		c2.Step()
		r.clock = r.clock.Add(12 * time.Hour)
	}
	fastPeriod := c2.Period(fastURL)
	slowPeriod := c2.Period(slowURL)
	if fastPeriod >= slowPeriod {
		t.Errorf("adaptive refresh did not converge: fast=%v slow=%v", fastPeriod, slowPeriod)
	}
	if slowPeriod <= c2.DefaultPeriod {
		t.Errorf("static page period should grow beyond default: %v", slowPeriod)
	}
}

func TestAdaptiveRespectsHintPin(t *testing.T) {
	r := newRig()
	c := New(r.store, nil, func() time.Time { return r.clock })
	c.Adaptive = true
	c.ChangeEvery = 1000 * 24 * time.Hour // static content
	site := webgen.NewSite(webgen.SiteSpec{BaseURL: "http://pin.example", Pages: 1, Seed: 10})
	c.AddSite(site)
	url := site.XMLURLs()[0]
	c.ApplyRefreshHints(map[string]sublang.Frequency{url: sublang.Daily})
	for i := 0; i < 20; i++ {
		c.Step()
		r.clock = r.clock.Add(24 * time.Hour)
	}
	if got := c.Period(url); got != sublang.Daily.Duration() {
		t.Errorf("hinted page period drifted to %v, want pinned daily", got)
	}
}

func TestPageDeletionFlow(t *testing.T) {
	r := newRig()
	site := webgen.NewSite(webgen.SiteSpec{
		BaseURL: "http://mort.example", Pages: 1, Seed: 11, Lifetime: 2,
	})
	r.crawl.AddSite(site)
	url := site.XMLURLs()[0]
	r.crawl.Step() // discovery at version 1
	if _, err := r.store.Get(url); err != nil {
		t.Fatalf("page not warehoused: %v", err)
	}
	// Advance well past the page's lifetime and refetch.
	deadline := 20
	for i := 0; i < deadline; i++ {
		r.clock = r.clock.Add(r.crawl.DefaultPeriod + time.Hour)
		r.docs = nil
		r.crawl.Step()
		if len(r.docs) == 1 && r.docs[0].Status == warehouse.StatusDeleted {
			break
		}
		if i == deadline-1 {
			t.Fatal("page never reported deleted")
		}
	}
	d := r.docs[0]
	if d.Meta.URL != url || d.Doc == nil {
		t.Errorf("deleted doc = %+v, want last version attached", d)
	}
	if _, err := r.store.Get(url); err != warehouse.ErrUnknownURL {
		t.Errorf("warehouse still has the page: %v", err)
	}
	if r.crawl.Pages() != 0 {
		t.Errorf("deleted page still scheduled")
	}
	if st := r.crawl.Stats(); st.Deleted != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestAliveStaggering(t *testing.T) {
	site := webgen.NewSite(webgen.SiteSpec{BaseURL: "http://m.example", Pages: 8, Seed: 12, Lifetime: 5})
	urls := site.XMLURLs()
	for _, u := range urls {
		if !site.Alive(u, 1) {
			t.Errorf("%s dead at version 1", u)
		}
		if site.Alive(u, 100) {
			t.Errorf("%s alive at version 100", u)
		}
	}
	immortal := webgen.NewSite(webgen.SiteSpec{BaseURL: "http://im.example", Pages: 1, Seed: 13})
	if !immortal.Alive(immortal.XMLURLs()[0], 1<<30) {
		t.Error("immortal site died")
	}
}

func TestLinkDiscovery(t *testing.T) {
	r := newRig()
	site := webgen.NewSite(webgen.SiteSpec{
		BaseURL: "http://disc.example", Pages: 2, HTMLShare: 1, HiddenPages: 2, Seed: 20,
	})
	r.crawl.AddSite(site)
	if r.crawl.Pages() != 3 {
		t.Fatalf("initial pages = %d (hidden pages must not be pre-registered)", r.crawl.Pages())
	}
	// Discovery crawl: the HTML page at version 1 links only to the
	// catalogs; hidden0 appears from version 2.
	r.crawl.Step()
	if st := r.crawl.Stats(); st.Discovered != 0 {
		t.Fatalf("discovered too early: %+v", st)
	}
	// A week later the HTML page is at a later version and links hidden
	// pages; following the links schedules them, and the next step (same
	// instant, now due) fetches them.
	r.clock = r.clock.Add(r.crawl.DefaultPeriod + time.Hour)
	r.docs = nil
	r.crawl.Step()
	st := r.crawl.Stats()
	if st.Discovered == 0 {
		t.Fatalf("no pages discovered: %+v", st)
	}
	r.docs = nil
	r.crawl.Step() // fetch the newly discovered pages
	foundNew := false
	for _, d := range r.docs {
		if d.Status == warehouse.StatusNew && d.Doc != nil {
			foundNew = true
		}
	}
	if !foundNew {
		t.Fatalf("discovered pages not fetched as new: %+v", r.docs)
	}
}

func TestExtractLinks(t *testing.T) {
	content := []byte(`<a href="http://a/x.xml">x</a> text <a href="http://b/y.html">y</a> <a href="broken`)
	links := webgen.ExtractLinks(content)
	if len(links) != 2 || links[0] != "http://a/x.xml" || links[1] != "http://b/y.html" {
		t.Errorf("links = %v", links)
	}
	if webgen.ExtractLinks([]byte("no links")) != nil {
		t.Error("no links expected")
	}
}
