package crawler

import (
	"errors"
	"strings"
	"testing"
	"time"

	"xymon/internal/faults"
	"xymon/internal/webgen"
)

// TestCommitErrorCountedAndRetried is the regression test for the silent
// commit-error drop: a failed warehouse commit must show up in Stats,
// reach the error hook, and reschedule the page with backoff instead of
// waiting out the whole refresh period.
func TestCommitErrorCountedAndRetried(t *testing.T) {
	r := newRig()
	site := webgen.NewSite(webgen.SiteSpec{BaseURL: "http://flaky.example", Pages: 1, Seed: 3})
	r.crawl.AddSite(site)
	r.crawl.Faults = faults.New(11)
	r.crawl.Faults.Enable(faults.Rule{Point: faults.PointCommit, Mode: faults.ModeError, Count: 1})
	var hookURL string
	var hookErr error
	r.crawl.OnError = func(url string, err error) { hookURL, hookErr = url, err }

	if n := r.crawl.Step(); n != 1 {
		t.Fatalf("Step fetched %d, want 1", n)
	}
	st := r.crawl.Stats()
	if st.CommitErrors != 1 || st.Retries != 1 || st.Fetches != 0 {
		t.Fatalf("stats after failed commit = %+v", st)
	}
	if len(r.docs) != 0 {
		t.Fatal("failed commit reached the sink")
	}
	if !errors.Is(hookErr, faults.ErrInjected) || !strings.Contains(hookURL, "flaky.example") {
		t.Errorf("hook saw (%q, %v)", hookURL, hookErr)
	}
	// The retry is scheduled with backoff, far sooner than the 7-day
	// refresh period: within RetryBase±25%.
	url := site.XMLURLs()[0]
	if got := r.crawl.Fails(url); got != 1 {
		t.Errorf("Fails = %d, want 1", got)
	}
	r.clock = r.clock.Add(2 * r.crawl.RetryBase)
	if n := r.crawl.Step(); n != 1 {
		t.Fatalf("retry Step fetched %d, want 1", n)
	}
	st = r.crawl.Stats()
	if st.Fetches != 1 || st.New != 1 {
		t.Errorf("stats after retry = %+v", st)
	}
	if r.crawl.Fails(url) != 0 {
		t.Errorf("Fails after recovery = %d, want 0", r.crawl.Fails(url))
	}
	if len(r.docs) != 1 {
		t.Errorf("sink got %d docs after recovery, want 1", len(r.docs))
	}
}

// TestFetchBackoffGrowsAndCaps drives repeated fetch failures and checks
// the rescheduling delay grows exponentially and respects RetryMax.
func TestFetchBackoffGrowsAndCaps(t *testing.T) {
	r := newRig()
	site := webgen.NewSite(webgen.SiteSpec{BaseURL: "http://down.example", Pages: 1, Seed: 4})
	r.crawl.AddSite(site)
	r.crawl.BreakerThreshold = 0 // isolate backoff from the breaker
	r.crawl.RetryBase = time.Minute
	r.crawl.RetryMax = 10 * time.Minute
	r.crawl.Faults = faults.New(12)
	r.crawl.Faults.Enable(faults.Rule{Point: faults.PointFetch, Mode: faults.ModeError})

	url := site.XMLURLs()[0]
	var delays []time.Duration
	for i := 0; i < 8; i++ {
		if n := r.crawl.Step(); n != 1 {
			t.Fatalf("attempt %d: Step fetched %d", i, n)
		}
		d := r.crawl.pages[url].nextDue.Sub(r.clock)
		delays = append(delays, d)
		r.clock = r.clock.Add(d)
	}
	// Deterministic jitter keeps each delay within ±25% of the ideal
	// base·2ⁿ⁻¹, and the cap holds.
	ideal := time.Minute
	for i, d := range delays {
		want := ideal
		if want > r.crawl.RetryMax {
			want = r.crawl.RetryMax
		}
		lo := time.Duration(float64(want) * 0.75)
		hi := time.Duration(float64(want) * 1.25)
		if hi > r.crawl.RetryMax {
			hi = r.crawl.RetryMax
		}
		if d < lo || d > hi {
			t.Errorf("attempt %d: backoff %v outside [%v, %v]", i+1, d, lo, hi)
		}
		ideal *= 2
	}
	if st := r.crawl.Stats(); st.FetchErrors != 8 || st.Retries != 8 {
		t.Errorf("stats = %+v", st)
	}
}

// TestBackoffDeterminism pins that two identical runs schedule identical
// retries (the jitter is a pure function, not shared rng state).
func TestBackoffDeterminism(t *testing.T) {
	if a, b := retryBackoff(time.Minute, time.Hour, 3, "http://x/p"), retryBackoff(time.Minute, time.Hour, 3, "http://x/p"); a != b {
		t.Errorf("same inputs, different backoff: %v vs %v", a, b)
	}
	if a, b := retryBackoff(time.Minute, time.Hour, 3, "http://x/p"), retryBackoff(time.Minute, time.Hour, 3, "http://x/q"); a == b {
		t.Errorf("different URLs, identical jitter %v — pages would stampede together", a)
	}
}

// TestCircuitBreakerDefersAndProbes opens a site's breaker through
// consecutive failures, checks that due pages are deferred while it is
// open, that exactly one probe goes through after the cooldown, and that
// a successful probe closes it for the whole site.
func TestCircuitBreakerDefersAndProbes(t *testing.T) {
	r := newRig()
	site := webgen.NewSite(webgen.SiteSpec{BaseURL: "http://broken.example", Pages: 4, Seed: 5})
	healthy := webgen.NewSite(webgen.SiteSpec{BaseURL: "http://fine.example", Pages: 2, Seed: 6})
	r.crawl.AddSite(site)
	r.crawl.AddSite(healthy)
	r.crawl.BreakerThreshold = 3
	r.crawl.BreakerCooldown = time.Hour
	r.crawl.RetryBase = time.Minute
	r.crawl.Faults = faults.New(13)
	r.crawl.Faults.Enable(faults.Rule{Point: faults.PointFetch, Mode: faults.ModeError, Match: "broken.example"})

	// First step: all 4 broken pages fail; the third failure trips the
	// breaker mid-step, deferring the fourth page's fetch? No — all four
	// were already admitted; the breaker gates the NEXT step.
	if n := r.crawl.Step(); n != 6 {
		t.Fatalf("Step fetched %d, want 6", n)
	}
	if !r.crawl.BreakerOpen("http://broken.example/") {
		t.Fatal("breaker should be open after 4 consecutive failures")
	}
	if r.crawl.BreakerOpen("http://fine.example/") {
		t.Fatal("healthy site's breaker opened")
	}

	// While open: due pages of the broken site are deferred.
	r.clock = r.clock.Add(10 * time.Minute) // past the retry backoff, inside the cooldown
	if n := r.crawl.Step(); n != 0 {
		t.Fatalf("Step during open breaker fetched %d, want 0", n)
	}
	if st := r.crawl.Stats(); st.Deferred == 0 {
		t.Error("no pages counted as deferred")
	}

	// After the cooldown: exactly one probe page goes through; it fails,
	// so the breaker re-opens and the rest stay deferred.
	r.clock = r.clock.Add(time.Hour)
	if n := r.crawl.Step(); n != 1 {
		t.Fatalf("half-open Step fetched %d, want 1 probe", n)
	}
	if !r.crawl.BreakerOpen("http://broken.example/") {
		t.Fatal("failed probe should re-open the breaker")
	}

	// Clear the fault; after another cooldown the probe succeeds, the
	// breaker closes, and the next step fetches the remaining pages.
	r.crawl.Faults.Clear()
	r.clock = r.clock.Add(time.Hour + time.Minute)
	if n := r.crawl.Step(); n != 1 {
		t.Fatalf("recovery probe Step fetched %d, want 1", n)
	}
	if r.crawl.BreakerOpen("http://broken.example/") {
		t.Fatal("breaker should close after a successful probe")
	}
	r.clock = r.clock.Add(time.Minute)
	if n := r.crawl.Step(); n == 0 {
		t.Fatal("remaining pages should be fetched after the breaker closed")
	}
	st := r.crawl.Stats()
	if st.BreakerOpens == 0 || st.BreakerCloses != 1 {
		t.Errorf("breaker stats = %+v", st)
	}
}

// TestFetchFaultInjection checks the fetch fault point alone: failures
// are counted as FetchErrors and never reach the warehouse or the sink.
func TestFetchFaultInjection(t *testing.T) {
	r := newRig()
	site := webgen.NewSite(webgen.SiteSpec{BaseURL: "http://s.example", Pages: 2, Seed: 7})
	r.crawl.AddSite(site)
	r.crawl.Faults = faults.New(14)
	r.crawl.Faults.Enable(faults.Rule{Point: faults.PointFetch, Mode: faults.ModeError, Count: 1})
	if n := r.crawl.Step(); n != 2 {
		t.Fatalf("Step fetched %d", n)
	}
	st := r.crawl.Stats()
	if st.FetchErrors != 1 || st.Fetches != 1 {
		t.Errorf("stats = %+v, want 1 error + 1 success", st)
	}
	if r.store.Len() != 1 {
		t.Errorf("store has %d pages, want 1", r.store.Len())
	}
}
