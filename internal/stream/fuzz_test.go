package stream

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzStreamRecords throws arbitrary bytes at the batch codec. Whatever
// the input, decoding must terminate without panicking, never read past
// the payload, and either reject the batch whole (ErrBadBatch) or
// return records whose re-encode reproduces the input exactly — a batch
// decodes whole or not at all, so a truncated or bit-flipped payload
// can never surface as a phantom partial batch.
func FuzzStreamRecords(f *testing.F) {
	seed := func(base uint64, recs ...[]byte) []byte {
		return appendBatch(nil, base, recs)
	}
	f.Add([]byte{})
	f.Add(seed(0, []byte(`{"sub":"S"}`)))
	f.Add(seed(41, []byte("a"), []byte(""), bytes.Repeat([]byte("x"), 300)))
	f.Add(seed(7, []byte("torn"))[:9])
	f.Add([]byte{batchMagic, batchVersion, 0, 0, 0, 0, 0, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		base, recs, err := decodeBatch(data)
		if err != nil {
			if !errors.Is(err, ErrBadBatch) {
				t.Fatalf("decode error is not ErrBadBatch: %v", err)
			}
			return
		}
		// Derived offsets must not wrap around.
		if base+uint64(len(recs)) < base {
			t.Fatalf("offset wrap: base=%d count=%d", base, len(recs))
		}
		// Round-trip: what the decoder accepts, the encoder produces.
		rebuilt := appendBatch(nil, base, recs)
		if !bytes.Equal(rebuilt, data) {
			t.Fatalf("re-encode mismatch: %d bytes in, %d rebuilt", len(data), len(rebuilt))
		}
		// The header-only decoder agrees with the full one.
		hbase, hcount, herr := decodeBatchHeader(data)
		if herr != nil || hbase != base || hcount != len(recs) {
			t.Fatalf("header decode disagrees: %d/%d/%v vs %d/%d", hbase, hcount, herr, base, len(recs))
		}
	})
}
