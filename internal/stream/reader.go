package stream

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"xymon/internal/wal"
)

// DefaultMaxFetch bounds the records one Poll returns when the caller
// does not — the backpressure half of the contract: a consumer pulls
// bounded batches at its own pace instead of the reporter pushing
// unbounded queues at it.
const DefaultMaxFetch = 256

// ReaderOptions configures a Reader.
type ReaderOptions struct {
	// Hook, when non-nil, is consulted at OpRead before every poll and
	// at the cursor commit points, with the consumer name as the key.
	Hook wal.Hook
	// MaxFetch caps records per Poll; 0 means DefaultMaxFetch.
	MaxFetch int
}

// Reader is the consume side of the stream: it polls batches from the
// segment files directly (no writer handle needed, so it works from
// another process), tracks its position in memory, and commits it
// durably through a Cursor. Not safe for concurrent use — one Reader
// per consumer goroutine, which is what a cursor means anyway.
type Reader struct {
	dir      string
	consumer string
	o        ReaderOptions
	cur      *Cursor
	next     uint64
}

// OpenReader opens the named consumer's view of the stream rooted at
// dir, resuming from its recovered cursor — the last committed offset,
// so anything consumed but not committed before a crash replays.
func OpenReader(dir, consumer string, o ReaderOptions) (*Reader, error) {
	cur, err := OpenCursor(dir, consumer, o.Hook)
	if err != nil {
		return nil, err
	}
	if o.MaxFetch <= 0 {
		o.MaxFetch = DefaultMaxFetch
	}
	return &Reader{dir: dir, consumer: consumer, o: o, cur: cur, next: cur.Offset()}, nil
}

func (r *Reader) consult(op string) error {
	if r.o.Hook == nil {
		return nil
	}
	return r.o.Hook(op, r.consumer)
}

// Next returns the offset of the next record Poll will return.
func (r *Reader) Next() uint64 { return r.next }

// Committed returns the durably committed cursor offset.
func (r *Reader) Committed() uint64 { return r.cur.Offset() }

// Seek repositions the reader (in memory; Commit makes it durable).
func (r *Reader) Seek(off uint64) { r.next = off }

// Commit durably commits the reader's position: every record returned
// by Poll so far is acknowledged and will not replay.
func (r *Reader) Commit() error { return r.cur.Commit(r.next) }

// Poll returns up to max records from the reader's position, advancing
// it past what was returned. An empty result means the consumer is
// caught up (or the writer's tail is mid-append — poll again later).
// If retention reclaimed the position, Poll returns a *TruncatedError
// wrapping ErrTruncated; re-sync via SeekOldest and accept the gap.
func (r *Reader) Poll(max int) ([]Record, error) {
	if max <= 0 || max > r.o.MaxFetch {
		max = r.o.MaxFetch
	}
	if err := r.consult(OpRead); err != nil {
		return nil, err
	}
	// Retention in the writer process can delete a segment between our
	// directory listing and the read; one retry re-lists. On any error
	// the position rolls back so a later Poll cannot skip the records
	// a failed pass consumed in memory.
	startNext := r.next
	for attempt := 0; ; attempt++ {
		recs, err := r.read(max)
		if err != nil {
			r.next = startNext
			if os.IsNotExist(errors.Unwrap(err)) && attempt == 0 {
				continue
			}
			return nil, err
		}
		return recs, nil
	}
}

// SeekOldest repositions the reader at the oldest retained offset — the
// documented re-sync path after ErrTruncated — and returns it.
func (r *Reader) SeekOldest() (uint64, error) {
	if err := r.consult(OpRead); err != nil {
		return 0, err
	}
	segs, err := listSegments(r.dir)
	if err != nil {
		return 0, err
	}
	for _, s := range segs {
		if s.hasBase {
			r.next = s.base
			return s.base, nil
		}
	}
	// No batch anywhere: nothing retained; stay put.
	return r.next, nil
}

// segInfo is one on-disk segment and the base offset of its first
// batch, when it has one (a freshly rotated segment may be empty).
type segInfo struct {
	idx     int
	base    uint64
	hasBase bool
}

// listSegments lists the stream's segment files with their base
// offsets, ascending. Only batch headers are read.
func listSegments(dir string) ([]segInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("stream: %w", err)
	}
	var idxs []int
	for _, e := range entries {
		var idx int
		if _, err := fmt.Sscanf(e.Name(), "seg-%08d.wal", &idx); err == nil {
			idxs = append(idxs, idx)
		}
	}
	sort.Ints(idxs)
	segs := make([]segInfo, 0, len(idxs))
	for _, idx := range idxs {
		s := segInfo{idx: idx}
		base, ok, err := readSegBase(filepath.Join(dir, wal.SegmentFileName(idx)))
		if err != nil {
			return nil, err
		}
		s.base, s.hasBase = base, ok
		segs = append(segs, s)
	}
	return segs, nil
}

// readSegBase decodes the base offset of a segment's first batch
// without reading the whole file. ok is false for an empty segment or
// one whose first frame is still being written (torn).
func readSegBase(path string) (base uint64, ok bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, false, nil // deleted by retention mid-listing
		}
		return 0, false, fmt.Errorf("stream: %w", err)
	}
	defer f.Close()
	// Frame header (8) + batch header is all decodeBatchHeader needs.
	buf := make([]byte, 8+batchHeader)
	n, _ := f.Read(buf)
	if n < len(buf) {
		return 0, false, nil // empty or torn-short first frame
	}
	// Reading a prefix of the frame: skip the wal header and decode the
	// batch header directly; the full-frame CRC is checked when the
	// records are actually polled.
	base, _, err = decodeBatchHeader(buf[8:])
	if err != nil {
		return 0, false, fmt.Errorf("stream: %s: %w", filepath.Base(path), err)
	}
	return base, true, nil
}

// read performs one poll pass over the segment files.
func (r *Reader) read(max int) ([]Record, error) {
	segs, err := listSegments(r.dir)
	if err != nil {
		return nil, err
	}
	start := -1
	var first uint64
	haveFirst := false
	for i, s := range segs {
		if !s.hasBase {
			continue
		}
		if !haveFirst {
			first, haveFirst = s.base, true
		}
		if s.base <= r.next {
			start = i
		}
	}
	if !haveFirst {
		return nil, nil // nothing published yet
	}
	if r.next < first {
		return nil, &TruncatedError{Consumer: r.consumer, Requested: r.next, First: first}
	}
	if start < 0 {
		return nil, nil
	}
	var out []Record
	for si := start; si < len(segs) && len(out) < max; si++ {
		done, err := r.readSegment(segs[si], max, &out)
		if err != nil || done {
			return out, err
		}
	}
	return out, nil
}

// readSegment scans one segment from the reader's position, appending
// up to max records total into out. done reports that the scan hit the
// stream's tail (torn or end of active data) and later segments must
// not be read.
func (r *Reader) readSegment(s segInfo, max int, out *[]Record) (done bool, err error) {
	data, err := os.ReadFile(filepath.Join(r.dir, wal.SegmentFileName(s.idx)))
	if err != nil {
		if os.IsNotExist(err) {
			return true, fmt.Errorf("stream: segment vanished: %w", err)
		}
		return true, fmt.Errorf("stream: %w", err)
	}
	fr := wal.Binary{}
	off := 0
	for off < len(data) {
		payload, size, err := fr.Next(data[off:])
		if err != nil {
			if errors.Is(err, wal.ErrCorrupt) {
				return true, fmt.Errorf("stream: segment %s at byte %d: %w", wal.SegmentFileName(s.idx), off, err)
			}
			// Torn frame: the writer is mid-append (or crashed; its next
			// Open truncates this). Durable data ends here.
			return true, nil
		}
		base, recs, err := decodeBatch(payload)
		if err != nil {
			return true, fmt.Errorf("stream: segment %s: %w", wal.SegmentFileName(s.idx), err)
		}
		for i, raw := range recs {
			o := base + uint64(i)
			if o < r.next {
				continue
			}
			if len(*out) >= max {
				return true, nil
			}
			var rec Record
			if err := json.Unmarshal(raw, &rec); err != nil {
				return true, fmt.Errorf("stream: record %d: %w", o, err)
			}
			rec.Offset = o
			*out = append(*out, rec)
			r.next = o + 1
		}
		off += size
	}
	return false, nil
}
