// Package stream is the durable notification change-stream: an
// offset-addressable log of delivered notification reports layered on
// internal/wal, with per-consumer durable cursors, replay from any
// retained offset, and a retention policy that turns a slow or dead
// subscriber into retained segments on disk instead of reporter memory.
//
// Offsets address individual records; a batch (one wal frame, CRC32C
// checked) is the append unit, and a record's offset is derived from
// the batch base, so offsets are contiguous by construction — the only
// gap a consumer can ever observe is retention truncation, which is
// reported as ErrTruncated, never silently skipped.
//
// The write side (Log) is in-process with the reporter; the read side
// (Reader, Cursor) works on the directory alone, so consumers in other
// processes (cmd/xysub stream) poll the same segments the writer
// appends to. Torn frames at the tail of the active segment — a writer
// crash, or a read racing an in-flight append — end a poll silently;
// the records re-appear once the writer completes or repairs them.
package stream

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"xymon/internal/wal"
)

// The named durability points of the stream, reported to the Hook. The
// type is wal.Hook so the op names join the same fault vocabulary the
// crash harness arms ModeCrash rules at. OpRead fires before any poll
// or recovery scan; an error there fails the read before any byte is
// returned.
const (
	// OpAppend fires on entry to Publish, before the batch is encoded.
	OpAppend = "stream.append"
	// OpRead fires before any segment or cursor bytes are read.
	OpRead = "stream.read"
	// OpCursorCommit fires on entry to Cursor.Commit, before the temp
	// file is written — the window between consuming a batch and making
	// the new offset durable.
	OpCursorCommit = "cursor.commit"
	// OpCursorInstall fires after the cursor temp file is written and
	// fsynced, before the rename installs it — a crash here recovers to
	// the previous offset.
	OpCursorInstall = "cursor.commit.install"
)

// ErrTruncated reports that retention reclaimed the requested offset.
// Errors carrying position detail are *TruncatedError values wrapping
// this sentinel. The re-sync path: Reader.SeekOldest (or Seek to
// TruncatedError.First), accept the gap, continue.
var ErrTruncated = fmt.Errorf("stream: offset truncated by retention")

// TruncatedError is the typed retention-gap error: the consumer's next
// offset is older than the oldest retained record.
type TruncatedError struct {
	Consumer  string
	Requested uint64
	First     uint64 // oldest retained offset; Seek here to re-sync
}

func (e *TruncatedError) Error() string {
	return fmt.Sprintf("stream: consumer %s at offset %d truncated by retention (oldest retained %d)", e.Consumer, e.Requested, e.First)
}

func (e *TruncatedError) Unwrap() error { return ErrTruncated }

// Record is one notification report as published to the stream. Offset
// is assigned by the log and derived on read; it is never serialised.
type Record struct {
	Offset        uint64    `json:"-"`
	Subscription  string    `json:"sub"`
	Time          time.Time `json:"time"`
	Notifications int       `json:"n,omitempty"`
	XML           string    `json:"xml,omitempty"`
}

// Options configures a stream Log.
type Options struct {
	// SegmentBytes rotates the underlying wal segment at this size;
	// 0 means the wal default (1 MiB). Retention granularity is the
	// segment, so smaller segments reclaim space sooner.
	SegmentBytes int64
	// SyncEvery batches fsync across appends; see wal.FileOptions.
	SyncEvery int
	// MaxBehind is the retention floor: Retain never preserves more
	// than this many records behind the head, even for a live lagging
	// cursor — the consumer is truncated (ErrTruncated + re-sync)
	// instead of pinning disk forever. 0 means no floor: every record
	// some live cursor still needs is kept, and a dead consumer pins
	// segments until its cursor file is removed.
	MaxBehind uint64
	// Hook, when non-nil, is consulted at every Op point. It is also
	// passed through to the underlying wal, whose ops fire with the
	// stream directory's base name as the key.
	Hook wal.Hook
}

// Stats counts a Log's activity.
type Stats struct {
	Next             uint64 // next offset to be assigned
	FirstRetained    uint64 // oldest offset still on disk
	Batches          uint64 // batches appended this incarnation
	Records          uint64 // records appended this incarnation
	Segments         int
	TruncatedRecords uint64 // records reclaimed by retention this incarnation
}

// Log is the write side of the change-stream. Safe for concurrent use.
type Log struct {
	mu      sync.Mutex
	dir     string
	key     string
	o       Options
	w       *wal.Log
	next    uint64
	segBase map[int]uint64 // first offset landing in each live segment
	stats   Stats
}

// Open opens (creating if needed) the stream rooted at dir, repairing
// wal crash residue (torn tail truncated) and rebuilding the offset
// index by scanning the retained segments' batch headers.
func Open(dir string, o Options) (*Log, error) {
	l := &Log{dir: dir, key: filepath.Base(dir), o: o, segBase: make(map[int]uint64)}
	if err := l.hook(OpRead, l.key); err != nil {
		return nil, err
	}
	w, err := wal.Open(dir, wal.Options{SegmentBytes: o.SegmentBytes, SyncEvery: o.SyncEvery, Hook: o.Hook})
	if err != nil {
		return nil, err
	}
	l.w = w
	if err := l.recoverIndex(); err != nil {
		_ = w.Close()
		return nil, err
	}
	return l, nil
}

func (l *Log) hook(op, key string) error {
	if l.o.Hook == nil {
		return nil
	}
	return l.o.Hook(op, key)
}

// streamSnapshot is the wal checkpoint payload: enough to restore the
// head offset when retention has reclaimed every batch-bearing segment.
type streamSnapshot struct {
	Next uint64 `json:"next"`
}

// recoverIndex rebuilds next and the per-segment base-offset index by
// reading batch headers from every retained segment, and validates that
// offsets are contiguous across the whole retained range — a phantom or
// missing batch fails recovery loudly.
func (l *Log) recoverIndex() error {
	var snapNext uint64
	err := l.w.Recover(func(snapshot []byte) error {
		var s streamSnapshot
		if err := json.Unmarshal(snapshot, &s); err != nil {
			return fmt.Errorf("stream: snapshot: %w", err)
		}
		snapNext = s.Next
		return nil
	}, nil)
	if err != nil {
		return err
	}

	fr := wal.Binary{}
	running := uint64(0)
	seen := false
	for _, idx := range l.w.Segments() {
		data, err := os.ReadFile(filepath.Join(l.dir, wal.SegmentFileName(idx)))
		if err != nil {
			if os.IsNotExist(err) {
				continue // empty active segment not yet created on disk
			}
			return fmt.Errorf("stream: %w", err)
		}
		off := 0
		for off < len(data) {
			payload, size, err := fr.Next(data[off:])
			if err != nil {
				// wal.Open already truncated the active segment's torn
				// tail and Recover verified the sealed ones, so any
				// undecodable frame here is damage.
				return fmt.Errorf("stream: segment %s at byte %d: %w", wal.SegmentFileName(idx), off, err)
			}
			base, count, err := decodeBatchHeader(payload)
			if err != nil {
				return fmt.Errorf("stream: segment %s: %w", wal.SegmentFileName(idx), err)
			}
			if seen && base != running {
				return fmt.Errorf("stream: segment %s: batch base %d, want %d (offset discontinuity)", wal.SegmentFileName(idx), base, running)
			}
			if !seen {
				seen = true
			}
			if _, ok := l.segBase[idx]; !ok {
				l.segBase[idx] = base
			}
			running = base + uint64(count)
			off += size
		}
	}
	l.next = running
	if !seen || snapNext > l.next {
		l.next = snapNext
	}
	// Segments with no batch yet (rotation residue) start at next.
	for _, idx := range l.w.Segments() {
		if _, ok := l.segBase[idx]; !ok {
			l.segBase[idx] = l.next
		}
	}
	return nil
}

// Next returns the offset the next published record will be assigned.
func (l *Log) Next() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Publish durably appends one batch of records and returns the offset
// assigned to its first record. The append is one CRC-framed wal write:
// a crash mid-append leaves a torn tail the next Open discards whole —
// never a phantom partial batch.
func (l *Log) Publish(recs []Record) (uint64, error) {
	if err := l.hook(OpAppend, l.key); err != nil {
		return 0, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(recs) == 0 {
		return l.next, nil
	}
	base := l.next
	encoded := make([][]byte, len(recs))
	for i := range recs {
		b, err := json.Marshal(&recs[i])
		if err != nil {
			return 0, fmt.Errorf("stream: encoding record: %w", err)
		}
		encoded[i] = b
	}
	if err := l.w.Append(appendBatch(nil, base, encoded)); err != nil {
		return 0, err
	}
	l.next = base + uint64(len(recs))
	// If the append rotated, the new segment's first batch is this one.
	for _, idx := range l.w.Segments() {
		if _, ok := l.segBase[idx]; !ok {
			l.segBase[idx] = base
		}
	}
	l.stats.Batches++
	l.stats.Records += uint64(len(recs))
	return base, nil
}

// firstRetainedLocked is the oldest offset still on disk.
func (l *Log) firstRetainedLocked() uint64 {
	first := l.next
	for _, idx := range l.w.Segments() {
		if b, ok := l.segBase[idx]; ok && b < first {
			first = b
		}
	}
	return first
}

// FirstRetained returns the oldest offset a Reader can still replay.
func (l *Log) FirstRetained() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.firstRetainedLocked()
}

// Retain applies the retention policy and returns the first retained
// offset afterwards. The keep bound is the slowest live cursor, raised
// to the MaxBehind floor: a consumer more than MaxBehind records behind
// the head no longer pins segments and will observe ErrTruncated.
// Granularity is the wal segment — the segment containing the keep
// bound survives whole.
func (l *Log) Retain() (uint64, error) {
	if err := l.hook(OpRead, "cursors"); err != nil {
		return 0, err
	}
	cursors, err := readCursors(l.dir)
	if err != nil {
		return 0, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	// The keep bound: the slowest live cursor, raised to the floor. With
	// no cursors at all, exactly the floor window survives (a stream
	// nobody consumes yet must not discard what a late joiner replays);
	// with no floor either, nothing is ever reclaimed.
	keep := uint64(0)
	if len(cursors) > 0 {
		keep = l.next
		for _, off := range cursors {
			if off < keep {
				keep = off
			}
		}
	}
	if l.o.MaxBehind > 0 && l.next > l.o.MaxBehind {
		if floor := l.next - l.o.MaxBehind; keep < floor {
			keep = floor
		}
	}
	segs := l.w.Segments()
	retainSeg := segs[0]
	for _, idx := range segs {
		if base, ok := l.segBase[idx]; ok && base <= keep {
			retainSeg = idx
		}
	}
	if retainSeg == segs[0] {
		return l.firstRetainedLocked(), nil // nothing to reclaim
	}
	before := l.firstRetainedLocked()
	snap, err := json.Marshal(streamSnapshot{Next: l.next})
	if err != nil {
		return 0, fmt.Errorf("stream: %w", err)
	}
	if err := l.w.CheckpointRetain(retainSeg, func(w io.Writer) error {
		_, err := w.Write(snap)
		return err
	}); err != nil {
		return 0, err
	}
	for idx := range l.segBase {
		if idx < retainSeg {
			delete(l.segBase, idx)
		}
	}
	// The checkpoint rotated: the fresh active segment starts at next.
	for _, idx := range l.w.Segments() {
		if _, ok := l.segBase[idx]; !ok {
			l.segBase[idx] = l.next
		}
	}
	first := l.firstRetainedLocked()
	l.stats.TruncatedRecords += first - before
	return first, nil
}

// Lags returns every consumer's lag — records published but not yet
// committed past — the stream's backpressure gauge.
func (l *Log) Lags() (map[string]uint64, error) {
	if err := l.hook(OpRead, "cursors"); err != nil {
		return nil, err
	}
	cursors, err := readCursors(l.dir)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	lags := make(map[string]uint64, len(cursors))
	for name, off := range cursors {
		if off > l.next {
			off = l.next
		}
		lags[name] = l.next - off
	}
	return lags, nil
}

// Stats snapshots the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.stats
	st.Next = l.next
	st.FirstRetained = l.firstRetainedLocked()
	st.Segments = len(l.w.Segments())
	return st
}

// Dir returns the stream's root directory.
func (l *Log) Dir() string { return l.dir }

// Close syncs and releases the underlying wal. The stream stays
// readable by directory Readers and on a future Open.
func (l *Log) Close() error { return l.w.Close() }
