package stream

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"xymon/internal/wal"
)

var t0 = time.Date(2001, 5, 21, 9, 0, 0, 0, time.UTC)

func openStream(t *testing.T, dir string, o Options) *Log {
	t.Helper()
	l, err := Open(dir, o)
	if err != nil {
		t.Fatalf("stream.Open: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func publishN(t *testing.T, l *Log, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		rec := Record{Subscription: "S", Time: t0, Notifications: 1, XML: fmt.Sprintf("<r n=%q/>", fmt.Sprint(l.Next()))}
		if _, err := l.Publish([]Record{rec}); err != nil {
			t.Fatalf("Publish: %v", err)
		}
	}
}

// drain polls everything available, asserting contiguous offsets from
// the reader's position.
func drain(t *testing.T, r *Reader) []Record {
	t.Helper()
	var all []Record
	for {
		recs, err := r.Poll(7)
		if err != nil {
			t.Fatalf("Poll: %v", err)
		}
		if len(recs) == 0 {
			return all
		}
		all = append(all, recs...)
	}
}

func TestPublishPollRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := openStream(t, dir, Options{})
	base, err := l.Publish([]Record{
		{Subscription: "A", Time: t0, Notifications: 2, XML: "<a/>"},
		{Subscription: "B", Time: t0, Notifications: 1, XML: "<b/>"},
	})
	if err != nil || base != 0 {
		t.Fatalf("Publish = %d, %v", base, err)
	}
	publishN(t, l, 3)
	if got := l.Next(); got != 5 {
		t.Fatalf("Next = %d, want 5", got)
	}

	r, err := OpenReader(dir, "c1", ReaderOptions{})
	if err != nil {
		t.Fatalf("OpenReader: %v", err)
	}
	all := drain(t, r)
	if len(all) != 5 {
		t.Fatalf("drained %d records, want 5", len(all))
	}
	for i, rec := range all {
		if rec.Offset != uint64(i) {
			t.Errorf("record %d has offset %d", i, rec.Offset)
		}
	}
	if all[0].Subscription != "A" || all[0].XML != "<a/>" || all[1].Subscription != "B" {
		t.Errorf("payload round-trip: %+v", all[:2])
	}
	if err := r.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if got := r.Committed(); got != 5 {
		t.Errorf("committed = %d, want 5", got)
	}
}

// TestReaderResumesFromCursor pins the crash-resume contract: a new
// Reader starts at the committed cursor, replaying anything polled but
// not committed — never skipping.
func TestReaderResumesFromCursor(t *testing.T) {
	dir := t.TempDir()
	l := openStream(t, dir, Options{})
	publishN(t, l, 10)

	r1, _ := OpenReader(dir, "c", ReaderOptions{})
	if recs, err := r1.Poll(4); err != nil || len(recs) != 4 {
		t.Fatalf("first poll: %d, %v", len(recs), err)
	}
	if err := r1.Commit(); err != nil {
		t.Fatal(err)
	}
	// Poll more but crash (drop the reader) before committing.
	if recs, err := r1.Poll(4); err != nil || len(recs) != 4 {
		t.Fatalf("second poll: %d, %v", len(recs), err)
	}

	r2, _ := OpenReader(dir, "c", ReaderOptions{})
	if got := r2.Next(); got != 4 {
		t.Fatalf("resumed at %d, want the committed 4", got)
	}
	all := drain(t, r2)
	if len(all) != 6 || all[0].Offset != 4 {
		t.Fatalf("replay = %d records from %d, want 6 from 4", len(all), all[0].Offset)
	}
}

// TestWriterRecoversOffsets: reopening the log continues offsets where
// the previous incarnation stopped, across segment rotations.
func TestWriterRecoversOffsets(t *testing.T) {
	dir := t.TempDir()
	l := openStream(t, dir, Options{SegmentBytes: 256})
	publishN(t, l, 20)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2 := openStream(t, dir, Options{SegmentBytes: 256})
	if got := l2.Next(); got != 20 {
		t.Fatalf("recovered Next = %d, want 20", got)
	}
	publishN(t, l2, 5)
	r, _ := OpenReader(dir, "c", ReaderOptions{})
	if all := drain(t, r); len(all) != 25 || all[24].Offset != 24 {
		t.Fatalf("drained %d, last %d", len(all), all[len(all)-1].Offset)
	}
}

// TestRetentionTruncatesPastFloor drives the retention contract: the
// slowest cursor pins segments until it passes the MaxBehind floor;
// beyond it, segments go and the lagging consumer gets ErrTruncated
// with a working SeekOldest re-sync.
func TestRetentionTruncatesPastFloor(t *testing.T) {
	dir := t.TempDir()
	l := openStream(t, dir, Options{SegmentBytes: 256, MaxBehind: 10})

	// A consumer committed at 0 pins everything while within the floor.
	r, _ := OpenReader(dir, "slow", ReaderOptions{})
	if err := r.Commit(); err != nil {
		t.Fatal(err)
	}
	publishN(t, l, 8)
	if first, err := l.Retain(); err != nil || first != 0 {
		t.Fatalf("Retain within floor = %d, %v; want 0 (cursor pins)", first, err)
	}

	// Push the head far past the floor: the cursor no longer pins.
	publishN(t, l, 40)
	first, err := l.Retain()
	if err != nil {
		t.Fatalf("Retain: %v", err)
	}
	if first == 0 {
		t.Fatal("retention reclaimed nothing past the floor")
	}
	if min := l.Next() - 10; first > min {
		t.Errorf("retention overshot the floor: first=%d, head=%d", first, l.Next())
	}

	if _, err := r.Poll(4); !errors.Is(err, ErrTruncated) {
		t.Fatalf("lagging poll error = %v, want ErrTruncated", err)
	}
	var te *TruncatedError
	if _, err := r.Poll(4); !errors.As(err, &te) || te.First != first {
		t.Fatalf("typed truncation detail = %v, want First=%d", err, first)
	}

	// Documented re-sync path.
	got, err := r.SeekOldest()
	if err != nil || got != first {
		t.Fatalf("SeekOldest = %d, %v; want %d", got, err, first)
	}
	all := drain(t, r)
	if uint64(len(all)) != l.Next()-first {
		t.Fatalf("post-resync drain = %d records, want %d", len(all), l.Next()-first)
	}
	for i, rec := range all {
		if rec.Offset != first+uint64(i) {
			t.Fatalf("post-resync offsets not contiguous at %d", i)
		}
	}
}

// TestRetentionSurvivesReopen: retained segments and the head offset
// survive a writer restart after retention reclaimed a prefix.
func TestRetentionSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	l := openStream(t, dir, Options{SegmentBytes: 256, MaxBehind: 5})
	publishN(t, l, 30)
	first, err := l.Retain()
	if err != nil || first == 0 {
		t.Fatalf("Retain = %d, %v", first, err)
	}
	// Retain twice in a row: idempotent, no further reclaim possible.
	if again, err := l.Retain(); err != nil || again != first {
		t.Fatalf("second Retain = %d, %v; want %d", again, err, first)
	}
	l.Close()

	l2 := openStream(t, dir, Options{SegmentBytes: 256, MaxBehind: 5})
	if got := l2.Next(); got != 30 {
		t.Fatalf("recovered Next = %d, want 30", got)
	}
	if got := l2.FirstRetained(); got != first {
		t.Fatalf("recovered FirstRetained = %d, want %d", got, first)
	}
	r, _ := OpenReader(dir, "c", ReaderOptions{})
	if _, err := r.Poll(1); !errors.Is(err, ErrTruncated) {
		t.Fatal("offset 0 should be truncated after reopen")
	}
}

// TestCursorTornCommitRecovers: a leftover cursor temp file (crash
// between write and rename) is discarded — recovery resumes from the
// previously committed offset.
func TestCursorTornCommitRecovers(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCursor(dir, "w", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(7); err != nil {
		t.Fatal(err)
	}
	// Simulate the torn commit: temp written, rename never happened.
	tmp := filepath.Join(dir, "cursors", "w.cur.tmp")
	if err := os.WriteFile(tmp, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	c2, err := OpenCursor(dir, "w", nil)
	if err != nil {
		t.Fatalf("OpenCursor over torn temp: %v", err)
	}
	if got := c2.Offset(); got != 7 {
		t.Fatalf("recovered offset = %d, want the committed 7", got)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Error("torn temp file survived recovery")
	}
}

// TestCursorCorruptionFailsLoudly: a damaged installed cursor must not
// silently reset the consumer to zero (which would re-deliver the
// world) — it fails loudly.
func TestCursorCorruptionFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	c, _ := OpenCursor(dir, "w", nil)
	if err := c.Commit(9); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "cursors", "w.cur")
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCursor(dir, "w", nil); err == nil {
		t.Fatal("corrupt cursor opened silently")
	}
}

// TestHookGatesEverySeam: a failing hook blocks each operation at its
// named point, and the op names are what the crash harness arms.
func TestHookGatesEverySeam(t *testing.T) {
	dir := t.TempDir()
	var deny string
	var seen []string
	hook := func(op, key string) error {
		seen = append(seen, op)
		if op == deny {
			return errors.New("injected")
		}
		return nil
	}
	l, err := Open(dir, Options{Hook: hook})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	deny = OpAppend
	if _, err := l.Publish([]Record{{Subscription: "S"}}); err == nil {
		t.Error("publish survived a denied stream.append")
	}
	deny = ""
	if _, err := l.Publish([]Record{{Subscription: "S"}}); err != nil {
		t.Fatal(err)
	}

	r, err := OpenReader(dir, "c", ReaderOptions{Hook: hook})
	if err != nil {
		t.Fatal(err)
	}
	deny = OpRead
	if _, err := r.Poll(1); err == nil {
		t.Error("poll survived a denied stream.read")
	}
	deny = OpCursorCommit
	if err := r.Commit(); err == nil {
		t.Error("commit survived a denied cursor.commit")
	}
	deny = OpCursorInstall
	if err := r.Commit(); err == nil {
		t.Error("commit survived a denied cursor.commit.install")
	}
	// The install-point failure left a temp file but no install: the
	// committed offset is unchanged.
	if got := r.Committed(); got != 0 {
		t.Errorf("denied commit moved the cursor to %d", got)
	}
	deny = ""
	if err := r.Commit(); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{OpAppend, OpRead, OpCursorCommit, OpCursorInstall} {
		found := false
		for _, op := range seen {
			if op == want {
				found = true
			}
		}
		if !found {
			t.Errorf("op %s never consulted", want)
		}
	}
}

// TestLagsGauge: per-consumer lag reflects commits, the backpressure
// gauge retention and operators read.
func TestLagsGauge(t *testing.T) {
	dir := t.TempDir()
	l := openStream(t, dir, Options{})
	publishN(t, l, 12)
	fast, _ := OpenReader(dir, "fast", ReaderOptions{})
	slow, _ := OpenReader(dir, "slow", ReaderOptions{})
	drain(t, fast)
	if err := fast.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := slow.Poll(3); err != nil {
		t.Fatal(err)
	}
	if err := slow.Commit(); err != nil {
		t.Fatal(err)
	}
	lags, err := l.Lags()
	if err != nil {
		t.Fatal(err)
	}
	if lags["fast"] != 0 || lags["slow"] != 9 {
		t.Errorf("lags = %v, want fast=0 slow=9", lags)
	}
}

// TestTornTailHidesPartialBatch: a torn frame at the active segment's
// tail ends a poll silently (no phantom records), and the writer's next
// Open discards it so appends continue cleanly.
func TestTornTailHidesPartialBatch(t *testing.T) {
	dir := t.TempDir()
	l := openStream(t, dir, Options{})
	publishN(t, l, 3)
	l.Close()

	// Tear the tail: append garbage shorter than a frame header's worth
	// of a real batch.
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("listSegments: %v %v", segs, err)
	}
	active := filepath.Join(dir, wal.SegmentFileName(segs[len(segs)-1].idx))
	f, err := os.OpenFile(active, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x99, 0x01, 0x02}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// A reader over the torn tail sees exactly the intact records.
	r, _ := OpenReader(dir, "c", ReaderOptions{})
	if all := drain(t, r); len(all) != 3 {
		t.Fatalf("reader over torn tail drained %d, want 3", len(all))
	}

	// The writer reopens, truncates the tear, and continues at offset 3.
	l2 := openStream(t, dir, Options{})
	if got := l2.Next(); got != 3 {
		t.Fatalf("reopened Next = %d, want 3", got)
	}
	publishN(t, l2, 1)
	r2, _ := OpenReader(dir, "c2", ReaderOptions{})
	all := drain(t, r2)
	if len(all) != 4 || all[3].Offset != 3 {
		t.Fatalf("after repair: %d records, last offset %d", len(all), all[len(all)-1].Offset)
	}
}

// TestBoundedFetch: Poll never exceeds the reader's MaxFetch cap.
func TestBoundedFetch(t *testing.T) {
	dir := t.TempDir()
	l := openStream(t, dir, Options{})
	publishN(t, l, 50)
	r, _ := OpenReader(dir, "c", ReaderOptions{MaxFetch: 8})
	if recs, err := r.Poll(0); err != nil || len(recs) != 8 {
		t.Fatalf("Poll(0) = %d records, %v; want the 8 cap", len(recs), err)
	}
	if recs, err := r.Poll(100); err != nil || len(recs) != 8 {
		t.Fatalf("Poll(100) = %d records, %v; want the 8 cap", len(recs), err)
	}
	if recs, err := r.Poll(3); err != nil || len(recs) != 3 {
		t.Fatalf("Poll(3) = %d records, %v", len(recs), err)
	}
}
