package stream

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Batch codec: one wal frame (which already carries a length prefix and
// CRC32C) holds one published batch. The payload layout is
//
//	magic   byte   = 'S'
//	version byte   = 1
//	base    uint64 little-endian — offset of the first record
//	count   uint32 little-endian — number of records
//	count × ( length uint32 little-endian ‖ record JSON )
//
// Record offsets are derived (base+i), never stored, so a batch cannot
// claim a gap: offsets are contiguous within a batch by construction,
// and the writer validates contiguity across batches on recovery.

// ErrBadBatch reports a batch payload that cannot have been produced by
// this writer: bad magic/version, a length field pointing outside the
// payload, or trailing bytes after the last record.
var ErrBadBatch = errors.New("stream: malformed batch")

const (
	batchMagic   = 'S'
	batchVersion = 1
	batchHeader  = 1 + 1 + 8 + 4
	// maxBatchRecords bounds the declared record count against absurd
	// headers: each record needs at least its 4-byte length field.
	maxBatchRecords = 1 << 20
)

// appendBatch encodes a batch of already-serialised records onto dst.
func appendBatch(dst []byte, base uint64, recs [][]byte) []byte {
	dst = append(dst, batchMagic, batchVersion)
	dst = binary.LittleEndian.AppendUint64(dst, base)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(recs)))
	for _, rec := range recs {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(rec)))
		dst = append(dst, rec...)
	}
	return dst
}

// decodeBatchHeader reads just the base offset and record count —
// enough for the writer's segment index and continuity checks without
// touching the record bytes. It accepts a header-only prefix; the
// count-versus-payload-size check belongs to decodeBatch, which sees
// the whole payload.
func decodeBatchHeader(payload []byte) (base uint64, count int, err error) {
	if len(payload) < batchHeader {
		return 0, 0, fmt.Errorf("%w: %d-byte payload", ErrBadBatch, len(payload))
	}
	if payload[0] != batchMagic || payload[1] != batchVersion {
		return 0, 0, fmt.Errorf("%w: magic %02x%02x", ErrBadBatch, payload[0], payload[1])
	}
	base = binary.LittleEndian.Uint64(payload[2:10])
	n := binary.LittleEndian.Uint32(payload[10:14])
	if n > maxBatchRecords {
		return 0, 0, fmt.Errorf("%w: implausible record count %d", ErrBadBatch, n)
	}
	if base+uint64(n) < base {
		return 0, 0, fmt.Errorf("%w: offset wrap at base %d", ErrBadBatch, base)
	}
	return base, int(n), nil
}

// decodeBatch validates the full payload and returns the record bytes.
// Every length field must land inside the payload and the records must
// consume it exactly — a batch either decodes whole or not at all.
func decodeBatch(payload []byte) (base uint64, recs [][]byte, err error) {
	base, count, err := decodeBatchHeader(payload)
	if err != nil {
		return 0, nil, err
	}
	if count*4 > len(payload)-batchHeader {
		return 0, nil, fmt.Errorf("%w: record count %d beyond payload", ErrBadBatch, count)
	}
	rest := payload[batchHeader:]
	recs = make([][]byte, 0, count)
	for i := 0; i < count; i++ {
		if len(rest) < 4 {
			return 0, nil, fmt.Errorf("%w: record %d header beyond payload", ErrBadBatch, i)
		}
		n := int(binary.LittleEndian.Uint32(rest[:4]))
		if n > len(rest)-4 {
			return 0, nil, fmt.Errorf("%w: record %d length %d beyond payload", ErrBadBatch, i, n)
		}
		recs = append(recs, rest[4:4+n])
		rest = rest[4+n:]
	}
	if len(rest) != 0 {
		return 0, nil, fmt.Errorf("%w: %d trailing bytes", ErrBadBatch, len(rest))
	}
	return base, recs, nil
}
