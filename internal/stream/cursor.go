package stream

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"xymon/internal/wal"
)

// Cursor is a consumer's durable position in the stream: the offset of
// the next record it has NOT yet consumed. Commit is atomic — temp file
// → fsync → rename → parent-dir fsync — so a crash mid-commit leaves
// either the previous offset or the new one, never a torn value, and
// recovery resumes from the last synced offset: at-least-once, records
// may replay, none are skipped.
//
// One file per consumer under <stream>/cursors/<name>.cur; the payload
// is a wal Binary frame (CRC-checked) holding the offset, so a damaged
// cursor is detected rather than silently resetting a consumer to zero.
type Cursor struct {
	dir    string // the cursors directory
	path   string
	tmp    string
	name   string
	hook   wal.Hook
	offset uint64
}

const (
	cursorDirName = "cursors"
	cursorExt     = ".cur"
)

// validConsumer restricts consumer names to file-name-safe characters.
func validConsumer(name string) bool {
	if name == "" || len(name) > 128 {
		return false
	}
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.':
		default:
			return false
		}
	}
	return !strings.HasPrefix(name, ".")
}

// OpenCursor loads (creating the directory if needed) the named
// consumer's cursor for the stream rooted at streamDir. A leftover
// temp file — a crash before the rename — is discarded: the previous
// committed offset rules. A missing cursor file starts at offset 0.
func OpenCursor(streamDir, consumer string, hook wal.Hook) (*Cursor, error) {
	if !validConsumer(consumer) {
		return nil, fmt.Errorf("stream: invalid consumer name %q", consumer)
	}
	c := &Cursor{
		dir:  filepath.Join(streamDir, cursorDirName),
		name: consumer,
		hook: hook,
	}
	c.path = filepath.Join(c.dir, consumer+cursorExt)
	c.tmp = c.path + ".tmp"
	if err := c.consult(OpRead); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return nil, fmt.Errorf("stream: %w", err)
	}
	if err := os.Remove(c.tmp); err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("stream: %w", err)
	}
	off, ok, err := readCursorFile(c.path)
	if err != nil {
		return nil, err
	}
	if ok {
		c.offset = off
	}
	return c, nil
}

func (c *Cursor) consult(op string) error {
	if c.hook == nil {
		return nil
	}
	return c.hook(op, c.name)
}

// Name returns the consumer name.
func (c *Cursor) Name() string { return c.name }

// Offset returns the last committed offset — the next record the
// consumer has not yet durably consumed.
func (c *Cursor) Offset() uint64 { return c.offset }

// Commit durably records off. The install is atomic (temp → fsync →
// rename → parent-dir fsync): a crash before the rename keeps the
// previous offset, so recovery replays rather than skips.
func (c *Cursor) Commit(off uint64) error {
	if err := c.consult(OpCursorCommit); err != nil {
		return err
	}
	var p [8]byte
	binary.LittleEndian.PutUint64(p[:], off)
	frame, err := wal.Binary{}.AppendFrame(nil, p[:])
	if err != nil {
		return err
	}
	if err := wal.WriteFileSync(c.tmp, frame, 0o644); err != nil {
		return err
	}
	if err := c.consult(OpCursorInstall); err != nil {
		return err
	}
	if err := os.Rename(c.tmp, c.path); err != nil {
		return fmt.Errorf("stream: installing cursor: %w", err)
	}
	if err := wal.SyncDir(c.dir); err != nil {
		return err
	}
	c.offset = off
	return nil
}

// readCursorFile decodes one cursor file. The install is atomic, so a
// present-but-undecodable file is damage, not a crash artifact.
func readCursorFile(path string) (off uint64, ok bool, err error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, fmt.Errorf("stream: %w", err)
	}
	payload, size, err := wal.Binary{}.Next(data)
	if err != nil || size != len(data) || len(payload) != 8 {
		return 0, false, fmt.Errorf("stream: corrupt cursor %s", filepath.Base(path))
	}
	return binary.LittleEndian.Uint64(payload), true, nil
}

// readCursors returns every consumer's committed offset — the input to
// the retention policy. Temp files (uncommitted) are ignored.
func readCursors(streamDir string) (map[string]uint64, error) {
	dir := filepath.Join(streamDir, cursorDirName)
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("stream: %w", err)
	}
	cursors := make(map[string]uint64)
	for _, e := range entries {
		name, found := strings.CutSuffix(e.Name(), cursorExt)
		if !found || e.IsDir() {
			continue
		}
		off, ok, err := readCursorFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		if ok {
			cursors[name] = off
		}
	}
	return cursors, nil
}
