package lex

import (
	"testing"
)

func TestTokens(t *testing.T) {
	src := `subscription MyXyleme % a comment
	select <UpdatedPage url=URL/>
	where URL extends "http://inria.fr/Xy/" and notifications.count > 100`
	toks, err := Tokens(src)
	if err != nil {
		t.Fatalf("Tokens: %v", err)
	}
	var kinds []Kind
	var texts []string
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
		texts = append(texts, tok.Text)
	}
	want := []string{"subscription", "MyXyleme", "select", "<", "UpdatedPage",
		"url", "=", "URL", "/", ">", "where", "URL", "extends",
		"http://inria.fr/Xy/", "and", "notifications", ".", "count", ">", "100"}
	if len(texts) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(texts), texts, len(want))
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, texts[i], want[i])
		}
	}
	if kinds[13] != String {
		t.Errorf("URL literal kind = %v, want String", kinds[13])
	}
	if kinds[19] != Number {
		t.Errorf("100 kind = %v, want Number", kinds[19])
	}
}

func TestCommentToEndOfLine(t *testing.T) {
	toks, err := Tokens("a % everything here is skipped \"even strings\nb")
	if err != nil {
		t.Fatalf("Tokens: %v", err)
	}
	if len(toks) != 2 || toks[0].Text != "a" || toks[1].Text != "b" {
		t.Errorf("tokens = %v", toks)
	}
}

func TestSingleQuotedStrings(t *testing.T) {
	toks, err := Tokens(`'hello world'`)
	if err != nil {
		t.Fatalf("Tokens: %v", err)
	}
	if len(toks) != 1 || toks[0].Kind != String || toks[0].Text != "hello world" {
		t.Errorf("tokens = %v", toks)
	}
}

func TestUnterminatedString(t *testing.T) {
	if _, err := Tokens(`"oops`); err == nil {
		t.Error("unterminated string should error")
	}
}

func TestPositions(t *testing.T) {
	toks, err := Tokens("a\n  b")
	if err != nil {
		t.Fatalf("Tokens: %v", err)
	}
	if toks[0].Line != 1 || toks[0].Col != 1 {
		t.Errorf("a at %d:%d, want 1:1", toks[0].Line, toks[0].Col)
	}
	if toks[1].Line != 2 || toks[1].Col != 3 {
		t.Errorf("b at %d:%d, want 2:3", toks[1].Line, toks[1].Col)
	}
}

func TestIsAndIsSymbol(t *testing.T) {
	toks, _ := Tokens("SELECT =")
	if !toks[0].Is("select") {
		t.Error("Is should be case-insensitive")
	}
	if !toks[1].IsSymbol("=") {
		t.Error("IsSymbol failed")
	}
	if toks[1].Is("select") {
		t.Error("symbols are not keywords")
	}
}

func TestPeekDoesNotConsume(t *testing.T) {
	l := New("x y")
	if l.Peek().Text != "x" || l.Peek().Text != "x" {
		t.Error("Peek should be stable")
	}
	if l.Next().Text != "x" || l.Next().Text != "y" {
		t.Error("Next after Peek skipped a token")
	}
	if l.Next().Kind != EOF {
		t.Error("expected EOF")
	}
}

func TestIdentsWithDashesAndColons(t *testing.T) {
	toks, _ := Tokens("hi-fi xsi:type")
	if len(toks) != 2 || toks[0].Text != "hi-fi" || toks[1].Text != "xsi:type" {
		t.Errorf("tokens = %v", toks)
	}
}
