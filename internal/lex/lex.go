// Package lex provides the tokenizer shared by the subscription language
// parser (internal/sublang) and the query parser (internal/xyquery). The
// concrete syntax follows the paper: keywords are plain identifiers,
// strings are quoted with " or ', and % starts a comment running to the
// end of the line.
package lex

import (
	"fmt"
	"strings"
	"unicode"
)

// Kind classifies a token.
type Kind int

const (
	// EOF marks the end of input.
	EOF Kind = iota
	// Ident is an identifier or keyword (case preserved; keyword matching
	// is case-insensitive and done by the parsers).
	Ident
	// String is a quoted string; Text holds the unquoted value.
	String
	// Number is an unsigned integer literal.
	Number
	// Symbol is a single punctuation character: / , = < > ( ) . !
	Symbol
)

func (k Kind) String() string {
	switch k {
	case EOF:
		return "end of input"
	case Ident:
		return "identifier"
	case String:
		return "string"
	case Number:
		return "number"
	case Symbol:
		return "symbol"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Token is one lexical unit with its position for error reporting.
type Token struct {
	Kind Kind
	Text string
	Line int
	Col  int
}

// Is reports whether the token is the given identifier, compared
// case-insensitively (the paper mixes `select` and `SELECT` styles).
func (t Token) Is(keyword string) bool {
	return t.Kind == Ident && strings.EqualFold(t.Text, keyword)
}

// IsSymbol reports whether the token is the given punctuation.
func (t Token) IsSymbol(s string) bool {
	return t.Kind == Symbol && t.Text == s
}

func (t Token) String() string {
	if t.Kind == EOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.Text)
}

// Error is a lexical or syntax error with position.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("line %d:%d: %s", e.Line, e.Col, e.Msg)
}

// Errorf builds a positioned error from a token.
func Errorf(t Token, format string, args ...any) error {
	return &Error{Line: t.Line, Col: t.Col, Msg: fmt.Sprintf(format, args...)}
}

// Lexer walks the input producing tokens. Use New, then Next/Peek.
type Lexer struct {
	src    []rune
	pos    int
	line   int
	col    int
	peeked *Token
	err    error
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: []rune(src), line: 1, col: 1}
}

// Err returns the first lexical error encountered, if any.
func (l *Lexer) Err() error { return l.err }

// Peek returns the next token without consuming it.
func (l *Lexer) Peek() Token {
	if l.peeked == nil {
		t := l.scan()
		l.peeked = &t
	}
	return *l.peeked
}

// Next consumes and returns the next token.
func (l *Lexer) Next() Token {
	if l.peeked != nil {
		t := *l.peeked
		l.peeked = nil
		return t
	}
	return l.scan()
}

func (l *Lexer) rune() (rune, bool) {
	if l.pos >= len(l.src) {
		return 0, false
	}
	return l.src[l.pos], true
}

func (l *Lexer) advance() {
	if r, ok := l.rune(); ok {
		if r == '\n' {
			l.line++
			l.col = 1
		} else {
			l.col++
		}
		l.pos++
	}
}

func (l *Lexer) skipSpaceAndComments() {
	for {
		r, ok := l.rune()
		if !ok {
			return
		}
		switch {
		case unicode.IsSpace(r):
			l.advance()
		case r == '%':
			for {
				r, ok := l.rune()
				if !ok || r == '\n' {
					break
				}
				l.advance()
			}
		default:
			return
		}
	}
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-' || r == ':'
}

func (l *Lexer) scan() Token {
	l.skipSpaceAndComments()
	line, col := l.line, l.col
	r, ok := l.rune()
	if !ok {
		return Token{Kind: EOF, Line: line, Col: col}
	}
	switch {
	case isIdentStart(r):
		start := l.pos
		for {
			r, ok := l.rune()
			if !ok || !isIdentPart(r) {
				break
			}
			l.advance()
			_ = r
		}
		return Token{Kind: Ident, Text: string(l.src[start:l.pos]), Line: line, Col: col}
	case unicode.IsDigit(r):
		start := l.pos
		for {
			r, ok := l.rune()
			if !ok || !unicode.IsDigit(r) {
				break
			}
			l.advance()
			_ = r
		}
		return Token{Kind: Number, Text: string(l.src[start:l.pos]), Line: line, Col: col}
	case r == '"' || r == '\'':
		quote := r
		l.advance()
		start := l.pos
		for {
			r, ok := l.rune()
			if !ok {
				if l.err == nil {
					l.err = &Error{Line: line, Col: col, Msg: "unterminated string"}
				}
				return Token{Kind: String, Text: string(l.src[start:l.pos]), Line: line, Col: col}
			}
			if r == quote {
				break
			}
			l.advance()
		}
		text := string(l.src[start:l.pos])
		l.advance() // closing quote
		return Token{Kind: String, Text: text, Line: line, Col: col}
	default:
		l.advance()
		return Token{Kind: Symbol, Text: string(r), Line: line, Col: col}
	}
}

// Tokens scans the whole input; for tests.
func Tokens(src string) ([]Token, error) {
	l := New(src)
	var out []Token
	for {
		t := l.Next()
		if t.Kind == EOF {
			break
		}
		out = append(out, t)
	}
	return out, l.Err()
}
