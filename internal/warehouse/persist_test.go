package warehouse

import (
	"os"
	"path/filepath"
	"testing"

	"xymon/internal/xmldom"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, clock := newTestStore()
	s.CommitXML("http://a.example/c.xml", "http://a.example/c.dtd", "shopping",
		xmldom.MustParse(`<catalog><product>radio</product></catalog>`))
	clock.advance(1)
	s.CommitXML("http://a.example/c.xml", "http://a.example/c.dtd", "shopping",
		xmldom.MustParse(`<catalog><product>radio</product><product>tv</product></catalog>`))
	s.CommitHTML("http://a.example/i.html", []byte("<html>hello</html>"))
	if err := s.Save(dir); err != nil {
		t.Fatalf("Save: %v", err)
	}

	s2, _ := newTestStore()
	if err := s2.Load(dir); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if s2.Len() != 2 {
		t.Fatalf("Len = %d", s2.Len())
	}
	e, err := s2.Get("http://a.example/c.xml")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if e.Meta.Version != 2 || e.Meta.Domain != "shopping" || e.Meta.DTDID == 0 {
		t.Errorf("meta = %+v", e.Meta)
	}
	if e.Doc == nil || len(e.Doc.Root.Elements("product")) != 2 {
		t.Errorf("doc = %v", e.Doc)
	}
	// Change detection continues working: an identical commit is unchanged,
	// because the signature was restored.
	r, err := s2.CommitXML("http://a.example/c.xml", "", "",
		xmldom.MustParse(`<catalog><product>radio</product><product>tv</product></catalog>`))
	if err != nil || r.Status != StatusUnchanged {
		t.Errorf("recommit = %+v, %v", r, err)
	}
	// A changed commit yields a delta against the restored version.
	r, err = s2.CommitXML("http://a.example/c.xml", "", "",
		xmldom.MustParse(`<catalog><product>radio</product></catalog>`))
	if err != nil || r.Status != StatusUpdated || r.Delta.Empty() {
		t.Errorf("changed recommit = %+v, %v", r, err)
	}
	// The HTML page kept its signature too.
	rh, _ := s2.CommitHTML("http://a.example/i.html", []byte("<html>hello</html>"))
	if rh.Status != StatusUnchanged {
		t.Errorf("html recommit = %v", rh.Status)
	}
	// DocIDs keep increasing past the snapshot.
	rn, _ := s2.CommitXML("http://a.example/new.xml", "", "", xmldom.MustParse(`<n/>`))
	if rn.Meta.DocID <= e.Meta.DocID {
		t.Errorf("DocID %d not beyond snapshot ids", rn.Meta.DocID)
	}
	// Domain views restored.
	if len(s2.DomainRoots("shopping")) != 1 {
		t.Errorf("domain view not restored")
	}
}

func TestLoadErrors(t *testing.T) {
	dir := t.TempDir()
	s, _ := newTestStore()
	if err := s.Load(dir); err == nil {
		t.Error("Load without manifest should fail")
	}
	os.WriteFile(filepath.Join(dir, "manifest.json"), []byte("not json"), 0o644)
	if err := s.Load(dir); err == nil {
		t.Error("corrupt manifest should fail")
	}
	// Non-empty store rejects Load.
	s.CommitXML("u", "", "", xmldom.MustParse(`<a/>`))
	good, _ := newTestStore()
	good.CommitXML("u2", "", "", xmldom.MustParse(`<b/>`))
	gdir := t.TempDir()
	if err := good.Save(gdir); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if err := s.Load(gdir); err == nil {
		t.Error("Load into non-empty store should fail")
	}
	// Corrupt document file.
	bdir := t.TempDir()
	if err := good.Save(bdir); err != nil {
		t.Fatalf("Save: %v", err)
	}
	entries, _ := os.ReadDir(bdir)
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".xml" {
			os.WriteFile(filepath.Join(bdir, e.Name()), []byte("<broken"), 0o644)
		}
	}
	fresh, _ := newTestStore()
	if err := fresh.Load(bdir); err == nil {
		t.Error("corrupt document should fail")
	}
}
