// Package warehouse is the XML repository and index manager of the
// reproduction — the stand-in for the Natix tree store the paper's system
// uses (Section 2.1). It keeps the current version of every warehoused XML
// document together with its metadata (URL, DOCID, DTD, semantic domain,
// fetch times), a signature for change detection on non-warehoused HTML
// pages, and the chain of deltas linking successive versions, which is the
// basis of the versioning mechanism of Section 5.2.
package warehouse

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"xymon/internal/faults"
	"xymon/internal/xmldom"
	"xymon/internal/xydiff"
)

// DocType tells whether a page is warehoused XML or signature-only HTML.
type DocType int

const (
	// XML documents are stored and monitored at the element level.
	XML DocType = iota
	// HTML documents are not warehoused: only a signature is kept, so the
	// system can detect whether they changed (Section 1).
	HTML
)

func (t DocType) String() string {
	if t == HTML {
		return "html"
	}
	return "xml"
}

// Status classifies a fetch against the stored state of the page.
type Status int

const (
	// StatusNew: the page was never seen before.
	StatusNew Status = iota
	// StatusUpdated: the page changed since the last fetch.
	StatusUpdated
	// StatusUnchanged: the page is identical to the last fetch.
	StatusUnchanged
	// StatusDeleted: the page disappeared from its site.
	StatusDeleted
)

func (s Status) String() string {
	switch s {
	case StatusNew:
		return "new"
	case StatusUpdated:
		return "updated"
	case StatusUnchanged:
		return "unchanged"
	case StatusDeleted:
		return "deleted"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Metadata is what the URL manager knows about a page.
type Metadata struct {
	URL          string
	Filename     string // tail of the URL, e.g. index.html
	DocID        uint64
	DTD          string // DTD URL for XML documents
	DTDID        uint64
	Domain       string // semantic domain (e.g. biology, culture)
	Type         DocType
	LastAccessed time.Time
	LastUpdate   time.Time
	Version      int
	Signature    [sha256.Size]byte
}

// Entry is a warehoused page: metadata plus, for XML, the current DOM and
// the delta history.
type Entry struct {
	Meta Metadata
	Doc  *xmldom.Document // current version; nil for HTML
	// Base is the oldest retained version; Deltas[i] turns it i steps
	// forward, so Base + all Deltas = Doc. This is exactly the XyDelta
	// versioning scheme: old versions are reconstructed on demand.
	Base   *xmldom.Document
	Deltas []*xydiff.Delta
	// rawSig is the signature of the serialized bytes the current version
	// was committed from; CommitXMLBytes short-circuits an identical
	// refetch before parsing. Only valid while rawOK — a commit through
	// the DOM path clears it. Never persisted: after recovery the first
	// refetch of each page pays one parse, then the fast path resumes.
	rawSig [sha256.Size]byte
	rawOK  bool
	// structHash is the structural subtree hash of the current version's
	// root — what xmldom.StreamHasher computes for any serialization of
	// the tree. Recorded inside the same critical section as the commit,
	// like rawSig, so a structural-hash hit can never pair with a
	// superseded version. Unlike rawSig it survives DOM-path commits: it
	// is a function of the tree, not of the bytes it arrived in.
	structHash uint64
	structOK   bool
}

// CommitResult reports what a commit did.
type CommitResult struct {
	Status Status
	Meta   Metadata
	// Old is the previous version (nil when Status is New); only for XML.
	Old *xmldom.Document
	// Doc is the stored current version, with XIDs propagated from Old.
	Doc *xmldom.Document
	// Delta is the change from Old to Doc (nil unless Status is Updated).
	Delta *xydiff.Delta
}

// ErrUnknownURL is returned when a page has never been stored.
var ErrUnknownURL = errors.New("warehouse: unknown URL")

// Store is the repository. It is safe for concurrent use.
type Store struct {
	mu         sync.RWMutex
	pages      map[string]*Entry
	domains    map[string]map[string]bool // domain -> set of URLs
	dtdIDs     map[string]uint64
	nextDoc    uint64
	nextDTD    uint64
	clock      func() time.Time
	faults     *faults.Injector
	alwaysDiff bool

	// Tiered ingest counters (see Stats). Atomic: bumped outside the
	// commit lock so the fast paths stay fast.
	statRawSig     atomic.Uint64
	statStructHash atomic.Uint64
	statParsed     atomic.Uint64
	statDiffed     atomic.Uint64
}

// Stats is a snapshot of the tiered ingest counters: how many XML byte
// commits were resolved at each tier of the change-detection cascade.
type Stats struct {
	// SkippedRawSig counts tier-1 hits: byte-identical refetches resolved
	// by one SHA-256, no tokenize.
	SkippedRawSig uint64
	// SkippedStructHash counts tier-2 hits: byte-different but
	// structurally identical refetches resolved by one streaming
	// tokenize+hash pass, no DOM build.
	SkippedStructHash uint64
	// Parsed counts full ParseBytes DOM builds (both tiers missed).
	Parsed uint64
	// Diffed counts xydiff runs — commits whose canonical form actually
	// differed from the stored version.
	Diffed uint64
}

// Stats returns a snapshot of the tiered ingest counters.
func (s *Store) Stats() Stats {
	return Stats{
		SkippedRawSig:     s.statRawSig.Load(),
		SkippedStructHash: s.statStructHash.Load(),
		Parsed:            s.statParsed.Load(),
		Diffed:            s.statDiffed.Load(),
	}
}

// Option configures a Store.
type Option func(*Store)

// WithClock substitutes the time source; tests and the simulated crawler
// use a virtual clock.
func WithClock(clock func() time.Time) Option {
	return func(s *Store) { s.clock = clock }
}

// WithAlwaysDiff disables the raw-signature and structural-hash unchanged
// fast paths: every byte commit pays the full parse and canonical-form
// comparison. This is the benchmark baseline the tiered path is measured
// against; it is not meant for production stores.
func WithAlwaysDiff() Option {
	return func(s *Store) { s.alwaysDiff = true }
}

// WithInjector installs a fault injector consulted at the store's
// durability seam (faults.PointSave, fired in Save between the fsynced
// temp manifest and the rename that installs it). A nil injector keeps
// the seam transparent.
func WithInjector(in *faults.Injector) Option {
	return func(s *Store) { s.faults = in }
}

// NewStore returns an empty repository.
func NewStore(opts ...Option) *Store {
	s := &Store{
		pages:   make(map[string]*Entry),
		domains: make(map[string]map[string]bool),
		dtdIDs:  make(map[string]uint64),
		nextDoc: 1,
		nextDTD: 1,
		clock:   time.Now,
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Filename extracts the tail of a URL: the paper's `filename = string`
// condition matches it (e.g. index.html).
func Filename(url string) string {
	if i := strings.LastIndex(url, "/"); i >= 0 {
		return url[i+1:]
	}
	return url
}

// Signature hashes raw page content for HTML-style change detection.
func Signature(content []byte) [sha256.Size]byte {
	return sha256.Sum256(content)
}

// CommitXML stores a fetched XML document. It detects the change status
// against the previous version, computes the delta for updates (labelling
// doc's nodes with persistent XIDs), bumps the version and updates all
// metadata. The dtd and domain describe the document class; they may be
// empty.
func (s *Store) CommitXML(url, dtd, domain string, doc *xmldom.Document) (*CommitResult, error) {
	return s.commitXML(url, dtd, domain, doc, nil, nil)
}

// streamHasherPool recycles streaming hashers across commits; a pooled
// hasher retains its scratch, so the tier-2 probe does not allocate.
var streamHasherPool = sync.Pool{New: func() any { return new(xmldom.StreamHasher) }}

// CommitXMLBytes parses serialized XML with xmldom.ParseBytes and stores
// it like CommitXML, after running the refetch through a two-tier
// unchanged cascade:
//
//	tier 1 — raw signature: byte-identical to the stored version's bytes;
//	         resolved by one SHA-256, no tokenize.
//	tier 2 — structural hash: byte-different but structurally identical
//	         (whitespace reflow, re-quoted attributes, re-encoded
//	         entities); resolved by one streaming tokenize+hash pass
//	         (xmldom.StreamHasher), no DOM build, no diff.
//
// Only when both tiers miss does the commit pay ParseBytes — and then the
// streaming pass's top-level hash frontier is carried into the diff as a
// precomputed agreement mask, trimming the aligner to the region that
// actually changed.
func (s *Store) CommitXMLBytes(url, dtd, domain string, data []byte) (*CommitResult, error) {
	rawSig := Signature(data)
	now := s.clock()
	s.mu.Lock()
	e, tracked := s.pages[url]
	if tracked && !s.alwaysDiff && e.rawOK && e.rawSig == rawSig {
		e.Meta.LastAccessed = now
		res := &CommitResult{Status: StatusUnchanged, Meta: e.Meta, Old: e.Doc, Doc: e.Doc}
		s.mu.Unlock()
		s.statRawSig.Add(1)
		return res, nil
	}
	probe := tracked && !s.alwaysDiff && e.structOK
	s.mu.Unlock()

	// Tier 2: hash the bytes without building a DOM. The stream hash is a
	// pure function of data, so it is computed outside the lock; the
	// comparison — and the pairing of result metadata with the version
	// that matched — happens inside one critical section, mirroring the
	// rawSig discipline above.
	var topHashes []uint64
	if probe {
		sh := streamHasherPool.Get().(*xmldom.StreamHasher)
		root, frontier, err := sh.Sum(data, 1)
		if err == nil {
			s.mu.Lock()
			if e, ok := s.pages[url]; ok && !s.alwaysDiff && e.structOK && e.structHash == root {
				e.Meta.LastAccessed = now
				// Refresh tier 1 for this serialization: the next refetch
				// of these exact bytes is one SHA-256 again.
				e.rawSig, e.rawOK = rawSig, true
				res := &CommitResult{Status: StatusUnchanged, Meta: e.Meta, Old: e.Doc, Doc: e.Doc}
				s.mu.Unlock()
				streamHasherPool.Put(sh)
				s.statStructHash.Add(1)
				return res, nil
			}
			s.mu.Unlock()
			// The root differs: keep the depth-1 frontier. commitXML turns
			// it into a diff mask against the stored version under the
			// commit lock.
			for _, f := range frontier {
				if f.Depth == 1 {
					topHashes = append(topHashes, f.Hash)
				}
			}
		}
		// On a stream error, fall through: ParseBytes reports the
		// authoritative parse error for these bytes.
		streamHasherPool.Put(sh)
	}

	doc, err := xmldom.ParseBytes(data)
	if err != nil {
		return nil, fmt.Errorf("warehouse: %s: %w", url, err)
	}
	s.statParsed.Add(1)
	return s.commitXML(url, dtd, domain, doc, &rawSig, topHashes)
}

// topMask builds the top-level agreement mask for the diff: the longest
// common prefix and suffix of the stored version's root-children subtree
// hashes against the streaming frontier of the incoming bytes. DiffMasked
// re-verifies the claimed runs against its own hash vectors, so a
// frontier that raced with a superseding commit costs a fallback to the
// plain aligner, never a wrong delta.
func topMask(old *xmldom.Document, topHashes []uint64) *xydiff.Mask {
	oc := old.Root.Children
	n := len(oc)
	if len(topHashes) < n {
		n = len(topHashes)
	}
	oh := old.Hashes()
	pre := 0
	for pre < n && oh.Of(oc[pre]) == topHashes[pre] {
		pre++
	}
	suf := 0
	for suf < n-pre && oh.Of(oc[len(oc)-1-suf]) == topHashes[len(topHashes)-1-suf] {
		suf++
	}
	if pre == 0 && suf == 0 {
		return nil
	}
	return &xydiff.Mask{Prefix: pre, Suffix: suf}
}

// commitXML is the shared commit body. rawSig, when non-nil, is the
// signature of the serialized bytes doc was parsed from; it is recorded
// on the entry inside the same critical section as the commit, so the
// fast path can never pair a stale byte signature with a newer document.
// topHashes, when non-empty, is the depth-1 streaming hash frontier of
// those bytes, turned into a diff mask against the stored version.
func (s *Store) commitXML(url, dtd, domain string, doc *xmldom.Document, rawSig *[sha256.Size]byte, topHashes []uint64) (*CommitResult, error) {
	if doc == nil || doc.Root == nil {
		return nil, errors.New("warehouse: empty document")
	}
	sig := Signature([]byte(doc.XML()))
	now := s.clock()

	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.pages[url]
	if ok {
		if rawSig != nil {
			e.rawSig, e.rawOK = *rawSig, true
		} else {
			e.rawOK = false
		}
	}
	if !ok {
		meta := Metadata{
			URL:          url,
			Filename:     Filename(url),
			DocID:        s.nextDoc,
			DTD:          dtd,
			DTDID:        s.dtdIDLocked(dtd),
			Domain:       domain,
			Type:         XML,
			LastAccessed: now,
			LastUpdate:   now,
			Version:      1,
			Signature:    sig,
		}
		s.nextDoc++
		e = &Entry{Meta: meta, Doc: doc, Base: doc.Clone()}
		if rawSig != nil {
			e.rawSig, e.rawOK = *rawSig, true
		}
		s.pages[url] = e
		s.indexDomainLocked(domain, url)
		// Prime the structural hash vector under the commit lock: the next
		// version's Diff then hashes only its own tree — and its root hash
		// becomes the tier-2 reference for the next refetch.
		e.structHash, e.structOK = doc.Hashes().Of(doc.Root), true
		return &CommitResult{Status: StatusNew, Meta: meta, Doc: doc}, nil
	}
	e.Meta.LastAccessed = now
	if e.Meta.Signature == sig {
		return &CommitResult{Status: StatusUnchanged, Meta: e.Meta, Old: e.Doc, Doc: e.Doc}, nil
	}
	old := e.Doc
	var mask *xydiff.Mask
	if len(topHashes) > 0 && old != nil && old.Root != nil {
		mask = topMask(old, topHashes)
	}
	s.statDiffed.Add(1)
	delta, err := xydiff.DiffMasked(old, doc, mask)
	if err != nil {
		// Unrelated root: treat as a wholesale replacement. The old
		// version chain ends; a fresh one starts.
		e.Doc = doc
		e.Base = doc.Clone()
		e.Deltas = nil
		e.structHash, e.structOK = doc.Hashes().Of(doc.Root), true
		old.InvalidateHashes()
		e.Meta.Signature = sig
		e.Meta.LastUpdate = now
		e.Meta.Version++
		return &CommitResult{Status: StatusUpdated, Meta: e.Meta, Old: old, Doc: doc}, nil
	}
	e.Doc = doc
	e.Deltas = append(e.Deltas, delta)
	// doc's vector was computed (and cached) by Diff; the superseded
	// version's vector is recycled — no later Diff can involve it.
	e.structHash, e.structOK = doc.Hashes().Of(doc.Root), true
	old.InvalidateHashes()
	e.Meta.Signature = sig
	e.Meta.LastUpdate = now
	e.Meta.Version++
	if dtd != "" && dtd != e.Meta.DTD {
		e.Meta.DTD = dtd
		e.Meta.DTDID = s.dtdIDLocked(dtd)
	}
	if domain != "" && domain != e.Meta.Domain {
		s.unindexDomainLocked(e.Meta.Domain, url)
		e.Meta.Domain = domain
		s.indexDomainLocked(domain, url)
	}
	return &CommitResult{Status: StatusUpdated, Meta: e.Meta, Old: old, Doc: doc, Delta: delta}, nil
}

// CommitHTML records a fetched HTML page: only its signature is kept, so
// the result status is New, Updated or Unchanged.
func (s *Store) CommitHTML(url string, content []byte) (*CommitResult, error) {
	sig := Signature(content)
	now := s.clock()
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.pages[url]
	if !ok {
		meta := Metadata{
			URL:          url,
			Filename:     Filename(url),
			DocID:        s.nextDoc,
			Type:         HTML,
			LastAccessed: now,
			LastUpdate:   now,
			Version:      1,
			Signature:    sig,
		}
		s.nextDoc++
		s.pages[url] = &Entry{Meta: meta}
		return &CommitResult{Status: StatusNew, Meta: meta}, nil
	}
	e.Meta.LastAccessed = now
	if e.Meta.Signature == sig {
		return &CommitResult{Status: StatusUnchanged, Meta: e.Meta}, nil
	}
	e.Meta.Signature = sig
	e.Meta.LastUpdate = now
	e.Meta.Version++
	return &CommitResult{Status: StatusUpdated, Meta: e.Meta}, nil
}

// Delete removes a page, returning its last state with StatusDeleted.
func (s *Store) Delete(url string) (*CommitResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.pages[url]
	if !ok {
		return nil, ErrUnknownURL
	}
	delete(s.pages, url)
	s.unindexDomainLocked(e.Meta.Domain, url)
	return &CommitResult{Status: StatusDeleted, Meta: e.Meta, Old: e.Doc, Doc: e.Doc}, nil
}

// Tracked reports whether the URL has a stored entry — whether the page
// is version-tracked. The crawler's ingest gate uses it: a tracked page
// is always parsed and committed, so its version chain stays complete.
func (s *Store) Tracked(url string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.pages[url]
	return ok
}

// Get returns the entry for a URL.
func (s *Store) Get(url string) (*Entry, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.pages[url]
	if !ok {
		return nil, ErrUnknownURL
	}
	return e, nil
}

// Len returns the number of stored pages.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.pages)
}

// DomainRoots returns the root elements of every XML document classified
// in the given domain — the integrated view continuous queries run over.
func (s *Store) DomainRoots(domain string) []*xmldom.Node {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var roots []*xmldom.Node
	for url := range s.domains[domain] {
		if e := s.pages[url]; e != nil && e.Doc != nil {
			roots = append(roots, e.Doc.Root)
		}
	}
	return roots
}

// AllRoots returns the root elements of every warehoused XML document.
func (s *Store) AllRoots() []*xmldom.Node {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var roots []*xmldom.Node
	for _, e := range s.pages {
		if e.Doc != nil {
			roots = append(roots, e.Doc.Root)
		}
	}
	return roots
}

// VersionAt reconstructs version v (1-based) of a document by replaying
// the delta chain from the first stored version. The current version is
// returned directly.
func (s *Store) VersionAt(url string, v int) (*xmldom.Document, error) {
	s.mu.RLock()
	e, ok := s.pages[url]
	s.mu.RUnlock()
	if !ok {
		return nil, ErrUnknownURL
	}
	if e.Doc == nil {
		return nil, fmt.Errorf("warehouse: %s is not a warehoused XML page", url)
	}
	if v < 1 || v > e.Meta.Version {
		return nil, fmt.Errorf("warehouse: version %d of %s does not exist (current %d)", v, url, e.Meta.Version)
	}
	if v == e.Meta.Version {
		return e.Doc, nil
	}
	// Replay the delta chain forward from the oldest retained version.
	// When a wholesale replacement reset the chain, versions before the
	// reset are gone.
	base := e.Meta.Version - len(e.Deltas)
	if v < base {
		return nil, fmt.Errorf("warehouse: version %d of %s predates the retained history", v, url)
	}
	doc := e.Base
	for i := 0; i < v-base; i++ {
		next, err := xydiff.Apply(doc, e.Deltas[i])
		if err != nil {
			return nil, fmt.Errorf("warehouse: replaying version chain of %s: %w", url, err)
		}
		doc = next
	}
	if doc == e.Base {
		doc = e.Base.Clone()
	}
	return doc, nil
}

// DTDID returns the stable identifier of a DTD URL, allocating one if
// needed.
func (s *Store) DTDID(dtd string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dtdIDLocked(dtd)
}

func (s *Store) dtdIDLocked(dtd string) uint64 {
	if dtd == "" {
		return 0
	}
	if id, ok := s.dtdIDs[dtd]; ok {
		return id
	}
	id := s.nextDTD
	s.nextDTD++
	s.dtdIDs[dtd] = id
	return id
}

func (s *Store) indexDomainLocked(domain, url string) {
	if domain == "" {
		return
	}
	set := s.domains[domain]
	if set == nil {
		set = make(map[string]bool)
		s.domains[domain] = set
	}
	set[url] = true
}

func (s *Store) unindexDomainLocked(domain, url string) {
	if set := s.domains[domain]; set != nil {
		delete(set, url)
		if len(set) == 0 {
			delete(s.domains, domain)
		}
	}
}
