// Package warehouse is the XML repository and index manager of the
// reproduction — the stand-in for the Natix tree store the paper's system
// uses (Section 2.1). It keeps the current version of every warehoused XML
// document together with its metadata (URL, DOCID, DTD, semantic domain,
// fetch times), a signature for change detection on non-warehoused HTML
// pages, and the chain of deltas linking successive versions, which is the
// basis of the versioning mechanism of Section 5.2.
package warehouse

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"xymon/internal/faults"
	"xymon/internal/xmldom"
	"xymon/internal/xydiff"
)

// DocType tells whether a page is warehoused XML or signature-only HTML.
type DocType int

const (
	// XML documents are stored and monitored at the element level.
	XML DocType = iota
	// HTML documents are not warehoused: only a signature is kept, so the
	// system can detect whether they changed (Section 1).
	HTML
)

func (t DocType) String() string {
	if t == HTML {
		return "html"
	}
	return "xml"
}

// Status classifies a fetch against the stored state of the page.
type Status int

const (
	// StatusNew: the page was never seen before.
	StatusNew Status = iota
	// StatusUpdated: the page changed since the last fetch.
	StatusUpdated
	// StatusUnchanged: the page is identical to the last fetch.
	StatusUnchanged
	// StatusDeleted: the page disappeared from its site.
	StatusDeleted
)

func (s Status) String() string {
	switch s {
	case StatusNew:
		return "new"
	case StatusUpdated:
		return "updated"
	case StatusUnchanged:
		return "unchanged"
	case StatusDeleted:
		return "deleted"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Metadata is what the URL manager knows about a page.
type Metadata struct {
	URL          string
	Filename     string // tail of the URL, e.g. index.html
	DocID        uint64
	DTD          string // DTD URL for XML documents
	DTDID        uint64
	Domain       string // semantic domain (e.g. biology, culture)
	Type         DocType
	LastAccessed time.Time
	LastUpdate   time.Time
	Version      int
	Signature    [sha256.Size]byte
}

// Entry is a warehoused page: metadata plus, for XML, the current DOM and
// the delta history.
type Entry struct {
	Meta Metadata
	Doc  *xmldom.Document // current version; nil for HTML
	// Base is the oldest retained version; Deltas[i] turns it i steps
	// forward, so Base + all Deltas = Doc. This is exactly the XyDelta
	// versioning scheme: old versions are reconstructed on demand.
	Base   *xmldom.Document
	Deltas []*xydiff.Delta
	// rawSig is the signature of the serialized bytes the current version
	// was committed from; CommitXMLBytes short-circuits an identical
	// refetch before parsing. Only valid while rawOK — a commit through
	// the DOM path clears it. Never persisted: after recovery the first
	// refetch of each page pays one parse, then the fast path resumes.
	rawSig [sha256.Size]byte
	rawOK  bool
}

// CommitResult reports what a commit did.
type CommitResult struct {
	Status Status
	Meta   Metadata
	// Old is the previous version (nil when Status is New); only for XML.
	Old *xmldom.Document
	// Doc is the stored current version, with XIDs propagated from Old.
	Doc *xmldom.Document
	// Delta is the change from Old to Doc (nil unless Status is Updated).
	Delta *xydiff.Delta
}

// ErrUnknownURL is returned when a page has never been stored.
var ErrUnknownURL = errors.New("warehouse: unknown URL")

// Store is the repository. It is safe for concurrent use.
type Store struct {
	mu      sync.RWMutex
	pages   map[string]*Entry
	domains map[string]map[string]bool // domain -> set of URLs
	dtdIDs  map[string]uint64
	nextDoc uint64
	nextDTD uint64
	clock   func() time.Time
	faults  *faults.Injector
}

// Option configures a Store.
type Option func(*Store)

// WithClock substitutes the time source; tests and the simulated crawler
// use a virtual clock.
func WithClock(clock func() time.Time) Option {
	return func(s *Store) { s.clock = clock }
}

// WithInjector installs a fault injector consulted at the store's
// durability seam (faults.PointSave, fired in Save between the fsynced
// temp manifest and the rename that installs it). A nil injector keeps
// the seam transparent.
func WithInjector(in *faults.Injector) Option {
	return func(s *Store) { s.faults = in }
}

// NewStore returns an empty repository.
func NewStore(opts ...Option) *Store {
	s := &Store{
		pages:   make(map[string]*Entry),
		domains: make(map[string]map[string]bool),
		dtdIDs:  make(map[string]uint64),
		nextDoc: 1,
		nextDTD: 1,
		clock:   time.Now,
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Filename extracts the tail of a URL: the paper's `filename = string`
// condition matches it (e.g. index.html).
func Filename(url string) string {
	if i := strings.LastIndex(url, "/"); i >= 0 {
		return url[i+1:]
	}
	return url
}

// Signature hashes raw page content for HTML-style change detection.
func Signature(content []byte) [sha256.Size]byte {
	return sha256.Sum256(content)
}

// CommitXML stores a fetched XML document. It detects the change status
// against the previous version, computes the delta for updates (labelling
// doc's nodes with persistent XIDs), bumps the version and updates all
// metadata. The dtd and domain describe the document class; they may be
// empty.
func (s *Store) CommitXML(url, dtd, domain string, doc *xmldom.Document) (*CommitResult, error) {
	return s.commitXML(url, dtd, domain, doc, nil)
}

// CommitXMLBytes parses serialized XML with xmldom.ParseBytes and stores
// it like CommitXML. When the previous version of the page came through
// this path and the bytes are identical, the unchanged result is
// returned without parsing at all — the crawler's refetch of a page that
// did not change costs one signature.
func (s *Store) CommitXMLBytes(url, dtd, domain string, data []byte) (*CommitResult, error) {
	rawSig := Signature(data)
	now := s.clock()
	s.mu.Lock()
	if e, ok := s.pages[url]; ok && e.rawOK && e.rawSig == rawSig {
		e.Meta.LastAccessed = now
		res := &CommitResult{Status: StatusUnchanged, Meta: e.Meta, Old: e.Doc, Doc: e.Doc}
		s.mu.Unlock()
		return res, nil
	}
	s.mu.Unlock()
	doc, err := xmldom.ParseBytes(data)
	if err != nil {
		return nil, fmt.Errorf("warehouse: %s: %w", url, err)
	}
	return s.commitXML(url, dtd, domain, doc, &rawSig)
}

// commitXML is the shared commit body. rawSig, when non-nil, is the
// signature of the serialized bytes doc was parsed from; it is recorded
// on the entry inside the same critical section as the commit, so the
// fast path can never pair a stale byte signature with a newer document.
func (s *Store) commitXML(url, dtd, domain string, doc *xmldom.Document, rawSig *[sha256.Size]byte) (*CommitResult, error) {
	if doc == nil || doc.Root == nil {
		return nil, errors.New("warehouse: empty document")
	}
	sig := Signature([]byte(doc.XML()))
	now := s.clock()

	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.pages[url]
	if ok {
		if rawSig != nil {
			e.rawSig, e.rawOK = *rawSig, true
		} else {
			e.rawOK = false
		}
	}
	if !ok {
		meta := Metadata{
			URL:          url,
			Filename:     Filename(url),
			DocID:        s.nextDoc,
			DTD:          dtd,
			DTDID:        s.dtdIDLocked(dtd),
			Domain:       domain,
			Type:         XML,
			LastAccessed: now,
			LastUpdate:   now,
			Version:      1,
			Signature:    sig,
		}
		s.nextDoc++
		e = &Entry{Meta: meta, Doc: doc, Base: doc.Clone()}
		if rawSig != nil {
			e.rawSig, e.rawOK = *rawSig, true
		}
		s.pages[url] = e
		s.indexDomainLocked(domain, url)
		// Prime the structural hash vector under the commit lock: the next
		// version's Diff then hashes only its own tree.
		doc.Hashes()
		return &CommitResult{Status: StatusNew, Meta: meta, Doc: doc}, nil
	}
	e.Meta.LastAccessed = now
	if e.Meta.Signature == sig {
		return &CommitResult{Status: StatusUnchanged, Meta: e.Meta, Old: e.Doc, Doc: e.Doc}, nil
	}
	old := e.Doc
	delta, err := xydiff.Diff(old, doc)
	if err != nil {
		// Unrelated root: treat as a wholesale replacement. The old
		// version chain ends; a fresh one starts.
		e.Doc = doc
		e.Base = doc.Clone()
		e.Deltas = nil
		doc.Hashes()
		old.InvalidateHashes()
		e.Meta.Signature = sig
		e.Meta.LastUpdate = now
		e.Meta.Version++
		return &CommitResult{Status: StatusUpdated, Meta: e.Meta, Old: old, Doc: doc}, nil
	}
	e.Doc = doc
	e.Deltas = append(e.Deltas, delta)
	// doc's vector was computed (and cached) by Diff; the superseded
	// version's vector is recycled — no later Diff can involve it.
	old.InvalidateHashes()
	e.Meta.Signature = sig
	e.Meta.LastUpdate = now
	e.Meta.Version++
	if dtd != "" && dtd != e.Meta.DTD {
		e.Meta.DTD = dtd
		e.Meta.DTDID = s.dtdIDLocked(dtd)
	}
	if domain != "" && domain != e.Meta.Domain {
		s.unindexDomainLocked(e.Meta.Domain, url)
		e.Meta.Domain = domain
		s.indexDomainLocked(domain, url)
	}
	return &CommitResult{Status: StatusUpdated, Meta: e.Meta, Old: old, Doc: doc, Delta: delta}, nil
}

// CommitHTML records a fetched HTML page: only its signature is kept, so
// the result status is New, Updated or Unchanged.
func (s *Store) CommitHTML(url string, content []byte) (*CommitResult, error) {
	sig := Signature(content)
	now := s.clock()
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.pages[url]
	if !ok {
		meta := Metadata{
			URL:          url,
			Filename:     Filename(url),
			DocID:        s.nextDoc,
			Type:         HTML,
			LastAccessed: now,
			LastUpdate:   now,
			Version:      1,
			Signature:    sig,
		}
		s.nextDoc++
		s.pages[url] = &Entry{Meta: meta}
		return &CommitResult{Status: StatusNew, Meta: meta}, nil
	}
	e.Meta.LastAccessed = now
	if e.Meta.Signature == sig {
		return &CommitResult{Status: StatusUnchanged, Meta: e.Meta}, nil
	}
	e.Meta.Signature = sig
	e.Meta.LastUpdate = now
	e.Meta.Version++
	return &CommitResult{Status: StatusUpdated, Meta: e.Meta}, nil
}

// Delete removes a page, returning its last state with StatusDeleted.
func (s *Store) Delete(url string) (*CommitResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.pages[url]
	if !ok {
		return nil, ErrUnknownURL
	}
	delete(s.pages, url)
	s.unindexDomainLocked(e.Meta.Domain, url)
	return &CommitResult{Status: StatusDeleted, Meta: e.Meta, Old: e.Doc, Doc: e.Doc}, nil
}

// Tracked reports whether the URL has a stored entry — whether the page
// is version-tracked. The crawler's ingest gate uses it: a tracked page
// is always parsed and committed, so its version chain stays complete.
func (s *Store) Tracked(url string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.pages[url]
	return ok
}

// Get returns the entry for a URL.
func (s *Store) Get(url string) (*Entry, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.pages[url]
	if !ok {
		return nil, ErrUnknownURL
	}
	return e, nil
}

// Len returns the number of stored pages.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.pages)
}

// DomainRoots returns the root elements of every XML document classified
// in the given domain — the integrated view continuous queries run over.
func (s *Store) DomainRoots(domain string) []*xmldom.Node {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var roots []*xmldom.Node
	for url := range s.domains[domain] {
		if e := s.pages[url]; e != nil && e.Doc != nil {
			roots = append(roots, e.Doc.Root)
		}
	}
	return roots
}

// AllRoots returns the root elements of every warehoused XML document.
func (s *Store) AllRoots() []*xmldom.Node {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var roots []*xmldom.Node
	for _, e := range s.pages {
		if e.Doc != nil {
			roots = append(roots, e.Doc.Root)
		}
	}
	return roots
}

// VersionAt reconstructs version v (1-based) of a document by replaying
// the delta chain from the first stored version. The current version is
// returned directly.
func (s *Store) VersionAt(url string, v int) (*xmldom.Document, error) {
	s.mu.RLock()
	e, ok := s.pages[url]
	s.mu.RUnlock()
	if !ok {
		return nil, ErrUnknownURL
	}
	if e.Doc == nil {
		return nil, fmt.Errorf("warehouse: %s is not a warehoused XML page", url)
	}
	if v < 1 || v > e.Meta.Version {
		return nil, fmt.Errorf("warehouse: version %d of %s does not exist (current %d)", v, url, e.Meta.Version)
	}
	if v == e.Meta.Version {
		return e.Doc, nil
	}
	// Replay the delta chain forward from the oldest retained version.
	// When a wholesale replacement reset the chain, versions before the
	// reset are gone.
	base := e.Meta.Version - len(e.Deltas)
	if v < base {
		return nil, fmt.Errorf("warehouse: version %d of %s predates the retained history", v, url)
	}
	doc := e.Base
	for i := 0; i < v-base; i++ {
		next, err := xydiff.Apply(doc, e.Deltas[i])
		if err != nil {
			return nil, fmt.Errorf("warehouse: replaying version chain of %s: %w", url, err)
		}
		doc = next
	}
	if doc == e.Base {
		doc = e.Base.Clone()
	}
	return doc, nil
}

// DTDID returns the stable identifier of a DTD URL, allocating one if
// needed.
func (s *Store) DTDID(dtd string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dtdIDLocked(dtd)
}

func (s *Store) dtdIDLocked(dtd string) uint64 {
	if dtd == "" {
		return 0
	}
	if id, ok := s.dtdIDs[dtd]; ok {
		return id
	}
	id := s.nextDTD
	s.nextDTD++
	s.dtdIDs[dtd] = id
	return id
}

func (s *Store) indexDomainLocked(domain, url string) {
	if domain == "" {
		return
	}
	set := s.domains[domain]
	if set == nil {
		set = make(map[string]bool)
		s.domains[domain] = set
	}
	set[url] = true
}

func (s *Store) unindexDomainLocked(domain, url string) {
	if set := s.domains[domain]; set != nil {
		delete(set, url)
		if len(set) == 0 {
			delete(s.domains, domain)
		}
	}
}
