package warehouse

import (
	"crypto/sha256"
	"fmt"
	"sync"
	"testing"

	"xymon/internal/xmldom"
)

// canonSig is the canonical-form signature commitXML records in Metadata.
func canonSig(t *testing.T, data []byte) [sha256.Size]byte {
	t.Helper()
	d, err := xmldom.ParseBytes(data)
	if err != nil {
		t.Fatalf("ParseBytes: %v", err)
	}
	return Signature([]byte(d.XML()))
}

// TestCommitXMLBytesTiering walks one page through the full cascade and
// checks each tier resolves where it should, with the counters to match.
func TestCommitXMLBytesTiering(t *testing.T) {
	s, _ := newTestStore()
	url := "http://shop.example/cat.xml"
	v1 := []byte(`<catalog><product id="p0"><name>radio</name></product><product id="p1"><name>tv</name></product></catalog>`)
	v1ws := []byte("<catalog>\n  <product id=\"p0\">\n    <name>radio</name>\n  </product>\n  <product id='p1'><name>tv</name></product>\n</catalog>")
	v2 := []byte(`<catalog><product id="p0"><name>radio</name></product><product id="p1"><name>sonar</name></product></catalog>`)

	r, err := s.CommitXMLBytes(url, "", "shopping", v1)
	if err != nil || r.Status != StatusNew {
		t.Fatalf("first commit: %v %v", r, err)
	}
	if got := s.Stats(); got != (Stats{Parsed: 1}) {
		t.Fatalf("after new: stats %+v", got)
	}

	// Tier 1: byte-identical.
	r, err = s.CommitXMLBytes(url, "", "shopping", v1)
	if err != nil || r.Status != StatusUnchanged {
		t.Fatalf("identical refetch: %v %v", r, err)
	}
	if got := s.Stats(); got != (Stats{SkippedRawSig: 1, Parsed: 1}) {
		t.Fatalf("after tier-1: stats %+v", got)
	}

	// Tier 2: byte-different, structurally identical — no parse.
	r, err = s.CommitXMLBytes(url, "", "shopping", v1ws)
	if err != nil || r.Status != StatusUnchanged {
		t.Fatalf("perturbed refetch: %v %v", r, err)
	}
	if got := s.Stats(); got != (Stats{SkippedRawSig: 1, SkippedStructHash: 1, Parsed: 1}) {
		t.Fatalf("after tier-2: stats %+v", got)
	}
	if r.Meta.Version != 1 {
		t.Fatalf("unchanged refetch bumped version to %d", r.Meta.Version)
	}

	// A tier-2 hit refreshes the raw signature: the same perturbed bytes
	// now resolve at tier 1.
	r, err = s.CommitXMLBytes(url, "", "shopping", v1ws)
	if err != nil || r.Status != StatusUnchanged {
		t.Fatalf("perturbed re-refetch: %v %v", r, err)
	}
	if got := s.Stats(); got != (Stats{SkippedRawSig: 2, SkippedStructHash: 1, Parsed: 1}) {
		t.Fatalf("after tier-1 refresh: stats %+v", got)
	}

	// A real change falls through to parse + diff.
	r, err = s.CommitXMLBytes(url, "", "shopping", v2)
	if err != nil || r.Status != StatusUpdated {
		t.Fatalf("real change: %v %v", r, err)
	}
	if got := s.Stats(); got != (Stats{SkippedRawSig: 2, SkippedStructHash: 1, Parsed: 2, Diffed: 1}) {
		t.Fatalf("after update: stats %+v", got)
	}
	if r.Meta.Version != 2 {
		t.Fatalf("update version = %d", r.Meta.Version)
	}
	// The masked diff narrowed to the one changed product.
	if r.Delta == nil || len(r.Delta.Ops) == 0 {
		t.Fatal("update produced no delta")
	}
}

// TestCommitXMLBytesMaskedUpdate: a byte-different refetch that perturbs
// whitespace AND edits one middle child must come out as a normal update
// with a delta that reconstructs the new version — the masked-diff path.
func TestCommitXMLBytesMaskedUpdate(t *testing.T) {
	s, _ := newTestStore()
	url := "http://shop.example/wide.xml"
	mk := func(mid string, ws bool) []byte {
		sep := ""
		if ws {
			sep = "\n  "
		}
		out := "<catalog>" + sep
		for i := 0; i < 9; i++ {
			name := fmt.Sprintf("item%d", i)
			if i == 4 {
				name = mid
			}
			out += fmt.Sprintf("<product id=\"p%d\"><name>%s</name></product>%s", i, name, sep)
		}
		return []byte(out + "</catalog>")
	}
	if _, err := s.CommitXMLBytes(url, "", "", mk("item4", false)); err != nil {
		t.Fatal(err)
	}
	r, err := s.CommitXMLBytes(url, "", "", mk("edited", true))
	if err != nil || r.Status != StatusUpdated {
		t.Fatalf("masked update: %v %v", r, err)
	}
	if r.Doc.XML() != string(mustCanon(t, mk("edited", false))) {
		t.Fatalf("stored version diverged: %s", r.Doc.XML())
	}
	if got := s.Stats(); got.Diffed != 1 || got.SkippedStructHash != 0 {
		t.Fatalf("stats %+v", got)
	}
}

func mustCanon(t *testing.T, data []byte) []byte {
	t.Helper()
	d, err := xmldom.ParseBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	return []byte(d.XML())
}

// TestAlwaysDiffDisablesTiers: the benchmark baseline pays a full parse
// on every refetch, even byte-identical ones.
func TestAlwaysDiffDisablesTiers(t *testing.T) {
	c := &fakeClock{}
	s := NewStore(WithClock(c.now), WithAlwaysDiff())
	url := "http://shop.example/base.xml"
	v1 := []byte(`<c><p>x</p></c>`)
	v1ws := []byte("<c>\n<p>x</p>\n</c>")
	for i, data := range [][]byte{v1, v1, v1ws} {
		r, err := s.CommitXMLBytes(url, "", "", data)
		if err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
		want := StatusUnchanged
		if i == 0 {
			want = StatusNew
		}
		if r.Status != want {
			t.Fatalf("commit %d: status %v, want %v", i, r.Status, want)
		}
	}
	got := s.Stats()
	if got.SkippedRawSig != 0 || got.SkippedStructHash != 0 {
		t.Fatalf("baseline store skipped: %+v", got)
	}
	if got.Parsed != 3 {
		t.Fatalf("baseline store parsed %d times, want 3", got.Parsed)
	}
}

// TestConcurrentStructHashNoStalePairing hammers one URL with
// semantically-identical-to-v1 refetches while a writer flips the stored
// version between v1 and v2. Run under -race. The invariant under test is
// the commit-lock discipline: whenever the structural-hash tier reports
// Unchanged, the metadata it returns belongs to the version whose hash
// matched (v1) — never to a superseding v2 that landed in between.
func TestConcurrentStructHashNoStalePairing(t *testing.T) {
	s, _ := newTestStore()
	url := "http://conc.example/tier.xml"
	v1 := []byte(`<c><p id="a"><n>one</n></p><p id="b"><n>two</n></p></c>`)
	v1ws := []byte("<c>\n  <p id=\"a\"><n>one</n></p>\n  <p id='b'><n>two</n></p>\n</c>")
	v2 := []byte(`<c><p id="a"><n>one</n></p><p id="b"><n>CHANGED</n></p></c>`)
	sig1 := canonSig(t, v1)
	sig2 := canonSig(t, v2)
	if sig1 == sig2 || canonSig(t, v1ws) != sig1 {
		t.Fatal("test misconfigured: fixtures must share canonical form")
	}
	if _, err := s.CommitXMLBytes(url, "", "", v1); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < 300; i++ {
			data := v2
			if i%2 == 1 {
				data = v1
			}
			if _, err := s.CommitXMLBytes(url, "", "", data); err != nil {
				t.Errorf("writer: %v", err)
				return
			}
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := s.CommitXMLBytes(url, "", "", v1ws)
				if err != nil {
					t.Errorf("refetcher: %v", err)
					return
				}
				if res.Status == StatusUnchanged && res.Meta.Signature != sig1 {
					t.Errorf("struct-hash hit paired with a superseded version: signature %x", res.Meta.Signature[:8])
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := s.Stats(); got.SkippedStructHash == 0 {
		t.Log("note: no tier-2 hits occurred in this run (all refetches raced with writes)")
	}
}
