package warehouse

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"xymon/internal/faults"
	"xymon/internal/wal"
	"xymon/internal/xmldom"
)

// The paper's repository (Natix) is persistent storage; this file gives
// the in-memory stand-in durable snapshots: Save writes every page's
// current version and metadata to a directory, Load restores them. Delta
// chains are not persisted — history restarts at the snapshot, exactly as
// a fresh version chain does after a wholesale replacement.

// manifestEntry is the serialised metadata of one page.
type manifestEntry struct {
	URL          string    `json:"url"`
	Filename     string    `json:"filename"`
	DocID        uint64    `json:"docid"`
	DTD          string    `json:"dtd,omitempty"`
	DTDID        uint64    `json:"dtdid,omitempty"`
	Domain       string    `json:"domain,omitempty"`
	Type         string    `json:"type"`
	LastAccessed time.Time `json:"last_accessed"`
	LastUpdate   time.Time `json:"last_update"`
	Version      int       `json:"version"`
	Signature    string    `json:"signature"`
	// File is the snapshot file holding the current XML version (empty
	// for HTML pages, which keep only their signature).
	File string `json:"file,omitempty"`
}

type manifest struct {
	NextDoc uint64            `json:"next_doc"`
	NextDTD uint64            `json:"next_dtd"`
	DTDs    map[string]uint64 `json:"dtds,omitempty"`
	Pages   []manifestEntry   `json:"pages"`
}

// Save writes a snapshot of the store into dir (created if needed). The
// snapshot holds every page's metadata and, for XML pages, the current
// version as an XML file.
func (s *Store) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("warehouse: %w", err)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	man := manifest{
		NextDoc: s.nextDoc,
		NextDTD: s.nextDTD,
		DTDs:    s.dtdIDs,
	}
	i := 0
	for _, e := range s.pages {
		entry := manifestEntry{
			URL:          e.Meta.URL,
			Filename:     e.Meta.Filename,
			DocID:        e.Meta.DocID,
			DTD:          e.Meta.DTD,
			DTDID:        e.Meta.DTDID,
			Domain:       e.Meta.Domain,
			Type:         e.Meta.Type.String(),
			LastAccessed: e.Meta.LastAccessed,
			LastUpdate:   e.Meta.LastUpdate,
			Version:      e.Meta.Version,
			Signature:    hex.EncodeToString(e.Meta.Signature[:]),
		}
		if e.Doc != nil {
			entry.File = fmt.Sprintf("doc%06d.xml", i)
			i++
			path := filepath.Join(dir, entry.File)
			if err := os.WriteFile(path, []byte(e.Doc.XML()), 0o644); err != nil {
				return fmt.Errorf("warehouse: %w", err)
			}
		}
		man.Pages = append(man.Pages, entry)
	}
	raw, err := json.MarshalIndent(&man, "", "  ")
	if err != nil {
		return fmt.Errorf("warehouse: %w", err)
	}
	// The manifest commits the snapshot, so it installs atomically and
	// durably: temp file → fsync → rename → parent-dir fsync. Without the
	// directory sync a crash right after Save can lose the rename itself.
	tmp := filepath.Join(dir, "manifest.json.tmp")
	if err := wal.WriteFileSync(tmp, raw, 0o644); err != nil {
		return fmt.Errorf("warehouse: %w", err)
	}
	// The fault seam sits in the torn-install window: the temp manifest
	// is durable but not yet renamed into place, so a crash injected here
	// must leave the previous snapshot intact and loadable.
	if err := s.faults.Check(faults.PointSave, dir); err != nil {
		return fmt.Errorf("warehouse: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, "manifest.json")); err != nil {
		return fmt.Errorf("warehouse: %w", err)
	}
	return wal.SyncDir(dir)
}

// Load restores a snapshot written by Save into an empty store. Loading
// into a non-empty store is rejected.
func (s *Store) Load(dir string) error {
	raw, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return fmt.Errorf("warehouse: %w", err)
	}
	var man manifest
	if err := json.Unmarshal(raw, &man); err != nil {
		return fmt.Errorf("warehouse: corrupt manifest: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.pages) != 0 {
		return fmt.Errorf("warehouse: Load requires an empty store")
	}
	for _, entry := range man.Pages {
		meta := Metadata{
			URL:          entry.URL,
			Filename:     entry.Filename,
			DocID:        entry.DocID,
			DTD:          entry.DTD,
			DTDID:        entry.DTDID,
			Domain:       entry.Domain,
			LastAccessed: entry.LastAccessed,
			LastUpdate:   entry.LastUpdate,
			Version:      entry.Version,
		}
		if entry.Type == "html" {
			meta.Type = HTML
		}
		sig, err := hex.DecodeString(entry.Signature)
		if err != nil || len(sig) != len(meta.Signature) {
			return fmt.Errorf("warehouse: bad signature for %s", entry.URL)
		}
		copy(meta.Signature[:], sig)
		e := &Entry{Meta: meta}
		if entry.File != "" {
			raw, err := os.ReadFile(filepath.Join(dir, entry.File))
			if err != nil {
				return fmt.Errorf("warehouse: %w", err)
			}
			doc, err := xmldom.ParseString(string(raw))
			if err != nil {
				return fmt.Errorf("warehouse: corrupt document %s: %w", entry.File, err)
			}
			e.Doc = doc
			e.Base = doc.Clone()
		}
		s.pages[entry.URL] = e
		s.indexDomainLocked(meta.Domain, entry.URL)
	}
	if man.NextDoc > s.nextDoc {
		s.nextDoc = man.NextDoc
	}
	if man.NextDTD > s.nextDTD {
		s.nextDTD = man.NextDTD
	}
	for dtd, id := range man.DTDs {
		s.dtdIDs[dtd] = id
	}
	return nil
}
