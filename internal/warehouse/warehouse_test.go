package warehouse

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"xymon/internal/xmldom"
)

type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time { return c.t }
func (c *fakeClock) advance(d time.Duration) {
	c.t = c.t.Add(d)
}

func newTestStore() (*Store, *fakeClock) {
	c := &fakeClock{t: time.Date(2001, 5, 21, 9, 0, 0, 0, time.UTC)}
	return NewStore(WithClock(c.now)), c
}

func TestCommitXMLNewUpdatedUnchanged(t *testing.T) {
	s, clock := newTestStore()
	doc1 := xmldom.MustParse(`<catalog><product>radio</product></catalog>`)
	r, err := s.CommitXML("http://shop.example/cat.xml", "http://shop.example/cat.dtd", "shopping", doc1)
	if err != nil {
		t.Fatalf("CommitXML: %v", err)
	}
	if r.Status != StatusNew || r.Meta.DocID == 0 || r.Meta.Version != 1 {
		t.Errorf("first commit = %+v", r)
	}
	if r.Meta.Filename != "cat.xml" {
		t.Errorf("Filename = %q", r.Meta.Filename)
	}
	firstUpdate := r.Meta.LastUpdate

	clock.advance(time.Hour)
	same := xmldom.MustParse(`<catalog><product>radio</product></catalog>`)
	r, err = s.CommitXML("http://shop.example/cat.xml", "", "", same)
	if err != nil {
		t.Fatalf("CommitXML: %v", err)
	}
	if r.Status != StatusUnchanged || r.Meta.Version != 1 {
		t.Errorf("unchanged commit = %+v", r)
	}
	if !r.Meta.LastUpdate.Equal(firstUpdate) {
		t.Error("LastUpdate must not move on unchanged commit")
	}
	if !r.Meta.LastAccessed.After(firstUpdate) {
		t.Error("LastAccessed must move on every fetch")
	}

	clock.advance(time.Hour)
	changed := xmldom.MustParse(`<catalog><product>radio</product><product>tv</product></catalog>`)
	r, err = s.CommitXML("http://shop.example/cat.xml", "", "", changed)
	if err != nil {
		t.Fatalf("CommitXML: %v", err)
	}
	if r.Status != StatusUpdated || r.Meta.Version != 2 {
		t.Errorf("updated commit = %+v", r)
	}
	if r.Delta.Empty() {
		t.Error("update must carry a delta")
	}
	if r.Old == nil || r.Old.Root.Size() >= r.Doc.Root.Size() {
		t.Error("Old must be the previous smaller version")
	}
}

func TestCommitXMLRejectsEmpty(t *testing.T) {
	s, _ := newTestStore()
	if _, err := s.CommitXML("u", "", "", nil); err == nil {
		t.Error("nil document should be rejected")
	}
}

func TestCommitHTML(t *testing.T) {
	s, _ := newTestStore()
	r, err := s.CommitHTML("http://x/index.html", []byte("<html>v1</html>"))
	if err != nil || r.Status != StatusNew {
		t.Fatalf("first = %+v, %v", r, err)
	}
	if r.Meta.Type != HTML {
		t.Errorf("Type = %v, want HTML", r.Meta.Type)
	}
	r, _ = s.CommitHTML("http://x/index.html", []byte("<html>v1</html>"))
	if r.Status != StatusUnchanged {
		t.Errorf("second = %v, want unchanged", r.Status)
	}
	r, _ = s.CommitHTML("http://x/index.html", []byte("<html>v2</html>"))
	if r.Status != StatusUpdated || r.Meta.Version != 2 {
		t.Errorf("third = %+v", r)
	}
}

func TestDelete(t *testing.T) {
	s, _ := newTestStore()
	s.CommitXML("u1", "", "d", xmldom.MustParse(`<a/>`))
	r, err := s.Delete("u1")
	if err != nil || r.Status != StatusDeleted {
		t.Fatalf("Delete = %+v, %v", r, err)
	}
	if _, err := s.Get("u1"); err != ErrUnknownURL {
		t.Errorf("Get after delete = %v, want ErrUnknownURL", err)
	}
	if _, err := s.Delete("u1"); err != ErrUnknownURL {
		t.Errorf("double Delete = %v", err)
	}
	if got := s.DomainRoots("d"); len(got) != 0 {
		t.Errorf("domain index kept deleted page")
	}
}

func TestDomainRoots(t *testing.T) {
	s, _ := newTestStore()
	s.CommitXML("u1", "", "culture", xmldom.MustParse(`<culture><museum/></culture>`))
	s.CommitXML("u2", "", "culture", xmldom.MustParse(`<culture><museum/></culture>`))
	s.CommitXML("u3", "", "biology", xmldom.MustParse(`<bio/>`))
	s.CommitHTML("u4", []byte("x"))
	if got := len(s.DomainRoots("culture")); got != 2 {
		t.Errorf("culture roots = %d, want 2", got)
	}
	if got := len(s.DomainRoots("biology")); got != 1 {
		t.Errorf("biology roots = %d, want 1", got)
	}
	if got := len(s.AllRoots()); got != 3 {
		t.Errorf("all roots = %d, want 3", got)
	}
	if s.Len() != 4 {
		t.Errorf("Len = %d, want 4", s.Len())
	}
}

func TestDomainReclassification(t *testing.T) {
	s, _ := newTestStore()
	s.CommitXML("u1", "", "culture", xmldom.MustParse(`<c><x>1</x></c>`))
	s.CommitXML("u1", "", "biology", xmldom.MustParse(`<c><x>2</x></c>`))
	if got := len(s.DomainRoots("culture")); got != 0 {
		t.Errorf("culture roots = %d, want 0 after reclassification", got)
	}
	if got := len(s.DomainRoots("biology")); got != 1 {
		t.Errorf("biology roots = %d, want 1", got)
	}
}

func TestDTDIDStable(t *testing.T) {
	s, _ := newTestStore()
	a := s.DTDID("http://x/a.dtd")
	b := s.DTDID("http://x/b.dtd")
	if a == b || a == 0 || b == 0 {
		t.Errorf("DTDIDs = %d, %d", a, b)
	}
	if s.DTDID("http://x/a.dtd") != a {
		t.Error("DTDID must be stable")
	}
	if s.DTDID("") != 0 {
		t.Error("empty DTD has id 0")
	}
}

func TestVersionAtReplaysHistory(t *testing.T) {
	s, _ := newTestStore()
	versions := []string{
		`<cat><p>a</p></cat>`,
		`<cat><p>a</p><p>b</p></cat>`,
		`<cat><p>a2</p><p>b</p><p>c</p></cat>`,
	}
	for _, v := range versions {
		if _, err := s.CommitXML("u", "", "", xmldom.MustParse(v)); err != nil {
			t.Fatalf("CommitXML: %v", err)
		}
	}
	for i, want := range versions {
		doc, err := s.VersionAt("u", i+1)
		if err != nil {
			t.Fatalf("VersionAt(%d): %v", i+1, err)
		}
		wantDoc := xmldom.MustParse(want)
		if doc.XML() != wantDoc.XML() {
			t.Errorf("VersionAt(%d) = %s, want %s", i+1, doc.XML(), wantDoc.XML())
		}
	}
	if _, err := s.VersionAt("u", 0); err == nil {
		t.Error("VersionAt(0) should fail")
	}
	if _, err := s.VersionAt("u", 4); err == nil {
		t.Error("VersionAt(4) should fail")
	}
	if _, err := s.VersionAt("nope", 1); err != ErrUnknownURL {
		t.Errorf("VersionAt(unknown) = %v", err)
	}
}

func TestVersionAtHTMLFails(t *testing.T) {
	s, _ := newTestStore()
	s.CommitHTML("h", []byte("x"))
	if _, err := s.VersionAt("h", 1); err == nil {
		t.Error("VersionAt on HTML should fail")
	}
}

func TestWholesaleReplacementResetsChain(t *testing.T) {
	s, _ := newTestStore()
	s.CommitXML("u", "", "", xmldom.MustParse(`<a><x>1</x></a>`))
	r, err := s.CommitXML("u", "", "", xmldom.MustParse(`<b><y>2</y></b>`))
	if err != nil {
		t.Fatalf("CommitXML: %v", err)
	}
	if r.Status != StatusUpdated || r.Meta.Version != 2 {
		t.Errorf("replacement = %+v", r)
	}
	if r.Delta != nil {
		t.Error("wholesale replacement has no delta")
	}
	if _, err := s.VersionAt("u", 1); err == nil {
		t.Error("version before a replacement should be unavailable")
	}
	if doc, err := s.VersionAt("u", 2); err != nil || doc.Root.Tag != "b" {
		t.Errorf("VersionAt(2) = %v, %v", doc, err)
	}
}

func TestFilename(t *testing.T) {
	cases := map[string]string{
		"http://a/b/c.xml": "c.xml",
		"http://a/":        "",
		"plain":            "plain",
	}
	for in, want := range cases {
		if got := Filename(in); got != want {
			t.Errorf("Filename(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestConcurrentCommits exercises the store's locking: concurrent commits
// to disjoint URLs plus readers on the domain views. Run with -race.
func TestConcurrentCommits(t *testing.T) {
	s, _ := newTestStore()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			url := fmt.Sprintf("http://conc.example/p%d.xml", g)
			for v := 0; v < 40; v++ {
				doc := xmldom.MustParse(fmt.Sprintf("<d><v>%d</v></d>", v))
				if _, err := s.CommitXML(url, "", "load", doc); err != nil {
					t.Errorf("CommitXML: %v", err)
					return
				}
				s.DomainRoots("load")
				s.AllRoots()
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 8 {
		t.Errorf("Len = %d", s.Len())
	}
	for g := 0; g < 8; g++ {
		e, err := s.Get(fmt.Sprintf("http://conc.example/p%d.xml", g))
		if err != nil || e.Meta.Version != 40 {
			t.Errorf("page %d: version %d, err %v", g, e.Meta.Version, err)
		}
	}
}

// TestVersionChainDepth replays a long version chain.
func TestVersionChainDepth(t *testing.T) {
	s, _ := newTestStore()
	const versions = 50
	for v := 1; v <= versions; v++ {
		doc := xmldom.MustParse(fmt.Sprintf("<d><v>%d</v></d>", v))
		if _, err := s.CommitXML("u", "", "", doc); err != nil {
			t.Fatalf("CommitXML: %v", err)
		}
	}
	for _, v := range []int{1, 25, 50} {
		doc, err := s.VersionAt("u", v)
		if err != nil {
			t.Fatalf("VersionAt(%d): %v", v, err)
		}
		if want := fmt.Sprintf("<d><v>%d</v></d>", v); doc.XML() != want {
			t.Errorf("VersionAt(%d) = %s", v, doc.XML())
		}
	}
}
