// Package semantic reproduces the semantic module of the Xyleme
// architecture (Figure 1 and Section 2.1): it classifies XML resources
// into semantic domains. In Xyleme, data distribution and the integrated
// per-domain views both rest on "an automatic semantic classification of
// all DTDs"; here each domain is described by a prototype vocabulary of
// element tags, and documents (or DTDs, represented by their tag sets)
// are assigned to the closest domain by weighted cosine similarity over
// tag frequencies. The `domain = "biology"` atomic condition and the
// per-domain continuous-query views consume the assignment.
package semantic

import (
	"math"
	"sort"
	"strings"
	"sync"

	"xymon/internal/xmldom"
)

// Classifier assigns documents to semantic domains. Safe for concurrent
// use; domains can be added while classification runs.
type Classifier struct {
	mu      sync.RWMutex
	domains map[string]map[string]float64 // domain -> tag -> weight
	// MinScore is the similarity below which a document stays
	// unclassified (empty domain).
	MinScore float64
}

// NewClassifier returns a classifier with no domains and the default
// similarity threshold.
func NewClassifier() *Classifier {
	return &Classifier{
		domains:  make(map[string]map[string]float64),
		MinScore: 0.1,
	}
}

// AddDomain registers (or extends) a domain described by typical element
// tags. Repeating a tag raises its weight.
func (c *Classifier) AddDomain(name string, tags ...string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	proto := c.domains[name]
	if proto == nil {
		proto = make(map[string]float64)
		c.domains[name] = proto
	}
	for _, t := range tags {
		proto[strings.ToLower(t)]++
	}
}

// RemoveDomain drops a domain.
func (c *Classifier) RemoveDomain(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.domains, name)
}

// Domains lists the registered domain names, sorted.
func (c *Classifier) Domains() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.domains))
	for name := range c.domains {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// TagProfile extracts the tag-frequency vector of a document.
func TagProfile(doc *xmldom.Document) map[string]float64 {
	profile := make(map[string]float64)
	if doc == nil || doc.Root == nil {
		return profile
	}
	doc.Root.PreOrder(func(n *xmldom.Node) bool {
		if n.Type == xmldom.ElementNode {
			profile[strings.ToLower(n.Tag)]++
		}
		return true
	})
	return profile
}

// Classify returns the best-matching domain for a document and the cosine
// similarity score. An empty domain means no domain reached MinScore.
func (c *Classifier) Classify(doc *xmldom.Document) (string, float64) {
	return c.classifyProfile(TagProfile(doc))
}

// ClassifyTags classifies a raw tag set — the form a DTD takes when only
// its element declarations are known.
func (c *Classifier) ClassifyTags(tags []string) (string, float64) {
	profile := make(map[string]float64, len(tags))
	for _, t := range tags {
		profile[strings.ToLower(t)]++
	}
	return c.classifyProfile(profile)
}

func (c *Classifier) classifyProfile(profile map[string]float64) (string, float64) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	bestName := ""
	bestScore := 0.0
	// Deterministic tie-break: iterate names in sorted order.
	names := make([]string, 0, len(c.domains))
	for name := range c.domains {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		score := cosine(profile, c.domains[name])
		if score > bestScore {
			bestName, bestScore = name, score
		}
	}
	if bestScore < c.MinScore {
		return "", bestScore
	}
	return bestName, bestScore
}

func cosine(a, b map[string]float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	var dot, na, nb float64
	for k, va := range a {
		na += va * va
		if vb, ok := b[k]; ok {
			dot += va * vb
		}
	}
	for _, vb := range b {
		nb += vb * vb
	}
	if dot == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// Train folds an already-classified document into its domain's prototype,
// so the classification sharpens as the warehouse grows (the paper's
// classification is automatic and evolves with the DTD population).
func (c *Classifier) Train(domain string, doc *xmldom.Document) {
	profile := TagProfile(doc)
	c.mu.Lock()
	defer c.mu.Unlock()
	proto := c.domains[domain]
	if proto == nil {
		proto = make(map[string]float64)
		c.domains[domain] = proto
	}
	for tag, n := range profile {
		proto[tag] += n
	}
}
