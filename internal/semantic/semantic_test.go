package semantic

import (
	"testing"

	"xymon/internal/xmldom"
)

func trained() *Classifier {
	c := NewClassifier()
	c.AddDomain("shopping", "catalog", "product", "price", "name", "category")
	c.AddDomain("culture", "museum", "painting", "title", "address", "artist")
	c.AddDomain("biology", "genome", "protein", "sequence", "organism")
	return c
}

func TestClassifyDocuments(t *testing.T) {
	c := trained()
	cases := []struct {
		xml  string
		want string
	}{
		{`<catalog><product><name>x</name><price>1</price></product></catalog>`, "shopping"},
		{`<culture><museum><painting><title>x</title></painting></museum></culture>`, "culture"},
		{`<genome><protein><sequence>MKV</sequence></protein></genome>`, "biology"},
	}
	for _, cse := range cases {
		got, score := c.Classify(xmldom.MustParse(cse.xml))
		if got != cse.want {
			t.Errorf("Classify(%s) = %q (%.2f), want %q", cse.xml, got, score, cse.want)
		}
		if score <= 0 || score > 1 {
			t.Errorf("score = %v out of range", score)
		}
	}
}

func TestClassifyUnknownStaysUnclassified(t *testing.T) {
	c := trained()
	got, score := c.Classify(xmldom.MustParse(`<weather><forecast>rain</forecast></weather>`))
	if got != "" {
		t.Errorf("Classify = %q (%.2f), want unclassified", got, score)
	}
}

func TestClassifyTags(t *testing.T) {
	c := trained()
	got, _ := c.ClassifyTags([]string{"museum", "painting", "artist"})
	if got != "culture" {
		t.Errorf("ClassifyTags = %q", got)
	}
	if got, _ := c.ClassifyTags(nil); got != "" {
		t.Errorf("ClassifyTags(nil) = %q", got)
	}
}

func TestCaseInsensitive(t *testing.T) {
	c := NewClassifier()
	c.AddDomain("shopping", "Catalog", "Product")
	got, _ := c.Classify(xmldom.MustParse(`<CATALOG><PRODUCT>x</PRODUCT></CATALOG>`))
	if got != "shopping" {
		t.Errorf("Classify = %q", got)
	}
}

func TestTrainSharpensClassification(t *testing.T) {
	c := NewClassifier()
	c.AddDomain("shopping", "catalog")
	c.AddDomain("culture", "collection")
	// An ambiguous document with tags from neither prototype.
	doc := xmldom.MustParse(`<catalog><offer><deal>x</deal></offer></catalog>`)
	before, _ := c.Classify(doc)
	if before != "shopping" {
		t.Fatalf("before = %q", before)
	}
	// Training on similar documents raises the score.
	_, scoreBefore := c.Classify(doc)
	c.Train("shopping", xmldom.MustParse(`<catalog><offer><deal>y</deal></offer></catalog>`))
	after, scoreAfter := c.Classify(doc)
	if after != "shopping" || scoreAfter <= scoreBefore {
		t.Errorf("after training: %q %.2f (before %.2f)", after, scoreAfter, scoreBefore)
	}
}

func TestDomainsAndRemove(t *testing.T) {
	c := trained()
	if got := c.Domains(); len(got) != 3 || got[0] != "biology" {
		t.Errorf("Domains = %v", got)
	}
	c.RemoveDomain("biology")
	if got := c.Domains(); len(got) != 2 {
		t.Errorf("Domains after remove = %v", got)
	}
	got, _ := c.Classify(xmldom.MustParse(`<genome><protein>x</protein></genome>`))
	if got != "" {
		t.Errorf("removed domain still classifies: %q", got)
	}
}

func TestTagProfile(t *testing.T) {
	p := TagProfile(xmldom.MustParse(`<a><b/><b/><c>t</c></a>`))
	if p["a"] != 1 || p["b"] != 2 || p["c"] != 1 {
		t.Errorf("profile = %v", p)
	}
	if len(TagProfile(nil)) != 0 {
		t.Error("nil doc should give empty profile")
	}
}
