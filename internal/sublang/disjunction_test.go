package sublang

import "testing"

// TestDisjunctionDesugaring covers the DNF compilation of disjunctive
// where clauses (the Section 7 extension): each disjunct becomes its own
// monitoring query sharing the select clause, hence the same label.
func TestDisjunctionDesugaring(t *testing.T) {
	sub, err := Parse(`subscription D
monitoring
select <Hit url=URL/>
where URL extends "http://a.example/" and modified self
   or URL extends "http://b.example/" and new self
   or filename = "index.xml"
report when immediate`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(sub.Monitoring) != 3 {
		t.Fatalf("Monitoring = %d, want 3 disjuncts", len(sub.Monitoring))
	}
	for i, m := range sub.Monitoring {
		if m.Label() != "Hit" {
			t.Errorf("disjunct %d label = %q, want shared Hit", i, m.Label())
		}
	}
	if len(sub.Monitoring[0].Where) != 2 || len(sub.Monitoring[1].Where) != 2 || len(sub.Monitoring[2].Where) != 1 {
		t.Errorf("conjunction sizes: %d %d %d",
			len(sub.Monitoring[0].Where), len(sub.Monitoring[1].Where), len(sub.Monitoring[2].Where))
	}
	if sub.Monitoring[1].Where[1].Kind != CondSelfChange || sub.Monitoring[1].Where[1].Change != OpNew {
		t.Errorf("second disjunct = %+v", sub.Monitoring[1].Where)
	}
}

func TestDisjunctionEachDisjunctNeedsStrongCondition(t *testing.T) {
	_, err := Parse(`subscription D
monitoring
select <Hit/>
where URL extends "http://a.example/" or modified self
report when immediate`)
	if err == nil {
		t.Fatal("weak-only disjunct must be rejected")
	}
}

func TestDisjunctionSharesFromBindings(t *testing.T) {
	sub, err := Parse(`subscription D
monitoring
select X
from self//Member X
where new X and URL extends "http://a.example/"
   or new X and URL extends "http://b.example/"
report when immediate`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(sub.Monitoring) != 2 {
		t.Fatalf("Monitoring = %d", len(sub.Monitoring))
	}
	for i, m := range sub.Monitoring {
		if len(m.From) != 1 || m.From[0].Var != "X" {
			t.Errorf("disjunct %d from = %+v", i, m.From)
		}
		if m.Where[0].Tag != "Member" {
			t.Errorf("disjunct %d: var not resolved: %+v", i, m.Where[0])
		}
	}
}
