package sublang

import (
	"errors"
	"fmt"
	"strings"

	"xymon/internal/xmldom"
	"xymon/internal/xyquery"
)

// stopwords are words too common to monitor with `contains`: Section 5.4
// rejects such subscriptions a priori because every crawled document would
// raise the corresponding atomic event.
var stopwords = map[string]bool{
	"the": true, "a": true, "an": true, "of": true, "and": true,
	"or": true, "to": true, "in": true, "is": true, "it": true,
	"le": true, "la": true, "les": true, "de": true, "et": true,
}

// ValidationError describes why a subscription was rejected.
type ValidationError struct {
	Subscription string
	Msg          string
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("subscription %s: %s", e.Subscription, e.Msg)
}

func (s *Subscription) fail(format string, args ...any) error {
	return &ValidationError{Subscription: s.Name, Msg: fmt.Sprintf(format, args...)}
}

// Validate applies the static checks of Sections 5.1 and 5.4: the
// weak/strong event rule, variable scoping, and the resource-control
// restrictions (no stopword `contains`, no trivially-broad URL prefixes).
// It also resolves variable references in element conditions to their
// tags. Parse calls it automatically.
func Validate(s *Subscription) error {
	if s.Name == "" {
		return errors.New("sublang: subscription has no name")
	}
	if len(s.Monitoring) == 0 && len(s.Continuous) == 0 && len(s.Virtual) == 0 {
		return s.fail("must contain at least one monitoring, continuous or virtual query")
	}
	labels := map[string]bool{}
	for i, m := range s.Monitoring {
		if err := s.validateMonitoring(i, m); err != nil {
			return err
		}
		labels[m.Label()] = true
	}
	seen := map[string]bool{}
	for _, c := range s.Continuous {
		if c.Name == "" {
			return s.fail("continuous query has no name")
		}
		if seen[c.Name] {
			return s.fail("duplicate continuous query name %q", c.Name)
		}
		seen[c.Name] = true
		if c.When.Freq == 0 && c.When.NotifQuery == "" {
			return s.fail("continuous query %q has no trigger", c.Name)
		}
		// A notification trigger referencing this same subscription must
		// name one of its monitoring labels.
		if c.When.NotifSub == s.Name && !labels[c.When.NotifQuery] {
			return s.fail("continuous query %q triggers on unknown notification %s.%s",
				c.Name, c.When.NotifSub, c.When.NotifQuery)
		}
	}
	if s.Report != nil {
		if len(s.Report.When) == 0 {
			return s.fail("report needs a when clause")
		}
		for _, term := range s.Report.When {
			if term.Kind == TermTagCount && term.Tag == "" {
				return s.fail("report term needs a notification label")
			}
		}
	}
	for _, r := range s.Refresh {
		if r.URL == "" {
			return s.fail("refresh statement needs a URL")
		}
		if r.Freq == 0 {
			return s.fail("refresh statement needs a frequency")
		}
	}
	for _, v := range s.Virtual {
		if v.Subscription == "" || v.Query == "" {
			return s.fail("virtual reference needs Subscription.Query")
		}
	}
	return nil
}

func (s *Subscription) validateMonitoring(i int, m *MonitoringQuery) error {
	if len(m.Where) == 0 {
		return s.fail("monitoring query #%d has an empty where clause", i+1)
	}
	vars := map[string]xyquery.Path{}
	for _, b := range m.From {
		if b.Var == "self" {
			return s.fail("monitoring query #%d: 'self' cannot be a variable", i+1)
		}
		if _, dup := vars[b.Var]; dup {
			return s.fail("monitoring query #%d: variable %q bound twice", i+1, b.Var)
		}
		if b.Path.Root != "self" {
			return s.fail("monitoring query #%d: from paths must be rooted at self", i+1)
		}
		vars[b.Var] = b.Path
	}
	if m.Select != nil && m.Select.Var != "" {
		if _, ok := vars[m.Select.Var]; !ok {
			return s.fail("monitoring query #%d selects unbound variable %q", i+1, m.Select.Var)
		}
	}
	if m.Select != nil && m.Select.Literal != nil {
		for _, a := range m.Select.Literal.Attrs {
			if a.IsVar && !builtinVar(a.Value) {
				return s.fail("monitoring query #%d: unknown built-in %q in select literal", i+1, a.Value)
			}
		}
		for _, c := range m.Select.Literal.Children {
			if !c.IsVar {
				continue
			}
			if _, ok := vars[c.Var]; !ok && !builtinVar(c.Var) {
				return s.fail("monitoring query #%d: unbound variable %q in select literal content", i+1, c.Var)
			}
		}
	}
	strong := false
	for j := range m.Where {
		c := &m.Where[j]
		if err := s.resolveCondition(i, c, vars); err != nil {
			return err
		}
		if !c.Weak() {
			strong = true
		}
	}
	// Section 5.1: "We disallow where clauses composed solely of a weak
	// atomic condition" — otherwise every fetched page raises an alert.
	if !strong {
		return s.fail("monitoring query #%d contains only weak conditions (new/updated/unchanged self); add a strong condition such as a URL or element pattern", i+1)
	}
	return nil
}

func (s *Subscription) resolveCondition(i int, c *Condition, vars map[string]xyquery.Path) error {
	switch c.Kind {
	case CondURLExtends:
		// Section 5.4: arbitrary patterns are disallowed by syntax; an
		// empty or near-empty prefix would match the whole web.
		if len(strings.TrimSpace(c.Str)) < 4 {
			return s.fail("monitoring query #%d: URL prefix %q is too broad", i+1, c.Str)
		}
	case CondURLEquals, CondFilename, CondDTD, CondDomain:
		if strings.TrimSpace(c.Str) == "" {
			return s.fail("monitoring query #%d: %s needs a non-empty value", i+1, c.Kind)
		}
	case CondSelfContains:
		if err := s.checkContainsWord(i, c.Str); err != nil {
			return err
		}
	case CondElement:
		// Resolve a variable reference to its tag: `new X` with
		// `from self//Member X` monitors new Member elements.
		if path, ok := vars[c.Tag]; ok {
			c.Var = c.Tag
			if len(path.Steps) == 0 {
				return s.fail("monitoring query #%d: variable %q binds the document itself; use self", i+1, c.Var)
			}
			tag := path.Steps[len(path.Steps)-1].Name
			if tag == "*" {
				return s.fail("monitoring query #%d: variable %q binds a wildcard path; element conditions need a tag", i+1, c.Var)
			}
			c.Tag = tag
		}
		if c.Str != "" {
			if err := s.checkContainsWord(i, c.Str); err != nil {
				return err
			}
		}
		if c.Change == NoChange && c.Str == "" {
			return s.fail("monitoring query #%d: element condition on %q needs a change pattern or contains", i+1, c.Tag)
		}
	}
	return nil
}

// checkContainsWord enforces the `contains` value rules: exactly one word
// (the alerters' word tables are keyed by single words), and not a
// stopword (Section 5.4).
func (s *Subscription) checkContainsWord(i int, raw string) error {
	words := xmldom.Words(raw)
	switch {
	case len(words) == 0:
		return s.fail("monitoring query #%d: contains needs a word", i+1)
	case len(words) > 1:
		return s.fail("monitoring query #%d: contains takes a single word, got %q", i+1, raw)
	case stopwords[words[0]]:
		return s.fail("monitoring query #%d: word %q is too common to monitor", i+1, raw)
	}
	return nil
}

// builtinVar reports whether name is a built-in notification variable
// usable in select literals.
func builtinVar(name string) bool {
	switch strings.ToUpper(name) {
	case "URL", "DATE", "DOCID", "DTD", "DOMAIN", "STATUS":
		return true
	}
	return false
}
