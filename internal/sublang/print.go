package sublang

import (
	"fmt"
	"strings"
)

// String renders the subscription back in the concrete syntax of Section
// 5. The output reparses to an equivalent subscription (same structure
// after validation), which the tests check; the manager could journal this
// normalised form instead of the user's original text.
func (s *Subscription) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "subscription %s\n", s.Name)
	for _, m := range s.Monitoring {
		b.WriteString("\nmonitoring\n")
		b.WriteString(m.String())
	}
	for _, c := range s.Continuous {
		b.WriteString("\ncontinuous ")
		if c.Delta {
			b.WriteString("delta ")
		}
		b.WriteString(c.Name)
		b.WriteString("\n")
		if c.Query != nil {
			b.WriteString(c.Query.String())
			b.WriteString("\n")
		}
		if c.When.Freq != 0 {
			fmt.Fprintf(&b, "when %s\n", c.When.Freq)
		} else {
			fmt.Fprintf(&b, "when %s.%s\n", c.When.NotifSub, c.When.NotifQuery)
		}
	}
	for _, v := range s.Virtual {
		fmt.Fprintf(&b, "\nvirtual %s.%s\n", v.Subscription, v.Query)
	}
	for _, r := range s.Refresh {
		fmt.Fprintf(&b, "\nrefresh %q %s\n", r.URL, r.Freq)
	}
	if s.Report != nil {
		b.WriteString("\nreport\n")
		if s.Report.Query != nil {
			b.WriteString(s.Report.Query.String())
			b.WriteString("\n")
		}
		b.WriteString("when ")
		for i, t := range s.Report.When {
			if i > 0 {
				b.WriteString(" or ")
			}
			b.WriteString(t.String())
		}
		b.WriteString("\n")
		if s.Report.AtMostCount > 0 {
			fmt.Fprintf(&b, "atmost %d\n", s.Report.AtMostCount)
		}
		if s.Report.AtMostFreq > 0 {
			fmt.Fprintf(&b, "atmost %s\n", s.Report.AtMostFreq)
		}
		if s.Report.Archive > 0 {
			fmt.Fprintf(&b, "archive %s\n", s.Report.Archive)
		}
	}
	return b.String()
}

// String renders one monitoring query (select, from, where), ending with a
// newline.
func (m *MonitoringQuery) String() string {
	var b strings.Builder
	b.WriteString("select ")
	switch {
	case m.Select == nil:
		b.WriteString("<notification/>")
	case m.Select.Literal != nil:
		lit := m.Select.Literal
		b.WriteString("<")
		b.WriteString(lit.Tag)
		for _, a := range lit.Attrs {
			if a.IsVar {
				fmt.Fprintf(&b, " %s=%s", a.Name, a.Value)
			} else {
				fmt.Fprintf(&b, " %s=%q", a.Name, a.Value)
			}
		}
		if len(lit.Children) == 0 {
			b.WriteString("/>")
		} else {
			b.WriteString(">")
			for i, c := range lit.Children {
				if i > 0 {
					b.WriteString(" ")
				}
				if c.IsVar {
					b.WriteString(c.Var)
				} else {
					fmt.Fprintf(&b, "%q", c.Text)
				}
			}
			fmt.Fprintf(&b, "</%s>", lit.Tag)
		}
	default:
		b.WriteString(m.Select.Var)
	}
	b.WriteString("\n")
	if len(m.From) > 0 {
		b.WriteString("from ")
		for i, f := range m.From {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s %s", f.Path.String(), f.Var)
		}
		b.WriteString("\n")
	}
	b.WriteString("where ")
	for i, c := range m.Where {
		if i > 0 {
			b.WriteString("\n  and ")
		}
		b.WriteString(c.printable())
	}
	b.WriteString("\n")
	return b.String()
}

// printable renders the condition in reparseable concrete syntax. Unlike
// Condition.String (a diagnostic format), variable references print as the
// variable so the from clause resolves them again on reparse.
func (c Condition) printable() string {
	switch c.Kind {
	case CondLastAccessed, CondLastUpdate:
		name := "LastAccessed"
		if c.Kind == CondLastUpdate {
			name = "LastUpdate"
		}
		return fmt.Sprintf("%s %s %q", name, c.Cmp, c.Date.Format("2006-01-02"))
	}
	if c.Kind == CondElement && c.Var != "" {
		out := c.Change.String()
		if out != "" {
			out += " "
		}
		out += c.Var
		if c.Str != "" {
			if c.Strict {
				out += " strict"
			}
			out += fmt.Sprintf(" contains %q", c.Str)
		}
		return out
	}
	return c.String()
}
