// Package sublang implements the subscription language of Section 5: the
// lexer-backed parser, the AST, and the static checks (the weak/strong
// event rule and the resource-control restrictions of Section 5.4). A
// subscription bundles monitoring queries over the document flow,
// continuous queries over the warehouse, refresh statements, and a report
// specification, exactly as in the paper's MyXyleme example.
package sublang

import (
	"fmt"
	"strings"
	"time"

	"xymon/internal/xyquery"
)

// ChangeOp is an element- or document-level change pattern.
type ChangeOp int

const (
	// NoChange means the condition has no change pattern ("Category
	// contains electronic" monitors presence, not change).
	NoChange ChangeOp = iota
	// OpNew: the element or document is new.
	OpNew
	// OpUpdated: the element or document changed ("updated"/"modified").
	OpUpdated
	// OpUnchanged: the document was fetched and found identical.
	OpUnchanged
	// OpDeleted: the element or document disappeared.
	OpDeleted
)

func (o ChangeOp) String() string {
	switch o {
	case NoChange:
		return ""
	case OpNew:
		return "new"
	case OpUpdated:
		return "updated"
	case OpUnchanged:
		return "unchanged"
	case OpDeleted:
		return "deleted"
	}
	return fmt.Sprintf("ChangeOp(%d)", int(o))
}

// CondKind discriminates atomic conditions of a monitoring query's where
// clause. Each atomic condition maps to one atomic event (Section 5.1).
type CondKind int

const (
	// CondURLExtends: URL extends "prefix".
	CondURLExtends CondKind = iota
	// CondURLEquals: URL = "string".
	CondURLEquals
	// CondFilename: filename = "index.html" (tail of the URL).
	CondFilename
	// CondDTD: DTD = "url".
	CondDTD
	// CondDTDID: DTDID = integer.
	CondDTDID
	// CondDOCID: DOCID = integer.
	CondDOCID
	// CondDomain: domain = "biology" (semantic domain).
	CondDomain
	// CondLastAccessed: LastAccessed <comparator> date.
	CondLastAccessed
	// CondLastUpdate: LastUpdate <comparator> date.
	CondLastUpdate
	// CondSelfContains: self contains "word".
	CondSelfContains
	// CondSelfChange: <changeop> self — a weak event.
	CondSelfChange
	// CondElement: (<changeop>)? tag (strict)? (contains "word")? — the
	// element-level conditions meaningful for XML documents.
	CondElement
)

func (k CondKind) String() string {
	switch k {
	case CondURLExtends:
		return "URL extends"
	case CondURLEquals:
		return "URL ="
	case CondFilename:
		return "filename ="
	case CondDTD:
		return "DTD ="
	case CondDTDID:
		return "DTDID ="
	case CondDOCID:
		return "DOCID ="
	case CondDomain:
		return "domain ="
	case CondLastAccessed:
		return "LastAccessed"
	case CondLastUpdate:
		return "LastUpdate"
	case CondSelfContains:
		return "self contains"
	case CondSelfChange:
		return "self change"
	case CondElement:
		return "element"
	}
	return fmt.Sprintf("CondKind(%d)", int(k))
}

// Comparator for date conditions.
type Comparator int

const (
	// CmpEq is =.
	CmpEq Comparator = iota
	// CmpLt is <.
	CmpLt
	// CmpGt is >.
	CmpGt
	// CmpLe is <=.
	CmpLe
	// CmpGe is >=.
	CmpGe
)

func (c Comparator) String() string {
	switch c {
	case CmpEq:
		return "="
	case CmpLt:
		return "<"
	case CmpGt:
		return ">"
	case CmpLe:
		return "<="
	case CmpGe:
		return ">="
	}
	return "?"
}

// Condition is one atomic condition. The populated fields depend on Kind:
//
//	CondURLExtends/CondURLEquals/CondFilename/CondDTD/CondDomain: Str
//	CondDTDID/CondDOCID:                                          Num
//	CondLastAccessed/CondLastUpdate:                              Cmp, Date
//	CondSelfContains:                                             Str (the word)
//	CondSelfChange:                                               Change
//	CondElement: Change (may be NoChange), Tag or Var, Strict, Str (word, may be empty)
type Condition struct {
	Kind   CondKind
	Str    string
	Num    uint64
	Cmp    Comparator
	Date   time.Time
	Change ChangeOp
	Tag    string // element tag, resolved from Var during validation when needed
	Var    string // variable bound in the from clause, e.g. "new X"
	Strict bool
}

// Weak reports whether the condition is a weak event: a change pattern on
// the whole document (new/modified/unchanged self). Section 5.1 disallows
// where clauses made solely of weak conditions — otherwise nearly every
// fetched document would raise an alert.
func (c Condition) Weak() bool {
	return c.Kind == CondSelfChange
}

func (c Condition) String() string {
	switch c.Kind {
	case CondURLExtends:
		return fmt.Sprintf("URL extends %q", c.Str)
	case CondURLEquals:
		return fmt.Sprintf("URL = %q", c.Str)
	case CondFilename:
		return fmt.Sprintf("filename = %q", c.Str)
	case CondDTD:
		return fmt.Sprintf("DTD = %q", c.Str)
	case CondDTDID:
		return fmt.Sprintf("DTDID = %d", c.Num)
	case CondDOCID:
		return fmt.Sprintf("DOCID = %d", c.Num)
	case CondDomain:
		return fmt.Sprintf("domain = %q", c.Str)
	case CondLastAccessed:
		return fmt.Sprintf("LastAccessed %s %s", c.Cmp, c.Date.Format("2006-01-02"))
	case CondLastUpdate:
		return fmt.Sprintf("LastUpdate %s %s", c.Cmp, c.Date.Format("2006-01-02"))
	case CondSelfContains:
		return fmt.Sprintf("self contains %q", c.Str)
	case CondSelfChange:
		return fmt.Sprintf("%s self", c.Change)
	case CondElement:
		var b strings.Builder
		if c.Change != NoChange {
			b.WriteString(c.Change.String())
			b.WriteByte(' ')
		}
		if c.Tag != "" {
			b.WriteString(c.Tag)
		} else {
			b.WriteString(c.Var)
		}
		if c.Str != "" {
			if c.Strict {
				b.WriteString(" strict")
			}
			b.WriteString(fmt.Sprintf(" contains %q", c.Str))
		}
		return b.String()
	}
	return c.Kind.String()
}

// FromBinding binds a variable to a path inside the current document, as
// in `from self//Member X`.
type FromBinding struct {
	Path xyquery.Path
	Var  string
}

// SelectSpec describes a monitoring query's notification payload: either a
// literal XML element whose attributes reference built-in variables (URL,
// DATE, DOCID) or strings, or a variable bound in the from clause.
type SelectSpec struct {
	// Literal, when non-nil, is e.g. <UpdatedPage url=URL/>.
	Literal *LiteralElem
	// Var, when non-empty, returns the matched elements bound to the
	// variable, e.g. `select X`.
	Var string
}

// LiteralElem is the literal element form of a select clause. Children
// (the full select clause, which the paper's prototype had not finished —
// Section 7's "Xyleme Select module") mix fixed text and variable
// references expanded to the matched elements:
//
//	select <Offer url=URL>X</Offer>
type LiteralElem struct {
	Tag      string
	Attrs    []LiteralAttr
	Children []LiteralChild
}

// LiteralChild is one content item of a literal select element: a quoted
// string or a variable bound in the from clause.
type LiteralChild struct {
	Text  string
	Var   string // non-empty for variable references
	IsVar bool
}

// LiteralAttr is one attribute of a literal select element; its value is a
// quoted string or a built-in variable reference (URL, DATE, DOCID).
type LiteralAttr struct {
	Name  string
	Value string
	IsVar bool
}

// MonitoringQuery filters the flow of fetched documents (Section 5.1).
type MonitoringQuery struct {
	Select *SelectSpec
	From   []FromBinding
	Where  []Condition
}

// Label returns the notification name of the query: the select literal's
// tag, else the selected variable, else "notification". Report conditions
// (`UpdatedPage.count > 10`) and continuous-query triggers reference this
// label.
func (m *MonitoringQuery) Label() string {
	if m.Select != nil {
		if m.Select.Literal != nil {
			return m.Select.Literal.Tag
		}
		if m.Select.Var != "" {
			return m.Select.Var
		}
	}
	return "notification"
}

// Frequency is a named evaluation frequency.
type Frequency time.Duration

// Named frequencies of the paper's grammar.
const (
	Hourly   = Frequency(time.Hour)
	Daily    = Frequency(24 * time.Hour)
	BiWeekly = Frequency(84 * time.Hour) // twice a week
	Weekly   = Frequency(7 * 24 * time.Hour)
	Monthly  = Frequency(30 * 24 * time.Hour)
)

// ParseFrequency maps a frequency keyword to its duration.
func ParseFrequency(word string) (Frequency, bool) {
	switch strings.ToLower(word) {
	case "hourly":
		return Hourly, true
	case "daily":
		return Daily, true
	case "biweekly":
		return BiWeekly, true
	case "weekly":
		return Weekly, true
	case "monthly":
		return Monthly, true
	}
	return 0, false
}

// Duration converts the frequency to a time.Duration.
func (f Frequency) Duration() time.Duration { return time.Duration(f) }

func (f Frequency) String() string {
	switch f {
	case Hourly:
		return "hourly"
	case Daily:
		return "daily"
	case BiWeekly:
		return "biweekly"
	case Weekly:
		return "weekly"
	case Monthly:
		return "monthly"
	}
	return time.Duration(f).String()
}

// TriggerSpec tells when to evaluate a continuous query: on a frequency or
// when a named notification arrives (SubscriptionName.QueryLabel).
type TriggerSpec struct {
	Freq Frequency // zero when notification-triggered
	// NotifSub/NotifQuery reference a monitoring query, as in
	// `when XylemeCompetitors.ChangeInMyProducts`.
	NotifSub   string
	NotifQuery string
}

// ContinuousQuery re-evaluates a warehouse query on a schedule or trigger
// (Section 5.2). With Delta set, only changes of the result are reported.
type ContinuousQuery struct {
	Name  string
	Delta bool
	Query *xyquery.Query
	When  TriggerSpec
}

// ReportTermKind discriminates report-condition terms.
type ReportTermKind int

const (
	// TermImmediate: report as soon as a notification arrives.
	TermImmediate ReportTermKind = iota
	// TermCount: notifications.count > N.
	TermCount
	// TermTagCount: <QueryLabel>.count > N.
	TermTagCount
	// TermPeriodic: a frequency keyword.
	TermPeriodic
)

// ReportTerm is one disjunct of the report's when clause.
type ReportTerm struct {
	Kind  ReportTermKind
	Count int
	Tag   string
	Freq  Frequency
}

func (t ReportTerm) String() string {
	switch t.Kind {
	case TermImmediate:
		return "immediate"
	case TermCount:
		return fmt.Sprintf("notifications.count > %d", t.Count)
	case TermTagCount:
		return fmt.Sprintf("%s.count > %d", t.Tag, t.Count)
	case TermPeriodic:
		return t.Freq.String()
	}
	return "?"
}

// ReportSpec is the report part of a subscription (Section 5.3).
type ReportSpec struct {
	// Query post-processes the notification buffer; nil forwards it as-is.
	Query *xyquery.Query
	// When is a disjunction of terms; any true term triggers a report.
	When []ReportTerm
	// AtMostCount stops registering notifications past this count until
	// the next report (0 = unlimited).
	AtMostCount int
	// AtMostFreq caps report frequency (0 = uncapped).
	AtMostFreq Frequency
	// Archive keeps generated reports for this long (0 = no archiving).
	Archive Frequency
}

// RefreshStatement asks the crawler to revisit a page or prefix at least
// at the given frequency (Section 2.2 item 3).
type RefreshStatement struct {
	URL  string
	Freq Frequency
}

// VirtualRef subscribes to a monitoring or continuous query owned by
// another subscription (Section 5.4), as in `virtual MyXyleme.Member`.
type VirtualRef struct {
	Subscription string
	Query        string
}

// Subscription is a full parsed subscription.
type Subscription struct {
	Name       string
	Monitoring []*MonitoringQuery
	Continuous []*ContinuousQuery
	Report     *ReportSpec
	Refresh    []RefreshStatement
	Virtual    []VirtualRef
}
