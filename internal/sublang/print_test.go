package sublang

import (
	"testing"
	"time"
)

// reprint parses src, prints it, reparses the output and checks the two
// parse trees print identically — the normalised form is a fixed point.
func reprint(t *testing.T, src string) {
	t.Helper()
	sub, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v\n%s", err, src)
	}
	printed := sub.String()
	sub2, err := Parse(printed)
	if err != nil {
		t.Fatalf("reparse failed: %v\n--- printed ---\n%s", err, printed)
	}
	if printed2 := sub2.String(); printed2 != printed {
		t.Errorf("print not a fixed point:\n--- first ---\n%s\n--- second ---\n%s", printed, printed2)
	}
}

func TestPrintRoundTripPaperExamples(t *testing.T) {
	for name, src := range map[string]string{
		"MyXyleme":          myXyleme,
		"XylemeCompetitors": xylemeCompetitors,
		"Amsterdam":         amsterdam,
	} {
		t.Run(name, func(t *testing.T) { reprint(t, src) })
	}
}

func TestPrintRoundTripFeatureMatrix(t *testing.T) {
	cases := map[string]string{
		"meta conditions": `subscription M
monitoring select <X a=URL b="lit" c=STATUS/>
where DTDID = 7 and DOCID = 9 and domain = "bio" and filename = "i.xml"
  and LastUpdate >= "2001-05-21" and LastAccessed < "2001-06-01"
  and self contains "genome" and DTD = "http://d/x.dtd"
report when immediate`,
		"element conditions": `subscription E
monitoring select <X/>
where URL extends "http://a.example/"
  and updated Product strict contains "camera"
  and new Product
  and Category contains "electronic"
  and deleted Promo
  and unchanged self
report when UpdatedPage.count > 10 or weekly or immediate atmost 500 atmost weekly archive monthly`,
		"variables": `subscription V
monitoring select X from self//Member X, self//Team T
where URL = "http://a.example/m.xml" and new X
report when notifications.count > 3`,
		"disjunction": `subscription D
monitoring select <H/>
where URL extends "http://a.example/" or filename = "x.xml"
report when immediate`,
		"continuous": `subscription C
continuous delta Q
select distinct p/title from culture/museum m, m/painting p where m/address contains "Amsterdam" and m/@rank > "3"
when biweekly
continuous R select x from y/z x when C.H
monitoring select <H/> where URL extends "http://a.example/"
report when immediate`,
		"virtual and refresh": `subscription VR
virtual Other.Query
refresh "http://a.example/x.xml" weekly
refresh "http://a.example/y.xml" daily`,
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) { reprint(t, src) })
	}
}

func TestPrintResolvedVariableStaysVariable(t *testing.T) {
	sub, err := Parse(`subscription V
monitoring select X from self//Member X
where URL = "http://a.example/m.xml" and new X
report when immediate`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	printed := sub.String()
	// The condition resolved X to tag Member internally, but the printed
	// form must keep `new X` so the from clause re-resolves it.
	sub2, err := Parse(printed)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, printed)
	}
	cond := sub2.Monitoring[0].Where[1]
	if cond.Var != "X" || cond.Tag != "Member" {
		t.Errorf("reparsed condition = %+v", cond)
	}
}

func TestStringCoverage(t *testing.T) {
	// Exercise every enum's String form.
	for op, want := range map[ChangeOp]string{
		NoChange: "", OpNew: "new", OpUpdated: "updated",
		OpUnchanged: "unchanged", OpDeleted: "deleted",
	} {
		if op.String() != want {
			t.Errorf("ChangeOp(%d) = %q, want %q", op, op.String(), want)
		}
	}
	kinds := []CondKind{
		CondURLExtends, CondURLEquals, CondFilename, CondDTD, CondDTDID,
		CondDOCID, CondDomain, CondLastAccessed, CondLastUpdate,
		CondSelfContains, CondSelfChange, CondElement,
	}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("CondKind %d has empty String", k)
		}
	}
	for cmp, want := range map[Comparator]string{
		CmpEq: "=", CmpLt: "<", CmpGt: ">", CmpLe: "<=", CmpGe: ">=",
	} {
		if cmp.String() != want {
			t.Errorf("Comparator %d = %q", cmp, cmp.String())
		}
	}
	for _, term := range []ReportTerm{
		{Kind: TermImmediate},
		{Kind: TermCount, Count: 5},
		{Kind: TermTagCount, Tag: "X", Count: 3},
		{Kind: TermPeriodic, Freq: Daily},
	} {
		if term.String() == "" || term.String() == "?" {
			t.Errorf("ReportTerm %+v has bad String", term)
		}
	}
	// A non-named frequency prints as a duration.
	odd := Frequency(90 * time.Minute)
	if odd.String() != "1h30m0s" {
		t.Errorf("odd frequency = %q", odd.String())
	}
	// ValidationError formats with the subscription name.
	e := &ValidationError{Subscription: "S", Msg: "boom"}
	if e.Error() != "subscription S: boom" {
		t.Errorf("ValidationError = %q", e.Error())
	}
}

func TestParserErrorBranches(t *testing.T) {
	cases := []string{
		// comparator garbage
		`subscription S
monitoring select <P/> where LastUpdate ~ "2001-01-01"`,
		// from binding missing variable
		`subscription S
monitoring select X from self//a where new X`,
		// virtual missing dot
		`subscription S
virtual OnlyName`,
		// virtual missing query
		`subscription S
virtual A.`,
		// literal attr garbage value
		`subscription S
monitoring select <P a=/> where URL extends "http://x.example/"`,
		// path with trailing slash in from
		`subscription S
monitoring select X from self//a/ X where new X`,
	}
	for i, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("case %d should fail:\n%s", i, src)
		}
	}
}
