package sublang

import (
	"strconv"
	"time"

	"xymon/internal/lex"
	"xymon/internal/xyquery"
)

// Parse parses one subscription. The input must consume the whole string.
func Parse(src string) (*Subscription, error) {
	p := &parser{lx: lex.New(src)}
	sub, err := p.parseSubscription()
	if err != nil {
		return nil, err
	}
	if t := p.lx.Peek(); t.Kind != lex.EOF {
		return nil, lex.Errorf(t, "unexpected %s after subscription", t)
	}
	if err := p.lx.Err(); err != nil {
		return nil, err
	}
	if err := Validate(sub); err != nil {
		return nil, err
	}
	return sub, nil
}

type parser struct {
	lx *lex.Lexer
}

func (p *parser) expectIdent(what string) (lex.Token, error) {
	t := p.lx.Next()
	if t.Kind != lex.Ident {
		return t, lex.Errorf(t, "expected %s, got %s", what, t)
	}
	return t, nil
}

func (p *parser) expectKeyword(kw string) error {
	t := p.lx.Next()
	if !t.Is(kw) {
		return lex.Errorf(t, "expected %q, got %s", kw, t)
	}
	return nil
}

func (p *parser) expectSymbol(s string) error {
	t := p.lx.Next()
	if !t.IsSymbol(s) {
		return lex.Errorf(t, "expected %q, got %s", s, t)
	}
	return nil
}

func (p *parser) parseSubscription() (*Subscription, error) {
	if err := p.expectKeyword("subscription"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent("subscription name")
	if err != nil {
		return nil, err
	}
	sub := &Subscription{Name: name.Text}
	for {
		t := p.lx.Peek()
		switch {
		case t.Is("monitoring"):
			p.lx.Next()
			ms, err := p.parseMonitoring()
			if err != nil {
				return nil, err
			}
			sub.Monitoring = append(sub.Monitoring, ms...)
		case t.Is("continuous"):
			p.lx.Next()
			c, err := p.parseContinuous()
			if err != nil {
				return nil, err
			}
			sub.Continuous = append(sub.Continuous, c)
		case t.Is("report"):
			if sub.Report != nil {
				return nil, lex.Errorf(t, "duplicate report section")
			}
			p.lx.Next()
			r, err := p.parseReport()
			if err != nil {
				return nil, err
			}
			sub.Report = r
		case t.Is("refresh"):
			p.lx.Next()
			r, err := p.parseRefresh()
			if err != nil {
				return nil, err
			}
			sub.Refresh = append(sub.Refresh, r)
		case t.Is("virtual"):
			p.lx.Next()
			v, err := p.parseVirtual()
			if err != nil {
				return nil, err
			}
			sub.Virtual = append(sub.Virtual, v)
		default:
			return sub, nil
		}
	}
}

// parseMonitoring parses `select … (from …)? where …`. The where clause
// is a disjunction of conjunctions of atomic conditions; the Monitoring
// Query Processor matches pure conjunctions (complex events), so each
// disjunct is desugared into its own MonitoringQuery sharing the select
// and from clauses — the disjunction extension Section 7 lists as future
// work, realised by DNF compilation.
func (p *parser) parseMonitoring() ([]*MonitoringQuery, error) {
	var sel *SelectSpec
	var from []FromBinding
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	sel, err := p.parseSelectSpec()
	if err != nil {
		return nil, err
	}
	if p.lx.Peek().Is("from") {
		p.lx.Next()
		for {
			b, err := p.parseFromBinding()
			if err != nil {
				return nil, err
			}
			from = append(from, b)
			if !p.lx.Peek().IsSymbol(",") {
				break
			}
			p.lx.Next()
		}
	}
	if err := p.expectKeyword("where"); err != nil {
		return nil, err
	}
	var queries []*MonitoringQuery
	for {
		m := &MonitoringQuery{Select: sel, From: from}
		for {
			c, err := p.parseCondition()
			if err != nil {
				return nil, err
			}
			m.Where = append(m.Where, c)
			if !p.lx.Peek().Is("and") {
				break
			}
			p.lx.Next()
		}
		queries = append(queries, m)
		if !p.lx.Peek().Is("or") {
			break
		}
		p.lx.Next()
	}
	return queries, nil
}

func (p *parser) parseSelectSpec() (*SelectSpec, error) {
	t := p.lx.Peek()
	if t.IsSymbol("<") {
		lit, err := p.parseLiteralElem()
		if err != nil {
			return nil, err
		}
		return &SelectSpec{Literal: lit}, nil
	}
	v, err := p.expectIdent("select variable or XML literal")
	if err != nil {
		return nil, err
	}
	return &SelectSpec{Var: v.Text}, nil
}

// parseLiteralElem parses `<Tag attr=VALUE … />` or, with content,
// `<Tag attr=VALUE …> (VAR | "text")* </Tag>`.
func (p *parser) parseLiteralElem() (*LiteralElem, error) {
	if err := p.expectSymbol("<"); err != nil {
		return nil, err
	}
	tag, err := p.expectIdent("element tag")
	if err != nil {
		return nil, err
	}
	lit := &LiteralElem{Tag: tag.Text}
	for {
		t := p.lx.Next()
		switch {
		case t.IsSymbol("/"):
			if err := p.expectSymbol(">"); err != nil {
				return nil, err
			}
			return lit, nil
		case t.IsSymbol(">"):
			return lit, p.parseLiteralContent(lit)
		case t.Kind == lex.Ident:
			if err := p.expectSymbol("="); err != nil {
				return nil, err
			}
			v := p.lx.Next()
			switch v.Kind {
			case lex.String, lex.Number:
				lit.Attrs = append(lit.Attrs, LiteralAttr{Name: t.Text, Value: v.Text})
			case lex.Ident:
				lit.Attrs = append(lit.Attrs, LiteralAttr{Name: t.Text, Value: v.Text, IsVar: true})
			default:
				return nil, lex.Errorf(v, "expected attribute value, got %s", v)
			}
		default:
			return nil, lex.Errorf(t, "expected attribute, '/>' or '>', got %s", t)
		}
	}
}

// parseLiteralContent parses the children of an open literal element up to
// the matching close tag.
func (p *parser) parseLiteralContent(lit *LiteralElem) error {
	for {
		t := p.lx.Next()
		switch {
		case t.IsSymbol("<"):
			if err := p.expectSymbol("/"); err != nil {
				return err
			}
			close, err := p.expectIdent("closing tag")
			if err != nil {
				return err
			}
			if close.Text != lit.Tag {
				return lex.Errorf(close, "closing tag %q does not match <%s>", close.Text, lit.Tag)
			}
			return p.expectSymbol(">")
		case t.Kind == lex.Ident:
			lit.Children = append(lit.Children, LiteralChild{Var: t.Text, IsVar: true})
		case t.Kind == lex.String || t.Kind == lex.Number:
			lit.Children = append(lit.Children, LiteralChild{Text: t.Text})
		default:
			return lex.Errorf(t, "expected content or closing tag, got %s", t)
		}
	}
}

func (p *parser) parseFromBinding() (FromBinding, error) {
	path, err := p.parsePath()
	if err != nil {
		return FromBinding{}, err
	}
	v, err := p.expectIdent("variable name")
	if err != nil {
		return FromBinding{}, err
	}
	return FromBinding{Path: path, Var: v.Text}, nil
}

func (p *parser) parsePath() (xyquery.Path, error) {
	t, err := p.expectIdent("path")
	if err != nil {
		return xyquery.Path{}, err
	}
	path := xyquery.Path{Root: t.Text}
	for p.lx.Peek().IsSymbol("/") {
		p.lx.Next()
		axis := xyquery.Child
		if p.lx.Peek().IsSymbol("/") {
			p.lx.Next()
			axis = xyquery.Descendant
		}
		step := p.lx.Next()
		var name string
		switch {
		case step.Kind == lex.Ident:
			name = step.Text
		case step.IsSymbol("*"):
			name = "*"
		default:
			return xyquery.Path{}, lex.Errorf(step, "expected step name, got %s", step)
		}
		path.Steps = append(path.Steps, xyquery.Step{Axis: axis, Name: name})
	}
	return path, nil
}

// changeOpOf maps a keyword token to a change pattern; "modified" is the
// paper's synonym for "updated".
func changeOpOf(t lex.Token) (ChangeOp, bool) {
	switch {
	case t.Is("new"):
		return OpNew, true
	case t.Is("updated"), t.Is("modified"):
		return OpUpdated, true
	case t.Is("unchanged"):
		return OpUnchanged, true
	case t.Is("deleted"):
		return OpDeleted, true
	}
	return NoChange, false
}

func (p *parser) parseCondition() (Condition, error) {
	t := p.lx.Next()
	if t.Kind != lex.Ident {
		return Condition{}, lex.Errorf(t, "expected condition, got %s", t)
	}
	switch {
	case t.Is("URL"):
		op := p.lx.Next()
		switch {
		case op.Is("extends"):
			s, err := p.expectString()
			if err != nil {
				return Condition{}, err
			}
			return Condition{Kind: CondURLExtends, Str: s}, nil
		case op.IsSymbol("="):
			s, err := p.expectString()
			if err != nil {
				return Condition{}, err
			}
			return Condition{Kind: CondURLEquals, Str: s}, nil
		default:
			return Condition{}, lex.Errorf(op, "expected 'extends' or '=' after URL, got %s", op)
		}
	case t.Is("filename"):
		if err := p.expectSymbol("="); err != nil {
			return Condition{}, err
		}
		s, err := p.expectString()
		if err != nil {
			return Condition{}, err
		}
		return Condition{Kind: CondFilename, Str: s}, nil
	case t.Is("DTD"):
		if err := p.expectSymbol("="); err != nil {
			return Condition{}, err
		}
		s, err := p.expectString()
		if err != nil {
			return Condition{}, err
		}
		return Condition{Kind: CondDTD, Str: s}, nil
	case t.Is("domain"):
		if err := p.expectSymbol("="); err != nil {
			return Condition{}, err
		}
		s, err := p.expectString()
		if err != nil {
			return Condition{}, err
		}
		return Condition{Kind: CondDomain, Str: s}, nil
	case t.Is("DTDID"), t.Is("DOCID"):
		kind := CondDTDID
		if t.Is("DOCID") {
			kind = CondDOCID
		}
		if err := p.expectSymbol("="); err != nil {
			return Condition{}, err
		}
		n := p.lx.Next()
		if n.Kind != lex.Number {
			return Condition{}, lex.Errorf(n, "expected integer, got %s", n)
		}
		v, err := strconv.ParseUint(n.Text, 10, 64)
		if err != nil {
			return Condition{}, lex.Errorf(n, "bad integer %s: %v", n, err)
		}
		return Condition{Kind: kind, Num: v}, nil
	case t.Is("LastAccessed"), t.Is("LastUpdate"):
		kind := CondLastAccessed
		if t.Is("LastUpdate") {
			kind = CondLastUpdate
		}
		cmp, err := p.parseComparator()
		if err != nil {
			return Condition{}, err
		}
		s, err := p.expectString()
		if err != nil {
			return Condition{}, err
		}
		date, err := time.Parse("2006-01-02", s)
		if err != nil {
			return Condition{}, lex.Errorf(t, "bad date %q (want YYYY-MM-DD): %v", s, err)
		}
		return Condition{Kind: kind, Cmp: cmp, Date: date}, nil
	case t.Is("self"):
		strict := false
		if p.lx.Peek().Is("strict") {
			p.lx.Next()
			strict = true
		}
		if err := p.expectKeyword("contains"); err != nil {
			return Condition{}, err
		}
		s, err := p.expectString()
		if err != nil {
			return Condition{}, err
		}
		return Condition{Kind: CondSelfContains, Str: s, Strict: strict}, nil
	default:
		if op, ok := changeOpOf(t); ok {
			target := p.lx.Next()
			if target.Is("self") {
				return Condition{Kind: CondSelfChange, Change: op}, nil
			}
			if target.Kind != lex.Ident {
				return Condition{}, lex.Errorf(target, "expected element tag or variable after %q, got %s", t.Text, target)
			}
			cond := Condition{Kind: CondElement, Change: op, Tag: target.Text}
			return p.parseElementTail(cond)
		}
		// Bare element condition: `Category contains "electronic"`.
		cond := Condition{Kind: CondElement, Tag: t.Text}
		if !p.lx.Peek().Is("contains") && !p.lx.Peek().Is("strict") {
			return Condition{}, lex.Errorf(t, "condition %q needs 'contains' or a change pattern", t.Text)
		}
		return p.parseElementTail(cond)
	}
}

// parseElementTail parses the optional `(strict)? contains "word"` suffix
// of an element condition.
func (p *parser) parseElementTail(cond Condition) (Condition, error) {
	if p.lx.Peek().Is("strict") {
		p.lx.Next()
		cond.Strict = true
		if !p.lx.Peek().Is("contains") {
			return Condition{}, lex.Errorf(p.lx.Peek(), "expected 'contains' after 'strict'")
		}
	}
	if p.lx.Peek().Is("contains") {
		p.lx.Next()
		s, err := p.expectString()
		if err != nil {
			return Condition{}, err
		}
		cond.Str = s
	}
	return cond, nil
}

func (p *parser) parseComparator() (Comparator, error) {
	t := p.lx.Next()
	switch {
	case t.IsSymbol("="):
		return CmpEq, nil
	case t.IsSymbol("<"):
		if p.lx.Peek().IsSymbol("=") {
			p.lx.Next()
			return CmpLe, nil
		}
		return CmpLt, nil
	case t.IsSymbol(">"):
		if p.lx.Peek().IsSymbol("=") {
			p.lx.Next()
			return CmpGe, nil
		}
		return CmpGt, nil
	}
	return CmpEq, lex.Errorf(t, "expected comparator, got %s", t)
}

func (p *parser) expectString() (string, error) {
	t := p.lx.Next()
	if t.Kind != lex.String {
		return "", lex.Errorf(t, "expected quoted string, got %s", t)
	}
	return t.Text, nil
}

// parseContinuous parses `continuous (delta)? Name (query)? (when|try) trigger`.
func (p *parser) parseContinuous() (*ContinuousQuery, error) {
	c := &ContinuousQuery{}
	if p.lx.Peek().Is("delta") {
		p.lx.Next()
		c.Delta = true
	}
	name, err := p.expectIdent("continuous query name")
	if err != nil {
		return nil, err
	}
	c.Name = name.Text
	if p.lx.Peek().Is("select") {
		q, err := xyquery.ParsePrefix(p.lx)
		if err != nil {
			return nil, err
		}
		c.Query = q
	}
	t := p.lx.Next()
	if !t.Is("when") && !t.Is("try") {
		return nil, lex.Errorf(t, "expected 'when' or 'try', got %s", t)
	}
	trigger, err := p.parseTrigger()
	if err != nil {
		return nil, err
	}
	c.When = trigger
	return c, nil
}

func (p *parser) parseTrigger() (TriggerSpec, error) {
	t, err := p.expectIdent("frequency or notification reference")
	if err != nil {
		return TriggerSpec{}, err
	}
	if f, ok := ParseFrequency(t.Text); ok {
		return TriggerSpec{Freq: f}, nil
	}
	if err := p.expectSymbol("."); err != nil {
		return TriggerSpec{}, err
	}
	q, err := p.expectIdent("monitoring query label")
	if err != nil {
		return TriggerSpec{}, err
	}
	return TriggerSpec{NotifSub: t.Text, NotifQuery: q.Text}, nil
}

// parseReport parses `report (query)? when term (or term)* (atmost …)* (archive …)?`.
func (p *parser) parseReport() (*ReportSpec, error) {
	r := &ReportSpec{}
	if p.lx.Peek().Is("select") {
		q, err := xyquery.ParsePrefix(p.lx)
		if err != nil {
			return nil, err
		}
		r.Query = q
	}
	if err := p.expectKeyword("when"); err != nil {
		return nil, err
	}
	for {
		term, err := p.parseReportTerm()
		if err != nil {
			return nil, err
		}
		r.When = append(r.When, term)
		if !p.lx.Peek().Is("or") {
			break
		}
		p.lx.Next()
	}
	for p.lx.Peek().Is("atmost") {
		p.lx.Next()
		t := p.lx.Next()
		switch {
		case t.Kind == lex.Number:
			n, err := strconv.Atoi(t.Text)
			if err != nil || n <= 0 {
				return nil, lex.Errorf(t, "bad atmost count %s", t)
			}
			r.AtMostCount = n
		case t.Kind == lex.Ident:
			f, ok := ParseFrequency(t.Text)
			if !ok {
				return nil, lex.Errorf(t, "bad atmost frequency %s", t)
			}
			r.AtMostFreq = f
		default:
			return nil, lex.Errorf(t, "expected count or frequency after 'atmost', got %s", t)
		}
	}
	if p.lx.Peek().Is("archive") {
		p.lx.Next()
		t, err := p.expectIdent("archive frequency")
		if err != nil {
			return nil, err
		}
		f, ok := ParseFrequency(t.Text)
		if !ok {
			return nil, lex.Errorf(t, "bad archive frequency %s", t)
		}
		r.Archive = f
	}
	return r, nil
}

func (p *parser) parseReportTerm() (ReportTerm, error) {
	t, err := p.expectIdent("report condition")
	if err != nil {
		return ReportTerm{}, err
	}
	if t.Is("immediate") {
		return ReportTerm{Kind: TermImmediate}, nil
	}
	if f, ok := ParseFrequency(t.Text); ok {
		return ReportTerm{Kind: TermPeriodic, Freq: f}, nil
	}
	// notifications.count > N  or  <Label>.count > N
	if err := p.expectSymbol("."); err != nil {
		return ReportTerm{}, err
	}
	if err := p.expectKeyword("count"); err != nil {
		return ReportTerm{}, err
	}
	if err := p.expectSymbol(">"); err != nil {
		return ReportTerm{}, err
	}
	n := p.lx.Next()
	if n.Kind != lex.Number {
		return ReportTerm{}, lex.Errorf(n, "expected count, got %s", n)
	}
	count, err := strconv.Atoi(n.Text)
	if err != nil || count < 0 {
		return ReportTerm{}, lex.Errorf(n, "bad count %s", n)
	}
	if t.Is("notifications") {
		return ReportTerm{Kind: TermCount, Count: count}, nil
	}
	return ReportTerm{Kind: TermTagCount, Tag: t.Text, Count: count}, nil
}

func (p *parser) parseRefresh() (RefreshStatement, error) {
	url, err := p.expectString()
	if err != nil {
		return RefreshStatement{}, err
	}
	t, err := p.expectIdent("refresh frequency")
	if err != nil {
		return RefreshStatement{}, err
	}
	f, ok := ParseFrequency(t.Text)
	if !ok {
		return RefreshStatement{}, lex.Errorf(t, "bad refresh frequency %s", t)
	}
	return RefreshStatement{URL: url, Freq: f}, nil
}

func (p *parser) parseVirtual() (VirtualRef, error) {
	sub, err := p.expectIdent("subscription name")
	if err != nil {
		return VirtualRef{}, err
	}
	if err := p.expectSymbol("."); err != nil {
		return VirtualRef{}, err
	}
	q, err := p.expectIdent("query label")
	if err != nil {
		return VirtualRef{}, err
	}
	return VirtualRef{Subscription: sub.Text, Query: q.Text}, nil
}
