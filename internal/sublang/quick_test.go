package sublang

import (
	"testing"
	"testing/quick"
)

// Property: Parse never panics, whatever the input — it either returns a
// subscription or an error.
func TestQuickParseNeverPanics(t *testing.T) {
	f := func(src string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		sub, err := Parse(src)
		// Either outcome is fine; both non-nil would be a bug.
		if err == nil && sub == nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: structured noise around the real grammar never panics either.
func TestQuickParseGrammarNoise(t *testing.T) {
	words := []string{
		"subscription", "monitoring", "select", "from", "where", "and", "or",
		"URL", "extends", "self", "contains", "new", "modified", "report",
		"when", "immediate", "continuous", "delta", "virtual", "refresh",
		"atmost", "archive", "weekly", `"http://x/"`, "<", ">", "/", "=",
		".", ",", "X", "count", "100", "notifications",
	}
	f := func(picks []uint8) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		src := ""
		for _, p := range picks {
			src += words[int(p)%len(words)] + " "
		}
		Parse(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// Property: anything that parses also prints to a form that reparses.
func TestQuickPrintReparses(t *testing.T) {
	words := []string{
		"subscription S monitoring select <P/> where URL extends \"http://a.example/\"",
		" and modified self", " and new Product", " and self contains \"xml\"",
		" or filename = \"x.xml\"", "\nreport when immediate",
		"\nreport when notifications.count > 5 atmost 3",
		"\nvirtual A.B", "\nrefresh \"http://a.example/\" weekly",
	}
	f := func(mask uint16) bool {
		src := words[0]
		for i := 1; i < len(words); i++ {
			if mask&(1<<i) != 0 {
				src += words[i]
			}
		}
		sub, err := Parse(src)
		if err != nil {
			return true // not all combinations are valid; that's fine
		}
		if _, err := Parse(sub.String()); err != nil {
			t.Logf("printed form does not reparse:\n%s\n%v", sub.String(), err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 512}); err != nil {
		t.Error(err)
	}
}
