package sublang

import "testing"

// FuzzParse checks the subscription parser never panics and that anything
// accepted prints to a reparseable normal form. Run `go test -fuzz
// FuzzParse ./internal/sublang` for continuous fuzzing; the seed corpus
// alone runs as a regular test.
func FuzzParse(f *testing.F) {
	f.Add(myXyleme)
	f.Add(xylemeCompetitors)
	f.Add(amsterdam)
	f.Add(`subscription S monitoring select <P/> where URL extends "http://x.example/"`)
	f.Add(`subscription " % or and <<>> 100`)
	f.Add("")
	f.Fuzz(func(t *testing.T, src string) {
		sub, err := Parse(src)
		if err != nil {
			return
		}
		printed := sub.String()
		if _, err := Parse(printed); err != nil {
			t.Fatalf("accepted subscription prints to unparseable form:\n%s\n%v", printed, err)
		}
	})
}
