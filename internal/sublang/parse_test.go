package sublang

import (
	"strings"
	"testing"
	"time"
)

// myXyleme is the full subscription example of Section 2.2.
const myXyleme = `subscription MyXyleme

monitoring
select <UpdatedPage url=URL/>
where URL extends "http://inria.fr/Xy/"
  and modified self

monitoring
select X
from self//Member X
where URL = "http://inria.fr/Xy/members.xml"
  and new X

continuous ReferenceXyleme
% a query Q that computes, e.g., the list of
% sites that reference Xyleme
try biweekly

refresh "http://inria.fr/Xy/members.xml" weekly

report
% an XML query Q' on the output stream
when notifications.count > 100
`

func TestParsePaperMyXyleme(t *testing.T) {
	sub, err := Parse(myXyleme)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if sub.Name != "MyXyleme" {
		t.Errorf("Name = %q", sub.Name)
	}
	if len(sub.Monitoring) != 2 {
		t.Fatalf("Monitoring = %d, want 2", len(sub.Monitoring))
	}

	m1 := sub.Monitoring[0]
	if m1.Label() != "UpdatedPage" {
		t.Errorf("m1 label = %q", m1.Label())
	}
	if m1.Select.Literal == nil || len(m1.Select.Literal.Attrs) != 1 ||
		m1.Select.Literal.Attrs[0].Name != "url" || !m1.Select.Literal.Attrs[0].IsVar {
		t.Errorf("m1 select = %+v", m1.Select)
	}
	if len(m1.Where) != 2 {
		t.Fatalf("m1 where = %d", len(m1.Where))
	}
	if m1.Where[0].Kind != CondURLExtends || m1.Where[0].Str != "http://inria.fr/Xy/" {
		t.Errorf("m1 cond0 = %v", m1.Where[0])
	}
	if m1.Where[1].Kind != CondSelfChange || m1.Where[1].Change != OpUpdated {
		t.Errorf("m1 cond1 = %v (modified must map to updated)", m1.Where[1])
	}

	m2 := sub.Monitoring[1]
	if m2.Label() != "X" {
		t.Errorf("m2 label = %q", m2.Label())
	}
	if len(m2.From) != 1 || m2.From[0].Var != "X" {
		t.Fatalf("m2 from = %+v", m2.From)
	}
	if len(m2.Where) != 2 {
		t.Fatalf("m2 where = %d", len(m2.Where))
	}
	// `new X` must resolve to the Member tag via the from binding.
	if m2.Where[1].Kind != CondElement || m2.Where[1].Change != OpNew ||
		m2.Where[1].Tag != "Member" || m2.Where[1].Var != "X" {
		t.Errorf("m2 cond1 = %+v, want new Member via X", m2.Where[1])
	}

	if len(sub.Continuous) != 1 {
		t.Fatalf("Continuous = %d", len(sub.Continuous))
	}
	c := sub.Continuous[0]
	if c.Name != "ReferenceXyleme" || c.Delta || c.Query != nil {
		t.Errorf("continuous = %+v", c)
	}
	if c.When.Freq != BiWeekly {
		t.Errorf("continuous freq = %v, want biweekly", c.When.Freq)
	}

	if len(sub.Refresh) != 1 || sub.Refresh[0].URL != "http://inria.fr/Xy/members.xml" ||
		sub.Refresh[0].Freq != Weekly {
		t.Errorf("refresh = %+v", sub.Refresh)
	}

	if sub.Report == nil || len(sub.Report.When) != 1 {
		t.Fatalf("report = %+v", sub.Report)
	}
	if w := sub.Report.When[0]; w.Kind != TermCount || w.Count != 100 {
		t.Errorf("report when = %+v", w)
	}
}

// xylemeCompetitors is the notification-triggered example of Section 5.2.
const xylemeCompetitors = `subscription XylemeCompetitors

monitoring
select <ChangeInMyProducts/>
where URL = "www.xyleme.com/products.xml"
  and modified self

continuous MyCompetitors
select c/name from market/competitor c
when XylemeCompetitors.ChangeInMyProducts

report when immediate
`

func TestParsePaperXylemeCompetitors(t *testing.T) {
	sub, err := Parse(xylemeCompetitors)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(sub.Continuous) != 1 {
		t.Fatalf("Continuous = %d", len(sub.Continuous))
	}
	c := sub.Continuous[0]
	if c.Query == nil {
		t.Fatal("continuous query body missing")
	}
	if c.When.NotifSub != "XylemeCompetitors" || c.When.NotifQuery != "ChangeInMyProducts" {
		t.Errorf("trigger = %+v", c.When)
	}
	if sub.Report.When[0].Kind != TermImmediate {
		t.Errorf("report when = %+v", sub.Report.When[0])
	}
}

// amsterdam is the delta continuous query of Section 5.2.
const amsterdam = `subscription Paintings

continuous delta AmsterdamPaintings
select p/title
from culture/museum m, m/painting p
where m/address contains "Amsterdam"
when biweekly

report when weekly
`

func TestParsePaperAmsterdam(t *testing.T) {
	sub, err := Parse(amsterdam)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	c := sub.Continuous[0]
	if !c.Delta || c.Name != "AmsterdamPaintings" {
		t.Errorf("continuous = %+v", c)
	}
	if c.Query == nil || len(c.Query.From) != 2 || len(c.Query.Where) != 1 {
		t.Fatalf("query = %v", c.Query)
	}
	if c.When.Freq.Duration() != 84*time.Hour {
		t.Errorf("biweekly = %v", c.When.Freq.Duration())
	}
}

func TestParseVirtual(t *testing.T) {
	sub, err := Parse(`subscription MyVirtualXyleme
virtual MyXyleme.Member`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(sub.Virtual) != 1 || sub.Virtual[0].Subscription != "MyXyleme" || sub.Virtual[0].Query != "Member" {
		t.Errorf("virtual = %+v", sub.Virtual)
	}
}

func TestParseElementConditions(t *testing.T) {
	sub, err := Parse(`subscription Catalog
monitoring
select <Hit/>
where URL extends "http://www.amazon.com/catalog/"
  and updated Product strict contains "camera"
  and Category contains "electronic"
  and DTD = "http://www.amazon.com/dtd/catalog.dtd"
report when notifications.count > 10 atmost 500 atmost weekly archive monthly
`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	w := sub.Monitoring[0].Where
	if len(w) != 4 {
		t.Fatalf("where = %d", len(w))
	}
	if w[1].Kind != CondElement || w[1].Change != OpUpdated || w[1].Tag != "Product" ||
		!w[1].Strict || w[1].Str != "camera" {
		t.Errorf("cond1 = %+v", w[1])
	}
	if w[2].Kind != CondElement || w[2].Change != NoChange || w[2].Tag != "Category" ||
		w[2].Strict || w[2].Str != "electronic" {
		t.Errorf("cond2 = %+v", w[2])
	}
	if w[3].Kind != CondDTD {
		t.Errorf("cond3 = %+v", w[3])
	}
	r := sub.Report
	if r.AtMostCount != 500 || r.AtMostFreq != Weekly || r.Archive != Monthly {
		t.Errorf("report limits = %+v", r)
	}
}

func TestParseMetaConditions(t *testing.T) {
	sub, err := Parse(`subscription Meta
monitoring
select <M/>
where DTDID = 7
  and DOCID = 12
  and domain = "biology"
  and filename = "index.xml"
  and LastUpdate >= "2001-05-21"
  and LastAccessed < "2001-06-01"
  and self contains "genome"
report when immediate
`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	w := sub.Monitoring[0].Where
	if w[0].Num != 7 || w[1].Num != 12 {
		t.Errorf("ids = %+v %+v", w[0], w[1])
	}
	if w[4].Kind != CondLastUpdate || w[4].Cmp != CmpGe {
		t.Errorf("lastupdate = %+v", w[4])
	}
	if w[5].Kind != CondLastAccessed || w[5].Cmp != CmpLt {
		t.Errorf("lastaccessed = %+v", w[5])
	}
	if w[6].Kind != CondSelfContains || w[6].Str != "genome" {
		t.Errorf("selfcontains = %+v", w[6])
	}
}

func TestParseReportDisjunction(t *testing.T) {
	sub, err := Parse(`subscription R
monitoring select <P/> where URL extends "http://x.example/"
report when UpdatedPage.count > 10 or weekly or immediate
`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	w := sub.Report.When
	if len(w) != 3 || w[0].Kind != TermTagCount || w[0].Tag != "UpdatedPage" ||
		w[1].Kind != TermPeriodic || w[2].Kind != TermImmediate {
		t.Errorf("when = %+v", w)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"empty", ``},
		{"no name", `subscription`},
		{"no sections", `subscription S`},
		{"trailing garbage", `subscription S virtual A.B garbage...`},
		{"weak only", `subscription S
			monitoring select <P/> where modified self`},
		{"empty where", `subscription S
			monitoring select <P/> where`},
		{"bad url op", `subscription S
			monitoring select <P/> where URL like "x"`},
		{"short prefix", `subscription S
			monitoring select <P/> where URL extends "x"`},
		{"stopword", `subscription S
			monitoring select <P/> where self contains "the"`},
		{"stopword element", `subscription S
			monitoring select <P/> where Product contains "the"`},
		{"bare element", `subscription S
			monitoring select <P/> where Product`},
		{"unbound select var", `subscription S
			monitoring select X where URL extends "http://x/"`},
		{"self as var", `subscription S
			monitoring select X from self//a self where URL extends "http://x/"`},
		{"double var", `subscription S
			monitoring select X from self//a X, self//b X where URL extends "http://x/"`},
		{"bad builtin", `subscription S
			monitoring select <P u=NOPE/> where URL extends "http://x/"`},
		{"bad date", `subscription S
			monitoring select <P/> where LastUpdate > "yesterday"`},
		{"dup continuous", `subscription S
			continuous C select a from b c when weekly
			continuous C select a from b c when weekly`},
		{"no trigger ident", `subscription S
			continuous C select a from b c when`},
		{"unknown trigger label", `subscription S
			monitoring select <P/> where URL extends "http://x/"
			continuous C select a from b c when S.Nope`},
		{"bad report freq", `subscription S
			virtual A.B
			report when fortnightly`},
		{"bad atmost", `subscription S
			virtual A.B
			report when immediate atmost "x"`},
		{"bad refresh freq", `subscription S
			virtual A.B
			refresh "http://x/" sometimes`},
		{"dup report", `subscription S
			virtual A.B
			report when immediate
			report when immediate`},
		{"report without when", `subscription S
			virtual A.B
			report atmost 5`},
		{"wildcard var condition", `subscription S
			monitoring select X from self//* X where URL extends "http://x/" and new X`},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil {
			t.Errorf("%s: Parse should fail\n%s", c.name, c.src)
		}
	}
}

func TestConditionStrings(t *testing.T) {
	sub, err := Parse(`subscription S
monitoring
select <P/>
where URL extends "http://x.example/"
  and new Product contains "camera"
  and unchanged self
report when immediate
`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	joined := ""
	for _, c := range sub.Monitoring[0].Where {
		joined += c.String() + ";"
	}
	for _, want := range []string{`URL extends "http://x.example/"`, `new Product contains "camera"`, "unchanged self"} {
		if !strings.Contains(joined, want) {
			t.Errorf("condition strings %q missing %q", joined, want)
		}
	}
}

func TestFrequencyParsing(t *testing.T) {
	cases := map[string]Frequency{
		"hourly": Hourly, "daily": Daily, "biweekly": BiWeekly,
		"weekly": Weekly, "monthly": Monthly, "HOURLY": Hourly,
	}
	for in, want := range cases {
		got, ok := ParseFrequency(in)
		if !ok || got != want {
			t.Errorf("ParseFrequency(%q) = %v,%v", in, got, ok)
		}
	}
	if _, ok := ParseFrequency("yearly"); ok {
		t.Error("yearly should be rejected")
	}
}

func TestLiteralSelectWithContent(t *testing.T) {
	sub, err := Parse(`subscription Full
monitoring
select <Offer url=URL>"label" X DATE</Offer>
from self//Member X
where URL = "http://a.example/m.xml" and new X
report when immediate`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	lit := sub.Monitoring[0].Select.Literal
	if lit.Tag != "Offer" || len(lit.Children) != 3 {
		t.Fatalf("literal = %+v", lit)
	}
	if lit.Children[0].IsVar || lit.Children[0].Text != "label" {
		t.Errorf("child0 = %+v", lit.Children[0])
	}
	if !lit.Children[1].IsVar || lit.Children[1].Var != "X" {
		t.Errorf("child1 = %+v", lit.Children[1])
	}
	if !lit.Children[2].IsVar || lit.Children[2].Var != "DATE" {
		t.Errorf("child2 = %+v", lit.Children[2])
	}
	// Round-trips through the printer.
	reprint(t, sub.String())
}

func TestLiteralSelectContentErrors(t *testing.T) {
	cases := []string{
		`subscription S
monitoring select <O>Y</O> from self//M X where new X
report when immediate`, // unbound Y
		`subscription S
monitoring select <O>X</Wrong> from self//M X where new X
report when immediate`, // mismatched close tag
		`subscription S
monitoring select <O>X from self//M X where new X
report when immediate`, // unterminated literal
	}
	for i, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}
