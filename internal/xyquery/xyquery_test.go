package xyquery

import (
	"strings"
	"testing"
	"testing/quick"

	"xymon/internal/xmldom"
)

func museumForest() []*xmldom.Node {
	d1 := xmldom.MustParse(`<culture>
		<museum><address>Amsterdam Museumplein</address>
			<painting><title>Night Watch</title></painting>
			<painting><title>Milkmaid</title></painting>
		</museum>
		<museum><address>Paris</address>
			<painting><title>Mona Lisa</title></painting>
		</museum>
	</culture>`)
	d2 := xmldom.MustParse(`<culture>
		<museum><address>Amsterdam Jordaan</address>
			<painting><title>Sunflowers</title></painting>
		</museum>
	</culture>`)
	return []*xmldom.Node{d1.Root, d2.Root}
}

func mustParseQuery(t *testing.T, src string) *Query {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return q
}

func titles(nodes []*xmldom.Node) []string {
	var out []string
	for _, n := range nodes {
		out = append(out, n.TextContent())
	}
	return out
}

// TestPaperContinuousQuery runs the AmsterdamPaintings query of Section 5.2.
func TestPaperContinuousQuery(t *testing.T) {
	q := mustParseQuery(t, `select p/title
		from culture/museum m, m/painting p
		where m/address contains "Amsterdam"`)
	got, err := q.Eval(museumForest())
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	want := []string{"Night Watch", "Milkmaid", "Sunflowers"}
	if strings.Join(titles(got), "|") != strings.Join(want, "|") {
		t.Errorf("titles = %v, want %v", titles(got), want)
	}
	for _, n := range got {
		if n.Tag != "title" {
			t.Errorf("selected %q, want title elements", n.Tag)
		}
	}
}

func TestEvalElementWrapping(t *testing.T) {
	q := mustParseQuery(t, `select p/title from culture/museum m, m/painting p where m/address contains "Paris"`)
	e, err := q.EvalElement("ParisPaintings", museumForest())
	if err != nil {
		t.Fatalf("EvalElement: %v", err)
	}
	if e.Tag != "ParisPaintings" || len(e.Children) != 1 {
		t.Errorf("EvalElement = %s", e.XML())
	}
}

func TestSelfRootedDescendant(t *testing.T) {
	q := mustParseQuery(t, `select X from self//painting X`)
	got, err := q.Eval(museumForest())
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	if len(got) != 4 {
		t.Errorf("got %d paintings, want 4", len(got))
	}
}

func TestWildcardStep(t *testing.T) {
	q := mustParseQuery(t, `select m/* from culture/museum m where m/address = "Paris"`)
	got, err := q.Eval(museumForest())
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	// address + painting children of the Paris museum
	if len(got) != 2 {
		t.Errorf("got %d children, want 2: %v", len(got), titles(got))
	}
}

func TestPredicateOps(t *testing.T) {
	forest := museumForest()
	cases := []struct {
		src  string
		want int
	}{
		{`select m/painting from culture/museum m where m/address = "Paris"`, 1},
		{`select m/painting from culture/museum m where m/address != "Paris"`, 3},
		{`select m from culture/museum m where m strict contains "Paris"`, 0}, // text is under address, not museum
		{`select a from culture/museum m, m/address a where a strict contains "Paris"`, 1},
		{`select m from culture/museum m where m contains "jordaan"`, 1}, // case-insensitive word match
		{`select m from culture/museum m where m contains "jord"`, 0},    // not a substring match
	}
	for _, c := range cases {
		q := mustParseQuery(t, c.src)
		got, err := q.Eval(forest)
		if err != nil {
			t.Fatalf("Eval(%q): %v", c.src, err)
		}
		if len(got) != c.want {
			t.Errorf("%q: got %d results, want %d", c.src, len(got), c.want)
		}
	}
}

func TestConjunction(t *testing.T) {
	q := mustParseQuery(t, `select p/title
		from culture/museum m, m/painting p
		where m/address contains "Amsterdam" and p/title contains "milkmaid"`)
	got, err := q.Eval(museumForest())
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	if len(got) != 1 || got[0].TextContent() != "Milkmaid" {
		t.Errorf("got %v, want [Milkmaid]", titles(got))
	}
}

func TestNoFromClause(t *testing.T) {
	q := mustParseQuery(t, `select self//title where self contains "sunflowers"`)
	got, err := q.Eval(museumForest())
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	// The self predicate holds for the second document only; select runs
	// over all roots once (no bindings), so all titles of all docs are
	// returned when any root contains the word.
	if len(got) == 0 {
		t.Error("expected results")
	}
}

func TestEvalClonesResults(t *testing.T) {
	forest := museumForest()
	q := mustParseQuery(t, `select m/address from culture/museum m`)
	got, err := q.Eval(forest)
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	got[0].Children[0].Text = "MUTATED"
	if strings.Contains(forest[0].TextContent(), "MUTATED") {
		t.Error("Eval must return clones, not aliases into the source tree")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,
		`from x y`,
		`select`,
		`select a from`,
		`select a from b`,
		`select a where b ~ "x"`,
		`select a where b contains`,
		`select a/`,
		`select a from b c extra`,
		`select a where b ! "x"`,
		`select a where b strict "x"`,
		`select a where b contains "unterminated`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestValidate(t *testing.T) {
	q := mustParseQuery(t, `select a from x/y a, x/z a`)
	if _, err := q.Eval(nil); err == nil {
		t.Error("double binding should fail validation")
	}
	q2 := mustParseQuery(t, `select a from x/y self`)
	if _, err := q2.Eval(nil); err == nil {
		t.Error("binding 'self' should fail validation")
	}
}

func TestQueryString(t *testing.T) {
	src := `select p/title from culture/museum m, m/painting p where m/address contains "Amsterdam" and p/title != "x"`
	q := mustParseQuery(t, src)
	// The printed form must reparse to an equivalent query.
	q2 := mustParseQuery(t, q.String())
	if q.String() != q2.String() {
		t.Errorf("String round trip: %q vs %q", q.String(), q2.String())
	}
}

func TestDescendantPathInPredicate(t *testing.T) {
	q := mustParseQuery(t, `select m from culture//museum m where m//title contains "sunflowers"`)
	got, err := q.Eval(museumForest())
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	if len(got) != 1 {
		t.Errorf("got %d museums, want 1", len(got))
	}
}

func TestDistinctRemovesDuplicates(t *testing.T) {
	// The paper's reporting example: remove duplicate URLs of pages found
	// updated several times.
	report := xmldom.MustParse(`<Report>
		<UpdatedPage url="http://a/"/>
		<UpdatedPage url="http://b/"/>
		<UpdatedPage url="http://a/"/>
	</Report>`)
	q := mustParseQuery(t, `select distinct p from Report/UpdatedPage p`)
	got, err := q.Eval([]*xmldom.Node{report.Root})
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	if len(got) != 2 {
		t.Errorf("distinct results = %d, want 2", len(got))
	}
	// Without distinct: all three.
	q2 := mustParseQuery(t, `select p from Report/UpdatedPage p`)
	got2, _ := q2.Eval([]*xmldom.Node{report.Root})
	if len(got2) != 3 {
		t.Errorf("plain results = %d, want 3", len(got2))
	}
}

func TestAttributeStep(t *testing.T) {
	report := xmldom.MustParse(`<Report>
		<site url="http://www.yahoo.com"/>
		<site url="http://www.amazone.com"/>
		<site/>
	</Report>`)
	q := mustParseQuery(t, `select s/@url from Report/site s`)
	got, err := q.Eval([]*xmldom.Node{report.Root})
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	if len(got) != 2 || got[0].TextContent() != "http://www.yahoo.com" {
		t.Errorf("attribute values = %v", titles(got))
	}
	// Attribute steps also work in predicates.
	q2 := mustParseQuery(t, `select s from Report/site s where s/@url contains "yahoo"`)
	got2, _ := q2.Eval([]*xmldom.Node{report.Root})
	if len(got2) != 1 {
		t.Errorf("predicate on attribute matched %d, want 1", len(got2))
	}
}

func TestAttributeStepMustBeLast(t *testing.T) {
	if _, err := Parse(`select s/@url/x from Report/site s`); err == nil {
		t.Error("attribute step in the middle of a path should be rejected")
	}
	if _, err := Parse(`select s/@* from Report/site s`); err == nil {
		t.Error("@* should be rejected")
	}
}

func TestNumericComparisons(t *testing.T) {
	catalog := xmldom.MustParse(`<catalog>
		<product><name>radio</name><price>9</price></product>
		<product><name>tv</name><price>100</price></product>
		<product><name>hifi</name><price>30</price></product>
	</catalog>`)
	roots := []*xmldom.Node{catalog.Root}
	q := mustParseQuery(t, `select p/name from catalog/product p where p/price < "50"`)
	got, err := q.Eval(roots)
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	// Numeric, not lexicographic: 9 < 50 even though "9" > "50" as strings.
	if len(got) != 2 || got[0].TextContent() != "radio" || got[1].TextContent() != "hifi" {
		t.Errorf("cheap products = %v", titles(got))
	}
	q2 := mustParseQuery(t, `select p/name from catalog/product p where p/price > "50"`)
	got2, _ := q2.Eval(roots)
	if len(got2) != 1 || got2[0].TextContent() != "tv" {
		t.Errorf("expensive products = %v", titles(got2))
	}
	// Non-numeric values fall back to lexical comparison.
	q3 := mustParseQuery(t, `select p/name from catalog/product p where p/name < "s"`)
	got3, _ := q3.Eval(roots)
	if len(got3) != 2 {
		t.Errorf("lexical comparison = %v", titles(got3))
	}
}

func TestQueryStringWithExtensions(t *testing.T) {
	src := `select distinct s/@url from Report/site s where s/@rank > "3"`
	q := mustParseQuery(t, src)
	q2 := mustParseQuery(t, q.String())
	if q.String() != q2.String() {
		t.Errorf("round trip: %q vs %q", q.String(), q2.String())
	}
}

// Quick property: the parser never panics; parsed queries print to a form
// that reparses to the same printed form.
func TestQuickParseAndPrint(t *testing.T) {
	words := []string{
		"select", "distinct", "from", "where", "and", "contains", "strict",
		"self", "a", "b/c", "m//painting", "p", "@url", "/", "*", ",",
		"=", "!", "<", ">", `"x"`, "42",
	}
	f := func(picks []uint8) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		src := ""
		for _, p := range picks {
			src += words[int(p)%len(words)] + " "
		}
		q, err := Parse(src)
		if err != nil {
			return true
		}
		q2, err := Parse(q.String())
		if err != nil {
			t.Logf("printed form does not reparse: %q -> %q: %v", src, q.String(), err)
			return false
		}
		return q2.String() == q.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// Quick property: distinct is idempotent and never increases result count.
func TestQuickDistinctIdempotent(t *testing.T) {
	report := xmldom.MustParse(`<R><a>1</a><a>1</a><a>2</a><b>1</b><b>1</b></R>`)
	roots := []*xmldom.Node{report.Root}
	plain := mustParseQuery(t, `select x from self//a x`)
	dedup := mustParseQuery(t, `select distinct x from self//a x`)
	p, err := plain.Eval(roots)
	if err != nil {
		t.Fatal(err)
	}
	d, err := dedup.Eval(roots)
	if err != nil {
		t.Fatal(err)
	}
	if len(d) > len(p) || len(d) != 2 {
		t.Errorf("plain=%d distinct=%d", len(p), len(d))
	}
}
