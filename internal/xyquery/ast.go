// Package xyquery implements the small XML query language used by the
// subscription system for continuous queries and report queries (the paper
// uses the Xyleme query processor [2]; this package is its stand-in). A
// query has the familiar shape
//
//	select p/title
//	from culture/museum m, m/painting p
//	where m/address contains "Amsterdam"
//
// and is evaluated over a forest of document roots (a semantic-domain view
// of the warehouse, or the notification stream of a report).
package xyquery

import "strings"

// Axis selects how a path step walks the tree.
type Axis int

const (
	// Child matches direct element children ("/").
	Child Axis = iota
	// Descendant matches any descendant element ("//").
	Descendant
)

// Step is one component of a path: an axis plus an element name, where "*"
// matches any tag. A step with Attr set selects an attribute of the nodes
// reached so far ("site/@url") and must be the last step; the attribute
// value is materialised as a text node.
type Step struct {
	Axis Axis
	Name string
	Attr bool
}

// Path is a path expression. Root is the first identifier: a variable name
// (bound by a from clause), the keyword "self" (every input root), or an
// absolute root tag. RootAxis applies when Root is not a variable and is
// Descendant for paths like "self//Member".
type Path struct {
	Root  string
	Steps []Step
}

func (p Path) String() string {
	var b strings.Builder
	b.WriteString(p.Root)
	for _, s := range p.Steps {
		if s.Axis == Descendant {
			b.WriteString("//")
		} else {
			b.WriteString("/")
		}
		if s.Attr {
			b.WriteString("@")
		}
		b.WriteString(s.Name)
	}
	return b.String()
}

// FromItem binds Var to every node reached by Path.
type FromItem struct {
	Path Path
	Var  string
}

// PredOp is a predicate operator.
type PredOp int

const (
	// OpContains: a word occurs in the subtree's text ("contains").
	OpContains PredOp = iota
	// OpStrictContains: a word occurs directly in the element's own data
	// children ("strict contains").
	OpStrictContains
	// OpEq: the subtree's text equals the value.
	OpEq
	// OpNeq: the subtree's text differs from the value.
	OpNeq
	// OpLt / OpGt compare numerically when both sides parse as numbers,
	// lexically otherwise.
	OpLt
	OpGt
)

func (o PredOp) String() string {
	switch o {
	case OpContains:
		return "contains"
	case OpStrictContains:
		return "strict contains"
	case OpEq:
		return "="
	case OpNeq:
		return "!="
	case OpLt:
		return "<"
	case OpGt:
		return ">"
	}
	return "?"
}

// Predicate is one atomic condition of the where clause. Predicates are
// existential: true when at least one node reached by Path satisfies the
// comparison.
type Predicate struct {
	Path  Path
	Op    PredOp
	Value string
}

// Query is a parsed select/from/where query. Distinct drops duplicate
// results (structurally identical selected subtrees) — the paper's
// reporting example "removes duplicate URLs of pages that have been found
// updated several times".
type Query struct {
	Distinct bool
	Select   Path
	From     []FromItem
	Where    []Predicate
}

func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("select ")
	if q.Distinct {
		b.WriteString("distinct ")
	}
	b.WriteString(q.Select.String())
	if len(q.From) > 0 {
		b.WriteString(" from ")
		for i, f := range q.From {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(f.Path.String())
			b.WriteString(" ")
			b.WriteString(f.Var)
		}
	}
	if len(q.Where) > 0 {
		b.WriteString(" where ")
		for i, p := range q.Where {
			if i > 0 {
				b.WriteString(" and ")
			}
			b.WriteString(p.Path.String())
			b.WriteString(" ")
			b.WriteString(p.Op.String())
			b.WriteString(" \"")
			b.WriteString(p.Value)
			b.WriteString("\"")
		}
	}
	return b.String()
}
