package xyquery

import (
	"fmt"
	"strconv"
	"strings"

	"xymon/internal/xmldom"
)

// Eval runs the query over a forest of document roots and returns the
// selected nodes as deep clones, in document order of the bindings. The
// from clauses bind variables with nested-loop semantics; the where
// predicates filter bindings conjunctively.
func (q *Query) Eval(roots []*xmldom.Node) ([]*xmldom.Node, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	var out []*xmldom.Node
	bindings := map[string]*xmldom.Node{}
	var loop func(i int) error
	loop = func(i int) error {
		if i == len(q.From) {
			for _, pred := range q.Where {
				ok, err := evalPredicate(pred, roots, bindings)
				if err != nil {
					return err
				}
				if !ok {
					return nil
				}
			}
			nodes, err := resolvePath(q.Select, roots, bindings)
			if err != nil {
				return err
			}
			for _, n := range nodes {
				out = append(out, n.Clone())
			}
			return nil
		}
		item := q.From[i]
		nodes, err := resolvePath(item.Path, roots, bindings)
		if err != nil {
			return err
		}
		for _, n := range nodes {
			bindings[item.Var] = n
			if err := loop(i + 1); err != nil {
				return err
			}
		}
		delete(bindings, item.Var)
		return nil
	}
	if err := loop(0); err != nil {
		return nil, err
	}
	if q.Distinct {
		seen := make(map[string]bool, len(out))
		uniq := out[:0]
		for _, n := range out {
			key := n.XML()
			if !seen[key] {
				seen[key] = true
				uniq = append(uniq, n)
			}
		}
		out = uniq
	}
	return out, nil
}

// EvalElement runs the query and wraps the results in an element with the
// given tag — the shape continuous-query notifications take in reports
// (e.g. <AmsterdamPaintings>…</AmsterdamPaintings>).
func (q *Query) EvalElement(tag string, roots []*xmldom.Node) (*xmldom.Node, error) {
	nodes, err := q.Eval(roots)
	if err != nil {
		return nil, err
	}
	e := xmldom.Element(tag)
	for _, n := range nodes {
		e.AppendChild(n)
	}
	return e, nil
}

// Validate checks variable scoping: every variable used in select/where
// must be bound by an earlier from clause, and from-clause paths may only
// reference previously bound variables.
func (q *Query) Validate() error {
	bound := map[string]bool{}
	for _, item := range q.From {
		if item.Path.Root != "self" && bound[item.Path.Root] {
			// relative path rooted at an earlier variable — fine
		}
		if item.Var == "self" {
			return fmt.Errorf("xyquery: 'self' cannot be used as a variable name")
		}
		if bound[item.Var] {
			return fmt.Errorf("xyquery: variable %q bound twice", item.Var)
		}
		bound[item.Var] = true
	}
	return nil
}

// Resolve evaluates a path over roots with no variable bindings, returning
// the reached nodes (not clones). The subscription manager uses it to
// materialise `select X from self//Member X` notification payloads.
func Resolve(p Path, roots []*xmldom.Node) []*xmldom.Node {
	nodes, _ := resolvePath(p, roots, nil)
	return nodes
}

// resolvePath evaluates a path: variable-rooted paths start at the bound
// node; self-rooted paths start at every input root; absolute paths start
// at roots whose tag matches the first component.
func resolvePath(p Path, roots []*xmldom.Node, bindings map[string]*xmldom.Node) ([]*xmldom.Node, error) {
	var current []*xmldom.Node
	switch {
	case bindings[p.Root] != nil:
		current = []*xmldom.Node{bindings[p.Root]}
	case p.Root == "self":
		current = roots
	default:
		for _, r := range roots {
			if r.Type == xmldom.ElementNode && (r.Tag == p.Root || p.Root == "*") {
				current = append(current, r)
			}
		}
	}
	for _, step := range p.Steps {
		var next []*xmldom.Node
		if step.Attr {
			// Attribute steps materialise the value as a text node.
			for _, n := range current {
				if v, ok := n.Attr(step.Name); ok {
					next = append(next, xmldom.Text(v))
				}
			}
			current = next
			continue
		}
		for _, n := range current {
			if step.Axis == Child {
				for _, c := range n.Children {
					if c.Type == xmldom.ElementNode && (step.Name == "*" || c.Tag == step.Name) {
						next = append(next, c)
					}
				}
			} else {
				n.PreOrder(func(c *xmldom.Node) bool {
					if c != n && c.Type == xmldom.ElementNode && (step.Name == "*" || c.Tag == step.Name) {
						next = append(next, c)
					}
					return true
				})
			}
		}
		current = next
	}
	return current, nil
}

func evalPredicate(pred Predicate, roots []*xmldom.Node, bindings map[string]*xmldom.Node) (bool, error) {
	nodes, err := resolvePath(pred.Path, roots, bindings)
	if err != nil {
		return false, err
	}
	for _, n := range nodes {
		if nodeSatisfies(n, pred.Op, pred.Value) {
			return true, nil
		}
	}
	// Neq is also existential: true if some reached node differs. With no
	// reached nodes every predicate is false.
	return false, nil
}

func nodeSatisfies(n *xmldom.Node, op PredOp, value string) bool {
	switch op {
	case OpContains:
		return xmldom.ContainsWord(n.TextContent(), xmldom.NormalizeWord(value))
	case OpStrictContains:
		for _, c := range n.Children {
			if c.Type == xmldom.TextNode && xmldom.ContainsWord(c.Text, xmldom.NormalizeWord(value)) {
				return true
			}
		}
		return false
	case OpEq:
		return n.TextContent() == value
	case OpNeq:
		return n.TextContent() != value
	case OpLt:
		return compareValues(n.TextContent(), value) < 0
	case OpGt:
		return compareValues(n.TextContent(), value) > 0
	}
	return false
}

// compareValues compares numerically when both sides parse as numbers and
// lexically otherwise.
func compareValues(a, b string) int {
	fa, errA := strconv.ParseFloat(strings.TrimSpace(a), 64)
	fb, errB := strconv.ParseFloat(strings.TrimSpace(b), 64)
	if errA == nil && errB == nil {
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		}
		return 0
	}
	return strings.Compare(a, b)
}
