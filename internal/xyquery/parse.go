package xyquery

import (
	"xymon/internal/lex"
)

// Parse parses a complete query. The input must start with `select` and
// consume the whole string.
func Parse(src string) (*Query, error) {
	p := &parser{lx: lex.New(src)}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if t := p.lx.Peek(); t.Kind != lex.EOF {
		return nil, lex.Errorf(t, "unexpected %s after query", t)
	}
	if err := p.lx.Err(); err != nil {
		return nil, err
	}
	return q, nil
}

// ParsePrefix parses a query from a lexer positioned at its `select`
// keyword and stops at the first token that cannot continue the query,
// leaving it unconsumed. The subscription parser uses this to embed
// queries inside subscription bodies.
func ParsePrefix(lx *lex.Lexer) (*Query, error) {
	p := &parser{lx: lx}
	return p.parseQuery()
}

type parser struct {
	lx *lex.Lexer
}

func (p *parser) parseQuery() (*Query, error) {
	t := p.lx.Next()
	if !t.Is("select") {
		return nil, lex.Errorf(t, "expected 'select', got %s", t)
	}
	q := &Query{}
	if p.lx.Peek().Is("distinct") {
		p.lx.Next()
		q.Distinct = true
	}
	sel, err := p.parsePath()
	if err != nil {
		return nil, err
	}
	q.Select = sel
	if p.lx.Peek().Is("from") {
		p.lx.Next()
		for {
			item, err := p.parseFromItem()
			if err != nil {
				return nil, err
			}
			q.From = append(q.From, item)
			if !p.lx.Peek().IsSymbol(",") {
				break
			}
			p.lx.Next()
		}
	}
	if p.lx.Peek().Is("where") {
		p.lx.Next()
		for {
			pred, err := p.parsePredicate()
			if err != nil {
				return nil, err
			}
			q.Where = append(q.Where, pred)
			if !p.lx.Peek().Is("and") {
				break
			}
			p.lx.Next()
		}
	}
	return q, nil
}

func (p *parser) parseFromItem() (FromItem, error) {
	path, err := p.parsePath()
	if err != nil {
		return FromItem{}, err
	}
	t := p.lx.Next()
	if t.Kind != lex.Ident {
		return FromItem{}, lex.Errorf(t, "expected variable name after path, got %s", t)
	}
	return FromItem{Path: path, Var: t.Text}, nil
}

func (p *parser) parsePath() (Path, error) {
	t := p.lx.Next()
	if t.Kind != lex.Ident {
		return Path{}, lex.Errorf(t, "expected path, got %s", t)
	}
	path := Path{Root: t.Text}
	for p.lx.Peek().IsSymbol("/") {
		if len(path.Steps) > 0 && path.Steps[len(path.Steps)-1].Attr {
			return Path{}, lex.Errorf(p.lx.Peek(), "attribute step must be last in a path")
		}
		p.lx.Next()
		axis := Child
		if p.lx.Peek().IsSymbol("/") {
			p.lx.Next()
			axis = Descendant
		}
		t := p.lx.Next()
		var name string
		attr := false
		if t.IsSymbol("@") {
			attr = true
			t = p.lx.Next()
		}
		switch {
		case t.Kind == lex.Ident:
			name = t.Text
		case t.IsSymbol("*") && !attr:
			name = "*"
		default:
			return Path{}, lex.Errorf(t, "expected step name after '/', got %s", t)
		}
		path.Steps = append(path.Steps, Step{Axis: axis, Name: name, Attr: attr})
	}
	return path, nil
}

func (p *parser) parsePredicate() (Predicate, error) {
	path, err := p.parsePath()
	if err != nil {
		return Predicate{}, err
	}
	t := p.lx.Next()
	var op PredOp
	switch {
	case t.Is("contains"):
		op = OpContains
	case t.Is("strict"):
		t2 := p.lx.Next()
		if !t2.Is("contains") {
			return Predicate{}, lex.Errorf(t2, "expected 'contains' after 'strict', got %s", t2)
		}
		op = OpStrictContains
	case t.IsSymbol("="):
		op = OpEq
	case t.IsSymbol("!"):
		t2 := p.lx.Next()
		if !t2.IsSymbol("=") {
			return Predicate{}, lex.Errorf(t2, "expected '=' after '!', got %s", t2)
		}
		op = OpNeq
	case t.IsSymbol("<"):
		op = OpLt
	case t.IsSymbol(">"):
		op = OpGt
	default:
		return Predicate{}, lex.Errorf(t, "expected predicate operator, got %s", t)
	}
	v := p.lx.Next()
	if v.Kind != lex.String && v.Kind != lex.Number && v.Kind != lex.Ident {
		return Predicate{}, lex.Errorf(v, "expected value, got %s", v)
	}
	return Predicate{Path: path, Op: op, Value: v.Text}, nil
}
