// Empirical validation of the complexity claims of Section 4.2, using the
// matcher's probe counters rather than wall-clock time so the test is
// stable on any machine. External test package: the workloads come from
// webgen, which itself depends on core.
package core_test

import (
	"testing"

	"xymon/internal/core"
	"xymon/internal/webgen"
)

func probesPerDoc(t *testing.T, cardA, cardC, m, p int) float64 {
	t.Helper()
	w := webgen.GenEventWorkload(77, cardA, cardC, m, p, 256)
	matcher := core.NewMatcher()
	if err := w.Load(matcher.Add); err != nil {
		t.Fatalf("load: %v", err)
	}
	for _, d := range w.Docs {
		matcher.Match(d)
	}
	st := matcher.Stats()
	return float64(st.CellProbes) / float64(st.MatchCalls)
}

// TestProbesLinearInP: the number of cell probes grows linearly with the
// document's event count p (the Figure 5 claim, in probes).
func TestProbesLinearInP(t *testing.T) {
	const (
		cardA = 20000
		cardC = 20000
		m     = 3
	)
	p20 := probesPerDoc(t, cardA, cardC, m, 20)
	p80 := probesPerDoc(t, cardA, cardC, m, 80)
	ratio := p80 / p20
	// Linear would be 4.0; superlinearity comes only from longer suffixes
	// entering subtables. Accept a generous band around linear.
	if ratio < 2.5 || ratio > 8 {
		t.Errorf("probes grew by %.2fx from p=20 to p=80 (p20=%.1f p80=%.1f); want roughly linear (~4x)",
			ratio, p20, p80)
	}
}

// TestProbesSublinearInK: multiplying Card(C) (and hence k) by 25 must
// multiply probes by far less — the Figure 6 logarithmic behaviour. A
// linear-in-k algorithm (like the counting baseline) would scale by ~25.
func TestProbesSublinearInK(t *testing.T) {
	const (
		cardA = 20000
		m     = 3
		p     = 20
	)
	small := probesPerDoc(t, cardA, 8000, m, p)   // k = 1.2
	large := probesPerDoc(t, cardA, 200000, m, p) // k = 30
	ratio := large / small
	if ratio > 10 {
		t.Errorf("probes grew by %.2fx for a 25x k increase (small=%.1f large=%.1f); want logarithmic growth",
			ratio, small, large)
	}
}

// TestProbesIndependentOfM: the Section 4.2 claim that m does not affect
// the cost (for p >= m).
func TestProbesIndependentOfM(t *testing.T) {
	const (
		cardA = 20000
		cardC = 20000
		p     = 20
	)
	m2 := probesPerDoc(t, cardA, cardC, 2, p)
	m8 := probesPerDoc(t, cardA, cardC, 8, p)
	ratio := m8 / m2
	if ratio < 0.4 || ratio > 2.5 {
		t.Errorf("probes changed by %.2fx from m=2 to m=8 (m2=%.1f m8=%.1f); want roughly flat",
			ratio, m2, m8)
	}
}
