package core

import (
	"bytes"
	"testing"
)

// FuzzReadCompact checks snapshot decoding never panics and that any
// accepted snapshot can be matched against safely.
func FuzzReadCompact(f *testing.F) {
	m := NewMatcher()
	m.Add(1, []Event{1, 2})
	m.Add(2, []Event{2, 3, 4})
	var buf bytes.Buffer
	Freeze(m).WriteTo(&buf)
	f.Add(buf.Bytes())
	f.Add([]byte("XYC1 garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := ReadCompact(bytes.NewReader(data))
		if err != nil {
			return
		}
		c.Match(EventSet{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	})
}
