package core

import (
	"math/rand"
	"sort"
	"testing"
)

func TestCompactMatchesPaperExample(t *testing.T) {
	m := figure4Matcher(t)
	c := Freeze(m)
	got := c.Match(EventSet{1, 3, 5})
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	want := []ComplexID{3, 4, 10, 15}
	if !equalIDs(got, want) {
		t.Errorf("Compact.Match({a1,a3,a5}) = %v, want %v", got, want)
	}
	if c.Len() != m.Len() {
		t.Errorf("Len = %d, want %d", c.Len(), m.Len())
	}
}

// TestCompactAgreesWithMatcher freezes random structures and cross-checks
// every match result against the live matcher.
func TestCompactAgreesWithMatcher(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		universe := 40 + rng.Intn(150)
		m := NewMatcher()
		n := 1 + rng.Intn(400)
		for id := ComplexID(0); int(id) < n; id++ {
			arity := 1 + rng.Intn(5)
			events := make([]Event, arity)
			for i := range events {
				events[i] = Event(rng.Intn(universe))
			}
			if err := m.Add(id, events); err != nil {
				t.Fatalf("Add: %v", err)
			}
		}
		c := Freeze(m)
		for doc := 0; doc < 30; doc++ {
			s := randomSet(rng, 20, universe)
			want := sortedMatch(m, s)
			got := c.Match(s)
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			if !equalIDs(got, want) {
				t.Fatalf("trial %d: Compact.Match(%v) = %v, live = %v", trial, s, got, want)
			}
		}
	}
}

func TestCompactEmpty(t *testing.T) {
	c := Freeze(NewMatcher())
	if got := c.Match(EventSet{1, 2, 3}); len(got) != 0 {
		t.Errorf("empty Compact matched %v", got)
	}
	if c.Len() != 0 || c.MemoryEstimate() != 0 {
		t.Errorf("Len=%d Mem=%d", c.Len(), c.MemoryEstimate())
	}
}

func TestCompactIsSmallerThanLiveStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	m := NewMatcher()
	for id := ComplexID(0); id < 5000; id++ {
		events := []Event{
			Event(rng.Intn(2000)), Event(rng.Intn(2000)), Event(rng.Intn(2000)),
		}
		if err := m.Add(id, events); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	c := Freeze(m)
	if c.MemoryEstimate() >= m.MemoryEstimate() {
		t.Errorf("Compact %d B >= live %d B", c.MemoryEstimate(), m.MemoryEstimate())
	}
}

func TestCompactMatchAppend(t *testing.T) {
	m := figure4Matcher(t)
	c := Freeze(m)
	buf := make([]ComplexID, 0, 16)
	out := c.MatchAppend(buf, EventSet{1, 3, 5})
	if len(out) != 4 || cap(out) != cap(buf) {
		t.Errorf("MatchAppend = %v (cap %d)", out, cap(out))
	}
}
