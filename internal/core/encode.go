package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// The wire format of a frozen matcher: how a subscription-base snapshot
// would ship to the partitioned Monitoring Query Processors of the
// Section 4.2 distribution discussion. Little-endian throughout:
//
//	magic "XYC1" | complex u32 | rootLen u32
//	| nEntries u32 | entries (event u32, childOff i32, childLen i32, markOff i32, markLen i32)*
//	| nMarks u32 | marks (u32)*

var compactMagic = [4]byte{'X', 'Y', 'C', '1'}

// ErrBadSnapshot is returned when decoding input that is not a valid
// frozen-matcher snapshot.
var ErrBadSnapshot = errors.New("core: invalid matcher snapshot")

// WriteTo serialises the frozen matcher.
func (c *Compact) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: w}
	write := func(v any) error { return binary.Write(cw, binary.LittleEndian, v) }
	if _, err := cw.Write(compactMagic[:]); err != nil {
		return cw.n, err
	}
	if err := write(uint32(c.complex)); err != nil {
		return cw.n, err
	}
	if err := write(uint32(c.rootLen)); err != nil {
		return cw.n, err
	}
	if err := write(uint32(len(c.entries))); err != nil {
		return cw.n, err
	}
	for _, e := range c.entries {
		if err := write(uint32(e.event)); err != nil {
			return cw.n, err
		}
		for _, v := range []int32{e.childOff, e.childLen, e.markOff, e.markLen} {
			if err := write(v); err != nil {
				return cw.n, err
			}
		}
	}
	if err := write(uint32(len(c.marks))); err != nil {
		return cw.n, err
	}
	for _, m := range c.marks {
		if err := write(uint32(m)); err != nil {
			return cw.n, err
		}
	}
	return cw.n, nil
}

// ReadCompact deserialises a frozen matcher written by WriteTo.
func ReadCompact(r io.Reader) (*Compact, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if magic != compactMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadSnapshot, magic[:])
	}
	read := func(v any) error { return binary.Read(r, binary.LittleEndian, v) }
	var complex32, rootLen, nEntries uint32
	if err := read(&complex32); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if err := read(&rootLen); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if err := read(&nEntries); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	const maxEntries = 1 << 28 // refuse absurd allocations from corrupt input
	if nEntries > maxEntries || rootLen > nEntries {
		return nil, fmt.Errorf("%w: %d entries, root %d", ErrBadSnapshot, nEntries, rootLen)
	}
	c := &Compact{
		complex: int(complex32),
		rootLen: int32(rootLen),
		entries: make([]compactEntry, nEntries),
	}
	for i := range c.entries {
		var ev uint32
		if err := read(&ev); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
		}
		e := &c.entries[i]
		e.event = Event(ev)
		for _, p := range []*int32{&e.childOff, &e.childLen, &e.markOff, &e.markLen} {
			if err := read(p); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
			}
		}
	}
	var nMarks uint32
	if err := read(&nMarks); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if nMarks > maxEntries {
		return nil, fmt.Errorf("%w: %d marks", ErrBadSnapshot, nMarks)
	}
	c.marks = make([]ComplexID, nMarks)
	for i := range c.marks {
		var m uint32
		if err := read(&m); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
		}
		c.marks[i] = ComplexID(m)
	}
	if err := c.validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// validate checks internal offsets so a corrupt snapshot cannot cause
// out-of-range panics during Match.
func (c *Compact) validate() error {
	n := int32(len(c.entries))
	nm := int32(len(c.marks))
	for i := range c.entries {
		e := &c.entries[i]
		if e.childLen < 0 || e.markLen < 0 {
			return fmt.Errorf("%w: negative extent at entry %d", ErrBadSnapshot, i)
		}
		if e.childOff >= 0 && (e.childOff > n || e.childOff+e.childLen > n) {
			return fmt.Errorf("%w: child extent out of range at entry %d", ErrBadSnapshot, i)
		}
		if e.markOff < 0 || e.markOff+e.markLen > nm {
			return fmt.Errorf("%w: mark extent out of range at entry %d", ErrBadSnapshot, i)
		}
	}
	return nil
}

type countWriter struct {
	w io.Writer
	n int64
}

func (cw *countWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}
