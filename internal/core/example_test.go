package core_test

import (
	"fmt"
	"sort"

	"xymon/internal/core"
)

// The worked example of Section 4.2: the structure of Figure 4 receives a
// document that raised atomic events {a1, a3, a5} and detects the four
// complex events contained in it.
func ExampleMatcher_Match() {
	m := core.NewMatcher()
	m.Add(10, []core.Event{1, 3})     // c10: a1 a3
	m.Add(3, []core.Event{1, 3, 5})   // c3:  a1 a3 a5
	m.Add(201, []core.Event{1, 3, 4}) // c201: a1 a3 a4
	m.Add(15, []core.Event{3})        // c15: a3
	m.Add(4, []core.Event{5})         // c4:  a5
	m.Add(9, []core.Event{1, 7})      // c9:  a1 a7

	matched := m.Match(core.EventSet{1, 3, 5})
	sort.Slice(matched, func(i, j int) bool { return matched[i] < matched[j] })
	fmt.Println(matched)
	// Output: [3 4 10 15]
}

func ExampleCanonical() {
	fmt.Println(core.Canonical([]core.Event{9, 3, 9, 1, 3}))
	// Output: [1 3 9]
}

func ExampleFreeze() {
	m := core.NewMatcher()
	m.Add(1, []core.Event{2, 4})
	m.Add(2, []core.Event{4})
	frozen := core.Freeze(m)
	matched := frozen.Match(core.EventSet{2, 4})
	sort.Slice(matched, func(i, j int) bool { return matched[i] < matched[j] })
	fmt.Println(matched, frozen.Len())
	// Output: [1 2] 2
}
