package core

import "sync"

// Partitioned splits the subscription base across several independent
// matchers, the "Memory" distribution of Section 4.2: each block of the
// partition holds a smaller structure and a document's event set is matched
// against every block. Within one process this bounds per-structure size
// and lets blocks be matched in parallel; across machines each block would
// live on its own host.
//
// The complementary "Processing speed" distribution — splitting the flow of
// documents — needs no dedicated structure: Matcher.Match is safe for
// concurrent use, so independent goroutines (or machines holding replicas)
// simply share the flow.
type Partitioned struct {
	blocks   []*Matcher
	parallel bool
}

// NewPartitioned creates a subscription-partitioned processor with n blocks
// (n must be at least 1). When parallel is true, Match fans out across
// blocks with one goroutine per block.
func NewPartitioned(n int, parallel bool) *Partitioned {
	if n < 1 {
		n = 1
	}
	p := &Partitioned{blocks: make([]*Matcher, n), parallel: parallel}
	for i := range p.blocks {
		p.blocks[i] = NewMatcher()
	}
	return p
}

// Blocks returns the number of partition blocks.
func (p *Partitioned) Blocks() int { return len(p.blocks) }

func (p *Partitioned) block(id ComplexID) *Matcher {
	return p.blocks[int(id)%len(p.blocks)]
}

// Add registers a complex event; the block is chosen by hashing the id so
// the partition stays balanced under churn.
func (p *Partitioned) Add(id ComplexID, events []Event) error {
	return p.block(id).Add(id, events)
}

// Remove unregisters a complex event.
func (p *Partitioned) Remove(id ComplexID) error {
	return p.block(id).Remove(id)
}

// Match returns all complex events contained in s across every block.
func (p *Partitioned) Match(s EventSet) []ComplexID {
	if !p.parallel || len(p.blocks) == 1 {
		var out []ComplexID
		for _, b := range p.blocks {
			out = b.MatchAppend(out, s)
		}
		return out
	}
	results := make([][]ComplexID, len(p.blocks))
	var wg sync.WaitGroup
	for i, b := range p.blocks {
		wg.Add(1)
		go func(i int, b *Matcher) {
			defer wg.Done()
			results[i] = b.Match(s)
		}(i, b)
	}
	wg.Wait()
	var out []ComplexID
	for _, r := range results {
		out = append(out, r...)
	}
	return out
}

// Len returns the total number of registered complex events.
func (p *Partitioned) Len() int {
	n := 0
	for _, b := range p.blocks {
		n += b.Len()
	}
	return n
}

// MemoryEstimate sums the per-block structure estimates.
func (p *Partitioned) MemoryEstimate() int64 {
	var total int64
	for _, b := range p.blocks {
		total += b.MemoryEstimate()
	}
	return total
}
