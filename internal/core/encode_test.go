package core

import (
	"bytes"
	"errors"
	"math/rand"
	"sort"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	m := figure4Matcher(t)
	c := Freeze(m)
	var buf bytes.Buffer
	n, err := c.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	c2, err := ReadCompact(&buf)
	if err != nil {
		t.Fatalf("ReadCompact: %v", err)
	}
	if c2.Len() != c.Len() {
		t.Errorf("Len = %d, want %d", c2.Len(), c.Len())
	}
	got := c2.Match(EventSet{1, 3, 5})
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if !equalIDs(got, []ComplexID{3, 4, 10, 15}) {
		t.Errorf("decoded Match = %v", got)
	}
}

func TestSnapshotRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	m := NewMatcher()
	for id := ComplexID(0); id < 2000; id++ {
		events := make([]Event, 1+rng.Intn(6))
		for i := range events {
			events[i] = Event(rng.Intn(500))
		}
		if err := m.Add(id, events); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	var buf bytes.Buffer
	if _, err := Freeze(m).WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	c, err := ReadCompact(&buf)
	if err != nil {
		t.Fatalf("ReadCompact: %v", err)
	}
	for trial := 0; trial < 50; trial++ {
		s := randomSet(rng, 20, 500)
		want := sortedMatch(m, s)
		got := c.Match(s)
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		if !equalIDs(got, want) {
			t.Fatalf("decoded Match(%v) = %v, want %v", s, got, want)
		}
	}
}

// TestSnapshotCorruptionRejected injects corruption at every byte offset
// and verifies decode fails cleanly (no panic) or yields a validated
// structure that can still match safely.
func TestSnapshotCorruptionRejected(t *testing.T) {
	m := figure4Matcher(t)
	var buf bytes.Buffer
	if _, err := Freeze(m).WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	data := buf.Bytes()
	probe := EventSet{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 12, 99, 101}
	for off := 0; off < len(data); off++ {
		corrupt := append([]byte(nil), data...)
		corrupt[off] ^= 0xFF
		c, err := ReadCompact(bytes.NewReader(corrupt))
		if err != nil {
			continue // rejected: fine
		}
		// Accepted: matching must not panic.
		c.Match(probe)
	}
	// Truncations must be rejected too.
	for cut := 0; cut < len(data); cut += 7 {
		if _, err := ReadCompact(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	if _, err := ReadCompact(bytes.NewReader([]byte("not a snapshot"))); !errors.Is(err, ErrBadSnapshot) {
		t.Errorf("garbage decode = %v, want ErrBadSnapshot", err)
	}
}
