package core

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// Matching statistics exposed for the experiments of Section 4.2.
type Stats struct {
	Complex     int // registered complex events
	Atomic      int // distinct atomic events present in at least one complex event
	Tables      int // hash tables in the structure (root + prefix tables)
	Cells       int // cells across all tables
	Marks       int // marked cells (== Complex while ids are unique)
	MaxDepth    int // longest prefix chain (== largest m)
	MatchCalls  uint64
	CellProbes  uint64
	MatchedSets uint64
}

var (
	// ErrEmptyComplexEvent is returned when registering a complex event
	// with no atomic events. The paper disallows it implicitly: a where
	// clause has at least one (strong) atomic condition.
	ErrEmptyComplexEvent = errors.New("core: complex event must contain at least one atomic event")
	// ErrDuplicateComplexID is returned when a ComplexID is registered twice.
	ErrDuplicateComplexID = errors.New("core: complex event id already registered")
	// ErrUnknownComplexID is returned by Remove for an id that is not registered.
	ErrUnknownComplexID = errors.New("core: unknown complex event id")
)

// cell is one entry of a hash table of the structure. Its marks list the
// complex events exactly equal to the event prefix leading to the cell; its
// child table, when non-nil, indexes the next event of longer complex
// events sharing the prefix.
type cell struct {
	marks []ComplexID
	child table
}

// table maps the next atomic event of a prefix to its cell. The root table
// H maps first events; table H_{a...b} maps the events following prefix
// a...b, exactly as in Figure 4 of the paper.
type table map[Event]*cell

// statShard is one shard of the match counters. Shards are padded to a
// cache line so concurrent Match calls on different shards never bounce
// the same line between cores; Stats folds them on snapshot.
type statShard struct {
	matchCalls  atomic.Uint64
	cellProbes  atomic.Uint64
	matchedSets atomic.Uint64
	_           [64 - 3*8]byte
}

// notifFrame is one pending table of the iterative Notif walk: a table to
// probe and the event suffix that leads into it.
type notifFrame struct {
	t table
	s EventSet
}

// matchScratch is the per-call state of MatchAppend, recycled through a
// sync.Pool so the hot path performs no heap allocation beyond growing the
// caller's result slice. Each scratch carries a stats shard chosen at
// creation: the pool keeps scratches P-local, so the shard inherits the
// same locality and counter updates stay uncontended.
type matchScratch struct {
	frames []notifFrame
	shard  *statShard
}

// Matcher is the Monitoring Query Processor data structure. It supports
// concurrent Match calls and dynamic Add/Remove of complex events (Section
// 4.1 notes the subscription base changes while the system runs).
//
// The zero value is not usable; call NewMatcher.
type Matcher struct {
	mu     sync.RWMutex
	root   table
	defs   map[ComplexID]EventSet // registered complex events, canonical
	degree map[Event]int          // per-event membership count (the paper's k, per event)
	cells  int
	tables int

	// Matching statistics are sharded: MatchAppend bumps atomics on the
	// shard attached to its pooled scratch, never a mutex, so the hot
	// path cannot serialise the document flow (Section 4.2's capacity
	// claim rests on workers scaling).
	stats     []statShard
	nextShard atomic.Uint32
	scratch   sync.Pool
}

// NewMatcher returns an empty Monitoring Query Processor.
func NewMatcher() *Matcher {
	m := &Matcher{
		root:   make(table),
		defs:   make(map[ComplexID]EventSet),
		degree: make(map[Event]int),
		tables: 1,
	}
	shards := 4
	for shards < runtime.GOMAXPROCS(0) && shards < 64 {
		shards <<= 1
	}
	m.stats = make([]statShard, shards)
	m.scratch.New = func() any {
		i := m.nextShard.Add(1) - 1
		return &matchScratch{
			frames: make([]notifFrame, 0, 16),
			shard:  &m.stats[int(i)%len(m.stats)],
		}
	}
	return m
}

// Add registers the complex event id as the conjunction of the given atomic
// events. The input need not be canonical. Add is safe for concurrent use
// with Match.
func (m *Matcher) Add(id ComplexID, events []Event) error {
	set := Canonical(events)
	if len(set) == 0 {
		return ErrEmptyComplexEvent
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.defs[id]; dup {
		return ErrDuplicateComplexID
	}
	t := m.root
	var c *cell
	for i, e := range set {
		c = t[e]
		if c == nil {
			c = &cell{}
			t[e] = c
			m.cells++
		}
		if i == len(set)-1 {
			break
		}
		if c.child == nil {
			c.child = make(table)
			m.tables++
		}
		t = c.child
	}
	c.marks = append(c.marks, id)
	m.defs[id] = set
	for _, e := range set {
		m.degree[e]++
	}
	return nil
}

// Remove unregisters a complex event. Empty tables and unmarked chain cells
// are pruned so that long-running systems with subscription churn do not
// leak structure.
func (m *Matcher) Remove(id ComplexID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	set, ok := m.defs[id]
	if !ok {
		return ErrUnknownComplexID
	}
	delete(m.defs, id)
	for _, e := range set {
		if m.degree[e] == 1 {
			delete(m.degree, e)
		} else {
			m.degree[e]--
		}
	}
	m.removePath(m.root, set, id)
	return nil
}

// removePath walks the prefix chain of set, removes id from the final
// cell's marks and prunes now-useless cells and tables on the way back up.
// It reports whether the table t became prunable (empty).
func (m *Matcher) removePath(t table, set EventSet, id ComplexID) bool {
	e := set[0]
	c := t[e]
	if c == nil {
		return false
	}
	if len(set) == 1 {
		c.marks = deleteMark(c.marks, id)
	} else if c.child != nil {
		if m.removePath(c.child, set[1:], id) {
			c.child = nil
			m.tables--
		}
	}
	if len(c.marks) == 0 && c.child == nil {
		delete(t, e)
		m.cells--
	}
	return len(t) == 0
}

func deleteMark(marks []ComplexID, id ComplexID) []ComplexID {
	for i, m := range marks {
		if m == id {
			copy(marks[i:], marks[i+1:])
			return marks[:len(marks)-1]
		}
	}
	return marks
}

// Definition returns the canonical event set registered under id, or nil.
func (m *Matcher) Definition(id ComplexID) EventSet {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.defs[id].Clone()
}

// Range calls fn for every registered complex event until fn returns
// false. The set passed to fn is the retained canonical definition and
// must not be mutated; clone it before keeping it. Iteration order is
// unspecified. Range holds the structure's read lock for its duration,
// so fn must not call back into the Matcher's write methods — it exists
// for bulk export (the cluster's partition handoff dumps a block's
// subscriptions through it).
func (m *Matcher) Range(fn func(id ComplexID, set EventSet) bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	for id, set := range m.defs {
		// fn reads the definition snapshot; the contract above forbids it
		// from re-entering the matcher.
		//xyvet:ignore lockcheck
		if !fn(id, set) {
			return
		}
	}
}

// Degree returns the number of registered complex events that contain e —
// the per-event value of the paper's parameter k.
func (m *Matcher) Degree(e Event) int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.degree[e]
}

// Match returns the ids of every registered complex event whose atomic
// events are all contained in the canonical set s. This is the algorithm
// "Notif" of Section 4.2: enter the root table with each event of s; inside
// a table, probe every remaining event, collect marks, and recurse into
// child tables with the remaining suffix.
//
// The result order is unspecified. Match never returns duplicates because
// each complex event is marked on exactly one prefix chain, and a chain is
// traversed at most once per strictly increasing suffix.
func (m *Matcher) Match(s EventSet) []ComplexID {
	return m.MatchAppend(nil, s)
}

// MatchAppend appends matches to dst and returns the extended slice,
// letting callers on the hot path reuse one buffer across documents.
// It acquires no mutex for statistics: counters live on sharded atomics
// and the traversal state on a pooled explicit stack, so concurrent
// callers only share the structure's read lock.
func (m *Matcher) MatchAppend(dst []ComplexID, s EventSet) []ComplexID {
	sc := m.scratch.Get().(*matchScratch)
	start := len(dst)
	m.mu.RLock()
	dst, frames, probes := m.notif(dst, sc.frames[:0], s)
	m.mu.RUnlock()
	sc.frames = frames // keep a grown stack for the next call

	sh := sc.shard
	sh.matchCalls.Add(1)
	sh.cellProbes.Add(probes)
	if len(dst) > start {
		sh.matchedSets.Add(1)
	}
	m.scratch.Put(sc)
	return dst
}

// notif intersects the incoming suffix with the root table and every
// reachable child table, probing whichever side is smaller: the suffix
// against the hash table (the paper's formulation), or — when the table is
// smaller, the common case in deep H_prefix tables — the table entries
// against the sorted suffix. The second direction is what keeps the
// observed cost linear in p: a visit to a tiny subtable costs O(|table|),
// not O(remaining suffix). Pending tables are kept on frames, an explicit
// stack owned by the pooled scratch, instead of the goroutine stack: the
// result order is unspecified, so the traversal order is free.
func (m *Matcher) notif(dst []ComplexID, frames []notifFrame, s EventSet) ([]ComplexID, []notifFrame, uint64) {
	probes := uint64(0)
	frames = append(frames, notifFrame{t: m.root, s: s})
	for len(frames) > 0 {
		fr := frames[len(frames)-1]
		frames[len(frames)-1] = notifFrame{} // drop structure references
		frames = frames[:len(frames)-1]
		t, s := fr.t, fr.s
		if len(t) < len(s) {
			for e, c := range t {
				probes++
				i := suffixIndex(s, e)
				if i < 0 {
					continue
				}
				dst = append(dst, c.marks...)
				if c.child != nil && i+1 < len(s) {
					frames = append(frames, notifFrame{t: c.child, s: s[i+1:]})
				}
			}
			continue
		}
		for i, e := range s {
			probes++
			c := t[e]
			if c == nil {
				continue
			}
			dst = append(dst, c.marks...)
			if c.child != nil && i+1 < len(s) {
				frames = append(frames, notifFrame{t: c.child, s: s[i+1:]})
			}
		}
	}
	return dst, frames[:0], probes
}

// suffixIndex binary-searches the canonical set for e, returning its index
// or -1.
func suffixIndex(s EventSet, e Event) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < e {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s) && s[lo] == e {
		return lo
	}
	return -1
}

// Matches reports whether the canonical set s triggers at least one complex
// event, without materialising the result list.
func (m *Matcher) Matches(s EventSet) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.any(m.root, s)
}

func (m *Matcher) any(t table, s EventSet) bool {
	if len(t) < len(s) {
		for e, c := range t {
			i := suffixIndex(s, e)
			if i < 0 {
				continue
			}
			if len(c.marks) > 0 {
				return true
			}
			if c.child != nil && i+1 < len(s) && m.any(c.child, s[i+1:]) {
				return true
			}
		}
		return false
	}
	for i, e := range s {
		c := t[e]
		if c == nil {
			continue
		}
		if len(c.marks) > 0 {
			return true
		}
		if c.child != nil && i+1 < len(s) && m.any(c.child, s[i+1:]) {
			return true
		}
	}
	return false
}

// Len returns the number of registered complex events.
func (m *Matcher) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.defs)
}

// Stats returns a snapshot of structural and matching statistics.
func (m *Matcher) Stats() Stats {
	m.mu.RLock()
	st := Stats{
		Complex: len(m.defs),
		Atomic:  len(m.degree),
		Tables:  m.tables,
		Cells:   m.cells,
	}
	marks := 0
	maxDepth := 0
	for _, set := range m.defs {
		marks++
		if len(set) > maxDepth {
			maxDepth = len(set)
		}
	}
	st.Marks = marks
	st.MaxDepth = maxDepth
	m.mu.RUnlock()

	// Fold the sharded match counters. Each shard is read atomically; the
	// sum is a linearisable-enough snapshot for monitoring (a concurrent
	// Match may straddle the fold, as it could straddle any lock here).
	for i := range m.stats {
		sh := &m.stats[i]
		st.MatchCalls += sh.matchCalls.Load()
		st.CellProbes += sh.cellProbes.Load()
		st.MatchedSets += sh.matchedSets.Load()
	}
	return st
}

// MemoryEstimate returns an estimate in bytes of the heap consumed by the
// structure: cells, marks, definitions and table buckets. It supports the
// paper's 500 MB sizing discussion (Section 4.2) without depending on the
// runtime's allocator internals.
func (m *Matcher) MemoryEstimate() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	const (
		cellSize       = 8 /*map bucket share*/ + 4 /*key*/ + 8 /*ptr*/ + 24 /*marks header*/ + 8 /*child*/
		markSize       = 4
		perTableHeader = 48
	)
	var bytes int64
	bytes += int64(m.tables) * perTableHeader
	bytes += int64(m.cells) * cellSize
	for _, set := range m.defs {
		bytes += markSize
		bytes += int64(len(set))*4 + 24 // retained definition
	}
	return bytes
}
