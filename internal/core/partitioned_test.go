package core

import (
	"math/rand"
	"sort"
	"testing"
)

func TestPartitionedMatchesSingleMatcher(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		for _, blocks := range []int{1, 2, 7} {
			rng := rand.New(rand.NewSource(13))
			single := NewMatcher()
			part := NewPartitioned(blocks, parallel)
			const universe = 80
			for id := ComplexID(0); id < 400; id++ {
				arity := 1 + rng.Intn(4)
				events := make([]Event, arity)
				for i := range events {
					events[i] = Event(rng.Intn(universe))
				}
				if err := single.Add(id, events); err != nil {
					t.Fatalf("single.Add: %v", err)
				}
				if err := part.Add(id, events); err != nil {
					t.Fatalf("part.Add: %v", err)
				}
			}
			for doc := 0; doc < 50; doc++ {
				s := randomSet(rng, 20, universe)
				want := sortedMatch(single, s)
				got := part.Match(s)
				sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
				if !equalIDs(got, want) {
					t.Fatalf("blocks=%d parallel=%v: Match(%v) = %v, want %v",
						blocks, parallel, s, got, want)
				}
			}
			if part.Len() != single.Len() {
				t.Errorf("Len = %d, want %d", part.Len(), single.Len())
			}
		}
	}
}

func TestPartitionedRemove(t *testing.T) {
	p := NewPartitioned(3, false)
	if err := p.Add(1, []Event{1, 2}); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if err := p.Add(2, []Event{2, 3}); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if err := p.Remove(1); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	got := p.Match(EventSet{1, 2, 3})
	if len(got) != 1 || got[0] != 2 {
		t.Errorf("Match = %v, want [2]", got)
	}
	if err := p.Remove(1); err != ErrUnknownComplexID {
		t.Errorf("second Remove = %v, want ErrUnknownComplexID", err)
	}
}

func TestPartitionedClampsBlockCount(t *testing.T) {
	p := NewPartitioned(0, false)
	if p.Blocks() != 1 {
		t.Errorf("Blocks = %d, want 1", p.Blocks())
	}
	if p.MemoryEstimate() < 0 {
		t.Error("MemoryEstimate should be non-negative")
	}
}
