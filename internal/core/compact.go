package core

import "sort"

// Compact is a frozen, memory-lean snapshot of a Matcher: the same
// Atomic Event Sets hash-tree flattened into three arrays, with sorted
// sub-tables probed by binary search instead of Go maps. It supports no
// updates — the subscription manager rebuilds it periodically — and exists
// for the Section 4.2 memory discussion: the paper fits Card(C)=10^7
// complex events in ~500 MB of 2001-era C++ hash tables, which a
// pointer-rich map structure cannot approach. Compact also serialises
// naturally, which is how a snapshot would ship to the partitioned
// processors of the distribution discussion.
type Compact struct {
	// entries holds every cell; each table is a contiguous, event-sorted
	// run of entries.
	entries []compactEntry
	// marks holds all mark lists back to back.
	marks []ComplexID
	// root is the extent of the root table at the start of entries.
	rootLen int32
	complex int
}

type compactEntry struct {
	event    Event
	childOff int32 // offset of the child table in entries; -1 when none
	childLen int32
	markOff  int32
	markLen  int32
}

// Freeze flattens the current contents of m into a Compact matcher.
func Freeze(m *Matcher) *Compact {
	m.mu.RLock()
	defer m.mu.RUnlock()
	c := &Compact{complex: len(m.defs)}
	// Reserve the root table, then lay out tables breadth-first so each
	// table is contiguous.
	type pending struct {
		t   table
		off int32
	}
	layout := func(t table) (int32, int32) {
		off := int32(len(c.entries))
		events := make([]Event, 0, len(t))
		for e := range t {
			events = append(events, e)
		}
		sort.Slice(events, func(i, j int) bool { return events[i] < events[j] })
		for _, e := range events {
			cell := t[e]
			markOff := int32(len(c.marks))
			c.marks = append(c.marks, cell.marks...)
			c.entries = append(c.entries, compactEntry{
				event:    e,
				childOff: -1,
				markOff:  markOff,
				markLen:  int32(len(cell.marks)),
			})
		}
		return off, int32(len(events))
	}
	rootOff, rootLen := layout(m.root)
	c.rootLen = rootLen
	queue := []pending{{t: m.root, off: rootOff}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		// Children must be laid out in the same sorted order used above.
		events := make([]Event, 0, len(cur.t))
		for e := range cur.t {
			events = append(events, e)
		}
		sort.Slice(events, func(i, j int) bool { return events[i] < events[j] })
		for i, e := range events {
			cell := cur.t[e]
			if cell.child == nil {
				continue
			}
			off, n := layout(cell.child)
			c.entries[cur.off+int32(i)].childOff = off
			c.entries[cur.off+int32(i)].childLen = n
			queue = append(queue, pending{t: cell.child, off: off})
		}
	}
	return c
}

// Match returns the ids of every frozen complex event contained in the
// canonical set s.
func (c *Compact) Match(s EventSet) []ComplexID {
	return c.MatchAppend(nil, s)
}

// MatchAppend appends matches to dst and returns the extended slice.
func (c *Compact) MatchAppend(dst []ComplexID, s EventSet) []ComplexID {
	return c.notif(dst, 0, c.rootLen, s)
}

func (c *Compact) notif(dst []ComplexID, off, n int32, s EventSet) []ComplexID {
	table := c.entries[off : off+n]
	if len(table) < len(s) {
		// Small table: probe its entries against the sorted suffix.
		for j := range table {
			ent := &table[j]
			i := suffixIndex(s, ent.event)
			if i < 0 {
				continue
			}
			dst = append(dst, c.marks[ent.markOff:ent.markOff+ent.markLen]...)
			if ent.childOff >= 0 && i+1 < len(s) {
				dst = c.notif(dst, ent.childOff, ent.childLen, s[i+1:])
			}
		}
		return dst
	}
	for i, e := range s {
		// Binary search within the sorted table run.
		lo, hi := 0, len(table)
		for lo < hi {
			mid := (lo + hi) / 2
			if table[mid].event < e {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo >= len(table) || table[lo].event != e {
			continue
		}
		ent := &table[lo]
		dst = append(dst, c.marks[ent.markOff:ent.markOff+ent.markLen]...)
		if ent.childOff >= 0 && i+1 < len(s) {
			dst = c.notif(dst, ent.childOff, ent.childLen, s[i+1:])
		}
	}
	return dst
}

// Len returns the number of frozen complex events.
func (c *Compact) Len() int { return c.complex }

// MemoryEstimate returns the exact array footprint: 20 bytes per entry
// plus 4 bytes per mark (headers excluded).
func (c *Compact) MemoryEstimate() int64 {
	return int64(len(c.entries))*20 + int64(len(c.marks))*4
}
