// Package core implements the Monitoring Query Processor of the Xyleme
// subscription system ("Monitoring XML Data on the Web", SIGMOD 2001).
//
// The processor watches a flow of alerts. Each alert carries the set of
// atomic events detected on one document. The processor must report, for
// every incoming set S, all registered complex events (conjunctions of
// atomic events, i.e. subsets of the atomic-event universe) that are
// entirely contained in S. The data structure is the paper's "Atomic Event
// Sets" hash-tree: a chain of hash tables indexed by event-ordered prefixes
// of complex events, whose observed matching cost is O(p·log k) for an
// incoming set of p events when each atomic event participates in k complex
// events on average.
package core

import (
	"fmt"
	"sort"
)

// Event is the code of an atomic event. Codes are assigned by the
// subscription manager; the processor only relies on their total order.
type Event uint32

// ComplexID identifies a registered complex event (a conjunction of atomic
// events compiled from the where clause of one monitoring query).
type ComplexID uint32

// EventSet is a set of atomic events in canonical form: strictly increasing
// order with no duplicates. The matcher requires canonical sets; use
// Canonical to build one from arbitrary input.
type EventSet []Event

// Canonical returns the canonical (sorted, deduplicated) form of events.
// The input slice is not modified.
func Canonical(events []Event) EventSet {
	if len(events) == 0 {
		return nil
	}
	s := make(EventSet, len(events))
	copy(s, events)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	w := 1
	for i := 1; i < len(s); i++ {
		if s[i] != s[w-1] {
			s[w] = s[i]
			w++
		}
	}
	return s[:w]
}

// IsCanonical reports whether s is strictly increasing.
func (s EventSet) IsCanonical() bool {
	for i := 1; i < len(s); i++ {
		if s[i] <= s[i-1] {
			return false
		}
	}
	return true
}

// Contains reports whether the canonical set s contains e.
func (s EventSet) Contains(e Event) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= e })
	return i < len(s) && s[i] == e
}

// ContainsAll reports whether the canonical set s is a superset of the
// canonical set sub.
func (s EventSet) ContainsAll(sub EventSet) bool {
	if len(sub) > len(s) {
		return false
	}
	i := 0
	for _, e := range sub {
		for i < len(s) && s[i] < e {
			i++
		}
		if i >= len(s) || s[i] != e {
			return false
		}
		i++
	}
	return true
}

// Equal reports whether s and t hold the same events.
func (s EventSet) Equal(t EventSet) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of s.
func (s EventSet) Clone() EventSet {
	if s == nil {
		return nil
	}
	c := make(EventSet, len(s))
	copy(c, s)
	return c
}

func (s EventSet) String() string {
	return fmt.Sprintf("%v", []Event(s))
}
