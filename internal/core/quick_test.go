package core

import (
	"sort"
	"testing"
	"testing/quick"
)

// quickEvents narrows arbitrary uint32 noise into a small event universe
// so random sets actually intersect.
func quickEvents(raw []uint32, universe uint32) []Event {
	events := make([]Event, len(raw))
	for i, v := range raw {
		events[i] = Event(v % universe)
	}
	return events
}

// Property: every id returned by Match is registered, and its definition
// is contained in the probe set (soundness).
func TestQuickMatchSound(t *testing.T) {
	f := func(defs [][]uint32, probe []uint32) bool {
		m := NewMatcher()
		for i, d := range defs {
			if len(d) == 0 {
				continue
			}
			if err := m.Add(ComplexID(i), quickEvents(d, 64)); err != nil {
				return false
			}
		}
		s := Canonical(quickEvents(probe, 64))
		for _, id := range m.Match(s) {
			def := m.Definition(id)
			if def == nil || !s.ContainsAll(def) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: matching is complete — a registered complex event whose
// definition is a subset of the probe is always returned.
func TestQuickMatchComplete(t *testing.T) {
	f := func(defs [][]uint32, probe []uint32) bool {
		m := NewMatcher()
		registered := map[ComplexID]EventSet{}
		for i, d := range defs {
			if len(d) == 0 {
				continue
			}
			events := quickEvents(d, 64)
			if err := m.Add(ComplexID(i), events); err != nil {
				return false
			}
			registered[ComplexID(i)] = Canonical(events)
		}
		s := Canonical(quickEvents(probe, 64))
		matched := map[ComplexID]bool{}
		for _, id := range m.Match(s) {
			if matched[id] {
				return false // duplicates are a bug
			}
			matched[id] = true
		}
		for id, def := range registered {
			if s.ContainsAll(def) && !matched[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Match is invariant under permutation/duplication of the input
// events (Canonical normalises them).
func TestQuickMatchInputNormalisation(t *testing.T) {
	f := func(defs [][]uint32, probe []uint32, dup []uint32) bool {
		m := NewMatcher()
		for i, d := range defs {
			if len(d) == 0 {
				continue
			}
			if err := m.Add(ComplexID(i), quickEvents(d, 32)); err != nil {
				return false
			}
		}
		base := quickEvents(probe, 32)
		noisy := append(append([]Event{}, base...), base...) // duplicated
		for i, j := 0, len(noisy)-1; i < j; i, j = i+1, j-1 {
			noisy[i], noisy[j] = noisy[j], noisy[i] // reversed
		}
		a := m.Match(Canonical(base))
		b := m.Match(Canonical(noisy))
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: Freeze preserves the match relation exactly.
func TestQuickFreezeEquivalent(t *testing.T) {
	f := func(defs [][]uint32, probe []uint32) bool {
		m := NewMatcher()
		for i, d := range defs {
			if len(d) == 0 {
				continue
			}
			if err := m.Add(ComplexID(i), quickEvents(d, 48)); err != nil {
				return false
			}
		}
		c := Freeze(m)
		s := Canonical(quickEvents(probe, 48))
		a := m.Match(s)
		b := c.Match(s)
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: Matches (the boolean fast path) agrees with Match.
func TestQuickMatchesAgrees(t *testing.T) {
	f := func(defs [][]uint32, probe []uint32) bool {
		m := NewMatcher()
		for i, d := range defs {
			if len(d) == 0 {
				continue
			}
			if err := m.Add(ComplexID(i), quickEvents(d, 32)); err != nil {
				return false
			}
		}
		s := Canonical(quickEvents(probe, 32))
		return m.Matches(s) == (len(m.Match(s)) > 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
