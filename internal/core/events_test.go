package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCanonicalSortsAndDedups(t *testing.T) {
	cases := []struct {
		in   []Event
		want EventSet
	}{
		{nil, nil},
		{[]Event{}, nil},
		{[]Event{5}, EventSet{5}},
		{[]Event{5, 5, 5}, EventSet{5}},
		{[]Event{3, 1, 2}, EventSet{1, 2, 3}},
		{[]Event{9, 1, 9, 1, 4}, EventSet{1, 4, 9}},
		{[]Event{0, 0}, EventSet{0}},
	}
	for _, c := range cases {
		got := Canonical(c.in)
		if !got.Equal(c.want) {
			t.Errorf("Canonical(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestCanonicalDoesNotMutateInput(t *testing.T) {
	in := []Event{3, 1, 2}
	Canonical(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("Canonical mutated its input: %v", in)
	}
}

func TestCanonicalPropertyAlwaysCanonical(t *testing.T) {
	f := func(raw []uint32) bool {
		events := make([]Event, len(raw))
		for i, v := range raw {
			events[i] = Event(v % 1000)
		}
		return Canonical(events).IsCanonical()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsCanonical(t *testing.T) {
	if !(EventSet{}).IsCanonical() {
		t.Error("empty set should be canonical")
	}
	if !(EventSet{1, 2, 3}).IsCanonical() {
		t.Error("{1,2,3} should be canonical")
	}
	if (EventSet{1, 1}).IsCanonical() {
		t.Error("{1,1} should not be canonical")
	}
	if (EventSet{2, 1}).IsCanonical() {
		t.Error("{2,1} should not be canonical")
	}
}

func TestContains(t *testing.T) {
	s := EventSet{2, 5, 9}
	for _, e := range []Event{2, 5, 9} {
		if !s.Contains(e) {
			t.Errorf("Contains(%d) = false, want true", e)
		}
	}
	for _, e := range []Event{0, 1, 3, 6, 10} {
		if s.Contains(e) {
			t.Errorf("Contains(%d) = true, want false", e)
		}
	}
}

func TestContainsAll(t *testing.T) {
	s := EventSet{1, 3, 5, 7, 9}
	cases := []struct {
		sub  EventSet
		want bool
	}{
		{nil, true},
		{EventSet{1}, true},
		{EventSet{9}, true},
		{EventSet{1, 9}, true},
		{EventSet{3, 5, 7}, true},
		{EventSet{1, 3, 5, 7, 9}, true},
		{EventSet{2}, false},
		{EventSet{1, 2}, false},
		{EventSet{1, 3, 5, 7, 9, 11}, false},
		{EventSet{0, 1}, false},
	}
	for _, c := range cases {
		if got := s.ContainsAll(c.sub); got != c.want {
			t.Errorf("ContainsAll(%v) = %v, want %v", c.sub, got, c.want)
		}
	}
}

func TestContainsAllPropertyMatchesMapSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		s := randomSet(rng, 30, 100)
		sub := randomSet(rng, 5, 100)
		want := true
		have := make(map[Event]bool, len(s))
		for _, e := range s {
			have[e] = true
		}
		for _, e := range sub {
			if !have[e] {
				want = false
				break
			}
		}
		if got := s.ContainsAll(sub); got != want {
			t.Fatalf("ContainsAll(%v, %v) = %v, want %v", s, sub, got, want)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	s := EventSet{1, 2, 3}
	c := s.Clone()
	c[0] = 99
	if s[0] != 1 {
		t.Error("Clone shares storage with original")
	}
	if (EventSet)(nil).Clone() != nil {
		t.Error("Clone(nil) should be nil")
	}
}

// randomSet draws up to maxLen events from [0, universe) and returns the
// canonical form, mirroring the experiment setup of Section 4.2 where
// "atomic events are randomly drawn in the set 0..Card(A)-1".
func randomSet(rng *rand.Rand, maxLen, universe int) EventSet {
	n := rng.Intn(maxLen + 1)
	events := make([]Event, n)
	for i := range events {
		events[i] = Event(rng.Intn(universe))
	}
	return Canonical(events)
}
