package core

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// figure4Matcher builds the exact structure of Figure 4 in the paper.
func figure4Matcher(t *testing.T) *Matcher {
	t.Helper()
	m := NewMatcher()
	defs := map[ComplexID][]Event{
		0:   {0},       // c0: a0
		10:  {1, 3},    // c10: a1 a3
		201: {1, 3, 4}, // c201: a1 a3 a4
		3:   {1, 3, 5}, // c3: a1 a3 a5
		43:  {1, 5, 6}, // c43: a1 a5 a6
		25:  {1, 5, 8}, // c25: a1 a5 a8
		9:   {1, 7},    // c9: a1 a7
		527: {2},       // c527: a2
		15:  {3},       // c15: a3
		4:   {5},       // c4: a5
		7:   {5, 6},    // c7: a5 a6
		11:  {5, 7},    // c11: a5 a7
		50:  {5, 8},    // c50: a5 a8
		60:  {8, 9},    // c60: a8 a9
		13:  {8, 12},   // c13: a8 a12
		31:  {99, 101}, // c31: a99 a101
	}
	for id, events := range defs {
		if err := m.Add(id, events); err != nil {
			t.Fatalf("Add(%d, %v): %v", id, events, err)
		}
	}
	return m
}

func sortedMatch(m *Matcher, s EventSet) []ComplexID {
	out := m.Match(s)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalIDs(a, b []ComplexID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPaperWorkedExample replays the walk-through of Section 4.2: the
// document with atomic events {a1, a3, a5} triggers exactly the four
// complex events c10, c3, c15 and c4.
func TestPaperWorkedExample(t *testing.T) {
	m := figure4Matcher(t)
	got := sortedMatch(m, EventSet{1, 3, 5})
	want := []ComplexID{3, 4, 10, 15}
	if !equalIDs(got, want) {
		t.Errorf("Match({a1,a3,a5}) = %v, want %v", got, want)
	}
}

func TestFigure4Cases(t *testing.T) {
	m := figure4Matcher(t)
	cases := []struct {
		in   EventSet
		want []ComplexID
	}{
		{EventSet{0}, []ComplexID{0}},
		{EventSet{2}, []ComplexID{527}},
		{EventSet{1}, nil},               // a1 alone is not a complex event
		{EventSet{1, 7}, []ComplexID{9}}, // chain a1→a7
		{EventSet{1, 3, 4}, []ComplexID{10, 15, 201}},
		{EventSet{5, 8}, []ComplexID{4, 50}},
		{EventSet{8, 9}, []ComplexID{60}},
		{EventSet{8, 12}, []ComplexID{13}},
		{EventSet{9, 12}, nil}, // both present but never together with a8
		{EventSet{99, 101}, []ComplexID{31}},
		{EventSet{99}, nil},
		{EventSet{101}, nil},
		{EventSet{1, 5, 6, 8}, []ComplexID{4, 7, 25, 43, 50}},
		{EventSet{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 12}, []ComplexID{0, 3, 4, 7, 9, 10, 11, 13, 15, 25, 43, 50, 60, 201, 527}},
		{nil, nil},
	}
	for _, c := range cases {
		got := sortedMatch(m, c.in)
		if !equalIDs(got, c.want) {
			t.Errorf("Match(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMatchesFastPath(t *testing.T) {
	m := figure4Matcher(t)
	if !m.Matches(EventSet{1, 3, 5}) {
		t.Error("Matches({1,3,5}) = false, want true")
	}
	if m.Matches(EventSet{1, 4}) {
		t.Error("Matches({1,4}) = true, want false")
	}
	if m.Matches(nil) {
		t.Error("Matches(nil) = true, want false")
	}
}

func TestAddErrors(t *testing.T) {
	m := NewMatcher()
	if err := m.Add(1, nil); err != ErrEmptyComplexEvent {
		t.Errorf("Add(empty) = %v, want ErrEmptyComplexEvent", err)
	}
	if err := m.Add(1, []Event{5}); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if err := m.Add(1, []Event{6}); err != ErrDuplicateComplexID {
		t.Errorf("duplicate Add = %v, want ErrDuplicateComplexID", err)
	}
}

func TestAddUncanonicalInput(t *testing.T) {
	m := NewMatcher()
	if err := m.Add(1, []Event{9, 3, 9, 1}); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if got := m.Definition(1); !got.Equal(EventSet{1, 3, 9}) {
		t.Errorf("Definition = %v, want {1,3,9}", got)
	}
	if got := m.Match(EventSet{1, 3, 9}); len(got) != 1 || got[0] != 1 {
		t.Errorf("Match = %v, want [1]", got)
	}
}

func TestRemove(t *testing.T) {
	m := figure4Matcher(t)
	before := m.Stats()
	// Removing c3 (a1 a3 a5) must keep c10 (a1 a3) and c201 (a1 a3 a4) intact.
	if err := m.Remove(3); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	got := sortedMatch(m, EventSet{1, 3, 4, 5})
	want := []ComplexID{4, 10, 15, 201}
	if !equalIDs(got, want) {
		t.Errorf("after Remove(3): Match = %v, want %v", got, want)
	}
	if err := m.Remove(3); err != ErrUnknownComplexID {
		t.Errorf("second Remove = %v, want ErrUnknownComplexID", err)
	}
	after := m.Stats()
	if after.Complex != before.Complex-1 {
		t.Errorf("Complex = %d, want %d", after.Complex, before.Complex-1)
	}
	if after.Cells >= before.Cells {
		t.Errorf("Cells = %d, want < %d (leaf cell pruned)", after.Cells, before.Cells)
	}
}

func TestRemoveAllRestoresEmptyStructure(t *testing.T) {
	m := figure4Matcher(t)
	ids := []ComplexID{0, 10, 201, 3, 43, 25, 9, 527, 15, 4, 7, 11, 50, 60, 13, 31}
	for _, id := range ids {
		if err := m.Remove(id); err != nil {
			t.Fatalf("Remove(%d): %v", id, err)
		}
	}
	st := m.Stats()
	if st.Complex != 0 || st.Cells != 0 || st.Atomic != 0 {
		t.Errorf("after removing all: %+v, want empty", st)
	}
	if st.Tables != 1 {
		t.Errorf("Tables = %d, want 1 (root remains)", st.Tables)
	}
	if got := m.Match(EventSet{1, 3, 5}); len(got) != 0 {
		t.Errorf("Match on empty structure = %v, want none", got)
	}
}

func TestRemoveKeepsSharedPrefixes(t *testing.T) {
	m := NewMatcher()
	mustAdd(t, m, 1, []Event{1, 2})
	mustAdd(t, m, 2, []Event{1, 2, 3})
	if err := m.Remove(1); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if got := m.Match(EventSet{1, 2, 3}); len(got) != 1 || got[0] != 2 {
		t.Errorf("Match = %v, want [2]", got)
	}
	// And the other direction: removing the longer one keeps the shorter.
	mustAdd(t, m, 1, []Event{1, 2})
	if err := m.Remove(2); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if got := m.Match(EventSet{1, 2, 3}); len(got) != 1 || got[0] != 1 {
		t.Errorf("Match = %v, want [1]", got)
	}
}

func TestReAddAfterRemove(t *testing.T) {
	m := NewMatcher()
	mustAdd(t, m, 7, []Event{4, 5})
	if err := m.Remove(7); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	mustAdd(t, m, 7, []Event{4, 5})
	if got := m.Match(EventSet{4, 5}); len(got) != 1 || got[0] != 7 {
		t.Errorf("Match = %v, want [7]", got)
	}
}

func TestDuplicateMarksOnSamePrefix(t *testing.T) {
	// Two distinct subscriptions can compile to the same event set.
	m := NewMatcher()
	mustAdd(t, m, 1, []Event{2, 4})
	mustAdd(t, m, 2, []Event{2, 4})
	got := sortedMatch(m, EventSet{2, 4})
	if !equalIDs(got, []ComplexID{1, 2}) {
		t.Errorf("Match = %v, want [1 2]", got)
	}
	if err := m.Remove(1); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	got = sortedMatch(m, EventSet{2, 4})
	if !equalIDs(got, []ComplexID{2}) {
		t.Errorf("Match = %v, want [2]", got)
	}
}

func TestDegree(t *testing.T) {
	m := figure4Matcher(t)
	// a1 appears in c10, c201, c3, c43, c25, c9 → degree 6.
	if got := m.Degree(1); got != 6 {
		t.Errorf("Degree(a1) = %d, want 6", got)
	}
	// a5 appears in c3, c43, c25, c4, c7, c11, c50 → degree 7.
	if got := m.Degree(5); got != 7 {
		t.Errorf("Degree(a5) = %d, want 7", got)
	}
	if got := m.Degree(1000); got != 0 {
		t.Errorf("Degree(unknown) = %d, want 0", got)
	}
	if err := m.Remove(9); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if got := m.Degree(7); got != 1 { // only c11 keeps a7
		t.Errorf("Degree(a7) after Remove(c9) = %d, want 1", got)
	}
}

func TestStatsAndMemoryEstimate(t *testing.T) {
	m := figure4Matcher(t)
	st := m.Stats()
	if st.Complex != 16 {
		t.Errorf("Complex = %d, want 16", st.Complex)
	}
	if st.Atomic != 13 { // a0..a9, a12, a99, a101
		t.Errorf("Atomic = %d, want 13", st.Atomic)
	}
	if st.MaxDepth != 3 {
		t.Errorf("MaxDepth = %d, want 3", st.MaxDepth)
	}
	if m.MemoryEstimate() <= 0 {
		t.Error("MemoryEstimate should be positive")
	}
	m.Match(EventSet{1, 3, 5})
	st = m.Stats()
	if st.MatchCalls == 0 || st.CellProbes == 0 || st.MatchedSets == 0 {
		t.Errorf("match statistics not recorded: %+v", st)
	}
}

func TestMatchAppendReusesBuffer(t *testing.T) {
	m := figure4Matcher(t)
	buf := make([]ComplexID, 0, 32)
	out := m.MatchAppend(buf, EventSet{1, 3, 5})
	if len(out) != 4 {
		t.Fatalf("MatchAppend returned %d matches, want 4", len(out))
	}
	if cap(out) != cap(buf) {
		t.Errorf("MatchAppend reallocated despite sufficient capacity")
	}
}

// TestMatcherAgainstBruteForce is the central property test: on random
// workloads the hash-tree must return exactly the set of registered complex
// events contained in the input set.
func TestMatcherAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		universe := 50 + rng.Intn(200)
		nComplex := 1 + rng.Intn(300)
		m := NewMatcher()
		defs := make(map[ComplexID]EventSet)
		for id := ComplexID(0); int(id) < nComplex; id++ {
			arity := 1 + rng.Intn(5)
			events := make([]Event, arity)
			for i := range events {
				events[i] = Event(rng.Intn(universe))
			}
			set := Canonical(events)
			defs[id] = set
			if err := m.Add(id, events); err != nil {
				t.Fatalf("Add: %v", err)
			}
		}
		for doc := 0; doc < 20; doc++ {
			s := randomSet(rng, 25, universe)
			got := sortedMatch(m, s)
			var want []ComplexID
			for id, set := range defs {
				if s.ContainsAll(set) {
					want = append(want, id)
				}
			}
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			if !equalIDs(got, want) {
				t.Fatalf("trial %d: Match(%v) = %v, want %v", trial, s, got, want)
			}
		}
	}
}

// TestMatcherChurnAgainstBruteForce interleaves adds, removes and matches.
func TestMatcherChurnAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := NewMatcher()
	defs := make(map[ComplexID]EventSet)
	nextID := ComplexID(0)
	const universe = 60
	for step := 0; step < 3000; step++ {
		switch {
		case len(defs) == 0 || rng.Float64() < 0.45:
			arity := 1 + rng.Intn(4)
			events := make([]Event, arity)
			for i := range events {
				events[i] = Event(rng.Intn(universe))
			}
			if err := m.Add(nextID, events); err != nil {
				t.Fatalf("Add: %v", err)
			}
			defs[nextID] = Canonical(events)
			nextID++
		case rng.Float64() < 0.5:
			// remove a random registered id
			for id := range defs {
				if err := m.Remove(id); err != nil {
					t.Fatalf("Remove: %v", err)
				}
				delete(defs, id)
				break
			}
		default:
			s := randomSet(rng, 12, universe)
			got := sortedMatch(m, s)
			var want []ComplexID
			for id, set := range defs {
				if s.ContainsAll(set) {
					want = append(want, id)
				}
			}
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			if !equalIDs(got, want) {
				t.Fatalf("step %d: Match(%v) = %v, want %v", step, s, got, want)
			}
		}
	}
	if m.Len() != len(defs) {
		t.Errorf("Len = %d, want %d", m.Len(), len(defs))
	}
}

// TestConcurrentMatchDuringChurn exercises the RWMutex discipline: many
// readers match while a writer adds and removes. Run with -race.
func TestConcurrentMatchDuringChurn(t *testing.T) {
	m := NewMatcher()
	for id := ComplexID(0); id < 500; id++ {
		mustAdd(t, m, id, []Event{Event(id % 97), Event(id % 89), Event(id % 83)})
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := randomSet(rng, 20, 100)
				m.Match(s)
			}
		}(int64(w))
	}
	for id := ComplexID(500); id < 1500; id++ {
		mustAdd(t, m, id, []Event{Event(id % 97), Event(id % 79)})
		if id%2 == 0 {
			if err := m.Remove(id - 400); err != nil {
				t.Errorf("Remove(%d): %v", id-400, err)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func mustAdd(t *testing.T, m *Matcher, id ComplexID, events []Event) {
	t.Helper()
	if err := m.Add(id, events); err != nil {
		t.Fatalf("Add(%d, %v): %v", id, events, err)
	}
}

// TestParallelMatchStats drives MatchAppend from many goroutines at once
// and checks the sharded counters fold to exact totals. Under -race this
// also proves the stats path performs no locked (or unsynchronised) shared
// writes: every update is an atomic on a shard, every read a fold.
func TestParallelMatchStats(t *testing.T) {
	m := NewMatcher()
	for id := ComplexID(0); id < 200; id++ {
		mustAdd(t, m, id, []Event{Event(id % 31), Event(id%31 + 40)})
	}
	const (
		workers = 8
		iters   = 500
	)
	matched := make([]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var buf []ComplexID
			for i := 0; i < iters; i++ {
				s := EventSet{Event(i % 31), Event(i%31 + 40)}
				buf = m.MatchAppend(buf[:0], s)
				if len(buf) > 0 {
					matched[w]++
				}
				// Interleave snapshots with matches: Stats must never
				// tear or race with the shard updates.
				if i%64 == 0 {
					m.Stats()
				}
			}
		}(w)
	}
	wg.Wait()
	st := m.Stats()
	if st.MatchCalls != workers*iters {
		t.Errorf("MatchCalls = %d, want %d", st.MatchCalls, workers*iters)
	}
	var wantMatched uint64
	for _, n := range matched {
		wantMatched += n
	}
	if st.MatchedSets != wantMatched {
		t.Errorf("MatchedSets = %d, want %d", st.MatchedSets, wantMatched)
	}
	if st.CellProbes == 0 {
		t.Error("CellProbes = 0 after parallel matching")
	}
}

// TestMatchAppendCountsOnlyNewMatches pins the MatchedSets semantics: a
// call that appends nothing to a non-empty destination buffer is not a
// matched set.
func TestMatchAppendCountsOnlyNewMatches(t *testing.T) {
	m := NewMatcher()
	mustAdd(t, m, 1, []Event{5})
	buf := m.MatchAppend(nil, EventSet{5})
	if len(buf) != 1 {
		t.Fatalf("MatchAppend = %v", buf)
	}
	buf = m.MatchAppend(buf, EventSet{99}) // no match, reused buffer
	if len(buf) != 1 {
		t.Fatalf("MatchAppend after miss = %v", buf)
	}
	st := m.Stats()
	if st.MatchCalls != 2 || st.MatchedSets != 1 {
		t.Errorf("MatchCalls=%d MatchedSets=%d, want 2 and 1", st.MatchCalls, st.MatchedSets)
	}
}
