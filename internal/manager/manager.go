// Package manager implements the Subscription Manager of the architecture
// (Section 3): it parses and registers subscriptions, chooses the internal
// codes of atomic events, warns the alerters of new events, manages the
// complex events of the Monitoring Query Processor, wires continuous
// queries into the Trigger Engine and report specifications into the
// Reporter, and persists everything through a journal so the system
// recovers its subscription base on restart (the paper uses MySQL; the
// journal interface plays that role).
package manager

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"xymon/internal/alerter"
	"xymon/internal/core"
	"xymon/internal/reporter"
	"xymon/internal/sublang"
	"xymon/internal/trigger"
	"xymon/internal/warehouse"
	"xymon/internal/xmldom"
	"xymon/internal/xydiff"
	"xymon/internal/xyquery"
)

// ErrDuplicateSubscription is returned when a subscription name is taken.
var ErrDuplicateSubscription = errors.New("manager: subscription name already registered")

// ErrUnknownSubscription is returned for operations on unknown names.
var ErrUnknownSubscription = errors.New("manager: unknown subscription")

// registeredQuery is one compiled monitoring query: its complex event id
// and the atomic event codes it is a conjunction of.
type registeredQuery struct {
	sub    string
	mq     *sublang.MonitoringQuery
	id     core.ComplexID
	events core.EventSet
}

type registeredSub struct {
	src     string
	sub     *sublang.Subscription
	queries []*registeredQuery
	// a posteriori inhibition state (Section 5.4)
	suspended   bool
	notifWindow int
	docsWindow  int
}

// Stats counts the manager's activity.
type Stats struct {
	Subscriptions int
	AtomicEvents  int
	ComplexEvents int
	DocsProcessed uint64
	AlertsSent    uint64 // alerts with at least one strong event
	WeakSuppress  uint64 // alerts suppressed by the weak/strong rule
	Notifications uint64
	Suspensions   uint64 // subscriptions inhibited a posteriori
}

// Manager owns the subscription base and drives the notification chain.
type Manager struct {
	mu       sync.Mutex
	matcher  *core.Matcher
	pipeline *alerter.Pipeline
	reporter *reporter.Reporter
	trigger  *trigger.Engine
	clock    func() time.Time
	journal  Journal

	condCodes map[string]core.Event // canonical condition -> code
	condRef   map[core.Event]int
	condOf    map[core.Event]sublang.Condition
	nextEvent core.Event

	complexOf   map[core.ComplexID]*registeredQuery
	nextComplex core.ComplexID

	subs map[string]*registeredSub

	maxCost     float64
	inhibitRate float64
	suspensions uint64

	// The per-document counters are atomics, not m.mu state: ProcessDoc
	// runs on every fetched document across all flow workers, and the
	// happy path (no alert, or a weak-only alert) must not serialise on
	// the subscription-base lock.
	docsProcessed atomic.Uint64
	alertsSent    atomic.Uint64
	weakSuppress  atomic.Uint64
	notifications atomic.Uint64
}

// processScratch is the per-alert working state of ProcessAlert, recycled
// through a sync.Pool so a document that raises notifications performs no
// map or slice allocation for bookkeeping (the payload elements still
// allocate — they are handed to the Reporter).
type processScratch struct {
	matched []core.ComplexID
	queries []*registeredQuery
	batch   []reporter.Notification
	trig    []triggerRef
	seen    map[uint64]struct{}
	perSub  map[string]int
	// newSet/updSet index the document's Classification for the `new X` /
	// `updated X` payload filters. Built at most once per alert
	// (ensureChangeSets) and shared by every matched query, where each
	// query used to classify the document and build its own maps.
	newSet    map[*xmldom.Node]bool
	updSet    map[*xmldom.Node]bool
	setsReady bool
}

// ensureChangeSets fills newSet/updSet from the document classification,
// once per alert; later queries reuse the same maps.
func (sc *processScratch) ensureChangeSets(cl *xydiff.Classification) {
	if sc.setsReady {
		return
	}
	sc.setsReady = true
	for _, n := range cl.NewElems {
		sc.newSet[n] = true
	}
	for _, n := range cl.UpdatedElems {
		sc.updSet[n] = true
	}
}

// triggerRef records a (subscription, label) pair whose continuous
// queries must be poked once the notification batch is delivered.
type triggerRef struct{ sub, label string }

var processPool = sync.Pool{New: func() any {
	return &processScratch{
		seen:   make(map[uint64]struct{}, 16),
		perSub: make(map[string]int, 8),
		newSet: make(map[*xmldom.Node]bool, 16),
		updSet: make(map[*xmldom.Node]bool, 16),
	}
}}

// release scrubs pointer-carrying state and returns the scratch to the
// pool; maps are cleared, slices keep their capacity.
func (sc *processScratch) release() {
	clear(sc.seen)
	clear(sc.perSub)
	clear(sc.newSet)
	clear(sc.updSet)
	sc.setsReady = false
	sc.matched = sc.matched[:0] // plain values, no scrub needed
	for i := range sc.queries {
		sc.queries[i] = nil
	}
	sc.queries = sc.queries[:0]
	for i := range sc.batch {
		sc.batch[i] = reporter.Notification{}
	}
	sc.batch = sc.batch[:0]
	sc.trig = sc.trig[:0]
	processPool.Put(sc)
}

// Config wires the manager to the other modules. Matcher, Pipeline,
// Reporter and Trigger must be non-nil; Clock defaults to time.Now and
// Journal to a no-op in-memory journal.
type Config struct {
	Matcher  *core.Matcher
	Pipeline *alerter.Pipeline
	Reporter *reporter.Reporter
	Trigger  *trigger.Engine
	Clock    func() time.Time
	Journal  Journal
	// MaxCost rejects subscriptions whose a priori cost estimate exceeds
	// the budget (0 disables the check). See Estimate.
	MaxCost float64
	// InhibitRate suspends a subscription a posteriori when it produces
	// more than this many notifications per processed document, averaged
	// over a window (0 disables inhibition).
	InhibitRate float64
}

// New assembles a manager.
func New(cfg Config) *Manager {
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.Journal == nil {
		cfg.Journal = NopJournal{}
	}
	return &Manager{
		matcher:     cfg.Matcher,
		pipeline:    cfg.Pipeline,
		reporter:    cfg.Reporter,
		trigger:     cfg.Trigger,
		clock:       cfg.Clock,
		journal:     cfg.Journal,
		condCodes:   make(map[string]core.Event),
		condRef:     make(map[core.Event]int),
		condOf:      make(map[core.Event]sublang.Condition),
		nextEvent:   1,
		complexOf:   make(map[core.ComplexID]*registeredQuery),
		subs:        make(map[string]*registeredSub),
		maxCost:     cfg.MaxCost,
		inhibitRate: cfg.InhibitRate,
	}
}

// Subscribe parses, validates, registers and journals a subscription
// written in the subscription language.
func (m *Manager) Subscribe(src string) (*sublang.Subscription, error) {
	sub, err := sublang.Parse(src)
	if err != nil {
		return nil, err
	}
	if err := m.register(src, sub, true); err != nil {
		return nil, err
	}
	return sub, nil
}

// SubscribeParsed registers an already-parsed subscription (no journal
// entry is written; used by tests and programmatic callers).
func (m *Manager) SubscribeParsed(sub *sublang.Subscription) error {
	return m.register("", sub, false)
}

func (m *Manager) register(src string, sub *sublang.Subscription, journal bool) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.subs[sub.Name]; dup {
		return ErrDuplicateSubscription
	}
	if m.maxCost > 0 {
		if cost := Estimate(sub); cost.Total() > m.maxCost {
			return fmt.Errorf("%w: estimated cost %.0f exceeds budget %.0f",
				ErrTooExpensive, cost.Total(), m.maxCost)
		}
	}
	rs := &registeredSub{src: src, sub: sub}
	// Compile monitoring queries: each where clause becomes one complex
	// event over deduplicated atomic event codes.
	for _, mq := range sub.Monitoring {
		events := make([]core.Event, 0, len(mq.Where))
		for _, cond := range mq.Where {
			events = append(events, m.internEventLocked(cond))
		}
		id := m.nextComplex
		m.nextComplex++
		set := core.Canonical(events)
		if err := m.matcher.Add(id, set); err != nil {
			m.rollbackLocked(rs)
			return fmt.Errorf("manager: registering complex event: %w", err)
		}
		rq := &registeredQuery{sub: sub.Name, mq: mq, id: id, events: set}
		m.complexOf[id] = rq
		rs.queries = append(rs.queries, rq)
	}
	m.reporter.Register(sub.Name, sub.Report)
	for _, cq := range sub.Continuous {
		m.trigger.Register(sub.Name, cq)
	}
	for _, v := range sub.Virtual {
		if err := m.reporter.Follow(sub.Name, v.Subscription); err != nil {
			m.rollbackLocked(rs)
			m.reporter.Unregister(sub.Name)
			m.trigger.Unregister(sub.Name)
			return err
		}
	}
	m.subs[sub.Name] = rs
	if journal {
		// Appending under m.mu is deliberate: the journal must record
		// subscribe/unsubscribe in the order they took effect, and the
		// Journal implementations are plain file/buffer writers.
		//xyvet:ignore lockcheck
		if err := m.journal.Append(Record{Op: "subscribe", Name: sub.Name, Source: src}); err != nil {
			return fmt.Errorf("manager: journal: %w", err)
		}
	}
	return nil
}

// rollbackLocked undoes partial registration of rs.
func (m *Manager) rollbackLocked(rs *registeredSub) {
	for _, rq := range rs.queries {
		_ = m.matcher.Remove(rq.id)
		delete(m.complexOf, rq.id)
		for _, e := range rq.events {
			m.releaseEventLocked(e)
		}
	}
}

// Unsubscribe removes a subscription and journals the removal.
func (m *Manager) Unsubscribe(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	rs, ok := m.subs[name]
	if !ok {
		return ErrUnknownSubscription
	}
	m.rollbackLocked(rs)
	m.reporter.Unregister(name)
	m.trigger.Unregister(name)
	delete(m.subs, name)
	// Journalled under m.mu for ordering; see register.
	//xyvet:ignore lockcheck
	return m.journal.Append(Record{Op: "unsubscribe", Name: name})
}

// internEventLocked returns the atomic event code of a condition,
// allocating one and warning the alerters on first use. Conditions are
// deduplicated by their canonical string form, so a thousand subscriptions
// watching Amazon's URL share one atomic event (the load concentration the
// paper's parameter k models).
func (m *Manager) internEventLocked(cond sublang.Condition) core.Event {
	key := cond.String()
	if code, ok := m.condCodes[key]; ok {
		m.condRef[code]++
		return code
	}
	code := m.nextEvent
	m.nextEvent++
	m.condCodes[key] = code
	m.condRef[code] = 1
	m.condOf[code] = cond
	m.pipeline.Register(code, cond)
	return code
}

func (m *Manager) releaseEventLocked(code core.Event) {
	m.condRef[code]--
	if m.condRef[code] > 0 {
		return
	}
	cond := m.condOf[code]
	m.pipeline.Unregister(code, cond)
	delete(m.condRef, code)
	delete(m.condOf, code)
	delete(m.condCodes, cond.String())
}

// ProcessDoc runs the full notification chain on one fetched document:
// alerter detection, the weak/strong filter, monitoring-query matching and
// notification dispatch. It returns the number of notifications produced.
// The happy path — no event of interest, or a weak-only alert — touches
// only atomics, never m.mu, so flow workers do not serialise here.
func (m *Manager) ProcessDoc(d *alerter.Doc) int {
	m.docsProcessed.Add(1)
	a := m.pipeline.Detect(d)
	if a == nil {
		return 0
	}
	if !a.Strong {
		m.weakSuppress.Add(1)
		return 0
	}
	return m.ProcessAlert(a)
}

// ProcessAlert matches an alert against the subscription base and
// dispatches the notifications of every matched monitoring query. The
// notifications of one alert are handed to the Reporter as a single batch,
// amortising its lock acquisitions across the whole document.
func (m *Manager) ProcessAlert(a *alerter.Alert) int {
	sc := processPool.Get().(*processScratch)
	sc.matched = m.matcher.MatchAppend(sc.matched[:0], a.Events)
	m.alertsSent.Add(1)
	m.mu.Lock()
	for _, id := range sc.matched {
		if rq := m.complexOf[id]; rq != nil {
			sc.queries = append(sc.queries, rq)
		}
	}
	m.mu.Unlock()

	now := m.clock()
	for _, rq := range sc.queries {
		label := rq.mq.Label()
		elems := m.buildNotifications(rq, a.Doc, sc)
		triggered := false
		for _, el := range elems {
			// Disjunctive where clauses compile to several complex events
			// sharing one select (see sublang); when a document matches
			// more than one disjunct, the subscriber still gets each
			// notification payload once. The key is a structural hash of
			// (subscription, label, payload) — serialising the payload to
			// XML per notification was the dominant dedup cost.
			key := el.Hash64(xmldom.HashFold(xmldom.HashFold(xmldom.HashSeed(), rq.sub), label))
			if _, dup := sc.seen[key]; dup {
				continue
			}
			sc.seen[key] = struct{}{}
			sc.batch = append(sc.batch, reporter.Notification{
				Subscription: rq.sub,
				Label:        label,
				Element:      el,
				Time:         now,
			})
			sc.perSub[rq.sub]++
			triggered = true
		}
		// Continuous queries may be triggered by this notification; fire
		// them after the batch below, once the Reporter has the payloads.
		if triggered {
			sc.trig = append(sc.trig, triggerRef{sub: rq.sub, label: label})
		}
	}
	produced := len(sc.batch)
	m.reporter.NotifyBatch(sc.batch)
	for _, tr := range sc.trig {
		m.trigger.OnNotification(tr.sub, tr.label)
	}
	m.notifications.Add(uint64(produced))
	if m.inhibitRate > 0 && len(sc.perSub) > 0 {
		m.mu.Lock()
		// Only subscriptions that produced notifications advance their
		// window: silent subscriptions can never exceed the rate budget,
		// and touching the whole base per alert would not scale.
		for sub, n := range sc.perSub {
			if rs := m.subs[sub]; rs != nil {
				m.noteNotificationsLocked(rs, n)
			}
		}
		m.mu.Unlock()
	}
	sc.release()
	return produced
}

// buildNotifications materialises the select clause of a matched
// monitoring query against the triggering document.
func (m *Manager) buildNotifications(rq *registeredQuery, d *alerter.Doc, sc *processScratch) []*xmldom.Node {
	sel := rq.mq.Select
	switch {
	case sel != nil && sel.Literal != nil:
		e := m.literalElement(sel.Literal, d)
		// The full select clause: expand content variables to the matched
		// elements and inline fixed text.
		for _, c := range sel.Literal.Children {
			switch {
			case !c.IsVar:
				e.AppendChild(xmldom.Text(c.Text))
			case builtinValue(c.Var, d) != "":
				e.AppendChild(xmldom.Text(builtinValue(c.Var, d)))
			default:
				for _, n := range m.varElements(rq, c.Var, d, sc) {
					e.AppendChild(n)
				}
			}
		}
		return []*xmldom.Node{e}
	case sel != nil && sel.Var != "":
		return m.varElements(rq, sel.Var, d, sc)
	default:
		e := xmldom.Element("notification")
		e.WithAttr("url", d.Meta.URL)
		e.WithAttr("status", d.Status.String())
		return []*xmldom.Node{e}
	}
}

// builtinValue resolves the built-in notification variables usable in
// select literals; empty when name is not a built-in.
func builtinValue(name string, d *alerter.Doc) string {
	switch name {
	case "URL":
		return d.Meta.URL
	case "DATE":
		return d.Meta.LastAccessed.Format(time.RFC3339)
	case "DOCID":
		return fmt.Sprintf("%d", d.Meta.DocID)
	case "DTD":
		return d.Meta.DTD
	case "DOMAIN":
		return d.Meta.Domain
	case "STATUS":
		return d.Status.String()
	}
	return ""
}

// literalElement instantiates `<UpdatedPage url=URL/>`-style literals with
// the document's metadata.
func (m *Manager) literalElement(lit *sublang.LiteralElem, d *alerter.Doc) *xmldom.Node {
	e := xmldom.Element(lit.Tag)
	for _, a := range lit.Attrs {
		if !a.IsVar {
			e.WithAttr(a.Name, a.Value)
			continue
		}
		e.WithAttr(a.Name, builtinValue(a.Value, d))
	}
	return e
}

// varElements resolves `select X` payloads: the elements bound to X in the
// current document, filtered by the change pattern the where clause put on
// X (so `new X` returns only the new elements).
func (m *Manager) varElements(rq *registeredQuery, v string, d *alerter.Doc, sc *processScratch) []*xmldom.Node {
	if d.Doc == nil || d.Doc.Root == nil {
		return nil
	}
	var binding *sublang.FromBinding
	for i := range rq.mq.From {
		if rq.mq.From[i].Var == v {
			binding = &rq.mq.From[i]
			break
		}
	}
	if binding == nil {
		return nil
	}
	nodes := xyquery.Resolve(binding.Path, []*xmldom.Node{d.Doc.Root})
	change := sublang.NoChange
	var wordCond *sublang.Condition
	for i := range rq.mq.Where {
		c := &rq.mq.Where[i]
		if c.Kind != sublang.CondElement || c.Var != v {
			continue
		}
		if c.Change != sublang.NoChange && change == sublang.NoChange {
			change = c.Change
		}
		if c.Str != "" && wordCond == nil {
			wordCond = c
		}
	}
	// A contains constraint on the variable restricts the payload to the
	// elements that actually carry the word.
	if wordCond != nil {
		word := xmldom.NormalizeWord(wordCond.Str)
		kept := nodes[:0]
		for _, n := range nodes {
			if wordCond.Strict {
				for _, c := range n.Children {
					if c.Type == xmldom.TextNode && xmldom.ContainsWord(c.Text, word) {
						kept = append(kept, n)
						break
					}
				}
			} else if xmldom.ContainsWord(n.TextContent(), word) {
				kept = append(kept, n)
			}
		}
		nodes = kept
	}
	if change == sublang.NoChange {
		return cloneAll(nodes)
	}
	switch {
	case change == sublang.OpNew && d.Status == warehouse.StatusNew:
		// Every element of a brand-new document is new.
		return cloneAll(nodes)
	case d.Status == warehouse.StatusUpdated && d.Delta != nil:
		// The classification is computed once per document (on the Doc,
		// shared with the XML alerter) and its node sets once per alert (on
		// the scratch, shared by every matched query).
		cl := d.Classification()
		if cl == nil {
			return nil
		}
		var wantSet map[*xmldom.Node]bool
		switch change {
		case sublang.OpNew:
			sc.ensureChangeSets(cl)
			wantSet = sc.newSet
		case sublang.OpUpdated:
			sc.ensureChangeSets(cl)
			wantSet = sc.updSet
		case sublang.OpDeleted:
			// Deleted elements are in the old version; match by tag among
			// the deleted subtrees.
			var out []*xmldom.Node
			tag := lastTag(binding.Path)
			for _, sub := range cl.DeletedSubtrees {
				sub.PreOrder(func(n *xmldom.Node) bool {
					if n.Type == xmldom.ElementNode && (tag == "" || n.Tag == tag) {
						out = append(out, n.Clone())
					}
					return true
				})
			}
			return out
		}
		var out []*xmldom.Node
		for _, n := range nodes {
			if wantSet[n] {
				out = append(out, n.Clone())
			}
		}
		return out
	}
	return nil
}

func lastTag(p xyquery.Path) string {
	if len(p.Steps) == 0 {
		return ""
	}
	t := p.Steps[len(p.Steps)-1].Name
	if t == "*" {
		return ""
	}
	return t
}

func cloneAll(nodes []*xmldom.Node) []*xmldom.Node {
	out := make([]*xmldom.Node, 0, len(nodes))
	for _, n := range nodes {
		out = append(out, n.Clone())
	}
	return out
}

// Subscriptions lists the registered subscription names.
func (m *Manager) Subscriptions() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.subs))
	for name := range m.subs {
		out = append(out, name)
	}
	return out
}

// Subscription returns the parsed form of a registered subscription.
func (m *Manager) Subscription(name string) (*sublang.Subscription, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rs, ok := m.subs[name]
	if !ok {
		return nil, ErrUnknownSubscription
	}
	return rs.sub, nil
}

// RefreshHints aggregates the refresh statements of all subscriptions,
// keyed by URL (the smallest period wins). The crawler consults them to
// boost page importance (Section 2.2).
func (m *Manager) RefreshHints() map[string]sublang.Frequency {
	m.mu.Lock()
	defer m.mu.Unlock()
	hints := make(map[string]sublang.Frequency)
	for _, rs := range m.subs {
		for _, r := range rs.sub.Refresh {
			if cur, ok := hints[r.URL]; !ok || r.Freq < cur {
				hints[r.URL] = r.Freq
			}
		}
	}
	return hints
}

// Stats snapshots the manager's counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{
		Subscriptions: len(m.subs),
		AtomicEvents:  len(m.condRef),
		ComplexEvents: len(m.complexOf),
		DocsProcessed: m.docsProcessed.Load(),
		AlertsSent:    m.alertsSent.Load(),
		WeakSuppress:  m.weakSuppress.Load(),
		Notifications: m.notifications.Load(),
		Suspensions:   m.suspensions,
	}
}

// Recover replays a journal, restoring the subscription base. Call it on
// an empty manager before processing documents. Recover is idempotent: a
// subscription already registered under its journalled name is skipped,
// so replaying the same journal twice (or a checkpoint that overlaps its
// tail) cannot duplicate the base.
func (m *Manager) Recover(j Journal) error {
	records, err := j.Records()
	if err != nil {
		return err
	}
	for _, r := range records {
		switch r.Op {
		case "subscribe":
			sub, err := sublang.Parse(r.Source)
			if err != nil {
				return fmt.Errorf("manager: recovering %q: %w", r.Name, err)
			}
			if err := m.register(r.Source, sub, false); errors.Is(err, ErrDuplicateSubscription) {
				continue
			} else if err != nil {
				return fmt.Errorf("manager: recovering %q: %w", r.Name, err)
			}
		case "unsubscribe":
			m.mu.Lock()
			rs, ok := m.subs[r.Name]
			if ok {
				m.rollbackLocked(rs)
				m.reporter.Unregister(r.Name)
				m.trigger.Unregister(r.Name)
				delete(m.subs, r.Name)
			}
			m.mu.Unlock()
		}
	}
	return nil
}

// Checkpoint compacts the journal down to the live subscription base:
// one subscribe record per registered subscription, with every
// journalled subscribe/unsubscribe before it truncated away. It is a
// no-op when the journal does not implement Compacter. Held under m.mu,
// so the snapshot is consistent with the append order register and
// Unsubscribe maintain.
func (m *Manager) Checkpoint() error {
	c, ok := m.journal.(Compacter)
	if !ok {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	live := make([]Record, 0, len(m.subs))
	for name, rs := range m.subs {
		if rs.src == "" {
			// Registered via SubscribeParsed: never journalled, so it has
			// no source text to recover from — leave it out, as Append did.
			continue
		}
		live = append(live, Record{Op: "subscribe", Name: name, Source: rs.src})
	}
	sort.Slice(live, func(i, j int) bool { return live[i].Name < live[j].Name })
	// Compacting under m.mu mirrors Append's ordering guarantee; see
	// register.
	//xyvet:ignore lockcheck
	if err := c.Compact(live); err != nil {
		return fmt.Errorf("manager: checkpoint: %w", err)
	}
	return nil
}

// ErrTooExpensive rejects a subscription whose a priori cost estimate
// exceeds the configured budget (Section 5.4).
var ErrTooExpensive = errors.New("manager: subscription too expensive")
