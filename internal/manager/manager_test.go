package manager

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"xymon/internal/alerter"
	"xymon/internal/core"
	"xymon/internal/reporter"
	"xymon/internal/sublang"
	"xymon/internal/trigger"
	"xymon/internal/warehouse"
	"xymon/internal/xmldom"
)

// rig is a full subscription system over an in-memory warehouse with a
// virtual clock.
type rig struct {
	t       *testing.T
	clock   time.Time
	store   *warehouse.Store
	mgr     *Manager
	rep     *reporter.Reporter
	eng     *trigger.Engine
	reports []*reporter.Report
}

func newRig(t *testing.T, journal Journal) *rig {
	r := &rig{t: t, clock: time.Date(2001, 5, 21, 0, 0, 0, 0, time.UTC)}
	now := func() time.Time { return r.clock }
	r.store = warehouse.NewStore(warehouse.WithClock(now))
	r.rep = reporter.New(reporter.DeliveryFunc(func(rep *reporter.Report) error {
		r.reports = append(r.reports, rep)
		return nil
	}), reporter.WithClock(now))
	r.eng = trigger.New(r.store.AllRoots, func(res trigger.Result) {
		r.rep.Notify(reporter.Notification{
			Subscription: res.Subscription, Label: res.Query, Element: res.Element, Time: res.Time,
		})
	}, trigger.WithClock(now))
	r.mgr = New(Config{
		Matcher:  core.NewMatcher(),
		Pipeline: alerter.NewPipeline(nil),
		Reporter: r.rep,
		Trigger:  r.eng,
		Clock:    now,
		Journal:  journal,
	})
	return r
}

// commitXML pushes a document version through warehouse + manager.
func (r *rig) commitXML(url, dtd, domain, xml string) int {
	r.t.Helper()
	res, err := r.store.CommitXML(url, dtd, domain, xmldom.MustParse(xml))
	if err != nil {
		r.t.Fatalf("CommitXML: %v", err)
	}
	return r.mgr.ProcessDoc(&alerter.Doc{
		Meta: res.Meta, Status: res.Status, Doc: res.Doc, Delta: res.Delta,
	})
}

func (r *rig) subscribe(src string) {
	r.t.Helper()
	if _, err := r.mgr.Subscribe(src); err != nil {
		r.t.Fatalf("Subscribe: %v", err)
	}
}

const watchInria = `subscription WatchInria
monitoring
select <UpdatedPage url=URL status=STATUS/>
where URL extends "http://inria.fr/Xy/"
  and modified self
report when notifications.count > 1
`

func TestMonitoringEndToEnd(t *testing.T) {
	r := newRig(t, nil)
	r.subscribe(watchInria)

	// First fetch: document is new, not modified — no notification.
	if n := r.commitXML("http://inria.fr/Xy/index.xml", "", "", `<page><t>v1</t></page>`); n != 0 {
		t.Fatalf("new doc produced %d notifications", n)
	}
	// Unchanged refetch: no notification.
	if n := r.commitXML("http://inria.fr/Xy/index.xml", "", "", `<page><t>v1</t></page>`); n != 0 {
		t.Fatalf("unchanged doc produced %d notifications", n)
	}
	// Changed: notification fires, but report needs count > 1.
	if n := r.commitXML("http://inria.fr/Xy/index.xml", "", "", `<page><t>v2</t></page>`); n != 1 {
		t.Fatalf("updated doc produced %d notifications, want 1", n)
	}
	if len(r.reports) != 0 {
		t.Fatalf("report fired early")
	}
	// A second update on another matching page triggers the report.
	r.commitXML("http://inria.fr/Xy/members.xml", "", "", `<m><x>1</x></m>`)
	if n := r.commitXML("http://inria.fr/Xy/members.xml", "", "", `<m><x>2</x></m>`); n != 1 {
		t.Fatalf("second update produced %d notifications", n)
	}
	if len(r.reports) != 1 {
		t.Fatalf("reports = %d, want 1", len(r.reports))
	}
	out := r.reports[0].Doc.XML()
	if !strings.Contains(out, `url="http://inria.fr/Xy/index.xml"`) ||
		!strings.Contains(out, `status="updated"`) {
		t.Errorf("report = %s", out)
	}
	// A page outside the prefix never matches.
	if n := r.commitXML("http://elsewhere.org/a.xml", "", "", `<a><b>1</b></a>`); n != 0 {
		t.Errorf("outside page produced %d notifications", n)
	}
	st := r.mgr.Stats()
	if st.Subscriptions != 1 || st.ComplexEvents != 1 || st.AtomicEvents != 2 {
		t.Errorf("stats = %+v", st)
	}
}

const watchMembers = `subscription WatchMembers
monitoring
select X
from self//Member X
where URL = "http://inria.fr/Xy/members.xml"
  and new X
report when immediate
`

func TestSelectVariableNewElements(t *testing.T) {
	r := newRig(t, nil)
	r.subscribe(watchMembers)

	// New document: all members are new; one notification per member.
	n := r.commitXML("http://inria.fr/Xy/members.xml", "", "", `<Team>
		<Member><name>jouglet</name></Member>
		<Member><name>nguyen</name></Member>
	</Team>`)
	if n != 2 {
		t.Fatalf("notifications = %d, want 2", n)
	}
	// Update adding one member: exactly the new one is reported.
	n = r.commitXML("http://inria.fr/Xy/members.xml", "", "", `<Team>
		<Member><name>jouglet</name></Member>
		<Member><name>nguyen</name></Member>
		<Member><name>preda</name></Member>
	</Team>`)
	if n != 1 {
		t.Fatalf("notifications = %d, want 1", n)
	}
	last := r.reports[len(r.reports)-1].Doc.XML()
	if !strings.Contains(last, "preda") || strings.Contains(last, "jouglet") {
		t.Errorf("report = %s", last)
	}
	// Price-style update inside an existing member: no new members.
	n = r.commitXML("http://inria.fr/Xy/members.xml", "", "", `<Team>
		<Member><name>jouglet</name></Member>
		<Member><name>nguyen</name></Member>
		<Member><name>preda-renamed</name></Member>
	</Team>`)
	if n != 0 {
		t.Fatalf("rename produced %d new-member notifications", n)
	}
}

func TestAtomicEventDeduplication(t *testing.T) {
	r := newRig(t, nil)
	r.subscribe(`subscription A
monitoring select <PA/> where URL extends "http://shared.example/" and modified self
report when immediate`)
	r.subscribe(`subscription B
monitoring select <PB/> where URL extends "http://shared.example/" and new self
report when immediate`)
	st := r.mgr.Stats()
	// URL prefix is shared; "modified self" and "new self" are distinct.
	if st.AtomicEvents != 3 {
		t.Errorf("AtomicEvents = %d, want 3 (shared prefix deduplicated)", st.AtomicEvents)
	}
	if st.ComplexEvents != 2 {
		t.Errorf("ComplexEvents = %d", st.ComplexEvents)
	}
	// Removing A must keep B working.
	if err := r.mgr.Unsubscribe("A"); err != nil {
		t.Fatalf("Unsubscribe: %v", err)
	}
	if n := r.commitXML("http://shared.example/x.xml", "", "", `<a><b>1</b></a>`); n != 1 {
		t.Fatalf("B notifications = %d, want 1", n)
	}
	st = r.mgr.Stats()
	if st.AtomicEvents != 2 || st.ComplexEvents != 1 {
		t.Errorf("stats after unsubscribe = %+v", st)
	}
}

func TestUnsubscribeErrors(t *testing.T) {
	r := newRig(t, nil)
	if err := r.mgr.Unsubscribe("nope"); err != ErrUnknownSubscription {
		t.Errorf("Unsubscribe(nope) = %v", err)
	}
	r.subscribe(watchInria)
	if _, err := r.mgr.Subscribe(watchInria); err != ErrDuplicateSubscription {
		t.Errorf("duplicate Subscribe = %v", err)
	}
}

func TestWeakSuppression(t *testing.T) {
	r := newRig(t, nil)
	r.subscribe(`subscription W
monitoring select <P/> where URL extends "http://inria.fr/" and modified self
report when immediate`)
	// A page outside the prefix that was modified raises only the weak
	// event; the alert must be suppressed before reaching the processor.
	r.commitXML("http://elsewhere.org/p.xml", "", "", `<a><b>1</b></a>`)
	if n := r.commitXML("http://elsewhere.org/p.xml", "", "", `<a><b>2</b></a>`); n != 0 {
		t.Fatalf("weak-only alert produced %d notifications", n)
	}
	st := r.mgr.Stats()
	if st.WeakSuppress != 1 {
		t.Errorf("WeakSuppress = %d, want 1", st.WeakSuppress)
	}
}

func TestVirtualSubscription(t *testing.T) {
	r := newRig(t, nil)
	r.subscribe(watchInria)
	r.subscribe(`subscription Follower
virtual WatchInria.UpdatedPage`)
	r.commitXML("http://inria.fr/Xy/a.xml", "", "", `<a><b>1</b></a>`)
	r.commitXML("http://inria.fr/Xy/a.xml", "", "", `<a><b>2</b></a>`)
	r.commitXML("http://inria.fr/Xy/a.xml", "", "", `<a><b>3</b></a>`)
	recipients := map[string]int{}
	for _, rep := range r.reports {
		recipients[rep.Subscription]++
	}
	if recipients["WatchInria"] != 1 || recipients["Follower"] != 1 {
		t.Errorf("recipients = %v", recipients)
	}
	// Virtual reference to a missing subscription fails.
	if _, err := r.mgr.Subscribe(`subscription Bad
virtual Missing.Query`); err == nil {
		t.Error("virtual reference to missing subscription should fail")
	}
}

func TestNotificationTriggeredContinuousQuery(t *testing.T) {
	r := newRig(t, nil)
	r.commitXML("http://market.example/data.xml", "", "market",
		`<market><competitor><name>acme</name></competitor></market>`)
	r.reports = nil
	r.subscribe(`subscription XylemeCompetitors
monitoring
select <ChangeInMyProducts/>
where URL = "http://www.xyleme.com/products.xml"
  and modified self
continuous MyCompetitors
select c/name from market/competitor c
when XylemeCompetitors.ChangeInMyProducts
report when immediate`)
	r.commitXML("http://www.xyleme.com/products.xml", "", "", `<p><v>1</v></p>`)
	if len(r.reports) != 0 {
		t.Fatal("nothing should fire on the first (new) fetch")
	}
	r.commitXML("http://www.xyleme.com/products.xml", "", "", `<p><v>2</v></p>`)
	// Two notifications: the monitoring one and the triggered continuous
	// query result; report is immediate so two reports.
	if len(r.reports) != 2 {
		t.Fatalf("reports = %d, want 2", len(r.reports))
	}
	var joined strings.Builder
	for _, rep := range r.reports {
		joined.WriteString(rep.Doc.XML())
	}
	if !strings.Contains(joined.String(), "ChangeInMyProducts") ||
		!strings.Contains(joined.String(), "acme") {
		t.Errorf("reports = %s", joined.String())
	}
	if r.eng.Evaluations() != 1 {
		t.Errorf("continuous evaluations = %d", r.eng.Evaluations())
	}
}

func TestRefreshHints(t *testing.T) {
	r := newRig(t, nil)
	r.subscribe(`subscription R1
monitoring select <P/> where URL extends "http://a.example/"
refresh "http://a.example/x.xml" weekly`)
	r.subscribe(`subscription R2
monitoring select <P/> where URL extends "http://a.example/x"
refresh "http://a.example/x.xml" daily
refresh "http://a.example/y.xml" monthly`)
	hints := r.mgr.RefreshHints()
	if hints["http://a.example/x.xml"] != sublang.Daily {
		t.Errorf("x.xml hint = %v, want daily (smallest wins)", hints["http://a.example/x.xml"])
	}
	if hints["http://a.example/y.xml"] != sublang.Monthly {
		t.Errorf("y.xml hint = %v", hints["http://a.example/y.xml"])
	}
}

func TestJournalRecovery(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")
	j, err := NewFileJournal(path)
	if err != nil {
		t.Fatalf("NewFileJournal: %v", err)
	}
	r := newRig(t, j)
	r.subscribe(watchInria)
	r.subscribe(`subscription Gone
monitoring select <G/> where URL extends "http://gone.example/"
report when immediate`)
	if err := r.mgr.Unsubscribe("Gone"); err != nil {
		t.Fatalf("Unsubscribe: %v", err)
	}

	// A fresh system recovers the base from the journal.
	j2, err := NewFileJournal(path)
	if err != nil {
		t.Fatalf("reopen journal: %v", err)
	}
	r2 := newRig(t, nil)
	if err := r2.mgr.Recover(j2); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	subs := r2.mgr.Subscriptions()
	if len(subs) != 1 || subs[0] != "WatchInria" {
		t.Fatalf("recovered subs = %v", subs)
	}
	// And it behaves identically.
	r2.commitXML("http://inria.fr/Xy/a.xml", "", "", `<a><b>1</b></a>`)
	if n := r2.commitXML("http://inria.fr/Xy/a.xml", "", "", `<a><b>2</b></a>`); n != 1 {
		t.Errorf("recovered system notifications = %d, want 1", n)
	}
}

func TestSubscriptionLookup(t *testing.T) {
	r := newRig(t, nil)
	r.subscribe(watchInria)
	sub, err := r.mgr.Subscription("WatchInria")
	if err != nil || sub.Name != "WatchInria" {
		t.Errorf("Subscription = %v, %v", sub, err)
	}
	if _, err := r.mgr.Subscription("nope"); err != ErrUnknownSubscription {
		t.Errorf("Subscription(nope) = %v", err)
	}
}

func TestMemJournal(t *testing.T) {
	j := &MemJournal{}
	j.Append(Record{Op: "subscribe", Name: "A", Source: "src"})
	recs, err := j.Records()
	if err != nil || len(recs) != 1 || recs[0].Name != "A" {
		t.Errorf("records = %v, %v", recs, err)
	}
}

func TestDisjunctionDeduplicatesNotifications(t *testing.T) {
	r := newRig(t, nil)
	// Both disjuncts match the same document; the subscriber must get the
	// notification once (Section 7 disjunction extension).
	r.subscribe(`subscription D
monitoring
select <Hit url=URL/>
where URL extends "http://a.example/" and modified self
   or filename = "page.xml" and modified self
report when immediate`)
	r.commitXML("http://a.example/page.xml", "", "", `<a><v>1</v></a>`)
	if n := r.commitXML("http://a.example/page.xml", "", "", `<a><v>2</v></a>`); n != 1 {
		t.Fatalf("notifications = %d, want 1 (deduplicated)", n)
	}
	st := r.mgr.Stats()
	if st.ComplexEvents != 2 {
		t.Errorf("ComplexEvents = %d, want 2 (one per disjunct)", st.ComplexEvents)
	}
	// A document matching only the second disjunct still notifies.
	r.commitXML("http://b.example/page.xml", "", "", `<a><v>1</v></a>`)
	if n := r.commitXML("http://b.example/page.xml", "", "", `<a><v>2</v></a>`); n != 1 {
		t.Fatalf("second-disjunct notifications = %d, want 1", n)
	}
}

func TestLiteralBuiltinVariables(t *testing.T) {
	r := newRig(t, nil)
	r.subscribe(`subscription Builtins
monitoring
select <Full url=URL date=DATE id=DOCID dtd=DTD dom=DOMAIN st=STATUS lit="fixed"/>
where URL extends "http://b.example/" and modified self
report when immediate`)
	r.commitXML("http://b.example/x.xml", "http://b.example/x.dtd", "shopping", `<a><v>1</v></a>`)
	if n := r.commitXML("http://b.example/x.xml", "http://b.example/x.dtd", "shopping", `<a><v>2</v></a>`); n != 1 {
		t.Fatalf("notifications = %d", n)
	}
	out := r.reports[len(r.reports)-1].Doc.XML()
	for _, want := range []string{
		`url="http://b.example/x.xml"`,
		`date="2001-05-21T00:00:00Z"`,
		`id="1"`,
		`dtd="http://b.example/x.dtd"`,
		`dom="shopping"`,
		`st="updated"`,
		`lit="fixed"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %s: %s", want, out)
		}
	}
}

func TestSelectVariableUpdatedAndDeleted(t *testing.T) {
	r := newRig(t, nil)
	r.subscribe(`subscription Upd
monitoring
select X
from self//item X
where URL = "http://v.example/i.xml" and updated X
report when immediate`)
	r.subscribe(`subscription Del
monitoring
select X
from self//item X
where URL = "http://v.example/i.xml" and deleted X
report when immediate`)
	r.commitXML("http://v.example/i.xml", "", "", `<list>
		<item><n>a</n></item><item><n>b</n></item></list>`)
	// Update item a's text, delete item b.
	n := r.commitXML("http://v.example/i.xml", "", "", `<list>
		<item><n>a2</n></item></list>`)
	if n != 2 {
		t.Fatalf("notifications = %d, want updated-a + deleted-b", n)
	}
	var joined strings.Builder
	for _, rep := range r.reports {
		joined.WriteString(rep.Doc.XML())
	}
	if !strings.Contains(joined.String(), "a2") || !strings.Contains(joined.String(), "b") {
		t.Errorf("reports = %s", joined.String())
	}
}

func TestFullSelectClauseWithContent(t *testing.T) {
	r := newRig(t, nil)
	r.subscribe(`subscription Full
monitoring
select <Offer url=URL>"new member:" X</Offer>
from self//Member X
where URL = "http://inria.fr/Xy/members.xml" and new X
report when immediate`)
	r.commitXML("http://inria.fr/Xy/members.xml", "", "", `<Team>
		<Member><name>nguyen</name></Member></Team>`)
	n := r.commitXML("http://inria.fr/Xy/members.xml", "", "", `<Team>
		<Member><name>nguyen</name></Member>
		<Member><name>preda</name></Member></Team>`)
	if n != 1 {
		t.Fatalf("notifications = %d, want 1 (single literal wrapping the elements)", n)
	}
	out := r.reports[len(r.reports)-1].Doc.XML()
	if !strings.Contains(out, `<Offer url="http://inria.fr/Xy/members.xml">`) ||
		!strings.Contains(out, "new member:") ||
		!strings.Contains(out, "<Member><name>preda</name></Member>") ||
		strings.Contains(out, "nguyen") {
		t.Errorf("report = %s", out)
	}
}

func TestSubscribeParsedAndDefaultSelect(t *testing.T) {
	r := newRig(t, nil)
	// Hand-built subscription with no select clause at all: the manager's
	// default notification payload kicks in.
	sub := &sublang.Subscription{
		Name: "Programmatic",
		Monitoring: []*sublang.MonitoringQuery{{
			Where: []sublang.Condition{
				{Kind: sublang.CondURLExtends, Str: "http://prog.example/"},
				{Kind: sublang.CondSelfChange, Change: sublang.OpUpdated},
			},
		}},
	}
	if err := sublang.Validate(sub); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if err := r.mgr.SubscribeParsed(sub); err != nil {
		t.Fatalf("SubscribeParsed: %v", err)
	}
	r.commitXML("http://prog.example/a.xml", "", "", `<a><v>1</v></a>`)
	if n := r.commitXML("http://prog.example/a.xml", "", "", `<a><v>2</v></a>`); n != 1 {
		t.Fatalf("notifications = %d", n)
	}
	out := r.reports[len(r.reports)-1].Doc.XML()
	if !strings.Contains(out, `<notification url="http://prog.example/a.xml" status="updated"/>`) {
		t.Errorf("default notification = %s", out)
	}
}

func TestNopJournal(t *testing.T) {
	var j NopJournal
	if err := j.Append(Record{Op: "subscribe"}); err != nil {
		t.Errorf("Append: %v", err)
	}
	recs, err := j.Records()
	if err != nil || recs != nil {
		t.Errorf("Records = %v, %v", recs, err)
	}
}

func TestEstimateSelectivityCoverage(t *testing.T) {
	// One subscription touching every condition kind: the estimate must be
	// finite and positive and dominated by the weak self condition's rate
	// being masked by the stronger ones.
	src := `subscription All
monitoring select <A/> where URL extends "http://averyspecificsiteprefix.example/with/path/" and modified self
monitoring select <B/> where URL = "http://x.example/p.xml"
monitoring select <C/> where filename = "a.xml"
monitoring select <D/> where DTDID = 3
monitoring select <E/> where DOCID = 4
monitoring select <F/> where domain = "bio"
monitoring select <G/> where LastUpdate > "2001-01-01"
monitoring select <H/> where self contains "genome"
monitoring select <I/> where new Product contains "camera"
monitoring select <J/> where Product contains "camera"
monitoring select <K/> where new Product
report when immediate`
	cost := Estimate(mustParse(t, src))
	if cost.PerDoc <= 0 || cost.Total() <= 0 {
		t.Errorf("cost = %+v", cost)
	}
}

func TestSelectVariableWithContainsFilter(t *testing.T) {
	r := newRig(t, nil)
	r.subscribe(`subscription Cameras
monitoring
select X
from self//product X
where URL = "http://f.example/c.xml" and new X contains "camera"
report when immediate`)
	r.commitXML("http://f.example/c.xml", "", "", `<catalog><seed><s>1</s></seed></catalog>`)
	// Two new products; only one contains the word — exactly one
	// notification, carrying the camera product.
	n := r.commitXML("http://f.example/c.xml", "", "", `<catalog><seed><s>1</s></seed>
		<product><name>digital camera</name></product>
		<product><name>radio</name></product></catalog>`)
	if n != 1 {
		t.Fatalf("notifications = %d, want 1", n)
	}
	out := r.reports[len(r.reports)-1].Doc.XML()
	if !strings.Contains(out, "camera") || strings.Contains(out, "radio") {
		t.Errorf("report = %s", out)
	}
}
