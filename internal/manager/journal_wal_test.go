package manager

import (
	"os"
	"path/filepath"
	"testing"

	"xymon/internal/wal"
)

// TestRecoverTwiceIsIdempotent pins the replay contract: recovering the
// same journal twice — the shape of a checkpoint whose tail overlaps it,
// or a harness restarting a half-recovered system — must not duplicate
// the subscription base or error out.
func TestRecoverTwiceIsIdempotent(t *testing.T) {
	j := &MemJournal{}
	r := newRig(t, j)
	r.subscribe(watchInria)
	r.subscribe(`subscription Second
monitoring select <S/> where URL extends "http://second.example/"
report when immediate`)

	r2 := newRig(t, nil)
	if err := r2.mgr.Recover(j); err != nil {
		t.Fatalf("first Recover: %v", err)
	}
	if err := r2.mgr.Recover(j); err != nil {
		t.Fatalf("second Recover: %v", err)
	}
	if subs := r2.mgr.Subscriptions(); len(subs) != 2 {
		t.Fatalf("after double recovery: %v", subs)
	}
	// The base still behaves: one notification per change, not two.
	r2.commitXML("http://inria.fr/Xy/a.xml", "", "", `<a><b>1</b></a>`)
	if n := r2.commitXML("http://inria.fr/Xy/a.xml", "", "", `<a><b>2</b></a>`); n != 1 {
		t.Errorf("notifications after double recovery = %d, want 1", n)
	}
}

// newWALJournal opens a WALJournal in its own directory.
func newWALJournal(t *testing.T, dir string) *WALJournal {
	t.Helper()
	l, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	return NewWALJournal(l)
}

func TestWALJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j := newWALJournal(t, dir)
	recs := []Record{
		{Op: "subscribe", Name: "a", Source: "monitor x"},
		{Op: "subscribe", Name: "b", Source: "monitor y"},
		{Op: "unsubscribe", Name: "a"},
	}
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	j2 := newWALJournal(t, dir)
	got, err := j2.Records()
	if err != nil {
		t.Fatalf("Records: %v", err)
	}
	if len(got) != len(recs) {
		t.Fatalf("recovered %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("record %d = %+v, want %+v", i, got[i], recs[i])
		}
	}
}

// TestWALJournalCompactPlusTail pins the checkpoint protocol at the
// journal level: records live in the snapshot once compacted, new
// appends land in the tail, and recovery replays snapshot then tail.
func TestWALJournalCompactPlusTail(t *testing.T) {
	dir := t.TempDir()
	j := newWALJournal(t, dir)
	j.Append(Record{Op: "subscribe", Name: "a", Source: "sa"})
	j.Append(Record{Op: "subscribe", Name: "b", Source: "sb"})
	j.Append(Record{Op: "unsubscribe", Name: "b"})
	if err := j.Compact([]Record{{Op: "subscribe", Name: "a", Source: "sa"}}); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	j.Append(Record{Op: "subscribe", Name: "c", Source: "sc"})
	j.Close()

	j2 := newWALJournal(t, dir)
	got, err := j2.Records()
	if err != nil {
		t.Fatalf("Records: %v", err)
	}
	want := []Record{
		{Op: "subscribe", Name: "a", Source: "sa"},
		{Op: "subscribe", Name: "c", Source: "sc"},
	}
	if len(got) != len(want) {
		t.Fatalf("records = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestWALJournalTornHeaderByte pins the satellite case: a crash that got
// exactly one byte of the next frame's header onto disk. Recovery keeps
// every intact record and truncates the stray byte.
func TestWALJournalTornHeaderByte(t *testing.T) {
	dir := t.TempDir()
	j := newWALJournal(t, dir)
	j.Append(Record{Op: "subscribe", Name: "a", Source: "sa"})
	j.Append(Record{Op: "subscribe", Name: "b", Source: "sb"})
	j.Close()

	// One byte of a frame header lands after the intact records.
	seg := filepath.Join(dir, "seg-00000001.wal")
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x2a}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2 := newWALJournal(t, dir)
	got, err := j2.Records()
	if err != nil {
		t.Fatalf("Records on one-byte torn header: %v", err)
	}
	if len(got) != 2 || got[0].Name != "a" || got[1].Name != "b" {
		t.Fatalf("recovered %+v", got)
	}
	// Appends resume cleanly on the truncated boundary.
	if err := j2.Append(Record{Op: "subscribe", Name: "c", Source: "sc"}); err != nil {
		t.Fatalf("Append after torn recovery: %v", err)
	}
	j2.Close()
	j3 := newWALJournal(t, dir)
	if got, _ := j3.Records(); len(got) != 3 || got[2].Name != "c" {
		t.Fatalf("after torn recovery + append: %+v", got)
	}
}

// TestManagerCheckpointCompactsJournal drives Checkpoint end to end: the
// journal shrinks to the live base and recovery from the compacted
// journal rebuilds the same subscriptions.
func TestManagerCheckpointCompactsJournal(t *testing.T) {
	dir := t.TempDir()
	j := newWALJournal(t, dir)
	r := newRig(t, j)
	r.subscribe(watchInria)
	r.subscribe(`subscription Gone
monitoring select <G/> where URL extends "http://gone.example/"
report when immediate`)
	if err := r.mgr.Unsubscribe("Gone"); err != nil {
		t.Fatal(err)
	}
	if err := r.mgr.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	j.Close()

	j2 := newWALJournal(t, dir)
	got, err := j2.Records()
	if err != nil {
		t.Fatalf("Records after checkpoint: %v", err)
	}
	// Compacted: the Gone subscribe/unsubscribe pair is gone, one live
	// record remains.
	if len(got) != 1 || got[0].Name != "WatchInria" || got[0].Op != "subscribe" {
		t.Fatalf("compacted journal = %+v", got)
	}
	r2 := newRig(t, nil)
	if err := r2.mgr.Recover(j2); err != nil {
		t.Fatalf("Recover from checkpoint: %v", err)
	}
	if subs := r2.mgr.Subscriptions(); len(subs) != 1 || subs[0] != "WatchInria" {
		t.Fatalf("recovered subs = %v", subs)
	}
}

// TestFileJournalSyncEveryAndClose covers the satellite fix: one handle
// for the journal's lifetime, group-commit batching, and Close.
func TestFileJournalSyncEveryAndClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := NewFileJournal(path, WithSyncEvery(16))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := j.Append(Record{Op: "subscribe", Name: string(rune('a' + i))}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	// All five reached the OS even though no fsync boundary was hit.
	if got, err := j.Records(); err != nil || len(got) != 5 {
		t.Fatalf("Records mid-batch = %d, %v", len(got), err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	j2, err := NewFileJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got, err := j2.Records(); err != nil || len(got) != 5 {
		t.Fatalf("Records after Close/reopen = %d, %v", len(got), err)
	}
}
