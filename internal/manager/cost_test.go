package manager

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"xymon/internal/alerter"
	"xymon/internal/core"
	"xymon/internal/sublang"
)

func mustParse(t *testing.T, src string) *sublang.Subscription {
	t.Helper()
	sub, err := sublang.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return sub
}

func TestEstimateOrdersSubscriptionsByCost(t *testing.T) {
	cheap := Estimate(mustParse(t, `subscription Cheap
monitoring select <P/> where URL = "http://one.example/page.xml" and modified self
report when immediate`))
	prefix := Estimate(mustParse(t, `subscription Prefix
monitoring select <P/> where URL extends "http://site.example/" and modified self
report when immediate`))
	broad := Estimate(mustParse(t, `subscription Broad
monitoring select <P/> where domain = "biology" and modified self
report when immediate`))
	if !(cheap.Total() < prefix.Total() && prefix.Total() < broad.Total()) {
		t.Errorf("cost ordering broken: cheap=%.1f prefix=%.1f broad=%.1f",
			cheap.Total(), prefix.Total(), broad.Total())
	}
	// Continuous queries add per-day cost; hourly is dearer than weekly.
	hourly := Estimate(mustParse(t, `subscription H
continuous Q select a from b/c a when hourly
report when immediate`))
	weekly := Estimate(mustParse(t, `subscription W
continuous Q select a from b/c a when weekly
report when immediate`))
	if hourly.PerDay <= weekly.PerDay {
		t.Errorf("hourly %.1f/day should exceed weekly %.1f/day", hourly.PerDay, weekly.PerDay)
	}
}

func newCostRig(t *testing.T, maxCost, inhibitRate float64) *rig {
	t.Helper()
	r := newRig(t, nil)
	// Rebuild the manager with budgets.
	r.mgr = New(Config{
		Matcher:     core.NewMatcher(),
		Pipeline:    alerter.NewPipeline(nil),
		Reporter:    r.rep,
		Trigger:     r.eng,
		Clock:       func() time.Time { return r.clock },
		MaxCost:     maxCost,
		InhibitRate: inhibitRate,
	})
	return r
}

func TestMaxCostRejectsExpensiveSubscription(t *testing.T) {
	r := newCostRig(t, 5000, 0)
	// Cheap: exact URL.
	if _, err := r.mgr.Subscribe(`subscription Cheap
monitoring select <P/> where URL = "http://one.example/p.xml" and modified self
report when immediate`); err != nil {
		t.Fatalf("cheap subscription rejected: %v", err)
	}
	// Expensive: whole-domain monitoring.
	_, err := r.mgr.Subscribe(`subscription Broad
monitoring select <P/> where domain = "biology" and modified self
report when immediate`)
	if !errors.Is(err, ErrTooExpensive) {
		t.Errorf("broad subscription = %v, want ErrTooExpensive", err)
	}
}

func TestAPosterioriInhibition(t *testing.T) {
	r := newCostRig(t, 0, 0.5) // more than one notification per two documents is too chatty
	if _, err := r.mgr.Subscribe(`subscription Chatty
monitoring select <Hit url=URL/>
where URL extends "http://noisy.example/" and modified self
report when notifications.count > 100000`); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	if _, err := r.mgr.Subscribe(`subscription Quiet
monitoring select <Q url=URL/>
where URL = "http://quiet.example/only.xml" and modified self
report when notifications.count > 100000`); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	// Every document matches Chatty: after the observation window it must
	// be suspended.
	url := "http://noisy.example/p.xml"
	r.commitXML(url, "", "", `<a><v>0</v></a>`)
	for v := 1; v <= 200; v++ {
		r.commitXML(url, "", "", fmt.Sprintf(`<a><v>%d</v></a>`, v))
	}
	suspended := r.mgr.Suspended()
	if len(suspended) != 1 || suspended[0] != "Chatty" {
		t.Fatalf("Suspended = %v, want [Chatty]", suspended)
	}
	st := r.mgr.Stats()
	if st.Suspensions != 1 {
		t.Errorf("Suspensions = %d", st.Suspensions)
	}
	// Suspended: no more notifications.
	before := st.Notifications
	r.commitXML(url, "", "", `<a><v>final</v></a>`)
	if after := r.mgr.Stats().Notifications; after != before {
		t.Errorf("suspended subscription still notified: %d -> %d", before, after)
	}
	// Resume restores matching.
	if err := r.mgr.Resume("Chatty"); err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if n := r.commitXML(url, "", "", `<a><v>resumed</v></a>`); n != 1 {
		t.Errorf("resumed subscription notifications = %d, want 1", n)
	}
	// Resume errors.
	if err := r.mgr.Resume("Quiet"); !errors.Is(err, ErrNotSuspended) {
		t.Errorf("Resume(not suspended) = %v", err)
	}
	if err := r.mgr.Resume("nope"); !errors.Is(err, ErrUnknownSubscription) {
		t.Errorf("Resume(unknown) = %v", err)
	}
}

func TestUnsubscribeSuspended(t *testing.T) {
	r := newCostRig(t, 0, 0.1)
	if _, err := r.mgr.Subscribe(`subscription Chatty
monitoring select <Hit/>
where URL extends "http://noisy.example/" and modified self
report when notifications.count > 100000`); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	url := "http://noisy.example/p.xml"
	r.commitXML(url, "", "", `<a><v>0</v></a>`)
	for v := 1; v <= 200; v++ {
		r.commitXML(url, "", "", fmt.Sprintf(`<a><v>%d</v></a>`, v))
	}
	if len(r.mgr.Suspended()) != 1 {
		t.Fatal("not suspended")
	}
	if err := r.mgr.Unsubscribe("Chatty"); err != nil {
		t.Fatalf("Unsubscribe of suspended: %v", err)
	}
	st := r.mgr.Stats()
	if st.Subscriptions != 0 || st.AtomicEvents != 0 {
		t.Errorf("stats after unsubscribe = %+v", st)
	}
}
