package manager

import (
	"os"
	"path/filepath"
	"testing"
)

// tornJournal writes a journal whose final Append was cut short at
// byteCut bytes into its line — the on-disk state after a crash between
// write and sync.
func tornJournal(t *testing.T, intact []Record, tornLine string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := NewFileJournal(path)
	if err != nil {
		t.Fatalf("NewFileJournal: %v", err)
	}
	for _, r := range intact {
		if err := j.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(tornLine); err != nil {
		t.Fatal(err)
	}
	f.Close()
	return path
}

// TestRecordsSkipsTornTail pins crash recovery: a half-written final line
// must not cost the durably synced prefix.
func TestRecordsSkipsTornTail(t *testing.T) {
	intact := []Record{
		{Op: "subscribe", Name: "a", Source: "monitor x"},
		{Op: "subscribe", Name: "b", Source: "monitor y"},
		{Op: "unsubscribe", Name: "a"},
	}
	// The torn tail is even valid JSON up to the cut — it still goes,
	// because Append always terminates lines with '\n'.
	path := tornJournal(t, intact, `{"op":"subscribe","name":"c"`)
	j, err := NewFileJournal(path)
	if err != nil {
		t.Fatalf("NewFileJournal: %v", err)
	}
	got, err := j.Records()
	if err != nil {
		t.Fatalf("Records on torn journal: %v", err)
	}
	if len(got) != len(intact) {
		t.Fatalf("recovered %d records, want %d", len(got), len(intact))
	}
	for i, r := range got {
		if r != intact[i] {
			t.Errorf("record %d = %+v, want %+v", i, r, intact[i])
		}
	}

	// The torn bytes are truncated away, so a post-recovery Append starts
	// on a clean line boundary and a second recovery sees the new record.
	if err := j.Append(Record{Op: "subscribe", Name: "d"}); err != nil {
		t.Fatalf("Append after recovery: %v", err)
	}
	got, err = j.Records()
	if err != nil {
		t.Fatalf("Records after post-recovery append: %v", err)
	}
	if len(got) != 4 || got[3].Name != "d" {
		t.Fatalf("after append: %+v", got)
	}
}

// TestRecordsTornTailOnly pins the degenerate case: a journal whose only
// content is a torn line recovers to zero records, not an error.
func TestRecordsTornTailOnly(t *testing.T) {
	path := tornJournal(t, nil, `{"op":"sub`)
	j, err := NewFileJournal(path)
	if err != nil {
		t.Fatalf("NewFileJournal: %v", err)
	}
	got, err := j.Records()
	if err != nil || len(got) != 0 {
		t.Fatalf("Records = %v, %v; want empty, nil", got, err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 0 {
		t.Errorf("torn-only journal not truncated: %q", data)
	}
}

// TestRecordsMidFileCorruptionStillFails pins the boundary of the
// tolerance: a terminated line that does not parse is damage, not a
// crash artifact, and recovery must refuse to silently drop it.
func TestRecordsMidFileCorruptionStillFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	if err := os.WriteFile(path, []byte(`{"op":"subscribe","name":"a"}`+"\n"+`garbage`+"\n"+`{"op":"subscribe","name":"b"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := NewFileJournal(path)
	if err != nil {
		t.Fatalf("NewFileJournal: %v", err)
	}
	if _, err := j.Records(); err == nil {
		t.Fatal("mid-file corruption recovered silently")
	}
}
