package manager

import (
	"fmt"
	"sync"
	"testing"

	"xymon/internal/alerter"
	"xymon/internal/core"
	"xymon/internal/reporter"
	"xymon/internal/trigger"
	"xymon/internal/warehouse"
	"xymon/internal/xmldom"
)

// TestManagerStress drives a full manager — real clocks, live reporter
// and trigger engine — from concurrent subscribers, document pushers and
// tickers at once. It is the integration-level race probe for the lock
// discipline xyvet enforces statically: deliveries and trigger sinks run
// outside the component locks, so everything here may overlap. Run under
// -race; CI does.
func TestManagerStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	const (
		subscribers = 3
		pushers     = 3
		subIters    = 60
		pushIters   = 120
	)

	var repMu sync.Mutex
	var delivered int
	rep := reporter.New(reporter.DeliveryFunc(func(*reporter.Report) error {
		repMu.Lock()
		delivered++
		repMu.Unlock()
		return nil
	}))
	store := warehouse.NewStore()
	eng := trigger.New(store.AllRoots, func(res trigger.Result) {
		rep.Notify(reporter.Notification{
			Subscription: res.Subscription, Label: res.Query, Element: res.Element, Time: res.Time,
		})
	})
	mgr := New(Config{
		Matcher:  core.NewMatcher(),
		Pipeline: alerter.NewPipeline(nil),
		Reporter: rep,
		Trigger:  eng,
	})

	// One subscription registered before any goroutine starts: without it
	// the scheduler can legally drain every push before the first
	// subscriber registers, and the delivered-count assertion flakes.
	if _, err := mgr.Subscribe(`subscription Stress_warm
monitoring
select <UpdatedPage url=URL/>
where URL extends "http://stress0.example/" and modified self
report when immediate
`); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}

	var wg sync.WaitGroup
	done := make(chan struct{})

	for s := 0; s < subscribers; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < subIters; i++ {
				name := fmt.Sprintf("Stress_%d_%d", s, i)
				src := fmt.Sprintf(`subscription %s
monitoring
select <UpdatedPage url=URL/>
where URL extends "http://stress%d.example/" and modified self
report when immediate
`, name, s)
				if _, err := mgr.Subscribe(src); err != nil {
					t.Errorf("Subscribe: %v", err)
					return
				}
				if i%2 == 1 {
					if err := mgr.Unsubscribe(name); err != nil {
						t.Errorf("Unsubscribe: %v", err)
						return
					}
				}
			}
		}(s)
	}
	for p := 0; p < pushers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < pushIters; i++ {
				url := fmt.Sprintf("http://stress%d.example/page%d.xml", p, i%7)
				xml := fmt.Sprintf(`<catalog><product id="p%d"><price>%d</price></product></catalog>`, i, 10+i)
				res, err := store.CommitXML(url, "", "stress", xmldom.MustParse(xml))
				if err != nil {
					t.Errorf("CommitXML: %v", err)
					return
				}
				mgr.ProcessDoc(&alerter.Doc{Meta: res.Meta, Status: res.Status, Doc: res.Doc, Delta: res.Delta})
			}
		}(p)
	}
	tickerDone := make(chan struct{})
	go func() {
		defer close(tickerDone)
		for {
			select {
			case <-done:
				return
			default:
			}
			rep.Tick()
			eng.Tick()
			mgr.Stats()
			mgr.Subscriptions()
		}
	}()

	wg.Wait()
	close(done)
	<-tickerDone

	repMu.Lock()
	defer repMu.Unlock()
	if delivered == 0 {
		t.Error("no report was delivered during the stress run")
	}
}

// TestConcurrentProcessDocChurn focuses the race probe on the de-contended
// hot path: document pushers hammer ProcessDoc — pooled scratch, atomic
// counters, batched reporter delivery — while churners add and remove the
// same subscriptions over and over. Unlike TestManagerStress it pins exact
// counter arithmetic: every ProcessDoc call must be counted exactly once
// and every alert be either sent or weak-suppressed.
func TestConcurrentProcessDocChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	const (
		churners  = 2
		pushers   = 4
		churns    = 80
		pushIters = 150
	)

	rep := reporter.New(nil)
	store := warehouse.NewStore()
	eng := trigger.New(store.AllRoots, func(trigger.Result) {})
	mgr := New(Config{
		Matcher:  core.NewMatcher(),
		Pipeline: alerter.NewPipeline(nil),
		Reporter: rep,
		Trigger:  eng,
	})

	// Pre-commit the documents so pushers only exercise ProcessDoc.
	docs := make([]*alerter.Doc, 0, 32)
	for i := 0; i < 32; i++ {
		url := fmt.Sprintf("http://churn.example/page%d.xml", i)
		xml := fmt.Sprintf(`<catalog><product id="p%d"><price>%d</price></product></catalog>`, i, i)
		res, err := store.CommitXML(url, "", "churn", xmldom.MustParse(xml))
		if err != nil {
			t.Fatalf("CommitXML: %v", err)
		}
		docs = append(docs, &alerter.Doc{Meta: res.Meta, Status: res.Status, Doc: res.Doc, Delta: res.Delta})
	}

	var wg sync.WaitGroup
	for c := 0; c < churners; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < churns; i++ {
				name := fmt.Sprintf("Churn_%d_%d", c, i)
				src := fmt.Sprintf(`subscription %s
monitoring
select <Price url=URL/>
where URL extends "http://churn.example/" and modified self
report when immediate
`, name)
				if _, err := mgr.Subscribe(src); err != nil {
					t.Errorf("Subscribe: %v", err)
					return
				}
				if err := mgr.Unsubscribe(name); err != nil {
					t.Errorf("Unsubscribe: %v", err)
					return
				}
			}
		}(c)
	}
	for p := 0; p < pushers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < pushIters; i++ {
				mgr.ProcessDoc(docs[(p*pushIters+i)%len(docs)])
			}
		}(p)
	}
	wg.Wait()

	st := mgr.Stats()
	if want := uint64(pushers * pushIters); st.DocsProcessed != want {
		t.Errorf("DocsProcessed = %d, want %d", st.DocsProcessed, want)
	}
	if st.AlertsSent+st.WeakSuppress > st.DocsProcessed {
		t.Errorf("AlertsSent+WeakSuppress = %d exceeds DocsProcessed = %d",
			st.AlertsSent+st.WeakSuppress, st.DocsProcessed)
	}
}
