package manager

import (
	"fmt"
	"strings"

	"xymon/internal/sublang"
)

// Section 5.4 discusses controlling subscriptions whose cost would be
// prohibitive, and sketches both options implemented here:
//
//   - "use a cost model to estimate a priori the cost of a subscription and
//     restrict the right of specifying expensive subscriptions" — Estimate
//     scores a subscription before registration; Config.MaxCost rejects
//     subscriptions above the budget.
//   - "allow arbitrary subscriptions, but inhibit them a posteriori, if the
//     system finds out they require too much resources" — the manager
//     tracks per-subscription notification rates and suspends subscriptions
//     that exceed Config.InhibitRate notifications per processed document.

// Cost is the estimated resource consumption of a subscription, in
// abstract work units per fetched document (monitoring side) plus units
// per day (continuous side).
type Cost struct {
	// PerDoc estimates matching and alert work per fetched document; the
	// dominant factor is how unselective the conditions are.
	PerDoc float64
	// PerDay estimates continuous-query evaluations per day.
	PerDay float64
}

// Total folds the two components into one comparable number (one day at
// the paper's 4M pages/day crawl rate).
func (c Cost) Total() float64 {
	return c.PerDoc*4e6 + c.PerDay
}

// selectivity estimates the fraction of fetched documents raising the
// atomic event of a condition. The constants are heuristic but ordered:
// exact identifiers are rare, prefixes rarer the longer they are, change
// patterns on the whole web are common.
func selectivity(c sublang.Condition) float64 {
	switch c.Kind {
	case sublang.CondURLEquals, sublang.CondDOCID:
		return 1e-6
	case sublang.CondURLExtends:
		// Longer prefixes select fewer pages; a bare host selects a site.
		n := len(strings.TrimSpace(c.Str))
		switch {
		case n >= 40:
			return 1e-5
		case n >= 20:
			return 1e-4
		default:
			return 1e-3
		}
	case sublang.CondFilename, sublang.CondDTD, sublang.CondDTDID:
		return 1e-3
	case sublang.CondDomain:
		return 1e-2
	case sublang.CondLastAccessed, sublang.CondLastUpdate:
		return 0.5
	case sublang.CondSelfContains:
		return 1e-2
	case sublang.CondSelfChange:
		// Weak events: nearly every fetch is new/updated/unchanged.
		return 0.5
	case sublang.CondElement:
		if c.Change != sublang.NoChange && c.Str != "" {
			return 1e-3
		}
		if c.Str != "" {
			return 1e-2
		}
		return 0.1
	}
	return 1
}

// Estimate scores a parsed subscription.
func Estimate(sub *sublang.Subscription) Cost {
	var cost Cost
	for _, m := range sub.Monitoring {
		// A conjunction fires at the rate of its most selective condition;
		// detection work is paid per condition.
		rate := 1.0
		for _, c := range m.Where {
			s := selectivity(c)
			if s < rate {
				rate = s
			}
			cost.PerDoc += 1e-7 // per-condition detection overhead
		}
		cost.PerDoc += rate // notification construction and reporting
	}
	for _, cq := range sub.Continuous {
		switch {
		case cq.When.Freq != 0:
			cost.PerDay += 24.0 * float64(sublang.Hourly) / float64(cq.When.Freq)
		default:
			// Notification-triggered: bounded by the triggering query's
			// rate; assume a busy trigger.
			cost.PerDay += 100
		}
	}
	return cost
}

// suspended state handling --------------------------------------------------

// ErrNotSuspended is returned by Resume when the subscription is not
// suspended.
var ErrNotSuspended = fmt.Errorf("manager: subscription is not suspended")

// Suspended lists the subscriptions inhibited a posteriori.
func (m *Manager) Suspended() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for name, rs := range m.subs {
		if rs.suspended {
			out = append(out, name)
		}
	}
	return out
}

// Resume lifts a posteriori inhibition from a subscription, re-registering
// its complex events.
func (m *Manager) Resume(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	rs, ok := m.subs[name]
	if !ok {
		return ErrUnknownSubscription
	}
	if !rs.suspended {
		return ErrNotSuspended
	}
	for _, rq := range rs.queries {
		if err := m.matcher.Add(rq.id, rq.events); err != nil {
			return err
		}
		m.complexOf[rq.id] = rq
	}
	rs.suspended = false
	rs.notifWindow = 0
	rs.docsWindow = 0
	return nil
}

// noteNotificationsLocked updates a subscription's rate window — its
// notifications against the global processed-document counter — and
// suspends it when the rate exceeds the inhibition budget: the complex
// events are pulled from the matcher so the flood stops at the cheapest
// point.
func (m *Manager) noteNotificationsLocked(rs *registeredSub, produced int) {
	if m.inhibitRate <= 0 || rs.suspended {
		return
	}
	if rs.docsWindow == 0 {
		// Window opens at the first notification after a reset.
		rs.docsWindow = int(m.docsProcessed.Load())
	}
	rs.notifWindow += produced
	const window = 64 // processed documents per observation window
	span := int(m.docsProcessed.Load()) - rs.docsWindow + 1
	if span < window {
		return
	}
	rate := float64(rs.notifWindow) / float64(span)
	rs.notifWindow = 0
	rs.docsWindow = 0
	if rate <= m.inhibitRate {
		return
	}
	for _, rq := range rs.queries {
		_ = m.matcher.Remove(rq.id)
		delete(m.complexOf, rq.id)
	}
	rs.suspended = true
	m.suspensions++
}
