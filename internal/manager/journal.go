package manager

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"xymon/internal/wal"
)

// Record is one journal entry: a subscribe (with its source text) or an
// unsubscribe.
type Record struct {
	Op     string `json:"op"` // "subscribe" | "unsubscribe"
	Name   string `json:"name"`
	Source string `json:"source,omitempty"`
}

// Journal persists the subscription base so the system recovers it after
// a restart — the role MySQL plays in the paper's Subscription Manager.
type Journal interface {
	Append(r Record) error
	Records() ([]Record, error)
}

// NopJournal discards records; for benchmarks and ephemeral systems.
type NopJournal struct{}

// Append discards the record.
func (NopJournal) Append(Record) error { return nil }

// Records returns nothing.
func (NopJournal) Records() ([]Record, error) { return nil, nil }

// MemJournal keeps records in memory; for tests.
type MemJournal struct {
	mu   sync.Mutex
	recs []Record
}

// Append stores the record.
func (j *MemJournal) Append(r Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.recs = append(j.recs, r)
	return nil
}

// Records returns a copy of the stored records.
func (j *MemJournal) Records() ([]Record, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]Record(nil), j.recs...), nil
}

// Compacter is the optional journal face for checkpointing: replace the
// journal's history with an equivalent set of live records.
// Manager.Checkpoint uses it when the journal offers it.
type Compacter interface {
	Compact(live []Record) error
}

// FileJournal appends JSON-lines records to a file. It is a thin adapter
// over a wal.File with line framing: one handle held for the journal's
// lifetime (it used to reopen and fsync the file on every Append), the
// same on-disk format, and the same torn-tail recovery — now shared with
// the binary WAL.
type FileJournal struct {
	f *wal.File
}

// FileJournalOption configures NewFileJournal.
type FileJournalOption func(*wal.FileOptions)

// WithSyncEvery batches the journal's fsync across appends (group
// commit): every nth Append syncs, carrying the n-1 before it. The
// default (and any n < 2) syncs every append, as the journal always has.
func WithSyncEvery(n int) FileJournalOption {
	return func(o *wal.FileOptions) { o.SyncEvery = n }
}

// NewFileJournal opens (creating if needed) a journal at path.
func NewFileJournal(path string, opts ...FileJournalOption) (*FileJournal, error) {
	o := wal.FileOptions{Framing: wal.Lines{}}
	for _, opt := range opts {
		opt(&o)
	}
	f, err := wal.OpenFile(path, o)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	return &FileJournal{f: f}, nil
}

// Append writes one JSON line; fsync follows the WithSyncEvery policy
// (default: every append).
func (j *FileJournal) Append(r Record) error {
	enc, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := j.f.Append(enc); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}

// Records reads back every journal line. A final line without its
// terminating newline is a torn tail — the crash happened mid-Append —
// and is discarded (and truncated away, so the next Append starts on a
// clean boundary) rather than failing the whole recovery: every record
// before it was durably synced and must come back. Corruption anywhere
// else (a terminated line that does not parse) still fails loudly — that
// is not a crash artifact, the file was damaged.
func (j *FileJournal) Records() ([]Record, error) {
	var out []Record
	err := j.f.Replay(func(line []byte) error {
		if len(line) == 0 {
			return nil
		}
		var r Record
		if err := json.Unmarshal(line, &r); err != nil {
			return fmt.Errorf("journal: corrupt record: %w", err)
		}
		out = append(out, r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Sync flushes any fsync a WithSyncEvery policy is still holding back.
func (j *FileJournal) Sync() error { return j.f.Sync() }

// Close syncs pending appends and releases the journal's file handle.
func (j *FileJournal) Close() error { return j.f.Close() }

// WALJournal stores the subscription base in a segmented, checkpointed
// wal.Log: binary CRC-framed records, rotation, and compaction of
// everything a checkpoint covers. The checkpoint snapshot is the JSON
// array of live records; Records returns snapshot + tail in order, so
// Manager.Recover replays it like any other journal.
type WALJournal struct {
	l *wal.Log
}

// NewWALJournal wraps an opened wal.Log as a Journal.
func NewWALJournal(l *wal.Log) *WALJournal { return &WALJournal{l: l} }

// Append durably logs one record.
func (j *WALJournal) Append(r Record) error {
	enc, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := j.l.Append(enc); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}

// Records returns the latest checkpoint's live records followed by every
// record appended after it.
func (j *WALJournal) Records() ([]Record, error) {
	var out []Record
	err := j.l.Recover(
		func(snap []byte) error {
			if err := json.Unmarshal(snap, &out); err != nil {
				return fmt.Errorf("journal: corrupt checkpoint: %w", err)
			}
			return nil
		},
		func(payload []byte) error {
			var r Record
			if err := json.Unmarshal(payload, &r); err != nil {
				return fmt.Errorf("journal: corrupt record: %w", err)
			}
			out = append(out, r)
			return nil
		},
	)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Compact checkpoints the journal: live becomes the snapshot and every
// logged record it covers is truncated away.
func (j *WALJournal) Compact(live []Record) error {
	return j.l.Checkpoint(func(w io.Writer) error {
		enc := json.NewEncoder(w)
		if live == nil {
			live = []Record{}
		}
		return enc.Encode(live)
	})
}

// Close releases the underlying log.
func (j *WALJournal) Close() error { return j.l.Close() }
