package manager

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Record is one journal entry: a subscribe (with its source text) or an
// unsubscribe.
type Record struct {
	Op     string `json:"op"` // "subscribe" | "unsubscribe"
	Name   string `json:"name"`
	Source string `json:"source,omitempty"`
}

// Journal persists the subscription base so the system recovers it after
// a restart — the role MySQL plays in the paper's Subscription Manager.
type Journal interface {
	Append(r Record) error
	Records() ([]Record, error)
}

// NopJournal discards records; for benchmarks and ephemeral systems.
type NopJournal struct{}

// Append discards the record.
func (NopJournal) Append(Record) error { return nil }

// Records returns nothing.
func (NopJournal) Records() ([]Record, error) { return nil, nil }

// MemJournal keeps records in memory; for tests.
type MemJournal struct {
	mu   sync.Mutex
	recs []Record
}

// Append stores the record.
func (j *MemJournal) Append(r Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.recs = append(j.recs, r)
	return nil
}

// Records returns a copy of the stored records.
func (j *MemJournal) Records() ([]Record, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]Record(nil), j.recs...), nil
}

// FileJournal appends JSON-lines records to a file.
type FileJournal struct {
	mu   sync.Mutex
	path string
}

// NewFileJournal opens (creating if needed) a journal at path.
func NewFileJournal(path string) (*FileJournal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	f.Close()
	return &FileJournal{path: path}, nil
}

// Append writes one JSON line and syncs it.
func (j *FileJournal) Append(r Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	f, err := os.OpenFile(j.path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	defer f.Close()
	enc, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if _, err := f.Write(append(enc, '\n')); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return f.Sync()
}

// Records reads back every journal line. A final line without its
// terminating newline is a torn tail — the crash happened mid-Append —
// and is discarded (and truncated away, so the next Append starts on a
// clean boundary) rather than failing the whole recovery: every record
// before it was durably synced and must come back. Corruption anywhere
// else (a terminated line that does not parse) still fails loudly — that
// is not a crash artifact, the file was damaged.
func (j *FileJournal) Records() ([]Record, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	data, err := os.ReadFile(j.path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("journal: %w", err)
	}
	valid := len(data) // bytes covered by newline-terminated lines
	if i := bytes.LastIndexByte(data, '\n'); i < 0 {
		valid = 0
	} else {
		valid = i + 1
	}
	var out []Record
	for rest := data[:valid]; len(rest) > 0; {
		nl := bytes.IndexByte(rest, '\n')
		line := rest[:nl]
		rest = rest[nl+1:]
		if len(line) == 0 {
			continue
		}
		var r Record
		if err := json.Unmarshal(line, &r); err != nil {
			return nil, fmt.Errorf("journal: corrupt record: %w", err)
		}
		out = append(out, r)
	}
	if valid < len(data) {
		if err := os.Truncate(j.path, int64(valid)); err != nil {
			return nil, fmt.Errorf("journal: truncating torn tail: %w", err)
		}
	}
	return out, nil
}
