package wal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// collect replays a log into a slice of payload copies.
func collect(t *testing.T, l *Log) (snapshot []byte, records [][]byte) {
	t.Helper()
	err := l.Recover(
		func(s []byte) error { snapshot = append([]byte(nil), s...); return nil },
		func(p []byte) error { records = append(records, append([]byte(nil), p...)); return nil },
	)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	return snapshot, records
}

func openLog(t *testing.T, dir string, o Options) *Log {
	t.Helper()
	l, err := Open(dir, o)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}

func TestLogAppendRecover(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir, Options{})
	want := [][]byte{[]byte("one"), []byte("two"), {}, []byte("four")}
	for _, p := range want {
		if err := l.Append(p); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2 := openLog(t, dir, Options{})
	snap, got := collect(t, l2)
	if snap != nil {
		t.Errorf("snapshot before any checkpoint: %q", snap)
	}
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestLogRotationAndOrder(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation every couple of records.
	l := openLog(t, dir, Options{SegmentBytes: 64})
	var want [][]byte
	for i := 0; i < 40; i++ {
		p := []byte(fmt.Sprintf("record-%02d", i))
		want = append(want, p)
		if err := l.Append(p); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if st := l.Stats(); st.Rotations == 0 {
		t.Fatal("no rotation at 64-byte segments")
	}
	l.Close()

	l2 := openLog(t, dir, Options{SegmentBytes: 64})
	_, got := collect(t, l2)
	if len(got) != len(want) {
		t.Fatalf("recovered %d records across segments, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q (ordering across segments)", i, got[i], want[i])
		}
	}
}

func TestLogCheckpointCompactsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir, Options{SegmentBytes: 64})
	for i := 0; i < 20; i++ {
		if err := l.Append([]byte(fmt.Sprintf("pre-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Checkpoint(func(w io.Writer) error {
		_, err := w.Write([]byte("STATE-AT-20"))
		return err
	}); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := l.Append([]byte(fmt.Sprintf("post-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	// Compaction: the pre-checkpoint segments are gone from disk.
	entries, _ := os.ReadDir(dir)
	segs := 0
	for _, e := range entries {
		if len(e.Name()) > 4 && e.Name()[:4] == "seg-" {
			segs++
		}
	}
	if segs != 1 {
		t.Errorf("%d segments after checkpoint, want 1 (compaction)", segs)
	}

	l2 := openLog(t, dir, Options{SegmentBytes: 64})
	snap, got := collect(t, l2)
	if string(snap) != "STATE-AT-20" {
		t.Errorf("snapshot = %q", snap)
	}
	if len(got) != 3 || string(got[0]) != "post-0" || string(got[2]) != "post-2" {
		t.Errorf("tail after checkpoint = %q", got)
	}
}

// TestLogTornTail pins binary torn-tail recovery, including the
// satellite case of a tail that is exactly one byte of a frame header.
func TestLogTornTail(t *testing.T) {
	for _, tear := range []struct {
		name string
		cut  func(frame []byte) []byte
	}{
		{"one-header-byte", func(f []byte) []byte { return f[:1] }},
		{"half-header", func(f []byte) []byte { return f[:binaryHeader/2] }},
		{"header-only", func(f []byte) []byte { return f[:binaryHeader] }},
		{"half-payload", func(f []byte) []byte { return f[:binaryHeader+(len(f)-binaryHeader)/2] }},
	} {
		t.Run(tear.name, func(t *testing.T) {
			dir := t.TempDir()
			l := openLog(t, dir, Options{})
			for i := 0; i < 3; i++ {
				if err := l.Append([]byte(fmt.Sprintf("intact-%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			l.Close()

			// Simulate the crash: a partial frame lands on the active
			// segment's tail.
			frame, err := Binary{}.AppendFrame(nil, []byte("torn-record"))
			if err != nil {
				t.Fatal(err)
			}
			seg := filepath.Join(dir, segName(1))
			f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(tear.cut(frame)); err != nil {
				t.Fatal(err)
			}
			f.Close()

			l2 := openLog(t, dir, Options{})
			if st := l2.Stats(); st.TornBytes == 0 {
				t.Error("torn bytes not counted")
			}
			_, got := collect(t, l2)
			if len(got) != 3 {
				t.Fatalf("recovered %d records, want the 3 intact ones", len(got))
			}
			// The tail was truncated: appends resume on a clean boundary.
			if err := l2.Append([]byte("after")); err != nil {
				t.Fatalf("Append after torn recovery: %v", err)
			}
			l2.Close()
			l3 := openLog(t, dir, Options{})
			_, got = collect(t, l3)
			if len(got) != 4 || string(got[3]) != "after" {
				t.Fatalf("after torn recovery + append: %q", got)
			}
		})
	}
}

// TestLogMidFileCorruptionFailsLoudly pins the boundary of the
// tolerance: a complete frame with a bad CRC, or an implausible length,
// is damage — recovery must refuse, not silently drop records.
func TestLogMidFileCorruptionFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir, Options{})
	for i := 0; i < 3; i++ {
		if err := l.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	seg := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of the middle record: CRC mismatch.
	data[binaryHeader+5+binaryHeader] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open on corrupt segment = %v, want ErrCorrupt", err)
	}
}

// TestLogCrashResidue simulates every on-disk state a crash inside
// Checkpoint can leave and requires Open to repair it.
func TestLogCrashResidue(t *testing.T) {
	build := func(t *testing.T) string {
		dir := t.TempDir()
		l := openLog(t, dir, Options{SegmentBytes: 64})
		for i := 0; i < 10; i++ {
			if err := l.Append([]byte(fmt.Sprintf("r-%02d", i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Checkpoint(func(w io.Writer) error { _, err := w.Write([]byte("SNAP")); return err }); err != nil {
			t.Fatal(err)
		}
		if err := l.Append([]byte("tail")); err != nil {
			t.Fatal(err)
		}
		l.Close()
		return dir
	}

	t.Run("leftover-temp", func(t *testing.T) {
		dir := build(t)
		// Crash after writing the temp, before the rename: the temp must
		// be discarded, the installed checkpoint still rules.
		if err := os.WriteFile(filepath.Join(dir, checkpointTmp), []byte("half-written"), 0o644); err != nil {
			t.Fatal(err)
		}
		l := openLog(t, dir, Options{})
		snap, got := collect(t, l)
		if string(snap) != "SNAP" || len(got) != 1 || string(got[0]) != "tail" {
			t.Fatalf("recovered snap=%q tail=%q", snap, got)
		}
		if _, err := os.Stat(filepath.Join(dir, checkpointTmp)); !os.IsNotExist(err) {
			t.Error("leftover temp checkpoint survived Open")
		}
	})

	t.Run("leftover-covered-segments", func(t *testing.T) {
		dir := build(t)
		// Crash between the rename and the compaction: resurrect a
		// covered segment; Open must delete it, and recovery must not
		// replay it (its records are inside the snapshot already).
		stale, err := Binary{}.AppendFrame(nil, []byte("covered-record"))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, segName(1)), stale, 0o644); err != nil {
			t.Fatal(err)
		}
		l := openLog(t, dir, Options{})
		snap, got := collect(t, l)
		if string(snap) != "SNAP" || len(got) != 1 || string(got[0]) != "tail" {
			t.Fatalf("recovered snap=%q tail=%q (covered segment replayed?)", snap, got)
		}
		if _, err := os.Stat(filepath.Join(dir, segName(1))); !os.IsNotExist(err) {
			t.Error("covered segment survived Open")
		}
	})

	t.Run("missing-segment", func(t *testing.T) {
		dir := t.TempDir()
		l := openLog(t, dir, Options{SegmentBytes: 32})
		for i := 0; i < 12; i++ {
			if err := l.Append([]byte(fmt.Sprintf("r-%02d", i))); err != nil {
				t.Fatal(err)
			}
		}
		l.Close()
		if err := os.Remove(filepath.Join(dir, segName(2))); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Open with a missing middle segment = %v, want ErrCorrupt", err)
		}
	})
}

func TestFileSyncEveryGroupCommit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "grouped.wal")
	f, err := OpenFile(path, FileOptions{SyncEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := f.Append([]byte(fmt.Sprintf("g-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Writes reach the OS immediately even when the fsync is batched:
	// every record is visible to a replay right now.
	var n int
	if err := f.Replay(func([]byte) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("replay saw %d of 10 unsynced-batch records", n)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestLinesFraming(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lines.log")
	f, err := OpenFile(path, FileOptions{Framing: Lines{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Append([]byte(`{"a":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := f.Append([]byte("with\nnewline")); err == nil {
		t.Fatal("newline payload accepted by Lines framing")
	}
	f.Close()
	// A torn line (no trailing newline) is truncated away on replay.
	raw, _ := os.ReadFile(path)
	if err := os.WriteFile(path, append(raw, []byte(`{"b":`)...), 0o644); err != nil {
		t.Fatal(err)
	}
	f2, err := OpenFile(path, FileOptions{Framing: Lines{}})
	if err != nil {
		t.Fatal(err)
	}
	var got [][]byte
	if err := f2.Replay(func(p []byte) error { got = append(got, append([]byte(nil), p...)); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || string(got[0]) != `{"a":1}` {
		t.Fatalf("lines replay = %q", got)
	}
	data, _ := os.ReadFile(path)
	if !bytes.Equal(data, raw) {
		t.Errorf("torn line not truncated: %q", data)
	}
	f2.Close()
}

// TestLogHookFailsAppendCleanly pins the OpAppend hook contract: an
// error there fails the append before any byte lands.
func TestLogHookFailsAppendCleanly(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("boom")
	armed := false
	l := openLog(t, dir, Options{Hook: func(op, key string) error {
		if armed && op == OpAppend {
			return boom
		}
		return nil
	}})
	if err := l.Append([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	armed = true
	if err := l.Append([]byte("rejected")); !errors.Is(err, boom) {
		t.Fatalf("hooked append = %v", err)
	}
	armed = false
	l.Close()
	l2 := openLog(t, dir, Options{})
	_, got := collect(t, l2)
	if len(got) != 1 || string(got[0]) != "ok" {
		t.Fatalf("after failed append: %q", got)
	}
}

func TestCheckpointSnapshotTooLargeFails(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir, Options{MaxFrame: 128})
	if err := l.Append(bytes.Repeat([]byte("x"), 200)); err == nil {
		t.Fatal("oversized record accepted")
	}
	if err := l.Append([]byte("fits")); err != nil {
		t.Fatal(err)
	}
	l.Close()
}

// TestCheckpointRetainPreservesSegments pins the stream satellite: a
// retention-aware checkpoint covers every record in its snapshot but
// keeps segments ≥ retain on disk, recovery does not replay them, and
// they survive a reopen until a later checkpoint raises the bound.
func TestCheckpointRetainPreservesSegments(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir, Options{SegmentBytes: 64})
	for i := 0; i < 20; i++ {
		if err := l.Append([]byte(fmt.Sprintf("pre-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	segsBefore := l.Segments()
	if len(segsBefore) < 3 {
		t.Fatalf("want ≥3 segments before checkpoint, have %v", segsBefore)
	}
	// Retain everything from the second live segment onward.
	keepFrom := segsBefore[1]
	if err := l.CheckpointRetain(keepFrom, func(w io.Writer) error {
		_, err := w.Write([]byte("SNAP"))
		return err
	}); err != nil {
		t.Fatalf("CheckpointRetain: %v", err)
	}
	for _, idx := range l.Segments() {
		if idx < keepFrom {
			t.Errorf("segment %d below retain bound survived", idx)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, SegmentFileName(keepFrom))); err != nil {
		t.Fatalf("retained segment gone: %v", err)
	}
	if err := l.Append([]byte("post-0")); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Reopen: retained segments stay on disk, recovery replays only the
	// post-boundary tail (the snapshot covers the retained history).
	l2 := openLog(t, dir, Options{SegmentBytes: 64})
	if got := l2.Segments(); got[0] != keepFrom {
		t.Errorf("reopened segments = %v, want first %d", got, keepFrom)
	}
	snap, got := collect(t, l2)
	if string(snap) != "SNAP" {
		t.Errorf("snapshot = %q", snap)
	}
	if len(got) != 1 || string(got[0]) != "post-0" {
		t.Errorf("replayed tail = %q, want just post-0", got)
	}

	// A plain Checkpoint afterwards compacts the retained history away.
	if err := l2.Checkpoint(func(w io.Writer) error {
		_, err := w.Write([]byte("SNAP2"))
		return err
	}); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if got := l2.Segments(); len(got) != 1 {
		t.Errorf("segments after plain checkpoint = %v, want 1", got)
	}
	l2.Close()
}
