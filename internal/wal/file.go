package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// The File's own durability points, reported to its Hook. They sit one
// level below the Log's wal.append/wal.append.done pair: OpFileAppend
// fires before the OS write, OpFileSync after the write but before the
// fsync, so a crash harness can kill in the window where data is in the
// page cache but not yet durable.
const (
	OpFileAppend = "wal.file.append"
	OpFileSync   = "wal.file.sync"
)

// FileOptions configures a File.
type FileOptions struct {
	// Framing delimits records; nil means Binary{}.
	Framing Framing
	// SyncEvery batches fsync across appends (group commit): every Nth
	// append syncs, carrying the N-1 before it. Values below 2 sync
	// every append — the durable default. Writes always reach the OS
	// immediately; only the fsync is batched, so a process crash loses
	// nothing and a machine crash loses at most the last N-1 records.
	SyncEvery int
	// Hook, when non-nil, is consulted at OpFileAppend and OpFileSync
	// with the file path as key; an error fails the operation before the
	// write (or fsync) happens. This is the File's fault seam — the Log
	// has its own coarser hook around whole appends and checkpoints.
	Hook Hook
}

// File is one append-only log file of frames. The handle is opened once
// and held for the File's lifetime (the subscription journal used to
// reopen and fsync per record — see NewFileJournal's history). Safe for
// concurrent use.
type File struct {
	mu       sync.Mutex
	path     string
	f        *os.File
	fr       Framing
	hook     Hook
	every    int
	unsynced int
	buf      []byte
	size     int64
}

// OpenFile opens (creating if needed) the log file at path.
func OpenFile(path string, o FileOptions) (*File, error) {
	if o.Framing == nil {
		o.Framing = Binary{}
	}
	if o.SyncEvery < 2 {
		o.SyncEvery = 1
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %w", err)
	}
	return &File{path: path, f: f, fr: o.Framing, hook: o.Hook, every: o.SyncEvery, size: st.Size()}, nil
}

func (w *File) consult(op string) error {
	if w.hook == nil {
		return nil
	}
	return w.hook(op, w.path)
}

// Append frames payload onto the file. The write reaches the OS before
// Append returns; fsync follows the SyncEvery policy.
func (w *File) Append(payload []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appendLocked(payload)
}

func (w *File) appendLocked(payload []byte) error {
	if err := w.consult(OpFileAppend); err != nil {
		return err
	}
	// Framing is pure byte manipulation (Binary/Lines); it cannot block
	// or call back into the File.
	//xyvet:ignore lockcheck
	buf, err := w.fr.AppendFrame(w.buf[:0], payload)
	if err != nil {
		return err
	}
	w.buf = buf[:0] // keep the capacity, not the data
	if _, err := w.f.Write(buf); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	w.size += int64(len(buf))
	w.unsynced++
	if w.unsynced >= w.every {
		return w.syncLocked()
	}
	return nil
}

func (w *File) syncLocked() error {
	if w.unsynced == 0 {
		return nil
	}
	if err := w.consult(OpFileSync); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	w.unsynced = 0
	return nil
}

// Sync flushes any fsync the SyncEvery policy is still holding back.
func (w *File) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncLocked()
}

// Size returns the current file size in bytes (frames written, torn
// tail included until Replay truncates it).
func (w *File) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// Close syncs pending appends and releases the handle.
func (w *File) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.syncLocked()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// Replay streams every intact record to fn in append order. A torn
// final frame — the crash happened mid-append — is discarded and
// truncated away, so the next Append starts on a clean boundary;
// everything before it was durably written and comes back. Corruption
// anywhere else fails loudly: that is not a crash artifact, the file
// was damaged.
func (w *File) Replay(fn func(payload []byte) error) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	data, err := os.ReadFile(w.path)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	valid, err := scan(data, w.fr, fn)
	if err != nil {
		return err
	}
	if valid < len(data) {
		if err := os.Truncate(w.path, int64(valid)); err != nil {
			return fmt.Errorf("wal: truncating torn tail: %w", err)
		}
		w.size = int64(valid)
	}
	return nil
}

// SyncDir fsyncs a directory, making renames and unlinks inside it
// durable. Every os.Rename that installs a freshly created file must be
// followed by a SyncDir of its parent — the walfsync analyzer enforces
// this shape tree-wide.
//
// This is a registered durability primitive: faults are injected by the
// hooks and injector checks surrounding its call sites (the Log's
// checkpoint ops, the warehouse save point), not inside it.
//
//xyvet:faultpoint
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("wal: syncing %s: %w", dir, err)
	}
	return nil
}

// WriteFileSync writes data to path and fsyncs it — os.WriteFile plus
// the durability the crash-recovery discipline requires before a rename
// can install the file.
//
// This is a registered durability primitive: faults are injected by the
// hooks and injector checks surrounding its call sites (the Log's
// checkpoint ops, the warehouse save point), not inside it.
//
//xyvet:faultpoint
func WriteFileSync(path string, data []byte, perm os.FileMode) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, perm)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	_, err = f.Write(data)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("wal: writing %s: %w", filepath.Base(path), err)
	}
	return nil
}
