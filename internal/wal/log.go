package wal

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// The named durability points of the log, reported to the Hook. The
// crash harness arms faults.ModeCrash rules at these names; a hook
// error at OpAppend fails the append cleanly before anything is
// written.
const (
	// OpAppend fires on entry to Append, before any byte is written.
	OpAppend = "wal.append"
	// OpAppendDone fires after the frame reached the OS (and fsync,
	// per the SyncEvery policy), before the append is acknowledged.
	OpAppendDone = "wal.append.done"
	// OpCheckpointTemp fires after the checkpoint temp file is written
	// and fsynced, before the rename installs it.
	OpCheckpointTemp = "wal.checkpoint.temp"
	// OpCheckpointInstall fires after the rename, before the parent
	// directory is fsynced and old segments are compacted away.
	OpCheckpointInstall = "wal.checkpoint.install"
	// OpCheckpointCompact fires mid-compaction, after the first covered
	// segment was deleted.
	OpCheckpointCompact = "wal.checkpoint.compact"
)

// Hook observes the log's durability points; the crash harness uses it
// to kill the process at each one. Returning an error from OpAppend
// fails the append before it writes; errors at later points surface to
// the caller after the durable work already happened.
type Hook func(op, key string) error

// Options configures a Log.
type Options struct {
	// SegmentBytes rotates the active segment once it reaches this many
	// bytes; 0 means 1 MiB.
	SegmentBytes int64
	// SyncEvery batches fsync across appends; see FileOptions.
	SyncEvery int
	// MaxFrame caps record size; 0 means DefaultMaxFrame. Ignored when
	// Framing is set.
	MaxFrame int
	// Framing substitutes the record codec; nil means Binary (length ‖
	// CRC32C frames). The cluster coordinator's transfer journal passes
	// Lines to keep its records greppable JSON, the same trade the
	// subscription journal makes.
	Framing Framing
	// Hook, when non-nil, is consulted at every Op point with the log's
	// key (the directory's base name).
	Hook Hook
}

// Stats counts a Log's activity.
type Stats struct {
	Appends     uint64
	Rotations   uint64
	Checkpoints uint64
	// TornBytes counts bytes truncated from the active segment when the
	// log was opened — the residue of a crash mid-append.
	TornBytes int64
}

// Log is a segmented, checkpointed write-ahead log: binary frames in
// rotated append-only segment files, plus a snapshot installed
// atomically (temp file → fsync → rename → parent-dir fsync) whose
// installation compacts away every segment it covers. Safe for
// concurrent use. Recovery contract: Open, then Recover, then Append.
type Log struct {
	mu  sync.Mutex
	dir string
	key string
	o   Options
	fr  Framing

	seg    *File // active segment
	segs   []int // live segment indexes, ascending; last is active
	bound  int   // first segment the checkpoint does not cover
	retain int   // first segment preserved on disk (≤ bound)
	snap   []byte
	closed bool
	stats  Stats
}

const (
	checkpointName = "checkpoint.wal"
	checkpointTmp  = "checkpoint.tmp"
)

func segName(idx int) string { return fmt.Sprintf("seg-%08d.wal", idx) }

// SegmentFileName returns the file name (inside the log directory) of
// the segment with the given index. Layered readers — internal/stream's
// offset-addressable change-stream — locate retained segments by it.
func SegmentFileName(idx int) string { return segName(idx) }

// checkpointMeta is the first frame of a checkpoint file.
type checkpointMeta struct {
	// Boundary is the first segment index NOT covered by the snapshot:
	// recovery restores the snapshot, then replays segments ≥ Boundary.
	Boundary int `json:"boundary"`
	// Retain is the first segment index preserved on disk. Checkpoints
	// written by CheckpointRetain keep covered segments in [Retain,
	// Boundary) readable for layered consumers; plain Checkpoint leaves
	// it 0, which means "same as Boundary" (nothing extra retained).
	Retain int `json:"retain,omitempty"`
}

// Open opens (creating if needed) the log rooted at dir and repairs any
// crash residue: a leftover checkpoint temp file is removed, segments
// covered by the installed checkpoint are deleted, and a torn tail on
// the active segment is truncated away.
func Open(dir string, o Options) (*Log, error) {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 1 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{dir: dir, key: filepath.Base(dir), o: o, fr: o.Framing, bound: 1, retain: 1}
	if l.fr == nil {
		l.fr = Binary{MaxFrame: o.MaxFrame}
	}
	// A temp file means the crash hit before the rename: the checkpoint
	// was never installed and the previous one (if any) still rules.
	if err := os.Remove(filepath.Join(dir, checkpointTmp)); err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if err := l.loadCheckpoint(); err != nil {
		return nil, err
	}
	if err := l.loadSegments(); err != nil {
		return nil, err
	}
	return l, nil
}

// loadCheckpoint reads the installed checkpoint, if any. The install is
// atomic, so a present-but-unreadable checkpoint is damage, not a crash
// artifact.
func (l *Log) loadCheckpoint() error {
	data, err := os.ReadFile(filepath.Join(l.dir, checkpointName))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	metaRaw, n, err := l.fr.Next(data)
	if err != nil {
		return fmt.Errorf("wal: checkpoint header: %w", errors.Join(ErrCorrupt, err))
	}
	var meta checkpointMeta
	if err := json.Unmarshal(metaRaw, &meta); err != nil || meta.Boundary < 1 {
		return fmt.Errorf("%w: checkpoint meta %q", ErrCorrupt, metaRaw)
	}
	if meta.Retain < 0 || meta.Retain > meta.Boundary {
		return fmt.Errorf("%w: checkpoint retain %d outside [0, %d]", ErrCorrupt, meta.Retain, meta.Boundary)
	}
	snap, size, err := l.fr.Next(data[n:])
	if err != nil || n+size != len(data) {
		return fmt.Errorf("wal: checkpoint snapshot: %w", errors.Join(ErrCorrupt, err))
	}
	l.bound = meta.Boundary
	l.retain = meta.Retain
	if l.retain == 0 {
		l.retain = meta.Boundary
	}
	l.snap = append([]byte(nil), snap...)
	return nil
}

// loadSegments lists the segment files, deletes the ones the checkpoint
// covers (compaction the crash interrupted), verifies contiguity,
// truncates the active segment's torn tail, and opens it for append.
func (l *Log) loadSegments() error {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	var idxs []int
	for _, e := range entries {
		var idx int
		if _, err := fmt.Sscanf(e.Name(), "seg-%08d.wal", &idx); err == nil {
			idxs = append(idxs, idx)
		}
	}
	sort.Ints(idxs)
	live := idxs[:0]
	for _, idx := range idxs {
		if idx < l.retain {
			if err := os.Remove(filepath.Join(l.dir, segName(idx))); err != nil {
				return fmt.Errorf("wal: removing covered segment: %w", err)
			}
			continue
		}
		live = append(live, idx)
	}
	if len(live) == 0 {
		live = append(live, l.bound)
	}
	for i, idx := range live {
		if idx != live[0]+i {
			return fmt.Errorf("%w: segment %d missing (have %v)", ErrCorrupt, live[0]+i, live)
		}
	}
	l.segs = append([]int(nil), live...)

	// Only the most recent segment can carry a torn tail; verify it and
	// truncate the residue before any append lands behind it.
	active := filepath.Join(l.dir, segName(l.segs[len(l.segs)-1]))
	if data, err := os.ReadFile(active); err == nil {
		valid, err := scan(data, l.fr, nil)
		if err != nil {
			return fmt.Errorf("wal: segment %s: %w", filepath.Base(active), err)
		}
		if valid < len(data) {
			if err := os.Truncate(active, int64(valid)); err != nil {
				return fmt.Errorf("wal: truncating torn tail: %w", err)
			}
			l.stats.TornBytes += int64(len(data) - valid)
		}
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("wal: %w", err)
	}
	seg, err := OpenFile(active, FileOptions{Framing: l.fr, SyncEvery: l.o.SyncEvery})
	if err != nil {
		return err
	}
	l.seg = seg
	return nil
}

func (l *Log) hook(op string) error {
	if l.o.Hook == nil {
		return nil
	}
	return l.o.Hook(op, l.key)
}

// Append durably adds one record to the log.
func (l *Log) Append(payload []byte) error {
	if err := l.hook(OpAppend); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: log is closed")
	}
	if l.seg.Size() >= l.o.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	if err := l.seg.Append(payload); err != nil {
		return err
	}
	l.stats.Appends++
	return l.hook(OpAppendDone)
}

// rotateLocked seals the active segment and opens the next one.
func (l *Log) rotateLocked() error {
	if err := l.seg.Close(); err != nil {
		return err
	}
	next := l.segs[len(l.segs)-1] + 1
	seg, err := OpenFile(filepath.Join(l.dir, segName(next)), FileOptions{Framing: l.fr, SyncEvery: l.o.SyncEvery})
	if err != nil {
		return err
	}
	l.seg = seg
	l.segs = append(l.segs, next)
	l.stats.Rotations++
	return nil
}

// Sync flushes any fsync the SyncEvery policy is holding back.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	return l.seg.Sync()
}

// Recover hands the latest checkpoint snapshot (if any) to snap, then
// replays every record appended after it to replay, in order. Call it
// after Open and before the first Append. Sealed segments must be fully
// intact — a torn frame there is damage, not a crash artifact (only the
// active segment can be torn, and Open already truncated it).
func (l *Log) Recover(snap func(snapshot []byte) error, replay func(payload []byte) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.snap != nil && snap != nil {
		// Recover's callbacks run under l.mu by contract: recovery
		// happens before the first Append, and the callbacks rebuild
		// caller state without calling back into the log.
		//xyvet:ignore lockcheck
		if err := snap(l.snap); err != nil {
			return err
		}
	}
	for _, idx := range l.segs {
		if idx < l.bound {
			// Retained below the boundary: the snapshot already covers
			// these records; they stay on disk for layered readers, not
			// for replay.
			continue
		}
		data, err := os.ReadFile(filepath.Join(l.dir, segName(idx)))
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		valid, err := scan(data, l.fr, replay)
		if err != nil {
			return fmt.Errorf("wal: segment %s: %w", segName(idx), err)
		}
		if valid < len(data) {
			return fmt.Errorf("%w: torn frame inside sealed segment %s", ErrCorrupt, segName(idx))
		}
	}
	return nil
}

// Checkpoint installs a snapshot produced by write and compacts away
// every log record it covers. The snapshot must describe the state
// after every record appended so far — the caller serialises its own
// mutations against Checkpoint (every adopter holds its state locks
// across this call). The install is atomic: temp file → fsync → rename
// → parent-dir fsync; a crash at any point leaves either the old
// checkpoint with its segments or the new one, never a mix recovery
// cannot read.
func (l *Log) Checkpoint(write func(w io.Writer) error) error {
	return l.checkpoint(-1, write)
}

// CheckpointRetain is Checkpoint with a segment-retention bound: the
// snapshot still covers every record appended so far, but segments with
// index ≥ retain survive compaction and reopen. Recovery replays only
// records after the snapshot's boundary; the retained segments are data
// a layered reader (internal/stream) addresses directly. retain is
// clamped to [oldest live segment, boundary]; retain == boundary is
// plain Checkpoint.
func (l *Log) CheckpointRetain(retain int, write func(w io.Writer) error) error {
	return l.checkpoint(retain, write)
}

func (l *Log) checkpoint(retain int, write func(w io.Writer) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: log is closed")
	}
	// Seal the covered tail first: records appended after this rotation
	// land in the new active segment, which the checkpoint's boundary
	// leaves for replay.
	if err := l.rotateLocked(); err != nil {
		return err
	}
	boundary := l.segs[len(l.segs)-1]
	if retain < 0 || retain > boundary {
		retain = boundary
	}
	if retain < l.segs[0] {
		retain = l.segs[0]
	}

	var snap bytes.Buffer
	// The snapshot writer runs under l.mu so no append can land between
	// the boundary rotation and the snapshot; adopters hold their own
	// state locks across Checkpoint and must not call back into the log.
	//xyvet:ignore lockcheck
	if err := write(&snap); err != nil {
		return fmt.Errorf("wal: checkpoint snapshot: %w", err)
	}
	meta := checkpointMeta{Boundary: boundary}
	if retain < boundary {
		meta.Retain = retain
	}
	metaRaw, err := json.Marshal(meta)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	// Framing implementations are pure byte codecs (Binary, Lines);
	// AppendFrame never does I/O or takes locks.
	//xyvet:ignore lockcheck
	buf, err := l.fr.AppendFrame(nil, metaRaw)
	if err != nil {
		return err
	}
	//xyvet:ignore lockcheck
	if buf, err = l.fr.AppendFrame(buf, snap.Bytes()); err != nil {
		return err
	}
	tmp := filepath.Join(l.dir, checkpointTmp)
	if err := WriteFileSync(tmp, buf, 0o644); err != nil {
		return err
	}
	if err := l.hook(OpCheckpointTemp); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, checkpointName)); err != nil {
		return fmt.Errorf("wal: installing checkpoint: %w", err)
	}
	if err := l.hook(OpCheckpointInstall); err != nil {
		return err
	}
	if err := SyncDir(l.dir); err != nil {
		return err
	}
	// Compact: the checkpoint now rules, the covered segments below the
	// retention bound are dead weight. A crash mid-loop leaves leftovers
	// Open deletes next time.
	kept := l.segs[:0]
	deleted := 0
	for _, idx := range l.segs[:len(l.segs)-1] {
		if idx >= retain {
			kept = append(kept, idx)
			continue
		}
		if err := os.Remove(filepath.Join(l.dir, segName(idx))); err != nil {
			return fmt.Errorf("wal: compacting: %w", err)
		}
		deleted++
		if deleted == 1 {
			if err := l.hook(OpCheckpointCompact); err != nil {
				return err
			}
		}
	}
	kept = append(kept, l.segs[len(l.segs)-1])
	l.segs = kept
	l.bound = boundary
	l.retain = retain
	l.snap = append(l.snap[:0], snap.Bytes()...)
	l.stats.Checkpoints++
	return nil
}

// Segments returns the live segment indexes, ascending; the last one is
// the active (append) segment. Segments below the checkpoint boundary
// are retained history a CheckpointRetain preserved.
func (l *Log) Segments() []int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]int(nil), l.segs...)
}

// Stats snapshots the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Dir returns the log's root directory.
func (l *Log) Dir() string { return l.dir }

// Close syncs and releases the active segment. The log stays readable
// on a future Open.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	return l.seg.Close()
}
