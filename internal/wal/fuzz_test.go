package wal

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzWALRecords throws arbitrary bytes at the binary frame decoder.
// Whatever the input, the scan must terminate without panicking, never
// read past the buffer, and classify the tail as either intact frames,
// a torn final frame, or corruption — and on the frames it does accept,
// a re-encode must reproduce the bytes it consumed (the decoder accepts
// only what the encoder writes).
func FuzzWALRecords(f *testing.F) {
	seed := func(payloads ...[]byte) []byte {
		var buf []byte
		for _, p := range payloads {
			buf, _ = Binary{}.AppendFrame(buf, p)
		}
		return buf
	}
	f.Add([]byte{})
	f.Add(seed([]byte("hello")))
	f.Add(seed([]byte("a"), []byte(""), bytes.Repeat([]byte("b"), 300)))
	f.Add(seed([]byte("torn"))[:5])
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0, 1, 2, 3})

	fr := Binary{MaxFrame: 1 << 16}
	f.Fuzz(func(t *testing.T, data []byte) {
		var payloads [][]byte
		valid, err := scan(data, fr, func(p []byte) error {
			payloads = append(payloads, append([]byte(nil), p...))
			return nil
		})
		if valid < 0 || valid > len(data) {
			t.Fatalf("scan returned valid=%d for %d bytes", valid, len(data))
		}
		if err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("scan error is not ErrCorrupt: %v", err)
		}
		// Round-trip: re-encoding the accepted payloads must rebuild
		// exactly the prefix the scan consumed.
		var rebuilt []byte
		for _, p := range payloads {
			rebuilt, _ = fr.AppendFrame(rebuilt, p)
		}
		if !bytes.Equal(rebuilt, data[:valid]) {
			t.Fatalf("re-encode mismatch: %d accepted bytes, rebuilt %d", valid, len(rebuilt))
		}
	})
}
