// Package wal is the durability substrate of the system: append-only
// logs of framed records plus an atomically installed checkpoint, so
// every stateful module (subscription base, reporter streams, trigger
// schedules) survives a crash with the same recovery discipline. The
// paper leans on MySQL and Natix for this; here a small write-ahead log
// plays that role.
//
// The package has three layers:
//
//   - Framing: how records are delimited on disk. Binary frames carry a
//     length prefix and a CRC32C; Lines frames are newline-terminated
//     (the subscription journal's historical JSON-lines format).
//   - File: one append-only file of frames, held open for its lifetime,
//     with group-commit fsync (SyncEvery) and torn-tail truncation on
//     replay.
//   - Log: a directory of rotated segment files plus a checkpoint
//     installed via temp file → fsync → rename → parent-dir fsync, with
//     compaction of the segments a checkpoint covers.
//
// Torn-tail discipline, shared by every layer: a final frame cut short
// by a crash is discarded (and truncated away, so the next append starts
// on a clean boundary); a complete frame that fails its integrity check
// is damage, not a crash artifact, and recovery fails loudly.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// ErrCorrupt reports damage that cannot be a crash artifact: a complete
// frame whose CRC does not match, an implausible length prefix, or a
// torn tail anywhere but the end of the most recent file.
var ErrCorrupt = errors.New("wal: corrupt record")

// errTorn marks an incomplete final frame during a scan. It never
// escapes the package: scans convert it into truncation (active file)
// or ErrCorrupt (sealed file).
var errTorn = errors.New("wal: torn frame")

// Framing delimits records on disk.
type Framing interface {
	// AppendFrame appends the framed payload to dst and returns the
	// extended slice.
	AppendFrame(dst, payload []byte) ([]byte, error)
	// Next decodes the first frame of data, returning its payload and
	// the total frame size. An incomplete final frame returns errTorn;
	// a complete frame that fails validation returns an error wrapping
	// ErrCorrupt.
	Next(data []byte) (payload []byte, size int, err error)
}

// binaryHeader is the frame header size: 4-byte little-endian payload
// length followed by the 4-byte CRC32C (Castagnoli) of the payload.
const binaryHeader = 8

// DefaultMaxFrame bounds a binary frame's payload. A length prefix above
// it cannot come from this writer, so the scan reports corruption
// instead of waiting for gigabytes that will never arrive.
const DefaultMaxFrame = 16 << 20

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Binary frames records as length ‖ crc32c(payload) ‖ payload, both
// fixed fields little-endian. The zero value is ready to use.
type Binary struct {
	// MaxFrame caps the payload size; 0 means DefaultMaxFrame.
	MaxFrame int
}

func (b Binary) maxFrame() int {
	if b.MaxFrame > 0 {
		return b.MaxFrame
	}
	return DefaultMaxFrame
}

// AppendFrame frames payload onto dst.
func (b Binary) AppendFrame(dst, payload []byte) ([]byte, error) {
	if len(payload) > b.maxFrame() {
		return dst, fmt.Errorf("wal: record of %d bytes exceeds the %d-byte frame cap", len(payload), b.maxFrame())
	}
	var hdr [binaryHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...), nil
}

// Next decodes the first binary frame of data.
func (b Binary) Next(data []byte) ([]byte, int, error) {
	if len(data) < binaryHeader {
		return nil, 0, errTorn
	}
	n := int(binary.LittleEndian.Uint32(data[0:4]))
	if n > b.maxFrame() {
		return nil, 0, fmt.Errorf("%w: implausible frame length %d", ErrCorrupt, n)
	}
	if len(data) < binaryHeader+n {
		return nil, 0, errTorn
	}
	payload := data[binaryHeader : binaryHeader+n]
	if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(data[4:8]); got != want {
		return nil, 0, fmt.Errorf("%w: CRC mismatch (%08x != %08x)", ErrCorrupt, got, want)
	}
	return payload, binaryHeader + n, nil
}

// Lines frames records as newline-terminated text — the subscription
// journal's JSON-lines format. Payloads must not contain newlines;
// integrity of the payload itself is the caller's concern (a JSON line
// that does not parse is the caller's ErrCorrupt).
type Lines struct{}

// AppendFrame frames payload as one line.
func (Lines) AppendFrame(dst, payload []byte) ([]byte, error) {
	for _, c := range payload {
		if c == '\n' {
			return dst, errors.New("wal: line record contains a newline")
		}
	}
	dst = append(dst, payload...)
	return append(dst, '\n'), nil
}

// Next decodes the first line of data. A final line without its newline
// is a torn tail.
func (Lines) Next(data []byte) ([]byte, int, error) {
	for i, c := range data {
		if c == '\n' {
			return data[:i], i + 1, nil
		}
	}
	return nil, 0, errTorn
}

// scan walks data frame by frame, calling fn for each intact payload,
// and returns the number of bytes covered by intact frames. A torn tail
// ends the scan silently — valid tells the caller where to truncate.
// Corruption, and any error from fn, aborts the scan.
func scan(data []byte, fr Framing, fn func(payload []byte) error) (valid int, err error) {
	for valid < len(data) {
		payload, size, err := fr.Next(data[valid:])
		if errors.Is(err, errTorn) {
			return valid, nil
		}
		if err != nil {
			return valid, fmt.Errorf("%w (at byte %d)", err, valid)
		}
		if fn != nil {
			if err := fn(payload); err != nil {
				return valid, err
			}
		}
		valid += size
	}
	return valid, nil
}
