package reporter

import (
	"strings"
	"testing"
	"time"

	"xymon/internal/sublang"
	"xymon/internal/xmldom"
	"xymon/internal/xyquery"
)

type clock struct{ t time.Time }

func (c *clock) now() time.Time          { return c.t }
func (c *clock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newClock() *clock                   { return &clock{t: time.Date(2001, 5, 21, 0, 0, 0, 0, time.UTC)} }
func notif(sub, label string) Notification {
	return Notification{Subscription: sub, Label: label, Element: xmldom.Element(label)}
}

func countSpec(n int) *sublang.ReportSpec {
	return &sublang.ReportSpec{When: []sublang.ReportTerm{{Kind: sublang.TermCount, Count: n}}}
}

func collectReports(t *testing.T, opts ...Option) (*Reporter, *[]*Report) {
	t.Helper()
	var reports []*Report
	r := New(DeliveryFunc(func(rep *Report) error {
		reports = append(reports, rep)
		return nil
	}), opts...)
	return r, &reports
}

func TestCountCondition(t *testing.T) {
	c := newClock()
	r, reports := collectReports(t, WithClock(c.now))
	r.Register("S", countSpec(2)) // notifications.count > 2
	for i := 0; i < 2; i++ {
		r.Notify(notif("S", "Page"))
	}
	if len(*reports) != 0 {
		t.Fatalf("report fired early: %d", len(*reports))
	}
	r.Notify(notif("S", "Page"))
	if len(*reports) != 1 {
		t.Fatalf("reports = %d, want 1", len(*reports))
	}
	rep := (*reports)[0]
	if rep.Notifications != 3 || rep.Subscription != "S" {
		t.Errorf("report = %+v", rep)
	}
	if len(rep.Doc.Children) != 3 || rep.Doc.Tag != "Report" {
		t.Errorf("report doc = %s", rep.Doc.XML())
	}
	if r.Buffered("S") != 0 {
		t.Error("buffer must be emptied after a report")
	}
}

func TestTagCountCondition(t *testing.T) {
	c := newClock()
	r, reports := collectReports(t, WithClock(c.now))
	r.Register("S", &sublang.ReportSpec{
		When: []sublang.ReportTerm{{Kind: sublang.TermTagCount, Tag: "UpdatedPage", Count: 1}},
	})
	r.Notify(notif("S", "Other"))
	r.Notify(notif("S", "Other"))
	r.Notify(notif("S", "UpdatedPage"))
	if len(*reports) != 0 {
		t.Fatal("tag count should not have fired yet")
	}
	r.Notify(notif("S", "UpdatedPage"))
	if len(*reports) != 1 {
		t.Fatalf("reports = %d, want 1", len(*reports))
	}
	if (*reports)[0].Notifications != 4 {
		t.Errorf("report carries %d notifications, want 4 (all labels)", (*reports)[0].Notifications)
	}
}

func TestImmediateCondition(t *testing.T) {
	c := newClock()
	r, reports := collectReports(t, WithClock(c.now))
	r.Register("S", nil) // default immediate
	r.Notify(notif("S", "X"))
	r.Notify(notif("S", "X"))
	if len(*reports) != 2 {
		t.Errorf("reports = %d, want 2", len(*reports))
	}
}

func TestPeriodicCondition(t *testing.T) {
	c := newClock()
	r, reports := collectReports(t, WithClock(c.now))
	r.Register("S", &sublang.ReportSpec{
		When: []sublang.ReportTerm{{Kind: sublang.TermPeriodic, Freq: sublang.Weekly}},
	})
	r.Notify(notif("S", "X"))
	r.Tick()
	if len(*reports) != 0 {
		t.Fatal("periodic report fired before the period elapsed")
	}
	c.advance(8 * 24 * time.Hour)
	r.Tick()
	if len(*reports) != 1 {
		t.Fatalf("reports = %d, want 1", len(*reports))
	}
	// Empty buffer: next period passes without a report.
	c.advance(8 * 24 * time.Hour)
	r.Tick()
	if len(*reports) != 1 {
		t.Errorf("empty periodic report was sent")
	}
}

func TestDisjunction(t *testing.T) {
	c := newClock()
	r, reports := collectReports(t, WithClock(c.now))
	r.Register("S", &sublang.ReportSpec{
		When: []sublang.ReportTerm{
			{Kind: sublang.TermCount, Count: 99},
			{Kind: sublang.TermTagCount, Tag: "Rare", Count: 0},
		},
	})
	r.Notify(notif("S", "Common"))
	if len(*reports) != 0 {
		t.Fatal("neither term holds yet")
	}
	r.Notify(notif("S", "Rare"))
	if len(*reports) != 1 {
		t.Errorf("reports = %d, want 1 (second disjunct)", len(*reports))
	}
}

func TestAtMostCountStopsRegistering(t *testing.T) {
	c := newClock()
	r, reports := collectReports(t, WithClock(c.now))
	r.Register("S", &sublang.ReportSpec{
		When:        []sublang.ReportTerm{{Kind: sublang.TermPeriodic, Freq: sublang.Daily}},
		AtMostCount: 3,
	})
	for i := 0; i < 10; i++ {
		r.Notify(notif("S", "X"))
	}
	if got := r.Buffered("S"); got != 3 {
		t.Errorf("buffered = %d, want 3 (atmost)", got)
	}
	c.advance(25 * time.Hour)
	r.Tick()
	if len(*reports) != 1 || (*reports)[0].Notifications != 3 {
		t.Fatalf("reports = %v", *reports)
	}
	// After the report, registration resumes.
	r.Notify(notif("S", "X"))
	if got := r.Buffered("S"); got != 1 {
		t.Errorf("buffered after report = %d, want 1", got)
	}
}

func TestAtMostFrequencyRateLimits(t *testing.T) {
	c := newClock()
	r, reports := collectReports(t, WithClock(c.now))
	r.Register("S", &sublang.ReportSpec{
		When:       []sublang.ReportTerm{{Kind: sublang.TermImmediate}},
		AtMostFreq: sublang.Weekly,
	})
	r.Notify(notif("S", "X"))
	if len(*reports) != 1 {
		t.Fatalf("first immediate report should pass, got %d", len(*reports))
	}
	r.Notify(notif("S", "X"))
	r.Notify(notif("S", "X"))
	if len(*reports) != 1 {
		t.Fatalf("rate limit breached: %d reports", len(*reports))
	}
	// The condition stays pending; once the window passes, Tick emits.
	c.advance(8 * 24 * time.Hour)
	r.Tick()
	if len(*reports) != 2 {
		t.Fatalf("pending report not emitted after window: %d", len(*reports))
	}
	if (*reports)[1].Notifications != 2 {
		t.Errorf("second report carries %d notifications, want 2", (*reports)[1].Notifications)
	}
}

func TestReportQueryPostProcessing(t *testing.T) {
	c := newClock()
	r, reports := collectReports(t, WithClock(c.now))
	spec := countSpec(0)
	q, err := xyquery.Parse(`select p/url from Report/UpdatedPage p`)
	if err != nil {
		t.Fatalf("parse query: %v", err)
	}
	spec.Query = q
	r.Register("S", spec)
	n := notif("S", "UpdatedPage")
	n.Element.AppendChild(xmldom.Element("url", xmldom.Text("http://x/")))
	r.Notify(n)
	if len(*reports) != 1 {
		t.Fatalf("reports = %d", len(*reports))
	}
	out := (*reports)[0].Doc.XML()
	if !strings.Contains(out, "<url>http://x/</url>") || strings.Contains(out, "UpdatedPage") {
		t.Errorf("report query not applied: %s", out)
	}
}

func TestFollowVirtualSubscription(t *testing.T) {
	c := newClock()
	r, reports := collectReports(t, WithClock(c.now))
	r.Register("Owner", countSpec(0))
	if err := r.Follow("Virtual", "Owner"); err != nil {
		t.Fatalf("Follow: %v", err)
	}
	if err := r.Follow("V2", "Missing"); err == nil {
		t.Error("Follow of unknown target should fail")
	}
	r.Notify(notif("Owner", "X"))
	if len(*reports) != 2 {
		t.Fatalf("reports = %d, want 2 (owner + virtual)", len(*reports))
	}
	subs := map[string]bool{}
	for _, rep := range *reports {
		subs[rep.Subscription] = true
	}
	if !subs["Owner"] || !subs["Virtual"] {
		t.Errorf("recipients = %v", subs)
	}
}

func TestArchive(t *testing.T) {
	c := newClock()
	r, _ := collectReports(t, WithClock(c.now))
	r.Register("S", &sublang.ReportSpec{
		When:    []sublang.ReportTerm{{Kind: sublang.TermImmediate}},
		Archive: sublang.Monthly,
	})
	r.Notify(notif("S", "X"))
	if got := len(r.Archived("S")); got != 1 {
		t.Fatalf("archived = %d, want 1", got)
	}
	c.advance(40 * 24 * time.Hour)
	r.Tick()
	if got := len(r.Archived("S")); got != 0 {
		t.Errorf("archived after expiry = %d, want 0", got)
	}
}

func TestUnregister(t *testing.T) {
	c := newClock()
	r, reports := collectReports(t, WithClock(c.now))
	r.Register("S", countSpec(0))
	r.Unregister("S")
	r.Notify(notif("S", "X"))
	if len(*reports) != 0 {
		t.Error("unregistered subscription must not report")
	}
	// Unregistering a follower must detach it.
	r.Register("T", countSpec(0))
	r.Follow("F", "T")
	r.Unregister("F")
	r.Notify(notif("T", "X"))
	if len(*reports) != 1 {
		t.Errorf("reports = %d, want 1 (follower detached)", len(*reports))
	}
}

func TestEmailSinkCapacity(t *testing.T) {
	c := newClock()
	sink := NewEmailSink(2, true, c.now)
	r := New(sink, WithClock(c.now))
	r.Register("S", countSpec(0))
	for i := 0; i < 4; i++ {
		r.Notify(notif("S", "X"))
	}
	total, rejected := sink.Counts()
	if total != 2 || rejected != 2 {
		t.Errorf("total=%d rejected=%d, want 2/2", total, rejected)
	}
	delivered, failed := r.Stats()
	if delivered != 2 || failed != 2 {
		t.Errorf("delivered=%d failed=%d", delivered, failed)
	}
	// Next day the capacity resets.
	c.advance(25 * time.Hour)
	r.Notify(notif("S", "X"))
	if total, _ := sink.Counts(); total != 3 {
		t.Errorf("total after reset = %d, want 3", total)
	}
	if msgs := sink.Sent(); len(msgs) != 3 || !strings.Contains(msgs[0].Subject, "report for S") {
		t.Errorf("sent = %v", msgs)
	}
}

func TestNotifyBatch(t *testing.T) {
	c := newClock()
	r, reports := collectReports(t, WithClock(c.now))
	// Many subscriptions so the batch spans several stripes.
	subs := []string{"A", "B", "C", "D", "E", "F", "G", "H"}
	for _, s := range subs {
		r.Register(s, nil) // immediate
	}
	var batch []Notification
	for _, s := range subs {
		batch = append(batch, notif(s, "Page"))
	}
	r.NotifyBatch(batch)
	if len(*reports) != len(subs) {
		t.Fatalf("reports = %d, want %d", len(*reports), len(subs))
	}
	got := make(map[string]bool)
	for _, rep := range *reports {
		got[rep.Subscription] = true
	}
	for _, s := range subs {
		if !got[s] {
			t.Errorf("no report for %q", s)
		}
	}
}

func TestNotifyBatchCountFiresMidBatch(t *testing.T) {
	c := newClock()
	r, reports := collectReports(t, WithClock(c.now))
	r.Register("S", countSpec(1)) // fires at the 2nd notification
	r.NotifyBatch([]Notification{
		notif("S", "X"), notif("S", "X"), notif("S", "X"),
	})
	// The 2nd notification fires a 2-element report; the 3rd stays buffered.
	if len(*reports) != 1 || (*reports)[0].Notifications != 2 {
		t.Fatalf("reports = %v", *reports)
	}
	if r.Buffered("S") != 1 {
		t.Errorf("buffered = %d, want 1", r.Buffered("S"))
	}
}

func TestNotifyBatchUnknownAndEmpty(t *testing.T) {
	r, reports := collectReports(t)
	r.NotifyBatch(nil)
	r.NotifyBatch([]Notification{notif("ghost", "X")})
	if len(*reports) != 0 {
		t.Fatalf("reports = %d, want 0", len(*reports))
	}
}
