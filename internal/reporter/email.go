package reporter

import (
	"fmt"
	"sync"
	"time"
)

// Email is one simulated outgoing message.
type Email struct {
	To      string
	Subject string
	Body    string
	Time    time.Time
}

// EmailSink simulates the paper's sendmail-based delivery. The paper notes
// the Reporter sustains hundreds of thousands of emails per day on one PC,
// bounded by the sendmail daemon; the sink models that bound with an
// optional per-day capacity, after which deliveries fail, so the
// experiment harness can measure the same saturation point.
type EmailSink struct {
	mu        sync.Mutex
	capacity  int // emails per day; 0 = unlimited
	clock     func() time.Time
	dayStart  time.Time
	sentToday int
	sent      []Email
	keep      bool
	total     uint64
	rejected  uint64
}

// NewEmailSink returns a sink with the given per-day capacity (0 for
// unlimited). When keep is true every email is retained for inspection —
// tests only; the flood benches leave it false.
func NewEmailSink(capacityPerDay int, keep bool, clock func() time.Time) *EmailSink {
	if clock == nil {
		clock = time.Now
	}
	return &EmailSink{capacity: capacityPerDay, keep: keep, clock: clock}
}

// Deliver formats and "sends" the report by email.
func (s *EmailSink) Deliver(rep *Report) error {
	now := s.clock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dayStart.IsZero() || now.Sub(s.dayStart) >= 24*time.Hour {
		s.dayStart = now
		s.sentToday = 0
	}
	if s.capacity > 0 && s.sentToday >= s.capacity {
		s.rejected++
		return fmt.Errorf("email: daily capacity %d exhausted", s.capacity)
	}
	s.sentToday++
	s.total++
	if s.keep {
		s.sent = append(s.sent, Email{
			To:      rep.Subscription,
			Subject: fmt.Sprintf("[Xyleme] report for %s (%d notifications)", rep.Subscription, rep.Notifications),
			Body:    rep.Doc.XML(),
			Time:    now,
		})
	}
	return nil
}

// Sent returns retained emails (only when keep was set).
func (s *EmailSink) Sent() []Email {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Email(nil), s.sent...)
}

// Counts returns total accepted and rejected deliveries.
func (s *EmailSink) Counts() (total, rejected uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total, s.rejected
}
