package reporter

import (
	"sync"
	"time"
)

// The paper's Reporter hands reports to sendmail and moves on; a
// saturated or crashed daemon silently eats them. The retry queue keeps
// every failed report, re-attempts it on the Reporter's own timer with
// capped exponential backoff, and — once the attempt budget is spent —
// parks it on a dead-letter queue with the final error, so an operator
// can tell "delivered late" from "lost, and here is why".

// retryEntry is one report waiting for redelivery.
type retryEntry struct {
	rep      *Report
	attempts int // failed attempts so far
	nextTry  time.Time
	lastErr  error
}

// DeadLetter is a report that exhausted its delivery attempts.
type DeadLetter struct {
	Report   *Report
	Attempts int
	Reason   string // the final delivery error
	Time     time.Time
}

// retryState is the Reporter's redelivery bookkeeping. Its lock is
// independent of the notification stripes and is never held across a
// Deliver call.
type retryState struct {
	mu          sync.Mutex
	queue       []*retryEntry
	dead        []DeadLetter
	maxAttempts int // total attempts per report; 0 disables retrying
	maxDead     int // dead-letter cap; <= 0 is unbounded
	base        time.Duration
	max         time.Duration
	// outstanding tracks reports journaled as fired whose delivery
	// outcome has not landed yet; the WAL checkpoint snapshots it and
	// recovery turns it back into retry-queue entries (see durable.go).
	outstanding map[uint64]walRecord
}

// DefaultDeadLetterCap bounds the dead-letter queue: a sink that stays
// down for days must not grow it without limit. Oldest letters are
// evicted first; WithDeadLetterCap changes the bound.
const DefaultDeadLetterCap = 1024

// WithDeadLetterCap bounds the dead-letter queue to n letters, evicting
// oldest-first past the cap (n <= 0 removes the bound). Evictions are
// counted in RetryStats.
func WithDeadLetterCap(n int) Option {
	return func(r *Reporter) { r.retry.maxDead = n }
}

// evictDeadLocked enforces the dead-letter cap. Caller holds rt.mu.
func (r *Reporter) evictDeadLocked() {
	rt := &r.retry
	if rt.maxDead <= 0 || len(rt.dead) <= rt.maxDead {
		return
	}
	n := len(rt.dead) - rt.maxDead
	copy(rt.dead, rt.dead[n:])
	for i := len(rt.dead) - n; i < len(rt.dead); i++ {
		rt.dead[i] = DeadLetter{} // release the evicted reports
	}
	rt.dead = rt.dead[:len(rt.dead)-n]
	r.evicted.Add(uint64(n))
}

// WithRetryPolicy sets the delivery retry budget: maxAttempts total
// attempts per report (0 disables retrying entirely — a failure is only
// counted, the pre-retry behaviour), with the delay between attempts
// growing from base, doubling, capped at max. The default is 5 attempts,
// 1m base, 1h cap.
func WithRetryPolicy(maxAttempts int, base, max time.Duration) Option {
	return func(r *Reporter) {
		r.retry.maxAttempts = maxAttempts
		if base > 0 {
			r.retry.base = base
		}
		if max > 0 {
			r.retry.max = max
		}
	}
}

// retryDelay is the backoff before attempt attempts+1: base·2ⁿ⁻¹ capped
// at max.
func retryDelay(base, max time.Duration, attempts int) time.Duration {
	d := base
	for i := 1; i < attempts && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return d
}

// noteFailure routes a failed delivery into the retry queue, or the
// dead-letter queue once the attempt budget is spent. Called with no
// other Reporter lock held.
func (r *Reporter) noteFailure(rep *Report, attempts int, err error, now time.Time) {
	rt := &r.retry
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.maxAttempts == 0 {
		// Retrying disabled: the failure is counted and the report
		// intentionally dropped — resolve it so recovery does not
		// resurrect what this configuration chose to lose.
		r.resolveLocked(rep, "lost", err.Error(), attempts, now)
		return
	}
	if attempts >= rt.maxAttempts {
		rt.dead = append(rt.dead, DeadLetter{
			Report:   rep,
			Attempts: attempts,
			Reason:   err.Error(),
			Time:     now,
		})
		r.deadLettered.Add(1)
		r.resolveLocked(rep, "dead", err.Error(), attempts, now)
		r.evictDeadLocked()
		return
	}
	rt.queue = append(rt.queue, &retryEntry{
		rep:      rep,
		attempts: attempts,
		nextTry:  now.Add(retryDelay(rt.base, rt.max, attempts)),
		lastErr:  err,
	})
}

// drainRetries re-attempts every queued report whose backoff has elapsed.
// Deliver runs with no lock held; failures re-enter the queue (or the
// dead-letter queue) through noteFailure.
func (r *Reporter) drainRetries(now time.Time) {
	rt := &r.retry
	rt.mu.Lock()
	var due []*retryEntry
	keep := rt.queue[:0]
	for _, e := range rt.queue {
		if e.nextTry.After(now) {
			keep = append(keep, e)
		} else {
			due = append(due, e)
		}
	}
	rt.queue = keep
	rt.mu.Unlock()
	// Reports recovered from the WAL may have crashed between firing and
	// their stream publish; catch them up before redelivery so stream
	// consumers never miss what the push path is about to ack.
	unstreamed := due[:0:0]
	for _, e := range due {
		if !e.rep.streamed {
			unstreamed = append(unstreamed, e)
		}
	}
	if len(unstreamed) > 0 {
		reps := make([]*Report, len(unstreamed))
		for i, e := range unstreamed {
			reps[i] = e.rep
		}
		r.publish(reps)
	}
	for _, e := range due {
		r.retried.Add(1)
		if err := r.delivery.Deliver(e.rep); err != nil {
			r.failed.Add(1)
			r.noteFailure(e.rep, e.attempts+1, err, now)
		} else {
			r.delivered.Add(1)
			r.noteDelivered(e.rep)
		}
	}
}

// RetryPending returns the number of reports waiting for redelivery.
func (r *Reporter) RetryPending() int {
	r.retry.mu.Lock()
	defer r.retry.mu.Unlock()
	return len(r.retry.queue)
}

// DeadLetters returns a copy of the dead-letter queue.
func (r *Reporter) DeadLetters() []DeadLetter {
	r.retry.mu.Lock()
	defer r.retry.mu.Unlock()
	return append([]DeadLetter(nil), r.retry.dead...)
}

// ID returns the dead letter's journal id — the handle Redrive takes.
// It is 0 when the Reporter runs without a WAL (redrive everything with
// no ids in that configuration).
func (d DeadLetter) ID() uint64 { return d.Report.walID }

// Redrive moves dead letters back onto the retry queue with a fresh
// attempt budget — the operator's "the sink is fixed, try again". With
// no ids every dead letter is redriven; otherwise only those whose
// ID() matches. The move is journaled, so a redrive survives a crash:
// recovery rebuilds the report as outstanding, not dead. Returns the
// number of letters moved; they deliver on the next Tick.
func (r *Reporter) Redrive(ids ...uint64) int {
	want := make(map[uint64]bool, len(ids))
	for _, id := range ids {
		want[id] = true
	}
	now := r.clock()
	rt := &r.retry
	rt.mu.Lock()
	defer rt.mu.Unlock()
	keep := rt.dead[:0]
	moved := 0
	for _, d := range rt.dead {
		if len(ids) > 0 && !want[d.Report.walID] {
			keep = append(keep, d)
			continue
		}
		moved++
		if r.wal != nil && d.Report.walID != 0 {
			// Journal the redrive, and track the report as outstanding
			// again so a checkpoint taken before its redelivery outcome
			// snapshots it into the retry queue, not the dead queue.
			r.journal(walRecord{T: "redrive", ID: d.Report.walID, Time: now})
			rec := walRecord{
				T: "fired", ID: d.Report.walID, Sub: d.Report.Subscription,
				Time: d.Report.Time, Count: d.Report.Notifications,
			}
			if d.Report.Doc != nil {
				rec.XML = d.Report.Doc.XML()
			}
			rt.outstanding[d.Report.walID] = rec
		}
		rt.queue = append(rt.queue, &retryEntry{rep: d.Report, nextTry: now})
	}
	for i := len(keep); i < len(rt.dead); i++ {
		rt.dead[i] = DeadLetter{}
	}
	rt.dead = keep
	r.redriven.Add(uint64(moved))
	return moved
}

// RetryStats counts the Reporter's redelivery activity.
type RetryStats struct {
	// Retried counts redelivery attempts.
	Retried uint64
	// DeadLettered counts reports that exhausted their attempt budget.
	DeadLettered uint64
	// Evicted counts dead letters dropped oldest-first by the cap.
	Evicted uint64
	// Redriven counts dead letters moved back onto the retry queue.
	Redriven uint64
}

// RetryStats snapshots the redelivery counters.
func (r *Reporter) RetryStats() RetryStats {
	return RetryStats{
		Retried:      r.retried.Load(),
		DeadLettered: r.deadLettered.Load(),
		Evicted:      r.evicted.Load(),
		Redriven:     r.redriven.Load(),
	}
}
