package reporter

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"xymon/internal/sublang"
	"xymon/internal/wal"
	"xymon/internal/xmldom"
)

func contains(s, sub string) bool { return strings.Contains(s, sub) }

// durableRig builds a WAL-backed Reporter on a virtual clock.
func durableRig(t *testing.T, dir string, sink Delivery, opts ...Option) (*Reporter, *time.Time) {
	t.Helper()
	l, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	now := time.Date(2001, 5, 21, 9, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }
	r := New(sink, append([]Option{WithClock(clock), WithWAL(l)}, opts...)...)
	return r, &now
}

func elem(text string) *xmldom.Node {
	e := xmldom.Element("N")
	e.AppendChild(xmldom.Text(text))
	return e
}

// TestDurableBufferSurvivesRestart pins the tentpole's reporter layer:
// notifications gathered but not yet reported come back after a restart
// and the next Tick reports them.
func TestDurableBufferSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	sink1 := &flakySink{}
	r1, _ := durableRig(t, dir, sink1)
	// Count threshold of 3: two notifications stay buffered.
	r1.Register("S", reportEvery(3))
	r1.Notify(Notification{Subscription: "S", Label: "l", Element: elem("one")})
	r1.Notify(Notification{Subscription: "S", Label: "l", Element: elem("two")})
	if len(sink1.sent) != 0 || r1.Buffered("S") != 2 {
		t.Fatalf("premature report: sent=%d buffered=%d", len(sink1.sent), r1.Buffered("S"))
	}

	// Restart: fresh Reporter over the same WAL directory.
	sink2 := &flakySink{}
	r2, _ := durableRig(t, dir, sink2)
	r2.Register("S", reportEvery(3))
	if err := r2.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if got := r2.Buffered("S"); got != 2 {
		t.Fatalf("recovered buffer = %d notifications, want 2", got)
	}
	// The recovered buffer is pending: the next Tick reports it rather
	// than holding the notifications hostage to a re-derived condition.
	r2.Tick()
	if len(sink2.sent) != 1 || sink2.sent[0].Notifications != 2 {
		t.Fatalf("after recovery Tick: %+v", sink2.sent)
	}
	doc := sink2.sent[0].Doc.XML()
	for _, want := range []string{"one", "two"} {
		if !contains(doc, want) {
			t.Errorf("recovered report %q lacks %q", doc, want)
		}
	}
}

// reportEvery builds a count-threshold report spec: fires once the
// buffer exceeds n-1 notifications.
func reportEvery(n int) *sublang.ReportSpec {
	return &sublang.ReportSpec{When: []sublang.ReportTerm{{Kind: sublang.TermCount, Count: n - 1}}}
}

// TestDurableOutstandingRedelivers pins at-least-once across a restart:
// a report whose delivery never got acknowledged re-enters the retry
// queue and is redelivered by the recovered Reporter.
func TestDurableOutstandingRedelivers(t *testing.T) {
	dir := t.TempDir()
	// The first incarnation's sink always fails: the report stays
	// outstanding (fired, never done).
	sink1 := &flakySink{failN: 1 << 30}
	r1, _ := durableRig(t, dir, sink1)
	r1.Register("S", nil) // immediate
	r1.Notify(Notification{Subscription: "S", Label: "l", Element: elem("payload")})
	if sink1.calls != 1 || len(sink1.sent) != 0 {
		t.Fatalf("first incarnation: calls=%d sent=%d", sink1.calls, len(sink1.sent))
	}

	sink2 := &flakySink{}
	r2, now2 := durableRig(t, dir, sink2)
	r2.Register("S", nil)
	if err := r2.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if got := r2.RetryPending(); got != 1 {
		t.Fatalf("recovered retry queue = %d entries, want 1", got)
	}
	*now2 = now2.Add(time.Second)
	r2.Tick()
	if len(sink2.sent) != 1 || !contains(sink2.sent[0].Doc.XML(), "payload") {
		t.Fatalf("recovered redelivery: %+v", sink2.sent)
	}
	if got := r2.RetryPending(); got != 0 {
		t.Errorf("retry queue after redelivery = %d", got)
	}

	// Third incarnation: the done record resolved the report, nothing to
	// redeliver — at-least-once does not mean redeliver forever.
	sink3 := &flakySink{}
	r3, _ := durableRig(t, dir, sink3)
	r3.Register("S", nil)
	if err := r3.Recover(); err != nil {
		t.Fatalf("third Recover: %v", err)
	}
	if got := r3.RetryPending(); got != 0 {
		t.Errorf("resolved report resurrected: %d pending", got)
	}
}

// TestDurableCheckpointCompacts drives Checkpoint: state survives via
// the snapshot, and recovery works identically from the compacted log.
func TestDurableCheckpointCompacts(t *testing.T) {
	dir := t.TempDir()
	sink1 := &flakySink{failN: 1 << 30}
	r1, _ := durableRig(t, dir, sink1)
	r1.Register("S", nil)
	r1.Register("Buf", reportEvery(5))
	r1.Notify(Notification{Subscription: "S", Label: "l", Element: elem("out")})
	r1.Notify(Notification{Subscription: "Buf", Label: "l", Element: elem("kept")})
	if err := r1.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	r1.Notify(Notification{Subscription: "Buf", Label: "l", Element: elem("tail")})

	sink2 := &flakySink{}
	r2, now2 := durableRig(t, dir, sink2)
	r2.Register("S", nil)
	r2.Register("Buf", reportEvery(5))
	if err := r2.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if got := r2.Buffered("Buf"); got != 2 {
		t.Fatalf("recovered buffer = %d, want 2 (snapshot + tail)", got)
	}
	if got := r2.RetryPending(); got != 1 {
		t.Fatalf("recovered outstanding = %d, want 1", got)
	}
	*now2 = now2.Add(time.Second)
	r2.Tick()
	if len(sink2.sent) != 2 { // redelivered "out" + pending Buf report
		t.Fatalf("after recovery Tick: %d deliveries", len(sink2.sent))
	}
}

// TestDeadLetterCapUnderFaultStorm pins the satellite: the dead-letter
// queue holds its cap under a storm of failing deliveries, evicting
// oldest-first and counting what it dropped.
func TestDeadLetterCapUnderFaultStorm(t *testing.T) {
	sink := &flakySink{failN: 1 << 30}
	r, now := retryRig(sink, WithRetryPolicy(1, time.Second, time.Second), WithDeadLetterCap(4))
	for i := 0; i < 10; i++ {
		r.Register(fmt.Sprintf("S%d", i), nil)
	}
	for i := 0; i < 10; i++ {
		// maxAttempts 1: every failed delivery dead-letters immediately.
		r.Notify(Notification{Subscription: fmt.Sprintf("S%d", i), Label: "l", Element: elem("x")})
		*now = now.Add(time.Second)
		r.Tick()
	}
	dead := r.DeadLetters()
	if len(dead) != 4 {
		t.Fatalf("dead letters = %d, want the cap of 4", len(dead))
	}
	// Oldest-first eviction: the survivors are the newest four.
	for i, dl := range dead {
		if want := fmt.Sprintf("S%d", 6+i); dl.Report.Subscription != want {
			t.Errorf("dead[%d] = %s, want %s", i, dl.Report.Subscription, want)
		}
	}
	st := r.RetryStats()
	if st.Evicted != 6 || st.DeadLettered != 10 {
		t.Errorf("RetryStats = %+v, want Evicted=6 DeadLettered=10", st)
	}
}

// TestDurableDeadLettersSurviveRestart: the forensic trail survives too.
func TestDurableDeadLettersSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	sink1 := &flakySink{failN: 1 << 30}
	r1, now1 := durableRig(t, dir, sink1, WithRetryPolicy(1, time.Second, time.Second))
	r1.Register("S", nil)
	r1.Notify(Notification{Subscription: "S", Label: "l", Element: elem("gone")})
	*now1 = now1.Add(time.Second)
	r1.Tick()
	if len(r1.DeadLetters()) != 1 {
		t.Fatalf("dead letters before restart = %d", len(r1.DeadLetters()))
	}

	r2, _ := durableRig(t, dir, &flakySink{})
	r2.Register("S", nil)
	if err := r2.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	dead := r2.DeadLetters()
	if len(dead) != 1 || dead[0].Report.Subscription != "S" || dead[0].Attempts != 1 {
		t.Fatalf("recovered dead letters = %+v", dead)
	}
	if dead[0].Report.Doc == nil || !contains(dead[0].Report.Doc.XML(), "gone") {
		t.Errorf("recovered dead letter lost its payload")
	}
	// The dead report must not re-enter the retry queue.
	if got := r2.RetryPending(); got != 0 {
		t.Errorf("dead report resurrected into retry queue: %d", got)
	}
}

// TestRecoverTwiceIsIdempotentReporter: recovering the same WAL twice
// must not duplicate buffers or retry entries (double restart shape).
func TestRecoverTwiceIsIdempotentReporter(t *testing.T) {
	dir := t.TempDir()
	sink1 := &flakySink{failN: 1 << 30}
	r1, _ := durableRig(t, dir, sink1)
	r1.Register("S", nil)
	r1.Register("Buf", reportEvery(5))
	r1.Notify(Notification{Subscription: "S", Label: "l", Element: elem("x")})
	r1.Notify(Notification{Subscription: "Buf", Label: "l", Element: elem("y")})

	r2, _ := durableRig(t, dir, &flakySink{})
	r2.Register("S", nil)
	r2.Register("Buf", reportEvery(5))
	if err := r2.Recover(); err != nil {
		t.Fatalf("first Recover: %v", err)
	}
	if err := r2.Recover(); err != nil {
		t.Fatalf("second Recover: %v", err)
	}
	if got := r2.Buffered("Buf"); got != 1 {
		t.Errorf("buffer after double recovery = %d, want 1", got)
	}
	// The outstanding map deduplicates by id; the queue may briefly hold
	// a duplicate entry, which at-least-once delivery permits.
	if got := r2.RetryPending(); got < 1 {
		t.Errorf("retry queue after double recovery = %d, want >= 1", got)
	}
}
