// Package reporter implements the Reporter and Xyleme Reporter of the
// architecture (Section 3): it buffers the notifications of each
// subscription, evaluates the report conditions of the subscription's when
// clause (count, per-label count, periodic, immediate, disjunctions),
// applies the limiting clauses (atmost count / atmost frequency), renders
// the buffered notifications as an XML report — post-processed by the
// report query when one is given — and hands the report to a delivery
// sink (email in the paper; pluggable here). Generated reports can be
// archived for a configurable period (the archive clause).
package reporter

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"xymon/internal/stream"
	"xymon/internal/sublang"
	"xymon/internal/wal"
	"xymon/internal/xmldom"
)

// Notification is one entry of a subscription's notification stream: the
// payload element produced by a monitoring query or a continuous query.
type Notification struct {
	Subscription string
	Label        string // monitoring query label or continuous query name
	Element      *xmldom.Node
	Time         time.Time
}

// Report is a generated subscription report.
type Report struct {
	Subscription  string
	Doc           *xmldom.Node
	Time          time.Time
	Notifications int

	// walID identifies the report in the durability journal; 0 when the
	// Reporter runs without a WAL.
	walID uint64
	// streamed marks the report as already published to the notification
	// change-stream, so retries and recovered redeliveries publish it at
	// most once more — duplicates across a crash are the at-least-once
	// contract, duplicates per retry attempt would just be noise.
	streamed bool
}

// Delivery receives finished reports. The paper emails them; the default
// sink here simulates an email spool.
type Delivery interface {
	Deliver(rep *Report) error
}

// DeliveryFunc adapts a function to the Delivery interface.
type DeliveryFunc func(rep *Report) error

// Deliver calls f.
func (f DeliveryFunc) Deliver(rep *Report) error { return f(rep) }

// subState is the per-subscription reporting state.
type subState struct {
	spec       *sublang.ReportSpec
	buffer     []Notification
	labelCount map[string]int
	dropped    int // notifications discarded by atmost N
	lastReport time.Time
	hasReport  bool // a report was generated at least once
	pending    bool // condition fired while rate-limited
	followers  []string
	start      time.Time
}

// stripeCount is the number of lock stripes the subscription state is
// spread over. 16 stripes keep the probability of two concurrent flow
// workers colliding on one lock low without bloating the structure.
const stripeCount = 16

// stripe is one shard of the Reporter: a mutex and the subscriptions
// hashed onto it. Striping the single reporter lock is what lets the
// Reporter absorb the notification output of many parallel document
// workers (the paper's 2.4M notifications/day figure is a lower bound).
type stripe struct {
	mu   sync.Mutex
	subs map[string]*subState
}

// Reporter buffers notifications and produces reports. Safe for
// concurrent use; per-subscription state is striped by subscription name.
type Reporter struct {
	stripes  [stripeCount]stripe
	delivery Delivery
	clock    func() time.Time

	// The archive is small and cold (report generation only), so it keeps
	// a single dedicated lock instead of joining the striping.
	archMu  sync.Mutex
	archive []archivedReport

	// retry holds failed deliveries between redelivery attempts; its
	// queue drains on Tick.
	retry retryState

	// wal, when set, journals durable state (see durable.go); nextID
	// numbers fired reports in it.
	wal       *wal.Log
	nextID    atomic.Uint64
	walErrors atomic.Uint64

	// stream, when set, receives every delivered notification batch —
	// the pull side of delivery (see publish).
	stream *stream.Log

	delivered       atomic.Uint64
	failed          atomic.Uint64
	retried         atomic.Uint64
	deadLettered    atomic.Uint64
	evicted         atomic.Uint64
	redriven        atomic.Uint64
	streamPublished atomic.Uint64
	streamErrors    atomic.Uint64
}

type archivedReport struct {
	rep    *Report
	expiry time.Time
}

// Option configures a Reporter.
type Option func(*Reporter)

// WithClock substitutes the time source.
func WithClock(clock func() time.Time) Option {
	return func(r *Reporter) { r.clock = clock }
}

// New returns a Reporter delivering to sink (nil discards reports).
func New(sink Delivery, opts ...Option) *Reporter {
	r := &Reporter{
		delivery: sink,
		clock:    time.Now,
		retry: retryState{
			maxAttempts: 5,
			base:        time.Minute,
			max:         time.Hour,
			maxDead:     DefaultDeadLetterCap,
			outstanding: make(map[uint64]walRecord),
		},
	}
	for i := range r.stripes {
		r.stripes[i].subs = make(map[string]*subState)
	}
	for _, o := range opts {
		o(r)
	}
	if r.delivery == nil {
		r.delivery = DeliveryFunc(func(*Report) error { return nil })
	}
	return r
}

// stripeIndex hashes a subscription name onto its stripe (FNV-1a).
func stripeIndex(sub string) int {
	return int(xmldom.HashFold(xmldom.HashSeed(), sub) % stripeCount)
}

func (r *Reporter) stripeFor(sub string) *stripe {
	return &r.stripes[stripeIndex(sub)]
}

// Register creates reporting state for a subscription. A nil spec installs
// an immediate-report default.
func (r *Reporter) Register(sub string, spec *sublang.ReportSpec) {
	if spec == nil {
		spec = &sublang.ReportSpec{When: []sublang.ReportTerm{{Kind: sublang.TermImmediate}}}
	}
	now := r.clock()
	s := r.stripeFor(sub)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.subs[sub] = &subState{
		spec:       spec,
		labelCount: make(map[string]int),
		start:      now,
		lastReport: now,
	}
}

// Unregister drops a subscription's reporting state and detaches it from
// any subscription it follows. Follower links may live on any stripe, so
// the scan takes each stripe lock in turn (never two at once).
func (r *Reporter) Unregister(sub string) {
	s := r.stripeFor(sub)
	s.mu.Lock()
	delete(s.subs, sub)
	s.mu.Unlock()
	for i := range r.stripes {
		st := &r.stripes[i]
		st.mu.Lock()
		for _, state := range st.subs {
			for j, f := range state.followers {
				if f == sub {
					state.followers = append(state.followers[:j], state.followers[j+1:]...)
					break
				}
			}
		}
		st.mu.Unlock()
	}
}

// Follow implements virtual subscriptions (Section 5.4): every report of
// target is also delivered on behalf of follower. Creating the monitoring
// work happens once; following only puts stress on the Reporter.
func (r *Reporter) Follow(follower, target string) error {
	s := r.stripeFor(target)
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.subs[target]
	if !ok {
		return fmt.Errorf("reporter: unknown subscription %q", target)
	}
	st.followers = append(st.followers, follower)
	return nil
}

// Notify appends a notification to its subscription's buffer and fires a
// report when the subscription's when condition holds. Delivery happens
// after the stripe's lock is released, so a Delivery implementation may
// call back into the Reporter without deadlocking.
func (r *Reporter) Notify(n Notification) {
	now := r.clock()
	s := r.stripeFor(n.Subscription)
	s.mu.Lock()
	var reps []*Report
	if st, ok := s.subs[n.Subscription]; ok {
		reps = r.noteLocked(n.Subscription, st, n, now)
	}
	s.mu.Unlock()
	r.deliver(reps)
}

// NotifyBatch ingests the notifications of one processed document in a
// single pass: each stripe that appears in the batch is locked exactly
// once, however many notifications map onto it. This is the amortisation
// the manager's per-alert batches rely on — with immediate-report
// subscriptions, per-notification locking costs one acquire per payload,
// batch locking one per stripe. Delivery of every fired report happens
// after all stripe locks are released.
func (r *Reporter) NotifyBatch(ns []Notification) {
	if len(ns) == 0 {
		return
	}
	if len(ns) == 1 {
		r.Notify(ns[0])
		return
	}
	now := r.clock()
	var want [stripeCount]bool
	for i := range ns {
		want[stripeIndex(ns[i].Subscription)] = true
	}
	var reps []*Report
	for si := range r.stripes {
		if !want[si] {
			continue
		}
		s := &r.stripes[si]
		s.mu.Lock()
		for i := range ns {
			if stripeIndex(ns[i].Subscription) != si {
				continue
			}
			if st, ok := s.subs[ns[i].Subscription]; ok {
				reps = append(reps, r.noteLocked(ns[i].Subscription, st, ns[i], now)...)
			}
		}
		s.mu.Unlock()
	}
	r.deliver(reps)
}

// noteLocked registers one notification on a subscription's state — the
// caller holds the stripe lock — and returns any reports it fired.
func (r *Reporter) noteLocked(sub string, st *subState, n Notification, now time.Time) []*Report {
	if st.spec.AtMostCount > 0 && len(st.buffer) >= st.spec.AtMostCount {
		// atmost N: stop registering new notifications until the next report.
		st.dropped++
		return nil
	}
	if r.wal != nil {
		rec := walRecord{T: "notif", Sub: sub, Label: n.Label, Time: n.Time}
		if n.Element != nil {
			rec.XML = n.Element.XML()
		}
		// Journalled under the stripe lock so the log records
		// notifications in the order the buffer gained them.
		//xyvet:ignore lockcheck
		r.journal(rec)
	}
	st.buffer = append(st.buffer, n)
	st.labelCount[n.Label]++
	if r.conditionHolds(st, now, true) {
		return r.buildLocked(sub, st, now)
	}
	return nil
}

// Tick evaluates time-based conditions (periodic terms, rate-limited
// pending reports, archive expiry). Call it regularly — the paper's
// Reporter owns a timer.
func (r *Reporter) Tick() {
	now := r.clock()
	var reps []*Report
	for i := range r.stripes {
		s := &r.stripes[i]
		s.mu.Lock()
		for sub, st := range s.subs {
			if len(st.buffer) == 0 && !st.pending {
				// Periodic reports with empty buffers are not sent; the paper's
				// report queries run over gathered notifications.
				if r.periodicDue(st, now) {
					st.lastReport = now
				}
				continue
			}
			fire := st.pending && !r.rateLimited(st, now)
			if !fire && r.conditionHolds(st, now, false) {
				fire = true
			}
			if fire {
				reps = append(reps, r.buildLocked(sub, st, now)...)
			}
		}
		s.mu.Unlock()
	}
	// Garbage-collect expired archived reports.
	r.archMu.Lock()
	keep := r.archive[:0]
	for _, a := range r.archive {
		if a.expiry.After(now) {
			keep = append(keep, a)
		}
	}
	r.archive = keep
	r.archMu.Unlock()
	r.deliver(reps)
	r.drainRetries(now)
}

// conditionHolds evaluates the disjunction of report terms. onArrival is
// true when called from Notify, enabling the immediate term.
func (r *Reporter) conditionHolds(st *subState, now time.Time, onArrival bool) bool {
	hold := false
	for _, term := range st.spec.When {
		switch term.Kind {
		case sublang.TermImmediate:
			if onArrival && len(st.buffer) > 0 {
				hold = true
			}
		case sublang.TermCount:
			if len(st.buffer) > term.Count {
				hold = true
			}
		case sublang.TermTagCount:
			if st.labelCount[term.Tag] > term.Count {
				hold = true
			}
		case sublang.TermPeriodic:
			if len(st.buffer) > 0 && r.periodicDue(st, now) {
				hold = true
			}
		}
		if hold {
			break
		}
	}
	if !hold {
		return false
	}
	if r.rateLimited(st, now) {
		st.pending = true
		return false
	}
	return true
}

func (r *Reporter) periodicDue(st *subState, now time.Time) bool {
	var freq sublang.Frequency
	for _, term := range st.spec.When {
		if term.Kind == sublang.TermPeriodic && (freq == 0 || term.Freq < freq) {
			freq = term.Freq
		}
	}
	if freq == 0 {
		return false
	}
	return now.Sub(st.lastReport) >= freq.Duration()
}

// rateLimited applies the atmost-frequency clause.
func (r *Reporter) rateLimited(st *subState, now time.Time) bool {
	if st.spec.AtMostFreq == 0 || !st.hasReport {
		return false
	}
	return now.Sub(st.lastReport) < st.spec.AtMostFreq.Duration()
}

// buildLocked renders and post-processes the report and resets the buffer
// ("the generation of a report empties the global buffer of notification
// answers"), returning one copy per recipient (the subscriber plus its
// virtual followers). The caller delivers them once its stripe lock is
// released: holding a stripe lock across the Delivery callback would
// deadlock any sink that calls back into the Reporter.
func (r *Reporter) buildLocked(sub string, st *subState, now time.Time) []*Report {
	doc := xmldom.Element("Report")
	for _, n := range st.buffer {
		if n.Element != nil {
			doc.AppendChild(n.Element.Clone())
		}
	}
	if st.spec.Query != nil {
		if res, err := st.spec.Query.EvalElement("Report", []*xmldom.Node{doc}); err == nil {
			doc = res
		}
	}
	rep := &Report{Subscription: sub, Doc: doc, Time: now, Notifications: len(st.buffer)}
	count := len(st.buffer)
	st.buffer = nil
	st.labelCount = make(map[string]int)
	st.dropped = 0
	st.lastReport = now
	st.hasReport = true
	st.pending = false
	if st.spec.Archive > 0 {
		r.archMu.Lock()
		r.archive = append(r.archive, archivedReport{rep: rep, expiry: now.Add(st.spec.Archive.Duration())})
		r.archMu.Unlock()
	}
	out := []*Report{rep}
	for _, rcpt := range st.followers {
		out = append(out, &Report{Subscription: rcpt, Doc: rep.Doc, Time: now, Notifications: count})
	}
	for _, rp := range out {
		r.noteFired(rp, sub, now)
	}
	return out
}

// WithStream publishes every notification batch to st at delivery
// time: the durable change-stream consumers poll and replay instead of
// being pushed at. Publish failures degrade like journal failures —
// counted, push delivery continues.
func WithStream(st *stream.Log) Option {
	return func(r *Reporter) { r.stream = st }
}

// publish appends the not-yet-streamed reports of a batch to the
// change-stream — before any push attempt, so stream consumers observe
// a report even when every push fails and it dead-letters.
func (r *Reporter) publish(reps []*Report) {
	if r.stream == nil {
		return
	}
	recs := make([]stream.Record, 0, len(reps))
	for _, rep := range reps {
		if rep.streamed {
			continue
		}
		rec := stream.Record{Subscription: rep.Subscription, Time: rep.Time, Notifications: rep.Notifications}
		if rep.Doc != nil {
			rec.XML = rep.Doc.XML()
		}
		recs = append(recs, rec)
	}
	if len(recs) == 0 {
		return
	}
	if _, err := r.stream.Publish(recs); err != nil {
		r.streamErrors.Add(1)
		return
	}
	for _, rep := range reps {
		rep.streamed = true
	}
	r.streamPublished.Add(uint64(len(recs)))
}

// StreamStats counts change-stream publication activity: records
// published, and publishes that failed (stream durability degraded,
// push delivery continued).
func (r *Reporter) StreamStats() (published, errors uint64) {
	return r.streamPublished.Load(), r.streamErrors.Load()
}

// deliver hands finished reports to the sink — with no lock held — and
// folds the outcome into the counters. Failures enter the retry queue.
func (r *Reporter) deliver(reps []*Report) {
	if len(reps) == 0 {
		return
	}
	r.publish(reps)
	now := r.clock()
	for _, rep := range reps {
		if err := r.delivery.Deliver(rep); err != nil {
			r.failed.Add(1)
			r.noteFailure(rep, 1, err, now)
		} else {
			r.delivered.Add(1)
			r.noteDelivered(rep)
		}
	}
}

// Buffered returns the number of notifications waiting for a subscription.
func (r *Reporter) Buffered(sub string) int {
	s := r.stripeFor(sub)
	s.mu.Lock()
	defer s.mu.Unlock()
	if st := s.subs[sub]; st != nil {
		return len(st.buffer)
	}
	return 0
}

// Archived returns the archived reports of a subscription that have not
// expired yet.
func (r *Reporter) Archived(sub string) []*Report {
	r.archMu.Lock()
	defer r.archMu.Unlock()
	var out []*Report
	for _, a := range r.archive {
		if a.rep.Subscription == sub {
			out = append(out, a.rep)
		}
	}
	return out
}

// Stats returns delivery counters.
func (r *Reporter) Stats() (delivered, failed uint64) {
	return r.delivered.Load(), r.failed.Load()
}
