// Package reporter implements the Reporter and Xyleme Reporter of the
// architecture (Section 3): it buffers the notifications of each
// subscription, evaluates the report conditions of the subscription's when
// clause (count, per-label count, periodic, immediate, disjunctions),
// applies the limiting clauses (atmost count / atmost frequency), renders
// the buffered notifications as an XML report — post-processed by the
// report query when one is given — and hands the report to a delivery
// sink (email in the paper; pluggable here). Generated reports can be
// archived for a configurable period (the archive clause).
package reporter

import (
	"fmt"
	"sync"
	"time"

	"xymon/internal/sublang"
	"xymon/internal/xmldom"
)

// Notification is one entry of a subscription's notification stream: the
// payload element produced by a monitoring query or a continuous query.
type Notification struct {
	Subscription string
	Label        string // monitoring query label or continuous query name
	Element      *xmldom.Node
	Time         time.Time
}

// Report is a generated subscription report.
type Report struct {
	Subscription  string
	Doc           *xmldom.Node
	Time          time.Time
	Notifications int
}

// Delivery receives finished reports. The paper emails them; the default
// sink here simulates an email spool.
type Delivery interface {
	Deliver(rep *Report) error
}

// DeliveryFunc adapts a function to the Delivery interface.
type DeliveryFunc func(rep *Report) error

// Deliver calls f.
func (f DeliveryFunc) Deliver(rep *Report) error { return f(rep) }

// subState is the per-subscription reporting state.
type subState struct {
	spec       *sublang.ReportSpec
	buffer     []Notification
	labelCount map[string]int
	dropped    int // notifications discarded by atmost N
	lastReport time.Time
	hasReport  bool // a report was generated at least once
	pending    bool // condition fired while rate-limited
	followers  []string
	start      time.Time
}

// Reporter buffers notifications and produces reports. Safe for
// concurrent use.
type Reporter struct {
	mu       sync.Mutex
	subs     map[string]*subState
	delivery Delivery
	clock    func() time.Time
	archive  []archivedReport

	delivered uint64
	failed    uint64
}

type archivedReport struct {
	rep    *Report
	expiry time.Time
}

// Option configures a Reporter.
type Option func(*Reporter)

// WithClock substitutes the time source.
func WithClock(clock func() time.Time) Option {
	return func(r *Reporter) { r.clock = clock }
}

// New returns a Reporter delivering to sink (nil discards reports).
func New(sink Delivery, opts ...Option) *Reporter {
	r := &Reporter{
		subs:     make(map[string]*subState),
		delivery: sink,
		clock:    time.Now,
	}
	for _, o := range opts {
		o(r)
	}
	if r.delivery == nil {
		r.delivery = DeliveryFunc(func(*Report) error { return nil })
	}
	return r
}

// Register creates reporting state for a subscription. A nil spec installs
// an immediate-report default.
func (r *Reporter) Register(sub string, spec *sublang.ReportSpec) {
	if spec == nil {
		spec = &sublang.ReportSpec{When: []sublang.ReportTerm{{Kind: sublang.TermImmediate}}}
	}
	now := r.clock()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.subs[sub] = &subState{
		spec:       spec,
		labelCount: make(map[string]int),
		start:      now,
		lastReport: now,
	}
}

// Unregister drops a subscription's reporting state.
func (r *Reporter) Unregister(sub string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.subs, sub)
	for _, st := range r.subs {
		for i, f := range st.followers {
			if f == sub {
				st.followers = append(st.followers[:i], st.followers[i+1:]...)
				break
			}
		}
	}
}

// Follow implements virtual subscriptions (Section 5.4): every report of
// target is also delivered on behalf of follower. Creating the monitoring
// work happens once; following only puts stress on the Reporter.
func (r *Reporter) Follow(follower, target string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.subs[target]
	if !ok {
		return fmt.Errorf("reporter: unknown subscription %q", target)
	}
	st.followers = append(st.followers, follower)
	return nil
}

// Notify appends a notification to its subscription's buffer and fires a
// report when the subscription's when condition holds. Delivery happens
// after the reporter's lock is released, so a Delivery implementation may
// call back into the Reporter without deadlocking.
func (r *Reporter) Notify(n Notification) {
	now := r.clock()
	r.mu.Lock()
	var reps []*Report
	if st, ok := r.subs[n.Subscription]; ok {
		if st.spec.AtMostCount > 0 && len(st.buffer) >= st.spec.AtMostCount {
			// atmost N: stop registering new notifications until the next report.
			st.dropped++
		} else {
			st.buffer = append(st.buffer, n)
			st.labelCount[n.Label]++
			if r.conditionHolds(st, now, true) {
				reps = r.buildLocked(n.Subscription, st, now)
			}
		}
	}
	r.mu.Unlock()
	r.deliver(reps)
}

// Tick evaluates time-based conditions (periodic terms, rate-limited
// pending reports, archive expiry). Call it regularly — the paper's
// Reporter owns a timer.
func (r *Reporter) Tick() {
	now := r.clock()
	r.mu.Lock()
	var reps []*Report
	for sub, st := range r.subs {
		if len(st.buffer) == 0 && !st.pending {
			// Periodic reports with empty buffers are not sent; the paper's
			// report queries run over gathered notifications.
			if r.periodicDue(st, now) {
				st.lastReport = now
			}
			continue
		}
		fire := st.pending && !r.rateLimited(st, now)
		if !fire && r.conditionHolds(st, now, false) {
			fire = true
		}
		if fire {
			reps = append(reps, r.buildLocked(sub, st, now)...)
		}
	}
	// Garbage-collect expired archived reports.
	keep := r.archive[:0]
	for _, a := range r.archive {
		if a.expiry.After(now) {
			keep = append(keep, a)
		}
	}
	r.archive = keep
	r.mu.Unlock()
	r.deliver(reps)
}

// conditionHolds evaluates the disjunction of report terms. onArrival is
// true when called from Notify, enabling the immediate term.
func (r *Reporter) conditionHolds(st *subState, now time.Time, onArrival bool) bool {
	hold := false
	for _, term := range st.spec.When {
		switch term.Kind {
		case sublang.TermImmediate:
			if onArrival && len(st.buffer) > 0 {
				hold = true
			}
		case sublang.TermCount:
			if len(st.buffer) > term.Count {
				hold = true
			}
		case sublang.TermTagCount:
			if st.labelCount[term.Tag] > term.Count {
				hold = true
			}
		case sublang.TermPeriodic:
			if len(st.buffer) > 0 && r.periodicDue(st, now) {
				hold = true
			}
		}
		if hold {
			break
		}
	}
	if !hold {
		return false
	}
	if r.rateLimited(st, now) {
		st.pending = true
		return false
	}
	return true
}

func (r *Reporter) periodicDue(st *subState, now time.Time) bool {
	var freq sublang.Frequency
	for _, term := range st.spec.When {
		if term.Kind == sublang.TermPeriodic && (freq == 0 || term.Freq < freq) {
			freq = term.Freq
		}
	}
	if freq == 0 {
		return false
	}
	return now.Sub(st.lastReport) >= freq.Duration()
}

// rateLimited applies the atmost-frequency clause.
func (r *Reporter) rateLimited(st *subState, now time.Time) bool {
	if st.spec.AtMostFreq == 0 || !st.hasReport {
		return false
	}
	return now.Sub(st.lastReport) < st.spec.AtMostFreq.Duration()
}

// buildLocked renders and post-processes the report and resets the buffer
// ("the generation of a report empties the global buffer of notification
// answers"), returning one copy per recipient (the subscriber plus its
// virtual followers). The caller delivers them once the lock is released:
// holding r.mu across the Delivery callback would deadlock any sink that
// calls back into the Reporter.
func (r *Reporter) buildLocked(sub string, st *subState, now time.Time) []*Report {
	doc := xmldom.Element("Report")
	for _, n := range st.buffer {
		if n.Element != nil {
			doc.AppendChild(n.Element.Clone())
		}
	}
	if st.spec.Query != nil {
		if res, err := st.spec.Query.EvalElement("Report", []*xmldom.Node{doc}); err == nil {
			doc = res
		}
	}
	rep := &Report{Subscription: sub, Doc: doc, Time: now, Notifications: len(st.buffer)}
	count := len(st.buffer)
	st.buffer = nil
	st.labelCount = make(map[string]int)
	st.dropped = 0
	st.lastReport = now
	st.hasReport = true
	st.pending = false
	if st.spec.Archive > 0 {
		r.archive = append(r.archive, archivedReport{rep: rep, expiry: now.Add(st.spec.Archive.Duration())})
	}
	out := []*Report{rep}
	for _, rcpt := range st.followers {
		out = append(out, &Report{Subscription: rcpt, Doc: rep.Doc, Time: now, Notifications: count})
	}
	return out
}

// deliver hands finished reports to the sink — with no lock held — and
// folds the outcome back into the counters.
func (r *Reporter) deliver(reps []*Report) {
	if len(reps) == 0 {
		return
	}
	var delivered, failed uint64
	for _, rep := range reps {
		if err := r.delivery.Deliver(rep); err != nil {
			failed++
		} else {
			delivered++
		}
	}
	r.mu.Lock()
	r.delivered += delivered
	r.failed += failed
	r.mu.Unlock()
}

// Buffered returns the number of notifications waiting for a subscription.
func (r *Reporter) Buffered(sub string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if st := r.subs[sub]; st != nil {
		return len(st.buffer)
	}
	return 0
}

// Archived returns the archived reports of a subscription that have not
// expired yet.
func (r *Reporter) Archived(sub string) []*Report {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []*Report
	for _, a := range r.archive {
		if a.rep.Subscription == sub {
			out = append(out, a.rep)
		}
	}
	return out
}

// Stats returns delivery counters.
func (r *Reporter) Stats() (delivered, failed uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.delivered, r.failed
}
