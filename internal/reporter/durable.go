package reporter

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"xymon/internal/wal"
	"xymon/internal/xmldom"
)

// The Reporter's durable state is the part of the paper's delivery
// semantics a restart must not erase: the notification stream gathered
// since the last report (the paper's Reporter explicitly accumulates it
// between evaluations), and every report that was built but whose
// delivery was not yet acknowledged. Both journal their mutations into a
// wal.Log as they happen:
//
//	notif  — a notification entered a subscription's buffer
//	fired  — a report was built; its buffer emptied into it
//	done   — the sink accepted the report
//	dead   — the report exhausted its retry budget (dead-lettered)
//	lost   — delivery failed with retrying disabled; intentionally dropped
//	redrive — an operator moved a dead letter back onto the retry queue
//
// Recovery replays checkpoint + tail: buffered notifications come back
// flagged pending (the next Tick reports them — re-evaluating the exact
// when clause could only delay them further), and every report that
// fired without a done/dead/lost record re-enters the retry queue. A
// crash between the sink accepting a report and the done record landing
// therefore redelivers it: that duplicate is the at-least-once contract,
// never a loss.
type walRecord struct {
	T   string `json:"t"`
	ID  uint64 `json:"id,omitempty"`
	Sub string `json:"sub,omitempty"`
	// Origin is the subscription whose buffer a fired report consumed —
	// it differs from Sub on the copies delivered to virtual followers.
	Origin   string    `json:"origin,omitempty"`
	Label    string    `json:"label,omitempty"`
	XML      string    `json:"xml,omitempty"`
	Time     time.Time `json:"time,omitempty"`
	Count    int       `json:"count,omitempty"`
	Attempts int       `json:"attempts,omitempty"`
	Reason   string    `json:"reason,omitempty"`
}

// walSnapshot is the checkpoint payload: the durable state at the
// checkpoint's boundary, replacing every journal record before it.
type walSnapshot struct {
	NextID      uint64                 `json:"next_id"`
	Buffers     map[string][]walRecord `json:"buffers,omitempty"`
	Outstanding []walRecord            `json:"outstanding,omitempty"`
	Dead        []walRecord            `json:"dead,omitempty"`
	Evicted     uint64                 `json:"evicted,omitempty"`
}

// WithWAL journals the Reporter's durable state into l. The caller opens
// the log, calls Recover once registration is done, and closes it after
// the Reporter stops.
func WithWAL(l *wal.Log) Option {
	return func(r *Reporter) { r.wal = l }
}

// journal appends one record; journaling failures degrade (the system
// keeps running on its in-memory state) but are counted.
func (r *Reporter) journal(rec walRecord) {
	if r.wal == nil {
		return
	}
	enc, err := json.Marshal(rec)
	if err == nil {
		err = r.wal.Append(enc)
	}
	if err != nil {
		r.walErrors.Add(1)
	}
}

// JournalErrors counts journal appends that failed (state kept in memory
// only — durability degraded, operation continued).
func (r *Reporter) JournalErrors() uint64 { return r.walErrors.Load() }

// noteFired journals a built report and tracks it as outstanding until a
// delivery outcome lands. Called with the stripe lock held; rt.mu nests
// inside it (stripe → rt.mu → wal everywhere).
func (r *Reporter) noteFired(rep *Report, origin string, now time.Time) {
	if r.wal == nil {
		return
	}
	rep.walID = r.nextID.Add(1)
	rec := walRecord{
		T: "fired", ID: rep.walID, Sub: rep.Subscription, Origin: origin,
		XML: rep.Doc.XML(), Time: now, Count: rep.Notifications,
	}
	rt := &r.retry
	rt.mu.Lock()
	r.journal(rec)
	rt.outstanding[rep.walID] = rec
	rt.mu.Unlock()
}

// noteDelivered resolves an outstanding report. Journaling and removal
// happen under rt.mu so a concurrent Checkpoint sees either both or
// neither — either the done record survives in the tail, or the report
// is already gone from the snapshot.
func (r *Reporter) noteDelivered(rep *Report) {
	if r.wal == nil || rep.walID == 0 {
		return
	}
	rt := &r.retry
	rt.mu.Lock()
	r.journal(walRecord{T: "done", ID: rep.walID})
	delete(rt.outstanding, rep.walID)
	rt.mu.Unlock()
}

// resolveLocked journals a terminal non-delivery outcome ("dead" or
// "lost") for an outstanding report. Caller holds rt.mu.
func (r *Reporter) resolveLocked(rep *Report, t, reason string, attempts int, now time.Time) {
	if r.wal == nil || rep.walID == 0 {
		return
	}
	rec := walRecord{
		T: t, ID: rep.walID, Sub: rep.Subscription, Count: rep.Notifications,
		Reason: reason, Attempts: attempts, Time: now,
	}
	if rep.Doc != nil {
		rec.XML = rep.Doc.XML()
	}
	r.journal(rec)
	delete(r.retry.outstanding, rep.walID)
}

// parseReportDoc rebuilds a report document from its journaled XML.
func parseReportDoc(s string) *xmldom.Node {
	if s == "" {
		return nil
	}
	d, err := xmldom.ParseString(s)
	if err != nil || d == nil {
		return nil
	}
	return d.Root
}

// Recover rebuilds the Reporter's durable state from its WAL. Call it
// after every subscription is Registered (recovery drops the buffers of
// subscriptions that no longer exist) and before the first Notify or
// Tick. Recovered buffers are marked pending, so the next Tick reports
// them; recovered outstanding reports re-enter the retry queue due
// immediately.
func (r *Reporter) Recover() error {
	if r.wal == nil {
		return nil
	}
	buffers := make(map[string][]walRecord)
	outstanding := make(map[uint64]walRecord)
	var order []uint64
	var dead []walRecord
	var evicted, nextID uint64
	err := r.wal.Recover(
		func(snap []byte) error {
			var s walSnapshot
			if err := json.Unmarshal(snap, &s); err != nil {
				return fmt.Errorf("reporter: corrupt checkpoint: %w", err)
			}
			nextID = s.NextID
			for sub, recs := range s.Buffers {
				buffers[sub] = recs
			}
			for _, rec := range s.Outstanding {
				outstanding[rec.ID] = rec
				order = append(order, rec.ID)
			}
			dead = append(dead, s.Dead...)
			evicted = s.Evicted
			return nil
		},
		func(payload []byte) error {
			var rec walRecord
			if err := json.Unmarshal(payload, &rec); err != nil {
				return fmt.Errorf("reporter: corrupt journal record: %w", err)
			}
			switch rec.T {
			case "notif":
				buffers[rec.Sub] = append(buffers[rec.Sub], rec)
			case "fired":
				if rec.ID > nextID {
					nextID = rec.ID
				}
				outstanding[rec.ID] = rec
				order = append(order, rec.ID)
				// Building the report consumed the origin's buffer.
				delete(buffers, rec.Origin)
			case "done", "lost":
				delete(outstanding, rec.ID)
			case "dead":
				delete(outstanding, rec.ID)
				dead = append(dead, rec)
			case "redrive":
				// A dead letter moved back to the retry queue; the fresh
				// attempt budget a live Redrive grants is restored too.
				for i, d := range dead {
					if d.ID == rec.ID {
						d.T = "fired"
						d.Attempts = 0
						d.Reason = ""
						outstanding[rec.ID] = d
						order = append(order, rec.ID)
						dead = append(dead[:i], dead[i+1:]...)
						break
					}
				}
			}
			return nil
		},
	)
	if err != nil {
		return err
	}

	now := r.clock()
	for sub, recs := range buffers {
		if len(recs) == 0 {
			continue
		}
		s := r.stripeFor(sub)
		s.mu.Lock()
		if st, ok := s.subs[sub]; ok {
			st.buffer = st.buffer[:0]
			clear(st.labelCount)
			for _, rec := range recs {
				st.buffer = append(st.buffer, Notification{
					Subscription: sub, Label: rec.Label,
					Element: parseReportDoc(rec.XML), Time: rec.Time,
				})
				st.labelCount[rec.Label]++
			}
			// The when clause held (or may have held) before the crash;
			// pending makes the next Tick report rather than re-derive.
			st.pending = true
		}
		s.mu.Unlock()
	}

	r.nextID.Store(nextID)
	r.deadLettered.Add(uint64(len(dead)))
	rt := &r.retry
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for _, rec := range dead {
		rt.dead = append(rt.dead, DeadLetter{
			Report: &Report{
				Subscription: rec.Sub, Doc: parseReportDoc(rec.XML),
				Time: rec.Time, Notifications: rec.Count, walID: rec.ID,
			},
			Attempts: rec.Attempts, Reason: rec.Reason, Time: rec.Time,
		})
	}
	r.evictDeadLocked()
	r.evicted.Add(evicted)
	queued := make(map[uint64]bool, len(order))
	for _, id := range order {
		rec, ok := outstanding[id]
		if !ok || queued[id] {
			// Resolved, or already queued once (a report can enter order
			// twice when a dead letter was redriven in the same tail).
			continue
		}
		queued[id] = true
		rt.outstanding[id] = rec
		rt.queue = append(rt.queue, &retryEntry{
			rep: &Report{
				Subscription: rec.Sub, Doc: parseReportDoc(rec.XML),
				Time: rec.Time, Notifications: rec.Count, walID: rec.ID,
			},
			attempts: rec.Attempts,
			nextTry:  now,
		})
	}
	return nil
}

// Checkpoint snapshots the durable state and compacts the journal it
// covers. It locks every stripe plus the retry state, so the snapshot is
// a consistent cut: no notification, report, or outcome can land between
// the snapshot and the checkpoint boundary.
func (r *Reporter) Checkpoint() error {
	if r.wal == nil {
		return nil
	}
	for i := range r.stripes {
		r.stripes[i].mu.Lock()
		defer r.stripes[i].mu.Unlock()
	}
	rt := &r.retry
	rt.mu.Lock()
	defer rt.mu.Unlock()

	snap := walSnapshot{
		NextID:  r.nextID.Load(),
		Buffers: make(map[string][]walRecord),
		Evicted: r.evicted.Load(),
	}
	for i := range r.stripes {
		for sub, st := range r.stripes[i].subs {
			if len(st.buffer) == 0 {
				continue
			}
			recs := make([]walRecord, 0, len(st.buffer))
			for _, n := range st.buffer {
				rec := walRecord{T: "notif", Sub: sub, Label: n.Label, Time: n.Time}
				if n.Element != nil {
					rec.XML = n.Element.XML()
				}
				recs = append(recs, rec)
			}
			snap.Buffers[sub] = recs
		}
	}
	for _, rec := range rt.outstanding {
		snap.Outstanding = append(snap.Outstanding, rec)
	}
	sort.Slice(snap.Outstanding, func(i, j int) bool {
		return snap.Outstanding[i].ID < snap.Outstanding[j].ID
	})
	for _, d := range rt.dead {
		rec := walRecord{
			T: "dead", ID: d.Report.walID, Sub: d.Report.Subscription,
			Time: d.Report.Time, Count: d.Report.Notifications,
			Attempts: d.Attempts, Reason: d.Reason,
		}
		if d.Report.Doc != nil {
			rec.XML = d.Report.Doc.XML()
		}
		snap.Dead = append(snap.Dead, rec)
	}
	// All stripe locks and rt.mu are held across the checkpoint: nothing
	// can append between the snapshot above and the boundary rotation.
	//xyvet:ignore lockcheck
	return r.wal.Checkpoint(func(w io.Writer) error {
		return json.NewEncoder(w).Encode(&snap)
	})
}
