package reporter

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// flakySink fails the first failN deliveries, then accepts everything.
type flakySink struct {
	failN int
	calls int
	sent  []*Report
}

func (s *flakySink) Deliver(rep *Report) error {
	s.calls++
	if s.calls <= s.failN {
		return errors.New("spool full")
	}
	s.sent = append(s.sent, rep)
	return nil
}

// retryRig builds a Reporter on a virtual clock with one immediate-report
// subscription.
func retryRig(sink Delivery, opts ...Option) (*Reporter, *time.Time) {
	now := time.Date(2001, 5, 21, 9, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }
	r := New(sink, append([]Option{WithClock(clock)}, opts...)...)
	r.Register("S", nil)
	return r, &now
}

func TestRetryQueueRedelivers(t *testing.T) {
	sink := &flakySink{failN: 1}
	r, now := retryRig(sink)

	r.Notify(Notification{Subscription: "S"})
	if d, f := r.Stats(); d != 0 || f != 1 {
		t.Fatalf("after failed delivery: delivered=%d failed=%d", d, f)
	}
	if r.RetryPending() != 1 {
		t.Fatalf("RetryPending = %d, want 1", r.RetryPending())
	}

	// Before the backoff elapses, Tick must not re-attempt.
	r.Tick()
	if sink.calls != 1 {
		t.Fatalf("Tick inside backoff re-attempted: %d calls", sink.calls)
	}

	*now = now.Add(2 * time.Minute)
	r.Tick()
	if d, _ := r.Stats(); d != 1 {
		t.Fatalf("after retry Tick: delivered=%d, want 1", d)
	}
	if r.RetryPending() != 0 || len(r.DeadLetters()) != 0 {
		t.Errorf("pending=%d dead=%d after successful retry", r.RetryPending(), len(r.DeadLetters()))
	}
	if st := r.RetryStats(); st.Retried != 1 || st.DeadLettered != 0 {
		t.Errorf("RetryStats = (%d, %d), want (1, 0)", st.Retried, st.DeadLettered)
	}
	if len(sink.sent) != 1 || sink.sent[0].Subscription != "S" {
		t.Errorf("sink got %v", sink.sent)
	}
}

func TestDeadLetterAfterBudget(t *testing.T) {
	sink := &flakySink{failN: 1 << 30} // never succeeds
	r, now := retryRig(sink, WithRetryPolicy(3, time.Minute, time.Hour))

	r.Notify(Notification{Subscription: "S"})
	for i := 0; i < 6; i++ {
		*now = now.Add(time.Hour)
		r.Tick()
	}
	if sink.calls != 3 {
		t.Fatalf("sink saw %d attempts, want exactly the budget of 3", sink.calls)
	}
	if r.RetryPending() != 0 {
		t.Errorf("RetryPending = %d after exhausting the budget", r.RetryPending())
	}
	dead := r.DeadLetters()
	if len(dead) != 1 {
		t.Fatalf("DeadLetters = %d entries, want 1", len(dead))
	}
	dl := dead[0]
	if dl.Attempts != 3 || dl.Report.Subscription != "S" || !strings.Contains(dl.Reason, "spool full") {
		t.Errorf("dead letter = %+v", dl)
	}
	if st := r.RetryStats(); st.DeadLettered != 1 {
		t.Errorf("deadLettered = %d, want 1", st.DeadLettered)
	}
	if _, f := r.Stats(); f != 3 {
		t.Errorf("failed = %d, want 3 (one per attempt)", f)
	}
}

func TestRetryDisabled(t *testing.T) {
	sink := &flakySink{failN: 1 << 30}
	r, now := retryRig(sink, WithRetryPolicy(0, 0, 0))
	r.Notify(Notification{Subscription: "S"})
	*now = now.Add(24 * time.Hour)
	r.Tick()
	if sink.calls != 1 {
		t.Errorf("disabled retry still re-attempted: %d calls", sink.calls)
	}
	if r.RetryPending() != 0 || len(r.DeadLetters()) != 0 {
		t.Errorf("disabled retry left state: pending=%d dead=%d", r.RetryPending(), len(r.DeadLetters()))
	}
}

func TestRetryDelayGrowsAndCaps(t *testing.T) {
	base, max := time.Minute, 10*time.Minute
	want := []time.Duration{
		time.Minute, 2 * time.Minute, 4 * time.Minute,
		8 * time.Minute, 10 * time.Minute, 10 * time.Minute,
	}
	for i, w := range want {
		if got := retryDelay(base, max, i+1); got != w {
			t.Errorf("retryDelay(attempt %d) = %v, want %v", i+1, got, w)
		}
	}
}
