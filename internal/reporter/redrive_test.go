package reporter

import (
	"testing"
	"time"

	"xymon/internal/stream"
)

// TestRedriveMovesDeadLettersBack: Redrive turns terminal forensics
// back into queued work with a fresh attempt budget, and the healed
// sink gets the report on the next Tick.
func TestRedriveMovesDeadLettersBack(t *testing.T) {
	sink := &flakySink{failN: 1}
	r, now := retryRig(sink, WithRetryPolicy(1, time.Second, time.Second))
	r.Notify(Notification{Subscription: "S", Label: "l", Element: elem("again")})
	if len(r.DeadLetters()) != 1 {
		t.Fatalf("dead letters = %d, want 1 (maxAttempts 1 dead-letters on first failure)", len(r.DeadLetters()))
	}

	if moved := r.Redrive(); moved != 1 {
		t.Fatalf("Redrive moved %d, want 1", moved)
	}
	if len(r.DeadLetters()) != 0 || r.RetryPending() != 1 {
		t.Fatalf("after redrive: dead=%d pending=%d", len(r.DeadLetters()), r.RetryPending())
	}
	*now = now.Add(time.Second)
	r.Tick()
	if len(sink.sent) != 1 || !contains(sink.sent[0].Doc.XML(), "again") {
		t.Fatalf("redriven report not delivered: %+v", sink.sent)
	}
	if st := r.RetryStats(); st.Redriven != 1 {
		t.Errorf("Redriven stat = %d", st.Redriven)
	}
}

// TestRedriveByID: selective redrive touches only the named letters.
func TestRedriveByID(t *testing.T) {
	dir := t.TempDir()
	sink := &flakySink{failN: 1 << 30}
	r, now := durableRig(t, dir, sink, WithRetryPolicy(1, time.Second, time.Second))
	r.Register("A", nil)
	r.Register("B", nil)
	r.Notify(Notification{Subscription: "A", Label: "l", Element: elem("a")})
	r.Notify(Notification{Subscription: "B", Label: "l", Element: elem("b")})
	dead := r.DeadLetters()
	if len(dead) != 2 {
		t.Fatalf("dead letters = %d", len(dead))
	}
	var idA uint64
	for _, d := range dead {
		if d.Report.Subscription == "A" {
			idA = d.ID()
		}
	}
	if idA == 0 {
		t.Fatal("dead letter has no journal id under a WAL")
	}
	if moved := r.Redrive(idA); moved != 1 {
		t.Fatalf("Redrive(%d) moved %d", idA, moved)
	}
	rest := r.DeadLetters()
	if len(rest) != 1 || rest[0].Report.Subscription != "B" {
		t.Fatalf("selective redrive left %+v", rest)
	}
	_ = now
}

// TestRedriveSurvivesCrash pins the satellite's durability clause: a
// journaled redrive survives a restart — recovery rebuilds the report
// as queued work, not as a dead letter.
func TestRedriveSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	sink1 := &flakySink{failN: 1 << 30}
	r1, now1 := durableRig(t, dir, sink1, WithRetryPolicy(1, time.Second, time.Second))
	r1.Register("S", nil)
	r1.Notify(Notification{Subscription: "S", Label: "l", Element: elem("payload")})
	if len(r1.DeadLetters()) != 1 {
		t.Fatalf("dead letters = %d", len(r1.DeadLetters()))
	}
	if moved := r1.Redrive(); moved != 1 {
		t.Fatal("redrive moved nothing")
	}
	_ = now1
	// Crash: the first incarnation is dropped without checkpointing.

	sink2 := &flakySink{}
	r2, now2 := durableRig(t, dir, sink2, WithRetryPolicy(1, time.Second, time.Second))
	r2.Register("S", nil)
	if err := r2.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if got := len(r2.DeadLetters()); got != 0 {
		t.Fatalf("redriven report recovered as %d dead letters", got)
	}
	if got := r2.RetryPending(); got != 1 {
		t.Fatalf("recovered retry queue = %d, want the redriven report", got)
	}
	*now2 = now2.Add(time.Second)
	r2.Tick()
	if len(sink2.sent) != 1 || !contains(sink2.sent[0].Doc.XML(), "payload") {
		t.Fatalf("redriven report lost across crash: %+v", sink2.sent)
	}

	// Third incarnation: the delivery resolved it; nothing comes back.
	r3, _ := durableRig(t, dir, &flakySink{}, WithRetryPolicy(1, time.Second, time.Second))
	r3.Register("S", nil)
	if err := r3.Recover(); err != nil {
		t.Fatal(err)
	}
	if r3.RetryPending() != 0 || len(r3.DeadLetters()) != 0 {
		t.Errorf("resolved redrive resurrected: pending=%d dead=%d", r3.RetryPending(), len(r3.DeadLetters()))
	}
}

// TestPublishAtDeliveryTime: every fired report lands in the stream
// exactly once — before the push attempt, so a failing sink does not
// hide it from pull consumers — and retries do not duplicate it.
func TestPublishAtDeliveryTime(t *testing.T) {
	dir := t.TempDir()
	st, err := stream.Open(dir, stream.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	sink := &flakySink{failN: 1}
	r, now := retryRig(sink, WithStream(st))
	r.Notify(Notification{Subscription: "S", Label: "l", Element: elem("one")}) // push fails, stream publishes
	r.Notify(Notification{Subscription: "S", Label: "l", Element: elem("two")}) // push succeeds
	*now = now.Add(2 * time.Minute)
	r.Tick() // retry of "one" must not re-publish

	if got := st.Next(); got != 2 {
		t.Fatalf("stream holds %d records, want 2 (no retry duplicates)", got)
	}
	pub, errs := r.StreamStats()
	if pub != 2 || errs != 0 {
		t.Errorf("StreamStats = %d published, %d errors", pub, errs)
	}
	rd, err := stream.OpenReader(dir, "t", stream.ReaderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := rd.Poll(10)
	if err != nil || len(recs) != 2 {
		t.Fatalf("Poll = %d recs, %v", len(recs), err)
	}
	if !contains(recs[0].XML, "one") || !contains(recs[1].XML, "two") {
		t.Errorf("stream payloads: %q, %q", recs[0].XML, recs[1].XML)
	}
	if recs[0].Subscription != "S" || recs[0].Notifications != 1 {
		t.Errorf("stream record meta: %+v", recs[0])
	}
}

// TestRecoveredReportsReachStream: a report that fired before a crash
// but may have missed its stream publish is caught up when the
// recovered retry queue first drains — at-least-once on the pull side
// too.
func TestRecoveredReportsReachStream(t *testing.T) {
	dir := t.TempDir()
	// First incarnation: no stream attached at all (the worst case of
	// "crashed before publish"), sink fails, report stays outstanding.
	sink1 := &flakySink{failN: 1 << 30}
	r1, _ := durableRig(t, dir+"/wal", sink1)
	r1.Register("S", nil)
	r1.Notify(Notification{Subscription: "S", Label: "l", Element: elem("lost-and-found")})

	st, err := stream.Open(dir+"/stream", stream.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	sink2 := &flakySink{}
	r2, now2 := durableRig(t, dir+"/wal", sink2, WithStream(st))
	r2.Register("S", nil)
	if err := r2.Recover(); err != nil {
		t.Fatal(err)
	}
	*now2 = now2.Add(time.Second)
	r2.Tick()
	if len(sink2.sent) != 1 {
		t.Fatalf("recovered redelivery: %d", len(sink2.sent))
	}
	if got := st.Next(); got != 1 {
		t.Fatalf("recovered report not published to stream: Next=%d", got)
	}
}
