package reporter

import (
	"strings"
	"testing"
	"time"

	"xymon/internal/xmldom"
)

// TestEmailSinkDayWindowRollover drives the sink across its 24-hour
// accounting boundary: capacity applies per day and resets exactly when a
// new day window starts.
func TestEmailSinkDayWindowRollover(t *testing.T) {
	now := time.Date(2001, 5, 21, 23, 0, 0, 0, time.UTC)
	sink := NewEmailSink(2, true, func() time.Time { return now })
	rep := func(sub string) *Report {
		return &Report{Subscription: sub, Doc: xmldom.Element("Report"), Time: now}
	}

	if err := sink.Deliver(rep("a")); err != nil {
		t.Fatalf("first delivery: %v", err)
	}
	if err := sink.Deliver(rep("b")); err != nil {
		t.Fatalf("second delivery: %v", err)
	}
	if err := sink.Deliver(rep("c")); err == nil {
		t.Fatal("third delivery within capacity-2 day succeeded")
	}

	// 23 hours later is still inside the same window (it opened at
	// delivery time, not midnight): still rejected.
	now = now.Add(23 * time.Hour)
	if err := sink.Deliver(rep("d")); err == nil {
		t.Fatal("delivery inside the 24h window ignored the exhausted capacity")
	}

	// Crossing the 24-hour mark opens a fresh window with a fresh budget.
	now = now.Add(2 * time.Hour)
	if err := sink.Deliver(rep("e")); err != nil {
		t.Fatalf("delivery after rollover: %v", err)
	}
	if err := sink.Deliver(rep("f")); err != nil {
		t.Fatalf("second delivery after rollover: %v", err)
	}
	if err := sink.Deliver(rep("g")); err == nil {
		t.Fatal("new window's capacity not enforced")
	}

	total, rejected := sink.Counts()
	if total != 4 || rejected != 3 {
		t.Errorf("Counts = (%d, %d), want (4, 3)", total, rejected)
	}
	var got []string
	for _, e := range sink.Sent() {
		got = append(got, e.To)
	}
	if strings.Join(got, ",") != "a,b,e,f" {
		t.Errorf("accepted mails = %v, want [a b e f]", got)
	}
}

// TestEmailSinkCapacityExhaustionError pins the shape of the rejection:
// an error naming the capacity, with the mail not retained and the
// rejection counted.
func TestEmailSinkCapacityExhaustionError(t *testing.T) {
	now := time.Date(2001, 5, 21, 9, 0, 0, 0, time.UTC)
	sink := NewEmailSink(1, true, func() time.Time { return now })
	doc := xmldom.Element("Report")
	if err := sink.Deliver(&Report{Subscription: "S", Doc: doc}); err != nil {
		t.Fatalf("delivery under capacity: %v", err)
	}
	err := sink.Deliver(&Report{Subscription: "S", Doc: doc})
	if err == nil || !strings.Contains(err.Error(), "capacity 1 exhausted") {
		t.Fatalf("exhaustion error = %v", err)
	}
	if len(sink.Sent()) != 1 {
		t.Errorf("rejected mail was retained: %d sent", len(sink.Sent()))
	}
	if total, rejected := sink.Counts(); total != 1 || rejected != 1 {
		t.Errorf("Counts = (%d, %d), want (1, 1)", total, rejected)
	}
}

// TestEmailSinkUnlimited pins that capacity 0 never rejects.
func TestEmailSinkUnlimited(t *testing.T) {
	now := time.Date(2001, 5, 21, 9, 0, 0, 0, time.UTC)
	sink := NewEmailSink(0, false, func() time.Time { return now })
	doc := xmldom.Element("Report")
	for i := 0; i < 1000; i++ {
		if err := sink.Deliver(&Report{Subscription: "S", Doc: doc}); err != nil {
			t.Fatalf("delivery %d: %v", i, err)
		}
	}
	if total, rejected := sink.Counts(); total != 1000 || rejected != 0 {
		t.Errorf("Counts = (%d, %d), want (1000, 0)", total, rejected)
	}
}
