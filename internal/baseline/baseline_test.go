package baseline

import (
	"math/rand"
	"sort"
	"testing"

	"xymon/internal/core"
)

// matchers returns one of each implementation behind the common interface.
func matchers() map[string]Matcher {
	return map[string]Matcher{
		"naive":    NewNaive(),
		"counting": NewCounting(),
		"aes":      core.NewMatcher(),
	}
}

func sorted(ids []core.ComplexID) []core.ComplexID {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func TestBaselinesBasic(t *testing.T) {
	for name, m := range matchers() {
		t.Run(name, func(t *testing.T) {
			if err := m.Add(1, []core.Event{1, 3}); err != nil {
				t.Fatalf("Add: %v", err)
			}
			if err := m.Add(2, []core.Event{3}); err != nil {
				t.Fatalf("Add: %v", err)
			}
			if err := m.Add(3, []core.Event{1, 4}); err != nil {
				t.Fatalf("Add: %v", err)
			}
			got := sorted(m.Match(core.EventSet{1, 3}))
			if len(got) != 2 || got[0] != 1 || got[1] != 2 {
				t.Errorf("Match = %v, want [1 2]", got)
			}
			if m.Len() != 3 {
				t.Errorf("Len = %d, want 3", m.Len())
			}
		})
	}
}

func TestBaselinesErrors(t *testing.T) {
	for name, m := range matchers() {
		t.Run(name, func(t *testing.T) {
			if err := m.Add(1, nil); err != core.ErrEmptyComplexEvent {
				t.Errorf("Add(empty) = %v, want ErrEmptyComplexEvent", err)
			}
			if err := m.Add(1, []core.Event{2}); err != nil {
				t.Fatalf("Add: %v", err)
			}
			if err := m.Add(1, []core.Event{3}); err != core.ErrDuplicateComplexID {
				t.Errorf("duplicate Add = %v, want ErrDuplicateComplexID", err)
			}
			if err := m.Remove(99); err != core.ErrUnknownComplexID {
				t.Errorf("Remove(unknown) = %v, want ErrUnknownComplexID", err)
			}
			if err := m.Remove(1); err != nil {
				t.Errorf("Remove: %v", err)
			}
			if m.Len() != 0 {
				t.Errorf("Len = %d, want 0", m.Len())
			}
		})
	}
}

// TestImplementationsAgree cross-checks all three matchers on random
// workloads with churn: they must always produce identical match sets.
func TestImplementationsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	impls := matchers()
	const universe = 120
	nextID := core.ComplexID(0)
	live := map[core.ComplexID]bool{}
	for step := 0; step < 2000; step++ {
		switch {
		case len(live) == 0 || rng.Float64() < 0.4:
			arity := 1 + rng.Intn(5)
			events := make([]core.Event, arity)
			for i := range events {
				events[i] = core.Event(rng.Intn(universe))
			}
			for name, m := range impls {
				if err := m.Add(nextID, events); err != nil {
					t.Fatalf("%s.Add: %v", name, err)
				}
			}
			live[nextID] = true
			nextID++
		case rng.Float64() < 0.3:
			for id := range live {
				for name, m := range impls {
					if err := m.Remove(id); err != nil {
						t.Fatalf("%s.Remove: %v", name, err)
					}
				}
				delete(live, id)
				break
			}
		default:
			n := rng.Intn(20)
			events := make([]core.Event, n)
			for i := range events {
				events[i] = core.Event(rng.Intn(universe))
			}
			s := core.Canonical(events)
			want := sorted(impls["naive"].Match(s))
			for _, name := range []string{"counting", "aes"} {
				got := sorted(impls[name].Match(s))
				if len(got) != len(want) {
					t.Fatalf("step %d: %s.Match(%v) = %v, naive = %v", step, name, s, got, want)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("step %d: %s.Match(%v) = %v, naive = %v", step, name, s, got, want)
					}
				}
			}
		}
	}
}
