// Package baseline implements reference matchers for the Monitoring Query
// Processor problem, used by the ablation benchmarks of Section 4.1 (the
// paper reports having considered alternative algorithms before choosing
// the Atomic Event Sets structure, one of which was exponential in the
// number of complex events per atomic event).
//
// Two baselines are provided:
//
//   - Naive: scans every registered complex event and tests set inclusion.
//     Cost O(Card(C)·m) per document, independent of p.
//   - Counting: the classical pub/sub counting algorithm over an inverted
//     index from atomic event to subscribing complex events. Cost
//     O(p·k) per document plus per-document counter reset bookkeeping.
//
// Both expose the same Add/Remove/Match surface as core.Matcher so the
// property tests can check the three implementations agree on random
// workloads.
package baseline

import (
	"sync"

	"xymon/internal/core"
)

// Matcher is the common surface of all Monitoring Query Processor
// implementations (core.Matcher, Naive, Counting).
type Matcher interface {
	Add(id core.ComplexID, events []core.Event) error
	Remove(id core.ComplexID) error
	Match(s core.EventSet) []core.ComplexID
	Len() int
}

// Naive matches by scanning all registered complex events.
type Naive struct {
	mu   sync.RWMutex
	defs map[core.ComplexID]core.EventSet
}

// NewNaive returns an empty naive matcher.
func NewNaive() *Naive {
	return &Naive{defs: make(map[core.ComplexID]core.EventSet)}
}

// Add registers a complex event.
func (n *Naive) Add(id core.ComplexID, events []core.Event) error {
	set := core.Canonical(events)
	if len(set) == 0 {
		return core.ErrEmptyComplexEvent
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.defs[id]; dup {
		return core.ErrDuplicateComplexID
	}
	n.defs[id] = set
	return nil
}

// Remove unregisters a complex event.
func (n *Naive) Remove(id core.ComplexID) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.defs[id]; !ok {
		return core.ErrUnknownComplexID
	}
	delete(n.defs, id)
	return nil
}

// Match returns every complex event contained in s by exhaustive scan.
func (n *Naive) Match(s core.EventSet) []core.ComplexID {
	n.mu.RLock()
	defer n.mu.RUnlock()
	var out []core.ComplexID
	for id, set := range n.defs {
		if s.ContainsAll(set) {
			out = append(out, id)
		}
	}
	return out
}

// Len returns the number of registered complex events.
func (n *Naive) Len() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.defs)
}

// Counting matches with the counting algorithm: an inverted index maps each
// atomic event to the complex events containing it; matching increments a
// per-complex counter for each event of the document and reports the
// complex events whose counter reaches their arity.
type Counting struct {
	mu    sync.RWMutex
	defs  map[core.ComplexID]core.EventSet
	index map[core.Event][]core.ComplexID
	arity map[core.ComplexID]int
}

// NewCounting returns an empty counting matcher.
func NewCounting() *Counting {
	return &Counting{
		defs:  make(map[core.ComplexID]core.EventSet),
		index: make(map[core.Event][]core.ComplexID),
		arity: make(map[core.ComplexID]int),
	}
}

// Add registers a complex event in the inverted index.
func (c *Counting) Add(id core.ComplexID, events []core.Event) error {
	set := core.Canonical(events)
	if len(set) == 0 {
		return core.ErrEmptyComplexEvent
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.defs[id]; dup {
		return core.ErrDuplicateComplexID
	}
	c.defs[id] = set
	c.arity[id] = len(set)
	for _, e := range set {
		c.index[e] = append(c.index[e], id)
	}
	return nil
}

// Remove unregisters a complex event from the inverted index.
func (c *Counting) Remove(id core.ComplexID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	set, ok := c.defs[id]
	if !ok {
		return core.ErrUnknownComplexID
	}
	delete(c.defs, id)
	delete(c.arity, id)
	for _, e := range set {
		list := c.index[e]
		for i, x := range list {
			if x == id {
				copy(list[i:], list[i+1:])
				list = list[:len(list)-1]
				break
			}
		}
		if len(list) == 0 {
			delete(c.index, e)
		} else {
			c.index[e] = list
		}
	}
	return nil
}

// Match counts per-complex hits over the inverted index. Because incoming
// sets are canonical (no duplicate events) a complex event of arity m
// reaches count m exactly when all its events are present.
func (c *Counting) Match(s core.EventSet) []core.ComplexID {
	c.mu.RLock()
	defer c.mu.RUnlock()
	counts := make(map[core.ComplexID]int)
	var out []core.ComplexID
	for _, e := range s {
		for _, id := range c.index[e] {
			counts[id]++
			if counts[id] == c.arity[id] {
				out = append(out, id)
			}
		}
	}
	return out
}

// Len returns the number of registered complex events.
func (c *Counting) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.defs)
}
