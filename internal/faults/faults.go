// Package faults is a seeded, deterministic fault-injection layer for the
// acquisition→delivery pipeline. The paper's system ran against the real
// web and a real sendmail daemon, where fetches fail, cluster peers hang
// and delivery saturates; the synthetic web never fails, so every
// robustness path would otherwise go unexercised. An Injector holds rules
// keyed by named fault points — the seams of the pipeline — and each layer
// (crawler fetch/commit, cluster connections, report delivery) consults it
// through a small wrapper or an inline check. With no rules armed every
// check is a single mutex acquire and the pipeline behaves exactly as
// before; chaos tests arm rules, run the pipeline, clear the rules and
// assert recovery.
//
// Determinism: all probabilistic decisions draw from one seeded
// *rand.Rand under the injector's mutex, so a chaos run with a fixed seed
// and a fixed call order injects the same faults every time.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"time"
)

// Point names a fault-injection seam of the pipeline.
type Point string

// The pipeline's named fault points.
const (
	// PointFetch fires in the crawler before a page fetch.
	PointFetch Point = "fetch"
	// PointCommit fires in the crawler before a warehouse commit.
	PointCommit Point = "warehouse.commit"
	// PointConn fires on every Read/Write of a wrapped net.Conn.
	PointConn Point = "cluster.conn"
	// PointAccept fires in the cluster server when a connection is
	// admitted, keyed by the remote address — an error fault here drops
	// the connection before the handler starts.
	PointAccept Point = "cluster.accept"
	// PointServeRead / PointServeWrite fire in the cluster server's
	// handler before each request read and each response write, keyed by
	// the remote address — the server half of the PointConn seam, so a
	// chaos test can poison either side of the exchange.
	PointServeRead  Point = "cluster.serve.read"
	PointServeWrite Point = "cluster.serve.write"
	// PointXfer fires in the cluster coordinator around subscription
	// state transfer, keyed by "partition→destination" — the seam for
	// truncated or crashed handoffs.
	PointXfer Point = "cluster.xfer"
	// PointDelivery fires in the Delivery wrapper before a report is
	// handed to the real sink.
	PointDelivery Point = "delivery"
	// PointDeliveryAck fires in the Delivery wrapper after the sink
	// accepted the report but before the Reporter learns it: a fault here
	// makes the Reporter retry an already-delivered report — the
	// legitimate duplicate the at-least-once contract allows.
	PointDeliveryAck Point = "delivery.ack"

	// PointSave fires in the warehouse before a snapshot's manifest
	// installs (after the fsynced temp file is written, before the rename
	// commits it) — the torn-install window of Store.Save.
	PointSave Point = "warehouse.save"

	// The WAL's durability points (the wal package reports them to its
	// Hook by these same strings; it cannot import this package, so the
	// names are duplicated by contract, pinned by a test).
	PointWALAppend            Point = "wal.append"
	PointWALAppendDone        Point = "wal.append.done"
	PointWALCheckpointTemp    Point = "wal.checkpoint.temp"
	PointWALCheckpointInstall Point = "wal.checkpoint.install"
	PointWALCheckpointCompact Point = "wal.checkpoint.compact"
	// The File-level pair sits one level below the Log's append points:
	// wal.file.append fires before the OS write, wal.file.sync between
	// the write and the fsync — the page-cache window.
	PointWALFileAppend Point = "wal.file.append"
	PointWALFileSync   Point = "wal.file.sync"

	// The notification change-stream's durability points (same
	// duplicated-by-contract discipline as the wal ops, pinned by a
	// test): stream.append before a batch is encoded and written,
	// stream.read before any poll or recovery scan touches segment or
	// cursor bytes, cursor.commit between consuming a batch and writing
	// the cursor temp file, cursor.commit.install between the fsynced
	// temp file and the rename that makes the new offset durable.
	PointStreamAppend  Point = "stream.append"
	PointStreamRead    Point = "stream.read"
	PointCursorCommit  Point = "cursor.commit"
	PointCursorInstall Point = "cursor.commit.install"
)

// Mode is the kind of fault a rule injects.
type Mode int

const (
	// ModeError makes the operation fail with ErrInjected.
	ModeError Mode = iota
	// ModeLatency delays the operation by the rule's Latency before
	// letting it proceed (on a wrapped conn this is how read/write
	// deadlines get exercised).
	ModeLatency
	// ModeDrop silently swallows the operation: a wrapped conn's Write
	// reports success without transmitting, a wrapped Delivery loses the
	// report without an error. The peer — or the chaos test's ledger —
	// notices, not the caller.
	ModeDrop
	// ModeTruncate lets a wrapped conn's Write transmit only half the
	// buffer before failing, leaving a torn frame on the wire.
	ModeTruncate
	// ModeCrash kills the process via the injector's Exit function
	// (os.Exit(2) by default) the moment the rule fires — the crash
	// harness's kill switch, planted at WAL and delivery points. A test
	// may stub Exit with a function that returns; the faulted operation
	// then fails with ErrInjected so the stubbed crash is still loud.
	ModeCrash
)

// String names the mode for stats and error text.
func (m Mode) String() string {
	switch m {
	case ModeError:
		return "error"
	case ModeLatency:
		return "latency"
	case ModeDrop:
		return "drop"
	case ModeTruncate:
		return "truncate"
	case ModeCrash:
		return "crash"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// ErrInjected is the root of every injected failure.
var ErrInjected = errors.New("faults: injected failure")

// Rule arms one fault at one point.
type Rule struct {
	Point Point
	Mode  Mode
	// Prob is the firing probability in [0,1]; 0 is treated as 1 (always
	// fire), so the zero value of a Rule with just Point set is "always
	// fail here".
	Prob float64
	// Count caps how many times the rule fires; 0 is unlimited.
	Count int
	// Skip lets the first Skip matching operations pass before the rule
	// becomes eligible to fire — "crash on the Nth append", the knob the
	// crash harness sweeps to hit every iteration of a durability point.
	Skip int
	// Latency is the delay of a ModeLatency fault.
	Latency time.Duration
	// Match, when non-empty, restricts the rule to keys containing it as
	// a substring (keys are URLs at the crawler points, remote addresses
	// at the conn point, subscription names at delivery).
	Match string
}

// Fault is one injected fault decision.
type Fault struct {
	Point   Point
	Mode    Mode
	Latency time.Duration
	// Err is the error the faulted operation should return (nil for
	// ModeLatency and ModeDrop, whose operations do not fail outright).
	Err error
}

type ruleState struct {
	rule  Rule
	fired int
	seen  int // matching operations skipped so far (Rule.Skip)
}

// PointStats counts injected faults at one point, by mode.
type PointStats struct {
	Errors    uint64
	Latencies uint64
	Drops     uint64
	Truncates uint64
	Crashes   uint64
}

// Total sums the counters.
func (p PointStats) Total() uint64 {
	return p.Errors + p.Latencies + p.Drops + p.Truncates + p.Crashes
}

// Injector decides, deterministically, which operations fault. The zero
// value is unusable; construct with New. Safe for concurrent use.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules []*ruleState
	stats map[Point]*PointStats

	// Sleep performs ModeLatency delays. It defaults to time.Sleep;
	// virtual-clock tests may substitute a recording stub.
	//xyvet:ignore nondeterm -- fault injection deliberately delays I/O; the func is injectable
	Sleep func(time.Duration)

	// Exit performs ModeCrash kills. It defaults to os.Exit; tests that
	// only want to observe the crash decision substitute a function that
	// returns (it is called with the injector's mutex held, so a stub
	// must not call back into the injector).
	Exit func(code int)
}

// New returns an injector drawing from the given seed.
func New(seed int64) *Injector {
	return &Injector{
		rng:   rand.New(rand.NewSource(seed)),
		stats: make(map[Point]*PointStats),
		//xyvet:ignore nondeterm -- deliberate real delay, injectable for tests
		Sleep: time.Sleep,
		Exit:  os.Exit,
	}
}

// Enable arms a rule. Rules at the same point are consulted in the order
// they were armed; the first one that fires wins.
func (in *Injector) Enable(r Rule) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = append(in.rules, &ruleState{rule: r})
}

// Clear disarms every rule (stats are kept). Operations in flight finish
// with whatever decision they already drew.
func (in *Injector) Clear() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = nil
}

// ClearPoint disarms the rules of one point.
func (in *Injector) ClearPoint(p Point) {
	in.mu.Lock()
	defer in.mu.Unlock()
	kept := in.rules[:0]
	for _, rs := range in.rules {
		if rs.rule.Point != p {
			kept = append(kept, rs)
		}
	}
	in.rules = kept
}

// Fire consults the rules of point for the given key and returns the
// fault to inject, or nil to proceed normally. A nil injector never
// faults, so callers can hold an optional *Injector field and call
// through it unconditionally.
func (in *Injector) Fire(p Point, key string) *Fault {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, rs := range in.rules {
		r := &rs.rule
		if r.Point != p {
			continue
		}
		if r.Match != "" && !strings.Contains(key, r.Match) {
			continue
		}
		if rs.seen < r.Skip {
			rs.seen++
			continue
		}
		if r.Count > 0 && rs.fired >= r.Count {
			continue
		}
		if r.Prob > 0 && r.Prob < 1 && in.rng.Float64() >= r.Prob {
			continue
		}
		rs.fired++
		st := in.stats[p]
		if st == nil {
			st = &PointStats{}
			in.stats[p] = st
		}
		f := &Fault{Point: p, Mode: r.Mode, Latency: r.Latency}
		switch r.Mode {
		case ModeError:
			st.Errors++
			f.Err = fmt.Errorf("%w: %s at %s (%s)", ErrInjected, r.Mode, p, key)
		case ModeLatency:
			st.Latencies++
		case ModeDrop:
			st.Drops++
		case ModeTruncate:
			st.Truncates++
			f.Err = fmt.Errorf("%w: %s at %s (%s)", ErrInjected, r.Mode, p, key)
		case ModeCrash:
			st.Crashes++
			if in.Exit != nil {
				// os.Exit never returns; stubs are documented not to
				// call back into the injector.
				//xyvet:ignore lockcheck
				in.Exit(2)
			}
			// Only a stubbed Exit reaches here; fail the operation so
			// the un-taken crash is still observable.
			f.Err = fmt.Errorf("%w: %s at %s (%s)", ErrInjected, r.Mode, p, key)
		}
		return f
	}
	return nil
}

// Check is the inline form used at the crawler seams: it fires point,
// applies latency faults via Sleep, and returns the error of error-mode
// faults (drop and truncate make no sense without a wrapped operation and
// are reported as errors too, so a misconfigured rule is loud).
func (in *Injector) Check(p Point, key string) error {
	f := in.Fire(p, key)
	if f == nil {
		return nil
	}
	if f.Mode == ModeLatency {
		in.sleep(f.Latency)
		return nil
	}
	if f.Err == nil {
		f.Err = fmt.Errorf("%w: %s at %s (%s)", ErrInjected, f.Mode, p, key)
	}
	return f.Err
}

func (in *Injector) sleep(d time.Duration) {
	if in == nil || d <= 0 {
		return
	}
	in.mu.Lock()
	sleep := in.Sleep
	in.mu.Unlock()
	if sleep != nil {
		sleep(d)
	}
}

// Stats snapshots the per-point injection counters.
func (in *Injector) Stats() map[Point]PointStats {
	out := make(map[Point]PointStats)
	if in == nil {
		return out
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for p, st := range in.stats {
		out[p] = *st
	}
	return out
}
