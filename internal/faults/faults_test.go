package faults

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"xymon/internal/reporter"
	"xymon/internal/stream"
	"xymon/internal/wal"
)

func TestCheckErrorMode(t *testing.T) {
	in := New(1)
	if err := in.Check(PointFetch, "http://a/"); err != nil {
		t.Fatalf("unarmed injector faulted: %v", err)
	}
	in.Enable(Rule{Point: PointFetch, Mode: ModeError})
	err := in.Check(PointFetch, "http://a/")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("Check = %v, want ErrInjected", err)
	}
	// Other points stay clean.
	if err := in.Check(PointCommit, "http://a/"); err != nil {
		t.Fatalf("commit point faulted: %v", err)
	}
	in.Clear()
	if err := in.Check(PointFetch, "http://a/"); err != nil {
		t.Fatalf("cleared injector faulted: %v", err)
	}
	st := in.Stats()[PointFetch]
	if st.Errors != 1 || st.Total() != 1 {
		t.Errorf("stats = %+v, want 1 error", st)
	}
}

func TestNilInjectorIsTransparent(t *testing.T) {
	var in *Injector
	if f := in.Fire(PointFetch, "x"); f != nil {
		t.Errorf("nil injector fired %+v", f)
	}
	if err := in.Check(PointFetch, "x"); err != nil {
		t.Errorf("nil injector Check = %v", err)
	}
	if len(in.Stats()) != 0 {
		t.Error("nil injector has stats")
	}
}

func TestRuleCountAndMatch(t *testing.T) {
	in := New(2)
	in.Enable(Rule{Point: PointFetch, Mode: ModeError, Count: 2, Match: "siteA"})
	fails := 0
	for i := 0; i < 5; i++ {
		if in.Check(PointFetch, "http://siteA/p.xml") != nil {
			fails++
		}
	}
	if fails != 2 {
		t.Errorf("count-capped rule fired %d times, want 2", fails)
	}
	if err := in.Check(PointFetch, "http://siteB/p.xml"); err != nil {
		t.Errorf("unmatched key faulted: %v", err)
	}
}

func TestProbabilityIsDeterministic(t *testing.T) {
	fire := func() []bool {
		in := New(42)
		in.Enable(Rule{Point: PointFetch, Mode: ModeError, Prob: 0.5})
		var out []bool
		for i := 0; i < 64; i++ {
			out = append(out, in.Check(PointFetch, "k") != nil)
		}
		return out
	}
	a, b := fire(), fire()
	some, all := false, true
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
		some = some || a[i]
		all = all && a[i]
	}
	if !some || all {
		t.Errorf("prob 0.5 fired on %v — expected a mix", a)
	}
}

func TestLatencyUsesInjectedSleep(t *testing.T) {
	in := New(3)
	var slept time.Duration
	in.Sleep = func(d time.Duration) { slept += d }
	in.Enable(Rule{Point: PointDelivery, Mode: ModeLatency, Latency: 250 * time.Millisecond})
	if err := in.Check(PointDelivery, "S"); err != nil {
		t.Fatalf("latency fault errored: %v", err)
	}
	if slept != 250*time.Millisecond {
		t.Errorf("slept %v, want 250ms", slept)
	}
}

// pipeConn builds a connected TCP pair so deadline semantics are real.
func pipeConn(t *testing.T) (client, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			close(done)
			return
		}
		done <- c
	}()
	client, err = net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	server, ok := <-done
	if !ok {
		t.Fatal("accept failed")
	}
	t.Cleanup(func() { client.Close(); server.Close() })
	return client, server
}

func TestConnErrorModePoisons(t *testing.T) {
	raw, _ := pipeConn(t)
	in := New(4)
	in.Enable(Rule{Point: PointConn, Mode: ModeError, Count: 1})
	conn := WrapConn(raw, in, PointConn)
	if _, err := conn.Write([]byte("hello")); !errors.Is(err, ErrInjected) {
		t.Fatalf("Write = %v, want ErrInjected", err)
	}
	// The rule is exhausted, but the conn stays broken — like a real
	// TCP stream after a RST.
	if _, err := conn.Write([]byte("again")); !errors.Is(err, ErrInjected) {
		t.Errorf("poisoned conn Write = %v, want sticky ErrInjected", err)
	}
}

func TestConnDropWriteSwallows(t *testing.T) {
	raw, peer := pipeConn(t)
	in := New(5)
	in.Enable(Rule{Point: PointConn, Mode: ModeDrop, Count: 1})
	conn := WrapConn(raw, in, PointConn)
	if n, err := conn.Write([]byte("vanish")); err != nil || n != 6 {
		t.Fatalf("dropped Write = (%d, %v), want silent success", n, err)
	}
	// The peer must see nothing: a bounded read times out.
	peer.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	buf := make([]byte, 16)
	if n, err := peer.Read(buf); err == nil {
		t.Errorf("peer read %d bytes of a dropped write", n)
	}
	// Next write goes through.
	if _, err := conn.Write([]byte("ok")); err != nil {
		t.Fatalf("post-drop Write: %v", err)
	}
	peer.SetReadDeadline(time.Now().Add(2 * time.Second))
	if n, _ := peer.Read(buf); n != 2 {
		t.Errorf("peer read %d bytes, want 2", n)
	}
}

func TestConnDropReadBlocksUntilDeadline(t *testing.T) {
	raw, peer := pipeConn(t)
	in := New(6)
	in.Enable(Rule{Point: PointConn, Mode: ModeDrop, Count: 1})
	conn := WrapConn(raw, in, PointConn)
	if _, err := peer.Write([]byte("data")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	start := time.Now()
	buf := make([]byte, 16)
	_, err := conn.Read(buf)
	if err == nil {
		t.Fatal("dropped read returned data")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Errorf("dropped read error = %v, want timeout", err)
	}
	if time.Since(start) < 50*time.Millisecond {
		t.Errorf("dropped read returned after %v, want to block until the deadline", time.Since(start))
	}
}

func TestConnTruncateWrite(t *testing.T) {
	raw, peer := pipeConn(t)
	in := New(7)
	in.Enable(Rule{Point: PointConn, Mode: ModeTruncate, Count: 1})
	conn := WrapConn(raw, in, PointConn)
	n, err := conn.Write([]byte("12345678"))
	if !errors.Is(err, ErrInjected) || n != 4 {
		t.Fatalf("truncated Write = (%d, %v), want (4, ErrInjected)", n, err)
	}
	peer.SetReadDeadline(time.Now().Add(2 * time.Second))
	got, _ := io.ReadAll(peer)
	if string(got) != "1234" {
		t.Errorf("peer saw %q, want the torn half %q", got, "1234")
	}
}

type countSink struct{ n int }

func (s *countSink) Deliver(*reporter.Report) error { s.n++; return nil }

func TestFaultyDelivery(t *testing.T) {
	in := New(8)
	sink := &countSink{}
	d := WrapDelivery(sink, in)
	rep := &reporter.Report{Subscription: "S"}

	if err := d.Deliver(rep); err != nil || sink.n != 1 {
		t.Fatalf("clean delivery = %v (n=%d)", err, sink.n)
	}
	in.Enable(Rule{Point: PointDelivery, Mode: ModeError, Count: 1})
	if err := d.Deliver(rep); !errors.Is(err, ErrInjected) {
		t.Fatalf("error-mode delivery = %v", err)
	}
	in.Enable(Rule{Point: PointDelivery, Mode: ModeDrop, Count: 1})
	if err := d.Deliver(rep); err != nil {
		t.Fatalf("drop-mode delivery = %v, want silent loss", err)
	}
	if sink.n != 1 || d.Lost() != 1 {
		t.Errorf("sink=%d lost=%d, want 1/1", sink.n, d.Lost())
	}
	// Cleared injector: delivery flows again.
	if err := d.Deliver(rep); err != nil || sink.n != 2 {
		t.Errorf("post-fault delivery = %v (n=%d)", err, sink.n)
	}
}

func TestCrashModeCallsExit(t *testing.T) {
	in := New(1)
	var code int
	calls := 0
	in.Exit = func(c int) { code = c; calls++ }
	in.Enable(Rule{Point: PointWALAppend, Mode: ModeCrash, Count: 1})

	if err := in.Check(PointWALAppend, "subs"); !errors.Is(err, ErrInjected) {
		t.Fatalf("stubbed crash = %v, want ErrInjected", err)
	}
	if calls != 1 || code != 2 {
		t.Fatalf("Exit called %d times with code %d, want once with 2", calls, code)
	}
	if st := in.Stats()[PointWALAppend]; st.Crashes != 1 {
		t.Errorf("Crashes = %d, want 1", st.Crashes)
	}
	if err := in.Check(PointWALAppend, "subs"); err != nil {
		t.Errorf("after Count exhausted: %v", err)
	}
}

func TestRuleSkipDefersFiring(t *testing.T) {
	in := New(1)
	in.Exit = func(int) {}
	in.Enable(Rule{Point: PointWALAppend, Mode: ModeCrash, Skip: 3, Count: 1})
	for i := 0; i < 3; i++ {
		if err := in.Check(PointWALAppend, "k"); err != nil {
			t.Fatalf("skipped occurrence %d faulted: %v", i, err)
		}
	}
	if err := in.Check(PointWALAppend, "k"); !errors.Is(err, ErrInjected) {
		t.Fatalf("occurrence 4 = %v, want the crash", err)
	}
	// Skip only counts matching keys.
	in.Clear()
	in.Enable(Rule{Point: PointWALAppend, Mode: ModeError, Skip: 1, Match: "yes"})
	if err := in.Check(PointWALAppend, "no"); err != nil {
		t.Fatalf("non-matching key consumed a skip: %v", err)
	}
	if err := in.Check(PointWALAppend, "yes"); err != nil {
		t.Fatalf("first match should be skipped: %v", err)
	}
	if err := in.Check(PointWALAppend, "yes"); !errors.Is(err, ErrInjected) {
		t.Fatalf("second match = %v, want fault", err)
	}
}

// TestWALPointNamesMatch pins the cross-package contract: the wal
// package reports its durability points by string (it cannot import
// faults), and the harness arms rules by these Point constants.
func TestWALPointNamesMatch(t *testing.T) {
	pairs := map[Point]string{
		PointWALAppend:            wal.OpAppend,
		PointWALAppendDone:        wal.OpAppendDone,
		PointWALCheckpointTemp:    wal.OpCheckpointTemp,
		PointWALCheckpointInstall: wal.OpCheckpointInstall,
		PointWALCheckpointCompact: wal.OpCheckpointCompact,
		PointWALFileAppend:        wal.OpFileAppend,
		PointWALFileSync:          wal.OpFileSync,
		PointStreamAppend:         stream.OpAppend,
		PointStreamRead:           stream.OpRead,
		PointCursorCommit:         stream.OpCursorCommit,
		PointCursorInstall:        stream.OpCursorInstall,
	}
	for p, op := range pairs {
		if string(p) != op {
			t.Errorf("faults point %q != wal op %q", p, op)
		}
	}
}

func TestDeliveryAckFault(t *testing.T) {
	in := New(3)
	sink := &countSink{}
	d := WrapDelivery(sink, in)
	rep := &reporter.Report{Subscription: "S"}
	in.Enable(Rule{Point: PointDeliveryAck, Mode: ModeError, Count: 1})

	// The sink accepted the report; the caller still sees a failure —
	// exactly the lost-ack shape that forces an at-least-once duplicate.
	if err := d.Deliver(rep); !errors.Is(err, ErrInjected) {
		t.Fatalf("ack fault = %v, want ErrInjected", err)
	}
	if sink.n != 1 {
		t.Fatalf("sink deliveries = %d, want 1 (fault fires after acceptance)", sink.n)
	}
	if err := d.Deliver(rep); err != nil || sink.n != 2 {
		t.Errorf("retry = %v (n=%d), want clean duplicate", err, sink.n)
	}
}
