package faults

import (
	"sync/atomic"

	"xymon/internal/reporter"
)

// FaultyDelivery wraps a reporter.Delivery and consults an Injector at
// PointDelivery before every report. Error-mode faults fail the delivery
// (feeding the Reporter's retry queue); drop faults lose the report
// silently — the Lost counter is the only trace, standing in for the mail
// that sendmail accepted and never sent; latency faults delay it.
type FaultyDelivery struct {
	sink reporter.Delivery
	in   *Injector
	lost atomic.Uint64
}

// WrapDelivery wraps sink so Deliver consults in.
func WrapDelivery(sink reporter.Delivery, in *Injector) *FaultyDelivery {
	return &FaultyDelivery{sink: sink, in: in}
}

// Deliver applies armed faults, then delivers to the wrapped sink. The
// rule key is the report's subscription name.
func (d *FaultyDelivery) Deliver(rep *reporter.Report) error {
	f := d.in.Fire(PointDelivery, rep.Subscription)
	if f != nil {
		switch f.Mode {
		case ModeLatency:
			d.in.sleep(f.Latency)
		case ModeDrop:
			d.lost.Add(1)
			return nil
		default: // ModeError, ModeTruncate, ModeCrash (stubbed Exit)
			if f.Err != nil {
				return f.Err
			}
			return ErrInjected
		}
	}
	if err := d.sink.Deliver(rep); err != nil {
		return err
	}
	// The sink has the report; a fault (or crash) here is the lost ack:
	// the Reporter will retry, and the duplicate that results is the
	// at-least-once contract, not a bug.
	return d.in.Check(PointDeliveryAck, rep.Subscription)
}

// Lost counts reports swallowed by drop-mode faults.
func (d *FaultyDelivery) Lost() uint64 { return d.lost.Load() }
