package faults

import (
	"net"
	"sync"
	"time"
)

// Conn wraps a net.Conn and consults an Injector on every Read and Write.
// Error-mode faults fail the operation and poison the connection (every
// later operation fails too, the way a broken TCP stream behaves); latency
// faults delay it; drop faults swallow writes whole; truncate faults
// transmit half the buffer then fail. The zero Injector case (nil) makes
// the wrapper transparent.
type Conn struct {
	net.Conn
	in    *Injector
	point Point
	key   string

	mu     sync.Mutex
	broken error // first injected hard failure; sticky
}

// WrapConn wraps conn so Read/Write consult in at point. The key passed to
// the rules is the remote address (rule Match selects one peer out of a
// cluster).
func WrapConn(conn net.Conn, in *Injector, point Point) *Conn {
	key := ""
	if addr := conn.RemoteAddr(); addr != nil {
		key = addr.String()
	}
	return &Conn{Conn: conn, in: in, point: point, key: key}
}

// Read applies armed faults, then reads from the wrapped conn.
func (c *Conn) Read(b []byte) (int, error) {
	if err := c.apply(); err != nil {
		return 0, err
	}
	f := c.in.Fire(c.point, c.key)
	if f == nil {
		return c.Conn.Read(b)
	}
	switch f.Mode {
	case ModeLatency:
		c.in.sleep(f.Latency)
		return c.Conn.Read(b)
	case ModeDrop:
		// A dropped read behaves like a peer that stopped talking: the
		// arriving bytes are discarded and the caller stays blocked until
		// its deadline fires (or forever, if it set none — which is
		// exactly the hang the deadline discipline exists to prevent).
		scratch := make([]byte, 512)
		for {
			if _, err := c.Conn.Read(scratch); err != nil {
				return 0, err
			}
		}
	default: // ModeError, ModeTruncate
		err := c.breakWith(f)
		_ = c.Conn.Close()
		return 0, err
	}
}

// Write applies armed faults, then writes to the wrapped conn.
func (c *Conn) Write(b []byte) (int, error) {
	if err := c.apply(); err != nil {
		return 0, err
	}
	f := c.in.Fire(c.point, c.key)
	if f == nil {
		return c.Conn.Write(b)
	}
	switch f.Mode {
	case ModeLatency:
		c.in.sleep(f.Latency)
		return c.Conn.Write(b)
	case ModeDrop:
		// Report success without transmitting: the peer times out, the
		// caller does not.
		return len(b), nil
	case ModeTruncate:
		n, _ := c.Conn.Write(b[:len(b)/2])
		err := c.breakWith(f)
		_ = c.Conn.Close()
		return n, err
	default: // ModeError
		err := c.breakWith(f)
		_ = c.Conn.Close()
		return 0, err
	}
}

// apply returns the sticky failure of a poisoned connection.
func (c *Conn) apply() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.broken
}

// breakWith poisons the connection with the fault's error and returns it.
func (c *Conn) breakWith(f *Fault) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken == nil {
		if f.Err != nil {
			c.broken = f.Err
		} else {
			c.broken = ErrInjected
		}
	}
	return c.broken
}

// Dialer returns a dial function that wraps every produced connection —
// the shape cluster.WithDialer expects.
func Dialer(in *Injector, point Point, timeout time.Duration) func(addr string) (net.Conn, error) {
	return func(addr string) (net.Conn, error) {
		if err := in.Check(point, addr); err != nil {
			return nil, err
		}
		conn, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			return nil, err
		}
		return WrapConn(conn, in, point), nil
	}
}
