package xydiff

import (
	"math/rand"
	"strings"
	"testing"

	"xymon/internal/xmldom"
)

func mustDiff(t *testing.T, oldXML, newXML string) (*xmldom.Document, *xmldom.Document, *Delta) {
	t.Helper()
	old := xmldom.MustParse(oldXML)
	new := xmldom.MustParse(newXML)
	delta, err := Diff(old, new)
	if err != nil {
		t.Fatalf("Diff: %v", err)
	}
	return old, new, delta
}

func checkApply(t *testing.T, old, new *xmldom.Document, delta *Delta) {
	t.Helper()
	rebuilt, err := Apply(old, delta)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if got, want := rebuilt.XML(), new.XML(); got != want {
		t.Fatalf("Apply mismatch:\n got %s\nwant %s\ndelta %s", got, want, delta.RenderXML("d").XML())
	}
	// XIDs must also match: old + delta must reproduce identities.
	var gotXIDs, wantXIDs []xmldom.XID
	rebuilt.Root.PreOrder(func(n *xmldom.Node) bool { gotXIDs = append(gotXIDs, n.XID); return true })
	new.Root.PreOrder(func(n *xmldom.Node) bool { wantXIDs = append(wantXIDs, n.XID); return true })
	if len(gotXIDs) != len(wantXIDs) {
		t.Fatalf("XID count mismatch: %d vs %d", len(gotXIDs), len(wantXIDs))
	}
	for i := range gotXIDs {
		if gotXIDs[i] != wantXIDs[i] {
			t.Fatalf("XID[%d] = %d, want %d", i, gotXIDs[i], wantXIDs[i])
		}
	}
}

func TestDiffIdentical(t *testing.T) {
	old, new, delta := mustDiff(t,
		`<c><p><n>radio</n></p></c>`,
		`<c><p><n>radio</n></p></c>`)
	if !delta.Empty() {
		t.Errorf("identical documents: delta = %s", delta.RenderXML("d").XML())
	}
	if new.Root.XID != old.Root.XID {
		t.Error("XIDs not propagated on identical documents")
	}
	checkApply(t, old, new, delta)
}

func TestDiffInsert(t *testing.T) {
	old, new, delta := mustDiff(t,
		`<catalog><product>radio</product></catalog>`,
		`<catalog><product>radio</product><product>tv</product></catalog>`)
	if len(delta.Ops) != 1 || delta.Ops[0].Kind != OpInsert {
		t.Fatalf("delta = %s, want one insert", delta.RenderXML("d").XML())
	}
	op := delta.Ops[0]
	if op.Pos != 1 || op.Parent != old.Root.XID {
		t.Errorf("insert op = %+v, want pos 1 under root", op)
	}
	// The surviving product must keep its XID.
	if new.Root.Children[0].XID != old.Root.Children[0].XID {
		t.Error("matched product lost its XID")
	}
	// The inserted product must have a fresh XID.
	if new.Root.Children[1].XID == old.Root.Children[0].XID || new.Root.Children[1].XID == 0 {
		t.Error("inserted product has no fresh XID")
	}
	checkApply(t, old, new, delta)
}

func TestDiffInsertAtFront(t *testing.T) {
	old, new, delta := mustDiff(t,
		`<c><p>b</p></c>`,
		`<c><p>a</p><p>b</p></c>`)
	if len(delta.Ops) != 1 || delta.Ops[0].Kind != OpInsert || delta.Ops[0].Pos != 0 {
		t.Fatalf("delta = %s, want one insert at pos 0", delta.RenderXML("d").XML())
	}
	checkApply(t, old, new, delta)
}

func TestDiffDelete(t *testing.T) {
	old, new, delta := mustDiff(t,
		`<c><p>a</p><p>b</p><p>c</p></c>`,
		`<c><p>a</p><p>c</p></c>`)
	if len(delta.Ops) != 1 || delta.Ops[0].Kind != OpDelete {
		t.Fatalf("delta = %s, want one delete", delta.RenderXML("d").XML())
	}
	if delta.Ops[0].Subtree == nil || delta.Ops[0].Subtree.TextContent() != "b" {
		t.Errorf("deleted subtree = %v, want <p>b</p>", delta.Ops[0].Subtree)
	}
	checkApply(t, old, new, delta)
}

func TestDiffUpdateText(t *testing.T) {
	old, new, delta := mustDiff(t,
		`<c><price>10</price></c>`,
		`<c><price>12</price></c>`)
	if len(delta.Ops) != 1 || delta.Ops[0].Kind != OpUpdate || !delta.Ops[0].TextChanged {
		t.Fatalf("delta = %s, want one text update", delta.RenderXML("d").XML())
	}
	if delta.Ops[0].NewText != "12" {
		t.Errorf("NewText = %q", delta.Ops[0].NewText)
	}
	checkApply(t, old, new, delta)
}

func TestDiffUpdateAttrs(t *testing.T) {
	old, new, delta := mustDiff(t,
		`<c><site url="http://a"/></c>`,
		`<c><site url="http://b"/></c>`)
	if len(delta.Ops) != 1 || delta.Ops[0].Kind != OpUpdate || !delta.Ops[0].AttrsChanged {
		t.Fatalf("delta = %s, want one attr update", delta.RenderXML("d").XML())
	}
	checkApply(t, old, new, delta)
}

func TestDiffMixedEdit(t *testing.T) {
	old, new, delta := mustDiff(t,
		`<catalog>
			<product><name>radio</name><price>10</price></product>
			<product><name>tv</name><price>200</price></product>
		</catalog>`,
		`<catalog>
			<product><name>radio</name><price>12</price></product>
			<product><name>camera</name><price>99</price></product>
			<product><name>tv</name><price>200</price></product>
		</catalog>`)
	if delta.Empty() {
		t.Fatal("expected non-empty delta")
	}
	checkApply(t, old, new, delta)
}

func TestDiffRejectsUnrelatedRoots(t *testing.T) {
	old := xmldom.MustParse(`<a/>`)
	new := xmldom.MustParse(`<b/>`)
	if _, err := Diff(old, new); err == nil {
		t.Error("Diff should reject documents with different roots")
	}
	if _, err := Diff(nil, new); err == nil {
		t.Error("Diff should reject nil old document")
	}
}

func TestApplyErrors(t *testing.T) {
	old := xmldom.MustParse(`<a><b/></a>`)
	cases := []Delta{
		{Ops: []Op{{Kind: OpDelete, XID: 999}}},
		{Ops: []Op{{Kind: OpUpdate, XID: 999, TextChanged: true}}},
		{Ops: []Op{{Kind: OpInsert, Parent: 999, Subtree: xmldom.Element("x")}}},
		{Ops: []Op{{Kind: OpInsert, Parent: old.Root.XID, Pos: 99, Subtree: xmldom.Element("x")}}},
		{Ops: []Op{{Kind: OpDelete, XID: old.Root.XID}}}, // cannot delete root
	}
	for i, d := range cases {
		if _, err := Apply(old, &d); err == nil {
			t.Errorf("case %d: Apply should fail", i)
		}
	}
}

func TestClassifyNewUpdatedDeleted(t *testing.T) {
	_, new, delta := mustDiff(t,
		`<catalog>
			<product><name>radio</name><price>10</price></product>
			<product><name>tv</name></product>
		</catalog>`,
		`<catalog>
			<product><name>radio</name><price>12</price></product>
			<promo><title>sale</title></promo>
		</catalog>`)
	cl := Classify(new, delta)
	newTags := tagSet(cl.NewElems)
	if !newTags["promo"] || !newTags["title"] {
		t.Errorf("NewElems = %v, want inserted promo subtree", newTags)
	}
	updTags := tagSet(cl.UpdatedElems)
	if !updTags["catalog"] || !updTags["product"] || !updTags["price"] {
		t.Errorf("UpdatedElems = %v, want catalog, product, price", updTags)
	}
	var deletedText []string
	for _, s := range cl.DeletedSubtrees {
		deletedText = append(deletedText, s.TextContent())
	}
	if len(deletedText) != 1 || deletedText[0] != "tv" {
		t.Errorf("DeletedSubtrees = %v, want [tv]", deletedText)
	}
	// An element in an inserted subtree must not also be reported updated.
	for _, n := range cl.UpdatedElems {
		for _, m := range cl.NewElems {
			if n == m {
				t.Errorf("element %v both new and updated", n)
			}
		}
	}
}

func TestClassifyEmptyDelta(t *testing.T) {
	doc := xmldom.MustParse(`<a/>`)
	cl := Classify(doc, &Delta{})
	if len(cl.NewElems)+len(cl.UpdatedElems)+len(cl.DeletedSubtrees) != 0 {
		t.Error("empty delta should classify nothing")
	}
}

func tagSet(nodes []*xmldom.Node) map[string]bool {
	s := make(map[string]bool)
	for _, n := range nodes {
		s[n.Tag] = true
	}
	return s
}

func TestRenderXML(t *testing.T) {
	_, _, delta := mustDiff(t,
		`<c><p>a</p><q>x</q></c>`,
		`<c><p>b</p><r>y</r></c>`)
	out := delta.RenderXML("Query").XML()
	if !strings.HasPrefix(out, "<Query-delta>") {
		t.Errorf("RenderXML = %s", out)
	}
	for _, want := range []string{"<updated", "<deleted", "<inserted"} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderXML missing %s: %s", want, out)
		}
	}
	var nild *Delta
	if got := nild.RenderXML("n").XML(); got != "<n-delta/>" {
		t.Errorf("nil delta render = %s", got)
	}
}

// TestDiffApplyPropertyRandomEdits performs random edit scripts on random
// documents and checks that Apply(old, Diff(old,new)) == new, including
// XIDs — the XyDelta invariant.
func TestDiffApplyPropertyRandomEdits(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		old := xmldom.NewDocument(randomTree(rng, 0))
		new := old.Clone()
		mutateTree(rng, new)
		// Diff must not be confused by arbitrary XIDs on the new version:
		// Diff relabels it from scratch.
		new.Root.PreOrder(func(n *xmldom.Node) bool { n.XID = 0; return true })
		delta, err := Diff(old, new)
		if err != nil {
			t.Fatalf("trial %d: Diff: %v", trial, err)
		}
		rebuilt, err := Apply(old, delta)
		if err != nil {
			t.Fatalf("trial %d: Apply: %v\nold %s\nnew %s\ndelta %s",
				trial, err, old.XML(), new.XML(), delta.RenderXML("d").XML())
		}
		if rebuilt.XML() != new.XML() {
			t.Fatalf("trial %d: mismatch\nold   %s\nnew   %s\ngot   %s\ndelta %s",
				trial, old.XML(), new.XML(), rebuilt.XML(), delta.RenderXML("d").XML())
		}
	}
}

var trialTags = []string{"catalog", "product", "name", "price", "desc"}
var trialWords = []string{"radio", "tv", "camera", "10", "200", "hi-fi", "digital"}

func randomTree(rng *rand.Rand, depth int) *xmldom.Node {
	n := xmldom.Element(trialTags[rng.Intn(len(trialTags))])
	if rng.Intn(3) == 0 {
		n.WithAttr("k", trialWords[rng.Intn(len(trialWords))])
	}
	kids := rng.Intn(4)
	for i := 0; i < kids; i++ {
		if depth >= 3 || rng.Intn(3) == 0 {
			if len(n.Children) == 0 || n.Children[len(n.Children)-1].Type != xmldom.TextNode {
				n.AppendChild(xmldom.Text(trialWords[rng.Intn(len(trialWords))]))
			}
		} else {
			n.AppendChild(randomTree(rng, depth+1))
		}
	}
	return n
}

// mutateTree applies 1..5 random edits to the document.
func mutateTree(rng *rand.Rand, doc *xmldom.Document) {
	edits := 1 + rng.Intn(5)
	for e := 0; e < edits; e++ {
		var elems []*xmldom.Node
		doc.Root.PreOrder(func(n *xmldom.Node) bool {
			if n.Type == xmldom.ElementNode {
				elems = append(elems, n)
			}
			return true
		})
		target := elems[rng.Intn(len(elems))]
		switch rng.Intn(4) {
		case 0: // insert a child subtree
			target.InsertChild(rng.Intn(len(target.Children)+1), randomTree(rng, 3))
		case 1: // delete a child
			if len(target.Children) > 0 {
				target.RemoveChild(rng.Intn(len(target.Children)))
			}
		case 2: // update text
			var texts []*xmldom.Node
			doc.Root.PreOrder(func(n *xmldom.Node) bool {
				if n.Type == xmldom.TextNode {
					texts = append(texts, n)
				}
				return true
			})
			if len(texts) > 0 {
				texts[rng.Intn(len(texts))].Text = trialWords[rng.Intn(len(trialWords))]
			}
		case 3: // change attributes
			target.Attrs = nil
			target.WithAttr("k", trialWords[rng.Intn(len(trialWords))])
		}
	}
}

func TestAnnotateText(t *testing.T) {
	_, new, delta := mustDiff(t,
		`<catalog>
			<product><name>radio</name><price>10</price></product>
			<promo><t>sale</t></promo>
		</catalog>`,
		`<catalog>
			<product><name>radio</name><price>12</price></product>
			<extra><t>new</t></extra>
		</catalog>`)
	out := AnnotateText(new, delta)
	checks := []struct{ marker, content string }{
		{"+ ", "<extra>"},
		{"+ ", `"new"`},
		{"~ ", `"12"`},
		{"- ", "<promo>"},
		{"- ", `"sale"`},
		{"  ", "<catalog>"},
		{"  ", "<name>"},
	}
	for _, c := range checks {
		found := false
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, c.marker) && strings.Contains(line, c.content) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("annotated view missing %q line with %s:\n%s", c.marker, c.content, out)
		}
	}
}

func TestAnnotateTextEmptyDelta(t *testing.T) {
	doc := xmldom.MustParse(`<a><b>x</b></a>`)
	out := AnnotateText(doc, &Delta{})
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if !strings.HasPrefix(line, "  ") {
			t.Errorf("unexpected marker in unchanged doc: %q", line)
		}
	}
	if AnnotateText(nil, nil) != "" {
		t.Error("nil doc should render empty")
	}
}
