package xydiff

import (
	"fmt"
	"strings"

	"xymon/internal/xmldom"
)

// AnnotateText renders the new version of a document as an indented tree
// with change markers — the textual counterpart of the paper's "practical
// change editor for the visualization of changes in XML documents"
// (Section 5.2, in the spirit of change editors as found in MS-Word):
//
//   - inserted node (whole subtree)
//     ~ node updated in place (text or attributes)
//   - deleted subtree, shown under its surviving parent
//     unchanged node
//
// The document must be the new version labelled by Diff against the same
// delta.
func AnnotateText(newDoc *xmldom.Document, delta *Delta) string {
	inserted := make(map[xmldom.XID]bool)
	updated := make(map[xmldom.XID]bool)
	deleted := make(map[xmldom.XID][]*xmldom.Node) // parent XID -> subtrees
	if delta != nil {
		for _, op := range delta.Ops {
			switch op.Kind {
			case OpInsert:
				inserted[op.XID] = true
			case OpUpdate:
				updated[op.XID] = true
			case OpDelete:
				deleted[op.Parent] = append(deleted[op.Parent], op.Subtree)
			}
		}
	}
	var b strings.Builder
	var walk func(n *xmldom.Node, depth int, inInsert bool)
	walk = func(n *xmldom.Node, depth int, inInsert bool) {
		marker := "  "
		switch {
		case inInsert || inserted[n.XID]:
			marker = "+ "
			inInsert = true
		case updated[n.XID]:
			marker = "~ "
		}
		writeLine(&b, marker, depth, n)
		for _, c := range n.Children {
			walk(c, depth+1, inInsert)
		}
		for _, sub := range deleted[n.XID] {
			writeDeleted(&b, depth+1, sub)
		}
	}
	if newDoc != nil && newDoc.Root != nil {
		walk(newDoc.Root, 0, false)
	}
	return b.String()
}

func writeDeleted(b *strings.Builder, depth int, n *xmldom.Node) {
	writeLine(b, "- ", depth, n)
	for _, c := range n.Children {
		writeDeleted(b, depth+1, c)
	}
}

func writeLine(b *strings.Builder, marker string, depth int, n *xmldom.Node) {
	b.WriteString(marker)
	b.WriteString(strings.Repeat("  ", depth))
	if n.Type == xmldom.TextNode {
		fmt.Fprintf(b, "%q\n", n.Text)
		return
	}
	b.WriteString("<")
	b.WriteString(n.Tag)
	for _, a := range n.Attrs {
		fmt.Fprintf(b, " %s=%q", a.Name, a.Value)
	}
	b.WriteString(">\n")
}
