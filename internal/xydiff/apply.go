package xydiff

import (
	"fmt"

	"xymon/internal/xmldom"
)

// Apply reconstructs the new version from the old version and a delta
// produced by Diff. The old document is not modified. This is the XyDelta
// property the versioning mechanism relies on: old + delta = new.
func Apply(old *xmldom.Document, delta *Delta) (*xmldom.Document, error) {
	if old == nil || old.Root == nil {
		return nil, fmt.Errorf("xydiff: apply on empty document")
	}
	doc := old.Clone()
	if delta.Empty() {
		return doc, nil
	}
	index := make(map[xmldom.XID]*xmldom.Node)
	doc.Root.PreOrder(func(n *xmldom.Node) bool {
		index[n.XID] = n
		return true
	})
	for _, op := range delta.Ops {
		switch op.Kind {
		case OpDelete:
			n := index[op.XID]
			if n == nil {
				return nil, fmt.Errorf("xydiff: delete of unknown node %d", op.XID)
			}
			if n.Parent == nil {
				return nil, fmt.Errorf("xydiff: cannot delete the root")
			}
			i := n.Parent.ChildIndex(n)
			n.Parent.RemoveChild(i)
			n.PreOrder(func(c *xmldom.Node) bool {
				delete(index, c.XID)
				return true
			})
		case OpUpdate:
			n := index[op.XID]
			if n == nil {
				return nil, fmt.Errorf("xydiff: update of unknown node %d", op.XID)
			}
			if op.TextChanged {
				n.Text = op.NewText
			}
			if op.AttrsChanged {
				n.Attrs = append([]xmldom.Attr(nil), op.NewAttrs...)
			}
		case OpInsert:
			parent := index[op.Parent]
			if parent == nil {
				return nil, fmt.Errorf("xydiff: insert under unknown parent %d", op.Parent)
			}
			if op.Pos < 0 || op.Pos > len(parent.Children) {
				return nil, fmt.Errorf("xydiff: insert position %d out of range under %d", op.Pos, op.Parent)
			}
			sub := op.Subtree.Clone()
			parent.InsertChild(op.Pos, sub)
			sub.PreOrder(func(c *xmldom.Node) bool {
				index[c.XID] = c
				return true
			})
		default:
			return nil, fmt.Errorf("xydiff: unknown op kind %v", op.Kind)
		}
	}
	doc.Relabel()
	return doc, nil
}

// ChangeKind classifies an element of the new version for the element-level
// conditions of the subscription language (Section 5.1): new, updated,
// deleted, unchanged.
type ChangeKind int

const (
	// Unchanged: the element and its whole subtree are identical in both versions.
	Unchanged ChangeKind = iota
	// New: the element was inserted (it is inside an inserted subtree).
	New
	// Updated: something changed inside the element's subtree.
	Updated
	// Deleted: the element existed in the old version only.
	Deleted
)

func (k ChangeKind) String() string {
	switch k {
	case Unchanged:
		return "unchanged"
	case New:
		return "new"
	case Updated:
		return "updated"
	case Deleted:
		return "deleted"
	}
	return fmt.Sprintf("ChangeKind(%d)", int(k))
}

// Classification maps the delta onto the new version's elements: which
// element nodes are new, which are updated (a change happened inside their
// subtree), and the subtrees that were deleted. This is the form the XML
// alerter consumes to raise `new tag`, `updated tag` and `deleted tag`
// atomic events.
type Classification struct {
	// NewElems are element nodes of the new version inside inserted subtrees.
	NewElems []*xmldom.Node
	// UpdatedElems are element nodes of the new version whose subtree
	// changed (ancestors of any operation, and updated nodes themselves).
	UpdatedElems []*xmldom.Node
	// DeletedSubtrees are the removed subtrees, with their old XIDs.
	DeletedSubtrees []*xmldom.Node
}

// Classify projects a delta onto the new version of the document. The new
// version must be the one labelled by Diff (XIDs shared with the delta).
func Classify(newDoc *xmldom.Document, delta *Delta) *Classification {
	cl := &Classification{}
	if delta.Empty() {
		return cl
	}
	index := make(map[xmldom.XID]*xmldom.Node)
	newDoc.Root.PreOrder(func(n *xmldom.Node) bool {
		index[n.XID] = n
		return true
	})
	newSet := make(map[*xmldom.Node]bool)
	updSet := make(map[*xmldom.Node]bool)
	markAncestors := func(n *xmldom.Node) {
		for p := n; p != nil; p = p.Parent {
			if p.Type == xmldom.ElementNode && !newSet[p] {
				updSet[p] = true
			}
		}
	}
	for _, op := range delta.Ops {
		switch op.Kind {
		case OpInsert:
			root := index[op.XID]
			if root == nil {
				continue
			}
			root.PreOrder(func(c *xmldom.Node) bool {
				if c.Type == xmldom.ElementNode {
					newSet[c] = true
				}
				return true
			})
			markAncestors(root.Parent)
		case OpDelete:
			cl.DeletedSubtrees = append(cl.DeletedSubtrees, op.Subtree)
			// The parent of a deleted subtree survives in the new version
			// (same XID); it and its ancestors are updated.
			if p := index[op.Parent]; p != nil {
				markAncestors(p)
			}
		case OpUpdate:
			n := index[op.XID]
			if n == nil {
				continue
			}
			markAncestors(n)
		}
	}
	newDoc.Root.PreOrder(func(n *xmldom.Node) bool {
		if newSet[n] {
			cl.NewElems = append(cl.NewElems, n)
		} else if updSet[n] {
			cl.UpdatedElems = append(cl.UpdatedElems, n)
		}
		return true
	})
	return cl
}
