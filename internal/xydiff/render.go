package xydiff

import (
	"strconv"

	"xymon/internal/xmldom"
)

// RenderXML renders the delta as an XML element named name+"-delta", in the
// shape the paper shows for continuous-query deltas:
//
//	<AmsterdamPaintings-delta>
//	  <inserted ID="556" parent="550" position="4">...subtree...</inserted>
//	  <updated ID="332" .../>
//	  <deleted ID="97">...old subtree...</deleted>
//	</AmsterdamPaintings-delta>
func (d *Delta) RenderXML(name string) *xmldom.Node {
	root := xmldom.Element(name + "-delta")
	if d == nil {
		return root
	}
	for _, op := range d.Ops {
		switch op.Kind {
		case OpInsert:
			e := xmldom.Element("inserted").
				WithAttr("ID", xidString(op.XID)).
				WithAttr("parent", xidString(op.Parent)).
				WithAttr("position", strconv.Itoa(op.Pos))
			if op.Subtree != nil {
				e.AppendChild(op.Subtree.Clone())
			}
			root.AppendChild(e)
		case OpDelete:
			e := xmldom.Element("deleted").WithAttr("ID", xidString(op.XID))
			if op.Subtree != nil {
				e.AppendChild(op.Subtree.Clone())
			}
			root.AppendChild(e)
		case OpUpdate:
			e := xmldom.Element("updated").WithAttr("ID", xidString(op.XID))
			if op.TextChanged {
				e.WithAttr("text", op.NewText)
			}
			if op.AttrsChanged {
				for _, a := range op.NewAttrs {
					e.AppendChild(xmldom.Element("attr").
						WithAttr("name", a.Name).WithAttr("value", a.Value))
				}
			}
			root.AppendChild(e)
		}
	}
	return root
}

func xidString(x xmldom.XID) string {
	return strconv.FormatUint(uint64(x), 10)
}
