// Package xydiff computes and applies deltas between versions of an XML
// document, in the spirit of the XyDelta mechanism the paper builds on
// (Section 5.2 and [17]): elements carry persistent XIDs, a delta lists
// inserted, deleted and updated nodes in terms of those XIDs, and the new
// version of a document can be reconstructed from the old version plus the
// delta. The XML alerter uses the delta to raise element-level change
// events ("new Product", "updated Product contains camera"), and the
// trigger engine uses it to report only the changes of a continuous query
// result.
package xydiff

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"

	"xymon/internal/xmldom"
)

// OpKind is the kind of a delta operation.
type OpKind int

const (
	// OpInsert inserts a subtree under Parent at position Pos.
	OpInsert OpKind = iota
	// OpDelete removes the subtree rooted at XID.
	OpDelete
	// OpUpdate changes the text of a data node or the attributes of an
	// element node, in place.
	OpUpdate
)

func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpUpdate:
		return "update"
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Op is one delta operation.
type Op struct {
	Kind         OpKind
	XID          xmldom.XID    // target node (delete/update) or inserted subtree root
	Parent       xmldom.XID    // insert: parent element
	Pos          int           // insert: position among the parent's children in the new version
	Subtree      *xmldom.Node  // insert: subtree added (carries final XIDs); delete: removed subtree (old XIDs)
	NewText      string        // update of a data node
	NewAttrs     []xmldom.Attr // update of an element's attributes
	TextChanged  bool
	AttrsChanged bool
}

// Delta is an ordered list of operations turning the old version into the
// new one. An empty Ops list means the versions are identical.
type Delta struct {
	Ops []Op
}

// Empty reports whether the delta carries no change.
func (d *Delta) Empty() bool { return d == nil || len(d.Ops) == 0 }

// Diff compares two versions of a document. It labels the nodes of the new
// version in place: nodes matched with the old version inherit its XIDs,
// unmatched (inserted) nodes receive fresh XIDs drawn from the old
// document's counter. It returns the delta from old to new.
//
// Matching is order-preserving per level: children lists are aligned with
// a weighted LCS that strongly prefers identical subtrees (equal hashes)
// and otherwise pairs nodes of the same kind and tag, which keeps deltas
// small on typical edits while guaranteeing Apply reconstructs the new
// version exactly.
func Diff(old, new *xmldom.Document) (*Delta, error) {
	if old == nil || old.Root == nil || new == nil || new.Root == nil {
		return nil, errors.New("xydiff: both versions must have a root")
	}
	d := &differ{doc: old, delta: &Delta{}}
	oh := hashTree(old.Root)
	nh := hashTree(new.Root)
	if old.Root.Type != new.Root.Type || old.Root.Tag != new.Root.Tag {
		return nil, errors.New("xydiff: root elements differ; versions are unrelated documents")
	}
	d.matchNodes(old.Root, new.Root, oh, nh)
	new.SetNextXID(old.NextXID())
	return d.delta, nil
}

type differ struct {
	doc   *xmldom.Document // old document: supplies fresh XIDs
	delta *Delta
}

type hashes map[*xmldom.Node]uint64

// hashTree computes a structural hash for every node of the subtree:
// identical subtrees (tags, attributes, text, order) share a hash.
func hashTree(root *xmldom.Node) hashes {
	h := make(hashes)
	var walk func(n *xmldom.Node) uint64
	walk = func(n *xmldom.Node) uint64 {
		f := fnv.New64a()
		if n.Type == xmldom.TextNode {
			f.Write([]byte{'t'})
			f.Write([]byte(n.Text))
		} else {
			f.Write([]byte{'e'})
			f.Write([]byte(n.Tag))
			for _, a := range n.Attrs {
				f.Write([]byte{0})
				f.Write([]byte(a.Name))
				f.Write([]byte{1})
				f.Write([]byte(a.Value))
			}
			for _, c := range n.Children {
				ch := walk(c)
				var buf [8]byte
				for i := 0; i < 8; i++ {
					buf[i] = byte(ch >> (8 * i))
				}
				f.Write(buf[:])
			}
		}
		v := f.Sum64()
		h[n] = v
		return v
	}
	walk(root)
	return h
}

// propagateXIDs copies XIDs from an old subtree to a structurally
// identical new subtree.
func propagateXIDs(old, new *xmldom.Node) {
	new.XID = old.XID
	for i := range new.Children {
		propagateXIDs(old.Children[i], new.Children[i])
	}
}

// labelFresh assigns fresh XIDs to every node of an inserted subtree.
func (d *differ) labelFresh(n *xmldom.Node) {
	n.XID = d.doc.NextXID()
	for _, c := range n.Children {
		d.labelFresh(c)
	}
}

// matchNodes handles a matched pair (same kind; same tag for elements).
func (d *differ) matchNodes(old, new *xmldom.Node, oh, nh hashes) {
	new.XID = old.XID
	if oh[old] == nh[new] {
		// Identical subtrees: just propagate identities.
		propagateXIDs(old, new)
		return
	}
	if old.Type == xmldom.TextNode {
		if old.Text != new.Text {
			d.delta.Ops = append(d.delta.Ops, Op{
				Kind: OpUpdate, XID: old.XID, NewText: new.Text, TextChanged: true,
			})
		}
		return
	}
	if !attrsEqual(old.Attrs, new.Attrs) {
		d.delta.Ops = append(d.delta.Ops, Op{
			Kind: OpUpdate, XID: old.XID,
			NewAttrs: append([]xmldom.Attr(nil), new.Attrs...), AttrsChanged: true,
		})
	}
	pairs := alignChildren(old.Children, new.Children, oh, nh)
	oldMatched := make([]bool, len(old.Children))
	newMatched := make([]bool, len(new.Children))
	for _, p := range pairs {
		oldMatched[p.i] = true
		newMatched[p.j] = true
	}
	// Deletions first (they reference old XIDs only). Parent records the
	// surviving element (same XID in both versions) for classification.
	for i, c := range old.Children {
		if !oldMatched[i] {
			d.delta.Ops = append(d.delta.Ops, Op{Kind: OpDelete, XID: c.XID, Parent: old.XID, Subtree: c.Clone()})
		}
	}
	// Recurse into matched pairs.
	for _, p := range pairs {
		d.matchNodes(old.Children[p.i], new.Children[p.j], oh, nh)
	}
	// Insertions, positioned in the new children list.
	for j, c := range new.Children {
		if !newMatched[j] {
			d.labelFresh(c)
			d.delta.Ops = append(d.delta.Ops, Op{
				Kind: OpInsert, XID: c.XID, Parent: old.XID, Pos: j, Subtree: c.Clone(),
			})
		}
	}
}

func attrsEqual(a, b []xmldom.Attr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

type pair struct{ i, j int }

// alignChildren computes an order-preserving matching between two children
// lists. Weighted LCS: identical subtrees dominate; among compatible nodes
// (same kind and tag) the score grows with the number of identical child
// subtrees, so an edited element pairs with its former self rather than
// with an arbitrary same-tag sibling; incompatible nodes never match.
func alignChildren(old, new []*xmldom.Node, oh, nh hashes) []pair {
	n, m := len(old), len(new)
	if n == 0 || m == 0 {
		return nil
	}
	const identical = 1 << 20
	common := func(a, b *xmldom.Node) int {
		if len(a.Children) == 0 || len(b.Children) == 0 {
			return 0
		}
		counts := make(map[uint64]int, len(a.Children))
		for _, c := range a.Children {
			counts[oh[c]]++
		}
		shared := 0
		for _, c := range b.Children {
			if counts[nh[c]] > 0 {
				counts[nh[c]]--
				shared++
			}
		}
		return shared
	}
	score := func(a, b *xmldom.Node) int {
		if a.Type != b.Type {
			return 0
		}
		if a.Type == xmldom.ElementNode && a.Tag != b.Tag {
			return 0
		}
		if oh[a] == nh[b] {
			return identical
		}
		return 1 + common(a, b)
	}
	dp := make([][]int, n+1)
	for i := range dp {
		dp[i] = make([]int, m+1)
	}
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			best := dp[i-1][j]
			if dp[i][j-1] > best {
				best = dp[i][j-1]
			}
			if s := score(old[i-1], new[j-1]); s > 0 && dp[i-1][j-1]+s > best {
				best = dp[i-1][j-1] + s
			}
			dp[i][j] = best
		}
	}
	// Traceback. Skip moves are preferred when they lose no score, so ties
	// between equally-scored matchings resolve toward pairing the earliest
	// compatible nodes — an edited first element pairs with its former
	// self rather than pushing every sibling one slot over.
	var pairs []pair
	i, j := n, m
	for i > 0 && j > 0 {
		switch {
		case dp[i-1][j] == dp[i][j]:
			i--
		case dp[i][j-1] == dp[i][j]:
			j--
		default:
			pairs = append(pairs, pair{i - 1, j - 1})
			i--
			j--
		}
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].i < pairs[b].i })
	return pairs
}
