// Package xydiff computes and applies deltas between versions of an XML
// document, in the spirit of the XyDelta mechanism the paper builds on
// (Section 5.2 and [17]): elements carry persistent XIDs, a delta lists
// inserted, deleted and updated nodes in terms of those XIDs, and the new
// version of a document can be reconstructed from the old version plus the
// delta. The XML alerter uses the delta to raise element-level change
// events ("new Product", "updated Product contains camera"), and the
// trigger engine uses it to report only the changes of a continuous query
// result.
package xydiff

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"xymon/internal/xmldom"
)

// OpKind is the kind of a delta operation.
type OpKind int

const (
	// OpInsert inserts a subtree under Parent at position Pos.
	OpInsert OpKind = iota
	// OpDelete removes the subtree rooted at XID.
	OpDelete
	// OpUpdate changes the text of a data node or the attributes of an
	// element node, in place.
	OpUpdate
)

func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpUpdate:
		return "update"
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Op is one delta operation.
type Op struct {
	Kind         OpKind
	XID          xmldom.XID    // target node (delete/update) or inserted subtree root
	Parent       xmldom.XID    // insert: parent element
	Pos          int           // insert: position among the parent's children in the new version
	Subtree      *xmldom.Node  // insert: subtree added (carries final XIDs); delete: removed subtree (old XIDs)
	NewText      string        // update of a data node
	NewAttrs     []xmldom.Attr // update of an element's attributes
	TextChanged  bool
	AttrsChanged bool
}

// Delta is an ordered list of operations turning the old version into the
// new one. An empty Ops list means the versions are identical.
type Delta struct {
	Ops []Op
}

// Empty reports whether the delta carries no change.
func (d *Delta) Empty() bool { return d == nil || len(d.Ops) == 0 }

// Diff compares two versions of a document. It labels the nodes of the new
// version in place: nodes matched with the old version inherit its XIDs,
// unmatched (inserted) nodes receive fresh XIDs drawn from the old
// document's counter. It returns the delta from old to new.
//
// Matching is order-preserving per level. Children lists are aligned by
// subtree hash (xmldom.Document.Hashes — computed once per version and
// cached, so diffing version n→n+1 of a warehouse chain hashes only the
// new tree): equal-prefix/suffix runs and unique-hash anchors pair in
// linear time, and only the short residues between anchors fall back to a
// weighted LCS that pairs nodes of the same kind and tag. Deltas stay
// small on typical edits and Apply reconstructs the new version exactly.
func Diff(old, new *xmldom.Document) (*Delta, error) {
	return diffWith(old, new, alignAnchors)
}

// Mask is a precomputed agreement over the top-level children of the two
// versions: the first Prefix and last Suffix children of the old and new
// roots have pairwise-equal subtree hashes. The warehouse computes it by
// comparing the stored version's cached hash vector against the streaming
// hash frontier of the incoming bytes (xmldom.StreamHasher), so the
// agreed runs are known before the new document is even parsed.
//
// DiffMasked verifies the claimed runs against the hash vectors before
// trusting them (the verification is the same O(Prefix+Suffix) hash walk
// the trim would have cost, so a mask never makes a diff slower) and
// falls back to the unmasked aligner on any disagreement or out-of-range
// mask — a wrong mask can cost speed, never correctness.
type Mask struct {
	Prefix int
	Suffix int
}

// DiffMasked is Diff with a precomputed top-level agreement mask; m may
// be nil, making it exactly Diff.
func DiffMasked(old, new *xmldom.Document, m *Mask) (*Delta, error) {
	return diffMasked(old, new, alignAnchors, m)
}

// alignFunc computes an order-preserving matching between two children
// lists, appending strictly i- and j-increasing pairs of compatible nodes
// (same kind; same tag for elements) to buf.
type alignFunc func(d *differ, old, new []*xmldom.Node, buf []pair) []pair

func diffWith(old, new *xmldom.Document, align alignFunc) (*Delta, error) {
	return diffMasked(old, new, align, nil)
}

func diffMasked(old, new *xmldom.Document, align alignFunc, m *Mask) (*Delta, error) {
	if old == nil || old.Root == nil || new == nil || new.Root == nil {
		return nil, errors.New("xydiff: both versions must have a root")
	}
	if old.Root.Type != new.Root.Type || old.Root.Tag != new.Root.Tag {
		return nil, errors.New("xydiff: root elements differ; versions are unrelated documents")
	}
	sc := diffScratchPool.Get().(*diffScratch)
	d := &differ{
		doc:   old,
		delta: &Delta{},
		oh:    old.Hashes(),
		nh:    new.Hashes(),
		sc:    sc,
		align: align,
		mask:  m,
	}
	d.matchNodes(old.Root, new.Root)
	new.SetNextXID(old.NextXID())
	sc.release()
	diffScratchPool.Put(sc)
	return d.delta, nil
}

type differ struct {
	doc   *xmldom.Document // old document: supplies fresh XIDs
	delta *Delta
	oh    *xmldom.HashVector // subtree hashes of the old version
	nh    *xmldom.HashVector // subtree hashes of the new version
	sc    *diffScratch
	align alignFunc
	// mask is the precomputed top-level agreement, consumed by the first
	// (root-level) alignment and nil thereafter.
	mask *Mask
}

// diffScratch holds every per-Diff working buffer. One scratch serves the
// whole recursion because an align call finishes before matchNodes recurses
// into the pairs it produced; only the pair output buffers live across the
// recursion, and those come from pairsPool.
type diffScratch struct {
	dp     []int              // flat (a+1)×(b+1) LCS table for one residue
	tb     []pair             // residue traceback, built reversed
	counts map[uint64]int     // shared-child-hash counts for one score() call
	occ    map[uint64]occRec  // hash occurrence counts for anchor discovery
	cand   []pair             // unique-hash anchor candidates, in j order
	tails  []int32            // patience LIS: candidate index ending each length
	prev   []int32            // patience LIS: predecessor candidate index
	chain  []pair             // chosen anchor chain, in order
	byKey  map[string][]int32 // greedy fallback: old indices per kind/tag key
}

func (sc *diffScratch) release() {
	clear(sc.counts)
	clear(sc.occ)
	clear(sc.byKey)
	sc.dp = sc.dp[:0]
	sc.tb = sc.tb[:0]
	sc.cand = sc.cand[:0]
	sc.tails = sc.tails[:0]
	sc.prev = sc.prev[:0]
	sc.chain = sc.chain[:0]
}

var diffScratchPool = sync.Pool{New: func() any {
	return &diffScratch{
		counts: make(map[uint64]int),
		occ:    make(map[uint64]occRec),
		byKey:  make(map[string][]int32),
	}
}}

// pairsPool recycles the per-level pair buffers. They cannot live on
// diffScratch: a parent's pairs are still being walked while its children
// run their own alignment.
var pairsPool = sync.Pool{New: func() any {
	b := make([]pair, 0, 16)
	return &b
}}

// occRec tracks how often a subtree hash occurs in the old and new middle
// runs, and where it first occurs in the old one.
type occRec struct {
	oc, nc int32
	oi     int32
}

// propagateXIDs copies XIDs from an old subtree to a structurally
// identical new subtree.
func propagateXIDs(old, new *xmldom.Node) {
	new.XID = old.XID
	for i := range new.Children {
		propagateXIDs(old.Children[i], new.Children[i])
	}
}

// labelFresh assigns fresh XIDs to every node of an inserted subtree.
func (d *differ) labelFresh(n *xmldom.Node) {
	n.XID = d.doc.NextXID()
	for _, c := range n.Children {
		d.labelFresh(c)
	}
}

// matchNodes handles a matched pair (same kind; same tag for elements).
func (d *differ) matchNodes(old, new *xmldom.Node) {
	new.XID = old.XID
	if d.oh.Of(old) == d.nh.Of(new) {
		// Identical subtrees: just propagate identities.
		propagateXIDs(old, new)
		return
	}
	if old.Type == xmldom.TextNode {
		if old.Text != new.Text {
			d.delta.Ops = append(d.delta.Ops, Op{
				Kind: OpUpdate, XID: old.XID, NewText: new.Text, TextChanged: true,
			})
		}
		return
	}
	if !attrsEqual(old.Attrs, new.Attrs) {
		d.delta.Ops = append(d.delta.Ops, Op{
			Kind: OpUpdate, XID: old.XID,
			NewAttrs: append([]xmldom.Attr(nil), new.Attrs...), AttrsChanged: true,
		})
	}
	bufp := pairsPool.Get().(*[]pair)
	var pairs []pair
	if m := d.mask; m != nil {
		d.mask = nil
		pairs = alignMasked(d, m, old.Children, new.Children, (*bufp)[:0])
	} else {
		pairs = d.align(d, old.Children, new.Children, (*bufp)[:0])
	}
	// Deletions first (they reference old XIDs only). pairs is strictly
	// increasing in both coordinates, so a single cursor replaces the old
	// per-level matched-bool slices.
	pi := 0
	for i, c := range old.Children {
		if pi < len(pairs) && pairs[pi].i == i {
			pi++
			continue
		}
		d.delta.Ops = append(d.delta.Ops, Op{Kind: OpDelete, XID: c.XID, Parent: old.XID, Subtree: c.Clone()})
	}
	// Recurse into matched pairs.
	for _, p := range pairs {
		d.matchNodes(old.Children[p.i], new.Children[p.j])
	}
	// Insertions, positioned in the new children list.
	pj := 0
	for j, c := range new.Children {
		if pj < len(pairs) && pairs[pj].j == j {
			pj++
			continue
		}
		d.labelFresh(c)
		d.delta.Ops = append(d.delta.Ops, Op{
			Kind: OpInsert, XID: c.XID, Parent: old.XID, Pos: j, Subtree: c.Clone(),
		})
	}
	*bufp = pairs[:0]
	pairsPool.Put(bufp)
}

func attrsEqual(a, b []xmldom.Attr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

type pair struct{ i, j int }

// maxDPCells bounds the size of the weighted-LCS table run on one residue
// between anchors. Residues larger than this (which only arise when a
// level was rewritten nearly wholesale, so there are no unique-hash
// anchors to shrink them) fall back to a linear greedy matching: the
// result is still a valid order-preserving pairing of compatible nodes —
// all that correctness requires — it may just trade a few matches for
// delete+insert pairs.
const maxDPCells = 16384

// alignAnchors is the production aligner: a patience-diff-style pass over
// the cached subtree hashes.
//
//  1. Trim the common prefix and suffix (hash-equal runs) in linear time —
//     the entire cost on the no-change and single-edit fast paths.
//  2. In the middle, bucket children by subtree hash and take hashes that
//     occur exactly once on each side as anchor candidates; a patience
//     longest-increasing-subsequence pass keeps the largest order-
//     consistent subset.
//  3. Only the short residues between consecutive anchors run the
//     weighted LCS (alignSegment), so the quadratic work is bounded by
//     the edit, not the fan-out.
func alignAnchors(d *differ, old, new []*xmldom.Node, buf []pair) []pair {
	n, m := len(old), len(new)
	if n == 0 || m == 0 {
		return buf
	}
	oh, nh := d.oh, d.nh
	// Common prefix.
	lo := 0
	for lo < n && lo < m && oh.Of(old[lo]) == nh.Of(new[lo]) {
		buf = append(buf, pair{lo, lo})
		lo++
	}
	// Common suffix (appended after the middle to keep buf ordered).
	hiO, hiM := n, m
	for hiO > lo && hiM > lo && oh.Of(old[hiO-1]) == nh.Of(new[hiM-1]) {
		hiO--
		hiM--
	}
	if lo < hiO && lo < hiM {
		sc := d.sc
		// Occurrence counts over the middle runs.
		clear(sc.occ)
		for i := lo; i < hiO; i++ {
			h := oh.Of(old[i])
			e := sc.occ[h]
			if e.oc == 0 {
				e.oi = int32(i)
			}
			e.oc++
			sc.occ[h] = e
		}
		for j := lo; j < hiM; j++ {
			h := nh.Of(new[j])
			e := sc.occ[h]
			e.nc++
			sc.occ[h] = e
		}
		// Anchor candidates: unique on both sides, collected in j order.
		sc.cand = sc.cand[:0]
		for j := lo; j < hiM; j++ {
			if e := sc.occ[nh.Of(new[j])]; e.oc == 1 && e.nc == 1 {
				sc.cand = append(sc.cand, pair{int(e.oi), j})
			}
		}
		// Patience LIS: with candidates in increasing j, the longest chain
		// of strictly increasing i is the largest non-crossing anchor set.
		sc.chain = sc.chain[:0]
		if len(sc.cand) > 0 {
			sc.tails = sc.tails[:0]
			sc.prev = append(sc.prev[:0], make([]int32, len(sc.cand))...)
			for ci, c := range sc.cand {
				k := sort.Search(len(sc.tails), func(k int) bool {
					return sc.cand[sc.tails[k]].i >= c.i
				})
				if k > 0 {
					sc.prev[ci] = sc.tails[k-1]
				} else {
					sc.prev[ci] = -1
				}
				if k == len(sc.tails) {
					sc.tails = append(sc.tails, int32(ci))
				} else {
					sc.tails[k] = int32(ci)
				}
			}
			for ci := sc.tails[len(sc.tails)-1]; ci >= 0; ci = sc.prev[ci] {
				sc.chain = append(sc.chain, sc.cand[ci])
			}
			// Chain was collected back-to-front; reverse in place.
			for a, b := 0, len(sc.chain)-1; a < b; a, b = a+1, b-1 {
				sc.chain[a], sc.chain[b] = sc.chain[b], sc.chain[a]
			}
		}
		// Residues between anchors; then the anchor itself.
		pi, pj := lo, lo
		for _, a := range sc.chain {
			buf = alignSegment(d, old, new, pi, a.i, pj, a.j, buf)
			buf = append(buf, a)
			pi, pj = a.i+1, a.j+1
		}
		buf = alignSegment(d, old, new, pi, hiO, pj, hiM, buf)
	}
	for k := 0; hiO+k < n; k++ {
		buf = append(buf, pair{hiO + k, hiM + k})
	}
	return buf
}

// alignMasked consumes a precomputed top-level agreement: the first
// m.Prefix and last m.Suffix children pair directly, and only the middle
// runs through the configured aligner. The claimed runs are re-verified
// against the hash vectors (same cost as the trim itself); any
// disagreement or out-of-range mask falls back to the plain aligner, so
// a stale or wrong mask degrades to the unmasked diff, never to a wrong
// delta.
func alignMasked(d *differ, m *Mask, old, new []*xmldom.Node, buf []pair) []pair {
	n, nn := len(old), len(new)
	pre, suf := m.Prefix, m.Suffix
	if pre < 0 || suf < 0 || pre+suf > n || pre+suf > nn {
		return d.align(d, old, new, buf)
	}
	oh, nh := d.oh, d.nh
	for i := 0; i < pre; i++ {
		if oh.Of(old[i]) != nh.Of(new[i]) {
			return d.align(d, old, new, buf)
		}
	}
	for k := 1; k <= suf; k++ {
		if oh.Of(old[n-k]) != nh.Of(new[nn-k]) {
			return d.align(d, old, new, buf)
		}
	}
	for i := 0; i < pre; i++ {
		buf = append(buf, pair{i, i})
	}
	mid := len(buf)
	buf = d.align(d, old[pre:n-suf], new[pre:nn-suf], buf)
	for k := mid; k < len(buf); k++ {
		buf[k].i += pre
		buf[k].j += pre
	}
	for k := 0; k < suf; k++ {
		buf = append(buf, pair{n - suf + k, nn - suf + k})
	}
	return buf
}

// alignSegment matches one residue old[i0:i1) × new[j0:j1) between
// anchors, appending pairs with absolute indices to buf. Small residues
// run the weighted LCS; oversized ones (see maxDPCells) use a greedy
// per-kind/tag two-pointer pass.
func alignSegment(d *differ, old, new []*xmldom.Node, i0, i1, j0, j1 int, buf []pair) []pair {
	a, b := i1-i0, j1-j0
	if a == 0 || b == 0 {
		return buf
	}
	if a*b > maxDPCells {
		return alignGreedy(d, old, new, i0, i1, j0, j1, buf)
	}
	return alignDP(d, old, new, i0, i1, j0, j1, buf)
}

// alignDP is the weighted-LCS table fill and traceback over one span.
func alignDP(d *differ, old, new []*xmldom.Node, i0, i1, j0, j1 int, buf []pair) []pair {
	a, b := i1-i0, j1-j0
	oh, nh, sc := d.oh, d.nh, d.sc
	const identical = 1 << 20
	common := func(x, y *xmldom.Node) int {
		if len(x.Children) == 0 || len(y.Children) == 0 {
			return 0
		}
		clear(sc.counts)
		for _, c := range x.Children {
			sc.counts[oh.Of(c)]++
		}
		shared := 0
		for _, c := range y.Children {
			if sc.counts[nh.Of(c)] > 0 {
				sc.counts[nh.Of(c)]--
				shared++
			}
		}
		return shared
	}
	// Weighted LCS: identical subtrees dominate; among compatible nodes
	// (same kind and tag) the score grows with the number of identical
	// child subtrees, so an edited element pairs with its former self
	// rather than with an arbitrary same-tag sibling; incompatible nodes
	// never match.
	score := func(x, y *xmldom.Node) int {
		if x.Type != y.Type {
			return 0
		}
		if x.Type == xmldom.ElementNode && x.Tag != y.Tag {
			return 0
		}
		if oh.Of(x) == nh.Of(y) {
			return identical
		}
		return 1 + common(x, y)
	}
	w := b + 1
	need := (a + 1) * w
	if cap(sc.dp) < need {
		sc.dp = make([]int, need)
	}
	dp := sc.dp[:need]
	for k := range dp {
		dp[k] = 0
	}
	for i := 1; i <= a; i++ {
		for j := 1; j <= b; j++ {
			best := dp[(i-1)*w+j]
			if v := dp[i*w+j-1]; v > best {
				best = v
			}
			if s := score(old[i0+i-1], new[j0+j-1]); s > 0 {
				if v := dp[(i-1)*w+j-1] + s; v > best {
					best = v
				}
			}
			dp[i*w+j] = best
		}
	}
	// Traceback. Skip moves are preferred when they lose no score, so ties
	// between equally-scored matchings resolve toward pairing the earliest
	// compatible nodes — an edited first element pairs with its former
	// self rather than pushing every sibling one slot over.
	sc.tb = sc.tb[:0]
	i, j := a, b
	for i > 0 && j > 0 {
		switch {
		case dp[(i-1)*w+j] == dp[i*w+j]:
			i--
		case dp[i*w+j-1] == dp[i*w+j]:
			j--
		default:
			sc.tb = append(sc.tb, pair{i0 + i - 1, j0 + j - 1})
			i--
			j--
		}
	}
	for k := len(sc.tb) - 1; k >= 0; k-- {
		buf = append(buf, sc.tb[k])
	}
	return buf
}

// alignGreedy is the linear fallback for residues too large for the DP:
// old children are bucketed by kind/tag, and each new child takes the
// first still-unmatched old child of its key that keeps the matching
// order-preserving.
func alignGreedy(d *differ, old, new []*xmldom.Node, i0, i1, j0, j1 int, buf []pair) []pair {
	byKey := d.sc.byKey
	clear(byKey)
	for i := i0; i < i1; i++ {
		k := alignKey(old[i])
		byKey[k] = append(byKey[k], int32(i))
	}
	last := int32(i0) - 1
	for j := j0; j < j1; j++ {
		q := byKey[alignKey(new[j])]
		for len(q) > 0 && q[0] <= last {
			q = q[1:]
		}
		if len(q) > 0 {
			buf = append(buf, pair{int(q[0]), j})
			last = q[0]
			q = q[1:]
		}
		byKey[alignKey(new[j])] = q
	}
	return buf
}

// alignKey buckets nodes for the greedy fallback: elements by tag, data
// nodes under a key no element tag can collide with.
func alignKey(n *xmldom.Node) string {
	if n.Type == xmldom.TextNode {
		return "\x00text"
	}
	return n.Tag
}

// alignLCS is the full-table weighted LCS the anchor aligner replaced. It
// is retained as the reference implementation: the property tests in
// quick_test.go run every adversarial shape through both aligners and
// require identical reconstruction.
func alignLCS(d *differ, old, new []*xmldom.Node, buf []pair) []pair {
	if len(old) == 0 || len(new) == 0 {
		return buf
	}
	return alignDP(d, old, new, 0, len(old), 0, len(new), buf)
}
