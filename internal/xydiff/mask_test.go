package xydiff

import (
	"testing"
	"testing/quick"

	"xymon/internal/xmldom"
)

// trueMask computes the genuine top-level agreement of two documents the
// way the warehouse would from its stored hash vector and the streaming
// frontier: longest common prefix and suffix of root-children subtree
// hashes, non-overlapping.
func trueMask(old, new *xmldom.Document) Mask {
	oh, nh := old.Hashes(), new.Hashes()
	oc, nc := old.Root.Children, new.Root.Children
	n := len(oc)
	if len(nc) < n {
		n = len(nc)
	}
	pre := 0
	for pre < n && oh.Of(oc[pre]) == nh.Of(nc[pre]) {
		pre++
	}
	suf := 0
	for suf < n-pre && oh.Of(oc[len(oc)-1-suf]) == nh.Of(nc[len(nc)-1-suf]) {
		suf++
	}
	return Mask{Prefix: pre, Suffix: suf}
}

// diffMaskedAgainstPlain diffs old→new plain and with the given mask on
// fresh clones and demands identical reconstruction and XID labeling.
func diffMaskedAgainstPlain(t *testing.T, old, new *xmldom.Document, m Mask) bool {
	t.Helper()
	run := func(mask *Mask) (*xmldom.Document, bool) {
		o := old.Clone()
		n := new.Clone()
		n.Root.PreOrder(func(nd *xmldom.Node) bool { nd.XID = 0; return true })
		var delta *Delta
		var err error
		if mask == nil {
			delta, err = Diff(o, n)
		} else {
			delta, err = DiffMasked(o, n, mask)
		}
		if err != nil {
			t.Logf("diff (mask %+v): %v", mask, err)
			return nil, false
		}
		rebuilt, err := Apply(o, delta)
		if err != nil {
			t.Logf("apply (mask %+v): %v\nold %s\nnew %s", mask, err, old.XML(), new.XML())
			return nil, false
		}
		if rebuilt.XML() != n.XML() {
			t.Logf("reconstruction mismatch (mask %+v)\n got %s\nwant %s", mask, rebuilt.XML(), n.XML())
			return nil, false
		}
		return n, true
	}
	plain, ok := run(nil)
	if !ok {
		return false
	}
	masked, ok := run(&m)
	if !ok {
		return false
	}
	var want, got []xmldom.XID
	plain.Root.PreOrder(func(nd *xmldom.Node) bool { want = append(want, nd.XID); return true })
	masked.Root.PreOrder(func(nd *xmldom.Node) bool { got = append(got, nd.XID); return true })
	if len(got) != len(want) {
		t.Logf("XID count mismatch under mask %+v: %d vs %d", m, len(got), len(want))
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			t.Logf("XID[%d] = %d, want %d under mask %+v\nold %s\nnew %s",
				i, got[i], want[i], m, old.XML(), new.XML())
			return false
		}
	}
	return true
}

// Property: with the genuine agreement mask, DiffMasked is exactly Diff —
// same reconstruction, same identity assignment.
func TestQuickMaskedMatchesPlain(t *testing.T) {
	f := func(a, b []byte) bool {
		old := buildDoc(a)
		new := buildDoc(b)
		return diffMaskedAgainstPlain(t, old, new, trueMask(old, new))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: an arbitrary — possibly garbage — mask never changes the
// result. Wrong claims are caught by the hash re-verification and fall
// back to the plain aligner; a bad mask may cost speed, never correctness.
func TestQuickGarbageMaskHarmless(t *testing.T) {
	f := func(a, b []byte, pre, suf int8) bool {
		old := buildDoc(a)
		new := buildDoc(b)
		m := Mask{Prefix: int(pre), Suffix: int(suf)}
		return diffMaskedAgainstPlain(t, old, new, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMaskedHandPicked(t *testing.T) {
	old := xmldom.MustParse(`<c><p>a</p><p>b</p><p>c</p><p>d</p><p>e</p></c>`)
	new := xmldom.MustParse(`<c><p>a</p><p>b</p><p>X</p><p>d</p><p>e</p></c>`)
	cases := []Mask{
		trueMask(old, new),      // {2,2}
		{Prefix: 1, Suffix: 1},  // under-claims: still exact
		{Prefix: 3, Suffix: 0},  // over-claims prefix: verification rejects
		{Prefix: 0, Suffix: 3},  // over-claims suffix: verification rejects
		{Prefix: 5, Suffix: 5},  // out of range
		{Prefix: -1, Suffix: 2}, // negative
		{Prefix: 0, Suffix: 0},  // vacuous
	}
	if got := trueMask(old, new); got.Prefix != 2 || got.Suffix != 2 {
		t.Fatalf("trueMask = %+v, want {2 2}", got)
	}
	for _, m := range cases {
		if !diffMaskedAgainstPlain(t, old, new, m) {
			t.Errorf("mask %+v diverged from plain diff", m)
		}
	}
	// Pure insertion in the middle: prefix+suffix covers all old children.
	ins := xmldom.MustParse(`<c><p>a</p><p>b</p><p>q</p><p>c</p><p>d</p><p>e</p></c>`)
	if !diffMaskedAgainstPlain(t, old, ins, trueMask(old, ins)) {
		t.Error("insertion case diverged")
	}
	// Identical documents: full mask, empty middle.
	same := old.Clone()
	same.Root.PreOrder(func(nd *xmldom.Node) bool { nd.XID = 0; return true })
	if !diffMaskedAgainstPlain(t, old, same, trueMask(old, same)) {
		t.Error("identical case diverged")
	}
}
