package xydiff_test

import (
	"fmt"

	"xymon/internal/xmldom"
	"xymon/internal/xydiff"
)

// Two versions of a catalog: the delta lists the price update and the
// inserted product, and applying it to the old version reconstructs the
// new one — the XyDelta invariant of Section 5.2.
func ExampleDiff() {
	old := xmldom.MustParse(`<catalog><product><name>radio</name><price>10</price></product></catalog>`)
	new := xmldom.MustParse(`<catalog><product><name>radio</name><price>12</price></product><product><name>tv</name></product></catalog>`)

	delta, _ := xydiff.Diff(old, new)
	fmt.Println(len(delta.Ops), "operations")

	rebuilt, _ := xydiff.Apply(old, delta)
	fmt.Println(rebuilt.XML() == new.XML())
	// Output:
	// 2 operations
	// true
}

func ExampleClassify() {
	old := xmldom.MustParse(`<catalog><product>radio</product></catalog>`)
	new := xmldom.MustParse(`<catalog><product>radio</product><product>tv</product></catalog>`)
	delta, _ := xydiff.Diff(old, new)
	cl := xydiff.Classify(new, delta)
	for _, n := range cl.NewElems {
		fmt.Println("new:", n.Tag, n.TextContent())
	}
	// Output: new: product tv
}
