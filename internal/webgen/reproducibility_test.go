package webgen

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// TestWorkloadReproducible pins the determinism contract: the same seed
// produces the same workload, and the seed-based entry point is exactly
// the injected-generator one fed a fresh rand.New(rand.NewSource(seed)).
func TestWorkloadReproducible(t *testing.T) {
	a := GenEventWorkload(42, 100, 500, 3, 10, 50)
	b := GenEventWorkload(42, 100, 500, 3, 10, 50)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different workloads")
	}
	c := GenEventWorkloadRand(rand.New(rand.NewSource(42)), 100, 500, 3, 10, 50)
	if !reflect.DeepEqual(a, c) {
		t.Fatal("injected generator diverged from the seed entry point")
	}
	d := GenEventWorkload(43, 100, 500, 3, 10, 50)
	if reflect.DeepEqual(a, d) {
		t.Fatal("different seeds produced identical workloads")
	}
}

// TestWorkloadSharedGenerator checks the point of injection: one
// generator threaded through consecutive calls keeps advancing, so the
// two halves of an experiment draw from one reproducible stream.
func TestWorkloadSharedGenerator(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	first := GenEventWorkloadRand(rng, 100, 200, 3, 10, 20)
	second := GenEventWorkloadRand(rng, 100, 200, 3, 10, 20)
	if reflect.DeepEqual(first.Complex, second.Complex) && reflect.DeepEqual(first.Docs, second.Docs) {
		t.Fatal("shared generator repeated itself across calls")
	}

	rng2 := rand.New(rand.NewSource(7))
	again := GenEventWorkloadRand(rng2, 100, 200, 3, 10, 20)
	if !reflect.DeepEqual(first, again) {
		t.Fatal("same stream start produced a different first workload")
	}
}

// TestRandomTreeReproducible pins RandomTree the same way.
func TestRandomTreeReproducible(t *testing.T) {
	a := RandomTree(11, 200, 6)
	b := RandomTree(11, 200, 6)
	if a.XML() != b.XML() {
		t.Fatal("same seed produced different trees")
	}
	c := RandomTreeRand(rand.New(rand.NewSource(11)), 200, 6)
	if a.XML() != c.XML() {
		t.Fatal("injected generator diverged from the seed entry point")
	}
}

// TestSiteFetchReproducible checks the site contract Fetch(url, version)
// depends only on its arguments and the spec — crawls replay exactly.
func TestSiteFetchReproducible(t *testing.T) {
	s1 := NewSite(SiteSpec{BaseURL: "http://shop.example/", Pages: 3, Products: 5, Seed: 9, HTMLShare: 1})
	s2 := NewSite(SiteSpec{BaseURL: "http://shop.example/", Pages: 3, Products: 5, Seed: 9, HTMLShare: 1})
	for _, url := range s1.XMLURLs() {
		for v := 1; v <= 4; v++ {
			if s1.FetchXML(url, v).XML() != s2.FetchXML(url, v).XML() {
				t.Fatalf("FetchXML(%s, %d) not reproducible", url, v)
			}
		}
	}
	for _, url := range s1.HTMLURLs() {
		if string(s1.FetchHTML(url, 2)) != string(s2.FetchHTML(url, 2)) {
			t.Fatalf("FetchHTML(%s) not reproducible", url)
		}
	}
}

// TestFetchXMLBytesMatchesDOM pins the byte renderer to the canonical
// serialisation: commits through the byte path and the DOM path must
// produce the same signature for the same (url, version).
func TestFetchXMLBytesMatchesDOM(t *testing.T) {
	site := NewSite(SiteSpec{BaseURL: "http://shop0.example/", Seed: 42, Pages: 3})
	for _, url := range site.XMLURLs() {
		for v := 1; v <= 6; v++ {
			raw := string(site.FetchXMLBytes(url, v))
			if dom := site.FetchXML(url, v).XML(); dom != raw {
				t.Fatalf("%s v%d: bytes %q != DOM serialisation %q", url, v, raw, dom)
			}
		}
	}
}

// TestRareWordRate checks the RareWord knob: the word appears on roughly
// one page in RareEvery and nowhere else.
func TestRareWordRate(t *testing.T) {
	const pages = 200
	site := NewSite(SiteSpec{
		BaseURL: "http://rare.example/", Seed: 7, Pages: pages,
		RareWord: "zyzzyva", RareEvery: 20,
	})
	hits := 0
	for _, url := range site.XMLURLs() {
		if strings.Contains(string(site.FetchXMLBytes(url, 1)), "zyzzyva") {
			hits++
		}
	}
	if hits == 0 || hits > pages/5 {
		t.Fatalf("rare word on %d/%d pages, want about %d", hits, pages, pages/20)
	}
	plain := NewSite(SiteSpec{BaseURL: "http://rare.example/", Seed: 7, Pages: 5})
	for _, url := range plain.XMLURLs() {
		if strings.Contains(string(plain.FetchXMLBytes(url, 1)), "zyzzyva") {
			t.Fatalf("rare word leaked into a site without the knob")
		}
	}
}
