package webgen

import (
	"testing"

	"xymon/internal/core"
	"xymon/internal/xydiff"
)

func TestGenEventWorkloadShape(t *testing.T) {
	w := GenEventWorkload(1, 1000, 200, 3, 20, 50)
	if len(w.Complex) != 200 || len(w.Docs) != 50 {
		t.Fatalf("sizes: %d complex, %d docs", len(w.Complex), len(w.Docs))
	}
	for _, c := range w.Complex {
		if len(c) != 3 {
			t.Fatalf("complex event arity %d, want 3", len(c))
		}
		if !core.Canonical(c).IsCanonical() || len(core.Canonical(c)) != 3 {
			t.Fatalf("complex event has duplicates: %v", c)
		}
		for _, e := range c {
			if int(e) >= 1000 {
				t.Fatalf("event %d outside universe", e)
			}
		}
	}
	for _, d := range w.Docs {
		if len(d) != 20 || !d.IsCanonical() {
			t.Fatalf("doc set %v", d)
		}
	}
}

func TestGenEventWorkloadDeterministic(t *testing.T) {
	a := GenEventWorkload(7, 100, 10, 3, 5, 5)
	b := GenEventWorkload(7, 100, 10, 3, 5, 5)
	for i := range a.Complex {
		for j := range a.Complex[i] {
			if a.Complex[i][j] != b.Complex[i][j] {
				t.Fatal("workload not deterministic")
			}
		}
	}
	c := GenEventWorkload(8, 100, 10, 3, 5, 5)
	same := true
	for i := range a.Complex {
		for j := range a.Complex[i] {
			if a.Complex[i][j] != c.Complex[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical workloads")
	}
}

func TestKEstimate(t *testing.T) {
	w := GenEventWorkload(1, 100000, 100000, 3, 20, 1)
	if got := w.K(); got != 3.0 {
		t.Errorf("K = %v, want 3", got)
	}
}

func TestWorkloadLoadIntoMatcher(t *testing.T) {
	w := GenEventWorkload(3, 500, 300, 4, 25, 10)
	m := core.NewMatcher()
	if err := w.Load(m.Add); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if m.Len() != 300 {
		t.Errorf("Len = %d", m.Len())
	}
	for _, d := range w.Docs {
		m.Match(d) // must not panic; correctness is covered by core tests
	}
}

func TestDrawDistinctCapsAtUniverse(t *testing.T) {
	w := GenEventWorkload(1, 5, 3, 10, 10, 2)
	for _, c := range w.Complex {
		if len(c) != 5 {
			t.Errorf("arity %d, want capped 5", len(c))
		}
	}
}

func TestSiteDeterministicFetch(t *testing.T) {
	s := NewSite(SiteSpec{BaseURL: "http://shop.example", Pages: 3, Seed: 42, HTMLShare: 2})
	urls := s.URLs()
	if len(urls) != 5 {
		t.Fatalf("URLs = %d, want 5", len(urls))
	}
	a := s.FetchXML(urls[0], 3)
	b := s.FetchXML(urls[0], 3)
	if a.XML() != b.XML() {
		t.Error("FetchXML not deterministic")
	}
	if string(s.FetchHTML(s.HTMLURLs()[0], 2)) != string(s.FetchHTML(s.HTMLURLs()[0], 2)) {
		t.Error("FetchHTML not deterministic")
	}
	if string(s.FetchHTML(s.HTMLURLs()[0], 2)) == string(s.FetchHTML(s.HTMLURLs()[0], 3)) {
		t.Error("HTML versions should differ")
	}
}

func TestSiteVersionsEvolve(t *testing.T) {
	s := NewSite(SiteSpec{Seed: 7})
	url := s.XMLURLs()[0]
	v1 := s.FetchXML(url, 1)
	v2 := s.FetchXML(url, 2)
	if v1.XML() == v2.XML() {
		t.Fatal("versions should differ")
	}
	// The evolution must be expressible as a delta (same root, incremental
	// changes), which is what the warehouse will compute.
	delta, err := xydiff.Diff(v1, v2)
	if err != nil {
		t.Fatalf("Diff: %v", err)
	}
	if delta.Empty() {
		t.Error("delta should not be empty")
	}
	// Version 2 adds one product (v%2==0) and updates some prices.
	if len(v2.Root.Elements("product")) != len(v1.Root.Elements("product"))+1 {
		t.Errorf("products: v1=%d v2=%d", len(v1.Root.Elements("product")), len(v2.Root.Elements("product")))
	}
}

func TestSiteDefaults(t *testing.T) {
	s := NewSite(SiteSpec{})
	spec := s.Spec()
	if spec.Pages == 0 || spec.Products == 0 || spec.Domain == "" || spec.DTD == "" {
		t.Errorf("defaults not applied: %+v", spec)
	}
	if got := s.XMLURLs()[0]; got != "http://site.example/catalog0.xml" {
		t.Errorf("url = %q", got)
	}
}

func TestRandomTreeSizeAndDepth(t *testing.T) {
	for _, c := range []struct{ size, depth int }{{10, 3}, {200, 5}, {1000, 10}, {2, 2}} {
		d := RandomTree(1, c.size, c.depth)
		if got := d.Root.Size(); got != c.size {
			t.Errorf("size = %d, want %d", got, c.size)
		}
		if got := d.Root.Depth(); got > c.depth {
			t.Errorf("depth = %d, want <= %d", got, c.depth)
		}
	}
}

func TestVocabularyIsolated(t *testing.T) {
	v := Vocabulary()
	v[0] = "MUTATED"
	if Vocabulary()[0] == "MUTATED" {
		t.Error("Vocabulary must return a copy")
	}
}

func TestOwnsAndIsHTML(t *testing.T) {
	s := NewSite(SiteSpec{BaseURL: "http://own.example"})
	if !s.Owns("http://own.example/x.xml") || s.Owns("http://other.example/x.xml") {
		t.Error("Owns broken")
	}
	if !s.IsHTML("http://own.example/p.html") || s.IsHTML("http://own.example/c.xml") {
		t.Error("IsHTML broken")
	}
}

func TestHiddenURLsAndLinks(t *testing.T) {
	s := NewSite(SiteSpec{BaseURL: "http://h.example", Pages: 2, HTMLShare: 1, HiddenPages: 2, Seed: 5})
	hidden := s.HiddenURLs()
	if len(hidden) != 2 || hidden[0] != "http://h.example/hidden0.xml" {
		t.Fatalf("hidden = %v", hidden)
	}
	// Version 1: no hidden links yet.
	links1 := ExtractLinks(s.FetchHTML(s.HTMLURLs()[0], 1))
	for _, l := range links1 {
		for _, h := range hidden {
			if l == h {
				t.Errorf("hidden page linked at version 1")
			}
		}
	}
	// Version 4: both hidden pages linked.
	links4 := ExtractLinks(s.FetchHTML(s.HTMLURLs()[0], 4))
	found := 0
	for _, l := range links4 {
		for _, h := range hidden {
			if l == h {
				found++
			}
		}
	}
	if found != 2 {
		t.Errorf("hidden links at v4 = %d, want 2", found)
	}
	// Hidden pages render like any catalog page.
	if s.FetchXML(hidden[0], 1).Root.Tag != "catalog" {
		t.Error("hidden page does not render")
	}
}

func TestKZeroUniverse(t *testing.T) {
	w := &EventWorkload{CardA: 0, CardC: 10, M: 3}
	if w.K() != 0 {
		t.Errorf("K with zero universe = %v", w.K())
	}
}
