package webgen

import (
	"bytes"
	"testing"

	"xymon/internal/xmldom"
)

func streamRoot(t *testing.T, data []byte) uint64 {
	t.Helper()
	var sh xmldom.StreamHasher
	h, _, err := sh.Sum(data, 0)
	if err != nil {
		t.Fatalf("Sum(%q): %v", data, err)
	}
	return h
}

// TestPerturbWhitespaceNeutral: within one content window, every refetch
// renders different bytes with an identical structural hash — the exact
// property the warehouse's tier-2 fast path keys on.
func TestPerturbWhitespaceNeutral(t *testing.T) {
	site := NewSite(SiteSpec{
		BaseURL:      "http://perturb.example/",
		Pages:        2,
		Seed:         7,
		PerturbEvery: 5,
		PerturbKind:  PerturbWhitespace,
	})
	for _, url := range site.XMLURLs() {
		base := site.FetchXMLBytes(url, 1)
		want := streamRoot(t, base)
		prev := base
		for v := 2; v <= 5; v++ {
			got := site.FetchXMLBytes(url, v)
			if bytes.Equal(got, prev) {
				t.Errorf("%s v%d: refetch bytes identical to v%d", url, v, v-1)
			}
			if h := streamRoot(t, got); h != want {
				t.Errorf("%s v%d: perturbation changed the structural hash: %#x != %#x", url, v, h, want)
			}
			// The canonical form is stable too: signature-level unchanged.
			d, err := xmldom.ParseBytes(got)
			if err != nil {
				t.Fatalf("%s v%d: %v", url, v, err)
			}
			if b, err := xmldom.ParseBytes(base); err != nil || d.XML() != b.XML() {
				t.Errorf("%s v%d: canonical form drifted", url, v)
			}
			prev = got
		}
		// The next window is a real content change.
		if h := streamRoot(t, site.FetchXMLBytes(url, 6)); h == want {
			t.Errorf("%s v6: new content window kept the old structural hash", url)
		}
	}
}

// TestPerturbDeterministic: the same (url, version) always renders the
// same bytes, perturbed or not — crawls stay reproducible.
func TestPerturbDeterministic(t *testing.T) {
	mk := func() *Site {
		return NewSite(SiteSpec{
			BaseURL:      "http://perturb.example/",
			Pages:        1,
			Seed:         7,
			PerturbEvery: 4,
			PerturbKind:  PerturbAttrOrder,
		})
	}
	a, b := mk(), mk()
	url := a.XMLURLs()[0]
	for v := 1; v <= 9; v++ {
		if !bytes.Equal(a.FetchXMLBytes(url, v), b.FetchXMLBytes(url, v)) {
			t.Fatalf("v%d: nondeterministic render", v)
		}
	}
}

// TestPerturbAttrOrderParses: attr-order perturbation keeps the markup
// well-formed and the canonical content (names, prices) intact, while
// generally changing the ordered-attribute structural hash — feeding the
// masked-diff tier rather than the skip tier.
func TestPerturbAttrOrderParses(t *testing.T) {
	site := NewSite(SiteSpec{
		BaseURL:      "http://perturb.example/",
		Pages:        1,
		Products:     12,
		Seed:         3,
		PerturbEvery: 6,
		PerturbKind:  PerturbAttrOrder,
	})
	url := site.XMLURLs()[0]
	base := site.FetchXML(url, 1)
	changed := false
	for v := 2; v <= 6; v++ {
		doc := site.FetchXML(url, v) // panics on malformed output
		if len(doc.Root.Children) != len(base.Root.Children) {
			t.Fatalf("v%d: product count changed within a content window", v)
		}
		if streamRoot(t, site.FetchXMLBytes(url, v)) != streamRoot(t, site.FetchXMLBytes(url, 1)) {
			changed = true
		}
	}
	if !changed {
		t.Error("attr-order perturbation never flipped an attribute pair across 5 refetches")
	}
}
