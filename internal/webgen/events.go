// Package webgen generates the synthetic inputs of the experiments: the
// random atomic-event workloads of Section 4.2 (controlled Card(A),
// Card(C), m and p), and a deterministic synthetic web of evolving XML
// catalogs and HTML pages that stands in for the real crawl the paper's
// testbed consumed (the substitution is recorded in DESIGN.md).
package webgen

import (
	"math/rand"

	"xymon/internal/core"
)

// EventWorkload is a Section 4.2 experiment input: Card(C) complex events
// of m atomic events each, drawn from an event universe of at most CardA
// codes, plus a stream of documents of p events each.
type EventWorkload struct {
	CardA int // upper bound on the atomic-event universe
	CardC int // number of complex events
	M     int // atomic events per complex event
	P     int // atomic events per document

	Complex [][]core.Event
	Docs    []core.EventSet
}

// K returns the paper's estimate of the average number of complex events
// per atomic event: k ≈ m·Card(C)/Card(A).
func (w *EventWorkload) K() float64 {
	if w.CardA == 0 {
		return 0
	}
	return float64(w.M) * float64(w.CardC) / float64(w.CardA)
}

// GenEventWorkload reproduces the experiment setup: "atomic events are
// randomly drawn in the set {0..Card(A)-1} with no guarantee that they
// will all be taken". Each complex event draws m distinct events; each of
// nDocs documents draws p distinct events. The generator is deterministic
// in seed.
func GenEventWorkload(seed int64, cardA, cardC, m, p, nDocs int) *EventWorkload {
	return GenEventWorkloadRand(rand.New(rand.NewSource(seed)), cardA, cardC, m, p, nDocs)
}

// GenEventWorkloadRand is GenEventWorkload drawing from an injected
// generator, for callers that thread one explicitly seeded *rand.Rand
// through a whole experiment.
func GenEventWorkloadRand(rng *rand.Rand, cardA, cardC, m, p, nDocs int) *EventWorkload {
	w := &EventWorkload{CardA: cardA, CardC: cardC, M: m, P: p}
	w.Complex = make([][]core.Event, cardC)
	for i := range w.Complex {
		w.Complex[i] = drawDistinct(rng, m, cardA)
	}
	w.Docs = make([]core.EventSet, nDocs)
	for i := range w.Docs {
		w.Docs[i] = core.Canonical(drawDistinct(rng, p, cardA))
	}
	return w
}

// drawDistinct draws n distinct events from [0, universe). For n close to
// the universe it degrades gracefully by capping at universe.
func drawDistinct(rng *rand.Rand, n, universe int) []core.Event {
	if n > universe {
		n = universe
	}
	out := make([]core.Event, 0, n)
	seen := make(map[core.Event]bool, n)
	for len(out) < n {
		e := core.Event(rng.Intn(universe))
		if !seen[e] {
			seen[e] = true
			out = append(out, e)
		}
	}
	return out
}

// Load registers every complex event of the workload into a matcher-like
// target (core.Matcher, core.Partitioned, or a baseline).
func (w *EventWorkload) Load(add func(core.ComplexID, []core.Event) error) error {
	for i, events := range w.Complex {
		if err := add(core.ComplexID(i), events); err != nil {
			return err
		}
	}
	return nil
}
