package webgen

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"

	"xymon/internal/xmldom"
)

// words is the vocabulary of generated documents. Queries in examples and
// benches monitor words from this list.
var words = []string{
	"camera", "radio", "television", "computer", "keyboard", "monitor",
	"printer", "scanner", "speaker", "amplifier", "turntable", "tuner",
	"electronic", "digital", "analog", "portable", "wireless", "stereo",
	"battery", "charger", "cable", "adapter", "antenna", "remote",
	"painting", "sculpture", "museum", "gallery", "genome", "protein",
}

// Vocabulary returns the word list used by generated documents.
func Vocabulary() []string { return append([]string(nil), words...) }

// SiteSpec describes a synthetic site of evolving XML catalog pages.
type SiteSpec struct {
	BaseURL  string // e.g. "http://shop0.example/"
	Pages    int    // catalog pages on the site
	Products int    // products per catalog at version 1
	Seed     int64
	Domain   string // semantic domain of the site's documents
	DTD      string // DTD URL advertised by the documents
	// Churn controls evolution: per version, roughly Churn product
	// updates, one insertion every other version and one deletion every
	// third version per page.
	Churn int
	// HTMLShare adds this many plain HTML pages that change their content
	// every version.
	HTMLShare int
	// Lifetime, when positive, makes each XML page disappear from the
	// site after that many versions (staggered per page), so crawls
	// observe page deletions — the paper's `deleted self` events.
	Lifetime int
	// HiddenPages adds XML catalog pages that are not listed in XMLURLs:
	// they are only reachable through links on the site's HTML pages, and
	// the links appear gradually (hidden page i is linked from version
	// i+2 on), so a link-following crawler discovers new pages over time
	// — the paper's "discovery of a new page" scenario (Section 1).
	HiddenPages int
	// RareWord, when set with RareEvery > 0, adds one extra product named
	// RareWord to roughly one page in RareEvery (chosen deterministically
	// per page). Benchmark corpora use a word outside the vocabulary to
	// dial in the fraction of pages that match a subscription.
	RareWord  string
	RareEvery int
	// PerturbEvery, when > 0, slows content evolution: the underlying
	// catalog advances one content version every PerturbEvery fetch
	// versions, and the intervening fetches re-serialize the SAME content
	// with a semantics-preserving perturbation drawn from a seeded
	// *rand.Rand (see PerturbKind). Successive refetches are then
	// byte-different but semantically identical — the corpus the
	// warehouse's streaming structural-hash tier is measured on.
	PerturbEvery int
	PerturbKind  PerturbKind
}

// PerturbKind selects the semantics-preserving serialization perturbation
// applied to the refetches between content versions (PerturbEvery).
type PerturbKind int

const (
	// PerturbWhitespace reflows inter-element whitespace, pads text with
	// trimmable space, and re-quotes attributes. Structurally identical
	// under xmldom's hashing, so these refetches resolve at the
	// warehouse's structural-hash tier without a parse.
	PerturbWhitespace PerturbKind = iota
	// PerturbAttrOrder renders the product category as an attribute and
	// shuffles per-product attribute order on top of the whitespace
	// reflow. XML semantics say attribute order is insignificant, but
	// xmldom hashes attributes in document order, so these refetches fall
	// through to the parse+diff tier — with the streaming frontier
	// masking the diff to the products whose order actually flipped.
	PerturbAttrOrder
)

// Site is a deterministic synthetic web site: Fetch(url, version) always
// returns the same content for the same (url, version) pair, so crawls are
// reproducible and change detection sees realistic evolving documents.
type Site struct {
	spec SiteSpec

	// Per-page memo of the last computed product list. Content is a pure
	// function of (url, version), and monitoring benches refetch the same
	// content version many times over (PerturbEvery); without the memo,
	// every refetch would replay the churn history and re-seed its
	// generator, billing page synthesis to the system under test.
	mu    sync.Mutex
	items map[string]cachedItems
}

type cachedItems struct {
	version int
	items   []product
}

// NewSite builds a site from its spec, applying defaults for zero fields.
func NewSite(spec SiteSpec) *Site {
	if spec.BaseURL == "" {
		spec.BaseURL = "http://site.example/"
	}
	if !strings.HasSuffix(spec.BaseURL, "/") {
		spec.BaseURL += "/"
	}
	if spec.Pages == 0 {
		spec.Pages = 4
	}
	if spec.Products == 0 {
		spec.Products = 8
	}
	if spec.Churn == 0 {
		spec.Churn = 2
	}
	if spec.Domain == "" {
		spec.Domain = "shopping"
	}
	if spec.DTD == "" {
		spec.DTD = spec.BaseURL + "dtd/catalog.dtd"
	}
	return &Site{spec: spec}
}

// Spec returns the site's specification.
func (s *Site) Spec() SiteSpec { return s.spec }

// XMLURLs lists the site's XML catalog page URLs.
func (s *Site) XMLURLs() []string {
	urls := make([]string, s.spec.Pages)
	for i := range urls {
		urls[i] = fmt.Sprintf("%scatalog%d.xml", s.spec.BaseURL, i)
	}
	return urls
}

// HTMLURLs lists the site's HTML page URLs.
func (s *Site) HTMLURLs() []string {
	urls := make([]string, s.spec.HTMLShare)
	for i := range urls {
		urls[i] = fmt.Sprintf("%spage%d.html", s.spec.BaseURL, i)
	}
	return urls
}

// HiddenURLs lists the XML pages reachable only through HTML links.
func (s *Site) HiddenURLs() []string {
	urls := make([]string, s.spec.HiddenPages)
	for i := range urls {
		urls[i] = fmt.Sprintf("%shidden%d.xml", s.spec.BaseURL, i)
	}
	return urls
}

// URLs lists every directly-known page of the site, XML first (hidden
// pages are excluded: a crawler finds them through links).
func (s *Site) URLs() []string {
	return append(s.XMLURLs(), s.HTMLURLs()...)
}

// Owns reports whether a URL belongs to this site.
func (s *Site) Owns(url string) bool {
	return strings.HasPrefix(url, s.spec.BaseURL)
}

// IsHTML reports whether a URL of this site is an HTML page.
func (s *Site) IsHTML(url string) bool {
	return strings.HasSuffix(url, ".html")
}

// Alive reports whether the page still exists at the given version. Pages
// of sites with a Lifetime disappear after Lifetime versions, staggered by
// a per-page offset so a crawl sees deletions spread over time.
func (s *Site) Alive(url string, version int) bool {
	if s.spec.Lifetime <= 0 {
		return true
	}
	offset := int(uint64(s.pageSeed(url)) % uint64(s.spec.Lifetime))
	return version <= s.spec.Lifetime+offset
}

func (s *Site) pageSeed(url string) int64 {
	// xmldom.HashString is bit-identical to fnv.New64a over the same
	// bytes, so every generated page (and test expectation) is unchanged.
	return s.spec.Seed ^ int64(xmldom.HashString(url))
}

// cachedCatalogItems returns catalogItems(url, version) through the
// per-page memo. The cached slice is only ever read by renderers;
// catalogItems always builds a fresh one.
func (s *Site) cachedCatalogItems(url string, version int) []product {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.items[url]; ok && c.version == version {
		return c.items
	}
	items := s.catalogItems(url, version)
	if s.items == nil {
		s.items = make(map[string]cachedItems)
	}
	s.items[url] = cachedItems{version: version, items: items}
	return items
}

// perturbSource is a splitmix64 rand.Source64 with O(1) seeding.
// rand.NewSource's lagged-Fibonacci warm-up runs hundreds of steps per
// seed; a fresh generator per perturbed render would spend more time
// seeding than rendering.
type perturbSource struct{ state uint64 }

func (s *perturbSource) Seed(seed int64) { s.state = uint64(seed) }
func (s *perturbSource) Int63() int64    { return int64(s.Uint64() >> 1) }
func (s *perturbSource) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
	z = (z ^ z>>27) * 0x94d049bb133111eb
	return z ^ z>>31
}

type product struct {
	id       int
	name     string
	category string
	price    int
}

// catalogItems computes the product list of catalog page url at the
// given version (1-based). The catalog starts with Products products;
// each later version applies a deterministic mix of price updates,
// insertions and deletions, so successive versions produce realistic
// XyDelta output.
func (s *Site) catalogItems(url string, version int) []product {
	if version < 1 {
		version = 1
	}
	rng := rand.New(rand.NewSource(s.pageSeed(url)))
	var items []product
	nextID := 0
	add := func() {
		items = append(items, product{
			id:       nextID,
			name:     words[rng.Intn(len(words))],
			category: words[rng.Intn(len(words))],
			price:    10 + rng.Intn(990),
		})
		nextID++
	}
	for i := 0; i < s.spec.Products; i++ {
		add()
	}
	for v := 2; v <= version; v++ {
		for c := 0; c < s.spec.Churn && len(items) > 0; c++ {
			items[rng.Intn(len(items))].price = 10 + rng.Intn(990)
		}
		if v%2 == 0 {
			add()
		}
		if v%3 == 0 && len(items) > 1 {
			i := rng.Intn(len(items))
			items = append(items[:i], items[i+1:]...)
		}
	}
	if s.spec.RareWord != "" && s.spec.RareEvery > 0 &&
		uint64(s.pageSeed(url))%uint64(s.spec.RareEvery) == 0 {
		items = append(items, product{
			id: nextID, name: s.spec.RareWord,
			category: words[0], price: 10,
		})
	}
	return items
}

// FetchXML renders catalog page url at the given version as a document —
// a thin wrapper over the byte renderer, so both paths are one source of
// truth.
func (s *Site) FetchXML(url string, version int) *xmldom.Document {
	d, err := xmldom.ParseBytes(s.FetchXMLBytes(url, version))
	if err != nil {
		// The generator only emits well-formed markup; a parse failure is
		// a bug in the renderer, not a data condition.
		panic(fmt.Sprintf("webgen: %s v%d: %v", url, version, err))
	}
	return d
}

// FetchXMLBytes renders catalog page url at the given version straight
// to serialized bytes — the crawler's zero-copy ingest format. For
// unperturbed fetches the output is byte-identical to
// FetchXML(url, version).XML(), so commits through either path produce
// the same signature; perturbed fetches (PerturbEvery) re-serialize the
// same content in a deliberately different byte form.
func (s *Site) FetchXMLBytes(url string, version int) []byte {
	if version < 1 {
		version = 1
	}
	contentV, pidx := version, 0
	if s.spec.PerturbEvery > 0 {
		contentV = (version-1)/s.spec.PerturbEvery + 1
		pidx = (version - 1) % s.spec.PerturbEvery
	}
	items := s.cachedCatalogItems(url, contentV)
	var rng *rand.Rand
	if pidx > 0 {
		// Seeded per (page, fetch version): the same refetch always
		// renders the same bytes, and successive refetches render
		// different ones.
		rng = rand.New(&perturbSource{state: uint64(s.pageSeed(url)) ^ uint64(version)*0x9e3779b97f4a7c15})
	}
	return s.renderCatalog(items, rng)
}

// renderCatalog serializes the product list. A nil rng renders the
// canonical compact form; otherwise it applies the site's PerturbKind:
// random inter-element whitespace, trimmable text padding, re-quoted
// attributes — and, for PerturbAttrOrder, shuffled attribute order.
func (s *Site) renderCatalog(items []product, rng *rand.Rand) []byte {
	attrCat := s.spec.PerturbEvery > 0 && s.spec.PerturbKind == PerturbAttrOrder
	// Each perturbation decision needs only a bit or two; drawing 64 bits
	// at a time from the source is much cheaper than an Intn call per
	// decision, which dominates the render cost otherwise.
	var bits uint64
	var nbits uint
	draw := func(n uint) uint64 {
		if nbits < n {
			bits = rng.Uint64()
			nbits = 64
		}
		v := bits & (1<<n - 1)
		bits >>= n
		nbits -= n
		return v
	}
	ws := func(b []byte) []byte {
		if rng == nil {
			return b
		}
		switch draw(2) {
		case 1:
			b = append(b, '\n')
		case 2:
			b = append(b, "\n  "...)
		case 3:
			b = append(b, "\n\t"...)
		}
		return b
	}
	quote := func() byte {
		if rng != nil && draw(1) == 1 {
			return '\''
		}
		return '"'
	}
	attr := func(b []byte, name, value string) []byte {
		q := quote()
		b = append(b, ' ')
		b = append(b, name...)
		b = append(b, '=', q)
		b = xmldom.AppendEscaped(b, value)
		b = append(b, q)
		return b
	}
	text := func(b []byte, v string) []byte {
		if rng != nil && draw(2) == 0 {
			b = append(b, ' ')
			b = xmldom.AppendEscaped(b, v)
			b = append(b, ' ')
			return b
		}
		return xmldom.AppendEscaped(b, v)
	}
	per := 112
	if rng != nil {
		// Whitespace reflow and text padding can add a few dozen bytes
		// per product; size for it so the builder never regrows.
		per = 160
	}
	b := make([]byte, 0, 64+len(items)*per)
	b = append(b, `<catalog`...)
	b = attr(b, "site", s.spec.BaseURL)
	b = append(b, '>')
	if rng != nil {
		// At least one reflow, so a perturbed render is never
		// byte-identical to the canonical one.
		b = append(b, '\n')
	}
	for _, it := range items {
		b = append(b, `<product`...)
		id := "p" + strconv.Itoa(it.id)
		if attrCat && rng != nil && draw(1) == 1 {
			b = attr(b, "cat", it.category)
			b = attr(b, "id", id)
		} else {
			b = attr(b, "id", id)
			if attrCat {
				b = attr(b, "cat", it.category)
			}
		}
		b = append(b, '>')
		b = ws(b)
		b = append(b, `<name>`...)
		b = text(b, it.name)
		b = append(b, `</name>`...)
		b = ws(b)
		if !attrCat {
			b = append(b, `<category>`...)
			b = text(b, it.category)
			b = append(b, `</category>`...)
			b = ws(b)
		}
		b = append(b, `<price>`...)
		b = strconv.AppendInt(b, int64(it.price), 10)
		b = append(b, `</price>`...)
		b = ws(b)
		b = append(b, `</product>`...)
		b = ws(b)
	}
	b = append(b, `</catalog>`...)
	return b
}

// FetchHTML renders HTML page url at the given version. The page links to
// the site's catalog pages, and — from version i+2 on — to hidden page i,
// so crawls following links discover new pages over time.
func (s *Site) FetchHTML(url string, version int) []byte {
	if version < 1 {
		version = 1
	}
	rng := rand.New(rand.NewSource(s.pageSeed(url) + int64(version)))
	var b strings.Builder
	b.WriteString("<html><body>")
	for i := 0; i < 20; i++ {
		b.WriteString(words[rng.Intn(len(words))])
		b.WriteString(" ")
	}
	for _, link := range s.XMLURLs() {
		fmt.Fprintf(&b, `<a href="%s">catalog</a> `, link)
	}
	for i, link := range s.HiddenURLs() {
		if version >= i+2 {
			fmt.Fprintf(&b, `<a href="%s">new page</a> `, link)
		}
	}
	fmt.Fprintf(&b, "version %d</body></html>", version)
	return []byte(b.String())
}

// ExtractLinks scans HTML content for href attributes — the link
// extraction the real crawler performs to discover pages.
func ExtractLinks(content []byte) []string {
	var out []string
	s := string(content)
	for {
		i := strings.Index(s, `href="`)
		if i < 0 {
			return out
		}
		s = s[i+len(`href="`):]
		j := strings.IndexByte(s, '"')
		if j < 0 {
			return out
		}
		out = append(out, s[:j])
		s = s[j+1:]
	}
}

// RandomTree generates a random XML document with the given approximate
// node count and depth, for the XML-alerter size/depth sweeps (Section 6.3
// bounds the alerter cost by Size × Depth).
func RandomTree(seed int64, size, depth int) *xmldom.Document {
	return RandomTreeRand(rand.New(rand.NewSource(seed)), size, depth)
}

// RandomTreeRand is RandomTree drawing from an injected generator.
func RandomTreeRand(rng *rand.Rand, size, depth int) *xmldom.Document {
	if depth < 2 {
		depth = 2
	}
	if size < 2 {
		size = 2
	}
	root := xmldom.Element("doc")
	nodes := 1
	// Fill level by level, attaching children to random nodes of the
	// previous level to hit the requested depth, then pad breadth-first.
	levels := [][]*xmldom.Node{{root}}
	for l := 1; l < depth && nodes < size; l++ {
		parent := levels[l-1][rng.Intn(len(levels[l-1]))]
		e := xmldom.Element(fmt.Sprintf("e%d", rng.Intn(20)))
		parent.AppendChild(e)
		levels = append(levels, []*xmldom.Node{e})
		nodes++
	}
	for nodes < size {
		l := 1 + rng.Intn(len(levels)-1)
		parent := levels[l-1][rng.Intn(len(levels[l-1]))]
		if rng.Intn(3) == 0 {
			parent.AppendChild(xmldom.Text(words[rng.Intn(len(words))] + " " + words[rng.Intn(len(words))]))
		} else {
			e := xmldom.Element(fmt.Sprintf("e%d", rng.Intn(20)))
			parent.AppendChild(e)
			levels[l] = append(levels[l], e)
		}
		nodes++
	}
	return xmldom.NewDocument(root)
}
