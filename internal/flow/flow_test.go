package flow

import (
	"sync/atomic"
	"testing"

	"xymon/internal/alerter"
	"xymon/internal/warehouse"
)

func TestRunnerProcessesAll(t *testing.T) {
	var handled atomic.Int64
	r := NewRunner(4, 16, func(d *alerter.Doc) int {
		handled.Add(1)
		return 2
	})
	const n = 1000
	for i := 0; i < n; i++ {
		if err := r.Submit(&alerter.Doc{Meta: warehouse.Metadata{URL: "u"}}); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	r.Close()
	if handled.Load() != n {
		t.Errorf("handled = %d, want %d", handled.Load(), n)
	}
	docs, notifs := r.Stats()
	if docs != n || notifs != 2*n {
		t.Errorf("stats = %d docs, %d notifications", docs, notifs)
	}
}

func TestSubmitAfterClose(t *testing.T) {
	r := NewRunner(1, 1, func(*alerter.Doc) int { return 0 })
	r.Close()
	r.Close() // idempotent
	if err := r.Submit(&alerter.Doc{}); err != ErrClosed {
		t.Errorf("Submit after Close = %v, want ErrClosed", err)
	}
}

func TestRunnerClampsArguments(t *testing.T) {
	r := NewRunner(0, 0, func(*alerter.Doc) int { return 0 })
	if err := r.Submit(&alerter.Doc{}); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	r.Close()
	docs, _ := r.Stats()
	if docs != 1 {
		t.Errorf("docs = %d", docs)
	}
}

// TestSubmitDuringClose races many submitters against Close: every Submit
// must either enqueue the document (counted by the handler) or return
// ErrClosed — never panic on a closed queue or lose a document silently.
// Run with -race to exercise the closeMu handshake.
func TestSubmitDuringClose(t *testing.T) {
	for round := 0; round < 50; round++ {
		var handled atomic.Uint64
		r := NewRunner(2, 1, func(*alerter.Doc) int {
			handled.Add(1)
			return 0
		})
		const submitters = 4
		var accepted atomic.Uint64
		done := make(chan struct{})
		for i := 0; i < submitters; i++ {
			go func() {
				defer func() { done <- struct{}{} }()
				for j := 0; j < 20; j++ {
					if err := r.Submit(&alerter.Doc{}); err != nil {
						if err != ErrClosed {
							t.Errorf("Submit: %v", err)
						}
						return
					}
					accepted.Add(1)
				}
			}()
		}
		r.Close() // races with the submitters
		for i := 0; i < submitters; i++ {
			<-done
		}
		if got, want := handled.Load(), accepted.Load(); got != want {
			t.Fatalf("round %d: handled %d of %d accepted documents", round, got, want)
		}
		docs, _ := r.Stats()
		if docs != accepted.Load() {
			t.Fatalf("round %d: Stats docs = %d, accepted = %d", round, docs, accepted.Load())
		}
	}
}
