package flow

import (
	"sync/atomic"
	"testing"

	"xymon/internal/alerter"
	"xymon/internal/warehouse"
)

func TestRunnerProcessesAll(t *testing.T) {
	var handled atomic.Int64
	r := NewRunner(4, 16, func(d *alerter.Doc) int {
		handled.Add(1)
		return 2
	})
	const n = 1000
	for i := 0; i < n; i++ {
		if err := r.Submit(&alerter.Doc{Meta: warehouse.Metadata{URL: "u"}}); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	r.Close()
	if handled.Load() != n {
		t.Errorf("handled = %d, want %d", handled.Load(), n)
	}
	docs, notifs := r.Stats()
	if docs != n || notifs != 2*n {
		t.Errorf("stats = %d docs, %d notifications", docs, notifs)
	}
}

func TestSubmitAfterClose(t *testing.T) {
	r := NewRunner(1, 1, func(*alerter.Doc) int { return 0 })
	r.Close()
	r.Close() // idempotent
	if err := r.Submit(&alerter.Doc{}); err != ErrClosed {
		t.Errorf("Submit after Close = %v, want ErrClosed", err)
	}
}

func TestRunnerClampsArguments(t *testing.T) {
	r := NewRunner(0, 0, func(*alerter.Doc) int { return 0 })
	if err := r.Submit(&alerter.Doc{}); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	r.Close()
	docs, _ := r.Stats()
	if docs != 1 {
		t.Errorf("docs = %d", docs)
	}
}
