// Package flow runs the document flow through the notification chain with
// a pool of workers. It realises in-process the paper's two scalability
// mechanisms: the alerters "use different threads for input and output"
// (Section 6.1) and the flow of documents can be split between several
// Monitoring Query Processors (Section 4.2, "Processing speed"
// distribution). Matching is read-mostly, so workers share one processor;
// across machines each worker would hold a replica.
package flow

import (
	"errors"
	"sync"

	"xymon/internal/alerter"
)

// Handler processes one document; typically manager.Manager.ProcessDoc.
type Handler func(*alerter.Doc) int

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("flow: runner is closed")

// Runner is a fixed-size worker pool over a buffered document queue.
type Runner struct {
	handler Handler
	queue   chan *alerter.Doc
	wg      sync.WaitGroup

	mu            sync.Mutex
	closed        bool
	docs          uint64
	notifications uint64
}

// NewRunner starts workers goroutines draining a queue of the given
// capacity into handler.
func NewRunner(workers, capacity int, handler Handler) *Runner {
	if workers < 1 {
		workers = 1
	}
	if capacity < 1 {
		capacity = 1
	}
	r := &Runner{
		handler: handler,
		queue:   make(chan *alerter.Doc, capacity),
	}
	r.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go r.work()
	}
	return r
}

func (r *Runner) work() {
	defer r.wg.Done()
	for d := range r.queue {
		n := r.handler(d)
		r.mu.Lock()
		r.docs++
		r.notifications += uint64(n)
		r.mu.Unlock()
	}
}

// Submit enqueues a document, blocking while the queue is full — the
// back-pressure that keeps a fast crawler from overrunning the processor.
func (r *Runner) Submit(d *alerter.Doc) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	r.mu.Unlock()
	r.queue <- d
	return nil
}

// Close stops accepting documents and waits for the queue to drain.
func (r *Runner) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.mu.Unlock()
	close(r.queue)
	r.wg.Wait()
}

// Stats returns documents processed and notifications produced so far.
func (r *Runner) Stats() (docs, notifications uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.docs, r.notifications
}
