// Package flow runs the document flow through the notification chain with
// a pool of workers. It realises in-process the paper's two scalability
// mechanisms: the alerters "use different threads for input and output"
// (Section 6.1) and the flow of documents can be split between several
// Monitoring Query Processors (Section 4.2, "Processing speed"
// distribution). Matching is read-mostly, so workers share one processor;
// across machines each worker would hold a replica.
package flow

import (
	"errors"
	"sync"
	"sync/atomic"

	"xymon/internal/alerter"
)

// Handler processes one document; typically manager.Manager.ProcessDoc.
type Handler func(*alerter.Doc) int

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("flow: runner is closed")

// Runner is a fixed-size worker pool over a buffered document queue.
// Per-document counters are atomics so workers never serialise on a
// bookkeeping lock between documents.
type Runner struct {
	handler Handler
	queue   chan *alerter.Doc
	wg      sync.WaitGroup

	// closeMu arbitrates Submit against Close: submitters send while
	// holding it shared, Close flips closed and closes the queue while
	// holding it exclusively, so a send can never hit a closed channel.
	closeMu sync.RWMutex
	closed  atomic.Bool

	docs          atomic.Uint64
	notifications atomic.Uint64
}

// NewRunner starts workers goroutines draining a queue of the given
// capacity into handler.
func NewRunner(workers, capacity int, handler Handler) *Runner {
	if workers < 1 {
		workers = 1
	}
	if capacity < 1 {
		capacity = 1
	}
	r := &Runner{
		handler: handler,
		queue:   make(chan *alerter.Doc, capacity),
	}
	r.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go r.work()
	}
	return r
}

func (r *Runner) work() {
	defer r.wg.Done()
	for d := range r.queue {
		n := r.handler(d)
		r.docs.Add(1)
		r.notifications.Add(uint64(n))
	}
}

// Submit enqueues a document, blocking while the queue is full — the
// back-pressure that keeps a fast crawler from overrunning the processor.
// Submit is safe to race with Close: either the document is accepted
// before the queue closes or ErrClosed is returned, never a panic.
func (r *Runner) Submit(d *alerter.Doc) error {
	if r.closed.Load() {
		return ErrClosed
	}
	r.closeMu.RLock()
	if r.closed.Load() {
		r.closeMu.RUnlock()
		return ErrClosed
	}
	// The send blocks under the read lock on purpose: Close cannot close
	// the channel until every in-flight send has finished, and workers
	// keep draining the queue, so the send always completes.
	r.queue <- d //xyvet:ignore lockcheck send must hold closeMu shared so Close cannot close the queue mid-send
	r.closeMu.RUnlock()
	return nil
}

// Close stops accepting documents and waits for the queue to drain.
func (r *Runner) Close() {
	r.closeMu.Lock()
	if r.closed.Swap(true) {
		r.closeMu.Unlock()
		r.wg.Wait()
		return
	}
	close(r.queue)
	r.closeMu.Unlock()
	r.wg.Wait()
}

// Stats returns documents processed and notifications produced so far.
func (r *Runner) Stats() (docs, notifications uint64) {
	return r.docs.Load(), r.notifications.Load()
}
