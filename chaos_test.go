package xymon

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"xymon/internal/cluster"
	"xymon/internal/core"
	"xymon/internal/faults"
	"xymon/internal/reporter"
	"xymon/internal/stream"
	"xymon/internal/xmldom"
)

// TestChaosPipeline runs the full acquisition→delivery chain under a
// seeded fault storm — failing fetches, failing warehouse commits,
// failing report deliveries — then heals the faults and requires the
// system to converge: every page committed, every fired report either
// delivered or parked on the dead-letter queue with its reason, nothing
// stuck in a retry queue, nothing silently lost.
func TestChaosPipeline(t *testing.T) {
	c := &testClock{t: time.Date(2001, 5, 21, 0, 0, 0, 0, time.UTC)}
	in := faults.New(99)
	sink := reporter.NewEmailSink(0, true, c.now)
	sys, err := New(Options{Clock: c.now, Delivery: faults.WrapDelivery(sink, in)})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := sys.Subscribe(`subscription Chaos
monitoring
select <Changed url=URL/>
where URL extends "http://chaos.example/" and modified self
report when immediate`); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	site := NewSite(SiteSpec{
		BaseURL: "http://chaos.example", Pages: 6, Products: 8, Churn: 3,
		Seed: 777, Domain: "shopping",
	})
	sys.AddSite(site)
	sys.Crawler.Faults = in

	in.Enable(faults.Rule{Point: faults.PointFetch, Mode: faults.ModeError, Prob: 0.4})
	in.Enable(faults.Rule{Point: faults.PointCommit, Mode: faults.ModeError, Prob: 0.3})
	in.Enable(faults.Rule{Point: faults.PointDelivery, Mode: faults.ModeError, Prob: 0.5})

	// Ten simulated days of chaos.
	for i := 0; i < 40; i++ {
		sys.Crawl()
		sys.Tick()
		c.advance(6 * time.Hour)
	}
	st := sys.Stats()
	if st.Crawler.FetchErrors == 0 || st.Crawler.CommitErrors == 0 || st.Crawler.Retries == 0 {
		t.Fatalf("fault storm did not bite: crawler stats = %+v", st.Crawler)
	}
	if _, failed := sys.Reporter.Stats(); failed == 0 {
		t.Fatal("fault storm did not bite: no delivery ever failed")
	}

	// Heal and drain: three more simulated weeks cover the 7-day refresh
	// period, every crawl backoff, and every delivery retry backoff.
	in.Clear()
	for i := 0; i < 84; i++ {
		sys.Crawl()
		sys.Tick()
		c.advance(6 * time.Hour)
	}

	wantPages := len(site.XMLURLs()) + len(site.HTMLURLs())
	if sys.Store.Len() != wantPages {
		t.Errorf("warehouse has %d pages after healing, want %d", sys.Store.Len(), wantPages)
	}
	for _, url := range site.XMLURLs() {
		if f := sys.Crawler.Fails(url); f != 0 {
			t.Errorf("%s still failing after heal: %d consecutive fails", url, f)
		}
	}

	// Delivery conservation: everything the reporter fired is accounted
	// for — accepted by the sink or dead-lettered with its reason.
	delivered, _ := sys.Reporter.Stats()
	rst := sys.Reporter.RetryStats()
	retried, deadLettered := rst.Retried, rst.DeadLettered
	if retried == 0 {
		t.Error("no delivery was ever retried under a 50% failure rate")
	}
	if pending := sys.Reporter.RetryPending(); pending != 0 {
		t.Errorf("%d reports stuck in the retry queue after healing", pending)
	}
	total, rejected := sink.Counts()
	if rejected != 0 {
		t.Errorf("unlimited sink rejected %d", rejected)
	}
	if delivered != total {
		t.Errorf("reporter counted %d delivered, sink accepted %d", delivered, total)
	}
	dead := sys.Reporter.DeadLetters()
	if uint64(len(dead)) != deadLettered {
		t.Errorf("DeadLetters has %d entries, counter says %d", len(dead), deadLettered)
	}
	for _, dl := range dead {
		if dl.Reason == "" || !strings.Contains(dl.Reason, "injected") {
			t.Errorf("dead letter without a usable reason: %+v", dl)
		}
		if dl.Attempts == 0 {
			t.Errorf("dead letter with zero attempts: %+v", dl)
		}
	}
	if total == 0 {
		t.Fatal("nothing was ever delivered")
	}
}

// downSink refuses every delivery — the pathological push target the
// change-stream exists to route around.
type downSink struct{ calls int }

func (s *downSink) Deliver(*reporter.Report) error {
	s.calls++
	return errors.New("sink down")
}

// TestChaosStreamSlowConsumer is the backpressure gate for the durable
// change-stream: the push sink is dead and a pull consumer runs an
// order of magnitude slower than the producer, yet the reporter's
// in-memory queues stay at their configured caps the whole time — the
// stream on disk absorbs the lag. Truncation surfaces only when the
// consumer genuinely falls past the retention floor, the documented
// re-sync path recovers it, and once the storm ends it catches up by
// replay to zero lag with every published record either consumed in
// order or skipped across an honestly-reported truncation gap.
func TestChaosStreamSlowConsumer(t *testing.T) {
	c := &testClock{t: time.Date(2001, 5, 21, 0, 0, 0, 0, time.UTC)}
	dir := t.TempDir()
	st, err := stream.Open(dir, stream.Options{SegmentBytes: 1024, MaxBehind: 120})
	if err != nil {
		t.Fatalf("stream.Open: %v", err)
	}
	defer st.Close()

	sink := &downSink{}
	const deadCap = 8
	rep := reporter.New(sink,
		reporter.WithClock(c.now),
		reporter.WithRetryPolicy(1, time.Minute, time.Minute),
		reporter.WithDeadLetterCap(deadCap),
		reporter.WithStream(st),
	)
	rep.Register("Storm", nil)
	doc, err := xmldom.ParseString("<page>storm</page>")
	if err != nil {
		t.Fatal(err)
	}

	rd, err := stream.OpenReader(dir, "slow", stream.ReaderOptions{MaxFetch: 4})
	if err != nil {
		t.Fatalf("OpenReader: %v", err)
	}
	truncations := 0
	var nextExpect uint64
	// consume runs one bounded poll, requiring offsets contiguous with
	// everything consumed so far; a truncation is tolerated only when the
	// position is genuinely behind the retention floor, and re-syncs.
	consume := func(max int) {
		recs, err := rd.Poll(max)
		if err != nil {
			var trunc *stream.TruncatedError
			if !errors.As(err, &trunc) {
				t.Fatalf("Poll: %v", err)
			}
			if first := st.FirstRetained(); trunc.Requested >= first {
				t.Fatalf("spurious truncation: requested %d with first retained %d", trunc.Requested, first)
			}
			first, err := rd.SeekOldest()
			if err != nil {
				t.Fatalf("SeekOldest: %v", err)
			}
			if first < nextExpect {
				t.Fatalf("re-sync moved backwards: %d after consuming to %d", first, nextExpect)
			}
			nextExpect = first
			truncations++
			return
		}
		for _, rec := range recs {
			if rec.Offset != nextExpect {
				t.Fatalf("consumer jumped from offset %d to %d without a truncation", nextExpect, rec.Offset)
			}
			nextExpect++
		}
		if len(recs) > 0 {
			if err := rd.Commit(); err != nil {
				t.Fatalf("Commit: %v", err)
			}
		}
	}

	// The storm: 400 reports fired at a dead sink, the consumer pulling
	// 4 records for every 10 produced, retention every 5 rounds. The
	// reporter's bounds hold at every step, not just at the end.
	const rounds, perRound = 40, 10
	for round := 0; round < rounds; round++ {
		for i := 0; i < perRound; i++ {
			rep.Notify(reporter.Notification{Subscription: "Storm", Label: "l", Element: doc.Root})
		}
		consume(4)
		if round%5 == 4 {
			if _, err := st.Retain(); err != nil {
				t.Fatalf("Retain: %v", err)
			}
		}
		if p := rep.RetryPending(); p != 0 {
			t.Fatalf("round %d: retry queue grew to %d with retrying exhausted", round, p)
		}
		if d := len(rep.DeadLetters()); d > deadCap {
			t.Fatalf("round %d: dead letters %d exceed cap %d", round, d, deadCap)
		}
		c.advance(time.Minute)
	}

	produced := uint64(rounds * perRound)
	if got := st.Next(); got != produced {
		t.Fatalf("stream head %d, want every one of %d fired reports published", got, produced)
	}
	if pub, serrs := rep.StreamStats(); pub != produced || serrs != 0 {
		t.Fatalf("StreamStats = %d published, %d errors; want %d, 0", pub, serrs, produced)
	}
	if truncations == 0 {
		t.Fatal("a 10x-slower consumer never fell past the retention floor; the scenario did not bite")
	}
	if st.Stats().TruncatedRecords == 0 {
		t.Error("retention reclaimed nothing past the floor")
	}

	// Storm over: the consumer catches up by replay — larger polls, same
	// contiguity contract — to zero lag.
	for rd.Next() < st.Next() {
		before := rd.Next()
		consume(64)
		if rd.Next() == before {
			t.Fatalf("catch-up stalled at offset %d with head %d", before, st.Next())
		}
	}
	lags, err := st.Lags()
	if err != nil {
		t.Fatalf("Lags: %v", err)
	}
	if lags["slow"] != 0 {
		t.Errorf("consumer lag after catch-up = %d, want 0", lags["slow"])
	}
	if sink.calls == 0 {
		t.Error("the dead sink was never even attempted")
	}
}

// TestChaosClusterDegradation wires a two-block cluster client through
// the fault injector's dialer, poisons one block, and requires every
// match to return promptly with the surviving block's results flagged
// Degraded — then heals the fault and requires a probe to restore full,
// reference-equal results.
func TestChaosClusterDegradation(t *testing.T) {
	a, b, reference := core.NewMatcher(), core.NewMatcher(), core.NewMatcher()
	for _, m := range []*core.Matcher{a, reference} {
		if err := m.Add(0, []core.Event{1}); err != nil {
			t.Fatal(err)
		}
	}
	for _, m := range []*core.Matcher{b, reference} {
		if err := m.Add(1, []core.Event{2}); err != nil {
			t.Fatal(err)
		}
	}
	srvA, err := cluster.Serve("127.0.0.1:0", core.Freeze(a))
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srvA.Close()
	srvB, err := cluster.Serve("127.0.0.1:0", core.Freeze(b))
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srvB.Close()

	in := faults.New(7)
	client, err := cluster.DialWith([]cluster.ClientOption{
		cluster.WithDialer(faults.Dialer(in, faults.PointConn, time.Second)),
		cluster.WithTimeouts(time.Second, 500*time.Millisecond),
		cluster.WithRetries(1),
		cluster.WithDownCooldown(50*time.Millisecond, 200*time.Millisecond),
	}, srvA.Addr(), srvB.Addr())
	if err != nil {
		t.Fatalf("DialWith: %v", err)
	}
	defer client.Close()

	set := core.Canonical([]core.Event{1, 2})
	want := reference.Match(set)
	res, err := client.MatchResult(set)
	if err != nil || res.Degraded || len(res.IDs) != len(want) {
		t.Fatalf("healthy MatchResult = %+v, %v (want %d ids)", res, err, len(want))
	}

	// Poison block B: its live conn breaks on next use, and re-dials to
	// it fail at the injector before touching the network.
	in.Enable(faults.Rule{Point: faults.PointConn, Mode: faults.ModeError, Match: srvB.Addr()})
	for i := 0; i < 5; i++ {
		start := time.Now()
		res, err = client.MatchResult(set)
		if elapsed := time.Since(start); elapsed > 10*time.Second {
			t.Fatalf("match %d took %v with a block down — degradation must be prompt", i, elapsed)
		}
		if err != nil {
			t.Fatalf("match %d with block B down errored: %v", i, err)
		}
		if !res.Degraded || len(res.Down) != 1 || res.Down[0] != srvB.Addr() {
			t.Fatalf("match %d = %+v, want Degraded with B down", i, res)
		}
		if len(res.IDs) != 1 || res.IDs[0] != 0 {
			t.Fatalf("match %d partial IDs = %v, want block A's [0]", i, res.IDs)
		}
	}
	if st := client.Stats(); st.Degraded == 0 || st.BlockFailures == 0 {
		t.Errorf("client stats = %+v, want degradations and block failures", st)
	}

	// Heal and probe the block back in: results return to reference.
	in.ClearPoint(faults.PointConn)
	deadline := time.Now().Add(5 * time.Second)
	for client.Probe() != 2 {
		if time.Now().After(deadline) {
			t.Fatal("Probe never restored block B")
		}
		time.Sleep(20 * time.Millisecond)
	}
	res, err = client.MatchResult(set)
	if err != nil || res.Degraded {
		t.Fatalf("post-heal MatchResult = %+v, %v", res, err)
	}
	got := map[core.ComplexID]bool{}
	for _, id := range res.IDs {
		got[id] = true
	}
	for _, id := range want {
		if !got[id] {
			t.Errorf("post-heal results missing %d: %v vs reference %v", id, res.IDs, want)
		}
	}
}

// TestChaosClusterRebalance is the capstone for the replicated,
// rebalancing cluster: a coordinator with R=2 and three dynamic blocks
// take a storm of subscription writes through a faulty network while
// blocks are killed, evicted and joined, the coordinator crashes
// mid-handoff and resumes from its WAL, and finally R blocks die at
// once. The invariants: no subscription acked to the caller is ever
// lost; one block failure yields complete results with Degraded=false;
// R failures yield honestly-flagged bounded degradation (a correct
// subset, the dead blocks named) — never silently wrong results.
func TestChaosClusterRebalance(t *testing.T) {
	in := faults.New(2001) // client-side network chaos
	walDir := t.TempDir()
	coordOpts := []cluster.ClientOption{
		cluster.WithTimeouts(time.Second, time.Second),
		cluster.WithRetries(2),
	}
	coord, err := cluster.NewCoord(walDir, 2, coordOpts...)
	if err != nil {
		t.Fatalf("NewCoord: %v", err)
	}
	if err := coord.ServeCoord("127.0.0.1:0"); err != nil {
		t.Fatalf("ServeCoord: %v", err)
	}

	newBlock := func() *cluster.Server {
		srv, err := cluster.ServeDynamic("127.0.0.1:0", nil)
		if err != nil {
			t.Fatalf("ServeDynamic: %v", err)
		}
		t.Cleanup(func() { srv.Close() })
		return srv
	}
	var blocks []*cluster.Server
	for i := 0; i < 3; i++ {
		srv := newBlock()
		if err := coord.Join(srv.Addr()); err != nil {
			t.Fatalf("Join: %v", err)
		}
		blocks = append(blocks, srv)
	}

	clientOpts := []cluster.ClientOption{
		cluster.WithDialer(faults.Dialer(in, faults.PointConn, time.Second)),
		cluster.WithTimeouts(time.Second, 300*time.Millisecond),
		cluster.WithRetries(2),
		cluster.WithDownCooldown(10*time.Millisecond, 50*time.Millisecond),
	}
	rc, err := cluster.DialRing(coord.Addr(), clientOpts...)
	if err != nil {
		t.Fatalf("DialRing: %v", err)
	}
	defer rc.Close()

	reference := core.NewMatcher()
	subEvents := map[core.ComplexID][]core.Event{}
	rng := rand.New(rand.NewSource(2001))
	nextID := core.ComplexID(0)

	storm := func() {
		in.Enable(faults.Rule{Point: faults.PointConn, Mode: faults.ModeError, Prob: 0.04})
		in.Enable(faults.Rule{Point: faults.PointConn, Mode: faults.ModeTruncate, Prob: 0.02})
	}
	calm := func() { in.Clear() }

	// addSubs writes n subscriptions through the ring client under the
	// current fault regime. An Add only counts once it returns nil (every
	// replica acked); transient failures are retried — the zero-loss
	// invariant covers exactly the acked set.
	addSubs := func(c *cluster.RingClient, n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			id := nextID
			nextID++
			events := []core.Event{
				core.Event(rng.Intn(200)),
				core.Event(rng.Intn(200)),
				core.Event(rng.Intn(200)),
			}
			var err error
			for attempt := 0; attempt < 50; attempt++ {
				if err = c.Add(id, events); err == nil {
					break
				}
				// Wait out the down-cooldown a transient fault may have
				// started before burning another attempt.
				time.Sleep(10 * time.Millisecond)
			}
			if err != nil {
				t.Fatalf("Add(%d) never succeeded: %v", id, err)
			}
			if err := reference.Add(id, events); err != nil {
				t.Fatal(err)
			}
			subEvents[id] = events
		}
	}

	// verifyAll matches every acked subscription's own definition set and
	// requires its id in the (reference-equal) result — the direct
	// statement of "zero lost subscriptions". Runs on a calm network so
	// the degradation flag is meaningful; wantDegraded pins it.
	verifyAll := func(c *cluster.RingClient, wantDegraded bool) {
		t.Helper()
		calm()
		for id, events := range subEvents {
			set := core.Canonical(events)
			want := reference.Match(set)
			res, err := c.MatchResult(set)
			if err != nil {
				t.Fatalf("MatchResult(sub %d): %v", id, err)
			}
			if res.Degraded != wantDegraded {
				t.Fatalf("sub %d: Degraded = %v, want %v (down: %v)", id, res.Degraded, wantDegraded, res.Down)
			}
			if len(res.IDs) != len(want) {
				t.Fatalf("sub %d: got %d ids, reference says %d", id, len(res.IDs), len(want))
			}
			found := false
			for _, got := range res.IDs {
				if got == id {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("subscription %d lost: absent from its own definition's match", id)
			}
		}
	}

	// Phase 1: write storm on a healthy cluster.
	storm()
	addSubs(rc, 120)
	verifyAll(rc, false)

	// Phase 2: kill one block mid-storm. R=2 means every partition still
	// has a live replica: reads return complete results, Degraded=false,
	// throughout. Writes are consistency-first — they need every replica's
	// ack, so adds touching the dead block's partitions fail loudly (never
	// a silent partial write) until the eviction below re-replicates.
	storm()
	addSubs(rc, 40)
	killed := blocks[1]
	killed.Close()
	verifyAll(rc, false)
	if st := rc.Stats(); st.Failovers == 0 {
		t.Fatalf("a dead block never forced a failover: %+v", st)
	}

	// Phase 3: evict the corpse; the survivors re-replicate its
	// partitions from the remaining copies and writes resume everywhere.
	if err := coord.Evict(killed.Addr()); err != nil {
		t.Fatalf("Evict: %v", err)
	}
	storm()
	addSubs(rc, 40)
	verifyAll(rc, false)

	// Phase 4: a fresh block joins under storm and takes its share.
	storm()
	joined := newBlock()
	if err := coord.Join(joined.Addr()); err != nil {
		t.Fatalf("Join mid-storm: %v", err)
	}
	addSubs(rc, 40)
	verifyAll(rc, false)

	// Phase 5: the coordinator crashes mid-handoff — an injected fault at
	// the transfer point kills a join partway, with the begin and some
	// moved records journaled but no commit — then a reopened coordinator
	// resumes the transfer from the WAL and completes it.
	calm()
	if err := coord.Close(); err != nil {
		t.Fatalf("coordinator shutdown: %v", err)
	}
	inXfer := faults.New(7)
	inXfer.Enable(faults.Rule{Point: faults.PointXfer, Mode: faults.ModeError, Prob: 1, Skip: 2})
	coordFaulty, err := cluster.NewCoord(walDir, 2, append(coordOpts, cluster.WithInjector(inXfer))...)
	if err != nil {
		t.Fatalf("reopen coordinator: %v", err)
	}
	late := newBlock()
	if err := coordFaulty.Join(late.Addr()); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("faulted join = %v, want the injected mid-transfer crash", err)
	}
	if err := coordFaulty.Close(); err != nil {
		t.Fatalf("crashed coordinator close: %v", err)
	}
	coord2, err := cluster.NewCoord(walDir, 2, coordOpts...)
	if err != nil {
		t.Fatalf("NewCoord after crash: %v", err)
	}
	if err := coord2.ServeCoord("127.0.0.1:0"); err != nil {
		t.Fatalf("ServeCoord: %v", err)
	}
	defer coord2.Close()
	if m := coord2.Map(); len(m.Joining) != 0 {
		t.Fatalf("resumed coordinator still mid-transfer: %+v", m)
	}
	rc2, err := cluster.DialRing(coord2.Addr(), clientOpts...)
	if err != nil {
		t.Fatalf("DialRing after resume: %v", err)
	}
	defer rc2.Close()
	storm()
	addSubs(rc2, 40)
	verifyAll(rc2, false)

	// Phase 6: kill R blocks at once. Partitions whose whole replica set
	// died are gone until a rebalance; the client must flag exactly that
	// — degraded results stay a correct subset with the dead named, and
	// documents with every partition alive stay complete.
	calm()
	live := []*cluster.Server{blocks[0], blocks[2], joined, late}
	live[0].Close()
	live[1].Close()
	sawDegraded := false
	for i := 0; i < 200 && !sawDegraded; i++ {
		set := core.Canonical([]core.Event{
			core.Event(rng.Intn(200)), core.Event(rng.Intn(200)), core.Event(rng.Intn(200)),
		})
		want := map[core.ComplexID]bool{}
		for _, id := range reference.Match(set) {
			want[id] = true
		}
		res, err := rc2.MatchResult(set)
		if err != nil {
			continue // every partition of this doc died: an error is honest
		}
		for _, id := range res.IDs {
			if !want[id] {
				t.Fatalf("degraded-mode result invented id %d for %v", id, set)
			}
		}
		if res.Degraded {
			if len(res.Down) == 0 {
				t.Fatal("degraded result names no down blocks")
			}
			sawDegraded = true
		} else if len(res.IDs) != len(want) {
			t.Fatalf("undegraded result incomplete: %d of %d ids for %v", len(res.IDs), len(want), set)
		}
	}
	if !sawDegraded {
		t.Fatal("killing R blocks never surfaced a degraded result")
	}
}
