package xymon

import (
	"strings"
	"testing"
	"time"

	"xymon/internal/cluster"
	"xymon/internal/core"
	"xymon/internal/faults"
	"xymon/internal/reporter"
)

// TestChaosPipeline runs the full acquisition→delivery chain under a
// seeded fault storm — failing fetches, failing warehouse commits,
// failing report deliveries — then heals the faults and requires the
// system to converge: every page committed, every fired report either
// delivered or parked on the dead-letter queue with its reason, nothing
// stuck in a retry queue, nothing silently lost.
func TestChaosPipeline(t *testing.T) {
	c := &testClock{t: time.Date(2001, 5, 21, 0, 0, 0, 0, time.UTC)}
	in := faults.New(99)
	sink := reporter.NewEmailSink(0, true, c.now)
	sys, err := New(Options{Clock: c.now, Delivery: faults.WrapDelivery(sink, in)})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := sys.Subscribe(`subscription Chaos
monitoring
select <Changed url=URL/>
where URL extends "http://chaos.example/" and modified self
report when immediate`); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	site := NewSite(SiteSpec{
		BaseURL: "http://chaos.example", Pages: 6, Products: 8, Churn: 3,
		Seed: 777, Domain: "shopping",
	})
	sys.AddSite(site)
	sys.Crawler.Faults = in

	in.Enable(faults.Rule{Point: faults.PointFetch, Mode: faults.ModeError, Prob: 0.4})
	in.Enable(faults.Rule{Point: faults.PointCommit, Mode: faults.ModeError, Prob: 0.3})
	in.Enable(faults.Rule{Point: faults.PointDelivery, Mode: faults.ModeError, Prob: 0.5})

	// Ten simulated days of chaos.
	for i := 0; i < 40; i++ {
		sys.Crawl()
		sys.Tick()
		c.advance(6 * time.Hour)
	}
	st := sys.Stats()
	if st.Crawler.FetchErrors == 0 || st.Crawler.CommitErrors == 0 || st.Crawler.Retries == 0 {
		t.Fatalf("fault storm did not bite: crawler stats = %+v", st.Crawler)
	}
	if _, failed := sys.Reporter.Stats(); failed == 0 {
		t.Fatal("fault storm did not bite: no delivery ever failed")
	}

	// Heal and drain: three more simulated weeks cover the 7-day refresh
	// period, every crawl backoff, and every delivery retry backoff.
	in.Clear()
	for i := 0; i < 84; i++ {
		sys.Crawl()
		sys.Tick()
		c.advance(6 * time.Hour)
	}

	wantPages := len(site.XMLURLs()) + len(site.HTMLURLs())
	if sys.Store.Len() != wantPages {
		t.Errorf("warehouse has %d pages after healing, want %d", sys.Store.Len(), wantPages)
	}
	for _, url := range site.XMLURLs() {
		if f := sys.Crawler.Fails(url); f != 0 {
			t.Errorf("%s still failing after heal: %d consecutive fails", url, f)
		}
	}

	// Delivery conservation: everything the reporter fired is accounted
	// for — accepted by the sink or dead-lettered with its reason.
	delivered, _ := sys.Reporter.Stats()
	rst := sys.Reporter.RetryStats()
	retried, deadLettered := rst.Retried, rst.DeadLettered
	if retried == 0 {
		t.Error("no delivery was ever retried under a 50% failure rate")
	}
	if pending := sys.Reporter.RetryPending(); pending != 0 {
		t.Errorf("%d reports stuck in the retry queue after healing", pending)
	}
	total, rejected := sink.Counts()
	if rejected != 0 {
		t.Errorf("unlimited sink rejected %d", rejected)
	}
	if delivered != total {
		t.Errorf("reporter counted %d delivered, sink accepted %d", delivered, total)
	}
	dead := sys.Reporter.DeadLetters()
	if uint64(len(dead)) != deadLettered {
		t.Errorf("DeadLetters has %d entries, counter says %d", len(dead), deadLettered)
	}
	for _, dl := range dead {
		if dl.Reason == "" || !strings.Contains(dl.Reason, "injected") {
			t.Errorf("dead letter without a usable reason: %+v", dl)
		}
		if dl.Attempts == 0 {
			t.Errorf("dead letter with zero attempts: %+v", dl)
		}
	}
	if total == 0 {
		t.Fatal("nothing was ever delivered")
	}
}

// TestChaosClusterDegradation wires a two-block cluster client through
// the fault injector's dialer, poisons one block, and requires every
// match to return promptly with the surviving block's results flagged
// Degraded — then heals the fault and requires a probe to restore full,
// reference-equal results.
func TestChaosClusterDegradation(t *testing.T) {
	a, b, reference := core.NewMatcher(), core.NewMatcher(), core.NewMatcher()
	for _, m := range []*core.Matcher{a, reference} {
		if err := m.Add(0, []core.Event{1}); err != nil {
			t.Fatal(err)
		}
	}
	for _, m := range []*core.Matcher{b, reference} {
		if err := m.Add(1, []core.Event{2}); err != nil {
			t.Fatal(err)
		}
	}
	srvA, err := cluster.Serve("127.0.0.1:0", core.Freeze(a))
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srvA.Close()
	srvB, err := cluster.Serve("127.0.0.1:0", core.Freeze(b))
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srvB.Close()

	in := faults.New(7)
	client, err := cluster.DialWith([]cluster.ClientOption{
		cluster.WithDialer(faults.Dialer(in, faults.PointConn, time.Second)),
		cluster.WithTimeouts(time.Second, 500*time.Millisecond),
		cluster.WithRetries(1),
		cluster.WithDownCooldown(50*time.Millisecond, 200*time.Millisecond),
	}, srvA.Addr(), srvB.Addr())
	if err != nil {
		t.Fatalf("DialWith: %v", err)
	}
	defer client.Close()

	set := core.Canonical([]core.Event{1, 2})
	want := reference.Match(set)
	res, err := client.MatchResult(set)
	if err != nil || res.Degraded || len(res.IDs) != len(want) {
		t.Fatalf("healthy MatchResult = %+v, %v (want %d ids)", res, err, len(want))
	}

	// Poison block B: its live conn breaks on next use, and re-dials to
	// it fail at the injector before touching the network.
	in.Enable(faults.Rule{Point: faults.PointConn, Mode: faults.ModeError, Match: srvB.Addr()})
	for i := 0; i < 5; i++ {
		start := time.Now()
		res, err = client.MatchResult(set)
		if elapsed := time.Since(start); elapsed > 10*time.Second {
			t.Fatalf("match %d took %v with a block down — degradation must be prompt", i, elapsed)
		}
		if err != nil {
			t.Fatalf("match %d with block B down errored: %v", i, err)
		}
		if !res.Degraded || len(res.Down) != 1 || res.Down[0] != srvB.Addr() {
			t.Fatalf("match %d = %+v, want Degraded with B down", i, res)
		}
		if len(res.IDs) != 1 || res.IDs[0] != 0 {
			t.Fatalf("match %d partial IDs = %v, want block A's [0]", i, res.IDs)
		}
	}
	if st := client.Stats(); st.Degraded == 0 || st.BlockFailures == 0 {
		t.Errorf("client stats = %+v, want degradations and block failures", st)
	}

	// Heal and probe the block back in: results return to reference.
	in.ClearPoint(faults.PointConn)
	deadline := time.Now().Add(5 * time.Second)
	for client.Probe() != 2 {
		if time.Now().After(deadline) {
			t.Fatal("Probe never restored block B")
		}
		time.Sleep(20 * time.Millisecond)
	}
	res, err = client.MatchResult(set)
	if err != nil || res.Degraded {
		t.Fatalf("post-heal MatchResult = %+v, %v", res, err)
	}
	got := map[core.ComplexID]bool{}
	for _, id := range res.IDs {
		got[id] = true
	}
	for _, id := range want {
		if !got[id] {
			t.Errorf("post-heal results missing %d: %v vs reference %v", id, res.IDs, want)
		}
	}
}
