package pubsub_test

import (
	"bytes"
	"sort"
	"testing"

	"xymon/pubsub"
)

// TestPublicSurface exercises the whole re-exported API end to end:
// dynamic matcher, canonicalisation, freeze, snapshot round trip,
// partitioning and the TCP fan-out.
func TestPublicSurface(t *testing.T) {
	m := pubsub.NewMatcher()
	if err := m.Add(1, []pubsub.Event{1, 3}); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if err := m.Add(2, []pubsub.Event{3}); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if err := m.Add(1, []pubsub.Event{9}); err != pubsub.ErrDuplicateComplexID {
		t.Errorf("duplicate Add = %v", err)
	}
	if err := m.Add(3, nil); err != pubsub.ErrEmptyComplexEvent {
		t.Errorf("empty Add = %v", err)
	}
	s := pubsub.Canonical([]pubsub.Event{3, 1, 3})
	got := m.Match(s)
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Match = %v", got)
	}

	// Freeze + serialise + decode.
	frozen := pubsub.Freeze(m)
	var buf bytes.Buffer
	if _, err := frozen.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	decoded, err := pubsub.ReadCompact(&buf)
	if err != nil {
		t.Fatalf("ReadCompact: %v", err)
	}
	if len(decoded.Match(s)) != 2 {
		t.Error("decoded snapshot lost subscriptions")
	}
	if _, err := pubsub.ReadCompact(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("junk snapshot accepted")
	}

	// Partitioned.
	part := pubsub.NewPartitioned(2, false)
	part.Add(1, []pubsub.Event{1, 3})
	part.Add(2, []pubsub.Event{3})
	if len(part.Match(s)) != 2 {
		t.Error("partitioned matcher disagrees")
	}

	// TCP fan-out.
	srv, err := pubsub.Serve("127.0.0.1:0", frozen)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()
	client, err := pubsub.Dial(srv.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer client.Close()
	remote, err := client.Match(s)
	if err != nil || len(remote) != 2 {
		t.Errorf("remote Match = %v, %v", remote, err)
	}
}
