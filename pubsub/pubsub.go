// Package pubsub is the public face of the paper's primary contribution,
// usable independently of the XML machinery: the Monitoring Query
// Processor as a generic publish/subscribe matcher. "In general terms,
// each alert consists of a set of atomic events and the problem can be
// stated as finding in a flow of sets of atomic events, the sets that
// satisfy a conjunction of properties. Our algorithm was designed to
// support a flow of millions of alerts per day and millions of such
// conjunctions." (Section 1.)
//
// Atomic events are integer codes you assign; a subscription is a
// conjunction (set) of them; Match returns every registered conjunction
// contained in the incoming event set, in observed time O(p·log k).
//
//	m := pubsub.NewMatcher()
//	m.Add(1, []pubsub.Event{login})
//	m.Add(2, []pubsub.Event{purchase, bigBasket})
//	hits := m.Match(pubsub.Canonical([]pubsub.Event{login, purchase, bigBasket}))
//
// For scale-out, Freeze a matcher into a compact serialisable snapshot
// and serve partition blocks over TCP with Serve/Dial.
package pubsub

import (
	"io"

	"xymon/internal/cluster"
	"xymon/internal/core"
)

// Core matcher types, aliased from the implementation package.
type (
	// Event is an atomic event code; only its total order matters.
	Event = core.Event
	// ComplexID identifies a registered conjunction.
	ComplexID = core.ComplexID
	// EventSet is a canonical (sorted, deduplicated) set of events.
	EventSet = core.EventSet
	// Matcher is the dynamic Atomic Event Sets structure.
	Matcher = core.Matcher
	// Partitioned splits the subscription base across blocks.
	Partitioned = core.Partitioned
	// Compact is a frozen, memory-lean, serialisable matcher snapshot.
	Compact = core.Compact
	// Stats reports structure and matching counters.
	Stats = core.Stats
	// Server serves one partition block over TCP.
	Server = cluster.Server
	// Client fans matches out to several partition blocks.
	Client = cluster.Client
)

// Errors re-exported from the implementation.
var (
	// ErrEmptyComplexEvent rejects conjunctions with no events.
	ErrEmptyComplexEvent = core.ErrEmptyComplexEvent
	// ErrDuplicateComplexID rejects reuse of a registered id.
	ErrDuplicateComplexID = core.ErrDuplicateComplexID
	// ErrUnknownComplexID reports removal of an unregistered id.
	ErrUnknownComplexID = core.ErrUnknownComplexID
	// ErrBadSnapshot reports a corrupt frozen-matcher snapshot.
	ErrBadSnapshot = core.ErrBadSnapshot
)

// NewMatcher returns an empty matcher.
func NewMatcher() *Matcher { return core.NewMatcher() }

// NewPartitioned returns a subscription-partitioned matcher with n blocks;
// with parallel set, Match fans out with one goroutine per block.
func NewPartitioned(n int, parallel bool) *Partitioned {
	return core.NewPartitioned(n, parallel)
}

// Canonical sorts and deduplicates events into an EventSet.
func Canonical(events []Event) EventSet { return core.Canonical(events) }

// Freeze flattens a matcher into a Compact snapshot.
func Freeze(m *Matcher) *Compact { return core.Freeze(m) }

// ReadCompact deserialises a snapshot written with Compact.WriteTo.
func ReadCompact(r io.Reader) (*Compact, error) { return core.ReadCompact(r) }

// Serve exposes a frozen partition block over TCP; addr "127.0.0.1:0"
// picks a free port (see Server.Addr).
func Serve(addr string, block *Compact) (*Server, error) {
	return cluster.Serve(addr, block)
}

// Dial connects to block servers for fan-out matching.
func Dial(addrs ...string) (*Client, error) { return cluster.Dial(addrs...) }
