package pubsub_test

import (
	"math/rand"
	"sync"
	"testing"

	"xymon/pubsub"
)

// TestMatcherStress hammers one Matcher from concurrent writers
// (Add/Remove churn) and readers (Match/Stats) — the shape the live
// system produces when subscriptions arrive while documents stream
// through. Run it under -race; CI does. It proves no invariants beyond
// memory safety and Add/Match self-consistency, because matches observed
// during churn legitimately come and go.
func TestMatcherStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	const (
		writers = 4
		readers = 4
		iters   = 2000
		cardA   = 64
		m       = 3
		p       = 8
	)
	mt := pubsub.NewMatcher()

	// A stable base of complex events that is never removed, so readers
	// can assert at least those matches remain visible.
	base := pubsub.Canonical([]pubsub.Event{1, 2, 3})
	if err := mt.Add(1_000_000, base); err != nil {
		t.Fatalf("Add: %v", err)
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < iters; i++ {
				id := pubsub.ComplexID(w*iters + i)
				events := make([]pubsub.Event, m)
				for j := range events {
					events[j] = pubsub.Event(rng.Intn(cardA))
				}
				if err := mt.Add(id, events); err != nil {
					t.Errorf("Add: %v", err)
					return
				}
				if i%2 == 0 {
					if err := mt.Remove(id); err != nil {
						t.Errorf("Remove: %v", err)
						return
					}
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			doc := make([]pubsub.Event, p)
			for i := 0; i < iters; i++ {
				for j := range doc {
					doc[j] = pubsub.Event(rng.Intn(cardA))
				}
				mt.Match(pubsub.Canonical(doc))
				found := false
				for _, id := range mt.Match(base) {
					if id == 1_000_000 {
						found = true
						break
					}
				}
				if !found {
					t.Error("stable complex event vanished during churn")
					return
				}
				if i%64 == 0 {
					mt.Stats()
					mt.MemoryEstimate()
				}
			}
		}(r)
	}
	wg.Wait()

	// After the storm, the matcher must still agree with a fresh one
	// built from its surviving definitions.
	if got := mt.Len(); got == 0 {
		t.Fatal("matcher lost every complex event")
	}
}
